package ptlactive_test

import (
	"bytes"
	"testing"

	"ptlactive"
)

// TestPublicAPIAggregateRewriting drives the Section-6.1.1 rewriting
// through the public surface.
func TestPublicAPIAggregateRewriting(t *testing.T) {
	eng := ptlactive.NewEngine(ptlactive.Config{
		Initial: map[string]ptlactive.Value{"price": ptlactive.Float(60)},
		Start:   540,
	})
	var fired int
	err := ptlactive.RewriteAggregates(eng, "watch",
		`avg(item("price"); time = 540; @update_stocks) > 70`,
		func(ctx *ptlactive.ActionContext) error {
			fired++
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	err = eng.Exec(600, map[string]ptlactive.Value{"price": ptlactive.Float(90)},
		ptlactive.NewEvent("update_stocks"))
	if err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("rewritten rule did not fire")
	}
}

// TestPublicAPIIndexedAggregate exercises the indexed family.
func TestPublicAPIIndexedAggregate(t *testing.T) {
	eng := ptlactive.NewEngine(ptlactive.Config{
		Initial: map[string]ptlactive.Value{"fam": ptlactive.Relation(nil)},
	})
	err := ptlactive.InstallIndexedAggregate(eng, ptlactive.IndexedAggregate{
		Item:        "fam",
		Fn:          ptlactive.AggCount,
		SampleEvent: "hit",
	})
	if err != nil {
		t.Fatal(err)
	}
	var hot []string
	err = eng.AddTrigger("hot", `(K, N) in item("fam") and N >= 2`,
		func(ctx *ptlactive.ActionContext) error {
			k, _ := ctx.Param("K")
			hot = append(hot, k.AsString())
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := eng.Emit(eng.Now()+1, ptlactive.NewEvent("hit", ptlactive.Str("x"))); err != nil {
			t.Fatal(err)
		}
	}
	if len(hot) == 0 || hot[0] != "x" {
		t.Fatalf("hot = %v", hot)
	}
}

// TestPublicAPIHistoryIO round-trips an engine history through the
// serialization helpers.
func TestPublicAPIHistoryIO(t *testing.T) {
	eng := ptlactive.NewEngine(ptlactive.Config{
		Initial: map[string]ptlactive.Value{"a": ptlactive.Int(1)},
	})
	_ = eng.Exec(1, map[string]ptlactive.Value{"a": ptlactive.Int(2)})
	var buf bytes.Buffer
	if err := ptlactive.WriteHistory(&buf, eng.History()); err != nil {
		t.Fatal(err)
	}
	back, err := ptlactive.ReadHistory(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != eng.History().Len() {
		t.Fatal("round trip lost states")
	}
	// The re-read history drives the naive evaluator.
	f, _ := ptlactive.ParseCondition(`previously item("a") = 1`)
	nv := ptlactive.NewNaiveEvaluator(ptlactive.NewRegistry(), back, nil)
	ok, err := nv.SatLast(f, nil)
	if err != nil || !ok {
		t.Fatalf("sat=%t err=%v", ok, err)
	}
}

// TestPublicAPIEnforceValidCommit drives the Section-9.3 enforcement via
// the public valid-time surface.
func TestPublicAPIEnforceValidCommit(t *testing.T) {
	base := ptlactive.NewDB(map[string]ptlactive.Value{"a": ptlactive.Int(0)})
	s := ptlactive.NewValidStore(base, 0, 100)
	reg := ptlactive.NewRegistry()
	c, _ := ptlactive.ParseCondition(`item("a") >= 0`)
	if err := s.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Post(1, "a", ptlactive.Int(-3), 1, 1); err != nil {
		t.Fatal(err)
	}
	err := s.EnforceCommit(1, 2, reg, map[string]ptlactive.Formula{"nonneg": c})
	var ve *ptlactive.ValidViolationError
	if err == nil {
		t.Fatal("violating commit accepted")
	}
	if !asViolation(err, &ve) || ve.Constraint != "nonneg" {
		t.Fatalf("err = %v", err)
	}
}

func asViolation(err error, target **ptlactive.ValidViolationError) bool {
	v, ok := err.(*ptlactive.ValidViolationError)
	if ok {
		*target = v
	}
	return ok
}

// TestPublicAPIRetrieveQuery wires a RETRIEVE query into a parameterized
// membership rule through the public API — the paper's OVERPRICED example
// end to end.
func TestPublicAPIRetrieveQuery(t *testing.T) {
	schema := ptlactive.MustSchema(
		ptlactive.Column{Name: "name"},
		ptlactive.Column{Name: "price"},
	)
	reg := ptlactive.NewRegistry()
	err := reg.RegisterRetrieve("overpriced",
		`RETRIEVE (stock_for_sale.name) WHERE stock_for_sale.price >= 300`, schema)
	if err != nil {
		t.Fatal(err)
	}
	stocks := func(rows ...[]ptlactive.Value) ptlactive.Value {
		return ptlactive.Relation(rows)
	}
	eng := ptlactive.NewEngine(ptlactive.Config{
		Registry: reg,
		Initial: map[string]ptlactive.Value{"stock_for_sale": stocks(
			[]ptlactive.Value{ptlactive.Str("IBM"), ptlactive.Float(72)},
		)},
	})
	var alerts []string
	err = eng.AddTrigger("alert", `S in overpriced() and not lasttime (S in overpriced())`,
		func(ctx *ptlactive.ActionContext) error {
			s, _ := ctx.Param("S")
			alerts = append(alerts, s.AsString())
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	err = eng.Exec(1, map[string]ptlactive.Value{"stock_for_sale": stocks(
		[]ptlactive.Value{ptlactive.Str("IBM"), ptlactive.Float(72)},
		[]ptlactive.Value{ptlactive.Str("XYZ"), ptlactive.Float(310)},
	)})
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0] != "XYZ" {
		t.Fatalf("alerts = %v", alerts)
	}
}
