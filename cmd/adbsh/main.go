// Command adbsh is a small scriptable shell for the active database: it
// reads commands from stdin (or a script file), maintains an engine, and
// prints firings and aborts as they happen. It is the interactive
// counterpart of the examples.
//
// Commands (one per line, # comments):
//
//	item <name> <value>                  set an initial item (before rules)
//	trigger <name> :: <condition>        register a trigger (prints firings)
//	constraint <name> :: <constraint>    register an integrity constraint
//	commit <time> [k=v ...] [@ev(args)]  run a transaction
//	emit <time> @ev(args) ...            event-only state
//	show db | firings | history | rules  inspect state
//	eval <time-ignored> :: <condition>   one-off check of a closed condition
//	                                     against the current history
//	save                                 checkpoint: snapshot + reset the WAL
//	recover                              close and reopen from disk (-data)
//	health [<rule>]                      per-rule fault and quarantine state
//	revive <rule>                        lift a rule's quarantine
//
// Values: integers, floats, or quoted strings. Example session:
//
//	item ibm 10
//	trigger doubled :: [t <- time] [x <- item("ibm")] previously (item("ibm") <= 0.5 * x and time >= t - 10)
//	commit 2 ibm=15
//	commit 8 ibm=25
//	show firings
//
// The -workers flag sizes the engine's worker pool for parallel rule
// evaluation (0 = all cores, 1 = sequential); firings are identical at
// every setting.
//
// The -data flag makes the engine durable: every committed operation is
// written to a write-ahead log in the given directory, `save` writes a
// snapshot, and `recover` (or simply restarting adbsh with the same
// -data) rebuilds the engine from disk. Replayed firings are printed
// again during recovery.
//
// Fault isolation: action faults (panics, errors, timeouts) are printed
// as FAULT lines and never stop the session. -max-failures sets the
// per-rule circuit breaker (a rule with that many consecutive action
// failures is quarantined until `revive`), -sweep-budget bounds evaluator
// steps per sweep, and -action-timeout bounds each action's runtime.
//
// Remote mode: -connect host:port runs the same commands against an
// adbserverd over the network instead of an in-process engine. The
// engine-local commands (item, save, recover, eval, export, show
// history) are unavailable there; `follow <n>` is added, subscribing to
// the server's firing stream and printing the next n firings, and `role`
// reports the server's replication role, leader hint, epoch and LSN.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ptlactive"
)

func main() {
	workers := flag.Int("workers", 0, "worker pool size for rule evaluation (0 = all cores, 1 = sequential)")
	dataDir := flag.String("data", "", "durable engine directory (write-ahead log + snapshots); empty = memory-only")
	maxFailures := flag.Int("max-failures", 0, "quarantine a rule after this many consecutive action failures (0 = never)")
	sweepBudget := flag.Int64("sweep-budget", 0, "max evaluator steps per sweep (0 = unlimited)")
	actionTimeout := flag.Duration("action-timeout", 0, "per-action deadline (0 = none)")
	connect := flag.String("connect", "", "run against a remote adbserverd at host:port instead of an in-process engine")
	codec := flag.String("codec", "json", "wire codec to offer in remote mode: json (inspectable frames) or binary")
	segBytes := flag.Int64("wal-segment-bytes", 0, "rotate the WAL at this segment size; snapshot-covered segments are GCed (0 = single segment forever)")
	keepSnaps := flag.Int("keep-snapshots", 0, "snapshot chain length after each checkpoint (0/1 = newest only)")
	histWindow := flag.Int64("history-window", 0, "prune collapsed temporal history older than this many ticks (0 = retain everything)")
	spillHist := flag.Bool("spill-history", false, "spill pruned history to an on-disk cold tier instead of dropping it")
	flag.Parse()
	in := os.Stdin
	if flag.NArg() > 0 {
		fh, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer fh.Close()
		in = fh
	}
	var run func(line string) error
	if *connect != "" {
		r, err := newRemote(*connect, *codec)
		if err != nil {
			fatal(err)
		}
		defer r.close()
		run = r.exec
	} else {
		sh := &shell{
			initial:       map[string]ptlactive.Value{},
			workers:       *workers,
			dataDir:       *dataDir,
			maxFailures:   *maxFailures,
			sweepBudget:   *sweepBudget,
			actionTimeout: *actionTimeout,
			retention: ptlactive.Retention{
				SegmentBytes:  *segBytes,
				KeepSnapshots: *keepSnaps,
				HistoryWindow: *histWindow,
				SpillHistory:  *spillHist,
			},
		}
		run = sh.exec
	}
	sc := bufio.NewScanner(in)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := run(line); err != nil {
			fmt.Fprintf(os.Stderr, "adbsh: line %d: %v\n", lineNo, err)
			os.Exit(1)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

type shell struct {
	initial       map[string]ptlactive.Value
	workers       int
	dataDir       string
	maxFailures   int
	sweepBudget   int64
	actionTimeout time.Duration
	retention     ptlactive.Retention
	eng           *ptlactive.Engine
}

// engine lazily creates the engine; items set before the first rule or
// transaction become the initial state. With -data the engine is opened
// with Restore, so an existing directory is recovered (its initial state
// and rules come from disk, not from this session's `item` lines).
func (s *shell) engine() *ptlactive.Engine {
	if s.eng == nil {
		cfg := ptlactive.Config{
			Initial:         s.initial,
			Workers:         s.workers,
			MaxRuleFailures: s.maxFailures,
			SweepBudget:     s.sweepBudget,
			ActionTimeout:   s.actionTimeout,
			Retention:       s.retention,
			OnFiring: func(f ptlactive.Firing) {
				if len(f.Binding) > 0 {
					fmt.Printf("FIRE %s at %d %v\n", f.Rule, f.Time, f.Binding)
				} else {
					fmt.Printf("FIRE %s at %d\n", f.Rule, f.Time)
				}
			},
			OnRuleFault: func(f ptlactive.RuleFault) {
				fmt.Printf("FAULT %s at %d: %v\n", f.Rule, f.Time, f.Err)
			},
		}
		if s.dataDir == "" {
			s.eng = ptlactive.NewEngine(cfg)
			return s.eng
		}
		cfg.Durability = ptlactive.DurabilityWAL
		eng, err := ptlactive.Restore(cfg, s.dataDir)
		if err != nil {
			fatal(err)
		}
		s.eng = eng
		printRecovery(eng.Recovery())
	}
	return s.eng
}

// printRecovery summarizes what Restore found on disk.
func printRecovery(info ptlactive.RecoveryInfo) {
	if info.SnapshotLSN == 0 && info.ReplayedRecords <= 1 {
		return
	}
	fmt.Printf("recovered: snapshot LSN %d, %d wal records replayed\n", info.SnapshotLSN, info.ReplayedRecords)
	if info.TruncatedAt >= 0 {
		fmt.Printf("recovered: torn wal tail truncated at byte %d\n", info.TruncatedAt)
	}
	for _, err := range info.ReplayErrors {
		fmt.Printf("recovered: replay error: %v\n", err)
	}
}

func (s *shell) exec(line string) error {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case "item":
		if s.eng != nil {
			return errors.New("item must precede rules and transactions")
		}
		name, vs, ok := strings.Cut(rest, " ")
		if !ok {
			return errors.New("usage: item <name> <value>")
		}
		v, err := parseValue(strings.TrimSpace(vs))
		if err != nil {
			return err
		}
		s.initial[name] = v
		return nil
	case "trigger", "constraint":
		name, cond, ok := strings.Cut(rest, "::")
		if !ok {
			return fmt.Errorf("usage: %s <name> :: <condition>", cmd)
		}
		name = strings.TrimSpace(name)
		cond = strings.TrimSpace(cond)
		if cmd == "trigger" {
			return s.engine().AddTrigger(name, cond, nil)
		}
		return s.engine().AddConstraint(name, cond)
	case "commit":
		fields := splitFields(rest)
		if len(fields) == 0 {
			return errors.New("usage: commit <time> [k=v ...] [@ev(args) ...]")
		}
		ts, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad time %q", fields[0])
		}
		updates := map[string]ptlactive.Value{}
		var events []ptlactive.Event
		for _, f := range fields[1:] {
			if strings.HasPrefix(f, "@") {
				ev, err := parseEvent(f)
				if err != nil {
					return err
				}
				events = append(events, ev)
				continue
			}
			k, vs, ok := strings.Cut(f, "=")
			if !ok {
				return fmt.Errorf("bad update %q", f)
			}
			v, err := parseValue(vs)
			if err != nil {
				return err
			}
			updates[k] = v
		}
		err = s.engine().Exec(ts, updates, events...)
		var ce *ptlactive.ConstraintError
		if errors.As(err, &ce) {
			fmt.Printf("ABORT at %d: %s\n", ts, ce.Constraint)
			return nil
		}
		return err
	case "emit":
		fields := splitFields(rest)
		if len(fields) < 2 {
			return errors.New("usage: emit <time> @ev(args) ...")
		}
		ts, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad time %q", fields[0])
		}
		var events []ptlactive.Event
		for _, f := range fields[1:] {
			ev, err := parseEvent(f)
			if err != nil {
				return err
			}
			events = append(events, ev)
		}
		return s.engine().Emit(ts, events...)
	case "eval":
		_, cond, ok := strings.Cut(rest, "::")
		if !ok {
			cond = rest
		}
		f, err := ptlactive.ParseCondition(strings.TrimSpace(cond))
		if err != nil {
			return err
		}
		eng := s.engine()
		nv := ptlactive.NewNaiveEvaluator(eng.Registry(), eng.History(), eng)
		got, err := nv.SatLast(f, nil)
		if err != nil {
			return err
		}
		fmt.Printf("eval: %t\n", got)
		return nil
	case "save":
		if s.dataDir == "" {
			return errors.New("save requires -data")
		}
		if err := s.engine().Checkpoint(); err != nil {
			return err
		}
		fmt.Println("saved: snapshot written, wal reset")
		return nil
	case "recover":
		if s.dataDir == "" {
			return errors.New("recover requires -data")
		}
		if s.eng != nil {
			if err := s.eng.Close(); err != nil {
				return err
			}
			s.eng = nil
		}
		s.engine() // reopen from disk; prints the recovery summary
		return nil
	case "health":
		eng := s.engine()
		names := eng.RuleNames()
		if rest != "" {
			names = []string{rest}
		}
		for _, n := range names {
			h, ok := eng.RuleHealth(n)
			if !ok {
				return fmt.Errorf("unknown rule %q", n)
			}
			status := "ok"
			if h.Quarantined {
				status = "QUARANTINED"
			}
			line := fmt.Sprintf("  %s: %s, %d consecutive / %d total failures", h.Rule, status, h.ConsecutiveFailures, h.TotalFailures)
			if h.LastError != nil {
				line += fmt.Sprintf(", last at %d: %v", h.LastFailureAt, h.LastError)
			}
			fmt.Println(line)
		}
		if err := eng.Degraded(); err != nil {
			fmt.Printf("  engine: DEGRADED: %v\n", err)
		}
		return nil
	case "storage":
		st, err := s.engine().Storage()
		if err != nil {
			return err
		}
		fmt.Printf("segments=%d wal_bytes=%d snapshots=%d snapshot_bytes=%d head_lsn=%d last_lsn=%d\n",
			st.Segments, st.WALBytes, st.Snapshots, st.SnapshotBytes, st.HeadLSN, st.LastLSN)
		if st.HistoryWindow > 0 {
			policy := "drop"
			if st.SpillHistory {
				policy = "spill"
			}
			fmt.Printf("history: window=%d floor=%d policy=%s tier_rows=%d tier_bytes=%d\n",
				st.HistoryWindow, st.HistoryFloor, policy, st.TierRows, st.TierBytes)
		} else {
			fmt.Println("history: retained forever")
		}
		return nil
	case "revive":
		if rest == "" {
			return errors.New("usage: revive <rule>")
		}
		if err := s.engine().ReviveRule(rest); err != nil {
			return err
		}
		fmt.Printf("revived %s\n", rest)
		return nil
	case "export":
		return s.engine().ExportHistory(os.Stdout)
	case "show":
		eng := s.engine()
		switch rest {
		case "db":
			fmt.Println(eng.DB())
		case "firings":
			for _, f := range eng.Firings() {
				fmt.Printf("  %s at %d %v\n", f.Rule, f.Time, f.Binding)
			}
			fmt.Printf("  (%d total)\n", len(eng.Firings()))
		case "history":
			fmt.Print(eng.History())
		case "rules":
			for _, n := range eng.RuleNames() {
				info, _ := eng.Rule(n)
				kind := "trigger"
				if info.Constraint {
					kind = "constraint"
				}
				fmt.Printf("  %s (%s, params %v, pending %d)\n", n, kind, info.Parameters, info.PendingStates)
			}
		default:
			return fmt.Errorf("show what? db|firings|history|rules")
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// splitFields splits on spaces but keeps quoted strings and @ev(...) forms
// intact.
func splitFields(s string) []string {
	var out []string
	var cur strings.Builder
	depth := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			cur.WriteByte(c)
			if c == '"' {
				inStr = false
			}
		case c == '"':
			cur.WriteByte(c)
			inStr = true
		case c == '(':
			depth++
			cur.WriteByte(c)
		case c == ')':
			depth--
			cur.WriteByte(c)
		case c == ' ' && depth == 0:
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// parseEvent parses @name or @name(arg, ...).
func parseEvent(s string) (ptlactive.Event, error) {
	if !strings.HasPrefix(s, "@") {
		return ptlactive.Event{}, fmt.Errorf("event must start with @: %q", s)
	}
	s = s[1:]
	name, argstr, hasArgs := strings.Cut(s, "(")
	if !hasArgs {
		return ptlactive.NewEvent(name), nil
	}
	if !strings.HasSuffix(argstr, ")") {
		return ptlactive.Event{}, fmt.Errorf("unterminated event args in %q", s)
	}
	argstr = strings.TrimSuffix(argstr, ")")
	var args []ptlactive.Value
	for _, a := range strings.Split(argstr, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		v, err := parseValue(a)
		if err != nil {
			return ptlactive.Event{}, err
		}
		args = append(args, v)
	}
	return ptlactive.NewEvent(name, args...), nil
}

// parseValue parses an integer, float, quoted string, bool, or bare word
// (treated as a string).
func parseValue(s string) (ptlactive.Value, error) {
	if s == "" {
		return ptlactive.Value{}, errors.New("empty value")
	}
	if s == "true" {
		return ptlactive.Bool(true), nil
	}
	if s == "false" {
		return ptlactive.Bool(false), nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return ptlactive.Int(i), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return ptlactive.Float(f), nil
	}
	if strings.HasPrefix(s, `"`) && strings.HasSuffix(s, `"`) && len(s) >= 2 {
		return ptlactive.Str(s[1 : len(s)-1]), nil
	}
	return ptlactive.Str(s), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adbsh:", err)
	os.Exit(1)
}
