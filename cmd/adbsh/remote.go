package main

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"ptlactive"
	"ptlactive/client"
	"ptlactive/internal/server/wire"
)

// remote executes shell commands against an adbserverd instead of an
// in-process engine (-connect). The command grammar is the same; the
// engine-local commands that have no remote equivalent (item, save,
// recover, eval, export, show history) report so instead of guessing.
// `follow <n>` is remote-only: it subscribes to the server's firing
// stream and prints the next n firings as FIRE lines.
type remote struct {
	cli *client.Client
}

// newRemote dials the server offering the named codec. The shell
// defaults to "json" so a tcpdump of an adbsh session stays readable;
// "binary" offers the full codec list and lets negotiation pick the
// fast wire.
func newRemote(addr, codec string) (*remote, error) {
	c, ok := wire.ParseCodec(codec)
	if !ok {
		return nil, fmt.Errorf("unknown codec %q (want %s or %s)",
			codec, wire.CodecNameJSON, wire.CodecNameBinary)
	}
	codecs := []string{wire.CodecNameJSON}
	if c == wire.CodecBinary {
		codecs = wire.DefaultCodecs()
	}
	cli, err := client.DialOptions(addr, client.Options{Codecs: codecs, Retry: client.DefaultRetry()})
	if err != nil {
		return nil, err
	}
	return &remote{cli: cli}, nil
}

func (r *remote) close() { r.cli.Close() }

func (r *remote) exec(line string) error {
	cmd, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	switch cmd {
	case "item", "save", "recover", "eval", "export":
		return fmt.Errorf("%s is not supported in remote mode (engine-local)", cmd)
	case "trigger", "constraint":
		name, cond, ok := strings.Cut(rest, "::")
		if !ok {
			return fmt.Errorf("usage: %s <name> :: <condition>", cmd)
		}
		name = strings.TrimSpace(name)
		cond = strings.TrimSpace(cond)
		if cmd == "trigger" {
			return r.cli.AddTrigger(name, cond)
		}
		return r.cli.AddConstraint(name, cond)
	case "commit":
		fields := splitFields(rest)
		if len(fields) == 0 {
			return errors.New("usage: commit <time> [k=v ...] [@ev(args) ...]")
		}
		ts, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad time %q", fields[0])
		}
		tx := r.cli.Txn().At(ts)
		for _, f := range fields[1:] {
			if strings.HasPrefix(f, "@") {
				ev, err := parseEvent(f)
				if err != nil {
					return err
				}
				tx.Emit(ev)
				continue
			}
			k, vs, ok := strings.Cut(f, "=")
			if !ok {
				return fmt.Errorf("bad update %q", f)
			}
			v, err := parseValue(vs)
			if err != nil {
				return err
			}
			tx.Set(k, v)
		}
		applied, err := tx.Commit()
		var ce *ptlactive.ConstraintError
		if errors.As(err, &ce) {
			fmt.Printf("ABORT at %d: %s\n", ts, ce.Constraint)
			return nil
		}
		if err == nil && ts == 0 {
			fmt.Printf("committed at %d\n", applied)
		}
		return err
	case "emit":
		fields := splitFields(rest)
		if len(fields) < 2 {
			return errors.New("usage: emit <time> @ev(args) ...")
		}
		ts, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return fmt.Errorf("bad time %q", fields[0])
		}
		var events []ptlactive.Event
		for _, f := range fields[1:] {
			ev, err := parseEvent(f)
			if err != nil {
				return err
			}
			events = append(events, ev)
		}
		_, err = r.cli.Emit(ts, events...)
		return err
	case "follow":
		n, err := strconv.Atoi(rest)
		if err != nil || n <= 0 {
			return errors.New("usage: follow <n firings>")
		}
		sub, err := r.cli.Subscribe(0)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			select {
			case ev, ok := <-sub.C:
				if !ok {
					return errors.New("subscription ended early")
				}
				if ev.Gap != 0 {
					fmt.Printf("GAP %d firings dropped\n", ev.Gap)
					i--
					continue
				}
				printFire(ev.Firing)
			case <-time.After(30 * time.Second):
				return errors.New("follow: timed out waiting for firings")
			}
		}
		if st := r.cli.Stats(); st.DroppedPushes > 0 || st.GapFirings > 0 {
			fmt.Fprintf(os.Stderr, "warning: incomplete stream: %d firing(s) dropped with no live subscription, %d lost to gap markers\n",
				st.DroppedPushes, st.GapFirings)
		}
		return nil
	case "health":
		h, err := r.cli.Health()
		if err != nil {
			return err
		}
		for _, hr := range h.Rules {
			if rest != "" && hr.Rule != rest {
				continue
			}
			status := "ok"
			if hr.Quarantined {
				status = "QUARANTINED"
			}
			line := fmt.Sprintf("  %s: %s, %d consecutive / %d total failures", hr.Rule, status, hr.Consecutive, hr.Total)
			if hr.LastError != "" {
				line += fmt.Sprintf(", last at %d: %v", hr.LastAt, hr.LastError)
			}
			fmt.Println(line)
		}
		if h.Degraded != "" {
			fmt.Printf("  engine: DEGRADED: %v\n", h.Degraded)
		}
		return nil
	case "role":
		rs, err := r.cli.Role()
		if err != nil {
			return err
		}
		fmt.Printf("role=%s leader=%s epoch=%d lsn=%d\n", rs.Role, rs.Leader, rs.Epoch, rs.LSN)
		return nil
	case "storage":
		st, err := r.cli.Storage()
		if err != nil {
			return err
		}
		fmt.Printf("segments=%d wal_bytes=%d snapshots=%d snapshot_bytes=%d head_lsn=%d last_lsn=%d\n",
			st.Segments, st.WALBytes, st.Snapshots, st.SnapshotBytes, st.HeadLSN, st.LastLSN)
		if st.HistoryWindow > 0 {
			policy := "drop"
			if st.SpillHistory {
				policy = "spill"
			}
			fmt.Printf("history: window=%d floor=%d policy=%s tier_rows=%d tier_bytes=%d\n",
				st.HistoryWindow, st.HistoryFloor, policy, st.TierRows, st.TierBytes)
		} else {
			fmt.Println("history: retained forever")
		}
		return nil
	case "revive":
		if rest == "" {
			return errors.New("usage: revive <rule>")
		}
		if err := r.cli.ReviveRule(rest); err != nil {
			return err
		}
		fmt.Printf("revived %s\n", rest)
		return nil
	case "show":
		switch rest {
		case "db":
			items, err := r.cli.DB()
			if err != nil {
				return err
			}
			names := make([]string, 0, len(items))
			for n := range items {
				names = append(names, n)
			}
			sort.Strings(names)
			parts := make([]string, len(names))
			for i, n := range names {
				parts[i] = fmt.Sprintf("%s=%v", n, items[n])
			}
			fmt.Printf("{%s}\n", strings.Join(parts, ", "))
			return nil
		case "firings":
			fs, err := r.cli.Firings(0)
			if err != nil {
				return err
			}
			for _, f := range fs {
				fmt.Printf("  %s at %d %v\n", f.Rule, f.Time, f.Binding)
			}
			fmt.Printf("  (%d total)\n", len(fs))
			return nil
		case "rules":
			rules, err := r.cli.Rules()
			if err != nil {
				return err
			}
			for _, info := range rules {
				kind := "trigger"
				if info.Constraint {
					kind = "constraint"
				}
				fmt.Printf("  %s (%s, params %v, pending %d)\n", info.Name, kind, info.Parameters, info.Pending)
			}
			return nil
		case "history":
			return errors.New("show history is not supported in remote mode")
		default:
			return fmt.Errorf("show what? db|firings|rules")
		}
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func printFire(f ptlactive.Firing) {
	if len(f.Binding) > 0 {
		fmt.Printf("FIRE %s at %d %v\n", f.Rule, f.Time, f.Binding)
	} else {
		fmt.Printf("FIRE %s at %d\n", f.Rule, f.Time)
	}
}
