package main

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"ptlactive/internal/adb"
	"ptlactive/internal/server"
	"ptlactive/internal/value"
)

// startTestServer runs an adbserverd-equivalent in-process and returns
// its address.
func startTestServer(t *testing.T) string {
	t.Helper()
	eng := adb.NewEngine(adb.Config{
		Initial: map[string]value.Value{"ibm": value.NewInt(10)},
	})
	srv, err := server.New(server.Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String()
}

func runRemote(t *testing.T, r *remote, lines ...string) {
	t.Helper()
	for i, line := range lines {
		if err := r.exec(line); err != nil {
			t.Fatalf("line %d (%q): %v", i+1, line, err)
		}
	}
}

func TestRemoteShellSession(t *testing.T) {
	addr := startTestServer(t)
	r, err := newRemote(addr, "json")
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	runRemote(t, r,
		`trigger doubled :: [t <- time] [x <- item("ibm")] previously (item("ibm") <= 0.5 * x and time >= t - 10)`,
		`commit 2 ibm=15`,
		`commit 5 ibm=18`,
		`commit 8 ibm=25`,
		`show db`,
		`show firings`,
		`show rules`,
		`health`,
		`follow 1`,
	)
	fs, err := r.cli.Firings(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Time != 8 {
		t.Fatalf("firings = %v", fs)
	}
}

func TestRemoteShellConstraintAbort(t *testing.T) {
	addr := startTestServer(t)
	r, err := newRemote(addr, "json")
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	runRemote(t, r,
		`constraint nonneg :: item("ibm") >= 0`,
		`commit 1 ibm=5`,
		`commit 2 ibm=-1`, // abort is reported, not an error
	)
	db, err := r.cli.DB()
	if err != nil {
		t.Fatal(err)
	}
	if db["ibm"].AsInt() != 5 {
		t.Fatalf("ibm = %v, want 5 (abort must not apply)", db["ibm"])
	}
}

func TestRemoteShellUnsupported(t *testing.T) {
	addr := startTestServer(t)
	r, err := newRemote(addr, "json")
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	for _, line := range []string{"item x 1", "save", "recover", "eval :: true", "export", "show history"} {
		err := r.exec(line)
		if err == nil || !strings.Contains(err.Error(), "not supported in remote mode") {
			t.Fatalf("%q: err = %v, want a remote-mode refusal", line, err)
		}
	}
}

func TestRemoteCodecFlag(t *testing.T) {
	addr := startTestServer(t)
	r, err := newRemote(addr, "binary")
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	runRemote(t, r, `commit 1 ibm=10`, `show db`)

	if _, err := newRemote(addr, "zstd"); err == nil {
		t.Fatal("newRemote accepted an unknown codec")
	}
}
