package main

import (
	"errors"
	"strings"
	"testing"

	"ptlactive"
)

func run(t *testing.T, lines ...string) *shell {
	t.Helper()
	sh := &shell{initial: map[string]ptlactive.Value{}}
	for i, line := range lines {
		if err := sh.exec(line); err != nil {
			t.Fatalf("line %d (%q): %v", i+1, line, err)
		}
	}
	return sh
}

func TestShellQuickstartScript(t *testing.T) {
	sh := run(t,
		`item ibm 10`,
		`trigger doubled :: [t <- time] [x <- item("ibm")] previously (item("ibm") <= 0.5 * x and time >= t - 10)`,
		`commit 2 ibm=15`,
		`commit 5 ibm=18`,
		`commit 8 ibm=25`,
	)
	fs := sh.eng.Firings()
	if len(fs) != 1 || fs[0].Time != 8 {
		t.Fatalf("firings = %v", fs)
	}
}

func TestShellConstraintAbort(t *testing.T) {
	sh := run(t,
		`item bal 10`,
		`constraint nonneg :: item("bal") >= 0`,
		`commit 1 bal=5`,
		`commit 2 bal=-1`, // abort is reported, not an error
	)
	v, _ := sh.eng.DB().Get("bal")
	if v.AsInt() != 5 {
		t.Fatalf("bal = %v, want 5 (abort must not apply)", v)
	}
}

func TestShellEmitAndEvents(t *testing.T) {
	sh := run(t,
		`trigger watch :: @login(U)`,
		`emit 1 @login("alice")`,
		`emit 2 @login("bob") @logout("alice")`,
	)
	if len(sh.eng.Firings()) != 2 {
		t.Fatalf("firings = %v", sh.eng.Firings())
	}
}

func TestShellErrors(t *testing.T) {
	sh := &shell{initial: map[string]ptlactive.Value{}}
	bad := []string{
		`item`,               // missing args
		`trigger x`,          // missing ::
		`commit`,             // missing time
		`commit x`,           // bad time
		`commit 1 noequals`,  // bad update
		`emit 1`,             // no events
		`emit x @a`,          // bad time
		`show nothing`,       // unknown target
		`frobnicate`,         // unknown command
		`trigger t :: and x`, // parse error
	}
	for _, line := range bad {
		if err := sh.exec(line); err == nil {
			t.Errorf("exec(%q) should fail", line)
		}
	}
	// item after engine creation fails.
	sh2 := run(t, `trigger t :: true`)
	if err := sh2.exec(`item a 1`); err == nil {
		t.Error("item after rules should fail")
	}
}

func TestSplitFields(t *testing.T) {
	got := splitFields(`1 ibm=15 @update_stocks("IBM", 2) x="a b"`)
	want := []string{`1`, `ibm=15`, `@update_stocks("IBM", 2)`, `x="a b"`}
	if len(got) != len(want) {
		t.Fatalf("splitFields = %q", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("field %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestParseEvent(t *testing.T) {
	ev, err := parseEvent(`@login("alice", 3)`)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Name != "login" || len(ev.Args) != 2 || ev.Args[0].AsString() != "alice" || ev.Args[1].AsInt() != 3 {
		t.Fatalf("event = %v", ev)
	}
	if _, err := parseEvent(`login`); err == nil {
		t.Error("missing @ should fail")
	}
	if _, err := parseEvent(`@login(1`); err == nil {
		t.Error("unterminated args should fail")
	}
	ev, err = parseEvent(`@tick`)
	if err != nil || ev.Name != "tick" || len(ev.Args) != 0 {
		t.Fatalf("bare event = %v %v", ev, err)
	}
}

func TestParseValue(t *testing.T) {
	cases := map[string]string{
		`3`:      "3",
		`2.5`:    "2.5",
		`"a b"`:  `"a b"`,
		`true`:   "true",
		`false`:  "false",
		`barens`: `"barens"`,
	}
	for in, want := range cases {
		v, err := parseValue(in)
		if err != nil {
			t.Fatalf("parseValue(%q): %v", in, err)
		}
		if v.String() != want {
			t.Errorf("parseValue(%q) = %s, want %s", in, v, want)
		}
	}
	if _, err := parseValue(""); err == nil {
		t.Error("empty value should fail")
	}
}

func TestShellEvalAndShow(t *testing.T) {
	sh := run(t,
		`item a 1`,
		`trigger t :: item("a") > 0`,
		`commit 1 a=2`,
		`eval :: previously item("a") = 2`,
		`show db`,
		`show rules`,
		`show history`,
		`show firings`,
	)
	if !strings.Contains(sh.eng.DB().String(), "a=2") {
		t.Fatal("db state wrong")
	}
}

func TestShellExport(t *testing.T) {
	sh := run(t,
		`item a 1`,
		`trigger r :: item("a") > 0`,
		`commit 1 a=2`,
		`export`,
	)
	_ = sh
}

func TestShellHealthAndRevive(t *testing.T) {
	sh := &shell{initial: map[string]ptlactive.Value{}, maxFailures: 1}
	for _, line := range []string{
		`item a 1`,
		`trigger t :: @hit`,
		`emit 1 @hit`,
	} {
		if err := sh.exec(line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	// Shell triggers have nil actions, so nothing can fail; quarantine a
	// rule through the engine to exercise the commands against real state.
	if err := sh.eng.AddTrigger("bad", `@hit`, func(ctx *ptlactive.ActionContext) error {
		return errors.New("nope")
	}); err != nil {
		t.Fatal(err)
	}
	if err := sh.exec(`emit 2 @hit`); err != nil {
		t.Fatal(err)
	}
	if got := sh.eng.QuarantinedRules(); len(got) != 1 || got[0] != "bad" {
		t.Fatalf("QuarantinedRules = %v", got)
	}
	for _, line := range []string{`health`, `health bad`, `revive bad`} {
		if err := sh.exec(line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	if got := sh.eng.QuarantinedRules(); len(got) != 0 {
		t.Fatalf("still quarantined after revive: %v", got)
	}
	if err := sh.exec(`health nosuch`); err == nil {
		t.Error("health of unknown rule should fail")
	}
	if err := sh.exec(`revive nosuch`); err == nil {
		t.Error("revive of unknown rule should fail")
	}
	if err := sh.exec(`revive`); err == nil {
		t.Error("revive without a rule should fail")
	}
}
