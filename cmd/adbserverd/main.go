// Command adbserverd serves one active database engine over the network:
// clients connect with the ptlactive wire protocol (package client, or
// adbsh -connect), run transactions, register rules, query state and
// subscribe to rule firings.
//
//	adbserverd -addr 127.0.0.1:7411 -data /var/lib/adb
//
// All mutations are serialized through one commit pipeline, so the firing
// stream every subscriber sees is the deterministic stream a single
// process would produce for the same commit order. With -data the engine
// is durable (write-ahead log + snapshots) and a restart recovers it.
//
// Subscription queues are bounded (-sub-queue); -overflow picks what
// happens to a lagging subscriber: "drop" delivers a gap marker counting
// the missed firings, "disconnect" severs the connection.
//
// SIGTERM or SIGINT drains gracefully: stop accepting, finish queued
// commits, flush every subscriber queue, close the engine, exit 0.
//
// -port-file writes the actually bound address (useful with -addr :0) so
// scripts can find the server.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ptlactive/internal/adb"
	"ptlactive/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "listen address (use :0 for a random port with -port-file)")
	portFile := flag.String("port-file", "", "write the bound address to this file once listening")
	dataDir := flag.String("data", "", "durable engine directory (write-ahead log + snapshots); empty = memory-only")
	workers := flag.Int("workers", 0, "worker pool size for rule evaluation (0 = all cores, 1 = sequential)")
	maxConns := flag.Int("max-conns", 64, "maximum concurrent client sessions")
	idleTimeout := flag.Duration("idle-timeout", 0, "drop sessions idle longer than this (0 = never)")
	subQueue := flag.Int("sub-queue", 256, "bounded firing queue per subscriber")
	overflow := flag.String("overflow", "drop", "subscriber overflow policy: drop (gap markers) or disconnect")
	maxFailures := flag.Int("max-failures", 0, "quarantine a rule after this many consecutive action failures (0 = never)")
	sweepBudget := flag.Int64("sweep-budget", 0, "max evaluator steps per sweep (0 = unlimited)")
	actionTimeout := flag.Duration("action-timeout", 0, "per-action deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown bound")
	flag.Parse()

	var policy server.OverflowPolicy
	switch *overflow {
	case "drop":
		policy = server.DropWithGap
	case "disconnect":
		policy = server.Disconnect
	default:
		fatal(fmt.Errorf("bad -overflow %q: want drop or disconnect", *overflow))
	}

	cfg := adb.Config{
		Workers:         *workers,
		MaxRuleFailures: *maxFailures,
		SweepBudget:     *sweepBudget,
		ActionTimeout:   *actionTimeout,
	}
	var eng *adb.Engine
	if *dataDir != "" {
		cfg.Durability = adb.DurabilityWAL
		var err error
		eng, err = adb.Restore(cfg, *dataDir)
		if err != nil {
			fatal(err)
		}
		info := eng.Recovery()
		if info.SnapshotLSN > 0 || info.ReplayedRecords > 1 {
			logf("recovered: snapshot LSN %d, %d wal records replayed", info.SnapshotLSN, info.ReplayedRecords)
		}
	} else {
		eng = adb.NewEngine(cfg)
	}

	srv, err := server.New(server.Config{
		Engine:          eng,
		MaxConns:        *maxConns,
		IdleTimeout:     *idleTimeout,
		SubscriberQueue: *subQueue,
		Overflow:        policy,
		Logf:            logf,
	})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal(err)
		}
	}
	logf("listening on %s", ln.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case sig := <-sigs:
		logf("%v: draining (bound %v)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		logf("clean drain")
	case err := <-serveErr:
		fatal(err)
	}
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adbserverd: "+format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adbserverd:", err)
	os.Exit(1)
}
