// Command adbserverd serves one active database engine over the network:
// clients connect with the ptlactive wire protocol (package client, or
// adbsh -connect), run transactions, register rules, query state and
// subscribe to rule firings.
//
//	adbserverd -addr 127.0.0.1:7411 -data /var/lib/adb
//
// All mutations are serialized through one commit pipeline, so the firing
// stream every subscriber sees is the deterministic stream a single
// process would produce for the same commit order. With -data the engine
// is durable (write-ahead log + snapshots) and a restart recovers it.
//
// Replication (DESIGN.md §4i): a durable server is always a replication
// primary — followers connect with the replicate request and receive
// every group-commit WAL batch. A server started with -replica-of runs as
// a follower instead: it replays the primary's WAL into its own
// directory, serves reads and firing subscriptions, and refuses writes
// with a not_primary redirect. With -lease both roles take part in
// failover: the primary must hold the flock lease to serve writes (and
// fail-stops if the lease anchor breaks), a follower polls the lease and
// promotes itself — fenced by the lease's epoch — the moment the
// primary's death releases it.
//
//	adbserverd -addr :7411 -data /var/lib/adb/a -lease /var/lib/adb/lease
//	adbserverd -addr :7412 -data /var/lib/adb/b -lease /var/lib/adb/lease \
//	           -replica-of 127.0.0.1:7411
//
// Subscription queues are bounded (-sub-queue); -overflow picks what
// happens to a lagging subscriber: "drop" delivers a gap marker counting
// the missed firings, "disconnect" severs the connection.
//
// Storage lifecycle (DESIGN.md §4k): -snapshot-every picks a checkpoint
// cadence, -wal-segment-bytes a rotation size, -keep-snapshots the chain
// depth, and -history-window/-spill-history the temporal-history
// retention policy, so a server under sustained commits holds a bounded
// hot set on disk. The "storage" query (adbsh storage) reports the
// resulting footprint.
//
// SIGTERM or SIGINT drains gracefully: stop accepting, finish queued
// commits, flush every subscriber queue, close the engine, exit 0.
//
// -port-file writes the actually bound address (useful with -addr :0) so
// scripts can find the server.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ptlactive/internal/adb"
	"ptlactive/internal/replica"
	"ptlactive/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "listen address (use :0 for a random port with -port-file)")
	portFile := flag.String("port-file", "", "write the bound address to this file once listening")
	dataDir := flag.String("data", "", "durable engine directory (write-ahead log + snapshots); empty = memory-only")
	workers := flag.Int("workers", 0, "worker pool size for rule evaluation (0 = all cores, 1 = sequential)")
	maxConns := flag.Int("max-conns", 64, "maximum concurrent client sessions")
	idleTimeout := flag.Duration("idle-timeout", 0, "drop sessions idle longer than this (0 = never)")
	subQueue := flag.Int("sub-queue", 256, "bounded firing queue per subscriber")
	overflow := flag.String("overflow", "drop", "subscriber overflow policy: drop (gap markers) or disconnect")
	maxFailures := flag.Int("max-failures", 0, "quarantine a rule after this many consecutive action failures (0 = never)")
	sweepBudget := flag.Int64("sweep-budget", 0, "max evaluator steps per sweep (0 = unlimited)")
	actionTimeout := flag.Duration("action-timeout", 0, "per-action deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown bound")
	replicaOf := flag.String("replica-of", "", "run as a follower replicating from this primary address")
	leasePath := flag.String("lease", "", "primary lease file (flock-anchored); primaries must hold it, followers poll it to promote")
	leasePoll := flag.Duration("lease-poll", 200*time.Millisecond, "follower lease poll / primary lease verify interval")
	advertise := flag.String("advertise", "", "address clients should redial this node at (default: the bound address)")
	snapEvery := flag.Int("snapshot-every", 0, "checkpoint a snapshot every N commits; snapshot-covered WAL segments become GC-eligible (0 = wal-only durability)")
	segBytes := flag.Int64("wal-segment-bytes", 0, "rotate the WAL at this segment size; snapshot-covered segments are GCed (0 = single segment forever)")
	keepSnaps := flag.Int("keep-snapshots", 0, "snapshot chain length after each checkpoint (0/1 = newest only)")
	histWindow := flag.Int64("history-window", 0, "prune collapsed temporal history older than this many ticks (0 = retain everything)")
	spillHist := flag.Bool("spill-history", false, "spill pruned history to an on-disk cold tier instead of dropping it")
	track := flag.String("track", "", "comma-separated item names whose historic values the engine records for AsOf reads")
	flag.Parse()

	var policy server.OverflowPolicy
	switch *overflow {
	case "drop":
		policy = server.DropWithGap
	case "disconnect":
		policy = server.Disconnect
	default:
		fatal(fmt.Errorf("bad -overflow %q: want drop or disconnect", *overflow))
	}
	if *replicaOf != "" && *dataDir == "" {
		fatal(fmt.Errorf("-replica-of requires -data (the follower persists the shipped wal)"))
	}

	var trackItems []string
	for _, name := range strings.Split(*track, ",") {
		if name = strings.TrimSpace(name); name != "" {
			trackItems = append(trackItems, name)
		}
	}

	cfg := adb.Config{
		Workers:         *workers,
		MaxRuleFailures: *maxFailures,
		SweepBudget:     *sweepBudget,
		ActionTimeout:   *actionTimeout,
		TrackItems:      trackItems,
		Retention: adb.Retention{
			SegmentBytes:  *segBytes,
			KeepSnapshots: *keepSnaps,
			HistoryWindow: *histWindow,
			SpillHistory:  *spillHist,
		},
	}

	// Listen before building the node so the default advertise address is
	// the real bound one (-addr :0 resolves here).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	selfAddr := *advertise
	if selfAddr == "" {
		selfAddr = ln.Addr().String()
	}

	scfg := server.Config{
		MaxConns:        *maxConns,
		IdleTimeout:     *idleTimeout,
		SubscriberQueue: *subQueue,
		Overflow:        policy,
		Logf:            logf,
	}

	var node *replica.Node
	switch {
	case *replicaOf != "":
		// Follower: replay the primary's WAL, refuse writes, maybe promote.
		node, err = replica.NewFollower(cfg, *dataDir, *replicaOf, selfAddr)
		if err != nil {
			fatal(err)
		}
		stream := replica.StartStream(node, replica.StreamConfig{Primary: *replicaOf, Logf: logf})
		if *leasePath != "" {
			go pollLease(node, stream, *leasePath, selfAddr, *leasePoll)
		}
		scfg.Backend = node
		scfg.WALSource = node
		scfg.RoleInfo = node.RoleInfo
		logf("follower of %s (data %s)", *replicaOf, *dataDir)

	case *dataDir != "":
		// Durable primary: hold the lease (when configured) before touching
		// the data, then serve writes and replication.
		var lease *replica.FileLease
		if *leasePath != "" {
			lease, err = replica.TryAcquire(*leasePath, selfAddr)
			if err != nil {
				fatal(fmt.Errorf("acquire lease: %w", err))
			}
			logf("holding lease %s at epoch %d", *leasePath, lease.Epoch())
		}
		cfg.Durability = adb.DurabilityWAL
		if *snapEvery > 0 {
			cfg.Durability = adb.DurabilitySnapshot
			cfg.SnapshotEvery = *snapEvery
		}
		eng, err := adb.Restore(cfg, *dataDir)
		if err != nil {
			fatal(err)
		}
		info := eng.Recovery()
		if info.SnapshotLSN > 0 || info.ReplayedRecords > 1 {
			logf("recovered: snapshot LSN %d, %d wal records replayed", info.SnapshotLSN, info.ReplayedRecords)
		}
		node = replica.NewPrimary(server.NewEngineBackend(eng), selfAddr)
		if lease != nil {
			if err := node.Shipper().BumpEpoch(lease.Epoch()); err != nil {
				fatal(fmt.Errorf("fence epoch %d: %w", lease.Epoch(), err))
			}
			go guardLease(lease, *leasePoll)
		}
		scfg.Backend = node
		scfg.WALSource = node
		scfg.RoleInfo = node.RoleInfo

	default:
		// Memory-only: no WAL, so no replication; plain standalone engine.
		scfg.Engine = adb.NewEngine(cfg)
	}

	srv, err := server.New(scfg)
	if err != nil {
		fatal(err)
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal(err)
		}
	}
	logf("listening on %s", ln.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case sig := <-sigs:
		logf("%v: draining (bound %v)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		logf("clean drain")
	case err := <-serveErr:
		fatal(err)
	}
}

// pollLease is the follower's promotion loop: poll TryAcquire until the
// primary's death releases the flock, then stop the replication stream
// and promote under the lease's freshly minted epoch.
func pollLease(node *replica.Node, stream *replica.Stream, path, owner string, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for range t.C {
		lease, err := replica.TryAcquire(path, owner)
		if errors.Is(err, replica.ErrLeaseHeld) {
			continue
		}
		if err != nil {
			logf("lease poll: %v", err)
			continue
		}
		logf("lease %s acquired at epoch %d; promoting", path, lease.Epoch())
		stream.Stop()
		if err := node.Promote(lease.Epoch()); err != nil {
			fatal(fmt.Errorf("promote: %w", err))
		}
		logf("promoted to primary at epoch %d", lease.Epoch())
		guardLease(lease, every)
		return
	}
}

// guardLease fail-stops the primary if its lease anchor breaks: a
// replaced or deleted lease file means this process can no longer prove
// it is the primary, and continuing to acknowledge writes would split the
// brain.
func guardLease(lease *replica.FileLease, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for range t.C {
		if err := lease.Verify(); err != nil {
			fatal(err)
		}
	}
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adbserverd: "+format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adbserverd:", err)
	os.Exit(1)
}
