// Command benchcheck guards the committed benchmark baselines. It reads
// one or more baseline JSON files written by `benchtables -json`
// (BENCH_sched.json, BENCH_persist.json), re-runs exactly the experiments
// whose tables appear in them, and compares every time-valued column
// (headers containing "ms" or "us/"). A fresh value more than -tolerance
// above the baseline (default 20%) is reported as a regression and the
// exit status is 1; faster-than-baseline rows are reported as headroom.
//
//	go run ./cmd/benchcheck BENCH_sched.json BENCH_persist.json
//	go run ./cmd/benchcheck -tolerance 50 BENCH_sched.json
//
// Wall-clock baselines are machine-dependent, so `make verify` runs this
// as a non-fatal advisory step; regenerate a baseline on the machine of
// record with `make bench-baselines`.
//
// With BENCHCHECK_STRICT=1 in the environment, regressions in the server
// throughput table (E13) are fatal — exit 1 — while other tables stay
// advisory. E13 guards the wire-protocol fast path (binary codec,
// pipelining, batched delivery), whose per-commit cost is stable enough
// on one machine to gate on; the scheduling and durability tables are
// too sensitive to host load for a hard gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ptlactive/internal/experiments"
)

func main() {
	tolerance := flag.Float64("tolerance", 20, "allowed slowdown over baseline, in percent")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-tolerance pct] baseline.json...")
		os.Exit(2)
	}

	runners := map[string]func(bool) experiments.Table{}
	for _, e := range experiments.Catalog {
		runners[strings.ToUpper(e.ID)] = e.Run
	}

	strict := os.Getenv("BENCHCHECK_STRICT") == "1"
	regressions := 0
	strictRegressions := 0
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		var baselines []experiments.Table
		if err := json.Unmarshal(data, &baselines); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", path, err)
			os.Exit(2)
		}
		for _, base := range baselines {
			run, ok := runners[strings.ToUpper(base.ID)]
			if !ok {
				fmt.Printf("%s: %s: unknown experiment id, skipping\n", path, base.ID)
				continue
			}
			fresh := run(false)
			bad := compare(path, base, fresh, *tolerance/100)
			regressions += bad
			if strictGated(base.ID) {
				strictRegressions += bad
			}
		}
	}
	switch {
	case strict && strictRegressions > 0:
		fmt.Printf("benchcheck: %d regression(s) in strict-gated tables (BENCHCHECK_STRICT=1)\n",
			strictRegressions)
		os.Exit(1)
	case strict && regressions > 0:
		fmt.Printf("benchcheck: %d advisory regression(s); strict-gated tables clean\n", regressions)
	case regressions > 0:
		fmt.Printf("benchcheck: %d regression(s) beyond tolerance\n", regressions)
		os.Exit(1)
	default:
		fmt.Println("benchcheck: all time columns within tolerance")
	}
}

// strictGated reports whether a table's regressions are fatal under
// BENCHCHECK_STRICT=1. Only the server wire-path table qualifies: its
// per-commit numbers are reproducible on one machine, so a >tolerance
// slip there means the protocol fast path actually got slower.
func strictGated(id string) bool {
	return strings.EqualFold(id, "E13")
}

// timeColumn reports whether a header labels a wall-clock measurement.
// "ms" must be its own word — a bare substring match catches "items".
func timeColumn(h string) bool {
	h = strings.ToLower(h)
	return h == "ms" || strings.HasSuffix(h, " ms") || strings.Contains(h, "us/")
}

// compare checks fresh against base row by row (keyed on the first
// column's label) and returns the number of regressions found.
func compare(path string, base, fresh experiments.Table, tol float64) int {
	freshRows := map[string][]string{}
	for _, row := range fresh.Rows {
		if len(row) > 0 {
			freshRows[row[0]] = row
		}
	}
	bad := 0
	for _, brow := range base.Rows {
		if len(brow) == 0 {
			continue
		}
		frow, ok := freshRows[brow[0]]
		if !ok {
			fmt.Printf("%s: %s[%s]: row missing from fresh run\n", path, base.ID, brow[0])
			bad++
			continue
		}
		for i, h := range base.Header {
			if i >= len(brow) || i >= len(frow) || !timeColumn(h) {
				continue
			}
			b, errB := strconv.ParseFloat(strings.TrimSpace(brow[i]), 64)
			f, errF := strconv.ParseFloat(strings.TrimSpace(frow[i]), 64)
			if errB != nil || errF != nil {
				continue // "-" cells and ratio columns
			}
			// Sub-50us cells are scheduler noise; don't flag them.
			if b < 0.05 {
				continue
			}
			switch {
			case f > b*(1+tol):
				fmt.Printf("%s: %s[%s] %q regressed: %.2f -> %.2f (+%.0f%%)\n",
					path, base.ID, brow[0], h, b, f, (f/b-1)*100)
				bad++
			case f < b*(1-tol):
				fmt.Printf("%s: %s[%s] %q improved: %.2f -> %.2f (%.0f%%)\n",
					path, base.ID, brow[0], h, b, f, (f/b-1)*100)
			}
		}
	}
	return bad
}
