// Command benchtables regenerates every experiment table of
// EXPERIMENTS.md (E1-E9, one per reproduced claim of the paper) and prints
// them. Use -quick for reduced sweeps and -markdown for the format
// EXPERIMENTS.md embeds.
//
//	go run ./cmd/benchtables            # full sweeps, aligned text
//	go run ./cmd/benchtables -quick
//	go run ./cmd/benchtables -markdown  # paste into EXPERIMENTS.md
//	go run ./cmd/benchtables -only E1,E7
//	go run ./cmd/benchtables -only E8 -workers 4
//	go run ./cmd/benchtables -only E10 -json BENCH_persist.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"ptlactive/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sweeps")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,E7)")
	workers := flag.Int("workers", 0, "worker pool for the parallel E8 columns (0 = all cores)")
	jsonPath := flag.String("json", "", "also write the selected tables as JSON to this file")
	flag.Parse()

	if *workers > 0 {
		experiments.DefaultWorkers = *workers
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		if id != "" {
			want[id] = true
		}
	}
	var selected []experiments.Table
	for _, t := range experiments.All(*quick) {
		if len(want) > 0 && !want[strings.ToUpper(t.ID)] {
			continue
		}
		selected = append(selected, t)
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t)
		}
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(selected, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
	}
}
