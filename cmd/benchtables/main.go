// Command benchtables regenerates every experiment table of
// EXPERIMENTS.md (E1-E9, one per reproduced claim of the paper) and prints
// them. Use -quick for reduced sweeps and -markdown for the format
// EXPERIMENTS.md embeds. -only runs just the named experiments (the rest
// are skipped, not merely hidden), and -cpuprofile/-memprofile capture
// pprof profiles of the selected runs.
//
//	go run ./cmd/benchtables            # full sweeps, aligned text
//	go run ./cmd/benchtables -quick
//	go run ./cmd/benchtables -markdown  # paste into EXPERIMENTS.md
//	go run ./cmd/benchtables -only E1,E7
//	go run ./cmd/benchtables -only E8 -workers 4
//	go run ./cmd/benchtables -only E10 -json BENCH_persist.json
//	go run ./cmd/benchtables -only E12 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"ptlactive/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sweeps")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,E7)")
	workers := flag.Int("workers", 0, "worker pool for the parallel E8 columns (0 = all cores)")
	jsonPath := flag.String("json", "", "also write the selected tables as JSON to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the runs to this file")
	flag.Parse()

	if *workers > 0 {
		experiments.DefaultWorkers = *workers
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		if id != "" {
			want[id] = true
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	var selected []experiments.Table
	for _, e := range experiments.Catalog {
		if len(want) > 0 && !want[strings.ToUpper(e.ID)] {
			continue
		}
		t := e.Run(*quick)
		selected = append(selected, t)
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fail(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		f.Close()
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(selected, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchtables:", err)
	os.Exit(1)
}
