// Command adbrouterd fronts a sharded active database cluster: N
// independent engines own disjoint hash partitions of the item space and
// event symbols, and the router serves them behind the ordinary ptlactive
// wire protocol — package client, adbsh -connect and existing tooling
// work unchanged against it.
//
// In-process shards (each with its own commit pipeline, and with -data
// its own write-ahead log, group commit and snapshots):
//
//	adbrouterd -addr 127.0.0.1:7410 -local 8 -data /var/lib/adbcluster
//
// Remote shards, each an adbserverd the router drives over the wire:
//
//	adbrouterd -addr :7410 -shards 10.0.0.1:7411,10.0.0.2:7411
//
// Transactions route to the single shard owning every item and event
// symbol they touch; operations that span shards are refused with the
// cross_shard error code. Rules register on the shard owning their
// read-set footprint; a trigger observing an event symbol owned by
// another shard gets a hidden relay trigger there whose occurrences the
// router forwards. Per-shard firing streams merge into one globally
// sequenced subscription feed.
//
// SIGTERM or SIGINT drains gracefully: stop accepting, finish queued
// commits on every shard, flush subscribers, close the shards, exit 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"ptlactive/internal/adb"
	"ptlactive/internal/cluster"
	"ptlactive/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7410", "listen address (use :0 for a random port with -port-file)")
	portFile := flag.String("port-file", "", "write the bound address to this file once listening")
	local := flag.Int("local", 0, "run this many in-process engine shards")
	shardAddrs := flag.String("shards", "", "comma-separated adbserverd addresses to use as remote shards")
	dataDir := flag.String("data", "", "durable shard directories under this root (shard0, shard1, ...); -local only, empty = memory-only")
	workers := flag.Int("workers", 0, "per-shard worker pool size for rule evaluation (0 = all cores, 1 = sequential)")
	maxConns := flag.Int("max-conns", 64, "maximum concurrent client sessions")
	idleTimeout := flag.Duration("idle-timeout", 0, "drop sessions idle longer than this (0 = never)")
	subQueue := flag.Int("sub-queue", 256, "bounded firing queue per subscriber")
	overflow := flag.String("overflow", "drop", "subscriber overflow policy: drop (gap markers) or disconnect")
	maxFailures := flag.Int("max-failures", 0, "quarantine a rule after this many consecutive action failures (0 = never)")
	sweepBudget := flag.Int64("sweep-budget", 0, "max evaluator steps per sweep (0 = unlimited)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown bound")
	segBytes := flag.Int64("wal-segment-bytes", 0, "per-shard WAL segment rotation size; snapshot-covered segments are GCed (0 = single segment forever)")
	keepSnaps := flag.Int("keep-snapshots", 0, "per-shard snapshot chain length after each checkpoint (0/1 = newest only)")
	histWindow := flag.Int64("history-window", 0, "per-shard prune of collapsed temporal history older than this many ticks (0 = retain everything)")
	spillHist := flag.Bool("spill-history", false, "spill pruned history to each shard's on-disk cold tier instead of dropping it")
	flag.Parse()

	var policy server.OverflowPolicy
	switch *overflow {
	case "drop":
		policy = server.DropWithGap
	case "disconnect":
		policy = server.Disconnect
	default:
		fatal(fmt.Errorf("bad -overflow %q: want drop or disconnect", *overflow))
	}

	var shards []cluster.Shard
	switch {
	case *local > 0 && *shardAddrs != "":
		fatal(fmt.Errorf("-local and -shards are mutually exclusive"))
	case *local > 0:
		cfg := adb.Config{
			Workers:         *workers,
			MaxRuleFailures: *maxFailures,
			SweepBudget:     *sweepBudget,
			Retention: adb.Retention{
				SegmentBytes:  *segBytes,
				KeepSnapshots: *keepSnaps,
				HistoryWindow: *histWindow,
				SpillHistory:  *spillHist,
			},
		}
		for i := 0; i < *local; i++ {
			var eng *adb.Engine
			if *dataDir != "" {
				scfg := cfg
				scfg.Durability = adb.DurabilityWAL
				dir := filepath.Join(*dataDir, fmt.Sprintf("shard%d", i))
				if err := os.MkdirAll(dir, 0o755); err != nil {
					fatal(err)
				}
				var err error
				eng, err = adb.Restore(scfg, dir)
				if err != nil {
					fatal(fmt.Errorf("shard %d: %w", i, err))
				}
				info := eng.Recovery()
				if info.SnapshotLSN > 0 || info.ReplayedRecords > 1 {
					logf("shard %d recovered: snapshot LSN %d, %d wal records replayed",
						i, info.SnapshotLSN, info.ReplayedRecords)
				}
			} else {
				eng = adb.NewEngine(cfg)
			}
			shards = append(shards, cluster.NewLocalShard(eng))
		}
	case *shardAddrs != "":
		if *dataDir != "" {
			fatal(fmt.Errorf("-data applies to -local shards only; remote shards own their durability"))
		}
		for i, a := range strings.Split(*shardAddrs, ",") {
			a = strings.TrimSpace(a)
			sh, err := cluster.DialShard(a)
			if err != nil {
				fatal(fmt.Errorf("shard %d (%s): %w", i, a, err))
			}
			shards = append(shards, sh)
			logf("shard %d: %s", i, a)
		}
	default:
		fatal(fmt.Errorf("need -local N or -shards addr,addr"))
	}

	front, err := cluster.New(cluster.Config{Shards: shards, Logf: logf})
	if err != nil {
		fatal(err)
	}
	logf("routing across %d shards", len(shards))

	srv, err := server.New(server.Config{
		Backend:         front,
		MaxConns:        *maxConns,
		IdleTimeout:     *idleTimeout,
		SubscriberQueue: *subQueue,
		Overflow:        policy,
		Logf:            logf,
	})
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal(err)
		}
	}
	logf("listening on %s", ln.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case sig := <-sigs:
		logf("%v: draining (bound %v)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		logf("clean drain")
	case err := <-serveErr:
		fatal(err)
	}
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "adbrouterd: "+format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adbrouterd:", err)
	os.Exit(1)
}
