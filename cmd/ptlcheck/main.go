// Command ptlcheck parses a PTL condition and evaluates it over a system
// history supplied as JSON lines, printing per-state satisfaction. It is
// the quickest way to try a formula against a hand-written history.
//
// Usage:
//
//	ptlcheck -c '<condition>' [-history file.jsonl] [-naive] [-info]
//
// Each input line is one system state transition:
//
//	{"time": 2, "updates": {"ibm": 15}, "events": [["update_stocks","IBM"]]}
//
// A line with "updates" becomes a transaction commit at that time; a line
// without becomes an event-only state. Values may be numbers, strings or
// booleans. The initial state (time 0) is built from the -init JSON
// object.
//
// With -naive, every state is cross-checked against the direct
// whole-history semantics and any disagreement is reported (none is
// expected: Theorem 1).
//
// With -full the input is instead the lossless full-state format written
// by ptlactive.WriteHistory or adbsh's `export` command, and the condition
// is evaluated directly by the incremental evaluator.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ptlactive"
)

type stateLine struct {
	Time    int64                      `json:"time"`
	Updates map[string]json.RawMessage `json:"updates"`
	Events  [][]json.RawMessage        `json:"events"`
}

func main() {
	cond := flag.String("c", "", "PTL condition (required)")
	histPath := flag.String("history", "-", "history JSONL file, - for stdin")
	initJSON := flag.String("init", "{}", "initial database state as a JSON object")
	naiveCheck := flag.Bool("naive", false, "cross-check against the naive whole-history semantics")
	info := flag.Bool("info", false, "print condition analysis and exit")
	full := flag.Bool("full", false, "input is the lossless full-state format of WriteHistory/adbsh export")
	flag.Parse()

	if *cond == "" {
		fmt.Fprintln(os.Stderr, "ptlcheck: -c condition is required")
		os.Exit(2)
	}
	f, err := ptlactive.ParseCondition(*cond)
	if err != nil {
		fatal(err)
	}
	reg := ptlactive.NewRegistry()
	ci, err := ptlactive.CheckCondition(f, reg)
	if err != nil {
		fatal(err)
	}
	if *info {
		fmt.Printf("condition:    %s\n", ci.Source)
		fmt.Printf("normalized:   %s\n", ci.Normalized)
		fmt.Printf("parameters:   %v\n", ci.Free)
		fmt.Printf("events:       %v\n", ci.Events)
		fmt.Printf("temporal:     %t\n", ci.Temporal)
		fmt.Printf("decomposable: %t\n", ptlactive.Decomposable(f))
		return
	}

	var initItems map[string]json.RawMessage
	if err := json.Unmarshal([]byte(*initJSON), &initItems); err != nil {
		fatal(fmt.Errorf("bad -init: %w", err))
	}
	initial := map[string]ptlactive.Value{}
	for k, raw := range initItems {
		v, err := decodeValue(raw)
		if err != nil {
			fatal(err)
		}
		initial[k] = v
	}

	in := os.Stdin
	if *histPath != "-" {
		fh, err := os.Open(*histPath)
		if err != nil {
			fatal(err)
		}
		defer fh.Close()
		in = fh
	}

	var h *ptlactive.History
	fired := map[int]bool{}
	var execLog ptlactive.ExecLog
	if *full {
		// Lossless full-state input: evaluate the condition directly with
		// the incremental evaluator, no engine needed.
		var err error
		h, err = ptlactive.ReadHistory(in)
		if err != nil {
			fatal(err)
		}
		ev, err := ptlactive.CompileCondition(f, reg, nil)
		if err != nil {
			fatal(err)
		}
		for i := 0; i < h.Len(); i++ {
			res, err := ev.Step(h.At(i))
			if err != nil {
				fatal(err)
			}
			if res.Fired {
				fired[i] = true
				printFired(i, h.At(i).TS, res.Bindings)
			}
		}
	} else {
		eng := ptlactive.NewEngine(ptlactive.Config{Initial: initial})
		if err := eng.AddTriggerFormula("cond", f, nil); err != nil {
			fatal(err)
		}
		if err := replayHistory(eng, in); err != nil {
			fatal(err)
		}
		for _, fr := range eng.Firings() {
			fired[fr.StateIndex] = true
			if len(fr.Binding) > 0 {
				fmt.Printf("state %3d (time %4d): SATISFIED %v\n", fr.StateIndex, fr.Time, fr.Binding)
			} else {
				fmt.Printf("state %3d (time %4d): SATISFIED\n", fr.StateIndex, fr.Time)
			}
		}
		h = eng.History()
		execLog = eng
	}
	fmt.Printf("%d states, satisfied at %d of them\n", h.Len(), len(fired))

	if *naiveCheck {
		if len(ci.Free) > 0 {
			fmt.Fprintln(os.Stderr, "ptlcheck: -naive supports closed conditions only")
			os.Exit(1)
		}
		nv := ptlactive.NewNaiveEvaluator(reg, h, execLog)
		mismatches := 0
		for i := 0; i < h.Len(); i++ {
			want, err := nv.Sat(i, f, nil)
			if err != nil {
				fatal(err)
			}
			if want != fired[i] {
				mismatches++
				fmt.Printf("MISMATCH at state %d: incremental=%t naive=%t\n", i, fired[i], want)
			}
		}
		if mismatches == 0 {
			fmt.Println("naive cross-check: all states agree (Theorem 1)")
		} else {
			os.Exit(1)
		}
	}
}

// printFired reports a satisfied state with its bindings.
func printFired(i int, ts int64, bindings []ptlactive.Binding) {
	for _, b := range bindings {
		if len(b) > 0 {
			fmt.Printf("state %3d (time %4d): SATISFIED %v\n", i, ts, b)
			continue
		}
		fmt.Printf("state %3d (time %4d): SATISFIED\n", i, ts)
	}
}

// replayHistory feeds JSONL state lines into the engine.
func replayHistory(eng *ptlactive.Engine, in io.Reader) error {
	sc := bufio.NewScanner(in)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := sc.Text()
		if len(text) == 0 || text[0] == '#' {
			continue
		}
		var line stateLine
		if err := json.Unmarshal([]byte(text), &line); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		var events []ptlactive.Event
		for _, e := range line.Events {
			if len(e) == 0 {
				return fmt.Errorf("line %d: empty event", lineNo)
			}
			var name string
			if err := json.Unmarshal(e[0], &name); err != nil {
				return fmt.Errorf("line %d: event name: %w", lineNo, err)
			}
			args := make([]ptlactive.Value, 0, len(e)-1)
			for _, raw := range e[1:] {
				v, err := decodeValue(raw)
				if err != nil {
					return fmt.Errorf("line %d: %w", lineNo, err)
				}
				args = append(args, v)
			}
			events = append(events, ptlactive.NewEvent(name, args...))
		}
		if len(line.Updates) > 0 {
			updates := map[string]ptlactive.Value{}
			for k, raw := range line.Updates {
				v, err := decodeValue(raw)
				if err != nil {
					return fmt.Errorf("line %d: %w", lineNo, err)
				}
				updates[k] = v
			}
			if err := eng.Exec(line.Time, updates, events...); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
		} else {
			if len(events) == 0 {
				events = append(events, ptlactive.NewEvent("tick"))
			}
			if err := eng.Emit(line.Time, events...); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
		}
	}
	return sc.Err()
}

// decodeValue maps a JSON scalar to a Value.
func decodeValue(raw json.RawMessage) (ptlactive.Value, error) {
	if string(raw) == "null" {
		// json.Unmarshal treats null as a no-op into any scalar; reject it
		// explicitly rather than producing a surprising zero.
		return ptlactive.Value{}, fmt.Errorf("unsupported JSON value null")
	}
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		return ptlactive.Str(s), nil
	}
	var b bool
	if err := json.Unmarshal(raw, &b); err == nil {
		return ptlactive.Bool(b), nil
	}
	var i int64
	if err := json.Unmarshal(raw, &i); err == nil {
		return ptlactive.Int(i), nil
	}
	var f float64
	if err := json.Unmarshal(raw, &f); err == nil {
		return ptlactive.Float(f), nil
	}
	return ptlactive.Value{}, fmt.Errorf("unsupported JSON value %s", string(raw))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ptlcheck:", err)
	os.Exit(1)
}
