package main

import (
	"encoding/json"
	"strings"
	"testing"

	"ptlactive"
)

func TestDecodeValue(t *testing.T) {
	cases := map[string]string{
		`"s"`:   `"s"`,
		`3`:     "3",
		`2.5`:   "2.5",
		`true`:  "true",
		`false`: "false",
	}
	for in, want := range cases {
		v, err := decodeValue(json.RawMessage(in))
		if err != nil {
			t.Fatalf("decodeValue(%s): %v", in, err)
		}
		if v.String() != want {
			t.Errorf("decodeValue(%s) = %s, want %s", in, v, want)
		}
	}
	for _, bad := range []string{`[1,2]`, `{"a":1}`, `null`} {
		if _, err := decodeValue(json.RawMessage(bad)); err == nil {
			t.Errorf("decodeValue(%s) should fail", bad)
		}
	}
}

func TestReplayHistory(t *testing.T) {
	eng := ptlactive.NewEngine(ptlactive.Config{
		Initial: map[string]ptlactive.Value{"ibm": ptlactive.Float(10)},
	})
	if err := eng.AddTrigger("cond",
		`[t <- time] [x <- item("ibm")] previously (item("ibm") <= 0.5 * x and time >= t - 10)`,
		nil); err != nil {
		t.Fatal(err)
	}
	src := strings.Join([]string{
		`# comment`,
		``,
		`{"time": 2, "updates": {"ibm": 15}}`,
		`{"time": 5, "updates": {"ibm": 18}, "events": [["update_stocks", "IBM"]]}`,
		`{"time": 7, "events": [["tick"]]}`,
		`{"time": 8, "updates": {"ibm": 25}}`,
	}, "\n")
	if err := replayHistory(eng, strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if eng.History().Len() != 5 {
		t.Fatalf("history len = %d", eng.History().Len())
	}
	fs := eng.Firings()
	if len(fs) != 1 || fs[0].Time != 8 {
		t.Fatalf("firings = %v", fs)
	}
}

func TestReplayHistoryErrors(t *testing.T) {
	eng := ptlactive.NewEngine(ptlactive.Config{})
	bad := []string{
		`not json`,
		`{"time": 1, "events": [[]]}`,
		`{"time": 1, "events": [[3]]}`,
		`{"time": 1, "updates": {"a": [1]}}`,
		`{"time": 1, "events": [["e", [1]]]}`,
	}
	for _, line := range bad {
		e2 := ptlactive.NewEngine(ptlactive.Config{})
		if err := replayHistory(e2, strings.NewReader(line)); err == nil {
			t.Errorf("replayHistory(%q) should fail", line)
		}
	}
	// Out-of-order times surface engine errors.
	src := "{\"time\": 5}\n{\"time\": 3}"
	if err := replayHistory(eng, strings.NewReader(src)); err == nil {
		t.Error("non-increasing times should fail")
	}
}
