package ptlactive_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example, asserting the headline
// output each one promises. Skipped in -short mode (go run spawns the
// toolchain).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn the go toolchain")
	}
	cases := map[string]string{
		"./examples/quickstart":   "IBM doubled",
		"./examples/constraints":  `rejected by "no_crash"`,
		"./examples/validtime":    "definite  trigger fired",
		"./examples/sessions":     "violations detected",
		"./examples/stockmonitor": "run finished",
		"./examples/futurewatch":  "SLA VIOLATED",
		"./examples/recovery":     "recovered",
		"./examples/remote":       "server drained cleanly",
		"./examples/cluster":      "cluster drained cleanly",
	}
	for path, want := range cases {
		path, want := path, want
		t.Run(strings.TrimPrefix(path, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", path).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", path, err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Fatalf("%s output missing %q:\n%s", path, want, out)
			}
		})
	}
}
