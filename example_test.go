package ptlactive_test

import (
	"errors"
	"fmt"

	"ptlactive"
)

// The paper's Section-5 running example: fire when the IBM price doubles
// within 10 time units.
func ExampleEngine_AddTrigger() {
	eng := ptlactive.NewEngine(ptlactive.Config{
		Initial: map[string]ptlactive.Value{"ibm": ptlactive.Float(10)},
		Start:   1,
	})
	_ = eng.AddTrigger("doubled",
		`[t <- time] [x <- item("ibm")]
		     previously (item("ibm") <= 0.5 * x and time >= t - 10)`,
		func(ctx *ptlactive.ActionContext) error {
			fmt.Println("IBM doubled at time", ctx.FiredAt)
			return nil
		})
	_ = eng.Exec(2, map[string]ptlactive.Value{"ibm": ptlactive.Float(15)})
	_ = eng.Exec(5, map[string]ptlactive.Value{"ibm": ptlactive.Float(18)})
	_ = eng.Exec(8, map[string]ptlactive.Value{"ibm": ptlactive.Float(25)})
	// Output: IBM doubled at time 8
}

// A temporal integrity constraint (Section 3): the balance never
// decreases by more than 100 within 5 time units.
func ExampleEngine_AddConstraint() {
	eng := ptlactive.NewEngine(ptlactive.Config{
		Initial: map[string]ptlactive.Value{"balance": ptlactive.Int(200)},
	})
	_ = eng.AddConstraint("no_crash",
		`[b <- item("balance")] not previously <= 5 (item("balance") > b + 100)`)
	err := eng.Exec(1, map[string]ptlactive.Value{"balance": ptlactive.Int(50)})
	fmt.Println("aborted:", errors.Is(err, ptlactive.ErrConstraintViolation))
	bal, _ := eng.DB().Get("balance")
	fmt.Println("balance:", bal)
	// Output:
	// aborted: true
	// balance: 200
}

// A parameterized rule: the condition's free variable U binds per firing
// and flows to the action.
func ExampleActionContext_Param() {
	eng := ptlactive.NewEngine(ptlactive.Config{})
	_ = eng.AddTrigger("watch", `@login(U)`, func(ctx *ptlactive.ActionContext) error {
		u, _ := ctx.Param("U")
		fmt.Println("login:", u)
		return nil
	})
	_ = eng.Emit(1, ptlactive.NewEvent("login", ptlactive.Str("alice")))
	// Output: login: "alice"
}

// Future-logic monitoring (the paper's Section-11 future work): SLA
// verdicts by formula progression.
func ExampleCompileFuture() {
	reg := ptlactive.NewRegistry()
	mon, _ := ptlactive.CompileFuture(`eventually <= 10 (item("done") = 1)`, reg, nil)
	eng := ptlactive.NewEngine(ptlactive.Config{
		Initial: map[string]ptlactive.Value{"done": ptlactive.Int(0)},
	})
	_ = eng.Exec(5, map[string]ptlactive.Value{"done": ptlactive.Int(1)})
	h := eng.History()
	for i := 0; i < h.Len(); i++ {
		rs, _ := mon.Step(h.At(i))
		for _, r := range rs {
			fmt.Printf("t=%d holds=%t\n", r.Time, r.Holds)
		}
	}
	for _, r := range mon.Finish() {
		fmt.Printf("t=%d holds=%t (end of trace)\n", r.Time, r.Holds)
	}
	// Output:
	// t=0 holds=true
	// t=5 holds=true
}

// Valid time (Section 9): a retroactive update fires a tentative trigger
// for a past instant.
func ExampleValidStore() {
	base := ptlactive.NewDB(map[string]ptlactive.Value{"a": ptlactive.Int(0)})
	store := ptlactive.NewValidStore(base, 0, 100)
	reg := ptlactive.NewRegistry()
	cond, _ := ptlactive.ParseCondition(`item("a") > 5`)
	mon, _ := ptlactive.NewValidMonitor(store, reg, cond, ptlactive.Tentative)

	_ = store.Begin(1)
	_ = store.Post(1, "a", ptlactive.Int(9), 3, 10) // valid at 3, posted at 10
	_ = store.Commit(1, 11)
	fs, _ := mon.Poll()
	for _, f := range fs {
		fmt.Println("fired for valid instant", f.Time)
	}
	// Output:
	// fired for valid instant 3
	// fired for valid instant 11
}
