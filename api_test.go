package ptlactive_test

import (
	"errors"
	"testing"

	"ptlactive"
)

// TestPublicAPIQuickstart drives the package-documented quickstart through
// the public surface only.
func TestPublicAPIQuickstart(t *testing.T) {
	eng := ptlactive.NewEngine(ptlactive.Config{
		Initial: map[string]ptlactive.Value{"ibm": ptlactive.Float(10)},
		Start:   1,
	})
	var fired []int64
	err := eng.AddTrigger("doubled",
		`[t <- time] [x <- item("ibm")]
		     previously (item("ibm") <= 0.5 * x and time >= t - 10)`,
		func(ctx *ptlactive.ActionContext) error {
			fired = append(fired, ctx.FiredAt)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range [][2]int64{{15, 2}, {18, 5}, {25, 8}} {
		if err := eng.Exec(p[1], map[string]ptlactive.Value{"ibm": ptlactive.Float(float64(p[0]))}); err != nil {
			t.Fatal(err)
		}
	}
	if len(fired) != 1 || fired[0] != 8 {
		t.Fatalf("fired = %v, want [8]", fired)
	}
}

func TestPublicAPIConstraint(t *testing.T) {
	eng := ptlactive.NewEngine(ptlactive.Config{
		Initial: map[string]ptlactive.Value{"balance": ptlactive.Int(10)},
	})
	if err := eng.AddConstraint("nonneg", `item("balance") >= 0`); err != nil {
		t.Fatal(err)
	}
	err := eng.Exec(1, map[string]ptlactive.Value{"balance": ptlactive.Int(-5)})
	if !errors.Is(err, ptlactive.ErrConstraintViolation) {
		t.Fatalf("err = %v", err)
	}
	var ce *ptlactive.ConstraintError
	if !errors.As(err, &ce) || ce.Constraint != "nonneg" {
		t.Fatalf("constraint error = %v", err)
	}
}

func TestPublicAPIValueConstructors(t *testing.T) {
	if ptlactive.Int(3).AsInt() != 3 ||
		ptlactive.Float(2.5).AsFloat() != 2.5 ||
		ptlactive.Str("x").AsString() != "x" ||
		!ptlactive.Bool(true).AsBool() {
		t.Fatal("scalar constructors broken")
	}
	r := ptlactive.Relation([][]ptlactive.Value{{ptlactive.Int(1)}})
	if r.NumRows() != 1 {
		t.Fatal("relation constructor broken")
	}
	tp := ptlactive.Tuple(ptlactive.Int(1), ptlactive.Int(2))
	if tp.TupleLen() != 2 {
		t.Fatal("tuple constructor broken")
	}
}

func TestPublicAPIConditionAnalysis(t *testing.T) {
	f, err := ptlactive.ParseCondition(`(not @logout(U)) since @login(U)`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := ptlactive.CheckCondition(f, ptlactive.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Free) != 1 || info.Free[0] != "U" {
		t.Fatalf("free = %v", info.Free)
	}
	if ptlactive.Decomposable(f) {
		t.Fatal("parameterized condition should not be decomposable")
	}
}

func TestPublicAPIEvaluatorEmbedding(t *testing.T) {
	f, err := ptlactive.ParseCondition(`previously @ping`)
	if err != nil {
		t.Fatal(err)
	}
	reg := ptlactive.NewRegistry()
	ev, err := ptlactive.CompileCondition(f, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := ptlactive.SystemState{
		DB: ptlactive.EmptyDB(), TS: 1,
	}
	st.Events = ptlactive.NewEventSet(ptlactive.NewEvent("ping"))
	res, err := ev.Step(st)
	if err != nil || !res.Fired {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestPublicAPIValidTime(t *testing.T) {
	base := ptlactive.NewDB(map[string]ptlactive.Value{"a": ptlactive.Int(0)})
	s := ptlactive.NewValidStore(base, 0, 10)
	if err := s.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Post(1, "a", ptlactive.Int(9), 5, 6); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1, 7); err != nil {
		t.Fatal(err)
	}
	f, _ := ptlactive.ParseCondition(`item("a") = 9`)
	m, err := ptlactive.NewValidMonitor(s, ptlactive.NewRegistry(), f, ptlactive.Tentative)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := m.Poll()
	if err != nil || len(fs) == 0 {
		t.Fatalf("fs=%v err=%v", fs, err)
	}
	on, err := ptlactive.OnlineSatisfied(s, ptlactive.NewRegistry(), f)
	if err != nil {
		t.Fatal(err)
	}
	_ = on
}
