module ptlactive

go 1.22
