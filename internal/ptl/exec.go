package ptl

import "ptlactive/internal/value"

// Execution records one rule execution for the executed predicate
// (Section 7): the rule fired with the given parameter list and its action
// committed by the given time.
type Execution struct {
	Rule   string
	Params []value.Value
	Time   int64
}

// ExecLog supplies recorded rule executions to the evaluators. The
// predicate executed(r, x, t) consults this log; the engine in
// internal/adb maintains it as an auxiliary relation.
type ExecLog interface {
	// Executions returns the recorded executions of the named rule with
	// execution time strictly before the given instant, in any order.
	Executions(rule string, before int64) []Execution
}

// NoExecutions is an ExecLog with no recorded executions; evaluators use
// it when no engine is attached.
type NoExecutions struct{}

// Executions always returns nil.
func (NoExecutions) Executions(rule string, before int64) []Execution { return nil }
