package ptl

import (
	"math/rand"
	"strings"
	"testing"

	"ptlactive/internal/value"
)

func parse(t *testing.T, src string) Formula {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return f
}

func TestParseAtoms(t *testing.T) {
	f := parse(t, `item("a") > 3`)
	cmp, ok := f.(*Cmp)
	if !ok || cmp.Op != value.GT {
		t.Fatalf("got %T %v", f, f)
	}
	call, ok := cmp.L.(*Call)
	if !ok || call.Fn != "item" || len(call.Args) != 1 {
		t.Fatalf("lhs = %v", cmp.L)
	}
	if c, ok := call.Args[0].(*Const); !ok || c.V.AsString() != "a" {
		t.Fatalf("arg = %v", call.Args[0])
	}
	if c, ok := cmp.R.(*Const); !ok || c.V.AsInt() != 3 {
		t.Fatalf("rhs = %v", cmp.R)
	}
}

func TestParsePrecedence(t *testing.T) {
	// and binds tighter than or; since is lowest.
	f := parse(t, `true or false and false since true`)
	s, ok := f.(*Since)
	if !ok {
		t.Fatalf("top should be since, got %T", f)
	}
	or, ok := s.L.(*Or)
	if !ok {
		t.Fatalf("since lhs should be or, got %T", s.L)
	}
	if _, ok := or.R.(*And); !ok {
		t.Fatalf("or rhs should be and, got %T", or.R)
	}
}

func TestParseSinceLeftAssoc(t *testing.T) {
	f := parse(t, `true since false since true`)
	top, ok := f.(*Since)
	if !ok {
		t.Fatal("top not since")
	}
	if _, ok := top.L.(*Since); !ok {
		t.Fatal("since should be left associative")
	}
}

func TestParseTemporalOperators(t *testing.T) {
	cases := map[string]func(Formula) bool{
		"previously true":          func(f Formula) bool { p, ok := f.(*Previously); return ok && p.Bound == Unbounded },
		"previously <= 10 true":    func(f Formula) bool { p, ok := f.(*Previously); return ok && p.Bound == 10 },
		"throughout true":          func(f Formula) bool { p, ok := f.(*Throughout); return ok && p.Bound == Unbounded },
		"throughout <= 5 true":     func(f Formula) bool { p, ok := f.(*Throughout); return ok && p.Bound == 5 },
		"lasttime true":            func(f Formula) bool { _, ok := f.(*Lasttime); return ok },
		"true since <= 7 false":    func(f Formula) bool { s, ok := f.(*Since); return ok && s.Bound == 7 },
		"not true":                 func(f Formula) bool { _, ok := f.(*Not); return ok },
		"previously lasttime true": func(f Formula) bool { p, ok := f.(*Previously); return ok && isLasttime(p.F) },
	}
	for src, check := range cases {
		if !check(parse(t, src)) {
			t.Errorf("%q parsed wrong: %v", src, parse(t, src))
		}
	}
}

func isLasttime(f Formula) bool { _, ok := f.(*Lasttime); return ok }

func TestParseAssignment(t *testing.T) {
	f := parse(t, `[x <- price("IBM")] x > 50`)
	a, ok := f.(*Assign)
	if !ok || a.Var != "x" {
		t.Fatalf("got %T", f)
	}
	if _, ok := a.Q.(*Call); !ok {
		t.Fatalf("q = %v", a.Q)
	}
	// Nested assignments.
	f2 := parse(t, `[t <- time] [x <- item("a")] x > t`)
	a2 := f2.(*Assign)
	if _, ok := a2.Body.(*Assign); !ok {
		t.Fatal("nested assignment lost")
	}
}

func TestParseEvents(t *testing.T) {
	f := parse(t, `@update_stocks`)
	e, ok := f.(*EventAtom)
	if !ok || e.Name != "update_stocks" || len(e.Args) != 0 {
		t.Fatalf("got %v", f)
	}
	f = parse(t, `@login(U, 3)`)
	e = f.(*EventAtom)
	if e.Name != "login" || len(e.Args) != 2 {
		t.Fatalf("got %v", f)
	}
	if _, ok := e.Args[0].(*Var); !ok {
		t.Fatal("first arg should be a variable")
	}
}

func TestParseExecuted(t *testing.T) {
	f := parse(t, `executed(r1, X, T)`)
	e, ok := f.(*Executed)
	if !ok || e.Rule != "r1" || len(e.Args) != 1 {
		t.Fatalf("got %#v", f)
	}
	if v, ok := e.TimeArg.(*Var); !ok || v.Name != "T" {
		t.Fatalf("time arg = %v", e.TimeArg)
	}
	// Time-only form.
	f = parse(t, `executed(r2, T)`)
	e = f.(*Executed)
	if len(e.Args) != 0 || e.TimeArg.(*Var).Name != "T" {
		t.Fatalf("got %#v", e)
	}
	if _, err := Parse(`executed(r1)`); err == nil {
		t.Error("executed without time arg should fail")
	}
}

func TestParseMembership(t *testing.T) {
	f := parse(t, `S in overpriced()`)
	m, ok := f.(*Member)
	if !ok || len(m.Elems) != 1 {
		t.Fatalf("got %v", f)
	}
	f = parse(t, `(A, B) in pairs()`)
	m = f.(*Member)
	if len(m.Elems) != 2 {
		t.Fatalf("tuple membership got %v", f)
	}
	if _, ok := m.Rel.(*Call); !ok {
		t.Fatal("rel should be a call")
	}
}

func TestParseAggregates(t *testing.T) {
	f := parse(t, `sum(price("IBM"); time = 540; @update_stocks) > 70`)
	cmp := f.(*Cmp)
	a, ok := cmp.L.(*Agg)
	if !ok || a.Fn != AggSum || a.Window != Unbounded || a.Start == nil {
		t.Fatalf("got %#v", cmp.L)
	}
	f = parse(t, `avg(price("IBM"); window 60; @update_stocks) > 70`)
	a = f.(*Cmp).L.(*Agg)
	if a.Fn != AggAvg || a.Window != 60 || a.Start != nil {
		t.Fatalf("windowed agg = %#v", a)
	}
	// Aggregate name used as a plain query call still parses.
	f2, err := Parse(`sum(1, 2) > 0`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f2.(*Cmp).L.(*Call); !ok {
		t.Fatal("sum(1,2) should parse as a call")
	}
	// Nested aggregate in the sampling formula.
	f3 := parse(t, `sum(item("a"); time = 0; count(item("b"); time = 0; true) > 2) = 5`)
	a3 := f3.(*Cmp).L.(*Agg)
	if _, ok := a3.Sample.(*Cmp); !ok {
		t.Fatalf("nested agg sample = %v", a3.Sample)
	}
}

func TestParseArithmetic(t *testing.T) {
	f := parse(t, `1 + 2 * 3 - 4 = time mod 7`)
	cmp := f.(*Cmp)
	// 1 + (2*3) - 4: top is Sub.
	sub, ok := cmp.L.(*Arith)
	if !ok || sub.Op != value.Sub {
		t.Fatalf("lhs = %v", cmp.L)
	}
	add := sub.L.(*Arith)
	if add.Op != value.Add {
		t.Fatal("add missing")
	}
	if add.R.(*Arith).Op != value.Mul {
		t.Fatal("mul should bind tighter")
	}
	if cmp.R.(*Arith).Op != value.Mod {
		t.Fatal("mod missing")
	}
	// Unary minus folds into literals.
	f2 := parse(t, `-3 < x`)
	if c, ok := f2.(*Cmp).L.(*Const); !ok || c.V.AsInt() != -3 {
		t.Fatalf("got %v", f2)
	}
	f3 := parse(t, `-time < 0`)
	if _, ok := f3.(*Cmp).L.(*Neg); !ok {
		t.Fatalf("got %v", f3)
	}
	// Parenthesized terms.
	f4 := parse(t, `(1 + 2) * 3 = 9`)
	if f4.(*Cmp).L.(*Arith).Op != value.Mul {
		t.Fatal("parens lost")
	}
}

func TestParseStringsAndFloats(t *testing.T) {
	f := parse(t, `name() = "a\"b\\c\n\t"`)
	c := f.(*Cmp).R.(*Const)
	if c.V.AsString() != "a\"b\\c\n\t" {
		t.Fatalf("escapes wrong: %q", c.V.AsString())
	}
	f2 := parse(t, `x = 2.5`)
	if f2.(*Cmp).R.(*Const).V.AsFloat() != 2.5 {
		t.Fatal("float literal")
	}
	f3 := parse(t, `x = 1e3`)
	if f3.(*Cmp).R.(*Const).V.AsFloat() != 1000 {
		t.Fatal("exponent literal")
	}
}

func TestParseComments(t *testing.T) {
	f := parse(t, "true # trailing comment\nand false")
	if _, ok := f.(*And); !ok {
		t.Fatalf("got %T", f)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "and", "true and", "(true", "true)",
		"[x <- ] true", "[since <- time] true", "@since", "x >",
		"x = \"unterminated", "x ! y", "previously <= -1 true",
		"x = 1 extra", "() in r", "sum(x; true) = 1",
		"x = 3..5", "@e(1,) = 2",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseTermStandalone(t *testing.T) {
	tm, err := ParseTerm(`price("IBM") * 2`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tm.(*Arith); !ok {
		t.Fatalf("got %T", tm)
	}
	if _, err := ParseTerm(`1 2`); err == nil {
		t.Error("trailing tokens should fail")
	}
	if _, err := ParseTerm(`and`); err == nil {
		t.Error("keyword term should fail")
	}
}

// TestRoundTrip: Parse(f.String()) is structurally equal to f for random
// formulas (DESIGN.md §5).
func TestRoundTrip(t *testing.T) {
	// Hand-picked formulas covering every construct.
	srcs := []string{
		`[t <- time] [x <- price("IBM")] previously (price("IBM") <= 0.5 * x and time >= t - 10)`,
		`(not @logout(U)) since (@login(U) and item("A") > 0)`,
		`avg(price("IBM"); window 60; @update_stocks) > 70 since time = 540`,
		`sum(price("IBM"); time = 540; time mod 60 = 0) / sum(1; time = 540; time mod 60 = 0) > 70`,
		`executed(r1, X, T) and time = T + 10`,
		`throughout <= 5 (item("a") >= 0)`,
		`lasttime lasttime @e0`,
		`(A, B) in pairs() or A in singles()`,
		`true since <= 60 (@a and @b and @c)`,
	}
	for _, src := range srcs {
		f := parse(t, src)
		back, err := Parse(f.String())
		if err != nil {
			t.Fatalf("reparse %q printed as %q: %v", src, f.String(), err)
		}
		if !Equal(f, back) {
			t.Errorf("round trip changed %q:\n  first:  %s\n  second: %s", src, f, back)
		}
	}
}

// TestRoundTripRandom runs the round-trip property over generated
// formulas. The generator lives in ptlgen but depends on this package, so
// a tiny local generator is used instead.
func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var gen func(depth int, scope []string) Formula
	var genTerm func(scope []string) Term
	genTerm = func(scope []string) Term {
		switch rng.Intn(5) {
		case 0:
			return CInt(int64(rng.Intn(20) - 10))
		case 1:
			return CStr("s" + string(rune('a'+rng.Intn(3))))
		case 2:
			if len(scope) > 0 {
				return V(scope[rng.Intn(len(scope))])
			}
			return Time()
		case 3:
			return &Arith{Op: value.ArithOp(rng.Intn(5)), L: genTerm(scope), R: genTerm(scope)}
		default:
			return Q("item", CStr("a"))
		}
	}
	gen = func(depth int, scope []string) Formula {
		if depth <= 0 {
			switch rng.Intn(4) {
			case 0:
				return TTrue
			case 1:
				return Ev("e1", CInt(int64(rng.Intn(3))))
			default:
				return Compare(value.CmpOp(rng.Intn(6)), genTerm(scope), genTerm(scope))
			}
		}
		switch rng.Intn(8) {
		case 0:
			return &Not{F: gen(depth-1, scope)}
		case 1:
			return &And{L: gen(depth-1, scope), R: gen(depth-1, scope)}
		case 2:
			return &Or{L: gen(depth-1, scope), R: gen(depth-1, scope)}
		case 3:
			return &Since{L: gen(depth-1, scope), R: gen(depth-1, scope), Bound: int64(rng.Intn(5)) - 1}
		case 4:
			return &Previously{F: gen(depth-1, scope), Bound: int64(rng.Intn(5)) - 1}
		case 5:
			return &Throughout{F: gen(depth-1, scope), Bound: int64(rng.Intn(5)) - 1}
		case 6:
			return &Lasttime{F: gen(depth-1, scope)}
		default:
			name := "v" + string(rune('a'+rng.Intn(3)))
			return Let(name, Q("item", CStr("b")), gen(depth-1, append(scope, name)))
		}
	}
	for i := 0; i < 300; i++ {
		f := gen(1+rng.Intn(4), nil)
		back, err := Parse(f.String())
		if err != nil {
			t.Fatalf("iter %d: reparse of %q: %v", i, f.String(), err)
		}
		if !Equal(f, back) {
			t.Fatalf("iter %d: round trip changed\n  first:  %s\n  second: %s", i, f, back)
		}
	}
}

func TestEqualDistinguishes(t *testing.T) {
	pairs := [][2]string{
		{"true", "false"},
		{"x = 1", "x = 2"},
		{"x = 1", "x != 1"},
		{"@a", "@b"},
		{"@a(1)", "@a(2)"},
		{"previously true", "previously <= 3 true"},
		{"true since true", "true since <= 1 true"},
		{"[x <- time] x = 1", "[y <- time] y = 1"},
		{"executed(r1, T)", "executed(r2, T)"},
		{"A in r()", "(A, B) in r()"},
		{"lasttime true", "previously true"},
		{`sum(1; true; true) = 0`, `count(1; true; true) = 0`},
	}
	for _, p := range pairs {
		a, b := parse(t, p[0]), parse(t, p[1])
		if Equal(a, b) {
			t.Errorf("Equal(%q, %q) should be false", p[0], p[1])
		}
	}
}

func TestEventNamesAndHasTemporal(t *testing.T) {
	f := parse(t, `@b or (@a since sum(1; @c; @d) > 0)`)
	got := EventNames(f)
	want := []string{"a", "b", "c", "d"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("EventNames = %v, want %v", got, want)
	}
	if !HasTemporal(f) {
		t.Error("since formula should be temporal")
	}
	if HasTemporal(parse(t, `@a and item("x") > 0`)) {
		t.Error("plain atom formula should not be temporal")
	}
	if !HasTemporal(parse(t, `executed(r1, T)`)) {
		t.Error("executed needs history; it should count as temporal")
	}
	if !HasTemporal(parse(t, `sum(1; true; true) > 0`)) {
		t.Error("aggregate formula should be temporal")
	}
}
