package ptl

import (
	"fmt"
	"sort"
)

// FreeVars returns the sorted free variables of a formula: variable
// occurrences not bound by an enclosing assignment. The paper calls rules
// with free condition variables "parameterized": any satisfying assignment
// fires the rule and the values pass to the action part.
func FreeVars(f Formula) []string {
	seen := map[string]struct{}{}
	collectFree(f, map[string]int{}, seen)
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func collectFreeTerm(t Term, bound map[string]int, out map[string]struct{}) {
	switch x := t.(type) {
	case *Var:
		if bound[x.Name] == 0 {
			out[x.Name] = struct{}{}
		}
	case *Call:
		for _, a := range x.Args {
			collectFreeTerm(a, bound, out)
		}
	case *Arith:
		collectFreeTerm(x.L, bound, out)
		collectFreeTerm(x.R, bound, out)
	case *Neg:
		collectFreeTerm(x.X, bound, out)
	case *Agg:
		collectFreeTerm(x.Q, bound, out)
		if x.Start != nil {
			collectFree(x.Start, bound, out)
		}
		collectFree(x.Sample, bound, out)
	}
}

func collectFree(f Formula, bound map[string]int, out map[string]struct{}) {
	switch x := f.(type) {
	case *Cmp:
		collectFreeTerm(x.L, bound, out)
		collectFreeTerm(x.R, bound, out)
	case *EventAtom:
		for _, a := range x.Args {
			collectFreeTerm(a, bound, out)
		}
	case *Executed:
		for _, a := range x.Args {
			collectFreeTerm(a, bound, out)
		}
		collectFreeTerm(x.TimeArg, bound, out)
	case *Member:
		for _, e := range x.Elems {
			collectFreeTerm(e, bound, out)
		}
		collectFreeTerm(x.Rel, bound, out)
	case *Not:
		collectFree(x.F, bound, out)
	case *And:
		collectFree(x.L, bound, out)
		collectFree(x.R, bound, out)
	case *Or:
		collectFree(x.L, bound, out)
		collectFree(x.R, bound, out)
	case *Since:
		collectFree(x.L, bound, out)
		collectFree(x.R, bound, out)
	case *Lasttime:
		collectFree(x.F, bound, out)
	case *Previously:
		collectFree(x.F, bound, out)
	case *Throughout:
		collectFree(x.F, bound, out)
	case *Assign:
		collectFreeTerm(x.Q, bound, out)
		bound[x.Var]++
		collectFree(x.Body, bound, out)
		bound[x.Var]--
	case *Until:
		collectFree(x.L, bound, out)
		collectFree(x.R, bound, out)
	case *Nexttime:
		collectFree(x.F, bound, out)
	case *Eventually:
		collectFree(x.F, bound, out)
	case *Always:
		collectFree(x.F, bound, out)
	}
}

// BoundVars returns the sorted variables bound by assignments anywhere in
// the formula.
func BoundVars(f Formula) []string {
	seen := map[string]struct{}{}
	Walk(f, func(g Formula) {
		if a, ok := g.(*Assign); ok {
			seen[a.Var] = struct{}{}
		}
	})
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RenameApart returns a formula in which every assignment binds a distinct
// variable, renaming inner re-bindings (and their occurrences) to fresh
// names. This implements the paper's normalization: "we assume that each
// bound variable x is assigned a query value at most once in the formula;
// if this condition is not satisfied, we can simply rename some of the
// occurrences" (Section 5). Free variables are never renamed.
func RenameApart(f Formula) Formula {
	used := map[string]struct{}{}
	for _, v := range BoundVars(f) {
		used[v] = struct{}{}
	}
	for _, v := range FreeVars(f) {
		used[v] = struct{}{}
	}
	taken := map[string]bool{} // bound names already used by an assignment
	fresh := func(base string) string {
		for i := 1; ; i++ {
			cand := fmt.Sprintf("%s#%d", base, i)
			if _, clash := used[cand]; !clash {
				used[cand] = struct{}{}
				return cand
			}
		}
	}
	var rt func(Term, map[string]string) Term
	var rf func(Formula, map[string]string) Formula
	rt = func(t Term, env map[string]string) Term {
		switch x := t.(type) {
		case *Const:
			return x
		case *Var:
			if n, ok := env[x.Name]; ok {
				return &Var{Name: n}
			}
			return x
		case *Call:
			args := make([]Term, len(x.Args))
			for i, a := range x.Args {
				args[i] = rt(a, env)
			}
			return &Call{Fn: x.Fn, Args: args}
		case *Arith:
			return &Arith{Op: x.Op, L: rt(x.L, env), R: rt(x.R, env)}
		case *Neg:
			return &Neg{X: rt(x.X, env)}
		case *Agg:
			out := &Agg{Fn: x.Fn, Q: rt(x.Q, env), Sample: rf(x.Sample, env), Window: x.Window}
			if x.Start != nil {
				out.Start = rf(x.Start, env)
			}
			return out
		default:
			return t
		}
	}
	rf = func(f Formula, env map[string]string) Formula {
		switch x := f.(type) {
		case *BoolConst:
			return x
		case *Cmp:
			return &Cmp{Op: x.Op, L: rt(x.L, env), R: rt(x.R, env)}
		case *EventAtom:
			args := make([]Term, len(x.Args))
			for i, a := range x.Args {
				args[i] = rt(a, env)
			}
			return &EventAtom{Name: x.Name, Args: args}
		case *Executed:
			args := make([]Term, len(x.Args))
			for i, a := range x.Args {
				args[i] = rt(a, env)
			}
			return &Executed{Rule: x.Rule, Args: args, TimeArg: rt(x.TimeArg, env)}
		case *Member:
			elems := make([]Term, len(x.Elems))
			for i, e := range x.Elems {
				elems[i] = rt(e, env)
			}
			return &Member{Elems: elems, Rel: rt(x.Rel, env)}
		case *Not:
			return &Not{F: rf(x.F, env)}
		case *And:
			return &And{L: rf(x.L, env), R: rf(x.R, env)}
		case *Or:
			return &Or{L: rf(x.L, env), R: rf(x.R, env)}
		case *Since:
			return &Since{L: rf(x.L, env), R: rf(x.R, env), Bound: x.Bound}
		case *Lasttime:
			return &Lasttime{F: rf(x.F, env)}
		case *Previously:
			return &Previously{F: rf(x.F, env), Bound: x.Bound}
		case *Throughout:
			return &Throughout{F: rf(x.F, env), Bound: x.Bound}
		case *Until:
			return &Until{L: rf(x.L, env), R: rf(x.R, env), Bound: x.Bound}
		case *Nexttime:
			return &Nexttime{F: rf(x.F, env)}
		case *Eventually:
			return &Eventually{F: rf(x.F, env), Bound: x.Bound}
		case *Always:
			return &Always{F: rf(x.F, env), Bound: x.Bound}
		case *Assign:
			name := x.Var
			if taken[name] {
				name = fresh(x.Var)
			}
			taken[name] = true
			q := rt(x.Q, env)
			var body Formula
			if name == x.Var {
				body = rf(x.Body, env)
			} else {
				inner := make(map[string]string, len(env)+1)
				for k, v := range env {
					inner[k] = v
				}
				inner[x.Var] = name
				body = rf(x.Body, inner)
			}
			return &Assign{Var: name, Q: q, Body: body}
		default:
			return f
		}
	}
	return rf(f, map[string]string{})
}

// Substitute replaces free occurrences of the named variables in f by the
// given terms. Assignments shadow as usual.
func Substitute(f Formula, env map[string]Term) Formula {
	var rt func(Term, map[string]Term) Term
	var rf func(Formula, map[string]Term) Formula
	rt = func(t Term, env map[string]Term) Term {
		switch x := t.(type) {
		case *Const:
			return x
		case *Var:
			if r, ok := env[x.Name]; ok {
				return r
			}
			return x
		case *Call:
			args := make([]Term, len(x.Args))
			for i, a := range x.Args {
				args[i] = rt(a, env)
			}
			return &Call{Fn: x.Fn, Args: args}
		case *Arith:
			return &Arith{Op: x.Op, L: rt(x.L, env), R: rt(x.R, env)}
		case *Neg:
			return &Neg{X: rt(x.X, env)}
		case *Agg:
			out := &Agg{Fn: x.Fn, Q: rt(x.Q, env), Sample: rf(x.Sample, env), Window: x.Window}
			if x.Start != nil {
				out.Start = rf(x.Start, env)
			}
			return out
		default:
			return t
		}
	}
	rf = func(f Formula, env map[string]Term) Formula {
		if len(env) == 0 {
			return f
		}
		switch x := f.(type) {
		case *BoolConst:
			return x
		case *Cmp:
			return &Cmp{Op: x.Op, L: rt(x.L, env), R: rt(x.R, env)}
		case *EventAtom:
			args := make([]Term, len(x.Args))
			for i, a := range x.Args {
				args[i] = rt(a, env)
			}
			return &EventAtom{Name: x.Name, Args: args}
		case *Executed:
			args := make([]Term, len(x.Args))
			for i, a := range x.Args {
				args[i] = rt(a, env)
			}
			return &Executed{Rule: x.Rule, Args: args, TimeArg: rt(x.TimeArg, env)}
		case *Member:
			elems := make([]Term, len(x.Elems))
			for i, e := range x.Elems {
				elems[i] = rt(e, env)
			}
			return &Member{Elems: elems, Rel: rt(x.Rel, env)}
		case *Not:
			return &Not{F: rf(x.F, env)}
		case *And:
			return &And{L: rf(x.L, env), R: rf(x.R, env)}
		case *Or:
			return &Or{L: rf(x.L, env), R: rf(x.R, env)}
		case *Since:
			return &Since{L: rf(x.L, env), R: rf(x.R, env), Bound: x.Bound}
		case *Lasttime:
			return &Lasttime{F: rf(x.F, env)}
		case *Previously:
			return &Previously{F: rf(x.F, env), Bound: x.Bound}
		case *Throughout:
			return &Throughout{F: rf(x.F, env), Bound: x.Bound}
		case *Until:
			return &Until{L: rf(x.L, env), R: rf(x.R, env), Bound: x.Bound}
		case *Nexttime:
			return &Nexttime{F: rf(x.F, env)}
		case *Eventually:
			return &Eventually{F: rf(x.F, env), Bound: x.Bound}
		case *Always:
			return &Always{F: rf(x.F, env), Bound: x.Bound}
		case *Assign:
			q := rt(x.Q, env)
			if _, shadowed := env[x.Var]; shadowed {
				inner := make(map[string]Term, len(env))
				for k, v := range env {
					if k != x.Var {
						inner[k] = v
					}
				}
				return &Assign{Var: x.Var, Q: q, Body: rf(x.Body, inner)}
			}
			return &Assign{Var: x.Var, Q: q, Body: rf(x.Body, env)}
		default:
			return f
		}
	}
	return rf(f, env)
}
