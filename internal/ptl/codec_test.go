package ptl

import (
	"encoding/json"
	"testing"

	"ptlactive/internal/value"
)

// roundTrip encodes and decodes f, failing the test on any error.
func roundTrip(t *testing.T, f Formula) Formula {
	t.Helper()
	raw, err := EncodeFormula(f)
	if err != nil {
		t.Fatalf("encode %s: %v", f, err)
	}
	g, err := DecodeFormula(raw)
	if err != nil {
		t.Fatalf("decode %s (%s): %v", f, raw, err)
	}
	return g
}

func TestCodecRoundTripParsed(t *testing.T) {
	// The same shapes the random crash-recovery tests draw from, plus
	// coverage for every parseable construct.
	sources := []string{
		"true",
		"@ev0",
		"@pay3(x) and x > 4",
		`item("a") > 10`,
		`item("a") > 10 since @ev1`,
		`lasttime @ev2`,
		`previously <= 5 @ev0`,
		`throughout <= 3 item("b") < 20`,
		`not (item("a") > 50)`,
		`@pay1(x) and (x >= 2 or lasttime @ev0)`,
		`(@ev0 or @ev1) since (item("a") = 0)`,
		`[x <- item("a")] x*2 + 1 > -3`,
		`avg(item("a"); window 60; @ev0) > 5`,
		`sum(item("a"); @start; @ev0) > 5`,
		`count(item("a"); window 10; @ev0) >= 2`,
		`executed(r1, x, t) and t > 3`,
		`(x) in rel("stocks")`,
		`item("a") = 1.5 or item("s") = "hi"`,
	}
	for _, src := range sources {
		f, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		g := roundTrip(t, f)
		if !Equal(f, g) {
			t.Errorf("round trip changed %q: got %s", src, g)
		}
	}
}

func TestCodecRoundTripHandBuilt(t *testing.T) {
	// Constructs the parser cannot produce (future operators, nested
	// aggregates, exotic constants) still must round-trip.
	cases := []Formula{
		&Until{L: &EventAtom{Name: "a"}, R: &EventAtom{Name: "b"}, Bound: 7},
		&Nexttime{F: &BoolConst{V: true}},
		&Eventually{F: &EventAtom{Name: "a"}, Bound: Unbounded},
		&Always{F: &Not{F: &EventAtom{Name: "a"}}, Bound: 12},
		&Cmp{Op: value.EQ, L: &Const{V: value.NewTuple(value.NewInt(1), value.NewString("x"))}, R: &Var{Name: "y"}},
		&Member{
			Elems: []Term{&Var{Name: "p"}, &Const{V: value.NewInt(3)}},
			Rel:   &Const{V: value.NewRelation([][]value.Value{{value.NewInt(1), value.NewInt(2)}})},
		},
		&Cmp{
			Op: value.GT,
			L: &Agg{
				Fn:     AggMax,
				Q:      &Agg{Fn: AggCount, Q: &Call{Fn: "item", Args: []Term{&Const{V: value.NewString("a")}}}, Sample: &EventAtom{Name: "tick"}, Window: 5},
				Sample: &EventAtom{Name: "day"},
				Start:  &EventAtom{Name: "open"},
				Window: Unbounded,
			},
			R: &Const{V: value.NewFloat(2.5)},
		},
		&Executed{
			Rule:    "r9",
			Args:    []Term{&Neg{X: &Var{Name: "x"}}},
			TimeArg: &Var{Name: "t"},
		},
	}
	for _, f := range cases {
		g := roundTrip(t, f)
		if !Equal(f, g) {
			t.Errorf("round trip changed %s: got %s", f, g)
		}
	}
}

func TestCodecAggStartForcesUnboundedWindow(t *testing.T) {
	// A corrupted wire node carrying both a start formula and a window must
	// decode to the starting-formula form (Window = Unbounded), matching the
	// Agg invariant that Window >= 0 requires Start == nil.
	n := &wireNode{
		K:      "agg",
		Name:   "sum",
		Q:      &wireNode{K: "var", Name: "x"},
		Sample: &wireNode{K: "event", Name: "s"},
		Start:  &wireNode{K: "event", Name: "b"},
		Window: 30,
	}
	raw, err := json.Marshal(&wireNode{K: "cmp", Op: int(value.GT), L: n, R: &wireNode{K: "const", V: json.RawMessage(`{"int":0}`)}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := DecodeFormula(raw)
	if err != nil {
		t.Fatal(err)
	}
	agg := f.(*Cmp).L.(*Agg)
	if agg.Window != Unbounded || agg.Start == nil {
		t.Fatalf("want start form with unbounded window, got window=%d start=%v", agg.Window, agg.Start)
	}
}

func TestCodecErrors(t *testing.T) {
	bad := []string{
		`{"k":"nope"}`,
		`{"k":"agg","name":"median","q":{"k":"var","name":"x"},"sample":{"k":"bool","b":true}}`,
		`{"k":"cmp","l":{"k":"const","v":{"wat":1}},"r":{"k":"var","name":"x"}}`,
		`{"k":"since","l":{"k":"bool","b":true}}`,
		`not json`,
	}
	for _, src := range bad {
		if _, err := DecodeFormula(json.RawMessage(src)); err == nil {
			t.Errorf("decode %s: want error, got nil", src)
		}
	}
}
