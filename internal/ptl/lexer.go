package ptl

import (
	"fmt"
	"strconv"
	"unicode"
	"unicode/utf8"
)

// tokKind enumerates token kinds of the concrete syntax.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokSemi
	tokAt
	tokArrow // <-
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokEQ // =
	tokNE // !=
	tokLT
	tokLE
	tokGT
	tokGE
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokFloat:
		return "float"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokAt:
		return "'@'"
	case tokArrow:
		return "'<-'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokEQ:
		return "'='"
	case tokNE:
		return "'!='"
	case tokLT:
		return "'<'"
	case tokLE:
		return "'<='"
	case tokGT:
		return "'>'"
	case tokGE:
		return "'>='"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexeme with its source position (byte offset).
type token struct {
	kind tokKind
	text string
	pos  int
}

// lex tokenizes the input. It returns a token slice ending with tokEOF or
// a positioned error.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	emit := func(k tokKind, text string, pos int) {
		toks = append(toks, token{kind: k, text: text, pos: pos})
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '#': // comment to end of line
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '(':
			emit(tokLParen, "(", i)
			i++
		case c == ')':
			emit(tokRParen, ")", i)
			i++
		case c == '[':
			emit(tokLBracket, "[", i)
			i++
		case c == ']':
			emit(tokRBracket, "]", i)
			i++
		case c == ',':
			emit(tokComma, ",", i)
			i++
		case c == ';':
			emit(tokSemi, ";", i)
			i++
		case c == '@':
			emit(tokAt, "@", i)
			i++
		case c == '+':
			emit(tokPlus, "+", i)
			i++
		case c == '*':
			emit(tokStar, "*", i)
			i++
		case c == '/':
			emit(tokSlash, "/", i)
			i++
		case c == '-':
			emit(tokMinus, "-", i)
			i++
		case c == '=':
			emit(tokEQ, "=", i)
			i++
		case c == '!':
			if i+1 < n && src[i+1] == '=' {
				emit(tokNE, "!=", i)
				i += 2
			} else {
				return nil, fmt.Errorf("ptl: offset %d: unexpected '!' (use != or not)", i)
			}
		case c == '<':
			switch {
			case i+1 < n && src[i+1] == '-':
				emit(tokArrow, "<-", i)
				i += 2
			case i+1 < n && src[i+1] == '=':
				emit(tokLE, "<=", i)
				i += 2
			default:
				emit(tokLT, "<", i)
				i++
			}
		case c == '>':
			if i+1 < n && src[i+1] == '=' {
				emit(tokGE, ">=", i)
				i += 2
			} else {
				emit(tokGT, ">", i)
				i++
			}
		case c == '"':
			// Scan to the unescaped closing quote, then decode with
			// strconv.Unquote so every escape the printer (strconv.Quote)
			// can emit is accepted.
			start := i
			i++
			closed := false
			for i < n {
				if src[i] == '\\' && i+1 < n {
					i += 2
					continue
				}
				if src[i] == '"' {
					closed = true
					i++
					break
				}
				if src[i] == '\n' {
					break
				}
				i++
			}
			if !closed {
				return nil, fmt.Errorf("ptl: offset %d: unterminated string", start)
			}
			text, err := strconv.Unquote(src[start:i])
			if err != nil {
				return nil, fmt.Errorf("ptl: offset %d: bad string literal: %v", start, err)
			}
			emit(tokString, text, start)
		case c >= '0' && c <= '9':
			start := i
			for i < n && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			isFloat := false
			if i+1 < n && src[i] == '.' && src[i+1] >= '0' && src[i+1] <= '9' {
				isFloat = true
				i++
				for i < n && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			if i < n && (src[i] == 'e' || src[i] == 'E') {
				j := i + 1
				if j < n && (src[j] == '+' || src[j] == '-') {
					j++
				}
				if j < n && src[j] >= '0' && src[j] <= '9' {
					isFloat = true
					i = j
					for i < n && src[i] >= '0' && src[i] <= '9' {
						i++
					}
				}
			}
			if isFloat {
				emit(tokFloat, src[start:i], start)
			} else {
				emit(tokInt, src[start:i], start)
			}
		default:
			r, size := utf8.DecodeRuneInString(src[i:])
			if !isIdentStart(r) {
				return nil, fmt.Errorf("ptl: offset %d: unexpected character %q", i, string(r))
			}
			start := i
			i += size
			for i < n {
				r, size := utf8.DecodeRuneInString(src[i:])
				if !isIdentPart(r) {
					break
				}
				i += size
			}
			emit(tokIdent, src[start:i], start)
		}
	}
	emit(tokEOF, "", n)
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || r == '#' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
