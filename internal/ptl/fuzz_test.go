package ptl

import "testing"

// FuzzParse: the parser never panics, and successful parses round-trip
// through the printer.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`[t <- time] [x <- price("IBM")] previously (price("IBM") <= 0.5 * x and time >= t - 10)`,
		`(not @logout(U)) since @login(U)`,
		`avg(price("IBM"); window 60; @update_stocks) > 70`,
		`sum(p(); time = 540; time mod 60 = 0) / sum(1; time = 540; true) > 70`,
		`executed(r1, X, T) and time = T + 10`,
		`eventually <= 30 (item("done") = 1) until always @a`,
		`(A, B) in pairs() or 1 + 2 * 3 != -4`,
		`throughout <= 5 nexttime lasttime true`,
		"x = \"a\\\"b\\n\"",
		`# comment only`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Parse(src)
		if err != nil {
			return
		}
		printed := g.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", printed, src, err)
		}
		if !Equal(g, back) {
			t.Fatalf("round trip changed:\n  src:   %q\n  first: %s\n  again: %s", src, g, back)
		}
	})
}
