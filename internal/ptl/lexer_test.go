package ptl

import "testing"

func kinds(t *testing.T, src string) []tokKind {
	t.Helper()
	toks, err := lex(src)
	if err != nil {
		t.Fatalf("lex(%q): %v", src, err)
	}
	out := make([]tokKind, len(toks))
	for i, tk := range toks {
		out[i] = tk.kind
	}
	return out
}

func TestLexTokens(t *testing.T) {
	got := kinds(t, `[x <- time] @e(1, 2.5) and x <= -3 != "s" ; mod`)
	want := []tokKind{
		tokLBracket, tokIdent, tokArrow, tokIdent, tokRBracket,
		tokAt, tokIdent, tokLParen, tokInt, tokComma, tokFloat, tokRParen,
		tokIdent, tokIdent, tokLE, tokMinus, tokInt, tokNE, tokString,
		tokSemi, tokIdent, tokEOF,
	}
	if len(got) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	got := kinds(t, `< <= <- > >= = != + - * /`)
	want := []tokKind{tokLT, tokLE, tokArrow, tokGT, tokGE, tokEQ, tokNE,
		tokPlus, tokMinus, tokStar, tokSlash, tokEOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lex(`42 3.14 1e3 2E-2`)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []tokKind{tokInt, tokFloat, tokFloat, tokFloat, tokEOF}
	wantText := []string{"42", "3.14", "1e3", "2E-2", ""}
	for i := range wantKinds {
		if toks[i].kind != wantKinds[i] || toks[i].text != wantText[i] {
			t.Fatalf("token %d = %s %q", i, toks[i].kind, toks[i].text)
		}
	}
	// 7.x is int then error on '.'.
	if _, err := lex(`7.`); err == nil {
		t.Error("trailing dot should fail to lex")
	}
	// 1e without digits is an int followed by an identifier.
	toks, err = lex(`1e`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokInt || toks[1].kind != tokIdent {
		t.Fatalf("1e lexed as %v", toks)
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := lex(`"a\"b" "tab\t" "nl\n" "back\\"`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{`a"b`, "tab\t", "nl\n", `back\`}
	for i, w := range want {
		if toks[i].kind != tokString || toks[i].text != w {
			t.Fatalf("string %d = %q", i, toks[i].text)
		}
	}
	for _, bad := range []string{`"open`, `"bad\q"`, `!x`, "\x01"} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) should fail", bad)
		}
	}
}

func TestLexCommentsAndPositions(t *testing.T) {
	toks, err := lex("a # rest of line\nb")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].text != "a" || toks[1].text != "b" {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[1].pos <= toks[0].pos {
		t.Fatal("positions not increasing")
	}
}

func TestLexIdentifiers(t *testing.T) {
	toks, err := lex(`_x $b0 x#1 übér x9`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"_x", "$b0", "x#1", "übér", "x9"}
	for i, w := range want {
		if toks[i].kind != tokIdent || toks[i].text != w {
			t.Fatalf("ident %d = %q, want %q", i, toks[i].text, w)
		}
	}
}

func TestTokKindStrings(t *testing.T) {
	for k := tokEOF; k <= tokGE; k++ {
		if k.String() == "" {
			t.Fatalf("empty string for kind %d", int(k))
		}
	}
	if tokKind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}
