// Package ptl implements the paper's Past Temporal Logic: the abstract
// syntax (Section 4.1), a concrete text syntax with lexer and parser, the
// derived-operator desugaring, and the well-formedness/safety checks the
// processing algorithm of Section 5 assumes.
//
// Concrete syntax summary (see parser.go for the grammar):
//
//	[t <- time] [x <- price("IBM")]
//	    previously (price("IBM") <= 0.5 * x and time >= t - 10)
//
// Event atoms are written @name(args): @user_logs_in(X). Temporal
// operators: `since`, `lasttime`, `previously`, `throughout`, each of the
// last three also in bounded form `previously <= 10`. Temporal aggregates
// are terms: avg(price("IBM"); time = 540; @update_stocks).
package ptl

import (
	"fmt"
	"strings"

	"ptlactive/internal/value"
)

// Term is a PTL term: variables, constants, query applications, arithmetic
// and temporal aggregates.
type Term interface {
	isTerm()
	// String renders the term in concrete syntax (re-parsable).
	String() string
}

// Const is a literal value.
type Const struct {
	V value.Value
}

// Var is a variable occurrence. Variables are bound by the assignment
// operator [x <- q]; unbound occurrences are the rule's free variables.
type Var struct {
	Name string
}

// Call applies a query function symbol to argument terms, e.g.
// price("IBM") or time.
type Call struct {
	Fn   string
	Args []Term
}

// Arith is binary arithmetic over numeric terms.
type Arith struct {
	Op   value.ArithOp
	L, R Term
}

// Neg is unary numeric negation.
type Neg struct {
	X Term
}

// AggFn names a temporal aggregate function.
type AggFn string

// The aggregate functions of Section 6.
const (
	AggSum   AggFn = "sum"
	AggCount AggFn = "count"
	AggAvg   AggFn = "avg"
	AggMin   AggFn = "min"
	AggMax   AggFn = "max"
)

// ValidAggFn reports whether s names a supported aggregate.
func ValidAggFn(s string) bool {
	switch AggFn(s) {
	case AggSum, AggCount, AggAvg, AggMin, AggMax:
		return true
	}
	return false
}

// Agg is a temporal aggregate term f(q; phi; psi): the aggregate of query
// term q since the latest instant satisfying the starting formula phi,
// sampled at instants satisfying the sampling formula psi (Section 6.1).
// Start and Sample may themselves be temporal and may nest aggregates.
//
// A moving-window aggregate — the paper's "moving hourly average", written
// there with a time-anchored start formula time >= u-60 — is expressed by
// setting Window >= 0 (and Start nil): samples are the instants within the
// last Window time units satisfying Sample. Concrete syntax:
// avg(price("IBM"); window 60; @update_stocks).
type Agg struct {
	Fn     AggFn
	Q      Term
	Start  Formula
	Sample Formula
	// Window, when >= 0, makes this a moving-window aggregate over the
	// last Window time units; Start must then be nil.
	Window int64
}

func (*Const) isTerm() {}
func (*Var) isTerm()   {}
func (*Call) isTerm()  {}
func (*Arith) isTerm() {}
func (*Neg) isTerm()   {}
func (*Agg) isTerm()   {}

// Formula is a PTL formula.
type Formula interface {
	isFormula()
	// String renders the formula in concrete syntax (re-parsable).
	String() string
}

// BoolConst is true or false.
type BoolConst struct {
	V bool
}

// Cmp compares two terms with a comparison operator.
type Cmp struct {
	Op   value.CmpOp
	L, R Term
}

// EventAtom holds iff the current state's event set contains a matching
// occurrence of the symbol. Constant arguments must match the occurrence;
// variable arguments bind to the occurrence's parameters.
type EventAtom struct {
	Name string
	Args []Term
}

// Executed is the special predicate on rule executions (Section 7):
// executed(rule, params..., t) holds when rule was executed with the given
// parameter list at a time t strictly before now. Args and TimeArg may be
// variables, in which case they bind to recorded executions.
type Executed struct {
	Rule    string
	Args    []Term
	TimeArg Term
}

// Member tests tuple membership in a relation-valued term: (t1,...,tk) in
// r. For a unary relation a scalar left side is allowed.
type Member struct {
	Elems []Term
	Rel   Term
}

// Not negates a formula.
type Not struct {
	F Formula
}

// And conjoins two formulas.
type And struct {
	L, R Formula
}

// Or disjoins two formulas.
type Or struct {
	L, R Formula
}

// Since is the basic past operator: L Since R holds now iff R held at some
// past-or-present instant j and L held at every instant after j up to and
// including now. Bound >= 0 restricts j to the last Bound time units
// (time_j >= now - Bound); Bound < 0 means unbounded.
type Since struct {
	L, R  Formula
	Bound int64
}

// Lasttime holds iff F held at the previous state; false at the first
// state.
type Lasttime struct {
	F Formula
}

// Previously is the derived operator true Since F: F held at some
// past-or-present instant. Bound as in Since.
type Previously struct {
	F     Formula
	Bound int64
}

// Throughout is the derived operator not Previously not F: F held at every
// past-or-present instant. Bound as in Since.
type Throughout struct {
	F     Formula
	Bound int64
}

// Assign is the assignment operator [x <- q] F: evaluate F with x bound to
// the value of query term q at the instant where the assignment is
// evaluated. It is PTL's safety-preserving form of quantification
// (Section 10).
type Assign struct {
	Var  string
	Q    Term
	Body Formula
}

// Until is the basic *future* operator of the paper's companion logic
// ([Sistla & Wolfson 93], listed as future work in Section 11): L Until R
// holds at instant i iff R holds at some instant j >= i and L holds at
// every instant in [i, j). Bound >= 0 restricts j to within Bound time
// units of i. Future operators are interpreted over finite traces (the
// trace end resolves pending Untils to false) and are monitored by
// internal/future; the incremental past engine rejects them.
type Until struct {
	L, R  Formula
	Bound int64
}

// Nexttime holds at i iff instant i+1 exists and F holds there (strong
// next: false at the final state of a finite trace).
type Nexttime struct {
	F Formula
}

// Eventually is the derived operator true Until F. Bound as in Until.
type Eventually struct {
	F     Formula
	Bound int64
}

// Always is the derived operator not Eventually not F: F holds at every
// remaining instant (within Bound, when bounded).
type Always struct {
	F     Formula
	Bound int64
}

func (*BoolConst) isFormula()  {}
func (*Cmp) isFormula()        {}
func (*EventAtom) isFormula()  {}
func (*Executed) isFormula()   {}
func (*Member) isFormula()     {}
func (*Not) isFormula()        {}
func (*And) isFormula()        {}
func (*Or) isFormula()         {}
func (*Since) isFormula()      {}
func (*Lasttime) isFormula()   {}
func (*Previously) isFormula() {}
func (*Throughout) isFormula() {}
func (*Assign) isFormula()     {}
func (*Until) isFormula()      {}
func (*Nexttime) isFormula()   {}
func (*Eventually) isFormula() {}
func (*Always) isFormula()     {}

// Unbounded is the Bound value of an unbounded temporal operator.
const Unbounded = int64(-1)

// ---- Constructors (concise helpers used across the repo) ----

// C wraps a value into a constant term.
func C(v value.Value) *Const { return &Const{V: v} }

// CInt is a constant integer term.
func CInt(i int64) *Const { return &Const{V: value.NewInt(i)} }

// CFloat is a constant float term.
func CFloat(f float64) *Const { return &Const{V: value.NewFloat(f)} }

// CStr is a constant string term.
func CStr(s string) *Const { return &Const{V: value.NewString(s)} }

// V is a variable term.
func V(name string) *Var { return &Var{Name: name} }

// Q applies a query function.
func Q(fn string, args ...Term) *Call { return &Call{Fn: fn, Args: args} }

// Time is the reserved query reading the current timestamp.
func Time() *Call { return &Call{Fn: "time"} }

// TTrue and TFalse are the boolean constants.
var (
	TTrue  Formula = &BoolConst{V: true}
	TFalse Formula = &BoolConst{V: false}
)

// Compare builds a comparison formula.
func Compare(op value.CmpOp, l, r Term) *Cmp { return &Cmp{Op: op, L: l, R: r} }

// Ev builds an event atom.
func Ev(name string, args ...Term) *EventAtom { return &EventAtom{Name: name, Args: args} }

// AndF folds a conjunction (true when empty).
func AndF(fs ...Formula) Formula {
	if len(fs) == 0 {
		return TTrue
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = &And{L: out, R: f}
	}
	return out
}

// OrF folds a disjunction (false when empty).
func OrF(fs ...Formula) Formula {
	if len(fs) == 0 {
		return TFalse
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out = &Or{L: out, R: f}
	}
	return out
}

// Let builds the assignment [x <- q] body.
func Let(x string, q Term, body Formula) *Assign { return &Assign{Var: x, Q: q, Body: body} }

// NewAgg builds a starting-formula aggregate f(q; start; sample).
func NewAgg(fn AggFn, q Term, start, sample Formula) *Agg {
	return &Agg{Fn: fn, Q: q, Start: start, Sample: sample, Window: Unbounded}
}

// NewWindowAgg builds a moving-window aggregate f(q; window w; sample).
func NewWindowAgg(fn AggFn, q Term, window int64, sample Formula) *Agg {
	return &Agg{Fn: fn, Q: q, Sample: sample, Window: window}
}

// ---- Printing ----

func (t *Const) String() string { return t.V.String() }
func (t *Var) String() string   { return t.Name }

func (t *Call) String() string {
	if t.Fn == "time" && len(t.Args) == 0 {
		return "time"
	}
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
	}
	return t.Fn + "(" + strings.Join(parts, ", ") + ")"
}

func (t *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", t.L, t.Op, t.R)
}

func (t *Neg) String() string { return fmt.Sprintf("(- %s)", t.X) }

func (t *Agg) String() string {
	if t.Window >= 0 {
		return fmt.Sprintf("%s(%s; window %d; %s)", t.Fn, t.Q, t.Window, t.Sample)
	}
	return fmt.Sprintf("%s(%s; %s; %s)", t.Fn, t.Q, t.Start, t.Sample)
}

func (f *BoolConst) String() string {
	if f.V {
		return "true"
	}
	return "false"
}

func (f *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", f.L, f.Op, f.R)
}

func (f *EventAtom) String() string {
	if len(f.Args) == 0 {
		return "@" + f.Name
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return "@" + f.Name + "(" + strings.Join(parts, ", ") + ")"
}

func (f *Executed) String() string {
	parts := make([]string, 0, len(f.Args)+2)
	parts = append(parts, f.Rule)
	for _, a := range f.Args {
		parts = append(parts, a.String())
	}
	parts = append(parts, f.TimeArg.String())
	return "executed(" + strings.Join(parts, ", ") + ")"
}

func (f *Member) String() string {
	if len(f.Elems) == 1 {
		return fmt.Sprintf("%s in %s", f.Elems[0], f.Rel)
	}
	parts := make([]string, len(f.Elems))
	for i, e := range f.Elems {
		parts[i] = e.String()
	}
	return fmt.Sprintf("(%s) in %s", strings.Join(parts, ", "), f.Rel)
}

func (f *Not) String() string { return fmt.Sprintf("not (%s)", f.F) }
func (f *And) String() string { return fmt.Sprintf("(%s and %s)", f.L, f.R) }
func (f *Or) String() string  { return fmt.Sprintf("(%s or %s)", f.L, f.R) }

func bound(b int64) string {
	if b < 0 {
		return ""
	}
	return fmt.Sprintf(" <= %d", b)
}

func (f *Since) String() string {
	return fmt.Sprintf("(%s since%s %s)", f.L, bound(f.Bound), f.R)
}

func (f *Lasttime) String() string { return fmt.Sprintf("lasttime (%s)", f.F) }

func (f *Previously) String() string {
	return fmt.Sprintf("previously%s (%s)", bound(f.Bound), f.F)
}

func (f *Throughout) String() string {
	return fmt.Sprintf("throughout%s (%s)", bound(f.Bound), f.F)
}

func (f *Assign) String() string {
	return fmt.Sprintf("[%s <- %s] %s", f.Var, f.Q, f.Body)
}

func (f *Until) String() string {
	return fmt.Sprintf("(%s until%s %s)", f.L, bound(f.Bound), f.R)
}

func (f *Nexttime) String() string { return fmt.Sprintf("nexttime (%s)", f.F) }

func (f *Eventually) String() string {
	return fmt.Sprintf("eventually%s (%s)", bound(f.Bound), f.F)
}

func (f *Always) String() string {
	return fmt.Sprintf("always%s (%s)", bound(f.Bound), f.F)
}

// ---- Structural equality ----

// EqualTerms reports structural equality of two terms.
func EqualTerms(a, b Term) bool {
	switch x := a.(type) {
	case *Const:
		y, ok := b.(*Const)
		return ok && x.V.Equal(y.V) && x.V.Kind() == y.V.Kind()
	case *Var:
		y, ok := b.(*Var)
		return ok && x.Name == y.Name
	case *Call:
		y, ok := b.(*Call)
		if !ok || x.Fn != y.Fn || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !EqualTerms(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *Arith:
		y, ok := b.(*Arith)
		return ok && x.Op == y.Op && EqualTerms(x.L, y.L) && EqualTerms(x.R, y.R)
	case *Neg:
		y, ok := b.(*Neg)
		return ok && EqualTerms(x.X, y.X)
	case *Agg:
		y, ok := b.(*Agg)
		if !ok || x.Fn != y.Fn || x.Window != y.Window || !EqualTerms(x.Q, y.Q) || !Equal(x.Sample, y.Sample) {
			return false
		}
		if x.Start == nil || y.Start == nil {
			return x.Start == nil && y.Start == nil
		}
		return Equal(x.Start, y.Start)
	default:
		return false
	}
}

// Equal reports structural equality of two formulas.
func Equal(a, b Formula) bool {
	switch x := a.(type) {
	case *BoolConst:
		y, ok := b.(*BoolConst)
		return ok && x.V == y.V
	case *Cmp:
		y, ok := b.(*Cmp)
		return ok && x.Op == y.Op && EqualTerms(x.L, y.L) && EqualTerms(x.R, y.R)
	case *EventAtom:
		y, ok := b.(*EventAtom)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !EqualTerms(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *Executed:
		y, ok := b.(*Executed)
		if !ok || x.Rule != y.Rule || len(x.Args) != len(y.Args) || !EqualTerms(x.TimeArg, y.TimeArg) {
			return false
		}
		for i := range x.Args {
			if !EqualTerms(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *Member:
		y, ok := b.(*Member)
		if !ok || len(x.Elems) != len(y.Elems) || !EqualTerms(x.Rel, y.Rel) {
			return false
		}
		for i := range x.Elems {
			if !EqualTerms(x.Elems[i], y.Elems[i]) {
				return false
			}
		}
		return true
	case *Not:
		y, ok := b.(*Not)
		return ok && Equal(x.F, y.F)
	case *And:
		y, ok := b.(*And)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Or:
		y, ok := b.(*Or)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Since:
		y, ok := b.(*Since)
		return ok && x.Bound == y.Bound && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Lasttime:
		y, ok := b.(*Lasttime)
		return ok && Equal(x.F, y.F)
	case *Previously:
		y, ok := b.(*Previously)
		return ok && x.Bound == y.Bound && Equal(x.F, y.F)
	case *Throughout:
		y, ok := b.(*Throughout)
		return ok && x.Bound == y.Bound && Equal(x.F, y.F)
	case *Assign:
		y, ok := b.(*Assign)
		return ok && x.Var == y.Var && EqualTerms(x.Q, y.Q) && Equal(x.Body, y.Body)
	case *Until:
		y, ok := b.(*Until)
		return ok && x.Bound == y.Bound && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Nexttime:
		y, ok := b.(*Nexttime)
		return ok && Equal(x.F, y.F)
	case *Eventually:
		y, ok := b.(*Eventually)
		return ok && x.Bound == y.Bound && Equal(x.F, y.F)
	case *Always:
		y, ok := b.(*Always)
		return ok && x.Bound == y.Bound && Equal(x.F, y.F)
	default:
		return false
	}
}

// ---- Traversal helpers ----

// WalkTerms calls fn for every term in the formula, including terms nested
// in aggregate start/sample formulas.
func WalkTerms(f Formula, fn func(Term)) {
	var wt func(Term)
	var wf func(Formula)
	wt = func(t Term) {
		fn(t)
		switch x := t.(type) {
		case *Call:
			for _, a := range x.Args {
				wt(a)
			}
		case *Arith:
			wt(x.L)
			wt(x.R)
		case *Neg:
			wt(x.X)
		case *Agg:
			wt(x.Q)
			if x.Start != nil {
				wf(x.Start)
			}
			wf(x.Sample)
		}
	}
	wf = func(f Formula) {
		switch x := f.(type) {
		case *Cmp:
			wt(x.L)
			wt(x.R)
		case *EventAtom:
			for _, a := range x.Args {
				wt(a)
			}
		case *Executed:
			for _, a := range x.Args {
				wt(a)
			}
			wt(x.TimeArg)
		case *Member:
			for _, e := range x.Elems {
				wt(e)
			}
			wt(x.Rel)
		case *Not:
			wf(x.F)
		case *And:
			wf(x.L)
			wf(x.R)
		case *Or:
			wf(x.L)
			wf(x.R)
		case *Since:
			wf(x.L)
			wf(x.R)
		case *Lasttime:
			wf(x.F)
		case *Previously:
			wf(x.F)
		case *Throughout:
			wf(x.F)
		case *Assign:
			wt(x.Q)
			wf(x.Body)
		case *Until:
			wf(x.L)
			wf(x.R)
		case *Nexttime:
			wf(x.F)
		case *Eventually:
			wf(x.F)
		case *Always:
			wf(x.F)
		}
	}
	wf(f)
}

// Walk calls fn for every subformula of f in preorder, including formulas
// nested inside aggregate terms.
func Walk(f Formula, fn func(Formula)) {
	fn(f)
	switch x := f.(type) {
	case *Not:
		Walk(x.F, fn)
	case *And:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Or:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Since:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Lasttime:
		Walk(x.F, fn)
	case *Previously:
		Walk(x.F, fn)
	case *Throughout:
		Walk(x.F, fn)
	case *Assign:
		Walk(x.Body, fn)
	case *Until:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Nexttime:
		Walk(x.F, fn)
	case *Eventually:
		Walk(x.F, fn)
	case *Always:
		Walk(x.F, fn)
	}
	WalkTerms(f, func(t Term) {
		if a, ok := t.(*Agg); ok {
			if a.Start != nil {
				fn(a.Start)
			}
			fn(a.Sample)
		}
	})
}

// EventNames returns the sorted distinct event symbols referenced by the
// formula (event atoms anywhere, including aggregate subformulas). The
// execution model's relevance filter (Section 8) uses this.
func EventNames(f Formula) []string {
	seen := map[string]struct{}{}
	Walk(f, func(g Formula) {
		if e, ok := g.(*EventAtom); ok {
			seen[e.Name] = struct{}{}
		}
	})
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// HasFuture reports whether the formula contains a future operator
// (until, nexttime, eventually, always).
func HasFuture(f Formula) bool {
	found := false
	Walk(f, func(g Formula) {
		switch g.(type) {
		case *Until, *Nexttime, *Eventually, *Always:
			found = true
		}
	})
	return found
}

// HasTemporal reports whether the formula contains a temporal operator or
// aggregate; non-temporal conditions only need the current state.
func HasTemporal(f Formula) bool {
	found := false
	Walk(f, func(g Formula) {
		switch g.(type) {
		case *Since, *Lasttime, *Previously, *Throughout, *Executed,
			*Until, *Nexttime, *Eventually, *Always:
			found = true
		}
	})
	WalkTerms(f, func(t Term) {
		if _, ok := t.(*Agg); ok {
			found = true
		}
	})
	return found
}
