package ptl

import (
	"strings"
	"testing"

	"ptlactive/internal/history"
	"ptlactive/internal/query"
	"ptlactive/internal/value"
)

func testRegistry(t *testing.T) *query.Registry {
	t.Helper()
	reg := query.NewRegistry()
	err := reg.Register("price", 1, func(st history.SystemState, args []value.Value) (value.Value, error) {
		return value.NewFloat(1), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = reg.Register("overpriced", 0, func(st history.SystemState, args []value.Value) (value.Value, error) {
		return value.NewRelation(nil), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestCheckAccepts(t *testing.T) {
	reg := testRegistry(t)
	good := []string{
		`[t <- time] [x <- price("IBM")] previously (price("IBM") <= 0.5 * x and time >= t - 10)`,
		`(not @logout(U)) since (@login(U) and item("A") > 0)`,
		`avg(price("IBM"); window 60; @update_stocks) > 70`,
		`sum(price("IBM"); time = 540; time mod 60 = 0) > 70`,
		`executed(r1, X, T) and time = T + 10`,
		`X = 5 and previously @e(X)`,
		`[r <- overpriced()] previously (S in r)`,
		`S in overpriced()`,
	}
	for _, src := range good {
		f := parse(t, src)
		info, err := Check(f, reg)
		if err != nil {
			t.Errorf("Check(%q) failed: %v", src, err)
			continue
		}
		if info.Normalized == nil {
			t.Errorf("Check(%q): nil normalized", src)
		}
	}
}

func TestCheckRejects(t *testing.T) {
	reg := testRegistry(t)
	bad := map[string]string{
		`nosuch() > 0`:                            "unknown query",
		`price() > 0`:                             "expects 1 arguments",
		`price(X) > 0`:                            "mentions variables",
		`X > 0`:                                   "no binding position",
		`X > 0 and previously @e(Y)`:              "no binding position", // X unbound
		`sum(price(X); true; true) > 0`:           "free variables",
		`avg(item("a"); true; @e(Z)) > 0`:         "free variables",
		`@e(item("a") + X)`:                       "must be a variable or a ground term",
		`executed(r1, X + 1, T)`:                  "must be a variable or a ground term",
		`(X + 1) in overpriced()`:                 "must be a variable or a ground term",
		`sum(sum(1; true; true); true; true) = 0`: "nests an aggregate",
	}
	for src, wantSub := range bad {
		f := parse(t, src)
		_, err := Check(f, reg)
		if err == nil {
			t.Errorf("Check(%q) should fail", src)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("Check(%q) error %q does not mention %q", src, err, wantSub)
		}
	}
}

func TestCheckInfoFields(t *testing.T) {
	reg := testRegistry(t)
	f := parse(t, `[t <- time] ((@b(U) since @a) and time <= t)`)
	info, err := Check(f, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Free) != 1 || info.Free[0] != "U" {
		t.Errorf("Free = %v", info.Free)
	}
	if len(info.Events) != 2 || info.Events[0] != "a" || info.Events[1] != "b" {
		t.Errorf("Events = %v", info.Events)
	}
	if !info.TimeVars["t"] {
		t.Errorf("TimeVars = %v", info.TimeVars)
	}
	if !info.Temporal {
		t.Error("Temporal should be true")
	}
}

func TestCheckTimeVarsIncludeDesugared(t *testing.T) {
	reg := testRegistry(t)
	f := parse(t, `previously <= 10 @a`)
	info, err := Check(f, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.TimeVars) != 1 {
		t.Errorf("desugared bound should introduce one time var, got %v", info.TimeVars)
	}
}

func TestDecomposable(t *testing.T) {
	cases := map[string]bool{
		// No variables crossing temporal operators: decomposable.
		`previously (item("a") > 3)`:          true,
		`@a since @b`:                         true,
		`[x <- item("a")] x > 3`:              true, // assignment with no temporal beneath
		`previously ([x <- item("a")] x > 3)`: true,
		// The IBM formula: x and t cross previously.
		`[t <- time] [x <- price("IBM")] previously (price("IBM") <= 0.5 * x and time >= t - 10)`: false,
		// Free variables force symbolic state.
		`previously @e(X)`: false,
	}
	for src, want := range cases {
		f := parse(t, src)
		if got := Decomposable(f); got != want {
			t.Errorf("Decomposable(%q) = %t, want %t", src, got, want)
		}
	}
}

func TestRenameApart(t *testing.T) {
	// Same variable assigned twice: the inner one must be renamed.
	f := parse(t, `[x <- item("a")] (x > 0 and [x <- item("b")] x < 5)`)
	r := RenameApart(f)
	outer := r.(*Assign)
	inner := outer.Body.(*And).R.(*Assign)
	if outer.Var == inner.Var {
		t.Fatalf("rename failed: both assignments bind %q", outer.Var)
	}
	// The inner body must reference the renamed variable.
	cmp := inner.Body.(*Cmp)
	if cmp.L.(*Var).Name != inner.Var {
		t.Errorf("inner occurrence not renamed: %s", r)
	}
	// The outer occurrence must be untouched.
	ocmp := outer.Body.(*And).L.(*Cmp)
	if ocmp.L.(*Var).Name != outer.Var {
		t.Errorf("outer occurrence damaged: %s", r)
	}
	// Free variables must never be renamed.
	f2 := parse(t, `@e(X) and [x <- time] x > 0 and [x <- time] x > 1`)
	r2 := RenameApart(f2)
	free := FreeVars(r2)
	if len(free) != 1 || free[0] != "X" {
		t.Errorf("free vars after rename = %v", free)
	}
}

func TestFreeAndBoundVars(t *testing.T) {
	f := parse(t, `[t <- time] (@e(X) and previously @g(Y) and t > 0)`)
	free := FreeVars(f)
	if len(free) != 2 || free[0] != "X" || free[1] != "Y" {
		t.Errorf("FreeVars = %v", free)
	}
	bound := BoundVars(f)
	if len(bound) != 1 || bound[0] != "t" {
		t.Errorf("BoundVars = %v", bound)
	}
	// Shadowing: the outer X is free, the inner bound.
	f2 := parse(t, `@e(X) and [X <- time] X > 0`)
	if fv := FreeVars(f2); len(fv) != 1 || fv[0] != "X" {
		t.Errorf("shadowed FreeVars = %v", fv)
	}
	// Variables in aggregate formulas count.
	f3 := parse(t, `sum(1; @a(Z); true) > 0`)
	if fv := FreeVars(f3); len(fv) != 1 || fv[0] != "Z" {
		t.Errorf("aggregate FreeVars = %v", fv)
	}
}

func TestSubstitute(t *testing.T) {
	f := parse(t, `X > 0 and [X <- time] X < 5 and @e(X, Y)`)
	got := Substitute(f, map[string]Term{"X": CInt(7), "Y": CInt(9)})
	want := parse(t, `7 > 0 and [X <- time] X < 5 and @e(7, 9)`)
	if !Equal(got, want) {
		t.Errorf("Substitute = %s, want %s", got, want)
	}
	// Substitution into assignment queries but not shadowed bodies.
	f2 := parse(t, `[q <- item("a")] (q = X)`)
	got2 := Substitute(f2, map[string]Term{"q": CInt(1), "X": CInt(2)})
	want2 := parse(t, `[q <- item("a")] (q = 2)`)
	if !Equal(got2, want2) {
		t.Errorf("Substitute = %s, want %s", got2, want2)
	}
}

func TestDesugarShapes(t *testing.T) {
	// previously f -> true since f
	d := Desugar(parse(t, `previously @a`))
	s, ok := d.(*Since)
	if !ok || s.Bound != Unbounded {
		t.Fatalf("got %s", d)
	}
	if _, ok := s.L.(*BoolConst); !ok {
		t.Fatalf("since lhs = %v", s.L)
	}
	// throughout f -> not (true since not f)
	d = Desugar(parse(t, `throughout @a`))
	n, ok := d.(*Not)
	if !ok {
		t.Fatalf("got %s", d)
	}
	if _, ok := n.F.(*Since); !ok {
		t.Fatalf("inner = %v", n.F)
	}
	// Bounded forms introduce a time assignment.
	d = Desugar(parse(t, `previously <= 10 @a`))
	a, ok := d.(*Assign)
	if !ok {
		t.Fatalf("got %s", d)
	}
	if call, ok := a.Q.(*Call); !ok || call.Fn != "time" {
		t.Fatalf("assign q = %v", a.Q)
	}
	// The generated variable must not clash with existing ones.
	d2 := Desugar(parse(t, `[$b0 <- time] previously <= 5 ($b0 > 0)`))
	vars := BoundVars(d2)
	if len(vars) != 2 || vars[0] == vars[1] {
		t.Errorf("fresh variable clash: %v in %s", vars, d2)
	}
	// Desugared output contains no derived operators.
	for _, src := range []string{
		`throughout <= 3 (previously @a since <= 5 @b)`,
		`previously previously <= 2 throughout @c`,
	} {
		d := Desugar(parse(t, src))
		Walk(d, func(g Formula) {
			switch g.(type) {
			case *Previously, *Throughout:
				t.Errorf("derived operator survived in %s", d)
			case *Since:
				if g.(*Since).Bound >= 0 {
					t.Errorf("bounded since survived in %s", d)
				}
			}
		})
	}
}

// TestFutureOperatorsSurface: parsing, round trip and the past engine's
// rejection of future operators.
func TestFutureOperatorsSurface(t *testing.T) {
	reg := testRegistry(t)
	srcs := []string{
		`eventually (price("IBM") > 100)`,
		`always <= 60 (price("IBM") > 0)`,
		`nexttime @tick`,
		`@a until <= 5 @b`,
		`(@a until @b) or eventually @c`,
	}
	for _, src := range srcs {
		f := parse(t, src)
		back, err := Parse(f.String())
		if err != nil {
			t.Fatalf("round trip of %q printed %q: %v", src, f, err)
		}
		if !Equal(f, back) {
			t.Errorf("round trip changed %q: %s vs %s", src, f, back)
		}
		if !HasFuture(f) || !HasTemporal(f) {
			t.Errorf("%q should register as future and temporal", src)
		}
		if _, err := Check(f, reg); err == nil {
			t.Errorf("past-engine Check(%q) should reject future operators", src)
		}
	}
	if HasFuture(parse(t, `previously @a`)) {
		t.Error("past formula misclassified as future")
	}
}

// TestFutureDesugar: eventually/always desugar into until.
func TestFutureDesugar(t *testing.T) {
	d := Desugar(parse(t, `eventually @a`))
	u, ok := d.(*Until)
	if !ok || u.Bound != Unbounded {
		t.Fatalf("eventually desugared to %s", d)
	}
	if _, ok := u.L.(*BoolConst); !ok {
		t.Fatalf("until lhs = %v", u.L)
	}
	d = Desugar(parse(t, `always <= 7 @a`))
	n, ok := d.(*Not)
	if !ok {
		t.Fatalf("always desugared to %s", d)
	}
	iu, ok := n.F.(*Until)
	if !ok || iu.Bound != 7 {
		t.Fatalf("always inner = %s", n.F)
	}
	// Renaming and substitution traverse future nodes.
	f := parse(t, `[x <- time] ((@e(X) until x > 0) and [x <- time] nexttime x > 1)`)
	r := RenameApart(f)
	bv := BoundVars(r)
	if len(bv) != 2 || bv[0] == bv[1] {
		t.Fatalf("rename through future nodes failed: %v", bv)
	}
	s := Substitute(parse(t, `eventually @e(X)`), map[string]Term{"X": CInt(3)})
	if !Equal(s, parse(t, `eventually @e(3)`)) {
		t.Fatalf("substitute through future nodes = %s", s)
	}
	if fv := FreeVars(parse(t, `@a until @b(Y)`)); len(fv) != 1 || fv[0] != "Y" {
		t.Fatalf("free vars through until = %v", fv)
	}
}
