// Formula and term (de)serialization for the durability subsystem: a
// registered rule's condition AST must survive a snapshot/WAL round trip
// exactly, because the recovered engine recompiles its evaluators from the
// decoded formula and then overlays the saved incremental state on them
// (internal/persist, DESIGN.md section 4b). The wire form is a kind-tagged
// JSON tree; constants reuse the kind-tagged value encoding (the same one
// histio exports histories with) so every value.Value round-trips
// losslessly.
package ptl

import (
	"encoding/json"
	"fmt"

	"ptlactive/internal/value"
)

// wireNode is the JSON form of one term or formula node. One struct covers
// both syntactic classes; K selects the node kind.
type wireNode struct {
	K      string          `json:"k"`
	V      json.RawMessage `json:"v,omitempty"`    // const value
	B      bool            `json:"b,omitempty"`    // bool constant
	Name   string          `json:"name,omitempty"` // var/call/event/executed/assign/agg fn
	Op     int             `json:"op,omitempty"`   // cmp/arith operator
	Bound  int64           `json:"bound,omitempty"`
	Window int64           `json:"window,omitempty"`
	Args   []*wireNode     `json:"args,omitempty"` // call args, event args, member elems
	L      *wireNode       `json:"l,omitempty"`
	R      *wireNode       `json:"r,omitempty"`
	Q      *wireNode       `json:"q,omitempty"`      // assign/agg query term, member relation
	Start  *wireNode       `json:"start,omitempty"`  // agg start formula
	Sample *wireNode       `json:"sample,omitempty"` // agg sampling formula
	TArg   *wireNode       `json:"targ,omitempty"`   // executed time argument
}

// EncodeFormula serializes a formula as kind-tagged JSON; DecodeFormula
// inverts it structurally (ptl.Equal holds between input and round trip).
func EncodeFormula(f Formula) (json.RawMessage, error) {
	n, err := encodeFormula(f)
	if err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// DecodeFormula parses a formula written by EncodeFormula.
func DecodeFormula(data json.RawMessage) (Formula, error) {
	var n wireNode
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, fmt.Errorf("ptl: formula: %w", err)
	}
	return decodeFormula(&n)
}

func encodeTerm(t Term) (*wireNode, error) {
	switch x := t.(type) {
	case *Const:
		raw, err := value.EncodeJSON(x.V)
		if err != nil {
			return nil, err
		}
		return &wireNode{K: "const", V: raw}, nil
	case *Var:
		return &wireNode{K: "var", Name: x.Name}, nil
	case *Call:
		args, err := encodeTerms(x.Args)
		if err != nil {
			return nil, err
		}
		return &wireNode{K: "call", Name: x.Fn, Args: args}, nil
	case *Arith:
		l, err := encodeTerm(x.L)
		if err != nil {
			return nil, err
		}
		r, err := encodeTerm(x.R)
		if err != nil {
			return nil, err
		}
		return &wireNode{K: "arith", Op: int(x.Op), L: l, R: r}, nil
	case *Neg:
		inner, err := encodeTerm(x.X)
		if err != nil {
			return nil, err
		}
		return &wireNode{K: "neg", L: inner}, nil
	case *Agg:
		q, err := encodeTerm(x.Q)
		if err != nil {
			return nil, err
		}
		sample, err := encodeFormula(x.Sample)
		if err != nil {
			return nil, err
		}
		n := &wireNode{K: "agg", Name: string(x.Fn), Q: q, Sample: sample, Window: x.Window}
		if x.Start != nil {
			if n.Start, err = encodeFormula(x.Start); err != nil {
				return nil, err
			}
		}
		return n, nil
	default:
		return nil, fmt.Errorf("ptl: cannot encode term %T", t)
	}
}

func encodeTerms(ts []Term) ([]*wireNode, error) {
	out := make([]*wireNode, len(ts))
	for i, t := range ts {
		n, err := encodeTerm(t)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

func encodeFormula(f Formula) (*wireNode, error) {
	switch x := f.(type) {
	case *BoolConst:
		return &wireNode{K: "bool", B: x.V}, nil
	case *Cmp:
		l, err := encodeTerm(x.L)
		if err != nil {
			return nil, err
		}
		r, err := encodeTerm(x.R)
		if err != nil {
			return nil, err
		}
		return &wireNode{K: "cmp", Op: int(x.Op), L: l, R: r}, nil
	case *EventAtom:
		args, err := encodeTerms(x.Args)
		if err != nil {
			return nil, err
		}
		return &wireNode{K: "event", Name: x.Name, Args: args}, nil
	case *Executed:
		args, err := encodeTerms(x.Args)
		if err != nil {
			return nil, err
		}
		targ, err := encodeTerm(x.TimeArg)
		if err != nil {
			return nil, err
		}
		return &wireNode{K: "executed", Name: x.Rule, Args: args, TArg: targ}, nil
	case *Member:
		elems, err := encodeTerms(x.Elems)
		if err != nil {
			return nil, err
		}
		rel, err := encodeTerm(x.Rel)
		if err != nil {
			return nil, err
		}
		return &wireNode{K: "member", Args: elems, Q: rel}, nil
	case *Not:
		sub, err := encodeFormula(x.F)
		if err != nil {
			return nil, err
		}
		return &wireNode{K: "not", L: sub}, nil
	case *And:
		return encodeBinary("and", x.L, x.R, Unbounded)
	case *Or:
		return encodeBinary("or", x.L, x.R, Unbounded)
	case *Since:
		return encodeBinary("since", x.L, x.R, x.Bound)
	case *Lasttime:
		sub, err := encodeFormula(x.F)
		if err != nil {
			return nil, err
		}
		return &wireNode{K: "lasttime", L: sub}, nil
	case *Previously:
		return encodeUnaryBound("previously", x.F, x.Bound)
	case *Throughout:
		return encodeUnaryBound("throughout", x.F, x.Bound)
	case *Assign:
		q, err := encodeTerm(x.Q)
		if err != nil {
			return nil, err
		}
		body, err := encodeFormula(x.Body)
		if err != nil {
			return nil, err
		}
		return &wireNode{K: "assign", Name: x.Var, Q: q, L: body}, nil
	case *Until:
		return encodeBinary("until", x.L, x.R, x.Bound)
	case *Nexttime:
		sub, err := encodeFormula(x.F)
		if err != nil {
			return nil, err
		}
		return &wireNode{K: "nexttime", L: sub}, nil
	case *Eventually:
		return encodeUnaryBound("eventually", x.F, x.Bound)
	case *Always:
		return encodeUnaryBound("always", x.F, x.Bound)
	default:
		return nil, fmt.Errorf("ptl: cannot encode formula %T", f)
	}
}

func encodeBinary(kind string, l, r Formula, bound int64) (*wireNode, error) {
	ln, err := encodeFormula(l)
	if err != nil {
		return nil, err
	}
	rn, err := encodeFormula(r)
	if err != nil {
		return nil, err
	}
	return &wireNode{K: kind, L: ln, R: rn, Bound: bound}, nil
}

func encodeUnaryBound(kind string, f Formula, bound int64) (*wireNode, error) {
	sub, err := encodeFormula(f)
	if err != nil {
		return nil, err
	}
	return &wireNode{K: kind, L: sub, Bound: bound}, nil
}

func decodeTerm(n *wireNode) (Term, error) {
	if n == nil {
		return nil, fmt.Errorf("ptl: missing term node")
	}
	switch n.K {
	case "const":
		v, err := value.DecodeJSON(n.V)
		if err != nil {
			return nil, err
		}
		return &Const{V: v}, nil
	case "var":
		return &Var{Name: n.Name}, nil
	case "call":
		args, err := decodeTerms(n.Args)
		if err != nil {
			return nil, err
		}
		return &Call{Fn: n.Name, Args: args}, nil
	case "arith":
		l, err := decodeTerm(n.L)
		if err != nil {
			return nil, err
		}
		r, err := decodeTerm(n.R)
		if err != nil {
			return nil, err
		}
		return &Arith{Op: value.ArithOp(n.Op), L: l, R: r}, nil
	case "neg":
		inner, err := decodeTerm(n.L)
		if err != nil {
			return nil, err
		}
		return &Neg{X: inner}, nil
	case "agg":
		if !ValidAggFn(n.Name) {
			return nil, fmt.Errorf("ptl: unknown aggregate %q", n.Name)
		}
		q, err := decodeTerm(n.Q)
		if err != nil {
			return nil, err
		}
		sample, err := decodeFormula(n.Sample)
		if err != nil {
			return nil, err
		}
		a := &Agg{Fn: AggFn(n.Name), Q: q, Sample: sample, Window: n.Window}
		if n.Start != nil {
			// A start formula makes this the starting-formula form; Window
			// is then always Unbounded regardless of the wire value.
			if a.Start, err = decodeFormula(n.Start); err != nil {
				return nil, err
			}
			a.Window = Unbounded
		}
		return a, nil
	default:
		return nil, fmt.Errorf("ptl: unknown term kind %q", n.K)
	}
}

func decodeTerms(ns []*wireNode) ([]Term, error) {
	if len(ns) == 0 {
		return nil, nil
	}
	out := make([]Term, len(ns))
	for i, n := range ns {
		t, err := decodeTerm(n)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

func decodeFormula(n *wireNode) (Formula, error) {
	if n == nil {
		return nil, fmt.Errorf("ptl: missing formula node")
	}
	switch n.K {
	case "bool":
		return &BoolConst{V: n.B}, nil
	case "cmp":
		l, err := decodeTerm(n.L)
		if err != nil {
			return nil, err
		}
		r, err := decodeTerm(n.R)
		if err != nil {
			return nil, err
		}
		return &Cmp{Op: value.CmpOp(n.Op), L: l, R: r}, nil
	case "event":
		args, err := decodeTerms(n.Args)
		if err != nil {
			return nil, err
		}
		return &EventAtom{Name: n.Name, Args: args}, nil
	case "executed":
		args, err := decodeTerms(n.Args)
		if err != nil {
			return nil, err
		}
		targ, err := decodeTerm(n.TArg)
		if err != nil {
			return nil, err
		}
		return &Executed{Rule: n.Name, Args: args, TimeArg: targ}, nil
	case "member":
		elems, err := decodeTerms(n.Args)
		if err != nil {
			return nil, err
		}
		rel, err := decodeTerm(n.Q)
		if err != nil {
			return nil, err
		}
		return &Member{Elems: elems, Rel: rel}, nil
	case "not":
		sub, err := decodeFormula(n.L)
		if err != nil {
			return nil, err
		}
		return &Not{F: sub}, nil
	case "and":
		l, r, err := decodeBinary(n)
		if err != nil {
			return nil, err
		}
		return &And{L: l, R: r}, nil
	case "or":
		l, r, err := decodeBinary(n)
		if err != nil {
			return nil, err
		}
		return &Or{L: l, R: r}, nil
	case "since":
		l, r, err := decodeBinary(n)
		if err != nil {
			return nil, err
		}
		return &Since{L: l, R: r, Bound: n.Bound}, nil
	case "lasttime":
		sub, err := decodeFormula(n.L)
		if err != nil {
			return nil, err
		}
		return &Lasttime{F: sub}, nil
	case "previously":
		sub, err := decodeFormula(n.L)
		if err != nil {
			return nil, err
		}
		return &Previously{F: sub, Bound: n.Bound}, nil
	case "throughout":
		sub, err := decodeFormula(n.L)
		if err != nil {
			return nil, err
		}
		return &Throughout{F: sub, Bound: n.Bound}, nil
	case "assign":
		q, err := decodeTerm(n.Q)
		if err != nil {
			return nil, err
		}
		body, err := decodeFormula(n.L)
		if err != nil {
			return nil, err
		}
		return &Assign{Var: n.Name, Q: q, Body: body}, nil
	case "until":
		l, r, err := decodeBinary(n)
		if err != nil {
			return nil, err
		}
		return &Until{L: l, R: r, Bound: n.Bound}, nil
	case "nexttime":
		sub, err := decodeFormula(n.L)
		if err != nil {
			return nil, err
		}
		return &Nexttime{F: sub}, nil
	case "eventually":
		sub, err := decodeFormula(n.L)
		if err != nil {
			return nil, err
		}
		return &Eventually{F: sub, Bound: n.Bound}, nil
	case "always":
		sub, err := decodeFormula(n.L)
		if err != nil {
			return nil, err
		}
		return &Always{F: sub, Bound: n.Bound}, nil
	default:
		return nil, fmt.Errorf("ptl: unknown formula kind %q", n.K)
	}
}

func decodeBinary(n *wireNode) (Formula, Formula, error) {
	l, err := decodeFormula(n.L)
	if err != nil {
		return nil, nil, err
	}
	r, err := decodeFormula(n.R)
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}
