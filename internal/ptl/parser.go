package ptl

import (
	"fmt"
	"strconv"

	"ptlactive/internal/value"
)

// Parse parses a formula in concrete syntax. The grammar, lowest to
// highest precedence:
//
//	formula   := orExpr { "since" [ "<=" INT ] orExpr }         (left assoc)
//	orExpr    := andExpr { "or" andExpr }
//	andExpr   := unary { "and" unary }
//	unary     := "not" unary
//	           | "previously" [ "<=" INT ] unary
//	           | "lasttime" unary
//	           | "throughout" [ "<=" INT ] unary
//	           | "[" IDENT "<-" term "]" unary
//	           | primary
//	primary   := "true" | "false"
//	           | "@" IDENT [ "(" term { "," term } ")" ]
//	           | "executed" "(" IDENT { "," term } ")"
//	           | termAtom
//	           | "(" formula ")"
//	termAtom  := term ( CMPOP term | "in" term )
//	term      := mul { ("+"|"-") mul }
//	mul       := factor { ("*"|"/"|"mod") factor }
//	factor    := INT | FLOAT | STRING | "-" factor
//	           | AGGFN "(" term ";" formula ";" formula ")"
//	           | IDENT [ "(" [ term { "," term } ] ")" ]
//	           | "(" term { "," term } ")"                      (tuple if >1)
//	CMPOP     := "=" | "!=" | "<" | "<=" | ">" | ">="
//
// `time` parses as the reserved zero-ary query. A bare identifier that is
// not followed by "(" is a variable. Comments run from '#' to end of line;
// note '#' inside an identifier is reserved for generated names.
func Parse(src string) (Formula, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.formula()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %s after formula", p.peek().kind)
	}
	return f, nil
}

// ParseTerm parses a standalone term (used by the shell and tests).
func ParseTerm(src string) (Term, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	t, err := p.term()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %s after term", p.peek().kind)
	}
	return t, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token   { return p.toks[p.i] }
func (p *parser) next() token   { t := p.toks[p.i]; p.i++; return t }
func (p *parser) save() int     { return p.i }
func (p *parser) restore(m int) { p.i = m }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("ptl: offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// accept consumes the next token if it is an identifier with the given
// lowercase text.
func (p *parser) acceptKw(kw string) bool {
	if p.peek().kind == tokIdent && p.peek().text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.peek().kind != k {
		return token{}, p.errf("expected %s, got %s", k, p.peek().kind)
	}
	return p.next(), nil
}

// optBound parses an optional "<= INT" bound after a temporal keyword.
func (p *parser) optBound() (int64, error) {
	if p.peek().kind != tokLE {
		return Unbounded, nil
	}
	p.next()
	t, err := p.expect(tokInt)
	if err != nil {
		return 0, err
	}
	b, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, p.errf("bad bound %q: %v", t.text, err)
	}
	if b < 0 {
		return 0, p.errf("negative bound %d", b)
	}
	return b, nil
}

func (p *parser) formula() (Formula, error) {
	l, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptKw("since"):
			b, err := p.optBound()
			if err != nil {
				return nil, err
			}
			r, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			l = &Since{L: l, R: r, Bound: b}
		case p.acceptKw("until"):
			b, err := p.optBound()
			if err != nil {
				return nil, err
			}
			r, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			l = &Until{L: l, R: r, Bound: b}
		default:
			return l, nil
		}
	}
}

func (p *parser) orExpr() (Formula, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Formula, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("and") {
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = &And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (Formula, error) {
	switch {
	case p.acceptKw("not"):
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Not{F: f}, nil
	case p.acceptKw("previously"):
		b, err := p.optBound()
		if err != nil {
			return nil, err
		}
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Previously{F: f, Bound: b}, nil
	case p.acceptKw("lasttime"):
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Lasttime{F: f}, nil
	case p.acceptKw("nexttime"):
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Nexttime{F: f}, nil
	case p.acceptKw("eventually"):
		b, err := p.optBound()
		if err != nil {
			return nil, err
		}
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Eventually{F: f, Bound: b}, nil
	case p.acceptKw("always"):
		b, err := p.optBound()
		if err != nil {
			return nil, err
		}
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Always{F: f, Bound: b}, nil
	case p.acceptKw("throughout"):
		b, err := p.optBound()
		if err != nil {
			return nil, err
		}
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Throughout{F: f, Bound: b}, nil
	case p.peek().kind == tokLBracket:
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if isKeyword(name.text) {
			return nil, p.errf("keyword %q cannot be a variable", name.text)
		}
		if _, err := p.expect(tokArrow); err != nil {
			return nil, err
		}
		q, err := p.term()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		body, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Assign{Var: name.text, Q: q, Body: body}, nil
	default:
		return p.primary()
	}
}

// keywords that can never be variable or event names.
func isKeyword(s string) bool {
	switch s {
	case "and", "or", "not", "since", "lasttime", "previously", "throughout",
		"until", "nexttime", "eventually", "always",
		"in", "mod", "true", "false", "executed":
		return true
	}
	return false
}

func (p *parser) primary() (Formula, error) {
	switch {
	case p.acceptKw("true"):
		return TTrue, nil
	case p.acceptKw("false"):
		return TFalse, nil
	case p.peek().kind == tokAt:
		p.next()
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if isKeyword(name.text) {
			return nil, p.errf("keyword %q cannot be an event name", name.text)
		}
		atom := &EventAtom{Name: name.text}
		if p.peek().kind == tokLParen {
			p.next()
			for {
				a, err := p.term()
				if err != nil {
					return nil, err
				}
				atom.Args = append(atom.Args, a)
				if p.peek().kind == tokComma {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
		}
		return atom, nil
	case p.acceptKw("executed"):
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		rule, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		var args []Term
		for p.peek().kind == tokComma {
			p.next()
			a, err := p.term()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if len(args) == 0 {
			return nil, p.errf("executed(%s) needs at least a time argument", rule.text)
		}
		return &Executed{Rule: rule.text, Args: args[:len(args)-1], TimeArg: args[len(args)-1]}, nil
	default:
		// Try a term-based atom first (comparison or membership); fall back
		// to a parenthesized formula. See package doc in ast.go for why the
		// two cannot be distinguished by one-token lookahead.
		mark := p.save()
		if f, err := p.termAtom(); err == nil {
			return f, nil
		}
		p.restore(mark)
		if p.peek().kind == tokLParen {
			p.next()
			f, err := p.formula()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return f, nil
		}
		return nil, p.errf("expected a formula, got %s", p.peek().kind)
	}
}

func (p *parser) termAtom() (Formula, error) {
	// Tuple membership needs special handling: "(" term "," ... ")" "in" r.
	if p.peek().kind == tokLParen {
		mark := p.save()
		p.next()
		var elems []Term
		for {
			t, err := p.term()
			if err != nil {
				p.restore(mark)
				return p.scalarAtom()
			}
			elems = append(elems, t)
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if p.peek().kind == tokRParen {
			p.next()
			if p.acceptKw("in") {
				rel, err := p.term()
				if err != nil {
					return nil, err
				}
				return &Member{Elems: elems, Rel: rel}, nil
			}
			if len(elems) > 1 {
				return nil, p.errf("expected 'in' after tuple")
			}
			// Single parenthesized term: resume term parsing from the
			// factor level so "(1 + 2) * 3 = 9" consumes its tail, then
			// finish as a scalar comparison.
			l, err := p.mulTail(elems[0])
			if err != nil {
				return nil, err
			}
			l, err = p.addTail(l)
			if err != nil {
				return nil, err
			}
			return p.finishScalarAtom(l)
		}
		p.restore(mark)
	}
	return p.scalarAtom()
}

func (p *parser) scalarAtom() (Formula, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	return p.finishScalarAtom(l)
}

func (p *parser) finishScalarAtom(l Term) (Formula, error) {
	if p.acceptKw("in") {
		rel, err := p.term()
		if err != nil {
			return nil, err
		}
		return &Member{Elems: []Term{l}, Rel: rel}, nil
	}
	var op value.CmpOp
	switch p.peek().kind {
	case tokEQ:
		op = value.EQ
	case tokNE:
		op = value.NE
	case tokLT:
		op = value.LT
	case tokLE:
		op = value.LE
	case tokGT:
		op = value.GT
	case tokGE:
		op = value.GE
	default:
		return nil, p.errf("expected a comparison operator, got %s", p.peek().kind)
	}
	p.next()
	r, err := p.term()
	if err != nil {
		return nil, err
	}
	return &Cmp{Op: op, L: l, R: r}, nil
}

func (p *parser) term() (Term, error) {
	l, err := p.mul()
	if err != nil {
		return nil, err
	}
	return p.addTail(l)
}

// addTail consumes +/- continuations after an already-parsed operand.
func (p *parser) addTail(l Term) (Term, error) {
	for {
		switch p.peek().kind {
		case tokPlus:
			p.next()
			r, err := p.mul()
			if err != nil {
				return nil, err
			}
			l = &Arith{Op: value.Add, L: l, R: r}
		case tokMinus:
			p.next()
			r, err := p.mul()
			if err != nil {
				return nil, err
			}
			l = &Arith{Op: value.Sub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) mul() (Term, error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	return p.mulTail(l)
}

// mulTail consumes */ /mod continuations after an already-parsed factor.
func (p *parser) mulTail(l Term) (Term, error) {
	for {
		switch {
		case p.peek().kind == tokStar:
			p.next()
			r, err := p.factor()
			if err != nil {
				return nil, err
			}
			l = &Arith{Op: value.Mul, L: l, R: r}
		case p.peek().kind == tokSlash:
			p.next()
			r, err := p.factor()
			if err != nil {
				return nil, err
			}
			l = &Arith{Op: value.Div, L: l, R: r}
		case p.acceptKw("mod"):
			r, err := p.factor()
			if err != nil {
				return nil, err
			}
			l = &Arith{Op: value.Mod, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) factor() (Term, error) {
	switch tk := p.peek(); tk.kind {
	case tokInt:
		p.next()
		v, err := strconv.ParseInt(tk.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q: %v", tk.text, err)
		}
		return CInt(v), nil
	case tokFloat:
		p.next()
		v, err := strconv.ParseFloat(tk.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q: %v", tk.text, err)
		}
		return CFloat(v), nil
	case tokString:
		p.next()
		return CStr(tk.text), nil
	case tokMinus:
		p.next()
		x, err := p.factor()
		if err != nil {
			return nil, err
		}
		// Fold negation of numeric literals.
		if c, ok := x.(*Const); ok {
			switch c.V.Kind() {
			case value.Int:
				return CInt(-c.V.AsInt()), nil
			case value.Float:
				return CFloat(-c.V.AsFloat()), nil
			}
		}
		return &Neg{X: x}, nil
	case tokLParen:
		p.next()
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return t, nil
	case tokIdent:
		if isKeyword(tk.text) && tk.text != "true" && tk.text != "false" {
			return nil, p.errf("keyword %q cannot start a term", tk.text)
		}
		p.next()
		if tk.text == "true" {
			return C(value.True), nil
		}
		if tk.text == "false" {
			return C(value.False), nil
		}
		if p.peek().kind != tokLParen {
			if tk.text == "time" {
				return Time(), nil
			}
			return V(tk.text), nil
		}
		p.next() // consume '('
		// Aggregate form: fn(q; start; sample).
		if ValidAggFn(tk.text) {
			mark := p.save()
			q, err := p.term()
			if err == nil && p.peek().kind == tokSemi {
				p.next()
				// Moving-window form: fn(q; window INT; sample).
				if p.acceptKw("window") {
					wt, err := p.expect(tokInt)
					if err != nil {
						return nil, err
					}
					w, err := strconv.ParseInt(wt.text, 10, 64)
					if err != nil || w < 0 {
						return nil, p.errf("bad window %q", wt.text)
					}
					if _, err := p.expect(tokSemi); err != nil {
						return nil, err
					}
					sample, err := p.formula()
					if err != nil {
						return nil, err
					}
					if _, err := p.expect(tokRParen); err != nil {
						return nil, err
					}
					return NewWindowAgg(AggFn(tk.text), q, w, sample), nil
				}
				start, err := p.formula()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokSemi); err != nil {
					return nil, err
				}
				sample, err := p.formula()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokRParen); err != nil {
					return nil, err
				}
				return NewAgg(AggFn(tk.text), q, start, sample), nil
			}
			p.restore(mark)
		}
		call := &Call{Fn: tk.text}
		if p.peek().kind == tokRParen {
			p.next()
			return call, nil
		}
		for {
			a, err := p.term()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return call, nil
	default:
		return nil, p.errf("expected a term, got %s", tk.kind)
	}
}
