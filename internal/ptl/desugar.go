package ptl

import (
	"fmt"

	"ptlactive/internal/value"
)

// Desugar rewrites derived operators into the basic ones (Section 4.1:
// "other temporal operators ... can be expressed in terms of the basic
// operators"):
//
//	previously f            == true since f
//	throughout f            == not previously not f
//	g since<=d h            == [t <- time] (g since (h and time >= t - d))
//	previously<=d f         == [t <- time] previously (f and time >= t - d)
//	throughout<=d f         == not previously<=d not f
//
// The bounded forms introduce fresh time-anchored variables ($b0, $b1, ...)
// exactly as in the paper's worked IBM example, which is what enables the
// time-bound optimization to discard dead clauses. The result contains only
// BoolConst, Cmp, EventAtom, Executed, Member, Not, And, Or, unbounded
// Since, Lasttime, Assign and Agg terms.
func Desugar(f Formula) Formula {
	d := &desugarer{used: map[string]struct{}{}}
	for _, v := range BoundVars(f) {
		d.used[v] = struct{}{}
	}
	for _, v := range FreeVars(f) {
		d.used[v] = struct{}{}
	}
	return d.formula(f)
}

type desugarer struct {
	used map[string]struct{}
	n    int
}

func (d *desugarer) fresh() string {
	for {
		cand := fmt.Sprintf("$b%d", d.n)
		d.n++
		if _, clash := d.used[cand]; !clash {
			d.used[cand] = struct{}{}
			return cand
		}
	}
}

// within builds `time >= t - bound` for the fresh anchor variable t.
func within(t string, bnd int64) Formula {
	return &Cmp{Op: value.GE, L: Time(), R: &Arith{Op: value.Sub, L: V(t), R: CInt(bnd)}}
}

func (d *desugarer) formula(f Formula) Formula {
	switch x := f.(type) {
	case *BoolConst:
		return x
	case *Cmp:
		return &Cmp{Op: x.Op, L: d.term(x.L), R: d.term(x.R)}
	case *EventAtom:
		args := make([]Term, len(x.Args))
		for i, a := range x.Args {
			args[i] = d.term(a)
		}
		return &EventAtom{Name: x.Name, Args: args}
	case *Executed:
		args := make([]Term, len(x.Args))
		for i, a := range x.Args {
			args[i] = d.term(a)
		}
		return &Executed{Rule: x.Rule, Args: args, TimeArg: d.term(x.TimeArg)}
	case *Member:
		elems := make([]Term, len(x.Elems))
		for i, e := range x.Elems {
			elems[i] = d.term(e)
		}
		return &Member{Elems: elems, Rel: d.term(x.Rel)}
	case *Not:
		return &Not{F: d.formula(x.F)}
	case *And:
		return &And{L: d.formula(x.L), R: d.formula(x.R)}
	case *Or:
		return &Or{L: d.formula(x.L), R: d.formula(x.R)}
	case *Lasttime:
		return &Lasttime{F: d.formula(x.F)}
	case *Since:
		l, r := d.formula(x.L), d.formula(x.R)
		if x.Bound < 0 {
			return &Since{L: l, R: r, Bound: Unbounded}
		}
		t := d.fresh()
		return &Assign{Var: t, Q: Time(),
			Body: &Since{L: l, R: &And{L: r, R: within(t, x.Bound)}, Bound: Unbounded}}
	case *Previously:
		inner := d.formula(x.F)
		if x.Bound < 0 {
			return &Since{L: TTrue, R: inner, Bound: Unbounded}
		}
		t := d.fresh()
		return &Assign{Var: t, Q: Time(),
			Body: &Since{L: TTrue, R: &And{L: inner, R: within(t, x.Bound)}, Bound: Unbounded}}
	case *Throughout:
		return &Not{F: d.formula(&Previously{F: &Not{F: x.F}, Bound: x.Bound})}
	case *Until:
		return &Until{L: d.formula(x.L), R: d.formula(x.R), Bound: x.Bound}
	case *Nexttime:
		return &Nexttime{F: d.formula(x.F)}
	case *Eventually:
		return &Until{L: TTrue, R: d.formula(x.F), Bound: x.Bound}
	case *Always:
		return &Not{F: &Until{L: TTrue, R: d.formula(&Not{F: x.F}), Bound: x.Bound}}
	case *Assign:
		return &Assign{Var: x.Var, Q: d.term(x.Q), Body: d.formula(x.Body)}
	default:
		return f
	}
}

func (d *desugarer) term(t Term) Term {
	switch x := t.(type) {
	case *Const, *Var:
		return t
	case *Call:
		args := make([]Term, len(x.Args))
		for i, a := range x.Args {
			args[i] = d.term(a)
		}
		return &Call{Fn: x.Fn, Args: args}
	case *Arith:
		return &Arith{Op: x.Op, L: d.term(x.L), R: d.term(x.R)}
	case *Neg:
		return &Neg{X: d.term(x.X)}
	case *Agg:
		out := &Agg{Fn: x.Fn, Q: d.term(x.Q), Sample: d.formula(x.Sample), Window: x.Window}
		if x.Start != nil {
			out.Start = d.formula(x.Start)
		}
		return out
	default:
		return t
	}
}
