package ptl

import (
	"fmt"
	"sort"

	"ptlactive/internal/query"
	"ptlactive/internal/value"
)

// Info is the result of checking a formula: the normalized (renamed-apart,
// desugared) form the evaluators run on, plus the static analyses they
// need.
type Info struct {
	// Source is the formula as given.
	Source Formula
	// Normalized is RenameApart+Desugar of Source; evaluators consume this.
	Normalized Formula
	// Free are the formula's free variables (the rule's parameters).
	Free []string
	// Events are the distinct event symbols referenced (relevance filter).
	Events []string
	// TimeVars are variables assigned from the reserved time query; the
	// time-bound optimization may fold their dead upper-bound clauses.
	TimeVars map[string]bool
	// Temporal reports whether the condition needs history at all.
	Temporal bool
}

// Check validates a formula against a query registry and returns its Info.
// It enforces, statically, everything the Section-5 algorithm assumes:
//
//   - every query call resolves to a registered function with correct arity;
//   - aggregate functions are known and aggregate bodies are checked too;
//   - event/executed/member binding positions hold only variables or ground
//     terms (so matches translate into equality constraints);
//   - every free variable occurs in at least one binding position — an
//     event argument, an executed argument, a member element, or one side
//     of an equality whose other side is variable-free — guaranteeing the
//     evaluator can enumerate candidate parameter values (safety in the
//     sense of [Ullman 88], which the assignment operator preserves for
//     bound variables).
func Check(f Formula, reg *query.Registry) (*Info, error) {
	norm := Desugar(RenameApart(f))
	info := &Info{
		Source:     f,
		Normalized: norm,
		Free:       FreeVars(f),
		Events:     EventNames(f),
		TimeVars:   map[string]bool{},
		Temporal:   HasTemporal(norm),
	}
	c := &checker{reg: reg, info: info, binding: map[string]bool{}}
	if err := c.formula(norm); err != nil {
		return nil, err
	}
	// Free variables of the normalized formula equal those of the source
	// (renaming and desugaring never free or capture variables); verify to
	// catch normalization bugs early.
	nf := FreeVars(norm)
	if len(nf) != len(info.Free) {
		return nil, fmt.Errorf("ptl: internal: normalization changed free variables from %v to %v", info.Free, nf)
	}
	for i := range nf {
		if nf[i] != info.Free[i] {
			return nil, fmt.Errorf("ptl: internal: normalization changed free variables from %v to %v", info.Free, nf)
		}
	}
	for _, v := range info.Free {
		if !c.binding[v] {
			return nil, fmt.Errorf("ptl: free variable %s has no binding position (event/executed/member argument or equality with a ground term); the rule cannot be safely enumerated", v)
		}
	}
	// Collect time-anchored variables: assigned exactly from time.
	Walk(norm, func(g Formula) {
		if a, ok := g.(*Assign); ok {
			if call, ok := a.Q.(*Call); ok && call.Fn == "time" && len(call.Args) == 0 {
				info.TimeVars[a.Var] = true
			}
		}
	})
	return info, nil
}

type checker struct {
	reg  *query.Registry
	info *Info
	// binding records free variables seen in a binding position.
	binding map[string]bool
}

// ground reports whether the term contains no variables.
func ground(t Term) bool {
	switch x := t.(type) {
	case *Const:
		return true
	case *Var:
		return false
	case *Call:
		for _, a := range x.Args {
			if !ground(a) {
				return false
			}
		}
		return true
	case *Arith:
		return ground(x.L) && ground(x.R)
	case *Neg:
		return ground(x.X)
	case *Agg:
		// Aggregates are evaluated per-state like queries; they are ground
		// when their query and formulas mention no free variables.
		if !ground(x.Q) || len(FreeVars(x.Sample)) != 0 {
			return false
		}
		return x.Start == nil || len(FreeVars(x.Start)) == 0
	default:
		return false
	}
}

func (c *checker) bindPos(t Term) error {
	switch x := t.(type) {
	case *Var:
		c.binding[x.Name] = true
		return nil
	default:
		if !ground(t) {
			return fmt.Errorf("ptl: binding position %s must be a variable or a ground term", t)
		}
		return nil
	}
}

func (c *checker) term(t Term) error {
	switch x := t.(type) {
	case *Const:
		if x.V.IsNull() {
			return fmt.Errorf("ptl: null constant in formula")
		}
		return nil
	case *Var:
		return nil
	case *Call:
		arity, ok := c.reg.Arity(x.Fn)
		if !ok {
			return fmt.Errorf("ptl: unknown query function %q", x.Fn)
		}
		if arity >= 0 && len(x.Args) != arity {
			return fmt.Errorf("ptl: query %s expects %d arguments, got %d", x.Fn, arity, len(x.Args))
		}
		for _, a := range x.Args {
			if !ground(a) {
				// The incremental algorithm evaluates queries against the
				// current state while variables may still be symbolic; the
				// paper handles variable-indexed queries like price(x) by
				// the indexed-rule rewriting of Section 6.1.1 instead.
				return fmt.Errorf("ptl: query argument %s of %s mentions variables; bind the query result to a variable instead", a, x.Fn)
			}
			if err := c.term(a); err != nil {
				return err
			}
		}
		return nil
	case *Arith:
		if err := c.term(x.L); err != nil {
			return err
		}
		return c.term(x.R)
	case *Neg:
		return c.term(x.X)
	case *Agg:
		if !ValidAggFn(string(x.Fn)) {
			return fmt.Errorf("ptl: unknown aggregate function %q", x.Fn)
		}
		if (x.Window >= 0) == (x.Start != nil) {
			return fmt.Errorf("ptl: aggregate %s must have exactly one of a window and a starting formula", x.Fn)
		}
		if !ground(x) {
			return fmt.Errorf("ptl: aggregate %s mentions free variables; rewrite it with indexed rules (internal/agg) as in Section 6.1.1", x.Fn)
		}
		if nestedAgg(x.Q) {
			return fmt.Errorf("ptl: aggregate %s nests an aggregate inside its query term; nest inside the starting or sampling formula instead (Section 6.1)", x.Fn)
		}
		if err := c.term(x.Q); err != nil {
			return err
		}
		if x.Start != nil {
			if err := c.formula(x.Start); err != nil {
				return err
			}
		}
		return c.formula(x.Sample)
	default:
		return fmt.Errorf("ptl: unknown term %T", t)
	}
}

func (c *checker) formula(f Formula) error {
	switch x := f.(type) {
	case *BoolConst:
		return nil
	case *Cmp:
		if err := c.term(x.L); err != nil {
			return err
		}
		if err := c.term(x.R); err != nil {
			return err
		}
		// Equality with a ground side is a binding position for a bare
		// variable on the other side.
		if x.Op == value.EQ {
			if v, ok := x.L.(*Var); ok && ground(x.R) {
				c.binding[v.Name] = true
			}
			if v, ok := x.R.(*Var); ok && ground(x.L) {
				c.binding[v.Name] = true
			}
		}
		return nil
	case *EventAtom:
		if x.Name == "" {
			return fmt.Errorf("ptl: event atom with empty name")
		}
		for _, a := range x.Args {
			if err := c.bindPos(a); err != nil {
				return err
			}
			if err := c.term(a); err != nil {
				return err
			}
		}
		return nil
	case *Executed:
		if x.Rule == "" {
			return fmt.Errorf("ptl: executed with empty rule name")
		}
		for _, a := range x.Args {
			if err := c.bindPos(a); err != nil {
				return err
			}
			if err := c.term(a); err != nil {
				return err
			}
		}
		if err := c.bindPos(x.TimeArg); err != nil {
			return err
		}
		return c.term(x.TimeArg)
	case *Member:
		if len(x.Elems) == 0 {
			return fmt.Errorf("ptl: membership with empty tuple")
		}
		for _, e := range x.Elems {
			if err := c.bindPos(e); err != nil {
				return err
			}
			if err := c.term(e); err != nil {
				return err
			}
		}
		switch x.Rel.(type) {
		case *Var, *Call:
			return c.term(x.Rel)
		default:
			return fmt.Errorf("ptl: membership relation must be a variable or a query, got %s", x.Rel)
		}
	case *Not:
		return c.formula(x.F)
	case *And:
		if err := c.formula(x.L); err != nil {
			return err
		}
		return c.formula(x.R)
	case *Or:
		if err := c.formula(x.L); err != nil {
			return err
		}
		return c.formula(x.R)
	case *Until, *Nexttime, *Eventually, *Always:
		return fmt.Errorf("ptl: future operator %T: the incremental past engine cannot evaluate it; monitor it with internal/future", x)
	case *Since:
		if x.Bound >= 0 {
			return fmt.Errorf("ptl: internal: bounded since survived desugaring")
		}
		if err := c.formula(x.L); err != nil {
			return err
		}
		return c.formula(x.R)
	case *Lasttime:
		return c.formula(x.F)
	case *Previously, *Throughout:
		return fmt.Errorf("ptl: internal: derived operator survived desugaring")
	case *Assign:
		if x.Var == "" {
			return fmt.Errorf("ptl: assignment with empty variable")
		}
		if err := c.term(x.Q); err != nil {
			return err
		}
		if _, isAgg := x.Q.(*Agg); !isAgg {
			if _, isCall := x.Q.(*Call); !isCall {
				if !ground(x.Q) {
					return fmt.Errorf("ptl: assignment [%s <- %s] must bind a query, aggregate or ground term", x.Var, x.Q)
				}
			}
		}
		return c.formula(x.Body)
	default:
		return fmt.Errorf("ptl: unknown formula %T", f)
	}
}

// Decomposable classifies the subclass of PTL that the paper's Sybase
// prototype implemented ([Deng 94], "decomposable formulas"): the formula
// decomposes into per-state atoms combined by boolean and temporal
// operators such that no variable crosses a temporal operator — i.e. every
// assignment's body contains no temporal operator mentioning the assigned
// variable beneath it. Decomposable conditions never need symbolic
// constraint state: every F_{g,i} folds to a constant.
func Decomposable(f Formula) bool {
	norm := Desugar(RenameApart(f))
	ok := true
	Walk(norm, func(g Formula) {
		a, isAssign := g.(*Assign)
		if !isAssign {
			return
		}
		// Does any temporal operator under the assignment mention a.Var?
		Walk(a.Body, func(h Formula) {
			var inner Formula
			switch t := h.(type) {
			case *Since:
				inner = t
			case *Lasttime:
				inner = t
			default:
				return
			}
			for _, v := range freeVarsOf(inner) {
				if v == a.Var {
					ok = false
				}
			}
		})
	})
	// Free variables also force symbolic state.
	if len(FreeVars(norm)) > 0 {
		ok = false
	}
	return ok
}

func freeVarsOf(f Formula) []string {
	seen := map[string]struct{}{}
	collectFree(f, map[string]int{}, seen)
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// nestedAgg reports whether a term contains an aggregate.
func nestedAgg(t Term) bool {
	switch x := t.(type) {
	case *Agg:
		return true
	case *Call:
		for _, a := range x.Args {
			if nestedAgg(a) {
				return true
			}
		}
		return false
	case *Arith:
		return nestedAgg(x.L) || nestedAgg(x.R)
	case *Neg:
		return nestedAgg(x.X)
	default:
		return false
	}
}
