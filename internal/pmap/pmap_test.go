package pmap

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func eqInt(a, b int) bool { return a == b }

// version pairs a persistent map with an independent snapshot of the
// plain-map reference model at the moment the version was created.
type version struct {
	m     Map[int]
	model map[string]int
}

func snapshot(model map[string]int) map[string]int {
	out := make(map[string]int, len(model))
	for k, v := range model {
		out[k] = v
	}
	return out
}

// checkAgainst verifies a map against its reference model completely:
// length, every key, misses, sorted iteration, and Items-style output.
func checkAgainst(t *testing.T, m Map[int], model map[string]int) {
	t.Helper()
	if m.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", m.Len(), len(model))
	}
	for k, want := range model {
		got, ok := m.Get(k)
		if !ok || got != want {
			t.Fatalf("Get(%q) = %d,%v; model %d", k, got, ok, want)
		}
	}
	if _, ok := m.Get("\x00never-a-key"); ok {
		t.Fatalf("Get on absent key reported present")
	}
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	m.Range(func(k string, v int) bool {
		if i >= len(keys) || k != keys[i] || v != model[k] {
			t.Fatalf("Range[%d] = %q,%d; want %q,%d", i, k, v, keys[i], model[keys[i]])
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("Range visited %d of %d", i, len(keys))
	}
}

// modelDiff computes the expected Diff output from two model snapshots.
func modelDiff(a, b map[string]int) []string {
	seen := map[string]bool{}
	var out []string
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			out = append(out, k)
			seen[k] = true
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok && !seen[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func collectDiff(a, b Map[int]) []string {
	var out []string
	a.Diff(b, eqInt, func(k string) bool {
		out = append(out, k)
		return true
	})
	return out
}

// runModelTest drives a long random interleaving of With / WithAll /
// Without / Get / Equal / Diff against the reference model, retaining
// every tenth version and re-verifying all retained versions after
// every mutation — old versions must be immutable forever (no aliasing
// between versions).
func runModelTest(t *testing.T, rng *rand.Rand, keys []string, steps int) {
	t.Helper()
	cur := version{model: map[string]int{}}
	var old []version
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // With
			k := keys[rng.Intn(len(keys))]
			v := rng.Intn(1000)
			cur = version{m: cur.m.With(k, v), model: snapshot(cur.model)}
			cur.model[k] = v
		case op < 6: // WithAll
			ups := map[string]int{}
			for n := rng.Intn(5); n >= 0; n-- {
				ups[keys[rng.Intn(len(keys))]] = rng.Intn(1000)
			}
			next := snapshot(cur.model)
			for k, v := range ups {
				next[k] = v
			}
			cur = version{m: cur.m.WithAll(ups), model: next}
		case op < 8: // Without
			k := keys[rng.Intn(len(keys))]
			next := snapshot(cur.model)
			delete(next, k)
			cur = version{m: cur.m.Without(k), model: next}
		case op < 9: // Equal against a random retained version
			if len(old) > 0 {
				o := old[rng.Intn(len(old))]
				want := len(modelDiff(cur.model, o.model)) == 0
				if got := cur.m.Equal(o.m, eqInt); got != want {
					t.Fatalf("step %d: Equal = %v, model %v", step, got, want)
				}
			}
		default: // Diff against a random retained version
			if len(old) > 0 {
				o := old[rng.Intn(len(old))]
				got := collectDiff(cur.m, o.m)
				want := modelDiff(cur.model, o.model)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("step %d: Diff = %v, model %v", step, got, want)
				}
			}
		}
		if step%10 == 0 {
			old = append(old, cur)
		}
		if step%25 == 0 {
			checkAgainst(t, cur.m, cur.model)
			// Old versions must read exactly as they did when retained.
			for _, o := range old {
				checkAgainst(t, o.m, o.model)
			}
		}
	}
	checkAgainst(t, cur.m, cur.model)
	for _, o := range old {
		checkAgainst(t, o.m, o.model)
	}
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("item%03d", i)
	}
	return keys
}

func TestPMapModel(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			// Key universes straddling the slice/treap boundary in both
			// directions, so transitions are crossed constantly.
			runModelTest(t, rand.New(rand.NewSource(seed)), testKeys(6), 600)
			runModelTest(t, rand.New(rand.NewSource(seed)), testKeys(12), 800)
			runModelTest(t, rand.New(rand.NewSource(seed)), testKeys(80), 1500)
		})
	}
}

// TestPMapModelCollisions forces priority-collision paths through a
// test-seam hash: all-tied priorities (pure key tie-break, the tree
// degenerates to a spine) and a 4-bucket hash (long tie runs).
func TestPMapModelCollisions(t *testing.T) {
	t.Run("allTied", func(t *testing.T) {
		restore := SetPrioForTesting(func(string) uint64 { return 7 })
		defer restore()
		runModelTest(t, rand.New(rand.NewSource(42)), testKeys(40), 1200)
	})
	t.Run("fourBuckets", func(t *testing.T) {
		restore := SetPrioForTesting(func(k string) uint64 { return fnvPrio(k) % 4 })
		defer restore()
		runModelTest(t, rand.New(rand.NewSource(43)), testKeys(40), 1200)
	})
}

// TestPMapCanonicalShape asserts the unique-representation invariant:
// the same contents produce byte-identical internal structure whatever
// operation order built the map — the property Equal and Diff rely on
// to align two maps node by node.
func TestPMapCanonicalShape(t *testing.T) {
	keys := testKeys(50)
	rng := rand.New(rand.NewSource(99))
	want := ""
	for trial := 0; trial < 10; trial++ {
		order := rng.Perm(len(keys))
		m := Map[int]{}
		for _, i := range order {
			m = m.With(keys[i], i)
		}
		// Insert and remove some extra keys so deletions are covered too.
		for j := 0; j < 10; j++ {
			k := fmt.Sprintf("extra%02d", rng.Intn(20))
			m = m.With(k, j)
			defer func() {}() // keep loop shape clear
			m = m.Without(k)
		}
		fp := m.Fingerprint()
		if trial == 0 {
			want = fp
		} else if fp != want {
			t.Fatalf("trial %d: fingerprint diverged:\n%s\nvs\n%s", trial, fp, want)
		}
	}
}

// TestPMapSharing asserts structural sharing: a one-key update of a
// large map must report only that key in Diff and stay Equal-fast via
// pointer cutoffs (we can only observe correctness here; the alloc test
// below observes the cost).
func TestPMapSharing(t *testing.T) {
	m := Map[int]{}
	for _, k := range testKeys(1000) {
		m = m.With(k, 1)
	}
	m2 := m.With("item500", 2)
	if d := collectDiff(m, m2); len(d) != 1 || d[0] != "item500" {
		t.Fatalf("Diff after one update = %v", d)
	}
	m3 := m.Without("item007")
	if d := collectDiff(m, m3); len(d) != 1 || d[0] != "item007" {
		t.Fatalf("Diff after one delete = %v", d)
	}
	if !m.Equal(m, eqInt) {
		t.Fatalf("map not Equal to itself")
	}
	if m.Equal(m2, eqInt) || m.Equal(m3, eqInt) {
		t.Fatalf("distinct versions compared Equal")
	}
	// Early termination of Diff and Range.
	calls := 0
	m.Diff(Map[int]{}, eqInt, func(string) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("Diff ignored early stop: %d calls", calls)
	}
	calls = 0
	m.Range(func(string, int) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("Range ignored early stop: %d calls", calls)
	}
}

// TestPMapDepth sanity-checks the expected O(log n) shape under the
// production hash: a 100k-key treap must stay within a small multiple
// of log2(n) (~17), far from the degenerate spine.
func TestPMapDepth(t *testing.T) {
	m := Map[int]{}
	for i := 0; i < 100000; i++ {
		m = m.With(fmt.Sprintf("item%06d", i), i)
	}
	if d := m.Depth(); d > 5*17 {
		t.Fatalf("treap depth %d for 100k keys; hash is misbehaving", d)
	}
}

// TestPMapAllocs is the allocation-regression gate for the small-update
// operations the commit hot path performs, so the structural-sharing
// win cannot silently rot back into O(n) copying.
func TestPMapAllocs(t *testing.T) {
	small := Map[int]{}
	for _, k := range testKeys(4) {
		small = small.With(k, 1)
	}
	big := Map[int]{}
	for i := 0; i < 100000; i++ {
		big = big.With(fmt.Sprintf("item%06d", i), i)
	}
	prev := big
	big2 := big.With("item050000", -1)

	cases := []struct {
		name  string
		limit float64
		fn    func()
	}{
		// Slice form: exactly one slice allocation per update.
		{"smallWith", 1, func() { small.With("item002", 9) }},
		// Treap form: one node per copied path level; expected depth for
		// 100k keys is ~2·ln n ≈ 23. The bound is loose enough for hash
		// variance, tight enough that an O(n) copy (100k allocs) or a
		// degenerate spine can never pass.
		{"bigWith", 96, func() { big.With("item050000", -1) }},
		{"bigWithout", 96, func() { big.Without("item050000") }},
		{"get", 0, func() { big.Get("item099999") }},
		// Sharing-aware comparisons of adjacent versions allocate nothing.
		{"equalShared", 0, func() { prev.Equal(big2, eqInt) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := testing.AllocsPerRun(200, c.fn); got > c.limit {
				t.Fatalf("%s: %.1f allocs/op, limit %.0f", c.name, got, c.limit)
			}
		})
	}
}
