// Package pmap implements an immutable, persistent map from string keys
// to values whose update operations share all untouched structure with
// the version they were derived from. It is the storage layer behind
// history.DBState: consecutive database states in a system history
// differ by one transaction's updates, so path copying makes a commit
// cost O(updates × log n) instead of the O(n) full-map copy, and two
// states that share structure can be compared or diffed by walking only
// the unshared part.
//
// The representation is adaptive. Maps of at most smallMax entries are
// a copy-on-write slice sorted by key — one allocation per update, the
// cheapest possible shape for the small databases of unit workloads and
// for per-transaction update sets. Larger maps are a path-copying treap
// whose heap priorities are a hash of the key, which makes the tree
// shape a canonical function of the key set alone: the same keys always
// build the same tree, regardless of insertion order. Canonical shapes
// are what let Equal and Diff align two maps node by node and cut off
// at pointer-shared subtrees.
//
// Invariants:
//   - Values of type Map are immutable forever; every operation returns
//     a new Map and never mutates reachable nodes. Old versions remain
//     valid and cheap to retain (a history window holds L states in
//     O(n + L·u·log n) space, not O(L·n)).
//   - A map of k entries is in slice form iff k <= smallMax; Without
//     collapses a treap that shrinks to smallMax back to a slice, so
//     representation is a function of content.
//   - Treap shape is the unique treap over {(key, prio(key))} ordered
//     by key (BST) and by (prio, key) (heap, ties broken toward the
//     smaller key), so shape is deterministic and insertion-order-free.
package pmap

// smallMax is the largest map kept in sorted-slice form. Eight matches
// the small-set elision in internal/event: beyond this, whole-slice
// copies start losing to path copying.
const smallMax = 8

// keyPrio is the treap priority hash (FNV-1a plus a murmur-style
// finalizer: priorities compare as integers, so the *high* bits must
// avalanche, which raw FNV of near-identical keys does not deliver). It
// is a variable only so the package tests can force priority collisions
// and adversarial shapes; production code must never replace it — maps
// built under different priority functions must not be mixed.
var keyPrio = fnvPrio

func fnvPrio(k string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k); i++ {
		h ^= uint64(k[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// beats reports whether (p1, k1) takes heap precedence over (p2, k2).
// It is a strict total order because keys are unique.
func beats(p1 uint64, k1 string, p2 uint64, k2 string) bool {
	return p1 > p2 || (p1 == p2 && k1 < k2)
}

type entry[V any] struct {
	k string
	v V
}

type node[V any] struct {
	k    string
	v    V
	prio uint64
	l, r *node[V]
	size int
}

// Map is an immutable, persistent, ordered map. The zero value is the
// empty map.
type Map[V any] struct {
	vec  []entry[V] // sorted by key; used iff root is nil
	root *node[V]
}

func size[V any](n *node[V]) int {
	if n == nil {
		return 0
	}
	return n.size
}

// Len returns the number of entries.
func (m Map[V]) Len() int {
	if m.root != nil {
		return m.root.size
	}
	return len(m.vec)
}

// Get returns the value stored under k.
func (m Map[V]) Get(k string) (V, bool) {
	if m.root == nil {
		for i := range m.vec {
			if m.vec[i].k == k {
				return m.vec[i].v, true
			}
		}
		var zero V
		return zero, false
	}
	n := m.root
	for n != nil {
		switch {
		case k == n.k:
			return n.v, true
		case k < n.k:
			n = n.l
		default:
			n = n.r
		}
	}
	var zero V
	return zero, false
}

// vecSearch returns the first index whose key is >= k.
func vecSearch[V any](vec []entry[V], k string) int {
	lo, hi := 0, len(vec)
	for lo < hi {
		mid := (lo + hi) / 2
		if vec[mid].k < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// With returns a new map with k set to v.
func (m Map[V]) With(k string, v V) Map[V] {
	if m.root != nil {
		return Map[V]{root: insert(m.root, k, v, keyPrio(k))}
	}
	i := vecSearch(m.vec, k)
	if i < len(m.vec) && m.vec[i].k == k {
		out := make([]entry[V], len(m.vec))
		copy(out, m.vec)
		out[i].v = v
		return Map[V]{vec: out}
	}
	if len(m.vec) == smallMax {
		return Map[V]{root: insert(buildTreap(m.vec), k, v, keyPrio(k))}
	}
	out := make([]entry[V], len(m.vec)+1)
	copy(out, m.vec[:i])
	out[i] = entry[V]{k: k, v: v}
	copy(out[i+1:], m.vec[i:])
	return Map[V]{vec: out}
}

// WithAll returns a new map with every update applied. A small map that
// stays small is rebuilt in a single allocation.
func (m Map[V]) WithAll(updates map[string]V) Map[V] {
	if len(updates) == 0 {
		return m
	}
	if m.root == nil {
		fresh := 0
		for k := range updates {
			if i := vecSearch(m.vec, k); i >= len(m.vec) || m.vec[i].k != k {
				fresh++
			}
		}
		if len(m.vec)+fresh <= smallMax {
			out := make([]entry[V], len(m.vec), len(m.vec)+fresh)
			copy(out, m.vec)
			for k, v := range updates {
				i := vecSearch(out, k)
				if i < len(out) && out[i].k == k {
					out[i].v = v
					continue
				}
				out = append(out, entry[V]{})
				copy(out[i+1:], out[i:])
				out[i] = entry[V]{k: k, v: v}
			}
			return Map[V]{vec: out}
		}
		m = Map[V]{root: buildTreap(m.vec)}
	}
	root := m.root
	for k, v := range updates {
		root = insert(root, k, v, keyPrio(k))
	}
	return Map[V]{root: root}
}

// Without returns a new map with k removed; m itself is returned when k
// is absent.
func (m Map[V]) Without(k string) Map[V] {
	if m.root != nil {
		root, ok := remove(m.root, k)
		if !ok {
			return m
		}
		if root.size == smallMax {
			return Map[V]{vec: collapse(root)}
		}
		return Map[V]{root: root}
	}
	i := vecSearch(m.vec, k)
	if i >= len(m.vec) || m.vec[i].k != k {
		return m
	}
	if len(m.vec) == 1 {
		return Map[V]{}
	}
	out := make([]entry[V], len(m.vec)-1)
	copy(out, m.vec[:i])
	copy(out[i:], m.vec[i+1:])
	return Map[V]{vec: out}
}

// Range calls fn for every entry in ascending key order until fn
// returns false. The map is ordered, so Range doubles as the sorted
// iterator — deterministic with no per-call sorting or allocation.
func (m Map[V]) Range(fn func(k string, v V) bool) {
	if m.root == nil {
		for i := range m.vec {
			if !fn(m.vec[i].k, m.vec[i].v) {
				return
			}
		}
		return
	}
	rangeNodes(m.root, fn)
}

func rangeNodes[V any](n *node[V], fn func(string, V) bool) bool {
	if n == nil {
		return true
	}
	return rangeNodes(n.l, fn) && fn(n.k, n.v) && rangeNodes(n.r, fn)
}

// Equal reports whether m and o hold the same keys with eq-equal
// values. Shapes are canonical, so the maps are compared node by node
// with pointer-shared subtrees skipped outright: comparing a state
// against a version derived from it by u updates costs O(u × log n).
func (m Map[V]) Equal(o Map[V], eq func(a, b V) bool) bool {
	if m.Len() != o.Len() {
		return false
	}
	if m.root == nil {
		// Same length ⇒ same representation (content determines form).
		for i := range m.vec {
			if m.vec[i].k != o.vec[i].k || !eq(m.vec[i].v, o.vec[i].v) {
				return false
			}
		}
		return true
	}
	return equalNodes(m.root, o.root, eq)
}

func equalNodes[V any](a, b *node[V], eq func(V, V) bool) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.size != b.size || a.k != b.k {
		return false
	}
	return eq(a.v, b.v) && equalNodes(a.l, b.l, eq) && equalNodes(a.r, b.r, eq)
}

// Diff reports, in ascending key order, every key at which m and o
// differ — present in exactly one, or present in both with values eq
// considers unequal — stopping early if fn returns false. Subtrees
// shared between the two maps are skipped by pointer equality, so
// diffing a state against a version derived from it by u value updates
// walks O(u × log n) nodes; an insertion or deletion that restructured
// the tree near the root degrades the walk toward a sorted merge of the
// divergent subtrees, never worse than O(n).
func (m Map[V]) Diff(o Map[V], eq func(a, b V) bool, fn func(k string) bool) {
	if m.root != nil && o.root != nil {
		diffNodes(m.root, o.root, eq, fn)
		return
	}
	var ca, cb cursor[V]
	ca.vec, cb.vec = m.vec, o.vec
	ca.push(m.root)
	cb.push(o.root)
	mergeDiff(&ca, &cb, eq, fn)
}

func diffNodes[V any](a, b *node[V], eq func(V, V) bool, fn func(string) bool) bool {
	if a == b {
		return true
	}
	if a == nil {
		return rangeNodes(b, func(k string, _ V) bool { return fn(k) })
	}
	if b == nil {
		return rangeNodes(a, func(k string, _ V) bool { return fn(k) })
	}
	if a.k == b.k {
		if !diffNodes(a.l, b.l, eq, fn) {
			return false
		}
		if !eq(a.v, b.v) && !fn(a.k) {
			return false
		}
		return diffNodes(a.r, b.r, eq, fn)
	}
	// The key sets diverge here and the shapes no longer align; fall
	// back to a sorted merge of the two subtrees.
	var ca, cb cursor[V]
	ca.push(a)
	cb.push(b)
	return mergeDiff(&ca, &cb, eq, fn)
}

// cursor is an in-order iterator over one map (either representation).
type cursor[V any] struct {
	vec   []entry[V]
	stack []*node[V]
}

func (c *cursor[V]) push(n *node[V]) {
	for ; n != nil; n = n.l {
		c.stack = append(c.stack, n)
	}
}

func (c *cursor[V]) next() (string, V, bool) {
	if len(c.vec) > 0 {
		e := c.vec[0]
		c.vec = c.vec[1:]
		return e.k, e.v, true
	}
	if len(c.stack) == 0 {
		var zero V
		return "", zero, false
	}
	n := c.stack[len(c.stack)-1]
	c.stack = c.stack[:len(c.stack)-1]
	c.push(n.r)
	return n.k, n.v, true
}

func mergeDiff[V any](a, b *cursor[V], eq func(V, V) bool, fn func(string) bool) bool {
	ka, va, oka := a.next()
	kb, vb, okb := b.next()
	for oka && okb {
		switch {
		case ka == kb:
			if !eq(va, vb) && !fn(ka) {
				return false
			}
			ka, va, oka = a.next()
			kb, vb, okb = b.next()
		case ka < kb:
			if !fn(ka) {
				return false
			}
			ka, va, oka = a.next()
		default:
			if !fn(kb) {
				return false
			}
			kb, vb, okb = b.next()
		}
	}
	for oka {
		if !fn(ka) {
			return false
		}
		ka, _, oka = a.next()
	}
	for okb {
		if !fn(kb) {
			return false
		}
		kb, _, okb = b.next()
	}
	return true
}

// insert returns the canonical treap holding n's entries plus k=v.
// Nodes along the search path are copied; the rotations restoring the
// heap order touch only those fresh copies, never shared structure.
func insert[V any](n *node[V], k string, v V, p uint64) *node[V] {
	if n == nil {
		return &node[V]{k: k, v: v, prio: p, size: 1}
	}
	c := *n
	switch {
	case k == n.k:
		c.v = v
		return &c
	case k < n.k:
		c.l = insert(n.l, k, v, p)
		c.size = c.l.size + size(c.r) + 1
		if beats(c.l.prio, c.l.k, c.prio, c.k) {
			return rotRight(&c)
		}
	default:
		c.r = insert(n.r, k, v, p)
		c.size = size(c.l) + c.r.size + 1
		if beats(c.r.prio, c.r.k, c.prio, c.k) {
			return rotLeft(&c)
		}
	}
	return &c
}

// rotRight lifts c.l above c. Both nodes are fresh copies owned by the
// caller, so they are rewired in place.
func rotRight[V any](c *node[V]) *node[V] {
	l := c.l
	c.l = l.r
	c.size = size(c.l) + size(c.r) + 1
	l.r = c
	l.size = size(l.l) + c.size + 1
	return l
}

func rotLeft[V any](c *node[V]) *node[V] {
	r := c.r
	c.r = r.l
	c.size = size(c.l) + size(c.r) + 1
	r.l = c
	r.size = c.size + size(r.r) + 1
	return r
}

// remove returns n without k and whether k was present; the original
// subtree is returned untouched when k is absent, so a miss allocates
// nothing.
func remove[V any](n *node[V], k string) (*node[V], bool) {
	if n == nil {
		return nil, false
	}
	switch {
	case k == n.k:
		return merge(n.l, n.r), true
	case k < n.k:
		l, ok := remove(n.l, k)
		if !ok {
			return n, false
		}
		c := *n
		c.l = l
		c.size = n.size - 1
		return &c, true
	default:
		r, ok := remove(n.r, k)
		if !ok {
			return n, false
		}
		c := *n
		c.r = r
		c.size = n.size - 1
		return &c, true
	}
}

// merge joins two treaps whose key ranges are ordered (max(a) < min(b)).
func merge[V any](a, b *node[V]) *node[V] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if beats(a.prio, a.k, b.prio, b.k) {
		c := *a
		c.r = merge(a.r, b)
		c.size = a.size + b.size
		return &c
	}
	c := *b
	c.l = merge(a, b.l)
	c.size = a.size + b.size
	return &c
}

// buildTreap grows a treap from a small sorted slice.
func buildTreap[V any](vec []entry[V]) *node[V] {
	var root *node[V]
	for i := range vec {
		root = insert(root, vec[i].k, vec[i].v, keyPrio(vec[i].k))
	}
	return root
}

// collapse flattens a treap that shrank to smallMax entries back into
// the sorted-slice form, keeping representation a function of content.
func collapse[V any](n *node[V]) []entry[V] {
	out := make([]entry[V], 0, n.size)
	rangeNodes(n, func(k string, v V) bool {
		out = append(out, entry[V]{k: k, v: v})
		return true
	})
	return out
}
