package pmap

// SetPrioForTesting replaces the treap priority hash and returns a
// restore function. Tests use it to force priority collisions (every
// key tied, exercising the key tie-break until the tree degenerates)
// and adversarial shapes. Maps built under different priority functions
// must not be mixed, so tests restore before leaving.
func SetPrioForTesting(f func(string) uint64) (restore func()) {
	old := keyPrio
	keyPrio = f
	return func() { keyPrio = old }
}

// Fingerprint returns a preorder walk of the internal structure — keys
// plus a shape marker per node — so tests can assert that the
// representation is canonical: the same contents produce byte-identical
// fingerprints regardless of the operation order that built the map.
func (m Map[V]) Fingerprint() string {
	if m.root == nil {
		out := "vec:"
		for i := range m.vec {
			out += m.vec[i].k + ","
		}
		return out
	}
	return "treap:" + fingerprint(m.root)
}

func fingerprint[V any](n *node[V]) string {
	if n == nil {
		return "."
	}
	return "(" + n.k + " " + fingerprint(n.l) + " " + fingerprint(n.r) + ")"
}

// depth returns the height of the treap (0 for slice form), for the
// balance sanity test.
func (m Map[V]) Depth() int {
	var d func(*node[V]) int
	d = func(n *node[V]) int {
		if n == nil {
			return 0
		}
		dl, dr := d(n.l), d(n.r)
		if dr > dl {
			dl = dr
		}
		return dl + 1
	}
	return d(m.root)
}
