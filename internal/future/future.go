// Package future monitors formulas of the *future* temporal logic — the
// extension Section 11 of the paper names as future work, referring back
// to the authors' companion report on future operators (Until, Nexttime)
// [Sistla & Wolfson 93]. Formulas are interpreted over finite traces: an
// Until whose witness has not arrived when the trace ends is false, and
// Nexttime is strong (false at the final state).
//
// The monitor uses formula progression: for every state index i it keeps
// an obligation — the remainder formula that the suffix starting after the
// current instant must satisfy for the original formula to hold at i. Each
// new system state rewrites every open obligation:
//
//	prog(r until s)  =  prog(s)  or  (prog(r) and (r until s))
//	prog(nexttime f) =  f
//
// with atoms evaluated against the arriving state, so each obligation does
// O(|formula|) work per state and verdicts are emitted the instant they
// are determined. Bounded operators anchor their deadline at the
// obligation's activation instant, exactly like the paper's time-anchored
// past bounds, and expire to a verdict once the deadline passes.
//
// The paper's footnote 3 observes that the BUY-STOCK temporal action "can
// be specified in future temporal logic"; the package tests reproduce that
// specification.
package future

import (
	"fmt"

	"ptlactive/internal/history"
	"ptlactive/internal/naive"
	"ptlactive/internal/ptl"
	"ptlactive/internal/query"
	"ptlactive/internal/value"
)

// Result is one resolved verdict: the formula holds (or not) at the trace
// index Index.
type Result struct {
	// Index is the 0-based state index the verdict is for.
	Index int
	// Time is that state's timestamp.
	Time int64
	// Holds is the verdict.
	Holds bool
}

// obligation tracks one start instant's remainder formula.
type obligation struct {
	index int
	ts    int64
	f     ptl.Formula
}

// Monitor incrementally decides a future formula at every trace index.
type Monitor struct {
	reg  *query.Registry
	log  ptl.ExecLog
	norm ptl.Formula

	open []obligation
	seen int
}

// NewMonitor compiles a closed future formula for monitoring. Past
// operators and aggregates are rejected (combining past and future in one
// incremental algorithm is exactly the open problem the paper leaves);
// a nil log means the executed predicate sees no executions.
func NewMonitor(f ptl.Formula, reg *query.Registry, log ptl.ExecLog) (*Monitor, error) {
	if log == nil {
		log = ptl.NoExecutions{}
	}
	if fv := ptl.FreeVars(f); len(fv) != 0 {
		return nil, fmt.Errorf("future: formula has free variables %v; future monitoring supports closed formulas", fv)
	}
	var bad error
	ptl.Walk(f, func(g ptl.Formula) {
		switch g.(type) {
		case *ptl.Since, *ptl.Lasttime, *ptl.Previously, *ptl.Throughout:
			bad = fmt.Errorf("future: past operator %T: combining past and future operators is the paper's open problem; monitor the parts separately", g)
		}
	})
	if bad != nil {
		return nil, bad
	}
	ptl.WalkTerms(f, func(t ptl.Term) {
		if _, ok := t.(*ptl.Agg); ok && bad == nil {
			bad = fmt.Errorf("future: temporal aggregates are past-directed; evaluate them with the past engine")
		}
	})
	if bad != nil {
		return nil, bad
	}
	// Validate queries and desugar eventually/always into until.
	norm := ptl.Desugar(ptl.RenameApart(f))
	var cerr error
	ptl.WalkTerms(norm, func(t ptl.Term) {
		if c, ok := t.(*ptl.Call); ok && cerr == nil {
			arity, known := reg.Arity(c.Fn)
			if !known {
				cerr = fmt.Errorf("future: unknown query function %q", c.Fn)
			} else if arity >= 0 && len(c.Args) != arity {
				cerr = fmt.Errorf("future: query %s expects %d arguments, got %d", c.Fn, arity, len(c.Args))
			}
		}
	})
	if cerr != nil {
		return nil, cerr
	}
	return &Monitor{reg: reg, log: log, norm: norm}, nil
}

// Compile parses and compiles a future condition.
func Compile(src string, reg *query.Registry, log ptl.ExecLog) (*Monitor, error) {
	f, err := ptl.Parse(src)
	if err != nil {
		return nil, err
	}
	return NewMonitor(f, reg, log)
}

// Pending returns the number of trace indices whose verdict is still
// open.
func (m *Monitor) Pending() int { return len(m.open) }

// Step feeds the next system state. It opens an obligation for the new
// index, progresses every open obligation through the state, and returns
// the verdicts resolved by it (in increasing index order).
func (m *Monitor) Step(st history.SystemState) ([]Result, error) {
	m.open = append(m.open, obligation{index: m.seen, ts: st.TS, f: m.norm})
	m.seen++
	var out []Result
	kept := m.open[:0]
	for _, ob := range m.open {
		g, err := m.progress(ob.f, st)
		if err != nil {
			return nil, err
		}
		switch v := g.(type) {
		case *ptl.BoolConst:
			out = append(out, Result{Index: ob.index, Time: ob.ts, Holds: v.V})
		default:
			ob.f = g
			kept = append(kept, ob)
		}
	}
	m.open = kept
	return out, nil
}

// Finish ends the trace: every remaining obligation is resolved under the
// empty suffix (pending until and nexttime become false). The monitor can
// not be stepped afterwards.
func (m *Monitor) Finish() []Result {
	var out []Result
	for _, ob := range m.open {
		out = append(out, Result{Index: ob.index, Time: ob.ts, Holds: atEnd(ob.f)})
	}
	m.open = nil
	return out
}

// RunTrace monitors a complete history and returns the verdict for every
// index.
func (m *Monitor) RunTrace(h *history.History) (map[int]bool, error) {
	verdicts := map[int]bool{}
	for i := 0; i < h.Len(); i++ {
		rs, err := m.Step(h.At(i))
		if err != nil {
			return nil, err
		}
		for _, r := range rs {
			verdicts[r.Index] = r.Holds
		}
	}
	for _, r := range m.Finish() {
		verdicts[r.Index] = r.Holds
	}
	return verdicts, nil
}

// progress rewrites the remainder through one state.
func (m *Monitor) progress(f ptl.Formula, st history.SystemState) (ptl.Formula, error) {
	switch x := f.(type) {
	case *ptl.BoolConst:
		return x, nil
	case *ptl.Cmp, *ptl.EventAtom, *ptl.Member, *ptl.Executed:
		ok, err := m.evalAtom(f, st)
		if err != nil {
			return nil, err
		}
		return boolF(ok), nil
	case *ptl.Not:
		g, err := m.progress(x.F, st)
		if err != nil {
			return nil, err
		}
		return notF(g), nil
	case *ptl.And:
		l, err := m.progress(x.L, st)
		if err != nil {
			return nil, err
		}
		r, err := m.progress(x.R, st)
		if err != nil {
			return nil, err
		}
		return andF(l, r), nil
	case *ptl.Or:
		l, err := m.progress(x.L, st)
		if err != nil {
			return nil, err
		}
		r, err := m.progress(x.R, st)
		if err != nil {
			return nil, err
		}
		return orF(l, r), nil
	case *ptl.Until:
		u := x
		if x.Bound >= 0 {
			// Activation: anchor the deadline at this instant by folding
			// it into the witness formula, then progress unbounded.
			deadline := st.TS + x.Bound
			u = &ptl.Until{
				L:     x.L,
				R:     &ptl.And{L: x.R, R: ptl.Compare(value.LE, ptl.Time(), ptl.CInt(deadline))},
				Bound: ptl.Unbounded,
			}
		}
		r, err := m.progress(u.R, st)
		if err != nil {
			return nil, err
		}
		l, err := m.progress(u.L, st)
		if err != nil {
			return nil, err
		}
		// Time-bound expiry (the future-logic analogue of the paper's
		// Section-5 optimization): once the anchored deadline has passed,
		// the until disjunct can never be satisfied again and folds away,
		// keeping obligations for bounded formulas from outliving their
		// windows.
		if deadlineExpired(u.R, st.TS) {
			return r, nil
		}
		return orF(r, andF(l, u)), nil
	case *ptl.Nexttime:
		// Strong next: the remainder must also assert that a next state
		// exists, or a vacuously-true F (e.g. an always) would wrongly
		// hold at the final state. `true until true` is that marker: it
		// progresses to true through any state and resolves to false at
		// the end of the trace.
		exists := &ptl.Until{L: ptl.TTrue, R: ptl.TTrue, Bound: ptl.Unbounded}
		return andF(x.F, exists), nil
	case *ptl.Assign:
		// Bind the variable to the query's value at this instant; the
		// remainder carries the constant.
		h := history.New()
		h.AppendUnchecked(st)
		nv := naive.New(m.reg, h, m.log)
		v, err := nv.Term(0, x.Q, nil)
		if err != nil {
			return nil, err
		}
		body := ptl.Substitute(x.Body, map[string]ptl.Term{x.Var: ptl.C(v)})
		return m.progress(body, st)
	default:
		return nil, fmt.Errorf("future: unsupported formula %T in progression", f)
	}
}

// evalAtom evaluates a non-temporal atom against one state.
func (m *Monitor) evalAtom(f ptl.Formula, st history.SystemState) (bool, error) {
	h := history.New()
	h.AppendUnchecked(st)
	nv := naive.New(m.reg, h, m.log)
	return nv.Sat(0, f, nil)
}

// deadlineExpired reports whether the witness formula carries an anchored
// deadline conjunct `time <= c` that the nondecreasing clock has passed.
func deadlineExpired(r ptl.Formula, now int64) bool {
	and, ok := r.(*ptl.And)
	if !ok {
		return false
	}
	cmp, ok := and.R.(*ptl.Cmp)
	if !ok || cmp.Op != value.LE {
		return false
	}
	call, ok := cmp.L.(*ptl.Call)
	if !ok || call.Fn != "time" || len(call.Args) != 0 {
		return false
	}
	c, ok := cmp.R.(*ptl.Const)
	if !ok || !c.V.IsNumeric() {
		return false
	}
	return float64(now) > c.V.AsFloat()
}

// atEnd resolves a remainder under the empty suffix.
func atEnd(f ptl.Formula) bool {
	switch x := f.(type) {
	case *ptl.BoolConst:
		return x.V
	case *ptl.Not:
		return !atEnd(x.F)
	case *ptl.And:
		return atEnd(x.L) && atEnd(x.R)
	case *ptl.Or:
		return atEnd(x.L) || atEnd(x.R)
	case *ptl.Until, *ptl.Nexttime:
		return false
	default:
		// Atoms cannot survive progression; treat defensively as false.
		return false
	}
}

// boolF, notF, andF, orF are folding constructors over ptl formulas.
func boolF(b bool) ptl.Formula {
	if b {
		return ptl.TTrue
	}
	return ptl.TFalse
}

func notF(f ptl.Formula) ptl.Formula {
	switch x := f.(type) {
	case *ptl.BoolConst:
		return boolF(!x.V)
	case *ptl.Not:
		return x.F
	default:
		return &ptl.Not{F: f}
	}
}

func andF(l, r ptl.Formula) ptl.Formula {
	if b, ok := l.(*ptl.BoolConst); ok {
		if b.V {
			return r
		}
		return ptl.TFalse
	}
	if b, ok := r.(*ptl.BoolConst); ok {
		if b.V {
			return l
		}
		return ptl.TFalse
	}
	return &ptl.And{L: l, R: r}
}

func orF(l, r ptl.Formula) ptl.Formula {
	if b, ok := l.(*ptl.BoolConst); ok {
		if b.V {
			return ptl.TTrue
		}
		return r
	}
	if b, ok := r.(*ptl.BoolConst); ok {
		if b.V {
			return ptl.TTrue
		}
		return l
	}
	return &ptl.Or{L: l, R: r}
}
