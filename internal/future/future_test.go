package future

import (
	"math/rand"
	"testing"

	"ptlactive/internal/event"
	"ptlactive/internal/history"
	"ptlactive/internal/naive"
	"ptlactive/internal/ptl"
	"ptlactive/internal/ptlgen"
	"ptlactive/internal/query"
	"ptlactive/internal/value"
)

func mustParse(t *testing.T, src string) ptl.Formula {
	t.Helper()
	f, err := ptl.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return f
}

// histA builds a history where item a takes the given values at times
// 0,1,2,... via commits, with optional events per index.
func histA(t *testing.T, vals []int64, events map[int][]event.Event) *history.History {
	t.Helper()
	db := history.EmptyDB().With("a", value.NewInt(vals[0]))
	b := history.NewBuilder(db, 0)
	for i, v := range vals[1:] {
		var extra []event.Event
		if events != nil {
			extra = events[i+1]
		}
		if err := b.Commit(int64(i+1), int64(i+1), map[string]value.Value{"a": value.NewInt(v)}, extra...); err != nil {
			t.Fatal(err)
		}
	}
	return b.History()
}

func TestBasicFutureOperators(t *testing.T) {
	h := histA(t, []int64{1, 5, 2, 7}, nil)
	reg := query.NewRegistry()
	type tc struct {
		src  string
		want []bool
	}
	cases := []tc{
		{`nexttime (item("a") = 5)`, []bool{true, false, false, false}},
		{`eventually (item("a") = 7)`, []bool{true, true, true, true}},
		{`eventually (item("a") = 9)`, []bool{false, false, false, false}},
		{`always (item("a") > 0)`, []bool{true, true, true, true}},
		{`always (item("a") > 1)`, []bool{false, true, true, true}},
		{`(item("a") < 6) until (item("a") = 7)`, []bool{true, true, true, true}},
		{`(item("a") < 5) until (item("a") = 7)`, []bool{false, false, true, true}},
		// Bounded: witness must arrive within 1 time unit.
		{`eventually <= 1 (item("a") = 2)`, []bool{false, true, true, false}},
		{`always <= 1 (item("a") > 1)`, []bool{false, true, true, true}},
	}
	for _, c := range cases {
		m, err := Compile(c.src, reg, nil)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		got, err := m.RunTrace(h)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		for i, want := range c.want {
			if got[i] != want {
				t.Errorf("%q at %d = %t, want %t", c.src, i, got[i], want)
			}
		}
		if m.Pending() != 0 {
			t.Errorf("%q: %d obligations left after Finish", c.src, m.Pending())
		}
	}
}

// TestProgressionMatchesNaive: the progression monitor agrees with the
// finite-trace semantics of the naive evaluator on random future formulas.
func TestProgressionMatchesNaive(t *testing.T) {
	reg := ptlgen.Registry()
	iters := 250
	if testing.Short() {
		iters = 50
	}
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(30000 + seed)))
		f := genFuture(rng, 1+rng.Intn(4))
		h := ptlgen.History(rng, 12)
		m, err := NewMonitor(f, reg, nil)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, f)
		}
		got, err := m.RunTrace(h)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, f)
		}
		nv := naive.New(reg, h, nil)
		for i := 0; i < h.Len(); i++ {
			want, err := nv.Sat(i, f, nil)
			if err != nil {
				t.Fatalf("seed %d: naive: %v\n%s", seed, err, f)
			}
			if got[i] != want {
				t.Fatalf("seed %d index %d: progression=%t naive=%t\nformula: %s",
					seed, i, got[i], want, f)
			}
		}
	}
}

// genFuture generates a random closed future formula (atoms as in ptlgen,
// future operators only).
func genFuture(rng *rand.Rand, depth int) ptl.Formula {
	atom := func() ptl.Formula {
		switch rng.Intn(5) {
		case 0:
			return ptl.Ev("e0")
		case 1:
			return ptl.Ev("e1", ptl.CInt(int64(rng.Intn(3))))
		default:
			ops := []value.CmpOp{value.EQ, value.LT, value.GE}
			return ptl.Compare(ops[rng.Intn(len(ops))],
				ptl.Q("item", ptl.CStr(ptlgen.Items[rng.Intn(len(ptlgen.Items))])),
				ptl.CInt(int64(rng.Intn(10))))
		}
	}
	var gen func(d int) ptl.Formula
	gen = func(d int) ptl.Formula {
		if d <= 0 {
			return atom()
		}
		switch rng.Intn(8) {
		case 0:
			return &ptl.Not{F: gen(d - 1)}
		case 1:
			return &ptl.And{L: gen(d - 1), R: gen(d - 1)}
		case 2:
			return &ptl.Or{L: gen(d - 1), R: gen(d - 1)}
		case 3:
			return &ptl.Until{L: gen(d - 1), R: gen(d - 1), Bound: futBound(rng)}
		case 4:
			return &ptl.Nexttime{F: gen(d - 1)}
		case 5:
			return &ptl.Eventually{F: gen(d - 1), Bound: futBound(rng)}
		case 6:
			return &ptl.Always{F: gen(d - 1), Bound: futBound(rng)}
		default:
			return atom()
		}
	}
	return gen(depth)
}

func futBound(rng *rand.Rand) int64 {
	if rng.Intn(2) == 0 {
		return ptl.Unbounded
	}
	return int64(1 + rng.Intn(8))
}

// TestBuyStockFutureSpec reproduces the paper's footnote 3: the BUY-STOCK
// temporal action as a future-logic specification — "whenever the price
// drops below 60, it recovers above 60 within 30 units".
func TestBuyStockFutureSpec(t *testing.T) {
	reg := query.NewRegistry()
	m, err := Compile(
		`item("price") >= 60 or eventually <= 30 (item("price") >= 60)`, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	db := history.EmptyDB().With("price", value.NewFloat(100))
	b := history.NewBuilder(db, 0)
	prices := map[int64]float64{10: 55, 20: 58, 35: 70, 90: 50}
	ts := []int64{10, 20, 35, 90}
	for i, tp := range ts {
		if err := b.Commit(tp, int64(i+1), map[string]value.Value{"price": value.NewFloat(prices[tp])}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.RunTrace(b.History())
	if err != nil {
		t.Fatal(err)
	}
	// index 0 (t=0, 100): holds. index 1 (t=10, 55): recovers at t=35
	// within 30 -> holds. index 2 (t=20, 58): recovers at 35 -> holds.
	// index 3 (t=35, 70): holds. index 4 (t=90, 50): never recovers.
	want := []bool{true, true, true, true, false}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("index %d = %t, want %t", i, got[i], w)
		}
	}
}

func TestMonitorRejections(t *testing.T) {
	reg := query.NewRegistry()
	bad := map[string]string{
		`previously @a`:                   "past operator",
		`@a since @b`:                     "past operator",
		`eventually @e(X)`:                "free variables",
		`sum(1; true; true) > 0`:          "aggregates",
		`eventually (nosuch() > 0)`:       "unknown query",
		`eventually (item("a", "b") > 0)`: "expects 1 arguments",
	}
	for src, wantSub := range bad {
		_, err := Compile(src, reg, nil)
		if err == nil {
			t.Errorf("Compile(%q) should fail", src)
			continue
		}
		if !contains(err.Error(), wantSub) {
			t.Errorf("Compile(%q) error %q missing %q", src, err, wantSub)
		}
	}
	if _, err := Compile(`until until`, reg, nil); err == nil {
		t.Error("syntax error should propagate")
	}
}

func contains(s, sub string) bool {
	return len(sub) == 0 || (len(s) >= len(sub) && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestVerdictTiming: verdicts arrive the instant they are determined, not
// at the end of the trace.
func TestVerdictTiming(t *testing.T) {
	reg := query.NewRegistry()
	m, err := Compile(`eventually (item("a") = 3)`, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := histA(t, []int64{1, 2, 3, 4}, nil)
	var timeline [][]Result
	for i := 0; i < h.Len(); i++ {
		rs, err := m.Step(h.At(i))
		if err != nil {
			t.Fatal(err)
		}
		timeline = append(timeline, rs)
	}
	// At index 2 (a=3) every pending obligation (0,1,2) resolves true.
	if len(timeline[2]) != 3 {
		t.Fatalf("verdicts at step 2 = %v", timeline[2])
	}
	for _, r := range timeline[2] {
		if !r.Holds {
			t.Fatalf("verdict %v should hold", r)
		}
	}
	// Index 3 stays pending (a never again 3) until Finish.
	if len(timeline[3]) != 0 {
		t.Fatalf("verdicts at step 3 = %v", timeline[3])
	}
	fin := m.Finish()
	if len(fin) != 1 || fin[0].Index != 3 || fin[0].Holds {
		t.Fatalf("Finish = %v", fin)
	}
}

// TestAssignmentInFuture: assignments bind at the obligation's instant —
// "the price eventually doubles from its value now".
func TestAssignmentInFuture(t *testing.T) {
	reg := query.NewRegistry()
	m, err := Compile(`[x <- item("a")] eventually (item("a") >= 2 * x)`, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := histA(t, []int64{10, 15, 18, 25}, nil)
	got, err := m.RunTrace(h)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, false, false} // 25 >= 2*10 only
	for i, w := range want {
		if got[i] != w {
			t.Errorf("index %d = %t, want %t", i, got[i], w)
		}
	}
}

// TestBoundedObligationsExpire: obligations of bounded formulas resolve
// within their window instead of surviving to the end of the trace.
func TestBoundedObligationsExpire(t *testing.T) {
	reg := query.NewRegistry()
	m, err := Compile(`eventually <= 5 (item("a") = 999)`, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, 200)
	h := histA(t, vals, nil)
	pendingPeak := 0
	for i := 0; i < h.Len(); i++ {
		if _, err := m.Step(h.At(i)); err != nil {
			t.Fatal(err)
		}
		if p := m.Pending(); p > pendingPeak {
			pendingPeak = p
		}
	}
	// The window is 5 time units = 6 states on this unit-spaced trace; a
	// small constant, not the trace length.
	if pendingPeak > 8 {
		t.Fatalf("pending obligations peaked at %d; bounded windows should expire", pendingPeak)
	}
	// All 200 obligations already resolved false before Finish... except
	// those whose window is still open.
	if got := len(m.Finish()); got > 8 {
		t.Fatalf("%d obligations survived to Finish", got)
	}
}
