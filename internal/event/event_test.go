package event

import (
	"reflect"
	"testing"

	"ptlactive/internal/value"
)

func TestEventStringAndKey(t *testing.T) {
	e := New("transaction_begin", value.NewInt(30))
	if got := e.String(); got != "transaction_begin(30)" {
		t.Errorf("String() = %q", got)
	}
	if New("tick").String() != "tick" {
		t.Error("zero-arg event string")
	}
	a := New("login", value.NewString("x"), value.NewInt(1))
	b := New("login", value.NewString("x"), value.NewInt(1))
	c := New("login", value.NewString("x"), value.NewInt(2))
	if a.Key() != b.Key() || a.Key() == c.Key() {
		t.Error("key identity wrong")
	}
}

func TestEventEqual(t *testing.T) {
	a := New("e", value.NewInt(1))
	if !a.Equal(New("e", value.NewFloat(1))) {
		t.Error("numerically equal args should be equal")
	}
	if a.Equal(New("e")) || a.Equal(New("f", value.NewInt(1))) || a.Equal(New("e", value.NewInt(2))) {
		t.Error("distinct events reported equal")
	}
}

func TestSetDeduplication(t *testing.T) {
	s := NewSet(New("a"), New("a"), New("b", value.NewInt(1)))
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if s.Add(New("a")) {
		t.Error("duplicate Add should report false")
	}
	if !s.Add(New("c")) {
		t.Error("fresh Add should report true")
	}
	if !s.Contains(New("b", value.NewInt(1))) {
		t.Error("Contains miss")
	}
	if s.Contains(New("b", value.NewInt(2))) {
		t.Error("Contains false positive")
	}
}

func TestSetZeroValueAdd(t *testing.T) {
	var s Set
	if !s.Add(New("x")) || s.Len() != 1 {
		t.Error("Add on zero-value Set should work")
	}
}

func TestSetByNameAndNames(t *testing.T) {
	s := NewSet(
		New("update", value.NewString("ibm")),
		New("commit"),
		New("update", value.NewString("dj")),
	)
	ups := s.ByName("update")
	if len(ups) != 2 {
		t.Fatalf("ByName = %d events, want 2", len(ups))
	}
	if got := s.Names(); !reflect.DeepEqual(got, []string{"commit", "update"}) {
		t.Errorf("Names() = %v", got)
	}
}

func TestSetNilSafety(t *testing.T) {
	var s *Set
	if s.Len() != 0 || s.Events() != nil || s.Contains(New("a")) || s.ByName("a") != nil || s.Names() != nil {
		t.Error("nil Set accessors should be safe zeros")
	}
	if s.Clone().Len() != 0 {
		t.Error("nil Clone should produce empty set")
	}
}

func TestCommitCount(t *testing.T) {
	s := NewSet(New(TransactionCommit, value.NewInt(1)), New("x"))
	if s.CommitCount() != 1 {
		t.Errorf("CommitCount = %d", s.CommitCount())
	}
	s2 := NewSet(New(TransactionCommit, value.NewInt(1)), New(TransactionCommit, value.NewInt(2)))
	if s2.CommitCount() != 2 {
		t.Errorf("CommitCount = %d, want 2", s2.CommitCount())
	}
}

func TestSetCloneIndependence(t *testing.T) {
	s := NewSet(New("a"))
	c := s.Clone()
	c.Add(New("b"))
	if s.Len() != 1 || c.Len() != 2 {
		t.Error("Clone is not independent")
	}
}

func TestSetString(t *testing.T) {
	if NewSet().String() != "{}" {
		t.Error("empty set string")
	}
	s := NewSet(New("a"), New("b", value.NewInt(1)))
	if got := s.String(); got != "{a, b(1)}" {
		t.Errorf("String() = %q", got)
	}
}
