// Package event defines the parameterized events of the system model
// (Section 2 of the paper). Events are instantaneous; several events may
// occur at the same instant, in which case they form the event set of a
// single system state.
package event

import (
	"sort"
	"strings"

	"ptlactive/internal/value"
)

// Standard event symbol names used by the execution model. User code can
// define any further symbols; these are the ones the engine itself emits.
const (
	TransactionBegin  = "transaction_begin"  // args: (txn id)
	TransactionCommit = "transaction_commit" // args: (txn id)
	TransactionAbort  = "transaction_abort"  // args: (txn id)
	AttemptsToCommit  = "attempts_to_commit" // args: (txn id)
	RuleExecute       = "rule_execute"       // args: (rule name, params...)
	InsertTuple       = "insert_tuple"       // args: (item name)
	DeleteTuple       = "delete_tuple"       // args: (item name)
	UpdateItem        = "update_item"        // args: (item name)
)

// Event is an occurrence of a parameterized event symbol, e.g.
// transaction_begin(30) or user_logs_in("alice").
type Event struct {
	// Name is the event symbol.
	Name string
	// Args are the actual parameter values.
	Args []value.Value
}

// New constructs an event.
func New(name string, args ...value.Value) Event {
	return Event{Name: name, Args: args}
}

// String renders the event as name(arg, ...).
func (e Event) String() string {
	if len(e.Args) == 0 {
		return e.Name
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Key returns a canonical identity key for deduplication.
func (e Event) Key() string {
	var sb strings.Builder
	sb.WriteString(e.Name)
	sb.WriteByte('(')
	for _, a := range e.Args {
		sb.WriteString(a.Key())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Equal reports whether two events are the same occurrence pattern: same
// symbol and pairwise equal arguments.
func (e Event) Equal(o Event) bool {
	if e.Name != o.Name || len(e.Args) != len(o.Args) {
		return false
	}
	for i := range e.Args {
		if !e.Args[i].Equal(o.Args[i]) {
			return false
		}
	}
	return true
}

// Set is the event set E of a system state: the events that occur at one
// instant. A Set never contains duplicate occurrences.
type Set struct {
	events []Event
	// keys dedups large sets; small sets (the common case — a commit
	// carries a handful of system events) stay map-free and dedup by a
	// linear Equal scan, which allocates nothing.
	keys map[string]struct{}
	// names caches Names(); Add invalidates it.
	names []string
}

// setMapThreshold is the set size at which dedup switches from linear
// scanning to the keys map.
const setMapThreshold = 8

// NewSet builds a set from the given events, dropping duplicates.
func NewSet(events ...Event) *Set {
	s := &Set{}
	for _, e := range events {
		s.Add(e)
	}
	return s
}

// NewSetOwned builds a set taking ownership of the slice: events are
// deduplicated in place and the backing array becomes the set's storage,
// so a caller that assembled an exactly-sized slice pays no copy. The
// slice must not be used after the call.
func NewSetOwned(events []Event) *Set {
	s := &Set{events: events[:0]}
	for _, e := range events {
		s.Add(e)
	}
	return s
}

// Add inserts an event unless an equal occurrence is already present.
// It reports whether the event was inserted.
func (s *Set) Add(e Event) bool {
	if s.keys == nil {
		if len(s.events) < setMapThreshold {
			for _, have := range s.events {
				if have.Equal(e) {
					return false
				}
			}
			s.events = append(s.events, e)
			s.names = nil
			return true
		}
		// Crossing the threshold: index everything so far.
		s.keys = make(map[string]struct{}, 2*len(s.events))
		for _, have := range s.events {
			s.keys[have.Key()] = struct{}{}
		}
	}
	k := e.Key()
	if _, dup := s.keys[k]; dup {
		return false
	}
	s.keys[k] = struct{}{}
	s.events = append(s.events, e)
	s.names = nil
	return true
}

// Len returns the number of events in the set.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.events)
}

// Events returns the events in insertion order. The result must not be
// mutated.
func (s *Set) Events() []Event {
	if s == nil {
		return nil
	}
	return s.events
}

// Contains reports whether an equal occurrence is in the set.
func (s *Set) Contains(e Event) bool {
	if s == nil {
		return false
	}
	if s.keys == nil {
		for _, have := range s.events {
			if have.Equal(e) {
				return true
			}
		}
		return false
	}
	_, ok := s.keys[e.Key()]
	return ok
}

// ByName returns all occurrences of the given symbol.
func (s *Set) ByName(name string) []Event {
	if s == nil {
		return nil
	}
	var out []Event
	for _, e := range s.events {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// Names returns the sorted set of distinct symbols occurring in s. The
// execution model's relevance filter (Section 8) keys on these per sweep,
// so the result is memoized until the next Add. The result must not be
// mutated.
func (s *Set) Names() []string {
	if s == nil {
		return nil
	}
	if s.names != nil || len(s.events) == 0 {
		return s.names
	}
	names := make([]string, 0, len(s.events))
	for _, e := range s.events {
		dup := false
		for _, n := range names {
			if n == e.Name {
				dup = true
				break
			}
		}
		if !dup {
			names = append(names, e.Name)
		}
	}
	sort.Strings(names)
	s.names = names
	return names
}

// CommitCount returns the number of transaction_commit events in the set.
// The system model requires at most one per state (Section 2); History
// enforces it using this.
func (s *Set) CommitCount() int {
	return len(s.ByName(TransactionCommit))
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	if s == nil {
		return NewSet()
	}
	return NewSet(s.events...)
}

// String renders the set as {e1, e2, ...} in insertion order.
func (s *Set) String() string {
	if s.Len() == 0 {
		return "{}"
	}
	parts := make([]string, len(s.events))
	for i, e := range s.events {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
