package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"ptlactive/internal/core"
	"ptlactive/internal/history"
	"ptlactive/internal/naive"
	"ptlactive/internal/ptl"
	"ptlactive/internal/ptlgen"
	"ptlactive/internal/query"
	"ptlactive/internal/workload"
)

// doubledFormula is the paper's running example over the workload's IBM
// item.
const doubledFormula = `[t <- time] [x <- item("px_IBM")]
    previously (item("px_IBM") <= 0.5 * x and time >= t - 10)`

func mustFormula(src string) ptl.Formula {
	f, err := ptl.Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

// stockRegistry returns the registry the stock experiments use (items are
// read via the built-in item query, so nothing extra is needed).
func stockRegistry() *query.Registry { return query.NewRegistry() }

// RunIncremental steps the given condition over every state of h and
// returns the number of satisfied states; it is the E1/E4 measurement
// kernel, also wrapped by the root benchmarks.
func RunIncremental(f ptl.Formula, reg *query.Registry, h *history.History) (int, error) {
	ev, err := core.Compile(f, reg, nil)
	if err != nil {
		return 0, err
	}
	fired := 0
	for i := 0; i < h.Len(); i++ {
		res, err := ev.Step(h.At(i))
		if err != nil {
			return 0, err
		}
		if res.Fired {
			fired++
		}
	}
	return fired, nil
}

// RunNaive evaluates the condition from scratch at every state (the
// whole-history baseline).
func RunNaive(f ptl.Formula, reg *query.Registry, h *history.History) (int, error) {
	nv := naive.New(reg, h, nil)
	fired := 0
	for i := 0; i < h.Len(); i++ {
		ok, err := nv.Sat(i, f, nil)
		if err != nil {
			return 0, err
		}
		if ok {
			fired++
		}
	}
	return fired, nil
}

// E1IncrementalVsNaive measures per-update evaluation cost of the
// incremental algorithm against the naive whole-history re-evaluation, as
// history length grows (the paper's central efficiency claim).
func E1IncrementalVsNaive(quick bool) Table {
	sizes := []int{100, 500, 2000, 8000}
	naiveCap := 2000
	if quick {
		sizes = []int{100, 500}
		naiveCap = 500
	}
	f := mustFormula(doubledFormula)
	reg := stockRegistry()
	t := Table{
		ID:     "E1",
		Title:  "incremental vs naive evaluation of the IBM-doubled trigger",
		Header: []string{"updates", "inc total ms", "inc us/update", "naive total ms", "naive us/update", "speedup"},
		Notes: "incremental per-update cost stays flat as the history grows; " +
			"naive cost grows with history length (quadratic total). Shape per Section 5.",
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(1))
		h := workload.Stocks(rng, workload.DefaultStockConfig(), n)
		start := time.Now()
		incFired, err := RunIncremental(f, reg, h)
		if err != nil {
			panic(err)
		}
		incDur := time.Since(start)
		row := []string{
			fmt.Sprint(n), fmtMs(incDur), fmtDur(incDur, h.Len()),
		}
		if n <= naiveCap {
			start = time.Now()
			nvFired, err := RunNaive(f, reg, h)
			if err != nil {
				panic(err)
			}
			nvDur := time.Since(start)
			if nvFired != incFired {
				panic(fmt.Sprintf("E1: firing mismatch: inc=%d naive=%d", incFired, nvFired))
			}
			row = append(row, fmtMs(nvDur), fmtDur(nvDur, h.Len()),
				fmt.Sprintf("%.1fx", float64(nvDur)/float64(incDur)))
		} else {
			row = append(row, "-", "-", "-")
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// BoundedStateRun drives a bounded condition over n stock updates and
// returns the peak evaluator state size; optimize toggles the time-bound
// optimization (the E2 kernel).
func BoundedStateRun(n int, bound int64, optimize bool) (peak int, err error) {
	f := mustFormula(fmt.Sprintf(
		`[x <- item("px_IBM")] previously <= %d (item("px_IBM") <= 0.5 * x)`, bound))
	reg := stockRegistry()
	var opts []core.Option
	if !optimize {
		opts = append(opts, core.WithoutTimeBoundOptimization())
	}
	ev, err := core.Compile(f, reg, nil, opts...)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(2))
	h := workload.Stocks(rng, workload.DefaultStockConfig(), n)
	for i := 0; i < h.Len(); i++ {
		if _, err := ev.Step(h.At(i)); err != nil {
			return 0, err
		}
		if s := ev.StateSize(); s > peak {
			peak = s
		}
	}
	return peak, nil
}

// E2BoundedState measures retained evaluator state for a bounded operator
// with and without the Section-5 time-bound optimization.
func E2BoundedState(quick bool) Table {
	sizes := []int{500, 2000, 8000}
	if quick {
		sizes = []int{200, 800}
	}
	t := Table{
		ID:     "E2",
		Title:  "time-bound optimization: peak constraint-graph nodes, bounded trigger (previously <= 50)",
		Header: []string{"updates", "peak nodes (optimized)", "peak nodes (no optimization)", "ratio"},
		Notes: "with the optimization, state stays bounded by the 50-unit window regardless of " +
			"history length; without it, dead clauses accumulate linearly. Shape per Section 5's optimization.",
	}
	for _, n := range sizes {
		opt, err := BoundedStateRun(n, 50, true)
		if err != nil {
			panic(err)
		}
		noopt, err := BoundedStateRun(n, 50, false)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(opt), fmt.Sprint(noopt),
			fmt.Sprintf("%.1fx", float64(noopt)/float64(opt)),
		})
	}
	return t
}

// E3AggregateMaintenance compares three ways to evaluate the running-sum
// trigger sum(price; start; update_stocks) > K: the direct incremental
// aggregate (internal/core), the Section-6.1.1 rule rewriting
// (internal/agg inside the engine), and naive recomputation over the
// history.
func E3AggregateMaintenance(quick bool) Table {
	sizes := []int{200, 1000, 4000}
	naiveCap := 1000
	if quick {
		sizes = []int{100, 400}
		naiveCap = 400
	}
	t := Table{
		ID:     "E3",
		Title:  "temporal aggregate maintenance: running sum over price updates",
		Header: []string{"updates", "direct us/update", "rewriting us/update", "naive us/update"},
		Notes: "both the direct incremental aggregate and the paper's rule rewriting cost O(1) " +
			"per update; naive recomputation grows with the number of samples. The rewriting " +
			"pays a constant factor for its maintenance transactions. Shape per Section 6.1.1.",
	}
	cond := `sum(item("px_IBM"); time = 0; @update_stocks("IBM")) > 1000000`
	f := mustFormula(cond)
	reg := stockRegistry()
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(3))
		h := workload.Stocks(rng, workload.DefaultStockConfig(), n)

		start := time.Now()
		if _, err := RunIncremental(f, reg, h); err != nil {
			panic(err)
		}
		direct := time.Since(start)

		rw, rwOps := rewritingRun(n)

		row := []string{fmt.Sprint(n), fmtDur(direct, h.Len()), fmtDur(rw, rwOps)}
		if n <= naiveCap {
			start = time.Now()
			if _, err := RunNaive(f, reg, h); err != nil {
				panic(err)
			}
			row = append(row, fmtDur(time.Since(start), h.Len()))
		} else {
			row = append(row, "-")
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// E4FiringThroughput reports end-to-end evaluation throughput over random
// formulas, with the per-state firing decision included (Theorem 1's
// algorithm as a whole).
func E4FiringThroughput(quick bool) Table {
	n := 4000
	formulas := 20
	if quick {
		n = 800
		formulas = 8
	}
	t := Table{
		ID:     "E4",
		Title:  "firing throughput across random closed formulas (Theorem-1 algorithm end to end)",
		Header: []string{"formula depth", "formulas", "states", "states/sec", "us/state"},
		Notes:  "cost grows with formula size, not history length; agreement with the naive semantics is property-tested in internal/core.",
	}
	reg := ptlgen.Registry()
	for _, depth := range []int{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(4))
		var evs []*core.Evaluator
		for len(evs) < formulas {
			f := ptlgen.Formula(rng, depth)
			ev, err := core.Compile(f, reg, nil)
			if err != nil {
				continue
			}
			evs = append(evs, ev)
		}
		h := ptlgen.History(rng, n)
		start := time.Now()
		steps := 0
		for i := 0; i < h.Len(); i++ {
			for _, ev := range evs {
				if _, err := ev.Step(h.At(i)); err != nil {
					panic(err)
				}
				steps++
			}
		}
		dur := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(depth), fmt.Sprint(formulas), fmt.Sprint(h.Len()),
			fmt.Sprintf("%.0f", float64(steps)/dur.Seconds()),
			fmtDur(dur, steps),
		})
	}
	return t
}

// quickHistory builds a small stock history for kernel cross-checks.
func quickHistory(n int) *history.History {
	return workload.Stocks(rand.New(rand.NewSource(99)), workload.DefaultStockConfig(), n)
}

// DecomposableRun evaluates a decomposable condition over n stock updates
// with either the general constraint-graph evaluator or the fast
// boolean-register path (the A1 ablation kernel).
func DecomposableRun(n int, fast bool) (fired int, err error) {
	// Decomposable: thresholds and events only, no variable crosses the
	// temporal operators.
	f := mustFormula(`(item("px_IBM") > 100) since (@update_stocks("IBM") and item("px_DJ") < 100)`)
	reg := stockRegistry()
	h := workload.Stocks(rand.New(rand.NewSource(12)), workload.DefaultStockConfig(), n)
	if fast {
		ev, err := core.CompileFast(f, reg, nil)
		if err != nil {
			return 0, err
		}
		for i := 0; i < h.Len(); i++ {
			ok, err := ev.Step(h.At(i))
			if err != nil {
				return 0, err
			}
			if ok {
				fired++
			}
		}
		return fired, nil
	}
	return RunIncremental(f, reg, h)
}

// A1DecomposableFastPath is the ablation for the constraint-graph
// machinery: on the decomposable subclass (the paper's [Deng 94]
// prototype scope) the general evaluator and the boolean fast path compute
// identical results; the ablation measures the general machinery's
// overhead.
func A1DecomposableFastPath(quick bool) Table {
	n := 20000
	if quick {
		n = 4000
	}
	t := Table{
		ID:     "A1",
		Title:  "ablation: general constraint-graph evaluator vs decomposable boolean fast path",
		Header: []string{"updates", "general us/update", "fast us/update", "overhead"},
		Notes: "on decomposable conditions every F_{g,i} folds to a constant, so the general " +
			"machinery's extra cost is pure overhead; both paths fire identically " +
			"(property-tested in internal/core).",
	}
	start := time.Now()
	gf, err := DecomposableRun(n, false)
	if err != nil {
		panic(err)
	}
	gd := time.Since(start)
	start = time.Now()
	ff, err := DecomposableRun(n, true)
	if err != nil {
		panic(err)
	}
	fd := time.Since(start)
	if gf != ff {
		panic(fmt.Sprintf("A1: firing mismatch %d vs %d", gf, ff))
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprint(n), fmtDur(gd, n+1), fmtDur(fd, n+1),
		fmt.Sprintf("%.1fx", float64(gd)/float64(fd)),
	})
	return t
}
