package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every experiment in quick mode and
// asserts the shape claims each table's Notes promise, so EXPERIMENTS.md
// can never silently drift from what the code produces.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	tables := All(true)
	if len(tables) != 18 {
		t.Fatalf("expected 18 tables (E1-E10, E7b, E12, E13, E14, E16, E17, A1, A2), got %d", len(tables))
	}
	byID := map[string]Table{}
	for _, tab := range tables {
		if len(tab.Rows) == 0 || len(tab.Header) == 0 {
			t.Errorf("%s: empty table", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Errorf("%s: ragged row %v", tab.ID, row)
			}
		}
		if tab.String() == "" || tab.Markdown() == "" {
			t.Errorf("%s: renderers broken", tab.ID)
		}
		byID[tab.ID] = tab
	}

	// E2: unoptimized state exceeds optimized at the largest sweep point.
	e2 := byID["E2"]
	last := e2.Rows[len(e2.Rows)-1]
	opt := atoi(t, last[1])
	noopt := atoi(t, last[2])
	if noopt <= opt*2 {
		t.Errorf("E2: expected unoptimized >> optimized, got %d vs %d", noopt, opt)
	}

	// E5: definite mean delay >= Delta at the largest Delta.
	e5 := byID["E5"]
	lastD := e5.Rows[len(e5.Rows)-1]
	delta := atoi(t, lastD[0])
	delay := atof(t, lastD[4])
	if delay < float64(delta) {
		t.Errorf("E5: definite delay %.1f below Delta %d", delay, delta)
	}

	// E6: collapsed divergence must be zero (Theorem 2).
	e6 := byID["E6"]
	if e6.Rows[0][2] != "0" || e6.Rows[0][3] != "true" {
		t.Errorf("E6: Theorem 2 row wrong: %v", e6.Rows[0])
	}

	// E7: DFA states double with k; PTL registers grow by one.
	e7 := byID["E7"]
	for i := 1; i < len(e7.Rows); i++ {
		prev := atoi(t, e7.Rows[i-1][3])
		cur := atoi(t, e7.Rows[i][3])
		if cur != 2*prev {
			t.Errorf("E7: min-DFA states %d -> %d, want doubling", prev, cur)
		}
		if atoi(t, e7.Rows[i][4]) != atoi(t, e7.Rows[i-1][4])+1 {
			t.Errorf("E7: registers not linear: %v", e7.Rows[i])
		}
	}

	// E8: relevant steps strictly below eager steps in every row.
	e8 := byID["E8"]
	for _, row := range e8.Rows {
		if atoi(t, row[1]) <= atoi(t, row[3]) {
			t.Errorf("E8: relevance filtering did not reduce steps: %v", row)
		}
	}

	// E9: the temporal action actually bought stock.
	e9 := byID["E9"]
	if atoi(t, e9.Rows[0][1]) == 0 {
		t.Errorf("E9: no buys recorded: %v", e9.Rows[0])
	}

	// E10: periodic snapshots bound replay — the snapshot row replays far
	// fewer records than the wal-only row, which replays the whole run.
	e10 := byID["E10"]
	walReplayed := atoi(t, e10.Rows[1][4])
	snapReplayed := atoi(t, e10.Rows[3][4])
	commits := atoi(t, e10.Rows[1][1])
	if walReplayed < commits {
		t.Errorf("E10: wal-only replayed %d records for %d commits", walReplayed, commits)
	}
	if snapReplayed*4 >= walReplayed {
		t.Errorf("E10: snapshots did not bound replay: %d vs %d", snapReplayed, walReplayed)
	}

	// E12: the read-set index must evaluate strictly fewer steps than the
	// coarse relevance filter on the sparse-touch workload.
	e12 := byID["E12"]
	idxSteps := atoi(t, e12.Rows[0][3])
	coarseSteps := atoi(t, e12.Rows[0][5])
	if idxSteps >= coarseSteps {
		t.Errorf("E12: index did not reduce steps: %d vs %d", idxSteps, coarseSteps)
	}

	// E13: every fan-out row must deliver the full firing stream to every
	// subscriber (deliveries = commits × subs).
	e13 := byID["E13"]
	for _, row := range e13.Rows {
		commits := atoi(t, row[2])
		subs := atoi(t, row[3])
		delivered := atoi(t, row[4])
		if delivered != commits*subs {
			t.Errorf("E13 %s: delivered %d of %d firings", row[0], delivered, commits*subs)
		}
	}

	// E14: every shard count runs the same workload, and the widest
	// cluster must beat the single-shard row — the shape claim is that
	// partitioning divides the per-commit constraint walk.
	e14 := byID["E14"]
	for _, row := range e14.Rows {
		if got := atoi(t, row[3]); got != atoi(t, e14.Rows[0][3]) {
			t.Errorf("E14 %s shards: commit count drifted: %d", row[0], got)
		}
	}
	oneShard := atof(t, e14.Rows[0][4])
	wide := atof(t, e14.Rows[len(e14.Rows)-1][4])
	if wide >= oneShard {
		t.Errorf("E14: %s-shard run (%vms) not faster than 1 shard (%vms)",
			e14.Rows[len(e14.Rows)-1][0], wide, oneShard)
	}

	// E16: commit cost must not scale linearly with database size. The
	// committed baseline holds the 100k rows within 2x of 1k; here the
	// bound is 10x — far above quick-mode timer noise, two orders below
	// the ~100x a return to whole-map copying would produce.
	e16 := byID["E16"]
	for _, row := range e16.Rows {
		if ratio := atof(t, row[3]); ratio > 10 {
			t.Errorf("E16 %s: %.1fx the 1k row — commit cost scaling with db size", row[0], ratio)
		}
	}

	// E17: over the 8x commit sweep, the unbounded engine's hot set
	// grows with the commit count (well past 4x first-to-last) while the
	// retained configs end near flat (early samples land before the
	// rotation plateau, so only each config's final ratio is the claim)
	// and the spill tier is nonempty by the end.
	e17 := byID["E17"]
	finals := map[string]float64{}
	for _, row := range e17.Rows {
		name := row[0][:strings.IndexByte(row[0], '@')]
		finals[name] = atof(t, row[5]) // rows are in sweep order per config
	}
	if finals["unbounded"] < 4 {
		t.Errorf("E17: unbounded final hot ratio %.2fx over an 8x commit sweep — baseline not growing", finals["unbounded"])
	}
	for _, name := range []string{"retain-drop", "retain-spill"} {
		if finals[name] > 3 {
			t.Errorf("E17 %s: final hot ratio %.2fx — retention not bounding the hot set", name, finals[name])
		}
	}
	lastSpill := e17.Rows[len(e17.Rows)-1]
	if !strings.HasPrefix(lastSpill[0], "retain-spill@") || atof(t, lastSpill[3]) == 0 {
		t.Errorf("E17: final spill row %v has an empty cold tier", lastSpill)
	}
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		t.Fatalf("atoi(%q): %v", s, err)
	}
	return n
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("atof(%q): %v", s, err)
	}
	return f
}

// TestKernelsAgree cross-checks the E1 kernels on a small input: the
// incremental and naive runners must count the same satisfied states.
func TestKernelsAgree(t *testing.T) {
	f := mustFormula(doubledFormula)
	reg := stockRegistry()
	h := quickHistory(300)
	a, err := RunIncremental(f, reg, h)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNaive(f, reg, h)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("incremental %d != naive %d", a, b)
	}
}
