package experiments

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"ptlactive/internal/adb"
	"ptlactive/internal/value"
)

// E16Config parameterizes one commit-scaling measurement: a database of
// Items items, Commits single-item transactions against it, optionally
// behind a write-ahead log.
type E16Config struct {
	Items   int
	Commits int
	Durable bool
}

// E16RunConfig builds an engine whose database holds cfg.Items items,
// registers the same small rule table as BenchmarkCommit (four triggers
// and one integrity constraint, none of which ever fire), then times
// cfg.Commits transactions each updating exactly one item, striding
// pseudo-randomly across the whole key space so the path-copied spine
// varies. Durable runs append every commit to a WAL (fsync disabled, as
// in E10: the table measures logging work, not the disk). The returned
// duration covers the commits only.
//
// This is the experiment the persistent DBState exists for: before
// structural sharing, With/WithAll copied the whole item map, so a
// 1-item commit against a 1M-item database paid one million entry
// copies; with path copying it pays O(log n) node copies and the
// µs/commit column stays near-flat as the database grows.
func E16RunConfig(cfg E16Config) time.Duration {
	items := make(map[string]value.Value, cfg.Items)
	names := make([]string, cfg.Items)
	for i := range names {
		names[i] = fmt.Sprintf("item%07d", i)
		items[names[i]] = value.NewInt(0)
	}
	engCfg := adb.Config{Initial: items}
	var eng *adb.Engine
	if cfg.Durable {
		dir, err := os.MkdirTemp("", "ptlactive-e16-*")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		engCfg.Durability = adb.DurabilityWAL
		engCfg.NoFsync = true
		if eng, err = adb.Restore(engCfg, dir); err != nil {
			panic(err)
		}
		defer eng.Close()
	} else {
		eng = adb.NewEngine(engCfg)
	}
	for i := 0; i < 4; i++ {
		watched := names[(i*cfg.Items)/4]
		if err := eng.AddTrigger(fmt.Sprintf("watch%d", i),
			fmt.Sprintf("item(%q) > 1000000000", watched), nil); err != nil {
			panic(err)
		}
	}
	if err := eng.AddConstraint("cap", fmt.Sprintf("item(%q) < 1000000000", names[0])); err != nil {
		panic(err)
	}
	commit := func(i int) {
		// Fibonacci-hash stride: deterministic, spread over the key space.
		name := names[(i*2654435761)%cfg.Items]
		if err := eng.Exec(int64(i+1), map[string]value.Value{
			name: value.NewInt(int64(i)),
		}); err != nil {
			panic(err)
		}
	}
	// Building an n-item state allocates O(n log n) transient nodes; a
	// collection plus a short untimed warmup resets the heap target so
	// the timed batches measure steady state, not the setup's GC debt.
	// Best-of-three batches keeps a concurrent GC cycle that lands inside
	// one batch (marking a 1M-item live heap takes longer than a whole
	// batch of commits) from polluting the row.
	for i := 0; i < 64; i++ {
		commit(i)
	}
	runtime.GC()
	next := 64
	best := time.Duration(0)
	for batch := 0; batch < 3; batch++ {
		start := time.Now()
		for end := next + cfg.Commits; next < end; next++ {
			commit(next)
		}
		if d := time.Since(start); batch == 0 || d < best {
			best = d
		}
	}
	return best
}

// E16CommitScaling measures per-commit latency of a 1-item transaction
// as the database grows from 1k to 1M items, in memory and behind a
// WAL. Near-flat columns are the acceptance shape: the persistent,
// structurally-shared DBState (internal/pmap) makes the commit's state
// work O(log n), where the previous copy-on-write map made it O(n).
func E16CommitScaling(quick bool) Table {
	sizes := []int{1000, 10000, 100000, 1000000}
	commits := 5000
	if quick {
		sizes = []int{1000, 10000, 100000}
		commits = 800
	}
	t := Table{
		ID:     "E16",
		Title:  "commit latency vs database size (structurally shared states)",
		Header: []string{"config", "items", "us/commit", "vs 1k"},
		Notes: "1-item commits against an n-item database, BenchmarkCommit's rule table. " +
			"Acceptance: each 100k row within 2x of its 1k row (linear copying puts it at ~100x); " +
			"durable rows add the constant WAL encode+append (no fsync), which is size-independent.",
	}
	label := func(n int) string {
		switch {
		case n >= 1000000:
			return fmt.Sprintf("%dM", n/1000000)
		default:
			return fmt.Sprintf("%dk", n/1000)
		}
	}
	base := map[bool]float64{}
	for _, durable := range []bool{false, true} {
		mode := "mem"
		if durable {
			mode = "wal"
		}
		for _, n := range sizes {
			d := E16RunConfig(E16Config{Items: n, Commits: commits, Durable: durable})
			us := float64(d.Microseconds()) / float64(commits)
			if n == sizes[0] {
				base[durable] = us
			}
			t.Rows = append(t.Rows, []string{
				label(n) + " " + mode,
				fmt.Sprint(n),
				fmt.Sprintf("%.2f", us),
				fmt.Sprintf("%.2f", us/base[durable]),
			})
		}
	}
	return t
}
