// Package experiments implements the nine reproduction experiments E1-E9
// of DESIGN.md. Each experiment returns a Table with the same rows that
// EXPERIMENTS.md records; cmd/benchtables prints them and the root
// bench_test.go wraps their kernels as Go benchmarks.
//
// The paper's evaluation is qualitative (no numbered tables or figures),
// so each experiment operationalizes one measurable claim; the expected
// shape is stated in each table's Notes.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// String renders the table as aligned text.
func (t Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Notes)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "\n%s\n", t.Notes)
	}
	return sb.String()
}

// Catalog lists every experiment with its table ID in report order, so
// callers (cmd/benchtables -only, cmd/benchcheck) can run a subset
// without paying for the rest.
var Catalog = []struct {
	ID  string
	Run func(quick bool) Table
}{
	{"E1", E1IncrementalVsNaive},
	{"E2", E2BoundedState},
	{"E3", E3AggregateMaintenance},
	{"E4", E4FiringThroughput},
	{"E5", E5ValidTime},
	{"E6", E6OnlineOffline},
	{"E7", E7StateBlowup},
	{"E7B", E7bRelativeTiming},
	{"E8", E8RelevanceFiltering},
	{"E9", E9TemporalActions},
	{"E10", E10Durability},
	{"E12", E12ReadSetIndex},
	{"E13", E13Server},
	{"E14", E14Cluster},
	{"E16", E16CommitScaling},
	{"E17", E17BoundedDisk},
	{"A1", A1DecomposableFastPath},
	{"A2", A2FutureProgression},
}

// All runs every experiment. quick shrinks the sweeps for CI-speed runs.
func All(quick bool) []Table {
	tables := make([]Table, 0, len(Catalog))
	for _, e := range Catalog {
		tables = append(tables, e.Run(quick))
	}
	return tables
}

// fmtDur renders a per-op duration in microseconds.
func fmtDur(total time.Duration, ops int) string {
	if ops == 0 {
		return "-"
	}
	us := float64(total.Microseconds()) / float64(ops)
	return fmt.Sprintf("%.2f", us)
}

func fmtMs(total time.Duration) string {
	return fmt.Sprintf("%.1f", float64(total.Microseconds())/1000)
}
