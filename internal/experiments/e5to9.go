package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"ptlactive/internal/adb"
	"ptlactive/internal/agg"
	"ptlactive/internal/core"
	"ptlactive/internal/ee"
	"ptlactive/internal/event"
	"ptlactive/internal/future"
	"ptlactive/internal/history"
	"ptlactive/internal/ptl"
	"ptlactive/internal/query"
	"ptlactive/internal/value"
	"ptlactive/internal/vtime"
	"ptlactive/internal/workload"
)

// rewritingRun runs the Section-6.1.1 rewritten running-sum rule inside an
// engine over n price commits and returns the elapsed time and number of
// external operations (the E3 kernel).
func rewritingRun(n int) (time.Duration, int) {
	eng := adb.NewEngine(adb.Config{
		Initial: map[string]value.Value{"px_IBM": value.NewFloat(100)},
	})
	err := agg.Rewrite(eng, "r",
		`sum(item("px_IBM"); time = 0; @update_stocks("IBM")) > 1000000`, nil)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(3))
	price := 100.0
	start := time.Now()
	for i := 0; i < n; i++ {
		price += (rng.Float64()*2 - 1) * 4
		if price < 1 {
			price = 1
		}
		err := eng.Exec(eng.Now()+2, map[string]value.Value{"px_IBM": value.NewFloat(price)},
			event.New("update_stocks", value.NewString("IBM")))
		if err != nil {
			panic(err)
		}
	}
	return time.Since(start), n
}

// ValidTimeRun replays a retroactive workload against tentative and
// definite monitors and reports firing counts and mean recognition delay
// (the E5 kernel).
type ValidTimeRun struct {
	TentativeFirings int
	DefiniteFirings  int
	TentativeDelay   float64 // mean (poll time - firing instant)
	DefiniteDelay    float64
	Steps            int
}

// RunValidTime executes the E5 kernel for a given maximum delay.
func RunValidTime(delta int64, txns int) ValidTimeRun {
	rng := rand.New(rand.NewSource(5))
	ops := workload.Retro(rng, txns, delta, 0.2)
	base := history.EmptyDB().With("a", value.NewInt(0))
	store := vtime.NewStore(base, 0, delta)
	reg := query.NewRegistry()
	cond := mustFormula(`item("a") > 80`)
	tent, err := vtime.NewMonitor(store, reg, cond, vtime.Tentative)
	if err != nil {
		panic(err)
	}
	def, err := vtime.NewMonitor(store, reg, cond, vtime.Definite)
	if err != nil {
		panic(err)
	}
	var out ValidTimeRun
	var tDelaySum, dDelaySum int64
	apply := func(op workload.RetroStream) {
		var err error
		switch op.Op {
		case "begin":
			err = store.Begin(op.Txn)
		case "post":
			err = store.Post(op.Txn, op.Item, op.V, op.Valid, op.At)
		case "commit":
			err = store.Commit(op.Txn, op.At)
		case "abort":
			err = store.Abort(op.Txn, op.At)
		}
		if err != nil {
			panic(err)
		}
	}
	for _, op := range ops {
		apply(op)
		tf, err := tent.Poll()
		if err != nil {
			panic(err)
		}
		df, err := def.Poll()
		if err != nil {
			panic(err)
		}
		for _, f := range tf {
			out.TentativeFirings++
			tDelaySum += store.Now() - f.Time
		}
		for _, f := range df {
			out.DefiniteFirings++
			dDelaySum += store.Now() - f.Time
		}
	}
	out.Steps = tent.EvalSteps() + def.EvalSteps()
	if out.TentativeFirings > 0 {
		out.TentativeDelay = float64(tDelaySum) / float64(out.TentativeFirings)
	}
	if out.DefiniteFirings > 0 {
		out.DefiniteDelay = float64(dDelaySum) / float64(out.DefiniteFirings)
	}
	return out
}

// E5ValidTime sweeps the maximum delay Delta and compares tentative vs
// definite firing counts and recognition delays.
func E5ValidTime(quick bool) Table {
	txns := 120
	if quick {
		txns = 40
	}
	t := Table{
		ID:     "E5",
		Title:  "valid time: tentative vs definite triggers under maximum delay Delta",
		Header: []string{"Delta", "tentative firings", "mean delay", "definite firings", "mean delay"},
		Notes: "definite triggers recognize the same instants no earlier than Delta after they " +
			"become definite, so their mean recognition delay exceeds Delta while the tentative " +
			"monitor's stays near zero. Shape per Section 9.2 (definite firing is inherently delayed).",
	}
	for _, delta := range []int64{0, 5, 10, 25, 50} {
		r := RunValidTime(delta, txns)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(delta),
			fmt.Sprint(r.TentativeFirings), fmt.Sprintf("%.1f", r.TentativeDelay),
			fmt.Sprint(r.DefiniteFirings), fmt.Sprintf("%.1f", r.DefiniteDelay),
		})
	}
	return t
}

// OnlineOfflineRun counts schedules where online and offline satisfaction
// diverge, in the valid-time view and on the collapsed history (the E6
// kernel).
func OnlineOfflineRun(schedules int, seed int64) (validDiverge, collapsedDiverge int) {
	reg := query.NewRegistry()
	// The ordering constraint of the paper's example: if u2 was ever set,
	// u1 was set at the same or an earlier instant.
	c := mustFormula(`not previously (item("u2") = 1 and not previously item("u1") = 1)`)
	for i := 0; i < schedules; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		s := randomOrderingStore(rng)
		on, err := vtime.OnlineSatisfied(s, reg, c)
		if err != nil {
			panic(err)
		}
		off, err := vtime.OfflineSatisfied(s, reg, c)
		if err != nil {
			panic(err)
		}
		if on != off {
			validDiverge++
		}
		cs := s.CollapsedStore()
		on2, err := vtime.OnlineSatisfied(cs, reg, c)
		if err != nil {
			panic(err)
		}
		off2, err := vtime.OfflineSatisfied(cs, reg, c)
		if err != nil {
			panic(err)
		}
		if on2 != off2 {
			collapsedDiverge++
		}
	}
	return
}

// randomOrderingStore builds a two-transaction schedule in the u1/u2 shape
// with randomized valid times and commit order.
func randomOrderingStore(rng *rand.Rand) *vtime.Store {
	base := history.EmptyDB().
		With("u1", value.NewInt(0)).
		With("u2", value.NewInt(0))
	s := vtime.NewStore(base, 0, vtime.Unlimited)
	_ = s.Begin(1)
	_ = s.Begin(2)
	v1 := int64(1 + rng.Intn(4))
	v2 := int64(1 + rng.Intn(4))
	if v1 == v2 {
		v2++
	}
	post := v1
	if v2 > post {
		post = v2
	}
	_ = s.Post(1, "u1", value.NewInt(1), v1, post)
	_ = s.Post(2, "u2", value.NewInt(1), v2, post)
	c1 := post + 1 + int64(rng.Intn(3))
	c2 := post + 1 + int64(rng.Intn(3))
	for c2 == c1 {
		c2++
	}
	if c1 < c2 {
		_ = s.Commit(1, c1)
		_ = s.Commit(2, c2)
	} else {
		_ = s.Commit(2, c2)
		_ = s.Commit(1, c1)
	}
	return s
}

// E6OnlineOffline measures how often the two satisfaction notions diverge
// on random schedules, and that they never diverge on collapsed histories
// (Theorem 2).
func E6OnlineOffline(quick bool) Table {
	n := 400
	if quick {
		n = 100
	}
	vd, cd := OnlineOfflineRun(n, 11)
	t := Table{
		ID:     "E6",
		Title:  "online vs offline constraint satisfaction (ordering constraint, random schedules)",
		Header: []string{"schedules", "diverging (valid time)", "diverging (collapsed)", "Theorem 2 holds"},
		Notes: "valid-time histories routinely distinguish the two notions (the u1/u2 effect); " +
			"collapsed (transaction-time) histories never do — Theorem 2.",
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprint(n),
		fmt.Sprintf("%d (%.0f%%)", vd, 100*float64(vd)/float64(n)),
		fmt.Sprint(cd),
		fmt.Sprint(cd == 0),
	})
	return t
}

// E7StateBlowup compares the event-expression automaton size against the
// PTL evaluator's retained state on the "k-th event from the end is a"
// family, where the DFA provably needs 2^k states while PTL needs a
// lasttime chain of length k.
func E7StateBlowup(quick bool) Table {
	maxK := 10
	if quick {
		maxK = 7
	}
	t := Table{
		ID:     "E7",
		Title:  "state blowup: event-expression DFA vs PTL evaluator ('a occurred k events ago')",
		Header: []string{"k", "EE NFA states", "EE DFA states", "EE min-DFA states", "PTL registers", "PTL peak nodes", "PTL us/event", "EE us/event"},
		Notes: "the determinization the event-expression formalism needs (negation, Section 10 / " +
			"[Stockmeyer 74]) costs 2^k automaton states; the PTL evaluator's incremental state " +
			"grows linearly in k. Per-event cost stays flat for both once compiled.",
	}
	alpha := ee.NewAlphabet("a", "b")
	n := 20000
	if quick {
		n = 4000
	}
	rng := rand.New(rand.NewSource(6))
	trace := make([]string, n)
	for i := range trace {
		trace[i] = []string{"a", "b"}[rng.Intn(2)]
	}
	for k := 2; k <= maxK; k++ {
		// EE: .* ; a ; .^(k-1)
		parts := []ee.Expr{&ee.Star{X: &ee.Any{}}, &ee.Sym{Name: "a"}}
		for i := 0; i < k-1; i++ {
			parts = append(parts, &ee.Any{})
		}
		expr := ee.Seq(parts...)
		nfa, err := ee.CompileNFA(expr, alpha)
		if err != nil {
			panic(err)
		}
		dfa := nfa.Determinize()
		min := dfa.Minimize()

		// PTL: lasttime^(k-1) @a — the k-th event from the end (the
		// current event is the 1st).
		var f ptl.Formula = ptl.Ev("a")
		for i := 0; i < k-1; i++ {
			f = &ptl.Lasttime{F: f}
		}
		reg := query.NewRegistry()
		ev, err := core.Compile(f, reg, nil)
		if err != nil {
			panic(err)
		}
		peak := 0
		b := history.NewBuilder(history.EmptyDB(), 0)
		start := time.Now()
		for i, sym := range trace {
			_ = b.Event(int64(i+1), event.New(sym))
			res, err := ev.Step(b.History().At(b.History().Len() - 1))
			if err != nil {
				panic(err)
			}
			_ = res
			if s := ev.StateSize(); s > peak {
				peak = s
			}
		}
		ptlDur := time.Since(start)

		m := ee.NewMatcher(dfa)
		start = time.Now()
		for _, sym := range trace {
			m.Step(sym)
			_ = m.Accepting()
		}
		eeDur := time.Since(start)

		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), fmt.Sprint(nfa.States()), fmt.Sprint(dfa.States()),
			fmt.Sprint(min.States()), fmt.Sprint(ev.Registers()), fmt.Sprint(peak),
			fmtDur(ptlDur, n), fmtDur(eeDur, n),
		})
	}
	return t
}

// DefaultWorkers is the worker-pool size used for the parallel columns of
// E8 and by the benchtables -workers flag; it defaults to all cores.
var DefaultWorkers = runtime.GOMAXPROCS(0)

// RelevanceRun drives R event-gated rules over an event mix and returns
// evaluator steps plus wall time (the E8 kernel). Evaluation is fully
// sequential; RelevanceRunWorkers adds the worker-pool axis.
func RelevanceRun(rules, states int, sched adb.Scheduling) (steps int64, dur time.Duration) {
	return RelevanceRunWorkers(rules, states, sched, 1)
}

// RelevanceRunWorkers is RelevanceRun with an explicit worker-pool size
// for the engine's parallel temporal component.
func RelevanceRunWorkers(rules, states int, sched adb.Scheduling, workers int) (steps int64, dur time.Duration) {
	eng := adb.NewEngine(adb.Config{
		Initial: map[string]value.Value{"a": value.NewInt(1)},
		Workers: workers,
	})
	for i := 0; i < rules; i++ {
		cond := fmt.Sprintf(`@ev%d and item("a") > 0`, i)
		if err := eng.AddTrigger(fmt.Sprintf("r%d", i), cond, nil, adb.WithScheduling(sched)); err != nil {
			panic(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	start := time.Now()
	for s := 0; s < states; s++ {
		// One of the gated events fires occasionally; most states are noise.
		var ev event.Event
		if rng.Intn(10) == 0 {
			ev = event.New(fmt.Sprintf("ev%d", rng.Intn(rules)))
		} else {
			ev = event.New("noise")
		}
		if err := eng.Emit(eng.Now()+1, ev); err != nil {
			panic(err)
		}
	}
	if sched == adb.Manual {
		if err := eng.Flush(); err != nil {
			panic(err)
		}
	}
	return eng.EvalSteps(), time.Since(start)
}

// RelevanceRunGoverned is the E8 kernel with trivial (non-nil) actions,
// so every firing passes through the action sandbox. With governed set it
// additionally enables the full resource-governance surface — a sweep
// budget far above the workload's real step count, a circuit-breaker
// threshold and a one-second action deadline — so the measured delta over
// the plain run is the overhead of the recover wrapper, the budget checks
// and the deadline machinery, not of any fault actually occurring.
func RelevanceRunGoverned(rules, states int, sched adb.Scheduling, workers int, governed bool) (steps int64, dur time.Duration) {
	cfg := adb.Config{
		Initial: map[string]value.Value{"a": value.NewInt(1)},
		Workers: workers,
	}
	if governed {
		cfg.SweepBudget = 1 << 40
		cfg.MaxRuleFailures = 3
		cfg.ActionTimeout = time.Second
	}
	eng := adb.NewEngine(cfg)
	act := func(ctx *adb.ActionContext) error { return nil }
	for i := 0; i < rules; i++ {
		cond := fmt.Sprintf(`@ev%d and item("a") > 0`, i)
		if err := eng.AddTrigger(fmt.Sprintf("r%d", i), cond, act, adb.WithScheduling(sched)); err != nil {
			panic(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	start := time.Now()
	for s := 0; s < states; s++ {
		var ev event.Event
		if rng.Intn(10) == 0 {
			ev = event.New(fmt.Sprintf("ev%d", rng.Intn(rules)))
		} else {
			ev = event.New("noise")
		}
		if err := eng.Emit(eng.Now()+1, ev); err != nil {
			panic(err)
		}
	}
	if sched == adb.Manual {
		if err := eng.Flush(); err != nil {
			panic(err)
		}
	}
	return eng.EvalSteps(), time.Since(start)
}

// E8RelevanceFiltering compares eager, relevance-filtered and batched
// (manual flush) trigger scheduling.
func E8RelevanceFiltering(quick bool) Table {
	states := 2000
	if quick {
		states = 500
	}
	t := Table{
		ID:    "E8",
		Title: "execution model: relevance filtering and batching over event-gated rules",
		Header: []string{"rules", "eager steps", "eager ms", "relevant steps", "relevant ms", "batched steps",
			fmt.Sprintf("eager ms (W=%d)", DefaultWorkers)},
		Notes: "with relevance filtering, evaluator invocations scale with matching events " +
			"rather than rules x states; batching defers the same work to one flush. " +
			"Shape per Section 8. The last column re-runs the eager sweep with the " +
			"parallel temporal component (worker pool over rules); firings are identical.",
	}
	for _, rules := range []int{10, 50, 200} {
		es, ed := RelevanceRun(rules, states, adb.Eager)
		rs, rd := RelevanceRun(rules, states, adb.Relevant)
		bs, _ := RelevanceRun(rules, states, adb.Manual)
		ps, pd := RelevanceRunWorkers(rules, states, adb.Eager, DefaultWorkers)
		if ps != es {
			panic(fmt.Sprintf("E8: parallel eager steps %d != sequential %d", ps, es))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(rules),
			fmt.Sprint(es), fmtMs(ed),
			fmt.Sprint(rs), fmtMs(rd),
			fmt.Sprint(bs),
			fmtMs(pd),
		})
	}
	return t
}

// TemporalActionRun executes the Section-7 BUY-STOCK temporal action and
// returns the number of buys plus wall time (the E9 kernel).
func TemporalActionRun(states int) (buys int64, dur time.Duration) {
	eng := adb.NewEngine(adb.Config{
		Initial: map[string]value.Value{
			"price":  value.NewFloat(100),
			"bought": value.NewInt(0),
		},
	})
	buy := func(ctx *adb.ActionContext) error {
		v, _ := ctx.DB().Get("bought")
		return ctx.Exec(map[string]value.Value{"bought": value.NewInt(v.AsInt() + 50)})
	}
	if err := eng.AddTrigger("buy_start",
		`item("price") < 60 and lasttime (item("price") >= 60)`, buy); err != nil {
		panic(err)
	}
	if err := eng.AddTrigger("buy_repeat",
		`executed(buy_start, T) and time - T <= 60 and (time - T) mod 10 = 0 and item("price") < 60`, buy); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(8))
	price := 100.0
	start := time.Now()
	for s := 0; s < states; s++ {
		price += (rng.Float64()*2 - 1) * 5
		if price < 1 {
			price = 1
		}
		if err := eng.Exec(eng.Now()+2, map[string]value.Value{"price": value.NewFloat(price)}); err != nil {
			panic(err)
		}
	}
	dur = time.Since(start)
	v, _ := eng.DB().Get("bought")
	return v.AsInt() / 50, dur
}

// E9TemporalActions measures the overhead of driving temporal actions
// through the executed predicate, against the same feed with plain rules
// only.
func E9TemporalActions(quick bool) Table {
	states := 3000
	if quick {
		states = 600
	}
	t := Table{
		ID:     "E9",
		Title:  "temporal actions via the executed predicate (BUY-STOCK every 10 units for an hour)",
		Header: []string{"states", "buys", "us/state (with temporal action)", "us/state (plain rule only)"},
		Notes: "the executed-predicate mechanism implements the Section-7 extended-transaction " +
			"pattern inside the rule system at a modest constant per-state overhead — no separate " +
			"extended-transaction manager.",
	}
	buys, dur := TemporalActionRun(states)

	// Baseline: the same feed with only the plain edge rule.
	eng := adb.NewEngine(adb.Config{
		Initial: map[string]value.Value{"price": value.NewFloat(100)},
	})
	if err := eng.AddTrigger("edge",
		`item("price") < 60 and lasttime (item("price") >= 60)`, nil); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(8))
	price := 100.0
	startT := time.Now()
	for s := 0; s < states; s++ {
		price += (rng.Float64()*2 - 1) * 5
		if price < 1 {
			price = 1
		}
		if err := eng.Exec(eng.Now()+2, map[string]value.Value{"price": value.NewFloat(price)}); err != nil {
			panic(err)
		}
	}
	base := time.Since(startT)
	t.Rows = append(t.Rows, []string{
		fmt.Sprint(states), fmt.Sprint(buys), fmtDur(dur, states), fmtDur(base, states),
	})
	return t
}

// FutureMonitorRun monitors a future SLA condition over n stock updates
// and returns verdict count, peak pending obligations and elapsed time
// (the A2 kernel).
func FutureMonitorRun(n int, bounded bool) (verdicts, peakPending int, dur time.Duration) {
	cond := `eventually (item("px_IBM") >= 1000000)` // never satisfied: worst case
	if bounded {
		cond = `eventually <= 20 (item("px_IBM") >= 1000000)`
	}
	reg := query.NewRegistry()
	m, err := future.Compile(cond, reg, nil)
	if err != nil {
		panic(err)
	}
	h := workload.Stocks(rand.New(rand.NewSource(13)), workload.DefaultStockConfig(), n)
	start := time.Now()
	for i := 0; i < h.Len(); i++ {
		rs, err := m.Step(h.At(i))
		if err != nil {
			panic(err)
		}
		verdicts += len(rs)
		if p := m.Pending(); p > peakPending {
			peakPending = p
		}
	}
	verdicts += len(m.Finish())
	return verdicts, peakPending, time.Since(start)
}

// A2FutureProgression measures the future-operator monitor (the paper's
// Section-11 extension): per-state cost and pending-obligation growth for
// bounded vs unbounded eventualities.
func A2FutureProgression(quick bool) Table {
	n := 5000
	if quick {
		n = 1000
	}
	t := Table{
		ID:     "A2",
		Title:  "extension: future-operator progression monitor (eventually, never satisfied)",
		Header: []string{"states", "variant", "verdicts", "peak pending", "us/state"},
		Notes: "an unbounded unsatisfied eventuality keeps one obligation per state open until " +
			"the trace ends; the bounded form expires each obligation at its deadline, so pending " +
			"state stays within the window — the future-logic analogue of the Section-5 " +
			"time-bound optimization.",
	}
	for _, bounded := range []bool{false, true} {
		name := "unbounded"
		if bounded {
			name = "bounded <= 20"
		}
		v, p, d := FutureMonitorRun(n, bounded)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n + 1), name, fmt.Sprint(v), fmt.Sprint(p), fmtDur(d, n+1),
		})
	}
	return t
}

// orderedWithinExpr builds the event-expression encoding of the paper's
// Section-10 example — "three events a, b, c occur in that order within a
// span of k clock ticks". Event expressions have no relative-time
// operator; per the paper's suggestion the encoding counts a special
// clock-tick symbol: the window between a and c may contain at most k-1
// further symbols. The union over the possible split points makes the
// expression itself Theta(k^2) large — the conciseness gap the paper
// calls out ("certain types of relative time conditions cannot be
// expressed concisely").
func orderedWithinExpr(k int) ee.Expr {
	// .* ; a ; ( .^i ; b ; .^j ; c  for i+j <= k-2 ) ; .*
	var alts []ee.Expr
	for i := 0; i+2 <= k; i++ {
		for j := 0; i+j+2 <= k; j++ {
			parts := []ee.Expr{}
			for n := 0; n < i; n++ {
				parts = append(parts, &ee.Any{})
			}
			parts = append(parts, &ee.Sym{Name: "b"})
			for n := 0; n < j; n++ {
				parts = append(parts, &ee.Any{})
			}
			parts = append(parts, &ee.Sym{Name: "c"})
			alts = append(alts, ee.Seq(parts...))
		}
	}
	mid := alts[0]
	for _, a := range alts[1:] {
		mid = &ee.Alt{L: mid, R: a}
	}
	return ee.Seq(&ee.Star{X: &ee.Any{}}, &ee.Sym{Name: "a"}, mid, &ee.Star{X: &ee.Any{}})
}

// exprSize counts AST nodes of an event expression.
func exprSize(e ee.Expr) int {
	switch x := e.(type) {
	case *ee.Concat:
		return 1 + exprSize(x.L) + exprSize(x.R)
	case *ee.Alt:
		return 1 + exprSize(x.L) + exprSize(x.R)
	case *ee.Star:
		return 1 + exprSize(x.X)
	case *ee.Not:
		return 1 + exprSize(x.X)
	default:
		return 1
	}
}

// E7bRelativeTiming compares the encodings of "a, b, c in that order
// within k time units": the event-expression clock-tick counting vs the
// PTL bounded-operator formula.
func E7bRelativeTiming(quick bool) Table {
	// k = 12 is already near the determinization's practical limit (the
	// raw subset DFA grows ~70x per +4 on this family) — which is the
	// point.
	ks := []int{4, 6, 8, 10, 12}
	if quick {
		ks = []int{4, 6, 8}
	}
	t := Table{
		ID:     "E7b",
		Title:  "relative timing: 'a, b, c in order within k units' — EE clock-tick encoding vs PTL bounds",
		Header: []string{"k", "EE expr nodes", "EE DFA states", "EE min-DFA states", "PTL formula nodes", "PTL registers"},
		Notes: "the event-expression encoding must count clock ticks, so the expression is " +
			"Theta(k^2) and its automaton grows with k; the PTL formula states the same condition " +
			"in a fixed number of nodes — bounds are data, not structure. Shape per Section 10 " +
			"('certain types of relative time conditions cannot be expressed concisely').",
	}
	alpha := ee.NewAlphabet("a", "b", "c")
	for _, k := range ks {
		expr := orderedWithinExpr(k)
		nfa, err := ee.CompileNFA(expr, alpha)
		if err != nil {
			panic(err)
		}
		dfa := nfa.Determinize()
		min := dfa.Minimize()

		// PTL: within k of the a-occurrence, b then c follow in order.
		src := fmt.Sprintf(
			`previously <= %d (@c and previously <= %d (@b and previously <= %d @a))`, k, k, k)
		f := mustFormula(src)
		info, err := ptl.Check(f, query.NewRegistry())
		if err != nil {
			panic(err)
		}
		nodes := 0
		ptl.Walk(info.Normalized, func(ptl.Formula) { nodes++ })
		ev, err := core.New(info, query.NewRegistry(), nil)
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), fmt.Sprint(exprSize(expr)), fmt.Sprint(dfa.States()),
			fmt.Sprint(min.States()), fmt.Sprint(nodes), fmt.Sprint(ev.Registers()),
		})
	}
	return t
}
