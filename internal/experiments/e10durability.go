package experiments

import (
	"fmt"
	"os"
	"time"

	"ptlactive/internal/adb"
	"ptlactive/internal/event"
	"ptlactive/internal/value"
)

// DurabilityRun drives n external commits through an engine in the given
// durability mode (fsync disabled so the table measures the logging and
// snapshot work, not the disk) and returns the commit-phase duration plus
// the recovery duration and replayed-record count of a subsequent
// Restore. mode adb.DurabilityOff runs memory-only and reports zero
// recovery figures. groupCommit > 1 batches WAL appends (one write+fsync
// per batch); the engine is synced before the crash point, so recovery
// still replays every record.
func DurabilityRun(n int, mode adb.Durability, snapEvery, groupCommit int) (commit, recovery time.Duration, replayed int) {
	cfg := adb.Config{
		Initial:     map[string]value.Value{"px": value.NewInt(100)},
		TrackItems:  []string{"px"},
		GroupCommit: groupCommit,
	}
	var dir string
	var eng *adb.Engine
	if mode == adb.DurabilityOff {
		eng = adb.NewEngine(cfg)
	} else {
		var err error
		dir, err = os.MkdirTemp("", "ptlactive-e10-*")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		cfg.Durability = mode
		cfg.SnapshotEvery = snapEvery
		cfg.NoFsync = true
		eng, err = adb.Restore(cfg, dir)
		if err != nil {
			panic(err)
		}
	}
	if err := eng.AddTrigger("spike",
		`@tick and item("px") > 110 and previously item("px") <= 110`, nil); err != nil {
		panic(err)
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		px := int64(100 + (i % 40) - 20) // deterministic sawtooth crossing 110
		if err := eng.Exec(int64(i+1), map[string]value.Value{"px": value.NewInt(px)}, event.New("tick")); err != nil {
			panic(err)
		}
	}
	commit = time.Since(start)
	if mode == adb.DurabilityOff {
		return commit, 0, 0
	}
	if err := eng.SyncWAL(); err != nil {
		panic(err)
	}
	if err := eng.Close(); err != nil {
		panic(err)
	}
	start = time.Now()
	e2, err := adb.Restore(cfg, dir)
	if err != nil {
		panic(err)
	}
	recovery = time.Since(start)
	replayed = e2.Recovery().ReplayedRecords
	e2.Close()
	return commit, recovery, replayed
}

// E10Durability measures what durability costs at commit time and what a
// snapshot buys at recovery time: the WAL adds a per-commit logging
// constant, and periodic snapshots turn recovery from full-history replay
// into bounded tail replay (Theorem 1's bounded evaluator state is what
// keeps the snapshot small).
func E10Durability(quick bool) Table {
	n := 2000
	if quick {
		n = 400
	}
	t := Table{
		ID:     "E10",
		Title:  "durability: WAL commit overhead and snapshot-bounded recovery",
		Header: []string{"durability", "commits", "us/commit", "recovery ms", "replayed records"},
		Notes: "fsync disabled, so us/commit isolates serialization overhead; with periodic " +
			"snapshots, recovery replays only the wal tail since the last checkpoint instead of " +
			"the whole history. Group commit batches the WAL appends into one write (and, with " +
			"fsync on, one fsync) per 32 records; the record sequence on disk is identical.",
	}
	type cfg struct {
		label string
		mode  adb.Durability
		every int
		group int
	}
	for _, c := range []cfg{
		{"off (memory)", adb.DurabilityOff, 0, 0},
		{"wal (per-record)", adb.DurabilityWAL, 0, 0},
		{"wal", adb.DurabilityWAL, 0, 32},
		{"wal+snapshot/64", adb.DurabilitySnapshot, 64, 32},
	} {
		commit, rec, replayed := DurabilityRun(n, c.mode, c.every, c.group)
		recCell, repCell := "-", "-"
		if c.mode != adb.DurabilityOff {
			recCell, repCell = fmtMs(rec), fmt.Sprint(replayed)
		}
		t.Rows = append(t.Rows, []string{c.label, fmt.Sprint(n), fmtDur(commit, n), recCell, repCell})
	}
	return t
}
