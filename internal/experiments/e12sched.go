package experiments

import (
	"fmt"
	"time"

	"ptlactive/internal/adb"
	"ptlactive/internal/value"
)

// SchedIndexRun is the E12 kernel: `rules` non-temporal triggers, each
// watching its own database item, driven through `commits` transactions
// that each touch `touch` items (a rotating window, so every rule is hit
// eventually but each individual commit concerns only touch/rules of the
// rule set). With the read-set index the sweep evaluates only the touched
// rules and replays the memoized outcome for the rest; the coarse filter
// evaluates every database-reading rule at every commit. It returns the
// evaluator steps, the wall time, and the firing log for the equivalence
// check.
func SchedIndexRun(rules, commits, touch int, noIndex bool) (steps int64, dur time.Duration, firings []adb.Firing) {
	initial := make(map[string]value.Value, rules)
	for i := 0; i < rules; i++ {
		initial[fmt.Sprintf("i%d", i)] = value.NewInt(0)
	}
	eng := adb.NewEngine(adb.Config{
		Initial:             initial,
		DisableReadSetIndex: noIndex,
	})
	for i := 0; i < rules; i++ {
		cond := fmt.Sprintf(`item("i%d") > 100`, i)
		if err := eng.AddTrigger(fmt.Sprintf("r%d", i), cond, nil, adb.WithScheduling(adb.Relevant)); err != nil {
			panic(err)
		}
	}
	start := time.Now()
	for c := 0; c < commits; c++ {
		updates := make(map[string]value.Value, touch)
		for k := 0; k < touch; k++ {
			item := (c*touch + k) % rules
			// Push a touched item over the firing threshold every fourth
			// visit so both fired and non-fired memo outcomes are
			// exercised without the firing log dominating the run.
			v := int64(50)
			if (c+k)%4 == 0 {
				v = 150
			}
			updates[fmt.Sprintf("i%d", item)] = value.NewInt(v)
		}
		if err := eng.Exec(int64(c+1), updates); err != nil {
			panic(err)
		}
	}
	return eng.EvalSteps(), time.Since(start), eng.Firings()
}

// E12ReadSetIndex measures the read-set indexed scheduler against the
// coarse Section-8 filter on a workload where each commit touches about
// 1% of the rule set's read sets, and checks the two runs fire
// identically.
func E12ReadSetIndex(quick bool) Table {
	rules, commits, touch := 500, 400, 5
	if quick {
		rules, commits, touch = 100, 100, 1
	}
	t := Table{
		ID:    "E12",
		Title: "read-set indexed scheduling vs the coarse relevance filter",
		Header: []string{"rules", "commits", "touched/commit", "indexed steps", "indexed ms",
			"coarse steps", "coarse ms", "step ratio", "speedup"},
		Notes: "every rule reads one item and every commit updates a rotating ~1% of the items; " +
			"the coarse filter evaluates all database-reading rules at each commit, the index " +
			"evaluates only the touched ones and replays the memoized outcome for the rest. " +
			"Firings are verified identical between the two runs.",
	}
	is, id, ifir := SchedIndexRun(rules, commits, touch, false)
	cs, cd, cfir := SchedIndexRun(rules, commits, touch, true)
	if len(ifir) != len(cfir) {
		panic(fmt.Sprintf("E12: indexed run fired %d times, coarse %d", len(ifir), len(cfir)))
	}
	for i := range ifir {
		if ifir[i].Rule != cfir[i].Rule || ifir[i].Time != cfir[i].Time || ifir[i].StateIndex != cfir[i].StateIndex {
			panic(fmt.Sprintf("E12: firing %d diverges: indexed %+v, coarse %+v", i, ifir[i], cfir[i]))
		}
	}
	ratio, speed := "-", "-"
	if is > 0 {
		ratio = fmt.Sprintf("%.1fx", float64(cs)/float64(is))
	}
	if id > 0 {
		speed = fmt.Sprintf("%.1fx", float64(cd)/float64(id))
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprint(rules), fmt.Sprint(commits), fmt.Sprint(touch),
		fmt.Sprint(is), fmtMs(id),
		fmt.Sprint(cs), fmtMs(cd),
		ratio, speed,
	})
	return t
}
