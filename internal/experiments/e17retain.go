package experiments

import (
	"fmt"
	"os"
	"time"

	"ptlactive/internal/adb"
	"ptlactive/internal/value"
)

// e17Sample is one measurement point of a sustained-commit run: the
// engine's storage footprint after a given number of commits, and the
// time a cold restart takes to recover from that footprint.
type e17Sample struct {
	commits int
	hot     int64 // WAL segments + snapshot chain, bytes
	tier    int64 // cold-tier bytes (spill policy only)
	segs    int
	recover time.Duration
}

// e17Run drives commits commits through a durable engine under the given
// durability mode and retention policy, sampling the on-disk footprint
// at each point in at. Checkpoints run on the engine's own cadence;
// every sample syncs first so buffered bytes are on disk, then restarts
// the engine cold to measure recovery time over exactly that footprint.
func e17Run(mode adb.Durability, ret adb.Retention, at []int) []e17Sample {
	dir, err := os.MkdirTemp("", "ptlactive-e17-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	cfg := adb.Config{
		Initial:       map[string]value.Value{"a": value.NewInt(0), "b": value.NewInt(0)},
		TrackItems:    []string{"a"},
		Durability:    mode,
		SnapshotEvery: 256,
		NoFsync:       true,
		Retention:     ret,
	}
	eng, err := adb.Restore(cfg, dir)
	if err != nil {
		panic(err)
	}
	defer func() { eng.Close() }()
	var out []e17Sample
	done := 0
	for _, target := range at {
		for ; done < target; done++ {
			ts := int64(done + 1)
			if err := eng.Exec(ts, map[string]value.Value{
				"a": value.NewInt(ts % 97),
				"b": value.NewInt(ts),
			}); err != nil {
				panic(err)
			}
		}
		if err := eng.SyncWAL(); err != nil {
			panic(err)
		}
		st, err := eng.Storage()
		if err != nil {
			panic(err)
		}
		// Cold restart: recovery replays whatever the lifecycle retained,
		// so bounding the hot set also bounds restart time. Best of three
		// restarts — single millisecond-scale restores are scheduler noise.
		best := time.Duration(0)
		for round := 0; round < 3; round++ {
			if err := eng.Close(); err != nil {
				panic(err)
			}
			start := time.Now()
			eng, err = adb.Restore(cfg, dir)
			if err != nil {
				panic(err)
			}
			if d := time.Since(start); round == 0 || d < best {
				best = d
			}
		}
		out = append(out, e17Sample{
			commits: target,
			hot:     st.WALBytes + st.SnapshotBytes,
			tier:    st.TierBytes,
			segs:    st.Segments,
			recover: best,
		})
	}
	return out
}

// E17BoundedDisk measures the on-disk footprint under sustained commits,
// with and without the storage lifecycle: an unbounded engine's WAL
// grows linearly forever, while segment rotation plus snapshot-chain GC
// holds the hot set (WAL + snapshots) flat. The spill policy's cold tier
// grows with the pruned history — that is the retained data itself, kept
// at cold-storage cost instead of resident.
func E17BoundedDisk(quick bool) Table {
	at := []int{2000, 4000, 8000, 16000}
	if quick {
		at = []int{500, 1000, 2000, 4000}
	}
	t := Table{
		ID:     "E17",
		Title:  "disk footprint and restart cost under sustained commits (WAL rotation + snapshot GC)",
		Header: []string{"config@commits", "hot KiB", "segments", "tier KiB", "recover ms", "vs first"},
		Notes: "hot = live WAL segments + snapshot chain; recover = cold-restart replay time over " +
			"that footprint. Acceptance: the retained configs' hot ratio stays near 1x from first " +
			"to last sample while unbounded grows with the commit count (and its recovery time " +
			"with it); the spill tier grows linearly because it IS the pruned history, spilled " +
			"not lost.",
	}
	configs := []struct {
		name string
		mode adb.Durability
		ret  adb.Retention
	}{
		// The unbounded baseline is a WAL-only engine: no checkpoints, so
		// the single log holds every commit ever made and grows forever.
		{"unbounded", adb.DurabilityWAL, adb.Retention{}},
		{"retain-drop", adb.DurabilitySnapshot, adb.Retention{
			SegmentBytes: 64 << 10, KeepSnapshots: 2, HistoryWindow: 512,
		}},
		{"retain-spill", adb.DurabilitySnapshot, adb.Retention{
			SegmentBytes: 64 << 10, KeepSnapshots: 2, HistoryWindow: 512, SpillHistory: true,
		}},
	}
	for _, cfg := range configs {
		samples := e17Run(cfg.mode, cfg.ret, at)
		first := samples[0].hot
		for _, s := range samples {
			ratio := "-"
			if first > 0 {
				ratio = fmt.Sprintf("%.2f", float64(s.hot)/float64(first))
			}
			// Sub-10ms restores are below wall-clock measurement noise on a
			// shared machine; report the bound (that IS the claim) so the
			// benchcheck baseline only gates the meaningfully-sized cells.
			rec := "<10"
			if s.recover >= 10*time.Millisecond {
				rec = fmtMs(s.recover)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%s@%d", cfg.name, s.commits),
				fmt.Sprintf("%.0f", float64(s.hot)/1024),
				fmt.Sprint(s.segs),
				fmt.Sprintf("%.0f", float64(s.tier)/1024),
				rec,
				ratio,
			})
		}
	}
	return t
}
