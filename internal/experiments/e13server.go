package experiments

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"ptlactive/client"
	"ptlactive/internal/adb"
	"ptlactive/internal/server"
	"ptlactive/internal/server/wire"
	"ptlactive/internal/value"
)

// E13Config parameterizes one E13 measurement: how many committers and
// subscribers, which codec the clients offer, and how many commits each
// committer keeps in flight.
type E13Config struct {
	Clients, Commits, Subs int
	// Codecs is the clients' codec offer: nil negotiates the binary codec
	// (the default offer), []string{"json"} pins the JSON fallback.
	Codecs []string
	// Window is the pipelining depth per committer: 1 (or 0) commits
	// synchronously, one round trip each; W keeps up to W transactions in
	// flight on the connection before collecting their outcomes.
	Window int
	// SubscriberQueue overrides the server's per-subscriber firing queue
	// (0 keeps the server default) — the fan-out rows raise it so the
	// measurement is of delivery throughput, not of the overflow policy.
	SubscriberQueue int
}

// E13Run is the legacy E13 kernel signature: synchronous commits over
// the JSON codec, matching the pre-negotiation protocol so historical
// rows stay comparable.
func E13Run(nclients, ncommits, nsubs int) (time.Duration, int) {
	return E13RunConfig(E13Config{
		Clients: nclients, Commits: ncommits, Subs: nsubs,
		Codecs: []string{wire.CodecNameJSON}, Window: 1,
	})
}

// E13RunConfig runs one E13 scenario: an in-process server on a loopback
// listener, cfg.Clients concurrent sessions each committing cfg.Commits
// server-timestamped transactions (every commit fires one trigger), and
// cfg.Subs subscribers that must each receive the full firing stream
// before the clock stops. Connections are dialed and subscriptions
// registered before the clock starts — the measurement is commit and
// delivery throughput, not TCP setup. It returns the wall time and the
// total firing deliveries.
func E13RunConfig(cfg E13Config) (time.Duration, int) {
	eng := adb.NewEngine(adb.Config{
		Initial: map[string]value.Value{"a": value.NewInt(0)},
	})
	if err := eng.AddTrigger("every", `item("a") > 0`, nil); err != nil {
		panic(err)
	}
	srv, err := server.New(server.Config{
		Engine:          eng,
		MaxConns:        cfg.Clients + cfg.Subs + 8,
		SubscriberQueue: cfg.SubscriberQueue,
	})
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := ln.Addr().String()
	opts := client.Options{Codecs: cfg.Codecs}
	window := cfg.Window
	if window < 1 {
		window = 1
	}

	total := cfg.Clients * cfg.Commits

	var subWG sync.WaitGroup
	delivered := 0
	var deliveredMu sync.Mutex
	subs := make([]*client.Subscription, cfg.Subs)
	for s := 0; s < cfg.Subs; s++ {
		c, err := client.DialOptions(addr, opts)
		if err != nil {
			panic(err)
		}
		defer c.Close()
		subs[s], err = c.Subscribe(0)
		if err != nil {
			panic(err)
		}
	}
	committers := make([]*client.Client, cfg.Clients)
	for ci := 0; ci < cfg.Clients; ci++ {
		c, err := client.DialOptions(addr, opts)
		if err != nil {
			panic(err)
		}
		defer c.Close()
		committers[ci] = c
	}

	start := time.Now()
	for _, sub := range subs {
		sub := sub
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			got := 0
			for ev := range sub.C {
				if ev.Gap > 0 {
					got += ev.Gap // dropped firings still count as seen
				} else {
					got++
				}
				if got >= total {
					break
				}
			}
			deliveredMu.Lock()
			delivered += got
			deliveredMu.Unlock()
		}()
	}

	var wg sync.WaitGroup
	for ci := 0; ci < cfg.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := committers[ci]
			pending := make([]*client.Pending, 0, window)
			flush := func() {
				for _, p := range pending {
					if _, err := p.Wait(); err != nil {
						panic(err)
					}
				}
				pending = pending[:0]
			}
			for i := 0; i < cfg.Commits; i++ {
				p := c.Txn().Set("a", value.NewInt(int64(ci*cfg.Commits+i+1))).Go()
				pending = append(pending, p)
				if len(pending) >= window {
					flush()
				}
			}
			flush()
		}(ci)
	}
	wg.Wait()
	subWG.Wait()
	return time.Since(start), delivered
}

// E13Server measures the network service layer: commit throughput through
// the serializing pipeline as concurrent sessions increase, the effect of
// the binary codec and client pipelining on the per-commit wire cost, and
// firing fan-out to subscribers (including a 1000-subscriber broadcast
// over batched delivery).
func E13Server(quick bool) Table {
	ncommits := 300
	bigFan := 1000
	if quick {
		ncommits = 40
		bigFan = 100
	}
	t := Table{
		ID:    "E13",
		Title: "server throughput and subscriber fan-out",
		Header: []string{"scenario", "clients", "commits", "subs", "deliveries",
			"total ms", "us/commit"},
		Notes: "loopback TCP, one trigger firing per commit, server-assigned timestamps. " +
			"All mutations serialize through the commit pipeline, so added clients contend " +
			"for one writer; subscriber rows stop the clock only when every subscriber has " +
			"received the full firing stream. Committer rows are synchronous JSON (the " +
			"legacy wire) unless marked: 'binary' rows negotiate the binary codec, " +
			"'pipelined' rows keep a window of commits in flight per connection, and the " +
			"big fan-out row uses batched multi-firing delivery.",
	}
	row := func(scenario string, cfg E13Config) {
		// Best of five: each scenario is a single short run, so scheduler
		// and GC noise dominate a one-shot sample; the minimum is the
		// stable estimate of the scenario's cost.
		dur, delivered := E13RunConfig(cfg)
		for rep := 1; rep < 5; rep++ {
			if d, n := E13RunConfig(cfg); d < dur {
				dur, delivered = d, n
			}
		}
		t.Rows = append(t.Rows, []string{
			scenario, fmt.Sprint(cfg.Clients), fmt.Sprint(cfg.Clients * cfg.Commits),
			fmt.Sprint(cfg.Subs), fmt.Sprint(delivered),
			fmtMs(dur), fmtDur(dur, cfg.Clients*cfg.Commits),
		})
	}
	json := []string{wire.CodecNameJSON}
	for _, nc := range []int{1, 2, 4} {
		row(fmt.Sprintf("%d committer(s)", nc),
			E13Config{Clients: nc, Commits: ncommits / nc, Codecs: json, Window: 1})
	}
	row("binary sync", E13Config{Clients: 1, Commits: ncommits, Window: 1})
	row("pipelined json w=64", E13Config{Clients: 1, Commits: ncommits, Codecs: json, Window: 64})
	row("pipelined binary w=64", E13Config{Clients: 1, Commits: ncommits, Window: 64})
	for _, ns := range []int{1, 4} {
		row(fmt.Sprintf("fan-out %d sub(s)", ns),
			E13Config{Clients: 1, Commits: ncommits, Subs: ns, Codecs: json, Window: 1})
	}
	row(fmt.Sprintf("fan-out %d subs batched", bigFan), E13Config{
		Clients: 1, Commits: ncommits, Subs: bigFan, Window: 64, SubscriberQueue: 2 * ncommits,
	})
	return t
}
