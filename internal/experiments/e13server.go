package experiments

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"ptlactive/client"
	"ptlactive/internal/adb"
	"ptlactive/internal/server"
	"ptlactive/internal/value"
)

// E13Run is the E13 kernel: an in-process server on a loopback listener,
// nclients concurrent sessions each committing ncommits server-timestamped
// transactions (every commit fires one trigger), and nsubs subscribers
// that must each receive the full firing stream before the clock stops.
// It returns the wall time and the total firing deliveries.
func E13Run(nclients, ncommits, nsubs int) (time.Duration, int) {
	eng := adb.NewEngine(adb.Config{
		Initial: map[string]value.Value{"a": value.NewInt(0)},
	})
	if err := eng.AddTrigger("every", `item("a") > 0`, nil); err != nil {
		panic(err)
	}
	srv, err := server.New(server.Config{Engine: eng})
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := ln.Addr().String()

	total := nclients * ncommits
	start := time.Now()

	var subWG sync.WaitGroup
	delivered := 0
	var deliveredMu sync.Mutex
	for s := 0; s < nsubs; s++ {
		c, err := client.Dial(addr)
		if err != nil {
			panic(err)
		}
		defer c.Close()
		sub, err := c.Subscribe(0)
		if err != nil {
			panic(err)
		}
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			got := 0
			for ev := range sub.C {
				if ev.Gap > 0 {
					got += ev.Gap // dropped firings still count as seen
				} else {
					got++
				}
				if got >= total {
					break
				}
			}
			deliveredMu.Lock()
			delivered += got
			deliveredMu.Unlock()
		}()
	}

	var wg sync.WaitGroup
	for ci := 0; ci < nclients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				panic(err)
			}
			defer c.Close()
			for i := 0; i < ncommits; i++ {
				if _, err := c.Exec(0, map[string]value.Value{
					"a": value.NewInt(int64(ci*ncommits + i + 1)),
				}); err != nil {
					panic(err)
				}
			}
		}(ci)
	}
	wg.Wait()
	subWG.Wait()
	return time.Since(start), delivered
}

// E13Server measures the network service layer: commit throughput through
// the serializing pipeline as concurrent sessions increase, and firing
// fan-out to multiple subscribers.
func E13Server(quick bool) Table {
	ncommits := 300
	if quick {
		ncommits = 40
	}
	t := Table{
		ID:    "E13",
		Title: "server throughput and subscriber fan-out",
		Header: []string{"scenario", "clients", "commits", "subs", "deliveries",
			"total ms", "us/commit"},
		Notes: "loopback TCP, one trigger firing per commit, server-assigned timestamps. " +
			"All mutations serialize through the commit pipeline, so added clients contend " +
			"for one writer; subscriber rows stop the clock only when every subscriber has " +
			"received the full firing stream.",
	}
	for _, nc := range []int{1, 2, 4} {
		per := ncommits / nc
		dur, _ := E13Run(nc, per, 0)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d committer(s)", nc), fmt.Sprint(nc), fmt.Sprint(nc * per), "0", "0",
			fmtMs(dur), fmtDur(dur, nc*per),
		})
	}
	for _, ns := range []int{1, 4} {
		dur, delivered := E13Run(1, ncommits, ns)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("fan-out %d sub(s)", ns), "1", fmt.Sprint(ncommits), fmt.Sprint(ns),
			fmt.Sprint(delivered), fmtMs(dur), fmtDur(dur, ncommits),
		})
	}
	return t
}
