package experiments

import (
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"ptlactive/client"
	"ptlactive/internal/adb"
	"ptlactive/internal/cluster"
	"ptlactive/internal/server"
	"ptlactive/internal/value"
)

// E14Config parameterizes one sharded-cluster measurement: how many
// in-process shards the router fronts, the shared workload every shard
// count runs (items, per-item rules, commits), and the client shape.
type E14Config struct {
	Shards int
	// Items is the partitioned item universe; every item carries one
	// integrity constraint and one trigger, so the cluster-wide rule table
	// is 2*Items regardless of the shard count — what changes is how many
	// of them each shard's commit path has to evaluate.
	Items int
	// Commits is the total commit count, sprayed round-robin over the
	// items (and therefore over the shards).
	Commits int
	// Clients and Window shape the load: Clients concurrent sessions,
	// each keeping Window commits in flight (pipelining keeps several
	// shards' commit pipelines and WAL fsyncs busy at once).
	Clients, Window int
	// Durable gives every shard its own write-ahead log + group commit in
	// a temp directory, so shard counts also overlap their fsyncs.
	Durable bool
}

// E14RunConfig runs one cluster scenario: a router over cfg.Shards
// in-process engines behind a loopback wire server, the per-item rules
// registered through the router (each lands on the shard owning its
// item), then cfg.Clients sessions committing the shared workload. The
// clock covers the commits only — rule registration and connection setup
// are excluded. Returns the wall time.
func E14RunConfig(cfg E14Config) time.Duration {
	items := make([]string, cfg.Items)
	for i := range items {
		items[i] = fmt.Sprintf("metric%03d", i)
	}

	engCfg := adb.Config{}
	shards := make([]cluster.Shard, cfg.Shards)
	for i := range shards {
		var eng *adb.Engine
		if cfg.Durable {
			dir, err := os.MkdirTemp("", "e14shard")
			if err != nil {
				panic(err)
			}
			defer os.RemoveAll(dir)
			scfg := engCfg
			scfg.Durability = adb.DurabilityWAL
			eng, err = adb.Restore(scfg, dir)
			if err != nil {
				panic(err)
			}
		} else {
			eng = adb.NewEngine(engCfg)
		}
		shards[i] = cluster.NewLocalShard(eng)
	}
	front, err := cluster.New(cluster.Config{Shards: shards})
	if err != nil {
		panic(err)
	}
	srv, err := server.New(server.Config{
		Backend:  front,
		MaxConns: cfg.Clients + 8,
	})
	if err != nil {
		panic(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := ln.Addr().String()

	admin, err := client.Dial(addr)
	if err != nil {
		panic(err)
	}
	defer admin.Close()
	// Seed every item and register its rules: a never-violated integrity
	// constraint (stepped against every tentative commit on its shard) and
	// a cold trigger (read-set gated, swept only when its item changes).
	for _, it := range items {
		if _, err := admin.Exec(0, map[string]value.Value{it: value.NewInt(1)}); err != nil {
			panic(err)
		}
		if err := admin.AddConstraint("cap_"+it, fmt.Sprintf("item(%q) < 1000000", it)); err != nil {
			panic(err)
		}
		if err := admin.AddTrigger("hot_"+it, fmt.Sprintf("item(%q) > 999999", it)); err != nil {
			panic(err)
		}
	}

	committers := make([]*client.Client, cfg.Clients)
	for ci := range committers {
		c, err := client.Dial(addr)
		if err != nil {
			panic(err)
		}
		defer c.Close()
		committers[ci] = c
	}
	window := cfg.Window
	if window < 1 {
		window = 1
	}
	per := cfg.Commits / cfg.Clients

	start := time.Now()
	var wg sync.WaitGroup
	for ci := range committers {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c := committers[ci]
			pending := make([]*client.Pending, 0, window)
			flush := func() {
				for _, p := range pending {
					if _, err := p.Wait(); err != nil {
						panic(err)
					}
				}
				pending = pending[:0]
			}
			for i := 0; i < per; i++ {
				it := items[(ci*per+i)%len(items)]
				p := c.Txn().Set(it, value.NewInt(int64(i+2))).Go()
				pending = append(pending, p)
				if len(pending) >= window {
					flush()
				}
			}
			flush()
		}(ci)
	}
	wg.Wait()
	return time.Since(start)
}

// E14Cluster measures horizontal sharding: the same constraint-heavy
// durable workload routed across 1, 2, 4 and 8 in-process shards. Every
// commit steps every constraint on its shard, so partitioning the rule
// table divides the per-commit evaluation cost, and per-shard write-ahead
// logs overlap their group-commit fsyncs; the speedup column is aggregate
// commit throughput relative to the single-shard row.
func E14Cluster(quick bool) Table {
	ncommits, nitems := 400, 160
	if quick {
		ncommits, nitems = 120, 80
	}
	t := Table{
		ID:    "E14",
		Title: "sharded cluster commit throughput",
		Header: []string{"shards", "items", "rules", "commits", "total ms",
			"us/commit", "speedup"},
		Notes: "loopback TCP through the cluster router, in-process durable shards " +
			"(per-shard WAL + group commit in temp dirs), 4 pipelined sessions. Each item " +
			"carries one integrity constraint and one trigger; constraints are stepped " +
			"against every tentative commit on their shard, so the single-shard row pays " +
			"the whole rule table per commit while the 8-shard row pays an eighth and " +
			"overlaps eight WALs' fsyncs. Same workload, same total rule count, every row.",
	}
	var base time.Duration
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := E14Config{
			Shards: shards, Items: nitems, Commits: ncommits,
			Clients: 4, Window: 16, Durable: true,
		}
		// Best of three: durable runs are long enough to damp scheduler
		// noise, but fsync latency still jitters a one-shot sample.
		dur := E14RunConfig(cfg)
		for rep := 1; rep < 3; rep++ {
			if d := E14RunConfig(cfg); d < dur {
				dur = d
			}
		}
		if shards == 1 {
			base = dur
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(shards), fmt.Sprint(nitems), fmt.Sprint(2 * nitems),
			fmt.Sprint(ncommits), fmtMs(dur), fmtDur(dur, ncommits),
			fmt.Sprintf("%.1fx", float64(base)/float64(dur)),
		})
	}
	return t
}
