package vtime

import (
	"math/rand"
	"testing"

	"ptlactive/internal/history"
	"ptlactive/internal/naive"
	"ptlactive/internal/query"
	"ptlactive/internal/value"
	"ptlactive/internal/workload"
)

// TestMonitorMatchesScratch is the checkpoint-replay correctness property:
// after every store operation, the set of instants the tentative monitor
// has reported fired must equal the satisfied instants of the current
// committed history computed from scratch by the naive evaluator.
func TestMonitorMatchesScratch(t *testing.T) {
	reg := query.NewRegistry()
	conds := []string{
		`item("a") > 60`,
		`previously (item("a") > 80)`,
		`[x <- item("a")] previously <= 5 (item("a") > x + 20)`,
		`throughout <= 4 (item("a") >= 0)`,
	}
	iters := 20
	if testing.Short() {
		iters = 5
	}
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(6000 + seed)))
		ops := workload.Retro(rng, 15, 6, 0.25)
		cond := mustParse(t, conds[seed%len(conds)])
		base := history.EmptyDB().With("a", value.NewInt(0))
		store := NewStore(base, 0, 6)
		m, err := NewMonitor(store, reg, cond, Tentative)
		if err != nil {
			t.Fatal(err)
		}
		reported := map[int64]bool{}
		for opIdx, op := range ops {
			var err error
			switch op.Op {
			case "begin":
				err = store.Begin(op.Txn)
			case "post":
				err = store.Post(op.Txn, op.Item, op.V, op.Valid, op.At)
			case "commit":
				err = store.Commit(op.Txn, op.At)
			case "abort":
				err = store.Abort(op.Txn, op.At)
			}
			if err != nil {
				t.Fatalf("seed %d op %d: %v", seed, opIdx, err)
			}
			fs, err := m.Poll()
			if err != nil {
				t.Fatalf("seed %d op %d: poll: %v", seed, opIdx, err)
			}
			for _, f := range fs {
				if reported[f.Time] {
					t.Fatalf("seed %d: instant %d reported twice", seed, f.Time)
				}
				reported[f.Time] = true
			}
			// From-scratch reference over the current committed history.
			h := store.CommittedAt(store.Now())
			nv := naive.New(reg, h, nil)
			for i := 0; i < h.Len(); i++ {
				want, err := nv.Sat(i, cond, nil)
				if err != nil {
					t.Fatalf("seed %d: naive: %v", seed, err)
				}
				ts := h.At(i).TS
				if want && !reported[ts] {
					t.Fatalf("seed %d op %d (%s): satisfied instant %d not reported\ncond: %s",
						seed, opIdx, op.Op, ts, cond)
				}
			}
			// Note: reported instants that are no longer satisfied are
			// legitimate — a retroactive change can invalidate a past
			// tentative firing; the paper's tentative triggers act on
			// values that "remain tentative forever".
		}
	}
}

// TestMonitorReplayIsIncremental: the monitor's evaluator steps stay far
// below the quadratic from-scratch count, because checkpoints confine
// replay to the spliced suffix.
func TestMonitorReplayIsIncremental(t *testing.T) {
	reg := query.NewRegistry()
	base := history.EmptyDB().With("a", value.NewInt(0))
	store := NewStore(base, 0, 2) // small delay: splices stay near the end
	m, err := NewMonitor(store, reg, mustParse(t, `previously (item("a") > 90)`), Tentative)
	if err != nil {
		t.Fatal(err)
	}
	n := 150
	scratchSteps := 0
	for i := 1; i <= n; i++ {
		ts := int64(i * 3)
		id := int64(i)
		if err := store.Begin(id); err != nil {
			t.Fatal(err)
		}
		back := int64(i % 3)
		if err := store.Post(id, "a", value.NewInt(int64(i%97)), ts-back, ts); err != nil {
			t.Fatal(err)
		}
		if err := store.Commit(id, ts); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Poll(); err != nil {
			t.Fatal(err)
		}
		scratchSteps += store.CommittedAt(store.Now()).Len()
	}
	if m.EvalSteps() >= scratchSteps/3 {
		t.Fatalf("monitor used %d steps; from-scratch would use %d — replay not incremental",
			m.EvalSteps(), scratchSteps)
	}
}

// TestDefiniteNeverRetracts: instants reported by a definite monitor are
// final — subsequent retroactive activity (which the max-delay bound
// confines to newer instants) can never make a reported instant
// unsatisfied.
func TestDefiniteNeverRetracts(t *testing.T) {
	reg := query.NewRegistry()
	for seed := 0; seed < 15; seed++ {
		rng := rand.New(rand.NewSource(int64(6500 + seed)))
		ops := workload.Retro(rng, 20, 4, 0.2)
		cond := mustParse(t, `item("a") > 50`)
		base := history.EmptyDB().With("a", value.NewInt(0))
		store := NewStore(base, 0, 4)
		m, err := NewMonitor(store, reg, cond, Definite)
		if err != nil {
			t.Fatal(err)
		}
		reported := map[int64]bool{}
		for _, op := range ops {
			switch op.Op {
			case "begin":
				_ = store.Begin(op.Txn)
			case "post":
				_ = store.Post(op.Txn, op.Item, op.V, op.Valid, op.At)
			case "commit":
				_ = store.Commit(op.Txn, op.At)
			case "abort":
				_ = store.Abort(op.Txn, op.At)
			}
			fs, err := m.Poll()
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range fs {
				reported[f.Time] = true
			}
		}
		// Final check: every definite-reported instant is satisfied in the
		// final committed history.
		h := store.CommittedAt(Infinity)
		nv := naive.New(reg, h, nil)
		for i := 0; i < h.Len(); i++ {
			ts := h.At(i).TS
			if !reported[ts] {
				continue
			}
			ok, err := nv.Sat(i, cond, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("seed %d: definite firing at %d was retracted by later activity", seed, ts)
			}
		}
	}
}
