package vtime

import (
	"encoding/json"
	"testing"

	"ptlactive/internal/history"
	"ptlactive/internal/value"
)

// driveStore builds a store with retroactive updates, an abort, and a
// still-pending transaction — every structural feature a snapshot must
// carry.
func driveStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore(history.EmptyDB().With("a", value.NewInt(0)), 0, 10)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Begin(1))
	must(s.Post(1, "a", value.NewInt(5), 2, 3))
	must(s.Commit(1, 4))
	must(s.Begin(2))
	must(s.Post(2, "a", value.NewInt(7), 1, 5)) // retroactive
	must(s.Abort(2, 6))
	must(s.Begin(3))
	must(s.Post(3, "b", value.NewString("x"), 7, 8))
	must(s.Commit(3, 9))
	must(s.Begin(4))
	must(s.Post(4, "a", value.NewInt(9), 9, 10)) // stays pending
	return s
}

// historiesEqual compares two histories state by state.
func historiesEqual(a, b *history.History) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		sa, sb := a.At(i), b.At(i)
		if sa.TS != sb.TS || !sa.DB.Equal(sb.DB) || sa.Events.Len() != sb.Events.Len() {
			return false
		}
		for _, ev := range sa.Events.Events() {
			if !sb.Events.Contains(ev) {
				return false
			}
		}
	}
	return true
}

func TestStoreSnapshotRoundTrip(t *testing.T) {
	s := driveStore(t)
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through JSON like the on-disk format does.
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded StoreSnapshot
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	r, err := RestoreStore(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	if r.Now() != s.Now() || r.Delta() != s.Delta() || r.Complete() != s.Complete() {
		t.Fatalf("restored now/delta/complete = %d/%d/%t, want %d/%d/%t",
			r.Now(), r.Delta(), r.Complete(), s.Now(), s.Delta(), s.Complete())
	}
	for _, ts := range []int64{0, 2, 4, 6, 9, Infinity} {
		if !historiesEqual(s.CommittedAt(ts), r.CommittedAt(ts)) {
			t.Fatalf("CommittedAt(%d) diverged after restore", ts)
		}
	}
	if !historiesEqual(s.Collapsed(), r.Collapsed()) {
		t.Fatal("Collapsed diverged after restore")
	}
	// The restored store must keep operating: finish the pending txn in
	// both and compare again.
	for _, x := range []*Store{s, r} {
		if err := x.Commit(4, 12); err != nil {
			t.Fatal(err)
		}
	}
	if !historiesEqual(s.CommittedAt(Infinity), r.CommittedAt(Infinity)) {
		t.Fatal("post-restore commit diverged")
	}
}

func TestRestoreStoreRejectsCorrupt(t *testing.T) {
	good, err := driveStore(t).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(fn func(s *StoreSnapshot)) *StoreSnapshot {
		blob, _ := json.Marshal(good)
		var c StoreSnapshot
		_ = json.Unmarshal(blob, &c)
		fn(&c)
		return &c
	}
	cases := map[string]*StoreSnapshot{
		"nil":               nil,
		"no states":         mutate(func(s *StoreSnapshot) { s.States = nil }),
		"ts not increasing": mutate(func(s *StoreSnapshot) { s.States[1].TS = s.States[0].TS }),
		"dup txn":           mutate(func(s *StoreSnapshot) { s.Txns = append(s.Txns, s.Txns[0]) }),
		"bad status":        mutate(func(s *StoreSnapshot) { s.Txns[0].Status = 99 }),
		"unknown txn":       mutate(func(s *StoreSnapshot) { s.Txns = s.Txns[1:] }),
		"bad value":         mutate(func(s *StoreSnapshot) { s.Base["a"] = json.RawMessage(`{"wat":1}`) }),
	}
	for name, snap := range cases {
		if _, err := RestoreStore(snap); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}
