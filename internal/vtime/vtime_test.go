package vtime

import (
	"math/rand"
	"testing"

	"ptlactive/internal/event"
	"ptlactive/internal/history"
	"ptlactive/internal/naive"
	"ptlactive/internal/ptl"
	"ptlactive/internal/ptlgen"
	"ptlactive/internal/query"
	"ptlactive/internal/value"
)

func mustParse(t *testing.T, src string) ptl.Formula {
	t.Helper()
	f, err := ptl.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return f
}

func TestStoreLifecycleErrors(t *testing.T) {
	s := NewStore(history.EmptyDB(), 0, 10)
	if err := s.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(1); err == nil {
		t.Error("duplicate begin should fail")
	}
	if err := s.Post(2, "a", value.NewInt(1), 1, 1); err == nil {
		t.Error("post on unknown txn should fail")
	}
	if err := s.Post(1, "a", value.NewInt(1), 5, 3); err == nil {
		t.Error("valid time after posting time should fail")
	}
	if err := s.Post(1, "a", value.NewInt(1), 1, 20); err == nil {
		t.Error("exceeding max delay should fail")
	}
	if err := s.Post(1, "a", value.NewInt(1), 4, 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Post(1, "a", value.NewInt(2), 3, 4); err == nil {
		t.Error("posting time before current time should fail")
	}
	if err := s.Commit(1, 6); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1, 7); err == nil {
		t.Error("double commit should fail")
	}
	if err := s.Abort(1, 7); err == nil {
		t.Error("abort after commit should fail")
	}
	_ = s.Begin(2)
	if err := s.Commit(2, 6); err == nil {
		t.Error("commit time collision should fail")
	}
	if !s.Complete() == false { // txn 2 pending
		t.Error("store with pending txn should not be complete")
	}
	if err := s.Abort(2, 8); err != nil {
		t.Fatal(err)
	}
	if !s.Complete() {
		t.Error("store should be complete")
	}
	if cps := s.CommitPoints(); len(cps) != 1 || cps[0] != 6 {
		t.Errorf("CommitPoints = %v", cps)
	}
}

// TestRetroactiveUpdateVisibleAtValidTime reproduces the introduction's
// stock example: the price change commits at 1pm with valid time 12:50.
func TestRetroactiveUpdateVisibleAtValidTime(t *testing.T) {
	base := history.EmptyDB().With("ibm", value.NewFloat(70))
	s := NewStore(base, 0, 100)
	_ = s.Begin(1)
	// Price becomes 72 valid at 50, posted at 60, committed at 60.
	if err := s.Post(1, "ibm", value.NewFloat(72), 50, 60); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1, 60); err != nil {
		t.Fatal(err)
	}
	h := s.CommittedAt(s.Now())
	// At valid time 50 the price is already 72.
	st := h.PrefixAtTime(50)
	last, _ := st.Last()
	if v, _ := last.DB.Get("ibm"); v.AsFloat() != 72 {
		t.Errorf("price at valid time 50 = %v, want 72", v)
	}
	// Before 50 it is 70.
	st = h.PrefixAtTime(49)
	last, _ = st.Last()
	if v, _ := last.DB.Get("ibm"); v.AsFloat() != 70 {
		t.Errorf("price before valid time = %v, want 70", v)
	}
}

// TestUncommittedInvisible: updates appear in committed histories only
// once their transaction commits, and never for aborted transactions.
func TestUncommittedInvisible(t *testing.T) {
	base := history.EmptyDB().With("a", value.NewInt(0))
	s := NewStore(base, 0, Unlimited)
	_ = s.Begin(1)
	_ = s.Post(1, "a", value.NewInt(5), 1, 1)
	h := s.CommittedAt(s.Now())
	last, _ := h.Last()
	if v, _ := last.DB.Get("a"); v.AsInt() != 0 {
		t.Error("uncommitted update visible")
	}
	_ = s.Commit(1, 2)
	h = s.CommittedAt(s.Now())
	last, _ = h.Last()
	if v, _ := last.DB.Get("a"); v.AsInt() != 5 {
		t.Error("committed update invisible")
	}
	// Aborted transaction's updates never appear.
	_ = s.Begin(2)
	_ = s.Post(2, "a", value.NewInt(9), 3, 3)
	_ = s.Abort(2, 4)
	h = s.CommittedAt(Infinity)
	last, _ = h.Last()
	if v, _ := last.DB.Get("a"); v.AsInt() != 5 {
		t.Errorf("aborted update visible: a = %v", v)
	}
}

// TestPaperOnlineOfflineExample is the paper's Section 9.3 example: the
// constraint "whenever u2 occurs it is preceded by u1" with history
// u1, u2, commit-T2, commit-T1 is offline-satisfied but not
// online-satisfied.
func TestPaperOnlineOfflineExample(t *testing.T) {
	base := history.EmptyDB().With("u1", value.NewInt(0)).With("u2", value.NewInt(0))
	s := NewStore(base, 0, Unlimited)
	_ = s.Begin(1) // T1 issues u1
	_ = s.Begin(2) // T2 issues u2
	// u1: item u1 := 1 at valid time 1; u2 at valid time 2.
	if err := s.Post(1, "u1", value.NewInt(1), 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Post(2, "u2", value.NewInt(1), 2, 2); err != nil {
		t.Fatal(err)
	}
	// commit-T2 then commit-T1.
	if err := s.Commit(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1, 4); err != nil {
		t.Fatal(err)
	}
	reg := query.NewRegistry()
	// "whenever u2 occurred, u1 occurred before (or at the same instant)":
	// if u2 has ever been set, then u1 was set at some earlier-or-equal
	// point. Expressed over the item histories:
	c := mustParse(t, `not previously (item("u2") = 1 and not previously item("u1") = 1)`)
	on, err := OnlineSatisfied(s, reg, c)
	if err != nil {
		t.Fatal(err)
	}
	off, err := OfflineSatisfied(s, reg, c)
	if err != nil {
		t.Fatal(err)
	}
	if on {
		t.Error("history should NOT be online-satisfied (u2 committed before u1)")
	}
	if !off {
		t.Error("history SHOULD be offline-satisfied (u1 precedes u2 in valid time)")
	}
	// Theorem 2: on the collapsed history the two notions coincide.
	cs := s.CollapsedStore()
	on2, err := OnlineSatisfied(cs, reg, c)
	if err != nil {
		t.Fatal(err)
	}
	off2, err := OfflineSatisfied(cs, reg, c)
	if err != nil {
		t.Fatal(err)
	}
	if on2 != off2 {
		t.Errorf("Theorem 2 violated on collapsed history: online=%t offline=%t", on2, off2)
	}
}

// TestTheorem2Random: online == offline satisfaction on collapsed
// committed histories, for random schedules and random formulas.
func TestTheorem2Random(t *testing.T) {
	reg := ptlgen.Registry()
	iters := 200
	if testing.Short() {
		iters = 40
	}
	for it := 0; it < iters; it++ {
		rng := rand.New(rand.NewSource(int64(3000 + it)))
		s := randomStore(rng)
		cs := s.CollapsedStore()
		f := randomItemFormula(rng)
		on, err := OnlineSatisfied(cs, reg, f)
		if err != nil {
			t.Fatalf("seed %d: %v", it, err)
		}
		off, err := OfflineSatisfied(cs, reg, f)
		if err != nil {
			t.Fatalf("seed %d: %v", it, err)
		}
		if on != off {
			t.Fatalf("seed %d: Theorem 2 violated: online=%t offline=%t\nformula: %s", it, on, off, f)
		}
	}
}

// randomStore builds a random valid-time execution: a handful of
// transactions posting retroactive integer updates, committing or aborting
// in scrambled order.
func randomStore(rng *rand.Rand) *Store {
	base := history.EmptyDB()
	for _, it := range ptlgen.Items {
		base = base.With(it, value.NewInt(0))
	}
	s := NewStore(base, 0, Unlimited)
	now := int64(1)
	var open []int64
	nextID := int64(1)
	for step := 0; step < 25; step++ {
		switch {
		case len(open) == 0 || rng.Intn(3) == 0:
			_ = s.Begin(nextID)
			open = append(open, nextID)
			nextID++
		case rng.Intn(3) == 0:
			i := rng.Intn(len(open))
			id := open[i]
			open = append(open[:i], open[i+1:]...)
			if rng.Intn(4) == 0 {
				_ = s.Abort(id, now)
			} else {
				for s.Commit(id, now) != nil {
					now++
				}
			}
			now++
		default:
			id := open[rng.Intn(len(open))]
			item := ptlgen.Items[rng.Intn(len(ptlgen.Items))]
			back := int64(rng.Intn(5))
			valid := now - back
			if valid < 1 {
				valid = 1
			}
			_ = s.Post(id, item, value.NewInt(int64(rng.Intn(10))), valid, now)
			now++
		}
	}
	for _, id := range open {
		for s.Commit(id, now) != nil {
			now++
		}
		now++
	}
	return s
}

// randomItemFormula generates closed formulas over the items only (no
// event atoms: collapsed histories relocate updates, and Theorem 2 is
// about database state evolution).
func randomItemFormula(rng *rand.Rand) ptl.Formula {
	g := ptlgen.Formula(rng, 1+rng.Intn(3))
	// Strip event atoms by substituting them with comparisons.
	var strip func(f ptl.Formula) ptl.Formula
	strip = func(f ptl.Formula) ptl.Formula {
		switch x := f.(type) {
		case *ptl.EventAtom:
			return ptl.Compare(value.GE, ptl.Q("item", ptl.CStr("a")), ptl.CInt(int64(rng.Intn(5))))
		case *ptl.Not:
			return &ptl.Not{F: strip(x.F)}
		case *ptl.And:
			return &ptl.And{L: strip(x.L), R: strip(x.R)}
		case *ptl.Or:
			return &ptl.Or{L: strip(x.L), R: strip(x.R)}
		case *ptl.Since:
			return &ptl.Since{L: strip(x.L), R: strip(x.R), Bound: x.Bound}
		case *ptl.Lasttime:
			return &ptl.Lasttime{F: strip(x.F)}
		case *ptl.Previously:
			return &ptl.Previously{F: strip(x.F), Bound: x.Bound}
		case *ptl.Throughout:
			return &ptl.Throughout{F: strip(x.F), Bound: x.Bound}
		case *ptl.Assign:
			return &ptl.Assign{Var: x.Var, Q: x.Q, Body: strip(x.Body)}
		default:
			return f
		}
	}
	return strip(g)
}

// TestTentativeMonitorRetroactiveFiring: a retroactive update can make a
// condition true at a past instant; the tentative monitor must fire for
// it, replaying only from the splice.
func TestTentativeMonitorRetroactiveFiring(t *testing.T) {
	base := history.EmptyDB().With("a", value.NewInt(0))
	s := NewStore(base, 0, 100)
	reg := query.NewRegistry()
	m, err := NewMonitor(s, reg, mustParse(t, `previously (item("a") > 5)`), Tentative)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Begin(1)
	_ = s.Post(1, "a", value.NewInt(3), 10, 10)
	_ = s.Commit(1, 11)
	fs, err := m.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("premature firing: %v", fs)
	}
	// Retroactive: a was actually 7, valid at time 5 (before the first
	// update), posted at 12.
	_ = s.Begin(2)
	_ = s.Post(2, "a", value.NewInt(7), 5, 12)
	_ = s.Commit(2, 13)
	fs, err = m.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) == 0 {
		t.Fatal("retroactive satisfaction missed")
	}
	// The earliest firing is at the retroactive instant 5.
	if fs[0].Time != 5 {
		t.Errorf("first firing at %d, want 5", fs[0].Time)
	}
}

// TestDefiniteMonitorDelaysFiring: definite triggers only see states at
// least Delta old, so firing is delayed by at least Delta.
func TestDefiniteMonitorDelaysFiring(t *testing.T) {
	base := history.EmptyDB().With("a", value.NewInt(0))
	s := NewStore(base, 0, 10)
	reg := query.NewRegistry()
	def, err := NewMonitor(s, reg, mustParse(t, `item("a") > 5`), Definite)
	if err != nil {
		t.Fatal(err)
	}
	tent, err := NewMonitor(s, reg, mustParse(t, `item("a") > 5`), Tentative)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Begin(1)
	_ = s.Post(1, "a", value.NewInt(9), 20, 20)
	_ = s.Commit(1, 21)
	tfs, _ := tent.Poll()
	dfs, _ := def.Poll()
	// a > 5 holds at the update state (20) and the commit state (21).
	if len(tfs) == 0 || tfs[0].Time != 20 {
		t.Fatalf("tentative should fire immediately at 20: %v", tfs)
	}
	if len(dfs) != 0 {
		t.Fatalf("definite fired before the watermark passed: %v", dfs)
	}
	// Advance time past 20 + Delta via another transaction.
	_ = s.Begin(2)
	_ = s.Post(2, "b", value.NewInt(1), 31, 31)
	_ = s.Commit(2, 32)
	dfs, err = def.Poll()
	if err != nil {
		t.Fatal(err)
	}
	// The watermark (32 - 10 = 22) now covers both satisfying states.
	if len(dfs) != 2 || dfs[0].Time != 20 || dfs[1].Time != 21 {
		t.Fatalf("definite firing = %v, want [20 21]", dfs)
	}
}

// TestDefiniteRequiresDelta and other monitor validation.
func TestMonitorValidation(t *testing.T) {
	s := NewStore(history.EmptyDB(), 0, Unlimited)
	reg := query.NewRegistry()
	if _, err := NewMonitor(s, reg, mustParse(t, `true`), Definite); err == nil {
		t.Error("definite monitor without delta should fail")
	}
	if _, err := NewMonitor(s, reg, mustParse(t, `nosuch() > 0`), Tentative); err == nil {
		t.Error("bad formula should fail")
	}
}

// TestTentativeVsDefiniteDivergence reproduces the introduction's claim
// that a trigger can fire with respect to valid time but not transaction
// time: "the stock price remains constant for seven minutes".
func TestTentativeVsDefiniteDivergence(t *testing.T) {
	base := history.EmptyDB().With("price", value.NewFloat(50))
	s := NewStore(base, 0, 100)
	reg := query.NewRegistry()
	// Constant for >= 7 minutes: no change event in the last 7 units and
	// the history is at least 7 long.
	cond := mustParse(t, `not previously <= 7 @update_item("price", T$)`)
	_ = cond
	// Simpler: price unchanged over the window, tested via throughout.
	cond = mustParse(t, `[p <- item("price")] throughout <= 7 (item("price") = p)`)
	m, err := NewMonitor(s, reg, cond, Tentative)
	if err != nil {
		t.Fatal(err)
	}
	// Transaction-time view: changes at 0 and 8 -> constant 8 units.
	// Valid-time view: the change at 8 was valid at 2 -> constant only
	// 6 units on the valid axis up to 8.
	_ = s.Begin(1)
	_ = s.Post(1, "price", value.NewFloat(55), 2, 8)
	_ = s.Commit(1, 8)
	fs, err := m.Poll()
	if err != nil {
		t.Fatal(err)
	}
	// On the valid-time committed history, states are 0 (50) and 2 (55)
	// and 8 (commit, still 55): throughout<=7 at state 8 spans times
	// [1, 8]: price was 55 at 2..8 and 50 at... state 0 is outside the
	// window; at state 2 and 8 price = 55 = p. So it fires at 8 in valid
	// time. In transaction time the price changed at 8 itself, so
	// [p <- price] throughout<=7 (price = p) also holds trivially... the
	// divergence shows on the richer check below.
	_ = fs
	// Directly compare satisfaction on the two axes at time 8:
	vt := s.CommittedAt(Infinity)
	tt := s.Collapsed()
	nv := naiveAt(t, reg, vt, 8, `[p <- item("price")] throughout <= 6 (item("price") = p)`)
	nt := naiveAt(t, reg, tt, 8, `[p <- item("price")] throughout <= 6 (item("price") = p)`)
	// Valid time: over (2..8] the price is constant 55 -> true.
	// Transaction time: the price changed AT 8 (50 until 8) -> the window
	// (2..8] contains both 50 and 55 -> false.
	if !nv {
		t.Error("valid-time: price constant over the last 6 units should hold")
	}
	if nt {
		t.Error("transaction-time: price changed at 8; constancy must fail")
	}
}

func naiveAt(t *testing.T, reg *query.Registry, h *history.History, ts int64, src string) bool {
	t.Helper()
	prefix := h.PrefixAtTime(ts)
	if prefix.Len() == 0 {
		t.Fatal("empty prefix")
	}
	ev := naive.New(reg, prefix, nil)
	ok, err := ev.SatLast(mustParse(t, src), nil)
	if err != nil {
		t.Fatal(err)
	}
	return ok
}

// Regression: two transactions committing at the same instant (possible
// only for histories assembled outside Commit's same-instant guard, e.g.
// when merging logs) must collapse deterministically. The sort used to
// order commits by timestamp alone with an unstable sort, so which
// transaction's updates won the collapsed database varied run to run; the
// id tie-break pins it: the higher id applies later and its updates win.
func TestCollapsedEqualCommitTimestampDeterministic(t *testing.T) {
	build := func() *Store {
		s := NewStore(history.EmptyDB(), 0, Unlimited)
		// Begin in an order unrelated to ids so the tie-break is doing the
		// work, not insertion order.
		for _, id := range []int64{2, 1, 3} {
			if err := s.Begin(id); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Post(1, "a", value.NewInt(10), 1, 1); err != nil {
			t.Fatal(err)
		}
		if err := s.Post(2, "a", value.NewInt(20), 2, 2); err != nil {
			t.Fatal(err)
		}
		if err := s.Post(3, "b", value.NewInt(30), 3, 3); err != nil {
			t.Fatal(err)
		}
		// Force the same commit instant for all three, bypassing Commit's
		// collision check the way an externally assembled history would.
		for _, id := range []int64{2, 1, 3} {
			rec := s.txns[id]
			rec.status = Committed
			rec.commit = 5
			st := s.stateAt(5)
			st.events = append(st.events, event.New(event.TransactionCommit, value.NewInt(id)))
		}
		s.now = 5
		return s
	}

	ref := build().Collapsed()
	last, ok := ref.Last()
	if !ok {
		t.Fatal("collapsed history is empty")
	}
	// Txn 2 has the higher id among the writers of "a", so its update
	// applies later and wins.
	if v, ok := last.DB.Get("a"); !ok || v.AsInt() != 20 {
		t.Fatalf(`collapsed "a" = %v, want 20 (txn 2 wins the tie)`, v)
	}
	if v, ok := last.DB.Get("b"); !ok || v.AsInt() != 30 {
		t.Fatalf(`collapsed "b" = %v, want 30`, v)
	}
	for i := 0; i < 20; i++ {
		h := build().Collapsed()
		if h.Len() != ref.Len() {
			t.Fatalf("collapsed length varies: %d vs %d", h.Len(), ref.Len())
		}
		got, _ := h.Last()
		if !got.DB.Equal(last.DB) {
			t.Fatalf("collapsed database varies across runs: %v vs %v", got.DB, last.DB)
		}
	}
}
