package vtime

import (
	"encoding/json"
	"fmt"
	"sort"

	"ptlactive/internal/histio"
	"ptlactive/internal/history"
	"ptlactive/internal/value"
)

// This file serializes a valid-time store for the durability subsystem:
// the structural state — base database, the valid-time axis with its
// updates and events, and the transaction table — round-trips exactly, so
// CommittedAt and Collapsed views after recovery equal the uninterrupted
// store's. Updates are stored both per state and per transaction because
// the cross-transaction posting order is not reconstructible from either
// side alone.

// UpdateSnapshot is one retroactive write in wire form.
type UpdateSnapshot struct {
	Txn   int64           `json:"txn"`
	Item  string          `json:"item"`
	V     json.RawMessage `json:"v"`
	Valid int64           `json:"valid"`
}

// StateSnapshot is one instant on the valid-time axis.
type StateSnapshot struct {
	TS      int64               `json:"ts"`
	Updates []UpdateSnapshot    `json:"updates,omitempty"`
	Events  [][]json.RawMessage `json:"events,omitempty"`
}

// TxnSnapshot is one transaction record; Updates are in posting order.
type TxnSnapshot struct {
	ID      int64            `json:"id"`
	Status  int              `json:"status"`
	Commit  int64            `json:"commit,omitempty"`
	Updates []UpdateSnapshot `json:"updates,omitempty"`
}

// StoreSnapshot is the wire form of a whole store. Txns are in begin
// order.
type StoreSnapshot struct {
	Base   map[string]json.RawMessage `json:"base"`
	States []StateSnapshot            `json:"states"`
	Txns   []TxnSnapshot              `json:"txns,omitempty"`
	Now    int64                      `json:"now"`
	Delta  int64                      `json:"delta"`
}

func encodeUpdates(ups []Update) ([]UpdateSnapshot, error) {
	out := make([]UpdateSnapshot, 0, len(ups))
	for _, u := range ups {
		raw, err := histio.EncodeValue(u.V)
		if err != nil {
			return nil, fmt.Errorf("vtime: update %s: %w", u.Item, err)
		}
		out = append(out, UpdateSnapshot{Txn: u.Txn, Item: u.Item, V: raw, Valid: u.Valid})
	}
	return out, nil
}

func decodeUpdates(ups []UpdateSnapshot) ([]Update, error) {
	out := make([]Update, 0, len(ups))
	for _, u := range ups {
		v, err := histio.DecodeValue(u.V)
		if err != nil {
			return nil, fmt.Errorf("vtime: update %s: %w", u.Item, err)
		}
		out = append(out, Update{Txn: u.Txn, Item: u.Item, V: v, Valid: u.Valid})
	}
	return out, nil
}

// Snapshot serializes the store's full structural state.
func (s *Store) Snapshot() (*StoreSnapshot, error) {
	items := map[string]json.RawMessage{}
	var encErr error
	s.base.Range(func(name string, v value.Value) bool {
		raw, err := histio.EncodeValue(v)
		if err != nil {
			encErr = fmt.Errorf("vtime: base item %s: %w", name, err)
			return false
		}
		items[name] = raw
		return true
	})
	if encErr != nil {
		return nil, encErr
	}
	snap := &StoreSnapshot{Base: items, Now: s.now, Delta: s.delta}
	for _, st := range s.states {
		ups, err := encodeUpdates(st.updates)
		if err != nil {
			return nil, err
		}
		evs, err := histio.EncodeEvents(st.events)
		if err != nil {
			return nil, err
		}
		snap.States = append(snap.States, StateSnapshot{TS: st.ts, Updates: ups, Events: evs})
	}
	for _, id := range s.order {
		rec := s.txns[id]
		ups, err := encodeUpdates(rec.updates)
		if err != nil {
			return nil, err
		}
		snap.Txns = append(snap.Txns, TxnSnapshot{ID: rec.id, Status: int(rec.status), Commit: rec.commit, Updates: ups})
	}
	return snap, nil
}

// RestoreStore rebuilds a store from its snapshot, validating the
// structural invariants a live store maintains.
func RestoreStore(snap *StoreSnapshot) (*Store, error) {
	if snap == nil {
		return nil, fmt.Errorf("vtime: nil snapshot")
	}
	if len(snap.States) == 0 {
		return nil, fmt.Errorf("vtime: snapshot has no states")
	}
	items, err := histio.DecodeItems(snap.Base)
	if err != nil {
		return nil, fmt.Errorf("vtime: base: %w", err)
	}
	s := &Store{
		base:  history.NewDB(items),
		txns:  map[int64]*txnRec{},
		now:   snap.Now,
		delta: snap.Delta,
	}
	for i, line := range snap.States {
		if i > 0 && line.TS <= snap.States[i-1].TS {
			return nil, fmt.Errorf("vtime: snapshot state %d: timestamp %d not increasing", i, line.TS)
		}
		ups, err := decodeUpdates(line.Updates)
		if err != nil {
			return nil, err
		}
		evs, err := histio.DecodeEvents(line.Events)
		if err != nil {
			return nil, err
		}
		s.states = append(s.states, vstate{ts: line.TS, updates: ups, events: evs})
	}
	for _, t := range snap.Txns {
		if _, dup := s.txns[t.ID]; dup {
			return nil, fmt.Errorf("vtime: snapshot: duplicate transaction %d", t.ID)
		}
		status := TxnStatus(t.Status)
		switch status {
		case Pending, Committed, Aborted:
		default:
			return nil, fmt.Errorf("vtime: snapshot: transaction %d has unknown status %d", t.ID, t.Status)
		}
		ups, err := decodeUpdates(t.Updates)
		if err != nil {
			return nil, err
		}
		s.txns[t.ID] = &txnRec{id: t.ID, status: status, commit: t.Commit, updates: ups}
		s.order = append(s.order, t.ID)
	}
	// Every state-level update must reference a known transaction.
	for _, st := range s.states {
		for _, u := range st.updates {
			if _, ok := s.txns[u.Txn]; !ok {
				return nil, fmt.Errorf("vtime: snapshot: update at %d references unknown transaction %d", st.ts, u.Txn)
			}
		}
	}
	if !sort.SliceIsSorted(s.states, func(i, j int) bool { return s.states[i].ts < s.states[j].ts }) {
		return nil, fmt.Errorf("vtime: snapshot states out of order")
	}
	return s, nil
}
