// Package vtime implements the valid-time system model of Section 9: a
// history whose database changes occur at the *valid time* of each update,
// which may precede the (transaction) time at which the update is posted
// and committed. It provides committed histories at a time t, collapsed
// committed histories (Theorem 2), tentative and definite trigger
// monitors with maximum delay Delta (Section 9.2), and the online/offline
// satisfaction notions for temporal integrity constraints (Section 9.3).
package vtime

import (
	"fmt"
	"math"
	"sort"

	"ptlactive/internal/event"
	"ptlactive/internal/history"
	"ptlactive/internal/retain"
	"ptlactive/internal/value"
)

// TxnStatus tracks a transaction's lifecycle.
type TxnStatus int

const (
	// Pending transactions have begun and not yet resolved.
	Pending TxnStatus = iota
	// Committed transactions contribute their updates to committed
	// histories.
	Committed
	// Aborted transactions are ignored entirely ("it does not make sense
	// to fire a trigger based on updates that will be aborted").
	Aborted
)

// Update is a single retroactive database write: item := v at valid time
// Valid, issued by transaction Txn.
type Update struct {
	Txn   int64
	Item  string
	V     value.Value
	Valid int64
}

// txnRec tracks one transaction.
type txnRec struct {
	id      int64
	status  TxnStatus
	commit  int64 // commit (transaction) time when committed
	updates []Update
}

// vstate is one instant on the valid-time axis: the updates taking effect
// there and the events occurring there.
type vstate struct {
	ts      int64
	updates []Update
	events  []event.Event
}

// Store is the valid-time history: update effects are placed at their
// valid times, commit/abort events at their transaction times.
//
// The store keeps updates as per-instant deltas over the base DBState
// rather than materialized states, so a retroactive correction never
// copies the database; the materializing views (CommittedAt, Collapsed)
// build each state from its predecessor via DBState.WithAll, which is
// the structurally-shared persistent map of internal/pmap — a history
// over an n-item database with u total updates materializes in
// O(n + u × log n), not O(states × n).
type Store struct {
	base   history.DBState
	states []vstate // ordered by ts, strictly increasing
	txns   map[int64]*txnRec
	order  []int64 // txn ids in begin order
	now    int64   // latest transaction-time instant seen
	delta  int64   // maximum delay; updates must satisfy valid >= post-delta
	floor  int64   // oldest instant materializing views answer (TruncateBefore)
}

// NewStore creates a store over an initial database state. delta is the
// maximum delay Delta of Section 9.2: every update's valid time must be
// within delta of the time it is posted. A negative delta disables the
// check (no definite values ever).
func NewStore(initial history.DBState, start, delta int64) *Store {
	s := &Store{base: initial, txns: map[int64]*txnRec{}, now: start, delta: delta, floor: start}
	s.states = append(s.states, vstate{ts: start})
	return s
}

// Now returns the latest transaction-time instant.
func (s *Store) Now() int64 { return s.now }

// Delta returns the maximum delay.
func (s *Store) Delta() int64 { return s.delta }

// Begin starts transaction id at the current time. Ids must be unique.
func (s *Store) Begin(id int64) error {
	if _, dup := s.txns[id]; dup {
		return fmt.Errorf("vtime: transaction %d already exists", id)
	}
	s.txns[id] = &txnRec{id: id, status: Pending}
	s.order = append(s.order, id)
	return nil
}

// Post records an update by a pending transaction: item := v valid at
// time valid, posted at (current) time post. The maximum-delay invariant
// post - valid <= delta is enforced; valid times in the future of the
// posting time are rejected.
func (s *Store) Post(txn int64, item string, v value.Value, valid, post int64) error {
	rec, ok := s.txns[txn]
	if !ok {
		return fmt.Errorf("vtime: unknown transaction %d", txn)
	}
	if rec.status != Pending {
		return fmt.Errorf("vtime: transaction %d is not pending", txn)
	}
	if post < s.now {
		return fmt.Errorf("vtime: posting time %d before current time %d", post, s.now)
	}
	if valid > post {
		return fmt.Errorf("vtime: valid time %d after posting time %d", valid, post)
	}
	if s.delta >= 0 && post-valid > s.delta {
		return fmt.Errorf("vtime: retroactive change of %d exceeds maximum delay %d", post-valid, s.delta)
	}
	u := Update{Txn: txn, Item: item, V: v, Valid: valid}
	rec.updates = append(rec.updates, u)
	st := s.stateAt(valid)
	st.updates = append(st.updates, u)
	st.events = append(st.events, event.New(event.UpdateItem, value.NewString(item), value.NewInt(txn)))
	s.now = post
	return nil
}

// stateAt returns the state with the given valid timestamp, splicing a new
// one into order if absent ("otherwise a new system state is added to the
// history with time-stamp v").
func (s *Store) stateAt(ts int64) *vstate {
	i := sort.Search(len(s.states), func(i int) bool { return s.states[i].ts >= ts })
	if i < len(s.states) && s.states[i].ts == ts {
		return &s.states[i]
	}
	s.states = append(s.states, vstate{})
	copy(s.states[i+1:], s.states[i:])
	s.states[i] = vstate{ts: ts}
	return &s.states[i]
}

// Commit commits a transaction at time ts. No two transactions may commit
// at the same instant (Section 2's invariant carries over).
func (s *Store) Commit(txn, ts int64) error {
	rec, ok := s.txns[txn]
	if !ok {
		return fmt.Errorf("vtime: unknown transaction %d", txn)
	}
	if rec.status != Pending {
		return fmt.Errorf("vtime: transaction %d is not pending", txn)
	}
	if ts < s.now {
		return fmt.Errorf("vtime: commit time %d before current time %d", ts, s.now)
	}
	for _, o := range s.txns {
		if o.status == Committed && o.commit == ts {
			return fmt.Errorf("vtime: transaction %d already commits at %d", o.id, ts)
		}
	}
	// The maximum-delay bound must hold at commitment: a committed value
	// becomes definite Delta after its commit, so the commit itself may
	// not change the history more than Delta back (otherwise "definite"
	// states could still change — exactly the retraction the property test
	// TestDefiniteNeverRetracts guards against).
	if s.delta >= 0 {
		for _, u := range rec.updates {
			if ts-u.Valid > s.delta {
				return fmt.Errorf("vtime: commit at %d would retroactively change valid time %d, exceeding maximum delay %d",
					ts, u.Valid, s.delta)
			}
		}
	}
	rec.status = Committed
	rec.commit = ts
	st := s.stateAt(ts)
	st.events = append(st.events, event.New(event.TransactionCommit, value.NewInt(txn)))
	s.now = ts
	return nil
}

// Abort aborts a pending transaction at time ts; its updates are
// permanently excluded from committed histories.
func (s *Store) Abort(txn, ts int64) error {
	rec, ok := s.txns[txn]
	if !ok {
		return fmt.Errorf("vtime: unknown transaction %d", txn)
	}
	if rec.status != Pending {
		return fmt.Errorf("vtime: transaction %d is not pending", txn)
	}
	rec.status = Aborted
	st := s.stateAt(ts)
	st.events = append(st.events, event.New(event.TransactionAbort, value.NewInt(txn)))
	if ts > s.now {
		s.now = ts
	}
	return nil
}

// Complete reports whether every started transaction is committed or
// aborted (the paper's "complete history").
func (s *Store) Complete() bool {
	for _, rec := range s.txns {
		if rec.status == Pending {
			return false
		}
	}
	return true
}

// CommitPoints returns the commit times in increasing order.
func (s *Store) CommitPoints() []int64 {
	var out []int64
	for _, id := range s.order {
		if rec := s.txns[id]; rec.status == Committed {
			out = append(out, rec.commit)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Infinity is a time later than every other, for committed histories "at
// time infinity".
const Infinity = int64(math.MaxInt64)

// Unlimited disables the maximum-delay check.
const Unlimited = int64(-1)

// commitInfo pairs a committed transaction with its commit time for the
// collapse procedures.
type commitInfo struct {
	ts  int64
	rec *txnRec
}

// committedInOrder returns the committed transactions sorted by commit
// time, ties broken by transaction id. The stable sort plus the id
// tie-break makes collapsed committed histories deterministic even for
// histories (built outside Commit's same-instant guard) in which two
// transactions commit at the same timestamp: the higher id applies later
// and its updates win.
func (s *Store) committedInOrder() []commitInfo {
	var commits []commitInfo
	for _, id := range s.order {
		rec := s.txns[id]
		if rec.status == Committed {
			commits = append(commits, commitInfo{ts: rec.commit, rec: rec})
		}
	}
	sort.SliceStable(commits, func(i, j int) bool {
		if commits[i].ts != commits[j].ts {
			return commits[i].ts < commits[j].ts
		}
		return commits[i].rec.id < commits[j].rec.id
	})
	return commits
}

// committedIn reports whether the update's transaction has a commit event
// within a prefix ending at time t.
func (s *Store) committedIn(u Update, t int64) bool {
	rec := s.txns[u.Txn]
	return rec != nil && rec.status == Committed && rec.commit <= t
}

// CommittedAt materializes the committed system history at time t
// (Section 9.1): the prefix of states with timestamps <= t, with the
// effects of updates uncommitted in that prefix eliminated. Database
// changes take effect at valid times.
func (s *Store) CommittedAt(t int64) *history.History {
	h := history.New()
	db := s.base
	for _, st := range s.states {
		if st.ts > t {
			break
		}
		var evs []event.Event
		var changed map[string]value.Value
		for _, u := range st.updates {
			if s.committedIn(u, t) {
				if changed == nil {
					changed = map[string]value.Value{}
				}
				changed[u.Item] = u.V
			}
		}
		for _, ev := range st.events {
			// Strip update events of uncommitted transactions and commit
			// events beyond t (none, since st.ts <= t).
			if ev.Name == event.UpdateItem && len(ev.Args) == 2 {
				txn := ev.Args[1].AsInt()
				if !s.committedIn(Update{Txn: txn}, t) {
					continue
				}
			}
			if ev.Name == event.TransactionAbort {
				continue // aborted transactions are ignored entirely
			}
			evs = append(evs, ev)
		}
		db = db.WithAll(changed)
		// In the valid-time model the database changes at update instants,
		// so the history invariant "changes only at commits" does not
		// apply; build states directly.
		h2 := history.SystemState{DB: db, Events: event.NewSet(evs...), TS: st.ts}
		appendLoose(h, h2)
	}
	return h
}

// Collapsed returns the collapsed committed history (Section 9.3): the
// committed system history at infinity with every database change moved
// from its update (valid) time to its transaction's commit time — i.e.
// the transaction-time view of the same execution. Theorem 2 states that
// online and offline satisfaction coincide on this history.
func (s *Store) Collapsed() *history.History {
	// Gather commit times and sort states by ts as usual; each state's db
	// reflects all updates of transactions committed at or before it.
	commits := s.committedInOrder()

	h := history.New()
	db := s.base
	ci := 0
	for _, st := range s.states {
		var evs []event.Event
		for _, ev := range st.events {
			if ev.Name == event.TransactionAbort {
				continue
			}
			if ev.Name == event.UpdateItem && len(ev.Args) == 2 {
				txn := ev.Args[1].AsInt()
				if rec := s.txns[txn]; rec == nil || rec.status != Committed {
					continue
				}
			}
			evs = append(evs, ev)
		}
		for ci < len(commits) && commits[ci].ts <= st.ts {
			changed := map[string]value.Value{}
			// Later valid times win within one transaction.
			ups := append([]Update(nil), commits[ci].rec.updates...)
			sort.SliceStable(ups, func(i, j int) bool { return ups[i].Valid < ups[j].Valid })
			for _, u := range ups {
				changed[u.Item] = u.V
			}
			db = db.WithAll(changed)
			ci++
		}
		appendLoose(h, history.SystemState{DB: db, Events: event.NewSet(evs...), TS: st.ts})
	}
	return h
}

// CollapsedStore rebuilds the store's execution in the transaction-time
// view: every committed transaction's updates are re-posted with valid
// time equal to the commit time. Theorem 2 is checked by comparing online
// and offline satisfaction on the result.
func (s *Store) CollapsedStore() *Store {
	out := NewStore(s.base, s.states[0].ts, Unlimited)
	for _, c := range s.committedInOrder() {
		if err := out.Begin(c.rec.id); err != nil {
			panic(err)
		}
		ups := append([]Update(nil), c.rec.updates...)
		sort.SliceStable(ups, func(i, j int) bool { return ups[i].Valid < ups[j].Valid })
		for _, u := range ups {
			if err := out.Post(c.rec.id, u.Item, u.V, c.ts, c.ts); err != nil {
				panic(err)
			}
		}
		if err := out.Commit(c.rec.id, c.ts); err != nil {
			panic(err)
		}
	}
	return out
}

// appendLoose appends without the transaction-time invariants (valid-time
// histories legitimately change the database between commits).
func appendLoose(h *history.History, st history.SystemState) {
	h.AppendUnchecked(st)
}

// Floor returns the oldest instant the materializing views still answer:
// the store's start, or the cut of the latest TruncateBefore.
func (s *Store) Floor() int64 { return s.floor }

// CommittedAtChecked is CommittedAt with a typed refusal for prefixes the
// store has truncated away: t below the floor wraps
// retain.ErrHistoryTruncated instead of silently materializing a history
// whose early states were folded into the base.
func (s *Store) CommittedAtChecked(t int64) (*history.History, error) {
	if t < s.floor {
		return nil, fmt.Errorf("vtime: committed history at %d unavailable (floor is %d): %w",
			t, s.floor, retain.ErrHistoryTruncated)
	}
	return s.CommittedAt(t), nil
}

// TruncateBefore folds the valid-time states older than t into the base
// database state and discards them, bounding the store's resident history
// the way the engine's retention policy bounds aux relations. It requires
// a complete history (every transaction resolved): a pending transaction
// could still commit or abort updates sitting in the fold region.
//
// The effective cut can be earlier than t: a committed transaction whose
// commit time is at or after the cut may hold retroactive updates below
// it, and folding those would bake them into views at times before the
// commit. The cut retreats below every such update (the maximum-delay
// bound keeps this retreat at most delta), so every materializing view at
// or after the returned cut is unchanged by the truncation. The cut never
// retreats below the current floor.
//
// The fold preserves the committed-history views (CommittedAt and the
// monitors built on them). The collapse procedures (Collapsed,
// CollapsedStore) re-order the folded prefix by commit time, which the
// base cannot represent; run them before truncating if the whole-history
// transaction-time view is needed.
func (s *Store) TruncateBefore(t int64) (int64, error) {
	if !s.Complete() {
		return s.floor, fmt.Errorf("vtime: truncate of an incomplete history (pending transactions)")
	}
	cut := t
	for {
		prev := cut
		for _, rec := range s.txns {
			if rec.status != Committed || rec.commit < cut {
				continue
			}
			for _, u := range rec.updates {
				if u.Valid < cut {
					cut = u.Valid
				}
			}
		}
		if cut == prev {
			break
		}
	}
	if cut < s.floor {
		cut = s.floor
	}
	// Fold: apply the committed updates of each dropped state to the base
	// in state order, batched per state exactly as CommittedAt batches
	// them, so the remaining suffix materializes identically. Always keep
	// at least one state so the views stay non-empty.
	kept := 0
	for kept < len(s.states)-1 && s.states[kept].ts < cut {
		st := s.states[kept]
		var changed map[string]value.Value
		for _, u := range st.updates {
			if rec := s.txns[u.Txn]; rec != nil && rec.status == Committed {
				if changed == nil {
					changed = map[string]value.Value{}
				}
				changed[u.Item] = u.V
			}
		}
		s.base = s.base.WithAll(changed)
		kept++
	}
	if kept == 0 {
		return cut, nil
	}
	s.states = append([]vstate(nil), s.states[kept:]...)
	// Transactions that committed below the cut have every update below it
	// (valid <= commit) and are fully folded; drop their records so the
	// collapse procedures do not re-apply them.
	liveOrder := s.order[:0]
	for _, id := range s.order {
		rec := s.txns[id]
		dead := rec.status == Aborted ||
			(rec.status == Committed && rec.commit < cut)
		if dead {
			delete(s.txns, id)
			continue
		}
		liveOrder = append(liveOrder, id)
	}
	s.order = liveOrder
	if cut > s.floor {
		s.floor = cut
	}
	return cut, nil
}
