package vtime

import (
	"errors"
	"testing"

	"ptlactive/internal/history"
	"ptlactive/internal/retain"
	"ptlactive/internal/value"
)

// truncStore builds a complete valid-time history with a retroactive
// correction: txn 4 commits at 13 but writes a value valid at 7.
func truncStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore(history.EmptyDB(), 0, 10)
	post := func(txn int64, item string, v int64, valid, at int64) {
		t.Helper()
		if err := s.Post(txn, item, value.NewInt(v), valid, at); err != nil {
			t.Fatal(err)
		}
	}
	commit := func(txn, ts int64) {
		t.Helper()
		if err := s.Commit(txn, ts); err != nil {
			t.Fatal(err)
		}
	}
	for id := int64(1); id <= 4; id++ {
		if err := s.Begin(id); err != nil {
			t.Fatal(err)
		}
	}
	post(1, "a", 1, 1, 1)
	commit(1, 2)
	post(2, "a", 2, 3, 3)
	commit(2, 4)
	post(3, "b", 7, 5, 5)
	commit(3, 6)
	post(4, "a", 9, 7, 12) // retroactive: valid 7, committed 13
	commit(4, 13)
	if !s.Complete() {
		t.Fatal("store should be complete")
	}
	return s
}

// TestTruncateBeforePreservesSuffixViews: truncation folds the dropped
// prefix into the base so that every state at or after the returned cut
// materializes exactly as before, and reads below the new floor are
// refused with the typed sentinel.
func TestTruncateBeforePreservesSuffixViews(t *testing.T) {
	s := truncStore(t)
	before := s.CommittedAt(Infinity)

	cut, err := s.TruncateBefore(5)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 5 {
		t.Fatalf("cut = %d, want 5 (no retro update below it)", cut)
	}
	if s.Floor() != 5 {
		t.Fatalf("Floor = %d, want 5", s.Floor())
	}

	after := s.CommittedAt(Infinity)
	if after.Len() >= before.Len() {
		t.Fatalf("truncation dropped nothing: %d -> %d states", before.Len(), after.Len())
	}
	// The surviving states must match the tail of the pre-truncation view
	// state for state: same timestamps, same database values.
	off := before.Len() - after.Len()
	for i := 0; i < after.Len(); i++ {
		sa, sb := after.At(i), before.At(off+i)
		if sa.TS != sb.TS || !sa.DB.Equal(sb.DB) {
			t.Fatalf("state %d diverged after truncation: ts %d/%d db %v/%v",
				i, sa.TS, sb.TS, sa.DB, sb.DB)
		}
	}

	if _, err := s.CommittedAtChecked(3); err == nil {
		t.Fatal("read below the floor succeeded")
	} else if !errors.Is(err, retain.ErrHistoryTruncated) {
		t.Fatalf("error %v does not match ErrHistoryTruncated", err)
	}
	if _, err := s.CommittedAtChecked(5); err != nil {
		t.Fatalf("read at the floor refused: %v", err)
	}
}

// TestTruncateCutRetreatsBelowRetroactiveUpdates: asking for a cut above
// a committed-later retroactive update must retreat below the update's
// valid time — folding it would bake a correction into views taken
// before its transaction committed.
func TestTruncateCutRetreatsBelowRetroactiveUpdates(t *testing.T) {
	s := truncStore(t)
	// txn 4 committed at 13 with an update valid at 7: a cut at 10 must
	// retreat to 7.
	cut, err := s.TruncateBefore(10)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 7 {
		t.Fatalf("cut = %d, want retreat to 7", cut)
	}
	// Views from the cut on still materialize: the retro update appears
	// only at t >= its commit time.
	h, err := s.CommittedAtChecked(12)
	if err != nil {
		t.Fatal(err)
	}
	last, _ := h.Last()
	if v, ok := last.DB.Get("a"); !ok || v.AsInt() != 2 {
		t.Fatalf("a at 12 = %v, want 2 (txn 4 not yet committed)", v)
	}
	h, err = s.CommittedAtChecked(Infinity)
	if err != nil {
		t.Fatal(err)
	}
	last, _ = h.Last()
	if v, ok := last.DB.Get("a"); !ok || v.AsInt() != 9 {
		t.Fatalf("a at infinity = %v, want 9 (retro commit applied)", v)
	}
}

// TestTruncateRefusesIncompleteHistory: a pending transaction could
// still commit updates into the fold region, so truncation requires a
// complete history.
func TestTruncateRefusesIncompleteHistory(t *testing.T) {
	s := NewStore(history.EmptyDB(), 0, 10)
	if err := s.Begin(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Post(1, "a", value.NewInt(1), 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.TruncateBefore(1); err == nil {
		t.Fatal("truncate of an incomplete history succeeded")
	}
	if s.Floor() != 0 {
		t.Fatalf("floor moved on a refused truncate: %d", s.Floor())
	}
}

// TestTruncateIsIdempotentAndMonotone: re-truncating at or below the
// floor is a no-op, and successive truncations only advance the floor.
func TestTruncateIsIdempotentAndMonotone(t *testing.T) {
	s := truncStore(t)
	cut1, err := s.TruncateBefore(5)
	if err != nil {
		t.Fatal(err)
	}
	want := s.CommittedAt(Infinity)
	cut2, err := s.TruncateBefore(3)
	if err != nil {
		t.Fatal(err)
	}
	if cut2 > cut1 {
		t.Fatalf("truncate below the floor advanced it: %d -> %d", cut1, cut2)
	}
	got := s.CommittedAt(Infinity)
	if !historiesEqual(want, got) {
		t.Fatal("no-op truncate changed the materialized view")
	}
}
