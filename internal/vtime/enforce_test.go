package vtime

import (
	"errors"
	"testing"

	"ptlactive/internal/history"
	"ptlactive/internal/ptl"
	"ptlactive/internal/query"
	"ptlactive/internal/value"
)

// TestEnforceCommitAcceptsAndRejects: the Section-9.3 procedure commits
// clean transactions and aborts violating ones, leaving no trace of the
// rejected attempt.
func TestEnforceCommitAcceptsAndRejects(t *testing.T) {
	base := history.EmptyDB().With("a", value.NewInt(5))
	s := NewStore(base, 0, 100)
	reg := query.NewRegistry()
	constraints := map[string]ptl.Formula{
		"nonneg": mustParse(t, `item("a") >= 0`),
	}
	_ = s.Begin(1)
	_ = s.Post(1, "a", value.NewInt(3), 1, 1)
	if err := s.EnforceCommit(1, 2, reg, constraints); err != nil {
		t.Fatalf("clean commit rejected: %v", err)
	}
	_ = s.Begin(2)
	_ = s.Post(2, "a", value.NewInt(-1), 3, 3)
	err := s.EnforceCommit(2, 4, reg, constraints)
	if err == nil {
		t.Fatal("violating commit accepted")
	}
	var ve *ViolationError
	if !errors.As(err, &ve) || ve.Constraint != "nonneg" || ve.Txn != 2 {
		t.Fatalf("error = %v", err)
	}
	// The violating update is invisible (its transaction aborted).
	h := s.CommittedAt(Infinity)
	last, _ := h.Last()
	if v, _ := last.DB.Get("a"); v.AsInt() != 3 {
		t.Fatalf("aborted update leaked: a = %v", v)
	}
	// The store remains usable.
	_ = s.Begin(3)
	_ = s.Post(3, "a", value.NewInt(7), 5, 5)
	if err := s.EnforceCommit(3, 6, reg, constraints); err != nil {
		t.Fatalf("post-abort commit rejected: %v", err)
	}
}

// TestEnforceCommitRetroactiveViolation: a retroactive update can violate
// the constraint at an EARLIER commit point; the procedure must detect it
// there ("starting with the one immediately following the earliest update
// of the current transaction").
func TestEnforceCommitRetroactiveViolation(t *testing.T) {
	base := history.EmptyDB().With("a", value.NewInt(0)).With("b", value.NewInt(0))
	s := NewStore(base, 0, 100)
	reg := query.NewRegistry()
	// Constraint: b never exceeds a (evaluated over the valid-time
	// history).
	constraints := map[string]ptl.Formula{
		"b_le_a": mustParse(t, `item("b") <= item("a")`),
	}
	// T1 sets a=5 at valid 10, commits at 11. OK (b=0 <= a=5).
	_ = s.Begin(1)
	_ = s.Post(1, "a", value.NewInt(5), 10, 10)
	if err := s.EnforceCommit(1, 11, reg, constraints); err != nil {
		t.Fatal(err)
	}
	// T2 sets b=3 at valid 12, commits at 13. OK.
	_ = s.Begin(2)
	_ = s.Post(2, "b", value.NewInt(3), 12, 12)
	if err := s.EnforceCommit(2, 13, reg, constraints); err != nil {
		t.Fatal(err)
	}
	// T3 retroactively sets a=1 at valid 9 — making b(3) > a(1) at the
	// commit point 13 (whose prefix now has a=1 overwritten by a=5 at
	// 10... a=5 still holds at 12). The violation would appear only for
	// valid instants >= 12 if a dropped then. So instead: retroactively
	// set a=2 at valid 12 (same instant as b=3): prefix at 13 ends with
	// a=2, b=3 -> violated.
	_ = s.Begin(3)
	_ = s.Post(3, "a", value.NewInt(2), 12, 14)
	err := s.EnforceCommit(3, 15, reg, constraints)
	var ve *ViolationError
	if !errors.As(err, &ve) {
		t.Fatalf("retroactive violation not detected: %v", err)
	}
	if ve.At != 13 && ve.At != 15 {
		t.Fatalf("violation detected at %d, expected an affected commit point", ve.At)
	}
}

func TestEnforceCommitLifecycleErrors(t *testing.T) {
	s := NewStore(history.EmptyDB(), 0, Unlimited)
	reg := query.NewRegistry()
	if err := s.EnforceCommit(9, 1, reg, nil); err == nil {
		t.Error("unknown transaction should fail")
	}
	_ = s.Begin(1)
	if err := s.EnforceCommit(1, 1, reg, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.EnforceCommit(1, 2, reg, nil); err == nil {
		t.Error("double commit should fail")
	}
}

// TestCloneIsolation: mutating a clone must not affect the original.
func TestCloneIsolation(t *testing.T) {
	base := history.EmptyDB().With("a", value.NewInt(0))
	s := NewStore(base, 0, Unlimited)
	_ = s.Begin(1)
	_ = s.Post(1, "a", value.NewInt(5), 1, 1)
	c := s.clone()
	if err := c.Commit(1, 2); err != nil {
		t.Fatal(err)
	}
	if len(s.CommitPoints()) != 0 {
		t.Fatal("clone commit leaked into the original")
	}
	if len(c.CommitPoints()) != 1 {
		t.Fatal("clone commit lost")
	}
	// Original can still commit independently.
	if err := s.Commit(1, 3); err != nil {
		t.Fatal(err)
	}
}
