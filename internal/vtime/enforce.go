package vtime

import (
	"fmt"
	"sort"

	"ptlactive/internal/event"
	"ptlactive/internal/naive"
	"ptlactive/internal/ptl"
	"ptlactive/internal/query"
)

// ViolationError reports a transaction aborted by the Section-9.3
// enforcement procedure.
type ViolationError struct {
	Constraint string
	Txn        int64
	At         int64 // the commit point where the violation was detected
}

// Error describes the violation.
func (e *ViolationError) Error() string {
	return fmt.Sprintf("vtime: transaction %d aborted: constraint %s violated at commit point %d",
		e.Txn, e.Constraint, e.At)
}

// EnforceCommit implements the enforcement procedure of Section 9.3: on a
// commit attempt, evaluate every temporal integrity constraint "at commit
// points in the history, starting with the one immediately following the
// earliest update of the current transaction, and ending with the
// committing transaction. If the condition is violated at any one of these
// points, then the transaction attempting to commit is aborted."
//
// On success the transaction commits at ts. On violation it aborts at ts
// and a *ViolationError identifies the constraint and the violated commit
// point. As the paper notes, this procedure enforces both online and
// offline satisfaction of the resulting history, at the price of possibly
// aborting transactions that offline satisfaction alone would have
// allowed.
func (s *Store) EnforceCommit(txn, ts int64, reg *query.Registry, constraints map[string]ptl.Formula) error {
	rec, ok := s.txns[txn]
	if !ok {
		return fmt.Errorf("vtime: unknown transaction %d", txn)
	}
	if rec.status != Pending {
		return fmt.Errorf("vtime: transaction %d is not pending", txn)
	}
	// Evaluate on a scratch copy that has the transaction committed, so a
	// rejected attempt leaves no trace.
	scratch := s.clone()
	if err := scratch.Commit(txn, ts); err != nil {
		return err
	}
	// The earliest update of the committing transaction; with no updates,
	// only the new commit point itself is checked.
	earliest := ts
	for _, u := range rec.updates {
		if u.Valid < earliest {
			earliest = u.Valid
		}
	}
	var points []int64
	for _, cp := range scratch.CommitPoints() {
		if cp >= earliest {
			points = append(points, cp)
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	h := scratch.CommittedAt(ts)
	names := make([]string, 0, len(constraints))
	for name := range constraints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, cp := range points {
		prefix := h.PrefixAtTime(cp)
		if prefix.Len() == 0 {
			continue
		}
		ev := naive.New(reg, prefix, nil)
		for _, name := range names {
			okc, err := ev.SatLast(constraints[name], nil)
			if err != nil {
				return fmt.Errorf("vtime: constraint %s: %w", name, err)
			}
			if !okc {
				if err := s.Abort(txn, ts); err != nil {
					return err
				}
				return &ViolationError{Constraint: name, Txn: txn, At: cp}
			}
		}
	}
	return s.Commit(txn, ts)
}

// clone returns an independent copy of the store (states and transaction
// records are copied; values are immutable and shared).
func (s *Store) clone() *Store {
	c := &Store{
		base:  s.base,
		txns:  make(map[int64]*txnRec, len(s.txns)),
		order: append([]int64(nil), s.order...),
		now:   s.now,
		delta: s.delta,
	}
	c.states = make([]vstate, len(s.states))
	for i, st := range s.states {
		c.states[i] = vstate{
			ts:      st.ts,
			updates: append([]Update(nil), st.updates...),
			events:  append([]event.Event(nil), st.events...),
		}
	}
	for id, rec := range s.txns {
		cp := *rec
		cp.updates = append([]Update(nil), rec.updates...)
		c.txns[id] = &cp
	}
	return c
}
