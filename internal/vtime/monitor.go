package vtime

import (
	"fmt"

	"ptlactive/internal/core"
	"ptlactive/internal/history"
	"ptlactive/internal/naive"
	"ptlactive/internal/ptl"
	"ptlactive/internal/query"
)

// Mode selects how a valid-time trigger treats tentative values
// (Section 9.2).
type Mode int

const (
	// Tentative triggers act on tentative values: after every change the
	// monitor re-evaluates from the oldest state affected by the change,
	// so retroactive updates can produce firings for past instants.
	Tentative Mode = iota
	// Definite triggers act only on definite values: states strictly more
	// than Delta (the maximum delay) old, which can no longer change.
	// Firing is inherently delayed by more than Delta.
	Definite
)

// Firing is a valid-time trigger firing at a (valid) instant.
type Firing struct {
	Time     int64
	Bindings []core.Binding
}

// Monitor evaluates one PTL condition over a Store's committed history in
// tentative or definite mode. Internally it keeps the incremental
// evaluator plus one checkpoint clone per processed state, so a
// retroactive change replays only the suffix from the change onward — the
// paper's "incrementally performs the evaluation algorithm for each state
// starting with the oldest system state that was updated by the
// transaction".
type Monitor struct {
	store *Store
	mode  Mode
	reg   *query.Registry
	info  *ptl.Info

	// view is the committed history the evaluator has processed, and
	// checkpoints[i] is the evaluator state after processing view state i.
	view        *history.History
	checkpoints []*core.Evaluator
	fresh       func() (*core.Evaluator, error)

	// fired tracks instants already reported, so re-evaluation after a
	// retroactive change reports only new firings.
	fired map[int64]bool
	// evalSteps counts evaluator steps for the E5 benchmark.
	evalSteps int
}

// NewMonitor compiles a condition for valid-time monitoring. Definite
// mode requires the store to have a nonnegative maximum delay.
func NewMonitor(store *Store, reg *query.Registry, condition ptl.Formula, mode Mode) (*Monitor, error) {
	if mode == Definite && store.Delta() < 0 {
		return nil, fmt.Errorf("vtime: definite monitoring needs a maximum delay")
	}
	info, err := ptl.Check(condition, reg)
	if err != nil {
		return nil, err
	}
	m := &Monitor{
		store: store,
		mode:  mode,
		reg:   reg,
		info:  info,
		view:  history.New(),
		fired: map[int64]bool{},
	}
	m.fresh = func() (*core.Evaluator, error) {
		return core.New(info, reg, nil)
	}
	return m, nil
}

// EvalSteps returns the number of evaluator steps performed so far.
func (m *Monitor) EvalSteps() int { return m.evalSteps }

// Poll re-synchronizes the monitor with the store and returns the new
// firings. Call it after posting updates, commits or aborts.
func (m *Monitor) Poll() ([]Firing, error) {
	horizon := m.store.Now()
	if m.mode == Definite {
		// An instant v is definite once no future commit can change it.
		// Commits may still occur at the current instant, and a commit at
		// time tc may change instants back to tc - Delta; so v is final
		// exactly when v < now - Delta, strictly.
		horizon = m.store.Now() - m.store.Delta() - 1
	}
	target := m.store.CommittedAt(m.store.Now()).PrefixAtTime(horizon)

	// Find the longest common prefix of the old view and the target: both
	// timestamps and state content must agree.
	keep := 0
	for keep < m.view.Len() && keep < target.Len() {
		a, b := m.view.At(keep), target.At(keep)
		if a.TS != b.TS || !a.DB.Equal(b.DB) || a.Events.String() != b.Events.String() {
			break
		}
		keep++
	}
	// Restore the checkpoint at the divergence point and replay.
	var ev *core.Evaluator
	var err error
	if keep == 0 {
		ev, err = m.fresh()
		if err != nil {
			return nil, err
		}
	} else {
		ev = m.checkpoints[keep-1].Clone()
	}
	m.checkpoints = m.checkpoints[:keep]
	var out []Firing
	for i := keep; i < target.Len(); i++ {
		st := target.At(i)
		res, err := ev.Step(st)
		m.evalSteps++
		if err != nil {
			return nil, err
		}
		m.checkpoints = append(m.checkpoints, ev.Clone())
		if res.Fired && !m.fired[st.TS] {
			m.fired[st.TS] = true
			out = append(out, Firing{Time: st.TS, Bindings: res.Bindings})
		}
	}
	m.view = target.Clone()
	return out, nil
}

// OnlineSatisfied reports whether the temporal integrity constraint c is
// online-satisfied in the store's (complete) history: at every commit
// point t, c holds at the end of the committed history at time t
// (Section 9.3). Only updates of transactions committed by t are visible.
func OnlineSatisfied(s *Store, reg *query.Registry, c ptl.Formula) (bool, error) {
	for _, t := range s.CommitPoints() {
		h := s.CommittedAt(t)
		if h.Len() == 0 {
			continue
		}
		ev := naive.New(reg, h, nil)
		ok, err := ev.SatLast(c, nil)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// OfflineSatisfied reports whether c is offline-satisfied: with h0 the
// committed history at time infinity (every committed update visible,
// including those committing after t), c holds at every commit point's
// prefix of h0.
func OfflineSatisfied(s *Store, reg *query.Registry, c ptl.Formula) (bool, error) {
	h0 := s.CommittedAt(Infinity)
	for _, t := range s.CommitPoints() {
		prefix := h0.PrefixAtTime(t)
		if prefix.Len() == 0 {
			continue
		}
		ev := naive.New(reg, prefix, nil)
		ok, err := ev.SatLast(c, nil)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}
