// Package agg implements the Section-6.1.1 processing of temporal
// aggregates by rule rewriting: every aggregate f(q; phi; psi) in a rule
// condition is replaced by a reference to a fresh database item F, and two
// maintenance rules are installed — r1 resets F when the starting formula
// phi holds, r2 accumulates the query value when the sampling formula psi
// holds. The paper's worked example rewrites
//
//	(Avg(price(IBM); time = 9AM; update_stocks) > 70) -> A
//
// into three rules over the items CUM_PRICE and TOTAL_UPDATES.
//
// The package also implements the indexed-family construction for
// aggregates with a free variable ("we need to have multiple database
// items, indexed with different values for the free variables"): the
// family is kept as a relation-valued item (key, sum, count, avg) and rule
// conditions access it through membership atoms, which bind the key as a
// rule parameter.
//
// The rewriting is eventually consistent by construction: maintenance
// actions commit one state after the sampled state, so the rewritten rule
// observes the new aggregate value one commit later than the direct
// evaluation of internal/core does. That delay is inherent to the paper's
// construction ("the action part of the rule was committed by the time t")
// and is measured in EXPERIMENTS.md E3.
package agg

import (
	"fmt"

	"ptlactive/internal/adb"
	"ptlactive/internal/history"
	"ptlactive/internal/ptl"
	"ptlactive/internal/value"
)

// counter disambiguates generated item names within one engine.
var itemSeq int

// RewriteCondition replaces every starting-formula aggregate in the
// condition with a database-item reference and installs the maintenance
// rules into the engine. It returns the rewritten condition, to be
// registered as the rule's condition by the caller. Supported aggregate
// functions: sum, count, avg. Windowed aggregates and min/max are not part
// of the paper's rewriting; evaluate them directly with internal/core.
//
// The maintenance rules are installed before the caller registers the
// rewritten rule, so within each sweep resets and accumulations execute
// before the consuming rule's next evaluation.
func RewriteCondition(eng *adb.Engine, ruleName string, condition ptl.Formula) (ptl.Formula, error) {
	r := &rewriter{eng: eng, rule: ruleName}
	out, err := r.formula(condition)
	if err != nil {
		return nil, err
	}
	return out, nil
}

type rewriter struct {
	eng  *adb.Engine
	rule string
	n    int
}

func (r *rewriter) fresh(kind string) string {
	itemSeq++
	r.n++
	return fmt.Sprintf("$agg_%s_%s_%d_%d", r.rule, kind, r.n, itemSeq)
}

func (r *rewriter) formula(f ptl.Formula) (ptl.Formula, error) {
	switch x := f.(type) {
	case *ptl.BoolConst, *ptl.EventAtom, *ptl.Executed:
		return f, nil
	case *ptl.Cmp:
		l, err := r.term(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := r.term(x.R)
		if err != nil {
			return nil, err
		}
		return &ptl.Cmp{Op: x.Op, L: l, R: rr}, nil
	case *ptl.Member:
		elems := make([]ptl.Term, len(x.Elems))
		for i, e := range x.Elems {
			t, err := r.term(e)
			if err != nil {
				return nil, err
			}
			elems[i] = t
		}
		rel, err := r.term(x.Rel)
		if err != nil {
			return nil, err
		}
		return &ptl.Member{Elems: elems, Rel: rel}, nil
	case *ptl.Not:
		inner, err := r.formula(x.F)
		if err != nil {
			return nil, err
		}
		return &ptl.Not{F: inner}, nil
	case *ptl.And:
		l, err := r.formula(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := r.formula(x.R)
		if err != nil {
			return nil, err
		}
		return &ptl.And{L: l, R: rr}, nil
	case *ptl.Or:
		l, err := r.formula(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := r.formula(x.R)
		if err != nil {
			return nil, err
		}
		return &ptl.Or{L: l, R: rr}, nil
	case *ptl.Since:
		l, err := r.formula(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := r.formula(x.R)
		if err != nil {
			return nil, err
		}
		return &ptl.Since{L: l, R: rr, Bound: x.Bound}, nil
	case *ptl.Lasttime:
		inner, err := r.formula(x.F)
		if err != nil {
			return nil, err
		}
		return &ptl.Lasttime{F: inner}, nil
	case *ptl.Previously:
		inner, err := r.formula(x.F)
		if err != nil {
			return nil, err
		}
		return &ptl.Previously{F: inner, Bound: x.Bound}, nil
	case *ptl.Throughout:
		inner, err := r.formula(x.F)
		if err != nil {
			return nil, err
		}
		return &ptl.Throughout{F: inner, Bound: x.Bound}, nil
	case *ptl.Assign:
		q, err := r.term(x.Q)
		if err != nil {
			return nil, err
		}
		body, err := r.formula(x.Body)
		if err != nil {
			return nil, err
		}
		return &ptl.Assign{Var: x.Var, Q: q, Body: body}, nil
	default:
		return nil, fmt.Errorf("agg: unknown formula %T", f)
	}
}

func (r *rewriter) term(t ptl.Term) (ptl.Term, error) {
	switch x := t.(type) {
	case *ptl.Const, *ptl.Var:
		return t, nil
	case *ptl.Call:
		args := make([]ptl.Term, len(x.Args))
		for i, a := range x.Args {
			na, err := r.term(a)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return &ptl.Call{Fn: x.Fn, Args: args}, nil
	case *ptl.Arith:
		l, err := r.term(x.L)
		if err != nil {
			return nil, err
		}
		rr, err := r.term(x.R)
		if err != nil {
			return nil, err
		}
		return &ptl.Arith{Op: x.Op, L: l, R: rr}, nil
	case *ptl.Neg:
		inner, err := r.term(x.X)
		if err != nil {
			return nil, err
		}
		return &ptl.Neg{X: inner}, nil
	case *ptl.Agg:
		return r.rewriteAgg(x)
	default:
		return nil, fmt.Errorf("agg: unknown term %T", t)
	}
}

// rewriteAgg installs r1/r2 for one aggregate occurrence and returns the
// replacement term item("F").
func (r *rewriter) rewriteAgg(a *ptl.Agg) (ptl.Term, error) {
	if a.Window >= 0 {
		return nil, fmt.Errorf("agg: windowed aggregates have no rule rewriting in the paper; evaluate them directly")
	}
	switch a.Fn {
	case ptl.AggSum, ptl.AggCount, ptl.AggAvg:
	default:
		return nil, fmt.Errorf("agg: %s has no rule rewriting (resets cannot be maintained in O(1)); evaluate it directly", a.Fn)
	}
	probe := &ptl.Cmp{Op: value.EQ, L: a.Q, R: ptl.CInt(0)}
	if len(ptl.FreeVars(a.Start)) > 0 || len(ptl.FreeVars(a.Sample)) > 0 || len(ptl.FreeVars(probe)) > 0 {
		return nil, fmt.Errorf("agg: aggregate with free variables needs InstallIndexed")
	}
	sumItem := r.fresh("sum")
	cntItem := r.fresh("count")
	avgItem := r.fresh("avg")
	qTerm := a.Q

	// r1: starting formula -> reset. The value item for avg is deleted so
	// the empty aggregate reads as undefined (Null), matching the direct
	// semantics.
	reset := func(ctx *adb.ActionContext) error {
		tx := ctx.Begin()
		tx.Set(sumItem, value.NewFloat(0))
		tx.Set(cntItem, value.NewInt(0))
		tx.Delete(avgItem)
		// The start state is itself a sampling candidate: when the
		// sampling formula holds at the same state, the accumulate rule
		// (registered after this one) runs next and sees the reset values.
		return tx.Commit(ctx.Now() + 1)
	}
	r1 := fmt.Sprintf("%s$reset%d", r.rule, r.n)
	if err := r.eng.AddTriggerFormula(r1, a.Start, reset); err != nil {
		return nil, fmt.Errorf("agg: installing reset rule: %w", err)
	}

	// r2: sampling formula -> accumulate. Samples before the first reset
	// are ignored (the aggregate is undefined until phi holds), hence the
	// presence check.
	eng := r.eng
	accumulate := func(ctx *adb.ActionContext) error {
		db := ctx.DB()
		s, ok := db.Get(sumItem)
		if !ok {
			return nil // not started yet
		}
		c, _ := db.Get(cntItem)
		qv, err := evalGroundTerm(eng, qTerm)
		if err != nil {
			return err
		}
		if qv.IsNull() {
			return nil
		}
		if !qv.IsNumeric() {
			return fmt.Errorf("agg: aggregate over non-numeric value %s", qv)
		}
		ns := value.NewFloat(s.AsFloat() + qv.AsFloat())
		nc := value.NewInt(c.AsInt() + 1)
		tx := ctx.Begin()
		tx.Set(sumItem, ns)
		tx.Set(cntItem, nc)
		tx.Set(avgItem, value.NewFloat(ns.AsFloat()/float64(nc.AsInt())))
		return tx.Commit(ctx.Now() + 1)
	}
	r2 := fmt.Sprintf("%s$accum%d", r.rule, r.n)
	if err := r.eng.AddTriggerFormula(r2, a.Sample, accumulate); err != nil {
		return nil, fmt.Errorf("agg: installing accumulate rule: %w", err)
	}

	switch a.Fn {
	case ptl.AggSum:
		return ptl.Q("aggval", ptl.CStr(sumItem)), nil
	case ptl.AggCount:
		return ptl.Q("aggval", ptl.CStr(cntItem)), nil
	default: // avg
		return ptl.Q("aggval", ptl.CStr(avgItem)), nil
	}
}

// evalGroundTerm evaluates a ground term against the engine's newest
// state.
func evalGroundTerm(e *adb.Engine, t ptl.Term) (value.Value, error) {
	st, ok := e.History().Last()
	if !ok {
		return value.Value{}, fmt.Errorf("agg: empty history")
	}
	switch x := t.(type) {
	case *ptl.Const:
		return x.V, nil
	case *ptl.Call:
		args := make([]value.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := evalGroundTerm(e, a)
			if err != nil {
				return value.Value{}, err
			}
			args[i] = v
		}
		return e.Registry().Eval(x.Fn, st, args)
	case *ptl.Arith:
		l, err := evalGroundTerm(e, x.L)
		if err != nil {
			return value.Value{}, err
		}
		r, err := evalGroundTerm(e, x.R)
		if err != nil {
			return value.Value{}, err
		}
		if l.IsNull() || r.IsNull() {
			return value.Value{}, nil
		}
		return value.Arith(x.Op, l, r)
	case *ptl.Neg:
		v, err := evalGroundTerm(e, x.X)
		if err != nil || v.IsNull() {
			return value.Value{}, err
		}
		return value.Arith(value.Sub, value.NewInt(0), v)
	default:
		return value.Value{}, fmt.Errorf("agg: term %T is not ground", t)
	}
}

// EnsureAggVal registers the "aggval" query on the engine's registry if it
// is not present: aggval(name) reads a database item but yields the
// undefined value (Null) when the item is absent, so conditions over
// not-yet-started aggregates are simply false. Call it once per engine
// before rules produced by RewriteCondition are registered.
func EnsureAggVal(eng *adb.Engine) error {
	reg := eng.Registry()
	if reg.Has("aggval") {
		return nil
	}
	return reg.Register("aggval", 1, func(st history.SystemState, args []value.Value) (value.Value, error) {
		if args[0].Kind() != value.String {
			return value.Value{}, fmt.Errorf("agg: aggval wants a string item name")
		}
		v, ok := st.GetItem(args[0].AsString())
		if !ok {
			return value.Value{}, nil
		}
		return v, nil
	})
}

// Rewrite is the one-call convenience: ensure the aggval query, rewrite
// the condition, and register the rule.
func Rewrite(eng *adb.Engine, name, condition string, action adb.Action, opts ...adb.RuleOption) error {
	f, err := ptl.Parse(condition)
	if err != nil {
		return err
	}
	if err := EnsureAggVal(eng); err != nil {
		return err
	}
	rw, err := RewriteCondition(eng, name, f)
	if err != nil {
		return err
	}
	return eng.AddTriggerFormula(name, rw, action, opts...)
}

// IndexedSpec describes an indexed aggregate family F(x) maintained as a
// relation item with rows (key, value): one aggregate per index value,
// per the free-variable construction of Section 6.1.1.
type IndexedSpec struct {
	// Item is the relation item to maintain, rows (key, value).
	Item string
	// Fn is sum, count or avg.
	Fn ptl.AggFn
	// SampleEvent is the event whose occurrences are sampling points; the
	// event's first parameter is the index key.
	SampleEvent string
	// Value computes the sampled quantity for a key against the current
	// database (e.g. price(x)); ignored for count.
	Value func(e *adb.Engine, key value.Value) (value.Value, error)
	// Start is a PTL condition (concrete syntax) resetting the whole
	// family; empty means never reset.
	Start string
}

// InstallIndexed installs the maintenance rules for an indexed aggregate
// family. Rule conditions consume the family through membership:
//
//	(X, A) in item("F") and A > 70
//
// which binds the index X and aggregate value A as rule parameters.
func InstallIndexed(eng *adb.Engine, spec IndexedSpec) error {
	if spec.Item == "" || spec.SampleEvent == "" {
		return fmt.Errorf("agg: indexed spec needs Item and SampleEvent")
	}
	switch spec.Fn {
	case ptl.AggSum, ptl.AggCount, ptl.AggAvg:
	default:
		return fmt.Errorf("agg: indexed family for %s is not supported", spec.Fn)
	}
	if spec.Fn != ptl.AggCount && spec.Value == nil {
		return fmt.Errorf("agg: indexed %s needs a Value function", spec.Fn)
	}
	sums := map[string]float64{}
	counts := map[string]int64{}
	keys := map[string]value.Value{}

	publish := func(ctx *adb.ActionContext) error {
		rows := make([][]value.Value, 0, len(keys))
		for k, key := range keys {
			var v value.Value
			switch spec.Fn {
			case ptl.AggSum:
				v = value.NewFloat(sums[k])
			case ptl.AggCount:
				v = value.NewInt(counts[k])
			default:
				v = value.NewFloat(sums[k] / float64(counts[k]))
			}
			rows = append(rows, []value.Value{key, v})
		}
		return ctx.Exec(map[string]value.Value{spec.Item: value.NewRelation(rows)})
	}

	sample := func(ctx *adb.ActionContext) error {
		key, ok := ctx.Param("K$")
		if !ok {
			return fmt.Errorf("agg: indexed sample firing without key")
		}
		k := key.Key()
		keys[k] = key
		if spec.Fn != ptl.AggCount {
			v, err := spec.Value(eng, key)
			if err != nil {
				return err
			}
			if !v.IsNumeric() {
				return fmt.Errorf("agg: indexed aggregate over non-numeric %s", v)
			}
			sums[k] += v.AsFloat()
		}
		counts[k]++
		return publish(ctx)
	}
	cond := &ptl.EventAtom{Name: spec.SampleEvent, Args: []ptl.Term{ptl.V("K$")}}
	if err := eng.AddTriggerFormula(spec.Item+"$sample", cond, sample); err != nil {
		return err
	}
	if spec.Start != "" {
		reset := func(ctx *adb.ActionContext) error {
			sums = map[string]float64{}
			counts = map[string]int64{}
			keys = map[string]value.Value{}
			return ctx.Exec(map[string]value.Value{spec.Item: value.NewRelation(nil)})
		}
		if err := eng.AddTrigger(spec.Item+"$reset", spec.Start, reset); err != nil {
			return err
		}
	}
	return nil
}
