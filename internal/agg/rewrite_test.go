package agg

import (
	"strings"
	"testing"

	"ptlactive/internal/adb"
	"ptlactive/internal/event"
	"ptlactive/internal/history"
	"ptlactive/internal/ptl"
	"ptlactive/internal/query"
	"ptlactive/internal/value"
)

// priceEngine builds an engine with a price item and a price(name) query
// (single-stock for simplicity).
func priceEngine(t *testing.T, initial float64) *adb.Engine {
	t.Helper()
	reg := query.NewRegistry()
	err := reg.Register("price", 1, func(st history.SystemState, args []value.Value) (value.Value, error) {
		v, ok := st.GetItem("price")
		if !ok {
			return value.Value{}, nil
		}
		return v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return adb.NewEngine(adb.Config{
		Registry: reg,
		Initial:  map[string]value.Value{"price": value.NewFloat(initial)},
		Start:    540, // 9AM in minutes, the paper's running example
	})
}

// TestPaperAvgRewrite reproduces the Section-6.1.1 worked example: the
// rule Avg(price(IBM); time = 9AM; update_stocks) > 70 -> A becomes three
// rules over CUM_PRICE and TOTAL_UPDATES items.
func TestPaperAvgRewrite(t *testing.T) {
	e := priceEngine(t, 60)
	var fired []int64
	err := Rewrite(e, "watch",
		`avg(price("IBM"); time = 540; @update_stocks) > 70`,
		func(ctx *adb.ActionContext) error {
			fired = append(fired, ctx.FiredAt)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	// The reset rule fires at the entry state (time = 540); its action
	// commits at 541 initializing the items.
	tick := func(ts int64, price float64) {
		t.Helper()
		err := e.Exec(ts, map[string]value.Value{"price": value.NewFloat(price)},
			event.New("update_stocks"))
		if err != nil {
			t.Fatal(err)
		}
	}
	tick(600, 80) // avg {80} = 80 > 70
	if len(fired) == 0 {
		t.Fatalf("rewritten rule did not fire; firings: %v", e.Firings())
	}
	tick(660, 50) // avg {80, 50} = 65
	// The paper's construction reads the items as maintained so far: at
	// the 660 update the items still reflect avg {80}, so a firing AT the
	// update state is the construction's inherent one-commit lag. Once the
	// maintenance rules commit (<= now), further states must not fire.
	if err := e.Emit(e.Now()+1, event.New("tick")); err != nil {
		t.Fatal(err)
	}
	n := len(fired)
	if err := e.Emit(e.Now()+1, event.New("tick")); err != nil {
		t.Fatal(err)
	}
	if len(fired) != n {
		t.Fatalf("rule fired after maintenance showed avg 65: %v", fired)
	}
	tick(700, 100) // avg {80, 50, 100} = 76.67 > 70
	if err := e.Emit(e.Now()+1, event.New("tick")); err != nil {
		t.Fatal(err)
	}
	if len(fired) <= n {
		t.Fatal("rule should fire again at avg 76.67")
	}
}

// TestRewriteMatchesDirectEvaluation compares the rewritten rule against a
// second engine evaluating the aggregate directly: the rewriting may
// recognize a satisfaction one maintenance commit later, but the sets of
// price updates that satisfy the condition must agree.
func TestRewriteMatchesDirectEvaluation(t *testing.T) {
	mk := func(rewrite bool) (fires map[int64]bool, e *adb.Engine) {
		e = priceEngine(t, 60)
		fires = map[int64]bool{}
		action := func(ctx *adb.ActionContext) error { return nil }
		cond := `sum(price("IBM"); time = 540; @update_stocks) > 200`
		var err error
		if rewrite {
			err = Rewrite(e, "r", cond, action)
		} else {
			err = e.AddTrigger("r", cond, action)
		}
		if err != nil {
			t.Fatal(err)
		}
		prices := []float64{80, 90, 50, 70}
		ts := int64(600)
		for _, p := range prices {
			if err := e.Exec(ts, map[string]value.Value{"price": value.NewFloat(p)}, event.New("update_stocks")); err != nil {
				t.Fatal(err)
			}
			// Neutral state so delayed maintenance is observable.
			if err := e.Emit(ts+5, event.New("tick")); err != nil {
				t.Fatal(err)
			}
			ts += 60
		}
		for _, f := range e.Firings() {
			if f.Rule == "r" {
				fires[f.Time] = true
			}
		}
		return fires, e
	}
	direct, _ := mk(false)
	rewritten, _ := mk(true)
	// Direct fires from the update making the sum exceed 200 (80+90+50 =
	// 220 at the third update). The rewritten engine observes it at the
	// maintenance commit or the neutral state right after — within 6 time
	// units.
	if len(direct) == 0 || len(rewritten) == 0 {
		t.Fatalf("direct fired at %v, rewritten at %v", direct, rewritten)
	}
	var dmin, rmin int64 = 1 << 62, 1 << 62
	for ts := range direct {
		if ts < dmin {
			dmin = ts
		}
	}
	for ts := range rewritten {
		if ts < rmin {
			rmin = ts
		}
	}
	if rmin < dmin || rmin > dmin+6 {
		t.Errorf("first firing: direct %d, rewritten %d (want within (d, d+6])", dmin, rmin)
	}
}

func TestRewriteCount(t *testing.T) {
	e := priceEngine(t, 60)
	err := Rewrite(e, "r", `count(1; time = 540; @update_stocks) >= 3`, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		ts := int64(600 + i*10)
		if err := e.Exec(ts, nil, event.New("update_stocks")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Emit(e.Now()+1, event.New("tick")); err != nil {
		t.Fatal(err)
	}
	var fired bool
	for _, f := range e.Firings() {
		if f.Rule == "r" {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("count rule never fired; firings %v", e.Firings())
	}
}

func TestRewriteRejections(t *testing.T) {
	e := priceEngine(t, 60)
	if err := Rewrite(e, "w", `avg(price("IBM"); window 60; @u) > 1`, nil); err == nil ||
		!strings.Contains(err.Error(), "windowed") {
		t.Errorf("windowed rewrite should be rejected, got %v", err)
	}
	if err := Rewrite(e, "m", `min(price("IBM"); time = 540; @u) > 1`, nil); err == nil ||
		!strings.Contains(err.Error(), "no rule rewriting") {
		t.Errorf("min rewrite should be rejected, got %v", err)
	}
	if err := Rewrite(e, "fv", `sum(price("IBM"); @start(X); @u) > 1`, nil); err == nil ||
		!strings.Contains(err.Error(), "InstallIndexed") {
		t.Errorf("free-variable rewrite should point to InstallIndexed, got %v", err)
	}
	if err := Rewrite(e, "syn", `and and`, nil); err == nil {
		t.Error("syntax error should propagate")
	}
}

// TestInstallIndexed exercises the free-variable construction: the average
// price per stock X, consumed through a membership condition that binds X.
func TestInstallIndexed(t *testing.T) {
	reg := query.NewRegistry()
	prices := map[string]float64{}
	err := reg.Register("curprice", 1, func(st history.SystemState, args []value.Value) (value.Value, error) {
		v, ok := st.GetItem("px_" + args[0].AsString())
		if !ok {
			return value.Value{}, nil
		}
		return v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	e := adb.NewEngine(adb.Config{Registry: reg, Start: 0,
		Initial: map[string]value.Value{"avg_family": value.NewRelation(nil)}})
	err = InstallIndexed(e, IndexedSpec{
		Item:        "avg_family",
		Fn:          ptl.AggAvg,
		SampleEvent: "update_stock",
		Value: func(eng *adb.Engine, key value.Value) (value.Value, error) {
			v, ok := eng.DB().Get("px_" + key.AsString())
			if !ok {
				return value.Value{}, nil
			}
			return v, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var fired []string
	err = e.AddTrigger("overavg", `(X, A) in item("avg_family") and A > 70`,
		func(ctx *adb.ActionContext) error {
			x, _ := ctx.Param("X")
			fired = append(fired, x.AsString())
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	update := func(name string, px float64) {
		t.Helper()
		prices[name] = px
		err := e.Exec(e.Now()+1, map[string]value.Value{"px_" + name: value.NewFloat(px)},
			event.New("update_stock", value.NewString(name)))
		if err != nil {
			t.Fatal(err)
		}
	}
	update("IBM", 80) // avg IBM = 80 -> fires for IBM
	update("XYZ", 50) // avg XYZ = 50 -> no
	update("IBM", 40) // avg IBM = 60 -> no new firing for IBM
	got := map[string]int{}
	for _, x := range fired {
		got[x]++
	}
	if got["IBM"] == 0 {
		t.Fatalf("IBM should have fired: %v (firings %v)", fired, e.Firings())
	}
	if got["XYZ"] != 0 {
		t.Fatalf("XYZ must not fire: %v", fired)
	}
}

func TestInstallIndexedValidation(t *testing.T) {
	e := adb.NewEngine(adb.Config{Start: 0})
	if err := InstallIndexed(e, IndexedSpec{}); err == nil {
		t.Error("empty spec should fail")
	}
	if err := InstallIndexed(e, IndexedSpec{Item: "x", SampleEvent: "e", Fn: "median"}); err == nil {
		t.Error("unknown fn should fail")
	}
	if err := InstallIndexed(e, IndexedSpec{Item: "x", SampleEvent: "e", Fn: ptl.AggSum}); err == nil {
		t.Error("sum without Value should fail")
	}
}

// TestInstallIndexedReset: the family's reset condition clears every key.
func TestInstallIndexedReset(t *testing.T) {
	e := adb.NewEngine(adb.Config{Start: 0,
		Initial: map[string]value.Value{"fam": value.NewRelation(nil)}})
	err := InstallIndexed(e, IndexedSpec{
		Item:        "fam",
		Fn:          ptl.AggCount,
		SampleEvent: "hit",
		Start:       `@reset`,
	})
	if err != nil {
		t.Fatal(err)
	}
	hit := func(k string) {
		t.Helper()
		if err := e.Emit(e.Now()+1, event.New("hit", value.NewString(k))); err != nil {
			t.Fatal(err)
		}
	}
	hit("a")
	hit("a")
	hit("b")
	v, _ := e.DB().Get("fam")
	if v.NumRows() != 2 {
		t.Fatalf("family = %v", v)
	}
	var aCount int64
	for _, row := range v.Rows() {
		if row[0].AsString() == "a" {
			aCount = row[1].AsInt()
		}
	}
	if aCount != 2 {
		t.Fatalf("count(a) = %d", aCount)
	}
	if err := e.Emit(e.Now()+1, event.New("reset")); err != nil {
		t.Fatal(err)
	}
	v, _ = e.DB().Get("fam")
	if v.NumRows() != 0 {
		t.Fatalf("family after reset = %v", v)
	}
	// Counting resumes from zero.
	hit("a")
	v, _ = e.DB().Get("fam")
	if v.NumRows() != 1 || v.Rows()[0][1].AsInt() != 1 {
		t.Fatalf("family after resume = %v", v)
	}
}

// TestRewriteNestedStructure drives the rewriter through every formula and
// term shape: aggregates under temporal operators, inside arithmetic, the
// paper's avg-as-sum/sum division, membership and assignments.
func TestRewriteNestedStructure(t *testing.T) {
	e := priceEngine(t, 60)
	// sum/count division (the paper's expanded average), nested under
	// temporal and boolean structure, with an assignment and negation.
	cond := `[p <- price("IBM")]
	    (((sum(price("IBM"); time = 540; @update_stocks)
	        / count(1; time = 540; @update_stocks) > 70)
	     since (not (0 - sum(price("IBM"); time = 540; @update_stocks) >= 0)))
	    or lasttime previously throughout <= 9 (p > 0 and true))`
	if err := Rewrite(e, "nested", cond, nil); err != nil {
		t.Fatalf("nested rewrite failed: %v", err)
	}
	// Three aggregates -> six maintenance rules + the rewritten rule.
	if got := len(e.RuleNames()); got != 7 {
		t.Fatalf("rules = %v", e.RuleNames())
	}
	for i := 0; i < 4; i++ {
		ts := e.Now() + 10
		err := e.Exec(ts, map[string]value.Value{"price": value.NewFloat(80)}, event.New("update_stocks"))
		if err != nil {
			t.Fatal(err)
		}
	}
	var fired bool
	for _, f := range e.Firings() {
		if f.Rule == "nested" {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("nested rule never fired; firings: %v", e.Firings())
	}
	// Membership and executed survive the walk untouched.
	e2 := adb.NewEngine(adb.Config{Start: 0,
		Initial: map[string]value.Value{"r": value.NewRelation(nil)}})
	if err := Rewrite(e2, "m", `X in item("r") or (executed(m, T) and time = T + 1)`, nil); err != nil {
		t.Fatalf("membership/executed rewrite: %v", err)
	}
}
