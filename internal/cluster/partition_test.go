package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"ptlactive/internal/adb"
)

// TestOwnerTotalAndDeterministic: every key gets exactly one shard in
// range, and two partitioners over the same shard count agree on every
// key — the property repartitioning and routing both lean on.
func TestOwnerTotalAndDeterministic(t *testing.T) {
	p1, p2 := NewPartitioner(8), NewPartitioner(8)
	f := func(key string) bool {
		s := p1.Owner(key)
		return s >= 0 && s < 8 && s == p2.Owner(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRelayNameRoundTrip: relay trigger names must invert exactly for
// any home shard and any event shape (including symbols containing the
// separator), and never collide with non-relay names. The name encodes
// (home, event use) only — no rule — so rules sharing a remote event
// share the relay by construction.
func TestRelayNameRoundTrip(t *testing.T) {
	f := func(home uint8, ev string, arity uint8) bool {
		if ev == "" {
			return true // event symbols are identifiers; skip invalid draws
		}
		use := adb.EventUse{Name: ev, Arity: int(arity % 8)}
		gotHome, gotUse, ok := parseRelayName(relayName(int(home), use))
		return ok && gotHome == int(home) && gotUse == use
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := parseRelayName("ordinary_rule"); ok {
		t.Fatal("non-relay name parsed as relay")
	}
	if _, _, ok := parseRelayName(relayPrefix + "notanint/0/ev"); ok {
		t.Fatal("malformed relay name parsed as relay")
	}
}

// randomCondition builds a random but well-formed rule condition over a
// bounded universe of item and event names.
func randomCondition(rng *rand.Rand) string {
	var terms []string
	nitems := rng.Intn(3)
	for i := 0; i < nitems; i++ {
		terms = append(terms, fmt.Sprintf("item(\"it%d\") > %d", rng.Intn(20), rng.Intn(100)))
	}
	nevents := rng.Intn(3)
	for i := 0; i < nevents; i++ {
		if rng.Intn(2) == 0 {
			terms = append(terms, fmt.Sprintf("@ev%d", rng.Intn(20)))
		} else {
			terms = append(terms, fmt.Sprintf("@evp%d(X%d)", rng.Intn(20), i))
		}
	}
	if len(terms) == 0 {
		terms = append(terms, fmt.Sprintf("item(\"it%d\") > 0", rng.Intn(20)))
	}
	return strings.Join(terms, " and ")
}

// TestPlacementSingleShard: for random analyzable conditions, a
// successful placement puts the rule on exactly one shard — the home
// owns every item of the footprint, and every relay sits on a shard
// other than the home and covers exactly the remotely-owned event uses.
func TestPlacementSingleShard(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 8} {
		p := NewPartitioner(n)
		placed := 0
		for i := 0; i < 500; i++ {
			cond := randomCondition(rng)
			fp, err := adb.ConditionFootprint(cond, nil)
			if err != nil {
				t.Fatalf("footprint(%q): %v", cond, err)
			}
			pl, err := Place(p, fp, false, nil)
			if err != nil {
				continue // cross-shard refusal is the other valid outcome
			}
			placed++
			if pl.Home < 0 || pl.Home >= n {
				t.Fatalf("cond %q: home %d out of range", cond, pl.Home)
			}
			for _, item := range fp.Items {
				if p.Owner(item) != pl.Home {
					t.Fatalf("cond %q: item %q owned by %d but homed on %d",
						cond, item, p.Owner(item), pl.Home)
				}
			}
			remote := map[string]bool{}
			for _, re := range pl.RemoteEvents {
				if re.Shard == pl.Home {
					t.Fatalf("cond %q: relay on the home shard", cond)
				}
				if p.Owner(re.Use.Name) != re.Shard {
					t.Fatalf("cond %q: relay for %q on %d, owner is %d",
						cond, re.Use.Name, re.Shard, p.Owner(re.Use.Name))
				}
				remote[re.Use.Name] = true
			}
			for _, use := range fp.Events {
				if owner := p.Owner(use.Name); owner != pl.Home && !remote[use.Name] {
					t.Fatalf("cond %q: event %q owned remotely by %d but no relay",
						cond, use.Name, owner)
				}
			}
		}
		if n > 1 && placed == 0 {
			t.Fatalf("n=%d: no random condition placed; generator too strict", n)
		}
	}
}

// TestRepartitionDeterministic: placing the same registration set twice
// — fresh partitioner, fresh homes map, same order — yields identical
// placements; and constraints are refused exactly when a trigger with
// the same condition would need a relay.
func TestRepartitionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	conds := make([]string, 40)
	for i := range conds {
		conds[i] = randomCondition(rng)
	}
	place := func() ([]Placement, []bool) {
		p := NewPartitioner(4)
		homes := map[string]int{}
		out := make([]Placement, 0, len(conds))
		oks := make([]bool, 0, len(conds))
		for i, cond := range conds {
			fp, err := adb.ConditionFootprint(cond, nil)
			if err != nil {
				t.Fatalf("footprint(%q): %v", cond, err)
			}
			pl, err := Place(p, fp, false, homes)
			if err != nil {
				out = append(out, Placement{Home: -1})
				oks = append(oks, false)
				continue
			}
			homes[fmt.Sprintf("r%d", i)] = pl.Home
			out = append(out, pl)
			oks = append(oks, true)
		}
		return out, oks
	}
	a, aok := place()
	b, bok := place()
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(aok, bok) {
		t.Fatal("same registration set placed differently on repartition")
	}
}
