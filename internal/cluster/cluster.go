package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ptlactive/internal/adb"
	"ptlactive/internal/event"
	"ptlactive/internal/query"
	"ptlactive/internal/server"
	"ptlactive/internal/server/wire"
	"ptlactive/internal/value"
)

// Config configures a Front.
type Config struct {
	// Shards are the partition owners, in shard-index order. Required,
	// at least one. The front becomes their only mutator; closing the
	// front closes them.
	Shards []Shard
	// Registry supplies the query functions the placement oracle resolves
	// declared read sets against; nil means just the built-ins. It must
	// match the registry the shard engines run.
	Registry *query.Registry
	// Logf, when set, receives router diagnostics.
	Logf func(format string, args ...any)
}

// fanMsg is one fan-in delivery: a shard firing (or gap), or a control
// closure to run at the merge point (subscription syncs, barriers).
type fanMsg struct {
	shard int
	fe    server.FiringEvent
	fn    func()
}

// relayReg tracks one shared relay trigger's registration: the first rule
// needing it registers, later rules wait on done and reuse it. A failed
// registration is removed from the registry so a retry re-registers.
type relayReg struct {
	done chan struct{}
	err  error
}

// Front is the cluster router: it implements server.Backend over N
// shards, so a server.Server in front of it speaks the ordinary wire
// protocol against the whole cluster. Transactions route to the shard
// owning their items and event symbols; rules register where their
// footprint lives; the per-shard firing streams merge — in fan-in
// arrival order, preserving each shard's internal order — into one
// globally sequenced log that subscriptions and firing queries serve.
type Front struct {
	shards []Shard
	part   Partitioner
	reg    *query.Registry
	logf   func(string, ...any)

	// mu guards ruleHomes, rulePending, relays, gapLoss, and the merged
	// firing log.
	mu        sync.Mutex
	ruleHomes map[string]int
	// rulePending reserves rule names whose registration is in flight, so
	// two concurrent GoRule calls with one name cannot both pass the
	// duplicate check; a failed registration releases the reservation.
	rulePending map[string]bool
	// relays registers shared relay triggers once per (home shard, event
	// use), keyed by the relay trigger name (which encodes both).
	relays map[string]*relayReg
	// relaySeen is, per shard, the highest firing-log Seq whose relay
	// forwarding decision has been made (-1 before any). Owned by the
	// fan-in goroutine — no lock. Shard subscriptions are at-least-once
	// (a reconnect re-delivers backlog from the resume point); the
	// watermark pins each relay occurrence to exactly one forward, so
	// redelivery cannot double-fire rules on the home shard.
	relaySeen []int
	// gapLoss counts, per shard, merged-stream entries lost to firing
	// subscription overflow. Any cross-shard relay firings inside a gap
	// were never forwarded — home-shard rules missed those occurrences —
	// so a nonzero count degrades cluster health.
	gapLoss []int
	log     []server.FiringEvent
	nextSeq int

	obs atomic.Pointer[func(server.FiringEvent)]

	// replaying is set while New merges the shards' historical backlogs:
	// relay firings seen then were already forwarded (the emit is in the
	// home shard's history), so the forwarder must not double them.
	replaying atomic.Bool

	in      chan fanMsg
	fanDone chan struct{}

	// relayQ is the unbounded forward queue from the fan-in to the relay
	// forwarder goroutine: the fan-in must never block on a shard's ops
	// channel (a full channel there would deadlock against that shard's
	// pipeline trying to deliver into the fan-in).
	relayMu   sync.Mutex
	relayCond *sync.Cond
	relayQ    []relayItem
	relayStop bool
	relayDone chan struct{}

	closeOnce sync.Once
	closeErr  error
}

type relayItem struct {
	home int
	ev   event.Event
}

// New builds a router over the shards and starts its fan-in: every
// shard's firing log is followed from the beginning, so a router started
// over shards with history re-merges that history first.
func New(cfg Config) (*Front, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: Config.Shards is required")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = query.NewRegistry()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f := &Front{
		shards:      cfg.Shards,
		part:        NewPartitioner(len(cfg.Shards)),
		reg:         reg,
		logf:        logf,
		ruleHomes:   map[string]int{},
		rulePending: map[string]bool{},
		relays:      map[string]*relayReg{},
		relaySeen:   make([]int, len(cfg.Shards)),
		gapLoss:     make([]int, len(cfg.Shards)),
		in:          make(chan fanMsg, 4096),
		fanDone:     make(chan struct{}),
		relayDone:   make(chan struct{}),
	}
	for i := range f.relaySeen {
		f.relaySeen[i] = -1
	}
	f.relayCond = sync.NewCond(&f.relayMu)
	f.replaying.Store(true)
	go f.fanIn()
	go f.relayForwarder()
	for i, sh := range cfg.Shards {
		i := i
		if err := sh.Follow(func(fe server.FiringEvent) {
			f.in <- fanMsg{shard: i, fe: fe}
		}); err != nil {
			f.Close()
			return nil, fmt.Errorf("cluster: follow shard %d: %w", i, err)
		}
		// Re-home rules already registered on the shard (a router restarted
		// over durable shards). Relay triggers register into the relay
		// registry as already-complete, so new rules reuse them instead of
		// tripping over duplicate names on the shard.
		rules, err := sh.Rules()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("cluster: list shard %d rules: %w", i, err)
		}
		for _, r := range rules {
			if _, _, ok := parseRelayName(r.Name); ok {
				reg := &relayReg{done: make(chan struct{})}
				close(reg.done)
				f.relays[r.Name] = reg
				continue
			}
			f.ruleHomes[r.Name] = i
		}
	}
	// Settle the historical backlogs before live traffic: for local shards
	// the barrier orders exactly after the Follow replay, so every
	// historical relay firing is seen (and skipped) while replaying is
	// still set. Remote-shard backlogs ride a subscription with no
	// completion handshake; a router restarted over remote shards with
	// history may re-forward relay occurrences (at-least-once).
	f.Barrier()
	f.replaying.Store(false)
	return f, nil
}

// Partitioner exposes the item→shard map (diagnostics and tests).
func (f *Front) Partitioner() Partitioner { return f.part }

// fanIn owns the merged log: it assigns global sequence numbers in
// arrival order (per-shard order is preserved — each shard's Follow
// delivers from one goroutine) and forwards relay firings to their home
// shards instead of exposing them to subscribers.
func (f *Front) fanIn() {
	defer close(f.fanDone)
	for msg := range f.in {
		if msg.fn != nil {
			msg.fn()
			continue
		}
		fe := msg.fe
		if fe.Gap == 0 {
			if home, use, ok := parseRelayName(fe.F.Rule); ok {
				// The watermark advances even while replaying: historical
				// relay firings were forwarded in a previous life (their
				// emits are in the home shard's log), so a later redelivery
				// of the same Seq must be skipped, not forwarded.
				if fe.Seq > f.relaySeen[msg.shard] {
					f.relaySeen[msg.shard] = fe.Seq
					if !f.replaying.Load() {
						f.enqueueRelay(home, use, fe.F)
					}
				}
				continue
			}
		}
		f.mu.Lock()
		entry := server.FiringEvent{F: fe.F, Seq: f.nextSeq, Gap: fe.Gap}
		if fe.Gap > 0 {
			// A gap means this shard's firing subscription overflowed. Any
			// relay firings inside it were never forwarded — rules homed
			// elsewhere permanently missed those occurrences — so record the
			// loss and degrade Health until the operator notices. (The gap
			// count includes relay firings that subscribers would never have
			// seen, so as a merged-stream loss figure it is an upper bound.)
			f.gapLoss[msg.shard] += fe.Gap
			f.logf("cluster: shard %d firing subscription gapped (%d lost); any cross-shard relay firings in the gap were not forwarded", msg.shard, fe.Gap)
			entry.F = adb.Firing{}
			f.nextSeq += fe.Gap
		} else {
			f.nextSeq++
		}
		f.log = append(f.log, entry)
		f.mu.Unlock()
		if fn := f.obs.Load(); fn != nil {
			(*fn)(entry)
		}
	}
}

// enqueueRelay reconstructs the remote occurrence from the relay
// trigger's binding and queues it for forwarding to the home shard named
// in the relay trigger itself, as an emit at the home's next tick. The
// relay is shared by every rule on that home observing the event, so one
// occurrence is forwarded exactly once per home shard.
func (f *Front) enqueueRelay(home int, use adb.EventUse, fir adb.Firing) {
	if home < 0 || home >= len(f.shards) {
		f.logf("cluster: relay %s: home shard %d out of range, dropping occurrence", fir.Rule, home)
		return
	}
	args := make([]value.Value, use.Arity)
	for i := range args {
		v, ok := fir.Binding[fmt.Sprintf("A%d", i)]
		if !ok {
			f.logf("cluster: relay %s: binding misses A%d, dropping occurrence", fir.Rule, i)
			return
		}
		args[i] = v
	}
	f.relayMu.Lock()
	if f.relayStop {
		f.relayMu.Unlock()
		f.logf("cluster: relay %s: router draining, dropping occurrence", fir.Rule)
		return
	}
	f.relayQ = append(f.relayQ, relayItem{home: home, ev: event.New(use.Name, args...)})
	f.relayCond.Signal()
	f.relayMu.Unlock()
}

// relayForwarder drains the relay queue in order, one emit at a time:
// each forwarded occurrence is committed on its home shard before the
// next is issued, so relayed events arrive in the order their source
// firings merged.
func (f *Front) relayForwarder() {
	defer close(f.relayDone)
	for {
		f.relayMu.Lock()
		for len(f.relayQ) == 0 && !f.relayStop {
			f.relayCond.Wait()
		}
		if len(f.relayQ) == 0 {
			f.relayMu.Unlock()
			return
		}
		item := f.relayQ[0]
		f.relayQ = f.relayQ[1:]
		f.relayMu.Unlock()
		errc := make(chan error, 1)
		f.shards[item.home].GoEmit(0, []event.Event{item.ev}, func(_ int64, err error) { errc <- err })
		if err := <-errc; err != nil {
			f.logf("cluster: forward %v to shard %d: %v", item.ev, item.home, err)
		}
	}
}

// routeKeys collects the partitioned keys of a mutation (item names and
// event symbols) and resolves the single owning shard.
func (f *Front) route(updates map[string]value.Value, deletes []string, events []event.Event) (int, error) {
	keys := make([]string, 0, len(updates)+len(deletes)+len(events))
	for k := range updates {
		keys = append(keys, k)
	}
	keys = append(keys, deletes...)
	for _, ev := range events {
		keys = append(keys, ev.Name)
	}
	return RouteKeys(f.part, keys)
}

func (f *Front) GoTxn(ts int64, updates map[string]value.Value, deletes []string,
	events []event.Event, done func(int64, error)) {
	home, err := f.route(updates, deletes, events)
	if err != nil {
		done(ts, err)
		return
	}
	f.shards[home].GoTxn(ts, updates, deletes, events, done)
}

func (f *Front) GoEmit(ts int64, events []event.Event, done func(int64, error)) {
	home, err := f.route(nil, nil, events)
	if err != nil {
		done(ts, err)
		return
	}
	f.shards[home].GoEmit(ts, events, done)
}

func (f *Front) GoRule(name, cond string, constraint bool, sched int, done func(error)) {
	if strings.HasPrefix(name, relayPrefix) {
		done(fmt.Errorf("cluster: rule name prefix %q is reserved", relayPrefix))
		return
	}
	fp, err := adb.ConditionFootprint(cond, f.reg)
	if err != nil {
		done(err)
		return
	}
	f.mu.Lock()
	if _, dup := f.ruleHomes[name]; dup || f.rulePending[name] {
		f.mu.Unlock()
		done(fmt.Errorf("cluster: rule %q already registered", name))
		return
	}
	// Reserve the name before the async fan-out: a concurrent GoRule with
	// the same name fails the check above instead of racing to register.
	f.rulePending[name] = true
	homes := make(map[string]int, len(f.ruleHomes))
	for r, h := range f.ruleHomes {
		homes[r] = h
	}
	f.mu.Unlock()
	release := func() {
		f.mu.Lock()
		delete(f.rulePending, name)
		f.mu.Unlock()
	}
	pl, err := Place(f.part, fp, constraint, homes)
	if err != nil {
		release()
		done(err)
		return
	}
	// Registration fans out: shared relay triggers on the owner shards
	// first, then the rule on its home, serially, so the rule never
	// observes a half-built relay graph. The done callback fires only when
	// all of it is registered (or the first step failed).
	go func() {
		for _, re := range pl.RemoteEvents {
			if err := f.ensureRelay(re.Shard, pl.Home, re.Use); err != nil {
				release()
				done(fmt.Errorf("cluster: relay for %s on shard %d: %w", name, re.Shard, err))
				return
			}
		}
		errc := make(chan error, 1)
		f.shards[pl.Home].GoRule(name, cond, constraint, sched, func(err error) { errc <- err })
		if err := <-errc; err != nil {
			// The relays stay registered: they are keyed by (home, event use),
			// not by this rule, may already serve other rules, and a retry of
			// this registration reuses them (engines have no rule deletion).
			// An unused relay forwards occurrences its home does not observe,
			// which is inert there.
			release()
			done(err)
			return
		}
		f.mu.Lock()
		delete(f.rulePending, name)
		f.ruleHomes[name] = pl.Home
		f.mu.Unlock()
		done(nil)
	}()
}

// ensureRelay registers the shared relay trigger forwarding an event use
// from its owner shard to a home shard, exactly once however many rules
// need it: the first caller registers, concurrent callers wait for that
// outcome, later callers reuse the live relay. On failure the entry is
// removed so a subsequent registration can retry.
func (f *Front) ensureRelay(owner, home int, use adb.EventUse) error {
	name := relayName(home, use)
	f.mu.Lock()
	if reg, ok := f.relays[name]; ok {
		f.mu.Unlock()
		<-reg.done
		return reg.err
	}
	reg := &relayReg{done: make(chan struct{})}
	f.relays[name] = reg
	f.mu.Unlock()
	errc := make(chan error, 1)
	f.shards[owner].GoRule(name, relayCondition(use), false, int(adb.Relevant),
		func(err error) { errc <- err })
	reg.err = <-errc
	if reg.err != nil {
		f.mu.Lock()
		delete(f.relays, name)
		f.mu.Unlock()
	}
	close(reg.done)
	return reg.err
}

func (f *Front) GoRevive(name string, done func(error)) {
	f.mu.Lock()
	home, known := f.ruleHomes[name]
	f.mu.Unlock()
	if !known {
		done(fmt.Errorf("cluster: rule %q is not registered", name))
		return
	}
	f.shards[home].GoRevive(name, done)
}

func (f *Front) OnFiring(fn func(server.FiringEvent)) (cancel func()) {
	f.obs.Store(&fn)
	return func() { f.obs.CompareAndSwap(&fn, nil) }
}

// SyncFirings runs fn at the merge point: the backlog snapshot and the
// live observer stream are atomic with respect to the fan-in, so a
// subscriber sees every merged firing exactly once.
func (f *Front) SyncFirings(from int, fn func(int, []server.FiringEvent)) {
	f.in <- fanMsg{fn: func() {
		from, backlog, _ := f.snapshot(from)
		fn(from, backlog)
	}}
}

// snapshot clamps from and returns the log suffix covering sequence
// numbers >= from (a gap entry is included when any of its lost range is
// covered).
func (f *Front) snapshot(from int) (int, []server.FiringEvent, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > f.nextSeq {
		from = f.nextSeq
	}
	i := sort.Search(len(f.log), func(i int) bool {
		e := f.log[i]
		end := e.Seq + 1
		if e.Gap > 0 {
			end = e.Seq + e.Gap
		}
		return end > from
	})
	backlog := append([]server.FiringEvent(nil), f.log[i:]...)
	return from, backlog, f.nextSeq
}

// Now reports the maximum shard clock. A shard whose clock read fails
// (broken remote connection) is logged and skipped rather than silently
// contributing 0.
func (f *Front) Now() int64 {
	var max int64
	for i, sh := range f.shards {
		ts, err := sh.Now()
		if err != nil {
			f.logf("cluster: shard %d clock read failed: %v", i, err)
			continue
		}
		if ts > max {
			max = ts
		}
	}
	return max
}

func (f *Front) Items() (map[string]value.Value, error) {
	out := map[string]value.Value{}
	for i, sh := range f.shards {
		items, err := sh.Items()
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		for k, v := range items {
			out[k] = v
		}
	}
	return out, nil
}

func (f *Front) Firings(from int) ([]server.FiringEvent, error) {
	_, backlog, _ := f.snapshot(from)
	return backlog, nil
}

// Rules lists every user rule across the shards, sorted by name (the
// registration interleaving across shards is not a meaningful order);
// router-internal relay triggers are hidden.
func (f *Front) Rules() ([]wire.RuleJSON, error) {
	var out []wire.RuleJSON
	for i, sh := range f.shards {
		rules, err := sh.Rules()
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		for _, r := range rules {
			if strings.HasPrefix(r.Name, relayPrefix) {
				continue
			}
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Health concatenates per-rule health across shards (relays hidden) and
// joins the degraded causes: the cluster reports degraded when any shard
// is, naming the shard.
func (f *Front) Health() ([]wire.HealthJSON, string, error) {
	var out []wire.HealthJSON
	var degraded []string
	for i, sh := range f.shards {
		h, d, err := sh.Health()
		if err != nil {
			return nil, "", fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		for _, hj := range h {
			if strings.HasPrefix(hj.Rule, relayPrefix) {
				continue
			}
			out = append(out, hj)
		}
		if d != "" {
			degraded = append(degraded, fmt.Sprintf("shard %d: %s", i, d))
		}
	}
	f.mu.Lock()
	for i, n := range f.gapLoss {
		if n > 0 {
			degraded = append(degraded, fmt.Sprintf(
				"shard %d: firing subscription gapped (%d entries lost; cross-shard relay firings in the gap were not forwarded)", i, n))
		}
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Rule < out[j].Rule })
	return out, strings.Join(degraded, "; "), nil
}

// Storage implements server.StorageBackend by summing the shards'
// footprints: sizes and counts add; HeadLsn/LastLsn report the max across
// shards (per-shard positions are independent sequences). The history
// fields take the most conservative cluster-wide view — the largest
// window and floor, with SpillHistory true only when every windowed shard
// spills (only then is a cold read below the floor servable everywhere).
func (f *Front) Storage() (wire.StorageJSON, error) {
	var out wire.StorageJSON
	spill := true
	for i, sh := range f.shards {
		sb, ok := sh.(interface {
			Storage() (wire.StorageJSON, error)
		})
		if !ok {
			return wire.StorageJSON{}, fmt.Errorf("cluster: shard %d does not report storage", i)
		}
		st, err := sb.Storage()
		if err != nil {
			return wire.StorageJSON{}, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		out.Segments += st.Segments
		out.WalBytes += st.WalBytes
		out.Snapshots += st.Snapshots
		out.SnapshotBytes += st.SnapshotBytes
		if st.HeadLsn > out.HeadLsn {
			out.HeadLsn = st.HeadLsn
		}
		if st.LastLsn > out.LastLsn {
			out.LastLsn = st.LastLsn
		}
		if st.HistoryWindow > 0 {
			if st.HistoryWindow > out.HistoryWindow {
				out.HistoryWindow = st.HistoryWindow
			}
			if st.HistoryFloor > out.HistoryFloor {
				out.HistoryFloor = st.HistoryFloor
			}
			spill = spill && st.SpillHistory
		}
		out.TierRows += st.TierRows
		out.TierBytes += st.TierBytes
	}
	out.SpillHistory = out.HistoryWindow > 0 && spill
	return out, nil
}

// Barrier waits for every shard's submitted operations, then flushes the
// fan-in so their firings are merged and delivered.
func (f *Front) Barrier() {
	for _, sh := range f.shards {
		sh.Barrier()
	}
	flushed := make(chan struct{})
	f.in <- fanMsg{fn: func() { close(flushed) }}
	<-flushed
}

// Close drains the router: the relay forwarder finishes its queue, the
// shards close (flushing their pipelines and, for durable engines, their
// WALs), and the fan-in winds down. No Go* calls may be made after Close
// begins.
func (f *Front) Close() error {
	f.closeOnce.Do(func() {
		// Stop the relay forwarder first — it mutates shards, which must
		// not be closed under it. Queued occurrences are still forwarded.
		f.relayMu.Lock()
		f.relayStop = true
		f.relayCond.Broadcast()
		f.relayMu.Unlock()
		<-f.relayDone
		var firstErr error
		for i, sh := range f.shards {
			if err := sh.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("cluster: close shard %d: %w", i, err)
			}
		}
		// All producers are gone (each shard's Follow stops at its close);
		// wind down the fan-in.
		close(f.in)
		<-f.fanDone
		f.closeErr = firstErr
	})
	return f.closeErr
}
