package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ptlactive/internal/adb"
	"ptlactive/internal/event"
	"ptlactive/internal/query"
	"ptlactive/internal/server"
	"ptlactive/internal/server/wire"
	"ptlactive/internal/value"
)

// Config configures a Front.
type Config struct {
	// Shards are the partition owners, in shard-index order. Required,
	// at least one. The front becomes their only mutator; closing the
	// front closes them.
	Shards []Shard
	// Registry supplies the query functions the placement oracle resolves
	// declared read sets against; nil means just the built-ins. It must
	// match the registry the shard engines run.
	Registry *query.Registry
	// Logf, when set, receives router diagnostics.
	Logf func(format string, args ...any)
}

// fanMsg is one fan-in delivery: a shard firing (or gap), or a control
// closure to run at the merge point (subscription syncs, barriers).
type fanMsg struct {
	fe server.FiringEvent
	fn func()
}

// Front is the cluster router: it implements server.Backend over N
// shards, so a server.Server in front of it speaks the ordinary wire
// protocol against the whole cluster. Transactions route to the shard
// owning their items and event symbols; rules register where their
// footprint lives; the per-shard firing streams merge — in fan-in
// arrival order, preserving each shard's internal order — into one
// globally sequenced log that subscriptions and firing queries serve.
type Front struct {
	shards []Shard
	part   Partitioner
	reg    *query.Registry
	logf   func(string, ...any)

	// mu guards ruleHomes and the merged firing log.
	mu        sync.Mutex
	ruleHomes map[string]int
	log       []server.FiringEvent
	nextSeq   int

	obs atomic.Pointer[func(server.FiringEvent)]

	// replaying is set while New merges the shards' historical backlogs:
	// relay firings seen then were already forwarded (the emit is in the
	// home shard's history), so the forwarder must not double them.
	replaying atomic.Bool

	in      chan fanMsg
	fanDone chan struct{}

	// relayQ is the unbounded forward queue from the fan-in to the relay
	// forwarder goroutine: the fan-in must never block on a shard's ops
	// channel (a full channel there would deadlock against that shard's
	// pipeline trying to deliver into the fan-in).
	relayMu   sync.Mutex
	relayCond *sync.Cond
	relayQ    []relayItem
	relayStop bool
	relayDone chan struct{}

	closeOnce sync.Once
	closeErr  error
}

type relayItem struct {
	home int
	ev   event.Event
}

// New builds a router over the shards and starts its fan-in: every
// shard's firing log is followed from the beginning, so a router started
// over shards with history re-merges that history first.
func New(cfg Config) (*Front, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: Config.Shards is required")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = query.NewRegistry()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f := &Front{
		shards:    cfg.Shards,
		part:      NewPartitioner(len(cfg.Shards)),
		reg:       reg,
		logf:      logf,
		ruleHomes: map[string]int{},
		in:        make(chan fanMsg, 4096),
		fanDone:   make(chan struct{}),
		relayDone: make(chan struct{}),
	}
	f.relayCond = sync.NewCond(&f.relayMu)
	f.replaying.Store(true)
	go f.fanIn()
	go f.relayForwarder()
	for i, sh := range cfg.Shards {
		if err := sh.Follow(func(fe server.FiringEvent) {
			f.in <- fanMsg{fe: fe}
		}); err != nil {
			f.Close()
			return nil, fmt.Errorf("cluster: follow shard %d: %w", i, err)
		}
		// Re-home rules already registered on the shard (a router restarted
		// over durable shards). Relay triggers are skipped: their underlying
		// rules re-home from their own shard's listing, and forwarding
		// resumes as soon as the relay fires again.
		rules, err := sh.Rules()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("cluster: list shard %d rules: %w", i, err)
		}
		for _, r := range rules {
			if _, _, ok := parseRelayName(r.Name); ok {
				continue
			}
			f.ruleHomes[r.Name] = i
		}
	}
	// Settle the historical backlogs before live traffic: for local shards
	// the barrier orders exactly after the Follow replay, so every
	// historical relay firing is seen (and skipped) while replaying is
	// still set. Remote-shard backlogs ride a subscription with no
	// completion handshake; a router restarted over remote shards with
	// history may re-forward relay occurrences (at-least-once).
	f.Barrier()
	f.replaying.Store(false)
	return f, nil
}

// Partitioner exposes the item→shard map (diagnostics and tests).
func (f *Front) Partitioner() Partitioner { return f.part }

// fanIn owns the merged log: it assigns global sequence numbers in
// arrival order (per-shard order is preserved — each shard's Follow
// delivers from one goroutine) and forwards relay firings to their home
// shards instead of exposing them to subscribers.
func (f *Front) fanIn() {
	defer close(f.fanDone)
	for msg := range f.in {
		if msg.fn != nil {
			msg.fn()
			continue
		}
		fe := msg.fe
		if fe.Gap == 0 {
			if rule, use, ok := parseRelayName(fe.F.Rule); ok {
				if !f.replaying.Load() {
					f.enqueueRelay(rule, use, fe.F)
				}
				continue
			}
		}
		f.mu.Lock()
		entry := server.FiringEvent{F: fe.F, Seq: f.nextSeq, Gap: fe.Gap}
		if fe.Gap > 0 {
			entry.F = adb.Firing{}
			f.nextSeq += fe.Gap
		} else {
			f.nextSeq++
		}
		f.log = append(f.log, entry)
		f.mu.Unlock()
		if fn := f.obs.Load(); fn != nil {
			(*fn)(entry)
		}
	}
}

// enqueueRelay reconstructs the remote occurrence from the relay
// trigger's binding and queues it for forwarding to the rule's home
// shard as an emit at the home's next tick.
func (f *Front) enqueueRelay(rule string, use adb.EventUse, fir adb.Firing) {
	args := make([]value.Value, use.Arity)
	for i := range args {
		v, ok := fir.Binding[fmt.Sprintf("A%d", i)]
		if !ok {
			f.logf("cluster: relay %s: binding misses A%d, dropping occurrence", fir.Rule, i)
			return
		}
		args[i] = v
	}
	f.mu.Lock()
	home, known := f.ruleHomes[rule]
	f.mu.Unlock()
	if !known {
		f.logf("cluster: relay %s: rule %q has no home, dropping occurrence", fir.Rule, rule)
		return
	}
	f.relayMu.Lock()
	if f.relayStop {
		f.relayMu.Unlock()
		f.logf("cluster: relay %s: router draining, dropping occurrence", fir.Rule)
		return
	}
	f.relayQ = append(f.relayQ, relayItem{home: home, ev: event.New(use.Name, args...)})
	f.relayCond.Signal()
	f.relayMu.Unlock()
}

// relayForwarder drains the relay queue in order, one emit at a time:
// each forwarded occurrence is committed on its home shard before the
// next is issued, so relayed events arrive in the order their source
// firings merged.
func (f *Front) relayForwarder() {
	defer close(f.relayDone)
	for {
		f.relayMu.Lock()
		for len(f.relayQ) == 0 && !f.relayStop {
			f.relayCond.Wait()
		}
		if len(f.relayQ) == 0 {
			f.relayMu.Unlock()
			return
		}
		item := f.relayQ[0]
		f.relayQ = f.relayQ[1:]
		f.relayMu.Unlock()
		errc := make(chan error, 1)
		f.shards[item.home].GoEmit(0, []event.Event{item.ev}, func(_ int64, err error) { errc <- err })
		if err := <-errc; err != nil {
			f.logf("cluster: forward %v to shard %d: %v", item.ev, item.home, err)
		}
	}
}

// routeKeys collects the partitioned keys of a mutation (item names and
// event symbols) and resolves the single owning shard.
func (f *Front) route(updates map[string]value.Value, deletes []string, events []event.Event) (int, error) {
	keys := make([]string, 0, len(updates)+len(deletes)+len(events))
	for k := range updates {
		keys = append(keys, k)
	}
	keys = append(keys, deletes...)
	for _, ev := range events {
		keys = append(keys, ev.Name)
	}
	return RouteKeys(f.part, keys)
}

func (f *Front) GoTxn(ts int64, updates map[string]value.Value, deletes []string,
	events []event.Event, done func(int64, error)) {
	home, err := f.route(updates, deletes, events)
	if err != nil {
		done(ts, err)
		return
	}
	f.shards[home].GoTxn(ts, updates, deletes, events, done)
}

func (f *Front) GoEmit(ts int64, events []event.Event, done func(int64, error)) {
	home, err := f.route(nil, nil, events)
	if err != nil {
		done(ts, err)
		return
	}
	f.shards[home].GoEmit(ts, events, done)
}

func (f *Front) GoRule(name, cond string, constraint bool, sched int, done func(error)) {
	if strings.HasPrefix(name, relayPrefix) {
		done(fmt.Errorf("cluster: rule name prefix %q is reserved", relayPrefix))
		return
	}
	fp, err := adb.ConditionFootprint(cond, f.reg)
	if err != nil {
		done(err)
		return
	}
	f.mu.Lock()
	if _, dup := f.ruleHomes[name]; dup {
		f.mu.Unlock()
		done(fmt.Errorf("cluster: rule %q already registered", name))
		return
	}
	homes := make(map[string]int, len(f.ruleHomes))
	for r, h := range f.ruleHomes {
		homes[r] = h
	}
	f.mu.Unlock()
	pl, err := Place(f.part, fp, constraint, homes)
	if err != nil {
		done(err)
		return
	}
	// Registration fans out: relay triggers on the owner shards first,
	// then the rule on its home, serially, so the rule never observes a
	// half-built relay graph. The done callback fires only when all of it
	// is registered (or the first step failed).
	go func() {
		errc := make(chan error, 1)
		for _, re := range pl.RemoteEvents {
			f.shards[re.Shard].GoRule(relayName(name, re.Use), relayCondition(re.Use),
				false, int(adb.Relevant), func(err error) { errc <- err })
			if err := <-errc; err != nil {
				done(fmt.Errorf("cluster: relay for %s on shard %d: %w", name, re.Shard, err))
				return
			}
		}
		f.shards[pl.Home].GoRule(name, cond, constraint, sched, func(err error) { errc <- err })
		err := <-errc
		if err == nil {
			f.mu.Lock()
			f.ruleHomes[name] = pl.Home
			f.mu.Unlock()
		}
		done(err)
	}()
}

func (f *Front) GoRevive(name string, done func(error)) {
	f.mu.Lock()
	home, known := f.ruleHomes[name]
	f.mu.Unlock()
	if !known {
		done(fmt.Errorf("cluster: rule %q is not registered", name))
		return
	}
	f.shards[home].GoRevive(name, done)
}

func (f *Front) OnFiring(fn func(server.FiringEvent)) (cancel func()) {
	f.obs.Store(&fn)
	return func() { f.obs.CompareAndSwap(&fn, nil) }
}

// SyncFirings runs fn at the merge point: the backlog snapshot and the
// live observer stream are atomic with respect to the fan-in, so a
// subscriber sees every merged firing exactly once.
func (f *Front) SyncFirings(from int, fn func(int, []server.FiringEvent)) {
	f.in <- fanMsg{fn: func() {
		from, backlog, _ := f.snapshot(from)
		fn(from, backlog)
	}}
}

// snapshot clamps from and returns the log suffix covering sequence
// numbers >= from (a gap entry is included when any of its lost range is
// covered).
func (f *Front) snapshot(from int) (int, []server.FiringEvent, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from > f.nextSeq {
		from = f.nextSeq
	}
	i := sort.Search(len(f.log), func(i int) bool {
		e := f.log[i]
		end := e.Seq + 1
		if e.Gap > 0 {
			end = e.Seq + e.Gap
		}
		return end > from
	})
	backlog := append([]server.FiringEvent(nil), f.log[i:]...)
	return from, backlog, f.nextSeq
}

func (f *Front) Now() int64 {
	var max int64
	for _, sh := range f.shards {
		if ts := sh.Now(); ts > max {
			max = ts
		}
	}
	return max
}

func (f *Front) Items() (map[string]value.Value, error) {
	out := map[string]value.Value{}
	for i, sh := range f.shards {
		items, err := sh.Items()
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		for k, v := range items {
			out[k] = v
		}
	}
	return out, nil
}

func (f *Front) Firings(from int) ([]server.FiringEvent, error) {
	_, backlog, _ := f.snapshot(from)
	return backlog, nil
}

// Rules lists every user rule across the shards, sorted by name (the
// registration interleaving across shards is not a meaningful order);
// router-internal relay triggers are hidden.
func (f *Front) Rules() ([]wire.RuleJSON, error) {
	var out []wire.RuleJSON
	for i, sh := range f.shards {
		rules, err := sh.Rules()
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		for _, r := range rules {
			if strings.HasPrefix(r.Name, relayPrefix) {
				continue
			}
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Health concatenates per-rule health across shards (relays hidden) and
// joins the degraded causes: the cluster reports degraded when any shard
// is, naming the shard.
func (f *Front) Health() ([]wire.HealthJSON, string, error) {
	var out []wire.HealthJSON
	var degraded []string
	for i, sh := range f.shards {
		h, d, err := sh.Health()
		if err != nil {
			return nil, "", fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		for _, hj := range h {
			if strings.HasPrefix(hj.Rule, relayPrefix) {
				continue
			}
			out = append(out, hj)
		}
		if d != "" {
			degraded = append(degraded, fmt.Sprintf("shard %d: %s", i, d))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rule < out[j].Rule })
	return out, strings.Join(degraded, "; "), nil
}

// Barrier waits for every shard's submitted operations, then flushes the
// fan-in so their firings are merged and delivered.
func (f *Front) Barrier() {
	for _, sh := range f.shards {
		sh.Barrier()
	}
	flushed := make(chan struct{})
	f.in <- fanMsg{fn: func() { close(flushed) }}
	<-flushed
}

// Close drains the router: the relay forwarder finishes its queue, the
// shards close (flushing their pipelines and, for durable engines, their
// WALs), and the fan-in winds down. No Go* calls may be made after Close
// begins.
func (f *Front) Close() error {
	f.closeOnce.Do(func() {
		// Stop the relay forwarder first — it mutates shards, which must
		// not be closed under it. Queued occurrences are still forwarded.
		f.relayMu.Lock()
		f.relayStop = true
		f.relayCond.Broadcast()
		f.relayMu.Unlock()
		<-f.relayDone
		var firstErr error
		for i, sh := range f.shards {
			if err := sh.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("cluster: close shard %d: %w", i, err)
			}
		}
		// All producers are gone (each shard's Follow stops at its close);
		// wind down the fan-in.
		close(f.in)
		<-f.fanDone
		f.closeErr = firstErr
	})
	return f.closeErr
}
