// Package cluster shards the item space of the active database across N
// independent engines behind a router that speaks the ordinary wire
// protocol. Each shard owns a disjoint partition of the item names and
// event symbols (hash partitioning); rules pin to the shard owning their
// statically extracted read-set footprint (internal/adb.Footprint — the
// same analysis the scheduling index uses, repurposed as a placement
// oracle); transactions route to the single shard owning everything they
// touch. Cross-shard event flow goes through relay triggers: when a rule
// homed on one shard observes an event symbol owned by another, a hidden
// trigger registers on the owner, whose firings the router observes and
// forwards to the home shard as ordinary emits. Relays are shared: they
// key on (home shard, event use), not on the observing rule, so however
// many rules on one home observe the same remote event, each occurrence
// is forwarded to that home exactly once.
//
// Every shard keeps its own serializing commit pipeline (and, when
// durable, its own WAL, group commit and snapshots), so the per-shard
// state evolution — and therefore the per-shard firing stream — is
// byte-identical to a single engine run over that shard's operation
// subsequence. The router merges the per-shard streams into one global
// sequence in fan-in arrival order, preserving each shard's internal
// order exactly.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"ptlactive/internal/adb"
	"ptlactive/internal/server/wire"
)

// Partitioner is the item→shard map: FNV-1a over the key name, mod the
// shard count. It is a pure value — two routers over the same shard count
// agree on every placement, so repartitioning the same registration set
// is deterministic.
type Partitioner struct {
	n int
}

// NewPartitioner returns a partitioner over n shards (n >= 1).
func NewPartitioner(n int) Partitioner {
	if n < 1 {
		n = 1
	}
	return Partitioner{n: n}
}

// Shards returns the shard count.
func (p Partitioner) Shards() int { return p.n }

// Owner returns the shard owning a key. Item names and event symbols
// share one key space: the owner of item "x" and of event symbol "x" is
// the same shard, so a rule over both never splits on that name.
func (p Partitioner) Owner(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(p.n))
}

// relayPrefix marks router-internal relay triggers. The segment layout is
// relayPrefix + arity + "/" + homeShard + "/" + event: arity and home are
// integers, so the trailing event symbol may contain anything.
const relayPrefix = "__relay/"

// relayName builds the hidden relay trigger's name for one remote event
// use feeding rules homed on the given shard. The name deliberately does
// NOT mention any rule: every rule on that home observing that event
// shares the one relay, so one occurrence forwards at most once per home.
func relayName(home int, use adb.EventUse) string {
	return fmt.Sprintf("%s%d/%d/%s", relayPrefix, use.Arity, home, use.Name)
}

// parseRelayName inverts relayName; ok is false for non-relay rules.
func parseRelayName(name string) (home int, use adb.EventUse, ok bool) {
	rest, found := strings.CutPrefix(name, relayPrefix)
	if !found {
		return 0, adb.EventUse{}, false
	}
	arityStr, rest, found := strings.Cut(rest, "/")
	if !found {
		return 0, adb.EventUse{}, false
	}
	homeStr, ev, found := strings.Cut(rest, "/")
	if !found || ev == "" {
		return 0, adb.EventUse{}, false
	}
	arity, err := strconv.Atoi(arityStr)
	if err != nil {
		return 0, adb.EventUse{}, false
	}
	home, err = strconv.Atoi(homeStr)
	if err != nil {
		return 0, adb.EventUse{}, false
	}
	return home, adb.EventUse{Name: ev, Arity: arity}, true
}

// relayCondition builds the relay trigger's condition: the bare event
// atom with fresh variables, so the trigger fires once per occurrence
// with the occurrence's arguments in its binding (A0..An-1).
func relayCondition(use adb.EventUse) string {
	args := make([]string, use.Arity)
	for i := range args {
		args[i] = fmt.Sprintf("A%d", i)
	}
	if len(args) == 0 {
		return "@" + use.Name
	}
	return "@" + use.Name + "(" + strings.Join(args, ", ") + ")"
}

// RemoteEvent is one event use a placed rule observes on a shard other
// than its home: the owner shard and the atom shape to relay from it.
type RemoteEvent struct {
	Shard int
	Use   adb.EventUse
}

// Placement is the routing decision for one rule: the shard it registers
// on and the remote event uses that need relay triggers.
type Placement struct {
	Home         int
	RemoteEvents []RemoteEvent
}

// Place computes a rule's placement from its footprint. It is a pure
// function of (partitioner, footprint, homes): the same inputs always
// yield the same placement, and a successful placement puts the rule on
// exactly one shard.
//
// The rule's database items must all hash to one shard — the condition
// evaluates against that shard's database — and any executed() targets
// must already be homed there (homes maps known rule names to their
// shards). Event symbols owned elsewhere are fine for triggers (they
// relay), but not for constraints: a constraint must be fully evaluable
// at commit time on its home shard, and a relayed occurrence arrives
// after the transaction it should have vetoed.
func Place(p Partitioner, fp adb.Footprint, constraint bool, homes map[string]int) (Placement, error) {
	if !fp.Analyzable {
		return Placement{}, fmt.Errorf("%w: condition reads items the placement oracle cannot enumerate (non-constant item() or undeclared query)", wire.ErrCrossShard)
	}
	home := -1
	anchor := ""
	for _, item := range fp.Items {
		s := p.Owner(item)
		if home == -1 {
			home, anchor = s, item
		} else if s != home {
			return Placement{}, fmt.Errorf("%w: items %q and %q hash to different shards", wire.ErrCrossShard, anchor, item)
		}
	}
	for _, target := range fp.ExecRules {
		ts, known := homes[target]
		if !known {
			return Placement{}, fmt.Errorf("%w: executed() target %q is not a registered rule", wire.ErrCrossShard, target)
		}
		if home == -1 {
			home, anchor = ts, "executed("+target+")"
		} else if ts != home {
			return Placement{}, fmt.Errorf("%w: executed() target %q lives on another shard than %q", wire.ErrCrossShard, target, anchor)
		}
	}
	if home == -1 && len(fp.Events) > 0 {
		// Event-only rule: home with the first event symbol's owner, which
		// minimizes relays (Events is sorted, so the choice is stable).
		home = p.Owner(fp.Events[0].Name)
	}
	if home == -1 {
		// Time-only condition: any shard works; shard 0 is the stable pick.
		home = 0
	}
	pl := Placement{Home: home}
	for _, use := range fp.Events {
		if s := p.Owner(use.Name); s != home {
			if constraint {
				return Placement{}, fmt.Errorf("%w: constraint observes event %q owned by another shard (constraints must be evaluable at commit on their home shard)", wire.ErrCrossShard, use.Name)
			}
			pl.RemoteEvents = append(pl.RemoteEvents, RemoteEvent{Shard: s, Use: use})
		}
	}
	return pl, nil
}

// RouteKeys returns the single shard owning every given key (item names
// and event symbols of one transaction), or an ErrCrossShard error when
// they span shards. With no keys at all the operation routes to shard 0
// (a timestamp-only commit touches no partitioned state).
func RouteKeys(p Partitioner, keys []string) (int, error) {
	if len(keys) == 0 {
		return 0, nil
	}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	home := p.Owner(sorted[0])
	for _, k := range sorted[1:] {
		if p.Owner(k) != home {
			return 0, fmt.Errorf("%w: %q and %q hash to different shards", wire.ErrCrossShard, sorted[0], k)
		}
	}
	return home, nil
}
