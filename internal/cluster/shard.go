package cluster

import (
	"sync"

	"ptlactive/client"
	"ptlactive/internal/adb"
	"ptlactive/internal/event"
	"ptlactive/internal/server"
	"ptlactive/internal/server/wire"
	"ptlactive/internal/value"
)

// Shard is one partition owner the router drives: an in-process engine
// behind its own commit pipeline, or a remote adbserverd. The Go* methods
// are asynchronous with per-shard submission ordering (exactly the
// server.Backend mutation contract); Follow streams the shard's complete
// firing log — backlog then live, exactly once, in the shard's order —
// into the router's fan-in.
type Shard interface {
	GoTxn(ts int64, updates map[string]value.Value, deletes []string,
		events []event.Event, done func(ts int64, err error))
	GoEmit(ts int64, events []event.Event, done func(ts int64, err error))
	GoRule(name, cond string, constraint bool, sched int, done func(error))
	GoRevive(name string, done func(error))
	// Now reads the shard clock; a remote shard surfaces connection
	// failures instead of reporting a bogus 0.
	Now() (int64, error)
	Items() (map[string]value.Value, error)
	Rules() ([]wire.RuleJSON, error)
	Health() ([]wire.HealthJSON, string, error)
	Follow(fn func(server.FiringEvent)) error
	Barrier()
	Close() error
}

// LocalShard is an in-process engine shard: the engine behind its own
// serializing commit pipeline (server.EngineBackend), so a cluster of
// local shards runs N independent pipelines — and, for durable engines,
// N independent WALs whose group-commit fsyncs overlap.
type LocalShard struct {
	*server.EngineBackend
}

// NewLocalShard wraps an engine (memory-only from adb.NewEngine, or
// durable from adb.Restore) as a shard. The router becomes its only
// mutator; closing the cluster closes the engine.
func NewLocalShard(eng *adb.Engine) LocalShard {
	return LocalShard{EngineBackend: server.NewEngineBackend(eng)}
}

// Follow adapts the backend's backlog-then-live stream to the Shard
// contract (a local pipeline cannot fail to subscribe).
func (s LocalShard) Follow(fn func(server.FiringEvent)) error {
	s.EngineBackend.Follow(fn)
	return nil
}

// Now adapts the backend's clock read (a local read cannot fail).
func (s LocalShard) Now() (int64, error) {
	return s.EngineBackend.Now(), nil
}

// RemoteShard drives one adbserverd over the public client: mutations are
// pipelined on the session (issued in submission order, outcomes
// collected concurrently), and Follow rides a firing subscription. The
// remote server's own commit pipeline is the shard's serialization point.
type RemoteShard struct {
	cli *client.Client
	// ops issues frames in submission order: one goroutine drains it, so
	// two GoTxn calls reach the remote pipeline in call order even though
	// their outcomes are collected concurrently.
	ops     chan func()
	opsDone chan struct{}
	// outstanding tracks in-flight mutation outcomes for Barrier.
	outstanding sync.WaitGroup
	pumpDone    chan struct{}
	pumpStarted bool
	closeOnce   sync.Once
	closeErr    error
}

// DialShard connects a remote shard, negotiating the binary codec when
// the backend speaks it and retrying transient dial failures with capped
// exponential backoff (a router booting alongside its shards should not
// lose the race).
func DialShard(addr string) (*RemoteShard, error) {
	cli, err := client.DialOptions(addr, client.Options{Retry: client.DefaultRetry()})
	if err != nil {
		return nil, err
	}
	return NewRemoteShard(cli), nil
}

// NewRemoteShard wraps an established client session as a shard; the
// router owns the client from here on.
func NewRemoteShard(cli *client.Client) *RemoteShard {
	s := &RemoteShard{
		cli:      cli,
		ops:      make(chan func(), 256),
		opsDone:  make(chan struct{}),
		pumpDone: make(chan struct{}),
	}
	go func() {
		defer close(s.opsDone)
		for fn := range s.ops {
			fn()
		}
	}()
	return s
}

func (s *RemoteShard) GoTxn(ts int64, updates map[string]value.Value, deletes []string,
	events []event.Event, done func(int64, error)) {
	s.outstanding.Add(1)
	s.ops <- func() {
		tx := s.cli.Txn().At(ts).Emit(events...)
		for k, v := range updates {
			tx.Set(k, v)
		}
		for _, k := range deletes {
			tx.Delete(k)
		}
		p := tx.Go() // frame sent here, in ops order
		go func() {
			defer s.outstanding.Done()
			done(p.Wait())
		}()
	}
}

func (s *RemoteShard) GoEmit(ts int64, events []event.Event, done func(int64, error)) {
	// A true emit (no transaction bracketing events), synchronous on the
	// ops goroutine so later submissions stay ordered behind it.
	s.outstanding.Add(1)
	s.ops <- func() {
		defer s.outstanding.Done()
		done(s.cli.Emit(ts, events...))
	}
}

func (s *RemoteShard) GoRule(name, cond string, constraint bool, sched int, done func(error)) {
	s.outstanding.Add(1)
	s.ops <- func() {
		// Synchronous on the ops goroutine: later submissions observe the
		// rule registered, matching the local pipeline's ordering.
		defer s.outstanding.Done()
		var err error
		if constraint {
			err = s.cli.AddConstraint(name, cond, adb.Scheduling(sched))
		} else {
			err = s.cli.AddTrigger(name, cond, adb.Scheduling(sched))
		}
		done(err)
	}
}

func (s *RemoteShard) GoRevive(name string, done func(error)) {
	s.outstanding.Add(1)
	s.ops <- func() {
		defer s.outstanding.Done()
		done(s.cli.ReviveRule(name))
	}
}

func (s *RemoteShard) Now() (int64, error) { return s.cli.Now() }

func (s *RemoteShard) Items() (map[string]value.Value, error) { return s.cli.DB() }

func (s *RemoteShard) Rules() ([]wire.RuleJSON, error) {
	infos, err := s.cli.Rules()
	if err != nil {
		return nil, err
	}
	out := make([]wire.RuleJSON, 0, len(infos))
	for _, info := range infos {
		out = append(out, wire.RuleJSON{
			Name:       info.Name,
			Condition:  info.Condition,
			Constraint: info.Constraint,
			Scheduling: int(info.Scheduling),
			Parameters: info.Parameters,
			Pending:    info.Pending,
		})
	}
	return out, nil
}

func (s *RemoteShard) Health() ([]wire.HealthJSON, string, error) {
	h, err := s.cli.Health()
	if err != nil {
		return nil, "", err
	}
	out := make([]wire.HealthJSON, 0, len(h.Rules))
	for _, hr := range h.Rules {
		out = append(out, wire.HealthJSON{
			Rule:        hr.Rule,
			Quarantined: hr.Quarantined,
			Consecutive: hr.Consecutive,
			Total:       hr.Total,
			LastError:   hr.LastError,
			LastAt:      hr.LastAt,
		})
	}
	return out, h.Degraded, nil
}

// Storage queries the remote server's storage footprint, satisfying the
// router's optional per-shard storage capability (LocalShard gets it from
// the embedded EngineBackend).
func (s *RemoteShard) Storage() (wire.StorageJSON, error) {
	st, err := s.cli.Storage()
	if err != nil {
		return wire.StorageJSON{}, err
	}
	return wire.StorageJSON{
		Segments:      st.Segments,
		WalBytes:      st.WALBytes,
		Snapshots:     st.Snapshots,
		SnapshotBytes: st.SnapshotBytes,
		HeadLsn:       st.HeadLSN,
		LastLsn:       st.LastLSN,
		HistoryWindow: st.HistoryWindow,
		HistoryFloor:  st.HistoryFloor,
		SpillHistory:  st.SpillHistory,
		TierRows:      st.TierRows,
		TierBytes:     st.TierBytes,
	}, nil
}

// Follow subscribes from sequence 0 and pumps the stream into fn; the
// server's subscribe path makes backlog-then-live exactly-once. Gaps
// (this router lagging the shard's firing rate beyond the shard server's
// subscriber queue) surface as FiringEvent.Gap and are re-sequenced into
// the router's merged log.
func (s *RemoteShard) Follow(fn func(server.FiringEvent)) error {
	sub, err := s.cli.Subscribe(0)
	if err != nil {
		return err
	}
	s.pumpStarted = true
	go func() {
		defer close(s.pumpDone)
		for ev := range sub.C {
			fn(server.FiringEvent{F: ev.Firing, Seq: ev.Seq, Gap: ev.Gap})
		}
	}()
	return nil
}

// Barrier waits for every submitted mutation's outcome: the ops queue is
// flushed, then the in-flight responses collected.
func (s *RemoteShard) Barrier() {
	flushed := make(chan struct{})
	s.ops <- func() { close(flushed) }
	<-flushed
	s.outstanding.Wait()
}

// Close ends the session; the firing pump exits when the server's drain
// closes the subscription stream.
func (s *RemoteShard) Close() error {
	s.closeOnce.Do(func() {
		close(s.ops)
		<-s.opsDone
		s.outstanding.Wait()
		s.closeErr = s.cli.Close()
		if s.pumpStarted {
			<-s.pumpDone
		}
	})
	return s.closeErr
}
