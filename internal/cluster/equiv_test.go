package cluster

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"ptlactive/client"
	"ptlactive/internal/adb"
	"ptlactive/internal/server"
	"ptlactive/internal/server/wire"
	"ptlactive/internal/value"
)

// startClusterServer boots a wire server over a Front of n in-process
// memory shards and returns the shard engines (for direct firing-log
// inspection) and the listen address.
func startClusterServer(t *testing.T, n, workers int) ([]*adb.Engine, string) {
	t.Helper()
	engines := make([]*adb.Engine, n)
	shards := make([]Shard, n)
	for i := range shards {
		engines[i] = adb.NewEngine(adb.Config{Workers: workers})
		shards[i] = NewLocalShard(engines[i])
	}
	front, err := New(Config{Shards: shards, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Backend: front, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return engines, ln.Addr().String()
}

func dialCodec(t *testing.T, addr string, codecs []string, want string) *client.Client {
	t.Helper()
	c, err := client.DialOptions(addr, client.Options{Codecs: codecs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if c.Codec() != want {
		t.Fatalf("negotiated codec %q, want %q", c.Codec(), want)
	}
	return c
}

var clusterCodecs = []struct {
	name   string
	codecs []string
	want   string
}{
	{"binary", nil, wire.CodecNameBinary},
	{"json", []string{wire.CodecNameJSON}, wire.CodecNameJSON},
}

// TestClusterShardEquivalence is the acceptance check of the sharded
// service: concurrent wire clients commit single-shard transactions
// through the router, and afterwards every shard's firing stream must be
// byte-identical to a single-process engine replaying that shard's
// commit subsequence in applied-timestamp order — at Workers 1 and 4 and
// over both codecs, so sharding changes where rules evaluate, never what
// fires. The merged subscription feed must carry exactly the union,
// gap-free, preserving each shard's internal order.
func TestClusterShardEquivalence(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, codec := range clusterCodecs {
			workers, codec := workers, codec
			t.Run(fmt.Sprintf("workers=%d/codec=%s", workers, codec.name), func(t *testing.T) {
				runClusterEquivalence(t, workers, codec.codecs, codec.want)
			})
		}
	}
}

func runClusterEquivalence(t *testing.T, workers int, codecs []string, wantCodec string) {
	const nShards = 3
	engines, addr := startClusterServer(t, nShards, workers)
	part := NewPartitioner(nShards)

	// Two items per shard (co-located by construction) and the rules that
	// watch them: a threshold, a comparison, and a temporal spike rule,
	// per shard.
	type shardKeys struct{ a, b string }
	keys := make([]shardKeys, nShards)
	rules := make([][]struct{ name, cond string }, nShards)
	for s := 0; s < nShards; s++ {
		keys[s].a = keyOn(t, part, s, fmt.Sprintf("s%da", s))
		keys[s].b = keyOn(t, part, s, fmt.Sprintf("s%db", s))
		rules[s] = []struct{ name, cond string }{
			{fmt.Sprintf("hot%d", s), fmt.Sprintf("item(%q) > 80", keys[s].a)},
			{fmt.Sprintf("crossed%d", s), fmt.Sprintf("item(%q) > item(%q)", keys[s].a, keys[s].b)},
			{fmt.Sprintf("spike%d", s), fmt.Sprintf("[x <- item(%q)] lasttime (item(%q) < x - 10)", keys[s].b, keys[s].b)},
		}
	}

	admin := dialCodec(t, addr, codecs, wantCodec)
	for s := 0; s < nShards; s++ {
		// Seed each shard's items so the comparison rules are defined from
		// the first commit.
		if _, err := admin.Exec(0, map[string]value.Value{
			keys[s].a: value.NewInt(0),
			keys[s].b: value.NewInt(50),
		}); err != nil {
			t.Fatal(err)
		}
		for _, r := range rules[s] {
			if err := admin.AddTrigger(r.name, r.cond); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Concurrent clients, each spraying auto-timestamped commits across
	// the shards; every commit records which shard it routed to and the
	// applied timestamp.
	type commit struct {
		ts      int64
		updates map[string]value.Value
	}
	const nclients, ncommits = 4, 30
	var mu sync.Mutex
	perShard := make([][]commit, nShards)
	var wg sync.WaitGroup
	errs := make(chan error, nclients)
	for ci := 0; ci < nclients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := client.DialOptions(addr, client.Options{Codecs: codecs})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < ncommits; i++ {
				s := (ci + i) % nShards
				updates := map[string]value.Value{
					keys[s].a: value.NewInt(int64((ci*31 + i*17) % 100)),
				}
				if i%3 == ci%3 {
					updates[keys[s].b] = value.NewInt(int64((ci*13 + i*29) % 100))
				}
				ts, err := c.Exec(0, updates)
				if err != nil {
					errs <- fmt.Errorf("client %d commit %d: %w", ci, i, err)
					return
				}
				mu.Lock()
				perShard[s] = append(perShard[s], commit{ts: ts, updates: updates})
				mu.Unlock()
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Per-shard equivalence: replay each shard's commit subsequence in
	// applied order on a fresh single engine with the same rules; the
	// firing streams must be byte-identical.
	total := 0
	for s := 0; s < nShards; s++ {
		cms := perShard[s]
		sort.Slice(cms, func(i, j int) bool { return cms[i].ts < cms[j].ts })
		for i := 1; i < len(cms); i++ {
			if cms[i].ts == cms[i-1].ts {
				t.Fatalf("shard %d: duplicate applied timestamp %d", s, cms[i].ts)
			}
		}
		local := adb.NewEngine(adb.Config{Workers: workers})
		if err := local.Exec(1, map[string]value.Value{
			keys[s].a: value.NewInt(0),
			keys[s].b: value.NewInt(50),
		}); err != nil {
			t.Fatal(err)
		}
		for _, r := range rules[s] {
			if err := local.AddTrigger(r.name, r.cond, nil); err != nil {
				t.Fatal(err)
			}
		}
		for _, cm := range cms {
			if err := local.Exec(cm.ts, cm.updates); err != nil {
				t.Fatal(err)
			}
		}
		want := local.Firings()
		got := engines[s].Firings()
		if !reflect.DeepEqual(got, want) {
			if len(got) != len(want) {
				t.Fatalf("shard %d: %d firings, single-engine replay has %d", s, len(got), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("shard %d firing %d differs:\nshard:  %+v\nreplay: %+v", s, i, got[i], want[i])
				}
			}
		}
		total += len(want)
	}
	if total == 0 {
		t.Fatal("workload produced no firings")
	}

	// The merged feed serves exactly the union, gap-free, with each
	// shard's firings in that shard's order.
	sub := dialCodec(t, addr, codecs, wantCodec)
	stream, err := sub.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	shardStreams := make(map[int][]adb.Firing)
	ruleShard := map[string]int{}
	for s := 0; s < nShards; s++ {
		for _, r := range rules[s] {
			ruleShard[r.name] = s
		}
	}
	for i := 0; i < total; i++ {
		select {
		case ev := <-stream.C:
			if ev.Gap != 0 {
				t.Fatalf("gap of %d in an unloaded merged stream", ev.Gap)
			}
			if ev.Seq != i {
				t.Fatalf("merged seq %d, want %d", ev.Seq, i)
			}
			s, ok := ruleShard[ev.Firing.Rule]
			if !ok {
				t.Fatalf("merged stream carries unknown rule %q", ev.Firing.Rule)
			}
			shardStreams[s] = append(shardStreams[s], ev.Firing)
		case <-time.After(10 * time.Second):
			t.Fatalf("merged stream stalled at %d of %d", i, total)
		}
	}
	for s := 0; s < nShards; s++ {
		want := engines[s].Firings()
		got := shardStreams[s]
		// The wire omits empty bindings; the engine may record allocated
		// empty maps. Normalize before comparing.
		norm := func(fs []adb.Firing) []adb.Firing {
			out := make([]adb.Firing, len(fs))
			for i, f := range fs {
				if len(f.Binding) == 0 {
					f.Binding = nil
				}
				out[i] = f
			}
			return out
		}
		if !reflect.DeepEqual(norm(got), norm(want)) {
			t.Fatalf("shard %d: merged stream does not preserve the shard's firing order (%d vs %d firings)", s, len(got), len(want))
		}
	}
}
