package cluster

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"ptlactive/internal/adb"
	"ptlactive/internal/event"
	"ptlactive/internal/server"
	"ptlactive/internal/value"
)

// startBackendServer boots one single-engine wire server (what adbserverd
// runs) and returns its address.
func startBackendServer(t *testing.T) string {
	t.Helper()
	srv, err := server.New(server.Config{
		Engine: adb.NewEngine(adb.Config{}),
		Logf:   t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String()
}

// TestFrontOverRemoteShards runs the router over two adbserverd-style
// backends: rule placement, transaction routing and the merged firing
// feed must work identically to local shards, including the cross-shard
// relay riding each backend's firing subscription.
func TestFrontOverRemoteShards(t *testing.T) {
	const nShards = 2
	shards := make([]Shard, nShards)
	for i := range shards {
		sh, err := DialShard(startBackendServer(t))
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = sh
	}
	f, err := New(Config{Shards: shards, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	p := f.Partitioner()

	item := keyOn(t, p, 0, "it")
	home := p.Owner(item)
	var ev string
	for i := 0; ; i++ {
		ev = fmt.Sprintf("sig%d", i)
		if p.Owner(ev) != home {
			break
		}
	}

	// A local rule on the item's shard and a cross-shard rule relaying the
	// event from its owner.
	if err := doRule(f, "watch", fmt.Sprintf("item(%q) > 5", item), false); err != nil {
		t.Fatalf("GoRule watch: %v", err)
	}
	cond := fmt.Sprintf("@%s and item(%q) > 0", ev, item)
	if err := doRule(f, "cross", cond, false); err != nil {
		t.Fatalf("GoRule cross: %v", err)
	}

	if _, err := doTxn(f, 0, map[string]value.Value{item: value.NewInt(9)}); err != nil {
		t.Fatalf("txn: %v", err)
	}
	doneEmit := make(chan error, 1)
	f.GoEmit(0, []event.Event{event.New(ev)}, func(_ int64, err error) { doneEmit <- err })
	if err := <-doneEmit; err != nil {
		t.Fatalf("GoEmit: %v", err)
	}

	fs := waitFirings(t, f, func(fs []server.FiringEvent) bool {
		var watch, cross bool
		for _, fe := range fs {
			switch fe.F.Rule {
			case "watch":
				watch = true
			case "cross":
				cross = true
			}
		}
		return watch && cross
	})
	for i, fe := range fs {
		if fe.Seq != i {
			t.Fatalf("merged seq %d at index %d", fe.Seq, i)
		}
	}
}
