package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ptlactive/internal/adb"
	"ptlactive/internal/event"
	"ptlactive/internal/server"
	"ptlactive/internal/value"
)

// TestRelayRedeliveryDedup closes the sharding at-least-once gap: shard
// firing subscriptions may redeliver their backlog (a remote shard
// reconnect replays from the resume point), and before the per-shard Seq
// watermark a redelivered relay firing was forwarded again — emitting the
// occurrence twice on the home shard and firing the rule twice. The test
// replays the event-owner shard's backlog into the fan-in a second time
// and pins exactly one firing per rule.
func TestRelayRedeliveryDedup(t *testing.T) {
	engs := make([]*adb.Engine, 3)
	shards := make([]Shard, 3)
	for i := range shards {
		engs[i] = adb.NewEngine(adb.Config{})
		shards[i] = NewLocalShard(engs[i])
	}
	f, err := New(Config{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	p := f.Partitioner()
	item := keyOn(t, p, 0, "it")
	home := p.Owner(item)
	ev := remoteEventFor(p, home)
	evShard := p.Owner(ev)

	cond := fmt.Sprintf("@%s(X) and item(%q) > 0", ev, item)
	if err := doRule(f, "cross", cond, false); err != nil {
		t.Fatal(err)
	}
	if _, err := doTxn(f, 0, map[string]value.Value{item: value.NewInt(3)}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	f.GoEmit(0, []event.Event{event.New(ev, value.NewInt(7))}, func(_ int64, err error) { done <- err })
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	count := func(fs []server.FiringEvent) int {
		n := 0
		for _, fe := range fs {
			if fe.F.Rule == "cross" {
				n++
			}
		}
		return n
	}
	waitFirings(t, f, func(fs []server.FiringEvent) bool { return count(fs) >= 1 })

	// Redeliver the event-owner shard's backlog, exactly as a reconnected
	// firing subscription would: same firings, same per-shard sequence
	// numbers, straight into the fan-in.
	redelivered := 0
	for i, fir := range engs[evShard].Firings() {
		if strings.HasPrefix(fir.Rule, relayPrefix) {
			f.in <- fanMsg{shard: evShard, fe: server.FiringEvent{F: fir, Seq: i}}
			redelivered++
		}
	}
	if redelivered == 0 {
		t.Fatal("no relay firing on the event-owner shard; test is vacuous")
	}

	// A duplicate forward would emit again on the home shard and fire the
	// rule a second time; give the (asynchronous) relay chain time to do
	// its worst, then pin the count.
	f.Barrier()
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		fs, err := f.Firings(0)
		if err != nil {
			t.Fatal(err)
		}
		if n := count(fs); n != 1 {
			t.Fatalf("rule fired %d times after backlog redelivery, want exactly 1", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
