package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"ptlactive/internal/adb"
	"ptlactive/internal/event"
	"ptlactive/internal/server"
	"ptlactive/internal/server/wire"
	"ptlactive/internal/value"
)

// keyOn brute-forces a key with the given prefix that hashes to the
// wanted shard.
func keyOn(t *testing.T, p Partitioner, shard int, prefix string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("%s%d", prefix, i)
		if p.Owner(k) == shard {
			return k
		}
	}
	t.Fatalf("no key with prefix %q on shard %d", prefix, shard)
	return ""
}

func newLocalFront(t *testing.T, n int) *Front {
	t.Helper()
	shards := make([]Shard, n)
	for i := range shards {
		shards[i] = NewLocalShard(adb.NewEngine(adb.Config{}))
	}
	f, err := New(Config{Shards: shards})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func doTxn(f *Front, ts int64, updates map[string]value.Value) (int64, error) {
	done := make(chan struct{})
	var outTS int64
	var outErr error
	f.GoTxn(ts, updates, nil, nil, func(ts int64, err error) {
		outTS, outErr = ts, err
		close(done)
	})
	<-done
	return outTS, outErr
}

func doRule(f *Front, name, cond string, constraint bool) error {
	done := make(chan error, 1)
	f.GoRule(name, cond, constraint, int(adb.Relevant), func(err error) { done <- err })
	return <-done
}

// waitFirings polls the merged log until pred is satisfied or the
// deadline passes (the relay chain is asynchronous past Barrier).
func waitFirings(t *testing.T, f *Front, pred func([]server.FiringEvent) bool) []server.FiringEvent {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		fs, err := f.Firings(0)
		if err != nil {
			t.Fatalf("Firings: %v", err)
		}
		if pred(fs) {
			return fs
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for firings; have %d: %+v", len(fs), fs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFrontRoutesSingleShardTxns(t *testing.T) {
	f := newLocalFront(t, 3)
	p := f.Partitioner()
	k0 := keyOn(t, p, 0, "a")
	k1 := keyOn(t, p, 1, "b")

	if _, err := doTxn(f, 0, map[string]value.Value{k0: value.NewInt(1)}); err != nil {
		t.Fatalf("txn on shard 0: %v", err)
	}
	if _, err := doTxn(f, 0, map[string]value.Value{k1: value.NewInt(2)}); err != nil {
		t.Fatalf("txn on shard 1: %v", err)
	}
	items, err := f.Items()
	if err != nil {
		t.Fatalf("Items: %v", err)
	}
	if got := items[k0]; !got.Equal(value.NewInt(1)) {
		t.Fatalf("item %s = %v, want 1", k0, got)
	}
	if got := items[k1]; !got.Equal(value.NewInt(2)) {
		t.Fatalf("item %s = %v, want 2", k1, got)
	}
}

func TestFrontRefusesCrossShardTxn(t *testing.T) {
	f := newLocalFront(t, 3)
	p := f.Partitioner()
	k0 := keyOn(t, p, 0, "a")
	k1 := keyOn(t, p, 1, "b")

	_, err := doTxn(f, 0, map[string]value.Value{k0: value.NewInt(1), k1: value.NewInt(2)})
	if !errors.Is(err, wire.ErrCrossShard) {
		t.Fatalf("cross-shard txn: err = %v, want ErrCrossShard", err)
	}
}

func TestFrontLocalRuleFires(t *testing.T) {
	f := newLocalFront(t, 3)
	p := f.Partitioner()
	k := keyOn(t, p, 1, "x")

	if err := doRule(f, "watch", fmt.Sprintf("item(%q) > 5", k), false); err != nil {
		t.Fatalf("GoRule: %v", err)
	}
	if _, err := doTxn(f, 0, map[string]value.Value{k: value.NewInt(9)}); err != nil {
		t.Fatalf("txn: %v", err)
	}
	f.Barrier()
	fs := waitFirings(t, f, func(fs []server.FiringEvent) bool { return len(fs) >= 1 })
	if fs[0].F.Rule != "watch" {
		t.Fatalf("firing rule = %q, want watch", fs[0].F.Rule)
	}
	if fs[0].Seq != 0 {
		t.Fatalf("firing seq = %d, want 0", fs[0].Seq)
	}
}

func TestFrontCrossShardRelay(t *testing.T) {
	f := newLocalFront(t, 3)
	p := f.Partitioner()
	item := keyOn(t, p, 0, "it")
	home := p.Owner(item)
	// An event symbol owned by a different shard than the item.
	var ev string
	for i := 0; ; i++ {
		ev = fmt.Sprintf("sig%d", i)
		if p.Owner(ev) != home {
			break
		}
	}
	evShard := p.Owner(ev)

	cond := fmt.Sprintf("@%s(X) and item(%q) > 0", ev, item)
	if err := doRule(f, "cross", cond, false); err != nil {
		t.Fatalf("GoRule cross: %v", err)
	}
	// The relay trigger must sit on the event owner's shard, the rule on
	// the item's shard — and neither shows up in the merged rule listing
	// except the user rule.
	rules, err := f.Rules()
	if err != nil {
		t.Fatalf("Rules: %v", err)
	}
	if len(rules) != 1 || rules[0].Name != "cross" {
		t.Fatalf("Rules = %+v, want just cross", rules)
	}
	f.mu.Lock()
	gotHome := f.ruleHomes["cross"]
	f.mu.Unlock()
	if gotHome != home {
		t.Fatalf("cross homed on %d, want %d", gotHome, home)
	}

	if _, err := doTxn(f, 0, map[string]value.Value{item: value.NewInt(3)}); err != nil {
		t.Fatalf("seed txn: %v", err)
	}
	// Emitting the event routes to its owner shard; the relay forwards it
	// to the home shard, where the rule observes it.
	done := make(chan error, 1)
	f.GoEmit(0, []event.Event{event.New(ev, value.NewInt(7))}, func(_ int64, err error) { done <- err })
	if err := <-done; err != nil {
		t.Fatalf("GoEmit: %v", err)
	}

	fs := waitFirings(t, f, func(fs []server.FiringEvent) bool {
		for _, fe := range fs {
			if fe.F.Rule == "cross" {
				return true
			}
		}
		return false
	})
	var cross *server.FiringEvent
	for i := range fs {
		if fs[i].F.Rule == "cross" {
			cross = &fs[i]
		}
	}
	if got := cross.F.Binding["X"]; !got.Equal(value.NewInt(7)) {
		t.Fatalf("binding X = %v, want 7", got)
	}
	// The relay trigger's own firing (on the event-owner shard) must be
	// hidden from the merged log.
	for _, fe := range fs {
		if fe.Gap == 0 && fe.F.Rule != "cross" {
			t.Fatalf("unexpected visible firing %+v", fe)
		}
	}
	_ = evShard
}

func TestFrontRefusesCrossShardConstraint(t *testing.T) {
	f := newLocalFront(t, 3)
	p := f.Partitioner()
	item := keyOn(t, p, 0, "it")
	var ev string
	for i := 0; ; i++ {
		ev = fmt.Sprintf("sig%d", i)
		if p.Owner(ev) != p.Owner(item) {
			break
		}
	}
	cond := fmt.Sprintf("not (@%s and item(%q) > 0)", ev, item)
	err := doRule(f, "c", cond, true)
	if !errors.Is(err, wire.ErrCrossShard) {
		t.Fatalf("cross-shard constraint: err = %v, want ErrCrossShard", err)
	}
}

func TestFrontSyncFirings(t *testing.T) {
	f := newLocalFront(t, 2)
	p := f.Partitioner()
	k := keyOn(t, p, 0, "x")
	if err := doRule(f, "w", fmt.Sprintf("item(%q) > 0", k), false); err != nil {
		t.Fatalf("GoRule: %v", err)
	}
	if _, err := doTxn(f, 0, map[string]value.Value{k: value.NewInt(1)}); err != nil {
		t.Fatalf("txn: %v", err)
	}
	f.Barrier()
	waitFirings(t, f, func(fs []server.FiringEvent) bool { return len(fs) >= 1 })

	type sync struct {
		from    int
		backlog []server.FiringEvent
	}
	got := make(chan sync, 1)
	f.SyncFirings(0, func(from int, backlog []server.FiringEvent) {
		got <- sync{from, backlog}
	})
	s := <-got
	if s.from != 0 || len(s.backlog) != 1 || s.backlog[0].F.Rule != "w" {
		t.Fatalf("SyncFirings = %+v", s)
	}
}
