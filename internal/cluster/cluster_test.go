package cluster

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"ptlactive/internal/adb"
	"ptlactive/internal/event"
	"ptlactive/internal/server"
	"ptlactive/internal/server/wire"
	"ptlactive/internal/value"
)

// keyOn brute-forces a key with the given prefix that hashes to the
// wanted shard.
func keyOn(t *testing.T, p Partitioner, shard int, prefix string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("%s%d", prefix, i)
		if p.Owner(k) == shard {
			return k
		}
	}
	t.Fatalf("no key with prefix %q on shard %d", prefix, shard)
	return ""
}

func newLocalFront(t *testing.T, n int) *Front {
	t.Helper()
	shards := make([]Shard, n)
	for i := range shards {
		shards[i] = NewLocalShard(adb.NewEngine(adb.Config{}))
	}
	f, err := New(Config{Shards: shards})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func doTxn(f *Front, ts int64, updates map[string]value.Value) (int64, error) {
	done := make(chan struct{})
	var outTS int64
	var outErr error
	f.GoTxn(ts, updates, nil, nil, func(ts int64, err error) {
		outTS, outErr = ts, err
		close(done)
	})
	<-done
	return outTS, outErr
}

func doRule(f *Front, name, cond string, constraint bool) error {
	done := make(chan error, 1)
	f.GoRule(name, cond, constraint, int(adb.Relevant), func(err error) { done <- err })
	return <-done
}

// waitFirings polls the merged log until pred is satisfied or the
// deadline passes (the relay chain is asynchronous past Barrier).
func waitFirings(t *testing.T, f *Front, pred func([]server.FiringEvent) bool) []server.FiringEvent {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		fs, err := f.Firings(0)
		if err != nil {
			t.Fatalf("Firings: %v", err)
		}
		if pred(fs) {
			return fs
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for firings; have %d: %+v", len(fs), fs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestFrontRoutesSingleShardTxns(t *testing.T) {
	f := newLocalFront(t, 3)
	p := f.Partitioner()
	k0 := keyOn(t, p, 0, "a")
	k1 := keyOn(t, p, 1, "b")

	if _, err := doTxn(f, 0, map[string]value.Value{k0: value.NewInt(1)}); err != nil {
		t.Fatalf("txn on shard 0: %v", err)
	}
	if _, err := doTxn(f, 0, map[string]value.Value{k1: value.NewInt(2)}); err != nil {
		t.Fatalf("txn on shard 1: %v", err)
	}
	items, err := f.Items()
	if err != nil {
		t.Fatalf("Items: %v", err)
	}
	if got := items[k0]; !got.Equal(value.NewInt(1)) {
		t.Fatalf("item %s = %v, want 1", k0, got)
	}
	if got := items[k1]; !got.Equal(value.NewInt(2)) {
		t.Fatalf("item %s = %v, want 2", k1, got)
	}
}

func TestFrontRefusesCrossShardTxn(t *testing.T) {
	f := newLocalFront(t, 3)
	p := f.Partitioner()
	k0 := keyOn(t, p, 0, "a")
	k1 := keyOn(t, p, 1, "b")

	_, err := doTxn(f, 0, map[string]value.Value{k0: value.NewInt(1), k1: value.NewInt(2)})
	if !errors.Is(err, wire.ErrCrossShard) {
		t.Fatalf("cross-shard txn: err = %v, want ErrCrossShard", err)
	}
}

func TestFrontLocalRuleFires(t *testing.T) {
	f := newLocalFront(t, 3)
	p := f.Partitioner()
	k := keyOn(t, p, 1, "x")

	if err := doRule(f, "watch", fmt.Sprintf("item(%q) > 5", k), false); err != nil {
		t.Fatalf("GoRule: %v", err)
	}
	if _, err := doTxn(f, 0, map[string]value.Value{k: value.NewInt(9)}); err != nil {
		t.Fatalf("txn: %v", err)
	}
	f.Barrier()
	fs := waitFirings(t, f, func(fs []server.FiringEvent) bool { return len(fs) >= 1 })
	if fs[0].F.Rule != "watch" {
		t.Fatalf("firing rule = %q, want watch", fs[0].F.Rule)
	}
	if fs[0].Seq != 0 {
		t.Fatalf("firing seq = %d, want 0", fs[0].Seq)
	}
}

func TestFrontCrossShardRelay(t *testing.T) {
	f := newLocalFront(t, 3)
	p := f.Partitioner()
	item := keyOn(t, p, 0, "it")
	home := p.Owner(item)
	// An event symbol owned by a different shard than the item.
	var ev string
	for i := 0; ; i++ {
		ev = fmt.Sprintf("sig%d", i)
		if p.Owner(ev) != home {
			break
		}
	}
	evShard := p.Owner(ev)

	cond := fmt.Sprintf("@%s(X) and item(%q) > 0", ev, item)
	if err := doRule(f, "cross", cond, false); err != nil {
		t.Fatalf("GoRule cross: %v", err)
	}
	// The relay trigger must sit on the event owner's shard, the rule on
	// the item's shard — and neither shows up in the merged rule listing
	// except the user rule.
	rules, err := f.Rules()
	if err != nil {
		t.Fatalf("Rules: %v", err)
	}
	if len(rules) != 1 || rules[0].Name != "cross" {
		t.Fatalf("Rules = %+v, want just cross", rules)
	}
	f.mu.Lock()
	gotHome := f.ruleHomes["cross"]
	f.mu.Unlock()
	if gotHome != home {
		t.Fatalf("cross homed on %d, want %d", gotHome, home)
	}

	if _, err := doTxn(f, 0, map[string]value.Value{item: value.NewInt(3)}); err != nil {
		t.Fatalf("seed txn: %v", err)
	}
	// Emitting the event routes to its owner shard; the relay forwards it
	// to the home shard, where the rule observes it.
	done := make(chan error, 1)
	f.GoEmit(0, []event.Event{event.New(ev, value.NewInt(7))}, func(_ int64, err error) { done <- err })
	if err := <-done; err != nil {
		t.Fatalf("GoEmit: %v", err)
	}

	fs := waitFirings(t, f, func(fs []server.FiringEvent) bool {
		for _, fe := range fs {
			if fe.F.Rule == "cross" {
				return true
			}
		}
		return false
	})
	var cross *server.FiringEvent
	for i := range fs {
		if fs[i].F.Rule == "cross" {
			cross = &fs[i]
		}
	}
	if got := cross.F.Binding["X"]; !got.Equal(value.NewInt(7)) {
		t.Fatalf("binding X = %v, want 7", got)
	}
	// The relay trigger's own firing (on the event-owner shard) must be
	// hidden from the merged log.
	for _, fe := range fs {
		if fe.Gap == 0 && fe.F.Rule != "cross" {
			t.Fatalf("unexpected visible firing %+v", fe)
		}
	}
	_ = evShard
}

// remoteEventFor brute-forces an event symbol owned by a shard other
// than home.
func remoteEventFor(p Partitioner, home int) string {
	for i := 0; ; i++ {
		ev := fmt.Sprintf("sig%d", i)
		if p.Owner(ev) != home {
			return ev
		}
	}
}

// countRelays lists the relay triggers present on one shard.
func countRelays(t *testing.T, sh Shard) int {
	t.Helper()
	rules, err := sh.Rules()
	if err != nil {
		t.Fatalf("shard Rules: %v", err)
	}
	n := 0
	for _, r := range rules {
		if strings.HasPrefix(r.Name, relayPrefix) {
			n++
		}
	}
	return n
}

// TestFrontSharedRemoteEventRelay: two rules homed on one shard
// observing the same remotely-owned event symbol must share a single
// relay trigger, so one occurrence forwards once and fires each rule
// exactly once — not once per observing rule.
func TestFrontSharedRemoteEventRelay(t *testing.T) {
	f := newLocalFront(t, 3)
	p := f.Partitioner()
	item := keyOn(t, p, 0, "it")
	home := p.Owner(item)
	ev := remoteEventFor(p, home)
	owner := p.Owner(ev)

	cond := fmt.Sprintf("@%s(X) and item(%q) > 0", ev, item)
	for _, name := range []string{"r1", "r2"} {
		if err := doRule(f, name, cond, false); err != nil {
			t.Fatalf("GoRule %s: %v", name, err)
		}
	}
	if n := countRelays(t, f.shards[owner]); n != 1 {
		t.Fatalf("owner shard has %d relay triggers, want 1 shared", n)
	}

	if _, err := doTxn(f, 0, map[string]value.Value{item: value.NewInt(3)}); err != nil {
		t.Fatalf("seed txn: %v", err)
	}
	done := make(chan error, 1)
	f.GoEmit(0, []event.Event{event.New(ev, value.NewInt(7))}, func(_ int64, err error) { done <- err })
	if err := <-done; err != nil {
		t.Fatalf("GoEmit: %v", err)
	}

	count := func(fs []server.FiringEvent) map[string]int {
		c := map[string]int{}
		for _, fe := range fs {
			if fe.Gap == 0 {
				c[fe.F.Rule]++
			}
		}
		return c
	}
	waitFirings(t, f, func(fs []server.FiringEvent) bool {
		c := count(fs)
		return c["r1"] >= 1 && c["r2"] >= 1
	})
	// Let any erroneous duplicate forward (the bug this test pins: one
	// relay per observing rule) finish its commit before counting.
	time.Sleep(200 * time.Millisecond)
	f.Barrier()
	fs, err := f.Firings(0)
	if err != nil {
		t.Fatalf("Firings: %v", err)
	}
	c := count(fs)
	if c["r1"] != 1 || c["r2"] != 1 {
		t.Fatalf("firing counts r1=%d r2=%d, want exactly 1 each (duplicate relay forwarding?)", c["r1"], c["r2"])
	}
}

// TestFrontRelaySurvivesFailedRegistration: a home-shard registration
// failure must leave the shared relay reusable — a later rule with the
// same footprint registers cleanly against the existing relay instead of
// failing on a duplicate relay name.
func TestFrontRelaySurvivesFailedRegistration(t *testing.T) {
	f := newLocalFront(t, 3)
	p := f.Partitioner()
	item := keyOn(t, p, 0, "it")
	home := p.Owner(item)
	ev := remoteEventFor(p, home)
	owner := p.Owner(ev)
	cond := fmt.Sprintf("@%s(X) and item(%q) > 0", ev, item)

	// Occupy the rule name directly on the home shard, behind the router's
	// back, so the router's home registration fails after its relay step.
	errc := make(chan error, 1)
	f.shards[home].GoRule("taken", fmt.Sprintf("item(%q) > 100", item), false,
		int(adb.Relevant), func(err error) { errc <- err })
	if err := <-errc; err != nil {
		t.Fatalf("pre-registering on shard: %v", err)
	}
	if err := doRule(f, "taken", cond, false); err == nil {
		t.Fatal("GoRule taken: expected duplicate-name failure from the home shard")
	}
	if n := countRelays(t, f.shards[owner]); n != 1 {
		t.Fatalf("owner shard has %d relay triggers after failed registration, want 1", n)
	}

	// A sibling rule with the same remote event must reuse that relay.
	if err := doRule(f, "ok", cond, false); err != nil {
		t.Fatalf("GoRule ok after failed sibling: %v", err)
	}
	if n := countRelays(t, f.shards[owner]); n != 1 {
		t.Fatalf("owner shard has %d relay triggers, want 1 shared", n)
	}
	if _, err := doTxn(f, 0, map[string]value.Value{item: value.NewInt(3)}); err != nil {
		t.Fatalf("seed txn: %v", err)
	}
	done := make(chan error, 1)
	f.GoEmit(0, []event.Event{event.New(ev, value.NewInt(5))}, func(_ int64, err error) { done <- err })
	if err := <-done; err != nil {
		t.Fatalf("GoEmit: %v", err)
	}
	waitFirings(t, f, func(fs []server.FiringEvent) bool {
		for _, fe := range fs {
			if fe.Gap == 0 && fe.F.Rule == "ok" {
				return true
			}
		}
		return false
	})
}

// TestFrontConcurrentDuplicateRuleName: two concurrent registrations of
// one name must resolve to exactly one winner — the name is reserved
// under the lock before the asynchronous fan-out begins.
func TestFrontConcurrentDuplicateRuleName(t *testing.T) {
	f := newLocalFront(t, 2)
	p := f.Partitioner()
	k := keyOn(t, p, 0, "x")
	cond := fmt.Sprintf("item(%q) > 0", k)
	res := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go f.GoRule("dup", cond, false, int(adb.Relevant), func(err error) { res <- err })
	}
	var oks int
	for i := 0; i < 2; i++ {
		if err := <-res; err == nil {
			oks++
		}
	}
	if oks != 1 {
		t.Fatalf("%d of 2 concurrent same-name registrations succeeded, want exactly 1", oks)
	}
	f.mu.Lock()
	_, homed := f.ruleHomes["dup"]
	pending := f.rulePending["dup"]
	f.mu.Unlock()
	if !homed || pending {
		t.Fatalf("after settle: homed=%v pending=%v, want homed and not pending", homed, pending)
	}
}

// TestFrontGapDegradesHealth: a shard firing-subscription gap loses any
// relay firings inside it, so the cluster must report degraded health
// naming the shard.
func TestFrontGapDegradesHealth(t *testing.T) {
	f := newLocalFront(t, 2)
	f.in <- fanMsg{shard: 1, fe: server.FiringEvent{Gap: 3}}
	f.Barrier()
	_, degraded, err := f.Health()
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if !strings.Contains(degraded, "shard 1") || !strings.Contains(degraded, "gapped (3") {
		t.Fatalf("degraded = %q, want a shard 1 gap cause", degraded)
	}
}

func TestFrontRefusesCrossShardConstraint(t *testing.T) {
	f := newLocalFront(t, 3)
	p := f.Partitioner()
	item := keyOn(t, p, 0, "it")
	var ev string
	for i := 0; ; i++ {
		ev = fmt.Sprintf("sig%d", i)
		if p.Owner(ev) != p.Owner(item) {
			break
		}
	}
	cond := fmt.Sprintf("not (@%s and item(%q) > 0)", ev, item)
	err := doRule(f, "c", cond, true)
	if !errors.Is(err, wire.ErrCrossShard) {
		t.Fatalf("cross-shard constraint: err = %v, want ErrCrossShard", err)
	}
}

func TestFrontSyncFirings(t *testing.T) {
	f := newLocalFront(t, 2)
	p := f.Partitioner()
	k := keyOn(t, p, 0, "x")
	if err := doRule(f, "w", fmt.Sprintf("item(%q) > 0", k), false); err != nil {
		t.Fatalf("GoRule: %v", err)
	}
	if _, err := doTxn(f, 0, map[string]value.Value{k: value.NewInt(1)}); err != nil {
		t.Fatalf("txn: %v", err)
	}
	f.Barrier()
	waitFirings(t, f, func(fs []server.FiringEvent) bool { return len(fs) >= 1 })

	type sync struct {
		from    int
		backlog []server.FiringEvent
	}
	got := make(chan sync, 1)
	f.SyncFirings(0, func(from int, backlog []server.FiringEvent) {
		got <- sync{from, backlog}
	})
	s := <-got
	if s.from != 0 || len(s.backlog) != 1 || s.backlog[0].F.Rule != "w" {
		t.Fatalf("SyncFirings = %+v", s)
	}
}
