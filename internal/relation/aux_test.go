package relation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ptlactive/internal/value"
)

func TestAuxCaptureAsOf(t *testing.T) {
	a := NewAux(stockSchema())
	_ = a.Capture(1, [][]value.Value{row("ibm", 10)})
	_ = a.Capture(2, [][]value.Value{row("ibm", 15)})
	_ = a.Capture(5, [][]value.Value{row("ibm", 18), row("xyz", 100)})
	_ = a.Capture(8, [][]value.Value{row("xyz", 100)})

	type q struct {
		t    int64
		want [][]value.Value
	}
	cases := []q{
		{0, nil},
		{1, [][]value.Value{row("ibm", 10)}},
		{3, [][]value.Value{row("ibm", 15)}}, // interval [2,5) covers 3
		{5, [][]value.Value{row("ibm", 18), row("xyz", 100)}},
		{7, [][]value.Value{row("ibm", 18), row("xyz", 100)}},
		{8, [][]value.Value{row("xyz", 100)}},
		{100, [][]value.Value{row("xyz", 100)}}, // open interval
	}
	for _, c := range cases {
		got := a.AsOf(c.t)
		want, _ := FromRows(stockSchema(), c.want)
		if !got.Equal(want) {
			t.Errorf("AsOf(%d) = %v, want %v", c.t, got, want)
		}
	}
}

func TestAuxCaptureOrderEnforced(t *testing.T) {
	a := NewAux(stockSchema())
	if err := a.Capture(5, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Capture(3, nil); err == nil {
		t.Error("out-of-order capture should error")
	}
	if err := a.Capture(5, [][]value.Value{row("a", 1)}); err != nil {
		t.Errorf("equal-time capture should be allowed: %v", err)
	}
	if err := a.Capture(6, [][]value.Value{{value.NewInt(1), value.NewInt(2)}}); err == nil {
		t.Error("schema-violating capture should error")
	}
}

func TestAuxIntervals(t *testing.T) {
	a := NewAux(stockSchema())
	_ = a.Capture(1, [][]value.Value{row("ibm", 10)})
	_ = a.Capture(3, nil)
	_ = a.Capture(5, [][]value.Value{row("ibm", 10)})
	ivals := a.Intervals(row("ibm", 10))
	if len(ivals) != 2 || ivals[0] != [2]int64{1, 3} || ivals[1] != [2]int64{5, TEndMax} {
		t.Errorf("Intervals = %v", ivals)
	}
	if a.Len() != 2 {
		t.Errorf("Len = %d, want 2", a.Len())
	}
}

func TestAuxPrune(t *testing.T) {
	a := NewAux(stockSchema())
	_ = a.Capture(1, [][]value.Value{row("a", 1)})
	_ = a.Capture(2, [][]value.Value{row("b", 2)}) // closes a at 2
	_ = a.Capture(3, [][]value.Value{row("c", 3)}) // closes b at 3
	if dropped := a.Prune(2); dropped != 1 {
		t.Fatalf("Prune(2) dropped %d, want 1 (interval of a ended at 2)", dropped)
	}
	// Open row of c must survive and still be tracked: a new capture that
	// keeps c must not duplicate it.
	_ = a.Capture(4, [][]value.Value{row("c", 3)})
	if got := a.AsOf(4); got.Len() != 1 {
		t.Errorf("AsOf(4) after prune = %v", got)
	}
	if len(a.Intervals(row("c", 3))) != 1 {
		t.Error("prune duplicated the open interval")
	}
	// Pruned history is gone.
	if got := a.AsOf(1); got.Len() != 0 {
		t.Errorf("AsOf(1) after prune should be empty, got %v", got)
	}
}

func TestScalarAux(t *testing.T) {
	s := NewScalarAux()
	if _, ok := s.AsOf(0); ok {
		t.Error("AsOf before first capture should miss")
	}
	_ = s.Capture(1, value.NewFloat(10))
	_ = s.Capture(2, value.NewFloat(15))
	_ = s.Capture(5, value.NewFloat(18))
	v, ok := s.AsOf(3)
	if !ok || v.AsFloat() != 15 {
		t.Errorf("AsOf(3) = %v %t", v, ok)
	}
	v, ok = s.AsOf(9)
	if !ok || v.AsFloat() != 18 {
		t.Errorf("AsOf(9) = %v %t", v, ok)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Prune(2) != 1 {
		t.Error("Prune should drop the first interval")
	}
}

// Property: AsOf(t) returns exactly the rows of the capture in effect at t
// (DESIGN.md §5: "auxiliary relation as-of retrieval == value recorded at
// capture time").
func TestAuxAsOfMatchesCaptures(t *testing.T) {
	schema := MustSchema(Column{Name: "v", Kind: value.Int})
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAux(schema)
		type capture struct {
			t    int64
			rows map[int64]struct{}
		}
		var caps []capture
		now := int64(0)
		for i := 0; i < 30; i++ {
			now += int64(rng.Intn(3) + 1)
			rows := make(map[int64]struct{})
			var rr [][]value.Value
			for j := 0; j < rng.Intn(4); j++ {
				v := int64(rng.Intn(5))
				if _, dup := rows[v]; dup {
					continue
				}
				rows[v] = struct{}{}
				rr = append(rr, []value.Value{value.NewInt(v)})
			}
			if err := a.Capture(now, rr); err != nil {
				return false
			}
			caps = append(caps, capture{t: now, rows: rows})
		}
		// Check every timestamp from 0..now+2 against the reference.
		for q := int64(0); q <= now+2; q++ {
			var want map[int64]struct{}
			for _, c := range caps {
				if c.t <= q {
					want = c.rows
				}
			}
			got := a.AsOf(q)
			if len(want) != got.Len() {
				return false
			}
			for v := range want {
				if !got.Contains([]value.Value{value.NewInt(v)}) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
