package relation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ptlactive/internal/value"
)

func TestAuxCaptureAsOf(t *testing.T) {
	a := NewAux(stockSchema())
	_ = a.Capture(1, [][]value.Value{row("ibm", 10)})
	_ = a.Capture(2, [][]value.Value{row("ibm", 15)})
	_ = a.Capture(5, [][]value.Value{row("ibm", 18), row("xyz", 100)})
	_ = a.Capture(8, [][]value.Value{row("xyz", 100)})

	type q struct {
		t    int64
		want [][]value.Value
	}
	cases := []q{
		{0, nil},
		{1, [][]value.Value{row("ibm", 10)}},
		{3, [][]value.Value{row("ibm", 15)}}, // interval [2,5) covers 3
		{5, [][]value.Value{row("ibm", 18), row("xyz", 100)}},
		{7, [][]value.Value{row("ibm", 18), row("xyz", 100)}},
		{8, [][]value.Value{row("xyz", 100)}},
		{100, [][]value.Value{row("xyz", 100)}}, // open interval
	}
	for _, c := range cases {
		got := a.AsOf(c.t)
		want, _ := FromRows(stockSchema(), c.want)
		if !got.Equal(want) {
			t.Errorf("AsOf(%d) = %v, want %v", c.t, got, want)
		}
	}
}

func TestAuxCaptureOrderEnforced(t *testing.T) {
	a := NewAux(stockSchema())
	if err := a.Capture(5, nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Capture(3, nil); err == nil {
		t.Error("out-of-order capture should error")
	}
	if err := a.Capture(5, [][]value.Value{row("a", 1)}); err != nil {
		t.Errorf("equal-time capture should be allowed: %v", err)
	}
	if err := a.Capture(6, [][]value.Value{{value.NewInt(1), value.NewInt(2)}}); err == nil {
		t.Error("schema-violating capture should error")
	}
}

func TestAuxIntervals(t *testing.T) {
	a := NewAux(stockSchema())
	_ = a.Capture(1, [][]value.Value{row("ibm", 10)})
	_ = a.Capture(3, nil)
	_ = a.Capture(5, [][]value.Value{row("ibm", 10)})
	ivals := a.Intervals(row("ibm", 10))
	if len(ivals) != 2 || ivals[0] != [2]int64{1, 3} || ivals[1] != [2]int64{5, TEndMax} {
		t.Errorf("Intervals = %v", ivals)
	}
	if a.Len() != 2 {
		t.Errorf("Len = %d, want 2", a.Len())
	}
}

func TestAuxPrune(t *testing.T) {
	a := NewAux(stockSchema())
	_ = a.Capture(1, [][]value.Value{row("a", 1)})
	_ = a.Capture(2, [][]value.Value{row("b", 2)}) // closes a at 2
	_ = a.Capture(3, [][]value.Value{row("c", 3)}) // closes b at 3
	if dropped := a.Prune(2); dropped != 1 {
		t.Fatalf("Prune(2) dropped %d, want 1 (interval of a ended at 2)", dropped)
	}
	// Open row of c must survive and still be tracked: a new capture that
	// keeps c must not duplicate it.
	_ = a.Capture(4, [][]value.Value{row("c", 3)})
	if got := a.AsOf(4); got.Len() != 1 {
		t.Errorf("AsOf(4) after prune = %v", got)
	}
	if len(a.Intervals(row("c", 3))) != 1 {
		t.Error("prune duplicated the open interval")
	}
	// Pruned history is gone.
	if got := a.AsOf(1); got.Len() != 0 {
		t.Errorf("AsOf(1) after prune should be empty, got %v", got)
	}
}

func TestScalarAux(t *testing.T) {
	s := NewScalarAux()
	if _, ok := s.AsOf(0); ok {
		t.Error("AsOf before first capture should miss")
	}
	_ = s.Capture(1, value.NewFloat(10))
	_ = s.Capture(2, value.NewFloat(15))
	_ = s.Capture(5, value.NewFloat(18))
	v, ok := s.AsOf(3)
	if !ok || v.AsFloat() != 15 {
		t.Errorf("AsOf(3) = %v %t", v, ok)
	}
	v, ok = s.AsOf(9)
	if !ok || v.AsFloat() != 18 {
		t.Errorf("AsOf(9) = %v %t", v, ok)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Prune(2) != 1 {
		t.Error("Prune should drop the first interval")
	}
}

// Regression: the tuples of an as-of snapshot come back in the order the
// rows were first captured, independent of map iteration. (Capture used to
// open new intervals while ranging over its presence map, so the row order
// of AsOf — and of every relation exported from an aux — varied run to
// run.)
func TestAuxCaptureRowOrderDeterministic(t *testing.T) {
	symbols := []string{"ibm", "xyz", "acme", "init", "zeta", "alpha", "mid", "qqq"}
	build := func() []string {
		a := NewAux(stockSchema())
		var rows [][]value.Value
		for i, sym := range symbols {
			rows = append(rows, row(sym, float64(i)))
		}
		_ = a.Capture(1, rows)
		// A second capture keeps some open rows and adds fresh ones; new
		// rows must append after the retained ones, again in input order.
		rows2 := [][]value.Value{rows[3], rows[1], row("new2", 100), row("new1", 101)}
		_ = a.Capture(2, rows2)
		var got []string
		for _, r := range a.AsOf(2).Rows() {
			got = append(got, r[0].AsString())
		}
		return got
	}
	first := build()
	// Retained rows keep their original interval order (xyz was opened
	// before init at t=1); fresh rows append in capture-input order.
	want := []string{"xyz", "init", "new2", "new1"}
	if !slicesEqual(first, want) {
		t.Fatalf("AsOf(2) rows out of capture order: %v, want %v", first, want)
	}
	for i := 0; i < 20; i++ {
		if got := build(); !slicesEqual(got, first) {
			t.Fatalf("row order varies across runs: %v vs %v", got, first)
		}
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Property: AsOf(t) returns exactly the rows of the capture in effect at t
// (DESIGN.md §5: "auxiliary relation as-of retrieval == value recorded at
// capture time").
func TestAuxAsOfMatchesCaptures(t *testing.T) {
	schema := MustSchema(Column{Name: "v", Kind: value.Int})
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAux(schema)
		type capture struct {
			t    int64
			rows map[int64]struct{}
		}
		var caps []capture
		now := int64(0)
		for i := 0; i < 30; i++ {
			now += int64(rng.Intn(3) + 1)
			rows := make(map[int64]struct{})
			var rr [][]value.Value
			for j := 0; j < rng.Intn(4); j++ {
				v := int64(rng.Intn(5))
				if _, dup := rows[v]; dup {
					continue
				}
				rows[v] = struct{}{}
				rr = append(rr, []value.Value{value.NewInt(v)})
			}
			if err := a.Capture(now, rr); err != nil {
				return false
			}
			caps = append(caps, capture{t: now, rows: rows})
		}
		// Check every timestamp from 0..now+2 against the reference.
		for q := int64(0); q <= now+2; q++ {
			var want map[int64]struct{}
			for _, c := range caps {
				if c.t <= q {
					want = c.rows
				}
			}
			got := a.AsOf(q)
			if len(want) != got.Len() {
				return false
			}
			for v := range want {
				if !got.Contains([]value.Value{value.NewInt(v)}) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
