package relation

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"ptlactive/internal/value"
)

// TEndMax is the open T_end of a currently valid interval, the paper's
// "MAX" sentinel.
const TEndMax = int64(math.MaxInt64)

// Aux is an auxiliary relation as described in Section 5: it captures the
// values of a query q over time. For a k-ary query it holds k+2 attributes;
// the last two, T_start and T_end, delimit the half-open interval
// [T_start, T_end) of timestamps during which the tuple belonged to the
// query's value. Scalar queries are captured as 1-ary relations.
//
// Aux supports exactly the two operations the algorithm needs:
// Capture(t, rows) — record the query value observed at time t — and
// AsOf(t) — retrieve the value the query had at time t by a selection on
// the interval columns followed by a projection that drops them.
//
// Captures and prunes must come from a single writer at a time; AsOf,
// Len and Intervals may run concurrently with them and with each other.
type Aux struct {
	mu     sync.RWMutex
	schema *Schema // schema of the captured query (without interval columns)
	rows   []auxRow
	// open maps tuple key -> index of the currently open row, if any.
	open map[string]int
	// lastCapture is the timestamp of the latest Capture; captures must be
	// in nondecreasing time order in the transaction-time model.
	lastCapture int64
	captured    bool
}

type auxRow struct {
	tuple  []value.Value
	tstart int64
	tend   int64 // TEndMax while open
}

// NewAux creates an auxiliary relation for a query with the given schema.
func NewAux(schema *Schema) *Aux {
	return &Aux{schema: schema, open: make(map[string]int)}
}

// Schema returns the captured query's schema (without interval columns).
func (a *Aux) Schema() *Schema { return a.schema }

// Len returns the total number of interval rows retained (open + closed).
// This is the state-size metric benched in E2.
func (a *Aux) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.rows)
}

// Capture records that the query's value at time t is exactly rows.
// Tuples that appear open and are no longer in rows get T_end = t; tuples
// not currently open get a new interval [t, MAX), in the order they appear
// in rows — so retained interval order, and hence AsOf tuple order, is a
// deterministic function of the capture sequence. Capture times must be
// nondecreasing.
func (a *Aux) Capture(t int64, rows [][]value.Value) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.captured && t < a.lastCapture {
		return fmt.Errorf("relation: aux capture at %d before previous capture at %d", t, a.lastCapture)
	}
	a.captured = true
	a.lastCapture = t
	now := make(map[string]bool, len(rows))
	for _, row := range rows {
		if err := a.schema.checkTuple(row); err != nil {
			return err
		}
		now[rowKey(row)] = true
	}
	// Close intervals of tuples that disappeared.
	for k, i := range a.open {
		if !now[k] {
			a.rows[i].tend = t
			delete(a.open, k)
		}
	}
	// Open intervals for new tuples, in input order (iterating the lookup
	// map here instead made the interval order vary run to run).
	for _, row := range rows {
		k := rowKey(row)
		if _, already := a.open[k]; already {
			continue
		}
		cp := make([]value.Value, len(row))
		copy(cp, row)
		a.open[k] = len(a.rows)
		a.rows = append(a.rows, auxRow{tuple: cp, tstart: t, tend: TEndMax})
	}
	return nil
}

// AsOf returns the query value at time t: all tuples whose interval
// contains t. The result is a fresh relation over the query schema (the
// paper's "selection followed by a projection").
func (a *Aux) AsOf(t int64) *Relation {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := New(a.schema)
	for _, r := range a.rows {
		if r.tstart <= t && t < r.tend {
			// Validated at capture; ignore the impossible duplicate error.
			_ = out.Insert(r.tuple)
		}
	}
	return out
}

// Prune discards every interval that ended at or before the watermark t.
// The incremental algorithm calls this once the time-bound optimization
// proves no condition can refer back before t, which is what keeps state
// bounded for bounded operators.
func (a *Aux) Prune(t int64) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	kept := a.rows[:0]
	dropped := 0
	for _, r := range a.rows {
		if r.tend <= t {
			dropped++
			continue
		}
		kept = append(kept, r)
	}
	a.rows = kept
	// Rebuild the open index since positions moved.
	for k := range a.open {
		delete(a.open, k)
	}
	for i, r := range a.rows {
		if r.tend == TEndMax {
			a.open[rowKey(r.tuple)] = i
		}
	}
	return dropped
}

// Expired returns copies of the interval rows Prune(t) would discard —
// every closed interval that ended at or before t, in capture order. The
// retention policy spills exactly these to the cold tier (fsynced) before
// calling Prune, so no captured interval ever exists in neither place.
func (a *Aux) Expired(t int64) []IntervalRow {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var out []IntervalRow
	for _, r := range a.rows {
		if r.tend > t {
			continue
		}
		cp := make([]value.Value, len(r.tuple))
		copy(cp, r.tuple)
		out = append(out, IntervalRow{Tuple: cp, Start: r.tstart, End: r.tend})
	}
	return out
}

// Intervals returns (tstart, tend) pairs for a given tuple, sorted by
// start; used by tests and the inspection CLI.
func (a *Aux) Intervals(row []value.Value) [][2]int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	k := rowKey(row)
	var out [][2]int64
	for _, r := range a.rows {
		if rowKey(r.tuple) == k {
			out = append(out, [2]int64{r.tstart, r.tend})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// IntervalRow is one interval row in snapshot form: a tuple valid during
// [Start, End), with End = TEndMax while the interval is still open. The
// durability subsystem (internal/persist) stores these per tracked item.
type IntervalRow struct {
	Tuple []value.Value
	Start int64
	End   int64
}

// SnapshotRows returns the retained interval rows in capture order plus
// the capture watermark; RestoreRows inverts it on a fresh Aux.
func (a *Aux) SnapshotRows() (rows []IntervalRow, lastCapture int64, captured bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	rows = make([]IntervalRow, len(a.rows))
	for i, r := range a.rows {
		cp := make([]value.Value, len(r.tuple))
		copy(cp, r.tuple)
		rows[i] = IntervalRow{Tuple: cp, Start: r.tstart, End: r.tend}
	}
	return rows, a.lastCapture, a.captured
}

// RestoreRows replaces the relation's contents with snapshot rows. Rows
// must satisfy the schema and at most one open interval may exist per
// tuple; row order is preserved so AsOf ordering survives recovery.
func (a *Aux) RestoreRows(rows []IntervalRow, lastCapture int64, captured bool) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	next := make([]auxRow, 0, len(rows))
	open := make(map[string]int)
	for i, r := range rows {
		if err := a.schema.checkTuple(r.Tuple); err != nil {
			return fmt.Errorf("relation: restore row %d: %w", i, err)
		}
		if r.End != TEndMax && r.Start >= r.End {
			return fmt.Errorf("relation: restore row %d: empty interval [%d, %d)", i, r.Start, r.End)
		}
		cp := make([]value.Value, len(r.Tuple))
		copy(cp, r.Tuple)
		if r.End == TEndMax {
			k := rowKey(cp)
			if _, dup := open[k]; dup {
				return fmt.Errorf("relation: restore row %d: duplicate open interval for tuple %v", i, r.Tuple)
			}
			open[k] = len(next)
		}
		next = append(next, auxRow{tuple: cp, tstart: r.Start, tend: r.End})
	}
	a.rows = next
	a.open = open
	a.lastCapture = lastCapture
	a.captured = captured
	return nil
}

// SnapshotRows exposes the underlying interval rows for persistence.
func (s *ScalarAux) SnapshotRows() ([]IntervalRow, int64, bool) {
	return s.aux.SnapshotRows()
}

// RestoreRows replaces the captured intervals from a snapshot.
func (s *ScalarAux) RestoreRows(rows []IntervalRow, lastCapture int64, captured bool) error {
	return s.aux.RestoreRows(rows, lastCapture, captured)
}

// ScalarAux captures a scalar-valued query over time. It is the common
// case for bindings like [x <- price(IBM)]: one value per instant.
type ScalarAux struct {
	aux *Aux
}

// NewScalarAux creates a scalar auxiliary relation.
func NewScalarAux() *ScalarAux {
	return &ScalarAux{aux: NewAux(MustSchema(Column{Name: "v"}))}
}

// Capture records the scalar value at time t.
func (s *ScalarAux) Capture(t int64, v value.Value) error {
	return s.aux.Capture(t, [][]value.Value{{v}})
}

// AsOf returns the scalar value at time t. ok is false when t predates the
// first capture.
func (s *ScalarAux) AsOf(t int64) (value.Value, bool) {
	r := s.aux.AsOf(t)
	if r.Len() == 0 {
		return value.Value{}, false
	}
	return r.Rows()[0][0], true
}

// Len returns the number of retained interval rows.
func (s *ScalarAux) Len() int { return s.aux.Len() }

// Prune discards intervals ending at or before t.
func (s *ScalarAux) Prune(t int64) int { return s.aux.Prune(t) }

// Expired returns the closed intervals Prune(t) would discard, for
// spilling to the cold tier.
func (s *ScalarAux) Expired(t int64) []IntervalRow { return s.aux.Expired(t) }
