package relation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ptlactive/internal/value"
)

func stockSchema() *Schema {
	return MustSchema(
		Column{Name: "name", Kind: value.String},
		Column{Name: "price", Kind: value.Float},
	)
}

func row(name string, price float64) []value.Value {
	return []value.Value{value.NewString(name), value.NewFloat(price)}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{Name: "a"}, Column{Name: "a"}); err == nil {
		t.Error("duplicate column should error")
	}
	if _, err := NewSchema(Column{Name: ""}); err == nil {
		t.Error("empty column name should error")
	}
	s := stockSchema()
	if s.Arity() != 2 || s.ColumnIndex("price") != 1 || s.ColumnIndex("zzz") != -1 {
		t.Error("schema accessors wrong")
	}
	if s.String() != "(name string, price float)" {
		t.Errorf("schema String = %q", s.String())
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSchema should panic on error")
		}
	}()
	MustSchema(Column{Name: ""})
}

func TestInsertTypeChecking(t *testing.T) {
	r := New(stockSchema())
	if err := r.Insert(row("ibm", 72)); err != nil {
		t.Fatal(err)
	}
	// Numeric interchange allowed.
	if err := r.Insert([]value.Value{value.NewString("dj"), value.NewInt(3900)}); err != nil {
		t.Fatalf("int into float column should be allowed: %v", err)
	}
	if err := r.Insert([]value.Value{value.NewInt(1), value.NewFloat(2)}); err == nil {
		t.Error("string column should reject int")
	}
	if err := r.Insert(row("x", 1)[:1]); err == nil {
		t.Error("wrong arity should error")
	}
	// Any-kind column accepts everything.
	anyr := New(MustSchema(Column{Name: "v"}))
	for _, v := range []value.Value{value.NewInt(1), value.NewString("s"), value.NewBool(true)} {
		if err := anyr.Insert([]value.Value{v}); err != nil {
			t.Errorf("any column rejected %v: %v", v, err)
		}
	}
}

func TestSetSemantics(t *testing.T) {
	r := New(stockSchema())
	for i := 0; i < 3; i++ {
		if err := r.Insert(row("ibm", 72)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (set semantics)", r.Len())
	}
	if !r.Contains(row("ibm", 72)) || r.Contains(row("ibm", 73)) {
		t.Error("Contains wrong")
	}
}

func TestDelete(t *testing.T) {
	r := New(stockSchema())
	_ = r.Insert(row("a", 1))
	_ = r.Insert(row("b", 2))
	_ = r.Insert(row("c", 3))
	if !r.Delete(row("b", 2)) {
		t.Fatal("Delete should succeed")
	}
	if r.Delete(row("b", 2)) {
		t.Fatal("second Delete should fail")
	}
	if r.Len() != 2 || !r.Contains(row("a", 1)) || !r.Contains(row("c", 3)) {
		t.Error("Delete corrupted relation")
	}
	// Swap-delete must keep the key index valid.
	if !r.Delete(row("a", 1)) || !r.Contains(row("c", 3)) || r.Len() != 1 {
		t.Error("Delete of non-last row broke the index")
	}
}

func TestSelectProject(t *testing.T) {
	r := New(stockSchema())
	_ = r.Insert(row("ibm", 72))
	_ = r.Insert(row("ibm2", 310))
	_ = r.Insert(row("xyz", 305))
	over := r.Select(func(tu []value.Value) bool { return tu[1].AsFloat() >= 300 })
	if over.Len() != 2 {
		t.Fatalf("overpriced Len = %d", over.Len())
	}
	names, err := over.Project("name")
	if err != nil {
		t.Fatal(err)
	}
	if names.Len() != 2 || names.Schema().Arity() != 1 {
		t.Error("project wrong")
	}
	if _, err := r.Project("nope"); err == nil {
		t.Error("project on unknown column should error")
	}
	// Projection merges duplicates.
	prices, err := r.Project("price")
	if err != nil {
		t.Fatal(err)
	}
	_ = r.Insert(row("dup", 72))
	prices2, _ := r.Project("price")
	if prices2.Len() != prices.Len() {
		t.Error("projection should deduplicate")
	}
}

func TestUnionDiffIntersect(t *testing.T) {
	a := New(stockSchema())
	_ = a.Insert(row("a", 1))
	_ = a.Insert(row("b", 2))
	b := New(stockSchema())
	_ = b.Insert(row("b", 2))
	_ = b.Insert(row("c", 3))

	u, err := a.Union(b)
	if err != nil || u.Len() != 3 {
		t.Fatalf("union: %v len %d", err, u.Len())
	}
	d, err := a.Diff(b)
	if err != nil || d.Len() != 1 || !d.Contains(row("a", 1)) {
		t.Fatalf("diff wrong: %v", d)
	}
	x, err := a.Intersect(b)
	if err != nil || x.Len() != 1 || !x.Contains(row("b", 2)) {
		t.Fatalf("intersect wrong: %v", x)
	}
	other := New(MustSchema(Column{Name: "z", Kind: value.Int}))
	if _, err := a.Union(other); err == nil {
		t.Error("union schema mismatch should error")
	}
	if _, err := a.Diff(other); err == nil {
		t.Error("diff schema mismatch should error")
	}
	if _, err := a.Intersect(other); err == nil {
		t.Error("intersect schema mismatch should error")
	}
}

func TestJoin(t *testing.T) {
	stocks := New(stockSchema())
	_ = stocks.Insert(row("ibm", 72))
	_ = stocks.Insert(row("xyz", 305))
	sectors := New(MustSchema(
		Column{Name: "name", Kind: value.String},
		Column{Name: "sector", Kind: value.String},
	))
	_ = sectors.Insert([]value.Value{value.NewString("ibm"), value.NewString("tech")})
	_ = sectors.Insert([]value.Value{value.NewString("abc"), value.NewString("energy")})

	j, err := stocks.Join(sectors)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 || j.Schema().Arity() != 3 {
		t.Fatalf("join = %v", j)
	}
	got := j.Rows()[0]
	if got[0].AsString() != "ibm" || got[2].AsString() != "tech" {
		t.Errorf("join row = %v", got)
	}
	// Join with no shared columns is a cross product.
	nums := New(MustSchema(Column{Name: "n", Kind: value.Int}))
	_ = nums.Insert([]value.Value{value.NewInt(1)})
	_ = nums.Insert([]value.Value{value.NewInt(2)})
	cross, err := stocks.Join(nums)
	if err != nil {
		t.Fatal(err)
	}
	if cross.Len() != 4 {
		t.Errorf("cross product Len = %d, want 4", cross.Len())
	}
}

func TestEqualAndString(t *testing.T) {
	a := New(stockSchema())
	_ = a.Insert(row("a", 1))
	_ = a.Insert(row("b", 2))
	b := New(stockSchema())
	_ = b.Insert(row("b", 2))
	_ = b.Insert(row("a", 1))
	if !a.Equal(b) {
		t.Error("insertion order should not affect Equal")
	}
	_ = b.Insert(row("c", 3))
	if a.Equal(b) {
		t.Error("different cardinality equal")
	}
	if a.String() != b.String() && a.Equal(b) {
		t.Error("String must be deterministic for equal relations")
	}
}

func TestValueRoundTrip(t *testing.T) {
	a := New(stockSchema())
	_ = a.Insert(row("a", 1))
	_ = a.Insert(row("b", 2))
	v := a.Value()
	back, err := FromValue(stockSchema(), v)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(back) {
		t.Error("Value/FromValue round trip failed")
	}
	if _, err := FromValue(stockSchema(), value.NewInt(1)); err == nil {
		t.Error("FromValue of scalar should error")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(stockSchema())
	_ = a.Insert(row("a", 1))
	c := a.Clone()
	_ = c.Insert(row("b", 2))
	if a.Len() != 1 || c.Len() != 2 {
		t.Error("Clone not independent")
	}
}

// Relational algebra laws on random relations (DESIGN.md §5).
func TestAlgebraLaws(t *testing.T) {
	schema := MustSchema(Column{Name: "x", Kind: value.Int}, Column{Name: "y", Kind: value.Int})
	gen := func(seed int64) *Relation {
		rng := rand.New(rand.NewSource(seed))
		r := New(schema)
		for i := 0; i < rng.Intn(20); i++ {
			_ = r.Insert([]value.Value{value.NewInt(int64(rng.Intn(5))), value.NewInt(int64(rng.Intn(5)))})
		}
		return r
	}
	pred := func(tu []value.Value) bool { return tu[0].AsInt() < 3 }

	prop := func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		// Selection distributes over union.
		u, _ := a.Union(b)
		left := u.Select(pred)
		sa, sb := a.Select(pred), b.Select(pred)
		right, _ := sa.Union(sb)
		if !left.Equal(right) {
			return false
		}
		// Union is commutative; intersection via diff law: a ∩ b == a \ (a \ b).
		u2, _ := b.Union(a)
		if !u.Equal(u2) {
			return false
		}
		d1, _ := a.Diff(b)
		d2, _ := a.Diff(d1)
		x, _ := a.Intersect(b)
		if !x.Equal(d2) {
			return false
		}
		// Join with self on full schema is identity.
		j, err := a.Join(a)
		if err != nil || !j.Equal(a) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
