package relation

import (
	"reflect"
	"testing"

	"ptlactive/internal/value"
)

func TestAuxSnapshotRestoreRoundTrip(t *testing.T) {
	a := NewAux(MustSchema(Column{Name: "sym"}, Column{Name: "qty"}))
	row := func(s string, q int64) []value.Value {
		return []value.Value{value.NewString(s), value.NewInt(q)}
	}
	captures := []struct {
		t    int64
		rows [][]value.Value
	}{
		{1, [][]value.Value{row("ibm", 10), row("sun", 5)}},
		{3, [][]value.Value{row("ibm", 10)}},
		{7, [][]value.Value{row("ibm", 12), row("sun", 5)}},
	}
	for _, c := range captures {
		if err := a.Capture(c.t, c.rows); err != nil {
			t.Fatal(err)
		}
	}
	rows, last, captured := a.SnapshotRows()
	if last != 7 || !captured {
		t.Fatalf("snapshot watermark = %d/%t", last, captured)
	}

	b := NewAux(MustSchema(Column{Name: "sym"}, Column{Name: "qty"}))
	if err := b.RestoreRows(rows, last, captured); err != nil {
		t.Fatal(err)
	}
	for _, ts := range []int64{0, 1, 2, 3, 6, 7, 9} {
		want, got := a.AsOf(ts).Rows(), b.AsOf(ts).Rows()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("AsOf(%d): restored %v, want %v", ts, got, want)
		}
	}
	// The restored relation must keep accepting captures exactly like the
	// original, including the open-interval bookkeeping.
	for _, x := range []*Aux{a, b} {
		if err := x.Capture(9, [][]value.Value{row("sun", 5)}); err != nil {
			t.Fatal(err)
		}
	}
	if want, got := a.AsOf(9).Rows(), b.AsOf(9).Rows(); !reflect.DeepEqual(want, got) {
		t.Fatalf("post-restore capture diverged: %v vs %v", got, want)
	}
	if err := b.Capture(2, nil); err == nil {
		t.Fatal("capture before restored watermark: want error")
	}
}

func TestAuxRestoreRejectsBadRows(t *testing.T) {
	mk := func() *Aux { return NewAux(MustSchema(Column{Name: "v"})) }
	one := []value.Value{value.NewInt(1)}
	cases := []struct {
		name string
		rows []IntervalRow
	}{
		{"arity", []IntervalRow{{Tuple: []value.Value{value.NewInt(1), value.NewInt(2)}, Start: 0, End: TEndMax}}},
		{"empty interval", []IntervalRow{{Tuple: one, Start: 5, End: 5}}},
		{"duplicate open", []IntervalRow{
			{Tuple: one, Start: 0, End: TEndMax},
			{Tuple: one, Start: 3, End: TEndMax},
		}},
	}
	for _, c := range cases {
		if err := mk().RestoreRows(c.rows, 5, true); err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
}

func TestScalarAuxSnapshotRestore(t *testing.T) {
	s := NewScalarAux()
	for i, v := range []int64{4, 4, 9} {
		if err := s.Capture(int64(i+1), value.NewInt(v)); err != nil {
			t.Fatal(err)
		}
	}
	rows, last, captured := s.SnapshotRows()
	r := NewScalarAux()
	if err := r.RestoreRows(rows, last, captured); err != nil {
		t.Fatal(err)
	}
	for _, ts := range []int64{0, 1, 2, 3, 5} {
		wv, wok := s.AsOf(ts)
		gv, gok := r.AsOf(ts)
		if wok != gok || (wok && !wv.Equal(gv)) {
			t.Fatalf("AsOf(%d): restored (%v,%t), want (%v,%t)", ts, gv, gok, wv, wok)
		}
	}
}
