// Package relation is the relational substrate of the reproduction. The
// paper's prototype ran on top of Sybase; this package plays that role:
// schemas, tuples, in-memory relations with the algebra the query layer
// needs, and the auxiliary relations with [T_start, T_end) validity
// intervals that the incremental algorithm keeps (Section 5,
// "Implementation Using Auxiliary Relations").
package relation

import (
	"fmt"
	"sort"
	"strings"

	"ptlactive/internal/value"
)

// Column describes one attribute of a schema.
type Column struct {
	// Name is the attribute name, unique within a schema.
	Name string
	// Kind is the attribute's value kind. value.Null means "any scalar".
	Kind value.Kind
}

// Schema is an ordered list of columns.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema. Column names must be unique.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: cols, index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relation: column %d has empty name", i)
		}
		if _, dup := s.index[c.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate column %q", c.Name)
		}
		s.index[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.cols) }

// Columns returns the columns in order. The result must not be mutated.
func (s *Schema) Columns() []Column { return s.cols }

// ColumnIndex returns the position of a named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Equal reports whether two schemas have identical column lists.
func (s *Schema) Equal(o *Schema) bool {
	if s.Arity() != o.Arity() {
		return false
	}
	for i := range s.cols {
		if s.cols[i] != o.cols[i] {
			return false
		}
	}
	return true
}

// String renders the schema as (name kind, ...).
func (s *Schema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		parts[i] = c.Name + " " + c.Kind.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// checkTuple validates a row against the schema.
func (s *Schema) checkTuple(row []value.Value) error {
	if len(row) != len(s.cols) {
		return fmt.Errorf("relation: tuple arity %d does not match schema arity %d", len(row), len(s.cols))
	}
	for i, v := range row {
		want := s.cols[i].Kind
		if want != value.Null && v.Kind() != want {
			// Allow numeric interchange, mirroring the value package.
			if (want == value.Int || want == value.Float) && v.IsNumeric() {
				continue
			}
			return fmt.Errorf("relation: column %q wants %s, got %s", s.cols[i].Name, want, v.Kind())
		}
	}
	return nil
}

// Relation is an in-memory set of tuples over a schema. Duplicate rows are
// eliminated (set semantics, as in the paper's query results).
type Relation struct {
	schema *Schema
	rows   [][]value.Value
	keys   map[string]int // tuple key -> row index
}

// New creates an empty relation over the schema.
func New(schema *Schema) *Relation {
	return &Relation{schema: schema, keys: make(map[string]int)}
}

// FromRows creates a relation and inserts the given rows.
func FromRows(schema *Schema, rows [][]value.Value) (*Relation, error) {
	r := New(schema)
	for _, row := range rows {
		if err := r.Insert(row); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the cardinality.
func (r *Relation) Len() int { return len(r.rows) }

// Rows returns the rows in insertion order. Neither the slice nor the rows
// may be mutated.
func (r *Relation) Rows() [][]value.Value { return r.rows }

// rowKey computes a tuple identity key.
func rowKey(row []value.Value) string {
	return value.NewTuple(row...).Key()
}

// Insert adds a row; duplicates are silently ignored (set semantics).
func (r *Relation) Insert(row []value.Value) error {
	if err := r.schema.checkTuple(row); err != nil {
		return err
	}
	k := rowKey(row)
	if _, dup := r.keys[k]; dup {
		return nil
	}
	cp := make([]value.Value, len(row))
	copy(cp, row)
	r.keys[k] = len(r.rows)
	r.rows = append(r.rows, cp)
	return nil
}

// Delete removes a row if present and reports whether it was removed.
func (r *Relation) Delete(row []value.Value) bool {
	k := rowKey(row)
	i, ok := r.keys[k]
	if !ok {
		return false
	}
	last := len(r.rows) - 1
	if i != last {
		r.rows[i] = r.rows[last]
		r.keys[rowKey(r.rows[i])] = i
	}
	r.rows = r.rows[:last]
	delete(r.keys, k)
	return true
}

// Contains reports whether the row is present.
func (r *Relation) Contains(row []value.Value) bool {
	_, ok := r.keys[rowKey(row)]
	return ok
}

// Clone returns an independent deep-enough copy (rows are shared since
// values are immutable; row slices are copied).
func (r *Relation) Clone() *Relation {
	c := New(r.schema)
	for _, row := range r.rows {
		c.keys[rowKey(row)] = len(c.rows)
		c.rows = append(c.rows, row)
	}
	return c
}

// Value converts the relation to a value.Relation holding the same rows.
func (r *Relation) Value() value.Value {
	rows := make([][]value.Value, len(r.rows))
	copy(rows, r.rows)
	return value.NewRelation(rows)
}

// FromValue builds a relation over schema from a value.Relation.
func FromValue(schema *Schema, v value.Value) (*Relation, error) {
	if v.Kind() != value.Relation {
		return nil, fmt.Errorf("relation: FromValue needs a relation value, got %s", v.Kind())
	}
	return FromRows(schema, v.Rows())
}

// Select returns the rows satisfying pred, as a new relation.
func (r *Relation) Select(pred func(row []value.Value) bool) *Relation {
	out := New(r.schema)
	for _, row := range r.rows {
		if pred(row) {
			// Safe: row was validated on insert and stays immutable.
			out.keys[rowKey(row)] = len(out.rows)
			out.rows = append(out.rows, row)
		}
	}
	return out
}

// Project returns a new relation containing only the named columns, with
// duplicates removed.
func (r *Relation) Project(names ...string) (*Relation, error) {
	idx := make([]int, len(names))
	cols := make([]Column, len(names))
	for i, n := range names {
		j := r.schema.ColumnIndex(n)
		if j < 0 {
			return nil, fmt.Errorf("relation: project on unknown column %q", n)
		}
		idx[i] = j
		cols[i] = r.schema.cols[j]
	}
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := New(schema)
	for _, row := range r.rows {
		proj := make([]value.Value, len(idx))
		for i, j := range idx {
			proj[i] = row[j]
		}
		if err := out.Insert(proj); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Union returns r ∪ o; schemas must be equal.
func (r *Relation) Union(o *Relation) (*Relation, error) {
	if !r.schema.Equal(o.schema) {
		return nil, fmt.Errorf("relation: union of incompatible schemas %s and %s", r.schema, o.schema)
	}
	out := r.Clone()
	for _, row := range o.rows {
		if err := out.Insert(row); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Diff returns r \ o; schemas must be equal.
func (r *Relation) Diff(o *Relation) (*Relation, error) {
	if !r.schema.Equal(o.schema) {
		return nil, fmt.Errorf("relation: diff of incompatible schemas %s and %s", r.schema, o.schema)
	}
	return r.Select(func(row []value.Value) bool { return !o.Contains(row) }), nil
}

// Intersect returns r ∩ o; schemas must be equal.
func (r *Relation) Intersect(o *Relation) (*Relation, error) {
	if !r.schema.Equal(o.schema) {
		return nil, fmt.Errorf("relation: intersect of incompatible schemas %s and %s", r.schema, o.schema)
	}
	return r.Select(o.Contains), nil
}

// Join computes the natural join of r and o on their shared column names.
// Columns of o that also appear in r are dropped from the result.
func (r *Relation) Join(o *Relation) (*Relation, error) {
	var shared [][2]int // (index in r, index in o)
	var extraCols []Column
	var extraIdx []int
	for j, c := range o.schema.cols {
		if i := r.schema.ColumnIndex(c.Name); i >= 0 {
			shared = append(shared, [2]int{i, j})
		} else {
			extraCols = append(extraCols, c)
			extraIdx = append(extraIdx, j)
		}
	}
	cols := append(append([]Column{}, r.schema.cols...), extraCols...)
	schema, err := NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	out := New(schema)
	// Hash join on the shared columns.
	type bucketKey = string
	buckets := make(map[bucketKey][][]value.Value)
	keyOf := func(row []value.Value, idx []int) string {
		parts := make([]value.Value, len(idx))
		for i, j := range idx {
			parts[i] = row[j]
		}
		return value.NewTuple(parts...).Key()
	}
	rIdx := make([]int, len(shared))
	oIdx := make([]int, len(shared))
	for i, p := range shared {
		rIdx[i], oIdx[i] = p[0], p[1]
	}
	for _, row := range o.rows {
		k := keyOf(row, oIdx)
		buckets[k] = append(buckets[k], row)
	}
	for _, row := range r.rows {
		for _, orow := range buckets[keyOf(row, rIdx)] {
			joined := make([]value.Value, 0, len(cols))
			joined = append(joined, row...)
			for _, j := range extraIdx {
				joined = append(joined, orow[j])
			}
			if err := out.Insert(joined); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Sorted returns the rows sorted lexicographically by tuple key, for
// deterministic display and comparison.
func (r *Relation) Sorted() [][]value.Value {
	out := make([][]value.Value, len(r.rows))
	copy(out, r.rows)
	sort.Slice(out, func(i, j int) bool {
		return rowKey(out[i]) < rowKey(out[j])
	})
	return out
}

// Equal reports set equality of two relations with equal schemas.
func (r *Relation) Equal(o *Relation) bool {
	if !r.schema.Equal(o.schema) || r.Len() != o.Len() {
		return false
	}
	for _, row := range r.rows {
		if !o.Contains(row) {
			return false
		}
	}
	return true
}

// String renders the relation deterministically.
func (r *Relation) String() string {
	var sb strings.Builder
	sb.WriteString(r.schema.String())
	sb.WriteString("{")
	for i, row := range r.Sorted() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(value.NewTuple(row...).String())
	}
	sb.WriteString("}")
	return sb.String()
}
