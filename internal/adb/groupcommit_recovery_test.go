package adb

import (
	"reflect"
	"testing"

	"ptlactive/internal/value"
)

// TestGroupCommitSyncWALDurability: with group commit, an engine that
// calls SyncWAL and is then abandoned (no Close — the crash model)
// recovers the complete run, part-full batch included.
func TestGroupCommitSyncWALDurability(t *testing.T) {
	const seed, rules, states = 8100, 5, 40
	p := randomEngineParams(seed, rules, true)
	ops := randomOps(seed*31, rules, states, 0)

	ref := NewEngine(p.config(1))
	p.register(t, ref)
	for _, op := range ops {
		applyOp(t, ref, op)
	}

	dir := t.TempDir()
	cfg := p.config(1)
	cfg.Durability = DurabilityWAL
	cfg.NoFsync = true
	cfg.GroupCommit = 8
	e1, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	p.register(t, e1)
	for _, op := range ops {
		applyOp(t, e1, op)
	}
	if err := e1.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon e1 without Close.

	e2, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if len(e2.Recovery().ReplayErrors) != 0 {
		t.Fatalf("replay errors: %v", e2.Recovery().ReplayErrors)
	}
	if !firingsEqual(ref.Firings(), e2.Firings()) {
		t.Fatalf("firings diverge after group-commit recovery:\n ref (%d)\n got (%d)",
			len(ref.Firings()), len(e2.Firings()))
	}
	if ref.Now() != e2.Now() || !ref.DB().Equal(e2.DB()) {
		t.Fatal("state diverges after group-commit recovery")
	}
}

// TestGroupCommitCrashPrefix: without a final sync, a crash loses at most
// the buffered batch suffix; the recovered engine must be exactly the
// engine that ran the flushed prefix of commits. Every operation here
// logs one WAL record, so the flush boundary is computable.
func TestGroupCommitCrashPrefix(t *testing.T) {
	const group = 4
	const commits = 9 // setup logs 2 records (init + rule): 11 total, 8 flushed
	mkRef := func(n int) *Engine {
		e := NewEngine(Config{Initial: map[string]value.Value{"a": value.NewInt(0)}})
		if err := e.AddTrigger("r", `item("a") > 5`, nil, WithScheduling(Relevant)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := e.Exec(int64(i+1), map[string]value.Value{"a": value.NewInt(int64(i))}); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}

	dir := t.TempDir()
	cfg := Config{
		Initial:     map[string]value.Value{"a": value.NewInt(0)},
		Durability:  DurabilityWAL,
		NoFsync:     true,
		GroupCommit: group,
	}
	e1, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.AddTrigger("r", `item("a") > 5`, nil, WithScheduling(Relevant)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < commits; i++ {
		if err := e1.Exec(int64(i+1), map[string]value.Value{"a": value.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash with 3 records buffered (init + rule + 9 commits = 11; two
	// batches of 4 flushed).
	e2, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	flushedCommits := (2+commits)/group*group - 2
	ref := mkRef(flushedCommits)
	if e2.Recovery().ReplayedRecords != flushedCommits+2 { // + init and rule records
		t.Fatalf("replayed %d records, want %d", e2.Recovery().ReplayedRecords, flushedCommits+2)
	}
	if !firingsEqual(ref.Firings(), e2.Firings()) {
		t.Fatalf("prefix firings diverge: ref %v vs recovered %v", ref.Firings(), e2.Firings())
	}
	if ref.Now() != e2.Now() || !ref.DB().Equal(e2.DB()) {
		t.Fatalf("prefix state diverges: now %d vs %d, db %v vs %v", ref.Now(), e2.Now(), ref.DB(), e2.DB())
	}
}

// TestMemoSnapshotRoundTrip: the quiescent-rule memo is part of the
// snapshot, so a restored engine keeps replaying (not re-evaluating)
// untouched rules — pinned by exact EvalSteps equality with an
// uninterrupted engine across a snapshot+restore cut.
func TestMemoSnapshotRoundTrip(t *testing.T) {
	initial := map[string]value.Value{"a": value.NewInt(0), "other": value.NewInt(0)}
	addRules := func(e *Engine) {
		// One quiescent rule with a free-variable binding (the memo must
		// carry bindings, not just the fired bit) and one without.
		if err := e.AddTrigger("bound", `[x <- item("a")] x > 3`, nil, WithScheduling(Relevant)); err != nil {
			t.Fatal(err)
		}
		if err := e.AddTrigger("plain", `item("a") > 10`, nil, WithScheduling(Relevant)); err != nil {
			t.Fatal(err)
		}
	}
	drivePrefix := func(e *Engine) {
		// Fire both rules, then commit only to the unrelated item so the
		// memos are live at the cut.
		if err := e.Exec(1, map[string]value.Value{"a": value.NewInt(20)}); err != nil {
			t.Fatal(err)
		}
		for ts := int64(2); ts <= 4; ts++ {
			if err := e.Exec(ts, map[string]value.Value{"other": value.NewInt(ts)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	driveSuffix := func(e *Engine) {
		for ts := int64(5); ts <= 8; ts++ {
			if err := e.Exec(ts, map[string]value.Value{"other": value.NewInt(ts)}); err != nil {
				t.Fatal(err)
			}
		}
	}

	ref := NewEngine(Config{Initial: initial})
	addRules(ref)
	drivePrefix(ref)
	driveSuffix(ref)

	dir := t.TempDir()
	cfg := Config{
		Initial:    initial,
		Durability: DurabilitySnapshot,
		// Large interval: only the explicit checkpoint writes a snapshot,
		// so recovery restores memo state from it rather than replaying.
		SnapshotEvery: 1000,
		NoFsync:       true,
	}
	e1, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	addRules(e1)
	drivePrefix(e1)
	if err := e1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Recovery().ReplayedRecords != 0 {
		t.Fatalf("expected snapshot-only recovery, replayed %d", e2.Recovery().ReplayedRecords)
	}
	for _, name := range []string{"bound", "plain"} {
		r := e2.index[name]
		if !r.memoValid || !r.memoFired {
			t.Fatalf("rule %s memo not restored: valid=%v fired=%v", name, r.memoValid, r.memoFired)
		}
	}
	if len(e2.index["bound"].memoBindings) != 1 {
		t.Fatalf("bound memo bindings = %v", e2.index["bound"].memoBindings)
	}
	stepsBefore := e2.EvalSteps()
	driveSuffix(e2)
	if !firingsEqual(ref.Firings(), e2.Firings()) {
		t.Fatalf("firings diverge across snapshot cut:\n ref: %v\n got: %v", ref.Firings(), e2.Firings())
	}
	// The restored engine must replay from the memo, spending zero
	// evaluator steps on the suffix — exactly like the uninterrupted one.
	if got := e2.EvalSteps() - stepsBefore; got != 0 {
		t.Fatalf("restored engine re-evaluated %d steps; the memo should cover the suffix", got)
	}
}

// TestDisableIndexSurvivesRestore: the index switch is part of the init
// record, so a restored engine honors the original setting even when the
// restoring configuration omits it.
func TestDisableIndexSurvivesRestore(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Initial:             map[string]value.Value{"a": value.NewInt(0)},
		Durability:          DurabilityWAL,
		NoFsync:             true,
		DisableReadSetIndex: true,
	}
	e1, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.AddTrigger("r", `item("a") > 5`, nil, WithScheduling(Relevant)); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	cfg2 := cfg
	cfg2.DisableReadSetIndex = false
	e2, err := Restore(cfg2, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if !e2.noIndex {
		t.Fatal("DisableReadSetIndex lost across restore")
	}
	if r := e2.index["r"]; r.class != classExact {
		t.Fatalf("restored rule class = %d, want classExact under a disabled index", r.class)
	}
	if !reflect.DeepEqual(e2.itemIndex, map[string][]*rule{}) && len(e2.itemIndex) != 0 {
		t.Fatalf("item index populated on a disabled-index engine: %v", e2.itemIndex)
	}
}
