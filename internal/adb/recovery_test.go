package adb

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ptlactive/internal/event"
	"ptlactive/internal/value"
)

// firingsEqual compares firing sequences structurally; bindings are
// compared by value so a nil and an empty binding are equal.
func firingsEqual(a, b []Firing) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Rule != y.Rule || x.Time != y.Time || x.StateIndex != y.StateIndex || len(x.Binding) != len(y.Binding) {
			return false
		}
		for k, v := range x.Binding {
			w, ok := y.Binding[k]
			if !ok || !v.Equal(w) {
				return false
			}
		}
	}
	return true
}

// TestCrashRecoveryEquivalence is the crash-equivalence property: over
// random rule sets and random histories, killing the engine at every
// commit boundary and restoring must yield exactly the run an
// uninterrupted engine produces — firing sequence, clock, database, step
// counts, and the byte-identical order of constraint aborts. Recovery must
// also replay only the records logged since the last snapshot.
func TestCrashRecoveryEquivalence(t *testing.T) {
	trials := 4
	states := 36
	if testing.Short() {
		trials, states = 2, 18
	}
	for trial := 0; trial < trials; trial++ {
		seed := int64(7000 + trial)
		rules := 3 + trial%5
		workers := 1 + 3*(trial%2) // alternate sequential and parallel
		mode := DurabilityWAL
		if trial%2 == 1 {
			mode = DurabilitySnapshot
		}
		p := randomEngineParams(seed, rules, true)
		ops := randomOps(seed*31, rules, states, 0)

		ref := NewEngine(p.config(workers))
		p.register(t, ref)
		var refAborts []string
		for _, op := range ops {
			if name := applyOp(t, ref, op); name != "" {
				refAborts = append(refAborts, name)
			}
		}

		for k := 0; k <= len(ops); k++ {
			dir := t.TempDir()
			cfg := p.config(workers)
			cfg.Durability = mode
			cfg.SnapshotEvery = 5
			cfg.NoFsync = true
			e1, err := Restore(cfg, dir)
			if err != nil {
				t.Fatalf("trial %d cut %d: fresh Restore: %v", trial, k, err)
			}
			p.register(t, e1)
			var aborts []string
			for _, op := range ops[:k] {
				if name := applyOp(t, e1, op); name != "" {
					aborts = append(aborts, name)
				}
			}
			since := e1.walSince
			if err := e1.Close(); err != nil {
				t.Fatalf("trial %d cut %d: Close: %v", trial, k, err)
			}

			e2, err := Restore(cfg, dir)
			if err != nil {
				t.Fatalf("trial %d cut %d: Restore: %v", trial, k, err)
			}
			rec := e2.Recovery()
			if len(rec.ReplayErrors) != 0 {
				t.Fatalf("trial %d cut %d: replay errors: %v", trial, k, rec.ReplayErrors)
			}
			if rec.ReplayedRecords != since {
				t.Fatalf("trial %d cut %d: replayed %d records, want the %d logged since the last snapshot",
					trial, k, rec.ReplayedRecords, since)
			}
			for _, op := range ops[k:] {
				if name := applyOp(t, e2, op); name != "" {
					aborts = append(aborts, name)
				}
			}
			if !firingsEqual(ref.Firings(), e2.Firings()) {
				t.Fatalf("trial %d cut %d: firing sequences diverge:\n  reference (%d): %v\n  recovered (%d): %v",
					trial, k, len(ref.Firings()), ref.Firings(), len(e2.Firings()), e2.Firings())
			}
			if ref.Now() != e2.Now() {
				t.Fatalf("trial %d cut %d: clocks diverge: %d vs %d", trial, k, ref.Now(), e2.Now())
			}
			if !ref.DB().Equal(e2.DB()) {
				t.Fatalf("trial %d cut %d: databases diverge: %v vs %v", trial, k, ref.DB(), e2.DB())
			}
			if ref.EvalSteps() != e2.EvalSteps() {
				t.Fatalf("trial %d cut %d: eval steps diverge: %d vs %d", trial, k, ref.EvalSteps(), e2.EvalSteps())
			}
			if !reflect.DeepEqual(refAborts, aborts) {
				t.Fatalf("trial %d cut %d: abort sequences diverge:\n  reference: %v\n  recovered: %v",
					trial, k, refAborts, aborts)
			}
			if err := e2.Close(); err != nil {
				t.Fatalf("trial %d cut %d: Close: %v", trial, k, err)
			}
		}
	}
}

// TestRecoveryReplaysOnlyTail pins the tail-only property: with periodic
// snapshots, recovery replays at most SnapshotEvery records no matter how
// long the full history is.
func TestRecoveryReplaysOnlyTail(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Initial:       map[string]value.Value{"a": value.NewInt(0)},
		Durability:    DurabilitySnapshot,
		SnapshotEvery: 5,
		NoFsync:       true,
	}
	e, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddTrigger("r", `@tick and item("a") > 0`, nil); err != nil {
		t.Fatal(err)
	}
	const commits = 33
	for i := 1; i <= commits; i++ {
		if err := e.Exec(int64(i), map[string]value.Value{"a": value.NewInt(int64(i))}, event.New("tick")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	rec := e2.Recovery()
	if rec.SnapshotLSN == 0 {
		t.Fatal("no snapshot was taken in 33 commits with SnapshotEvery=5")
	}
	if rec.ReplayedRecords >= cfg.SnapshotEvery {
		t.Fatalf("replayed %d records, want fewer than SnapshotEvery=%d", rec.ReplayedRecords, cfg.SnapshotEvery)
	}
	if got := len(e2.Firings()); got != commits {
		t.Fatalf("recovered %d firings, want %d", got, commits)
	}
	if e2.Now() != commits {
		t.Fatalf("recovered clock %d, want %d", e2.Now(), commits)
	}
}

// TestRestoreTornTail is the adb-level torn-write test: a crash mid-append
// leaves a torn final record; Restore truncates it, reports the recovery
// point and comes up as the engine that never saw that operation.
func TestRestoreTornTail(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Initial:    map[string]value.Value{"a": value.NewInt(0)},
		Durability: DurabilityWAL,
		NoFsync:    true,
	}
	e, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddTrigger("r", `@tick`, nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := e.Exec(int64(i), map[string]value.Value{"a": value.NewInt(int64(i))}, event.New("tick")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "wal.000001")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	e2, err := Restore(cfg, dir)
	if err != nil {
		t.Fatalf("torn tail must recover, got %v", err)
	}
	defer e2.Close()
	rec := e2.Recovery()
	if rec.TruncatedAt < 0 {
		t.Fatal("recovery did not report the truncation point")
	}
	if e2.Now() != 4 {
		t.Fatalf("recovered clock %d, want 4 (the torn commit is gone)", e2.Now())
	}
	if len(e2.Firings()) != 4 {
		t.Fatalf("recovered %d firings, want 4", len(e2.Firings()))
	}
	if v, _ := e2.DB().Get("a"); v.AsInt() != 4 {
		t.Fatalf("recovered a = %v, want 4", v)
	}
}

// TestRecoveryWithActionCascade checks that cascade-derived operations are
// not logged and are re-derived by replay: a trigger whose action commits
// a follow-up transaction recovers to the uninterrupted engine, including
// the executed-predicate log.
func TestRecoveryWithActionCascade(t *testing.T) {
	bump := func(ctx *ActionContext) error {
		n, _ := ctx.DB().Get("n")
		return ctx.Exec(map[string]value.Value{"n": value.NewInt(n.AsInt() + 1)})
	}
	run := func(e *Engine) {
		t.Helper()
		if err := e.AddTrigger("bump", `@bump`, bump); err != nil {
			t.Fatal(err)
		}
		for _, ts := range []int64{10, 20, 30} {
			if err := e.Emit(ts, event.New("bump")); err != nil {
				t.Fatal(err)
			}
		}
	}
	ref := NewEngine(Config{Initial: map[string]value.Value{"n": value.NewInt(0)}})
	run(ref)

	dir := t.TempDir()
	cfg := Config{
		Initial:    map[string]value.Value{"n": value.NewInt(0)},
		Durability: DurabilityWAL,
		NoFsync:    true,
		Actions:    map[string]Action{"bump": bump},
	}
	e, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	run(e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if n, _ := e2.DB().Get("n"); n.AsInt() != 3 {
		t.Fatalf("recovered n = %v, want 3", n)
	}
	if ref.Now() != e2.Now() {
		t.Fatalf("clocks diverge: %d vs %d", ref.Now(), e2.Now())
	}
	if !firingsEqual(ref.Firings(), e2.Firings()) {
		t.Fatalf("firings diverge: %v vs %v", ref.Firings(), e2.Firings())
	}
	want := ref.Executions("bump", 1<<40)
	got := e2.Executions("bump", 1<<40)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("executed log diverges: %v vs %v", want, got)
	}
	// The recovered engine keeps cascading.
	if err := e2.Emit(40, event.New("bump")); err != nil {
		t.Fatal(err)
	}
	if n, _ := e2.DB().Get("n"); n.AsInt() != 4 {
		t.Fatalf("post-recovery cascade: n = %v, want 4", n)
	}
}

// flakyAction fails while item "bad" is 1 and otherwise bumps "n" —
// deterministic over the database, so replay re-derives the same failure
// pattern.
func flakyAction(ctx *ActionContext) error {
	if v, _ := ctx.DB().Get("bad"); v.AsInt() == 1 {
		return errors.New("downstream unavailable")
	}
	n, _ := ctx.DB().Get("n")
	return ctx.Exec(map[string]value.Value{"n": value.NewInt(n.AsInt() + 1)})
}

// TestRecoveryPreservesRuleHealth pins that rule health is part of the
// snapshot: after a checkpoint covers the failures that quarantined a
// rule, recovery replays zero records — so the quarantine, the failure
// counters and the forensic record must come from the snapshot itself,
// and the recovered engine must keep suppressing the action.
func TestRecoveryPreservesRuleHealth(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Initial:         map[string]value.Value{"bad": value.NewInt(1), "n": value.NewInt(0)},
		Durability:      DurabilityWAL,
		NoFsync:         true,
		MaxRuleFailures: 2,
		Actions:         map[string]Action{"flaky": flakyAction},
	}
	e, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddTrigger("flaky", `@hit`, flakyAction); err != nil {
		t.Fatal(err)
	}
	for _, ts := range []int64{1, 2} { // two failures: the breaker trips
		if err := e.Emit(ts, event.New("hit")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if rec := e2.Recovery(); rec.ReplayedRecords != 0 {
		t.Fatalf("replayed %d records, want 0 — health must come from the snapshot", rec.ReplayedRecords)
	}
	h, ok := e2.RuleHealth("flaky")
	if !ok {
		t.Fatal("no health for rule flaky")
	}
	if !h.Quarantined || h.ConsecutiveFailures != 2 || h.TotalFailures != 2 || h.LastFailureAt != 2 {
		t.Fatalf("recovered health = %+v, want quarantined with 2/2 failures at t=2", h)
	}
	if h.LastError == nil || h.LastError.Error() != "downstream unavailable" {
		t.Fatalf("recovered LastError = %v, want the forensic text", h.LastError)
	}
	if got := e2.QuarantinedRules(); len(got) != 1 || got[0] != "flaky" {
		t.Fatalf("QuarantinedRules = %v, want [flaky]", got)
	}
	// The quarantine keeps suppressing post-recovery: even with the
	// downstream healthy again, the action must not run.
	if err := e2.Exec(3, map[string]value.Value{"bad": value.NewInt(0)}, event.New("hit")); err != nil {
		t.Fatal(err)
	}
	if n, _ := e2.DB().Get("n"); n.AsInt() != 0 {
		t.Fatalf("quarantined action ran after recovery: n = %v", n)
	}
}

// TestReviveReplayed pins that ReviveRule is WAL-logged: replay re-trips
// the quarantine at the same point, then the revive record lifts it at
// the same point, so actions that ran after the original revive run
// during replay too.
func TestReviveReplayed(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Initial:         map[string]value.Value{"bad": value.NewInt(1), "n": value.NewInt(0)},
		Durability:      DurabilityWAL,
		NoFsync:         true,
		MaxRuleFailures: 2,
		Actions:         map[string]Action{"flaky": flakyAction},
	}
	e, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddTrigger("flaky", `@hit`, flakyAction); err != nil {
		t.Fatal(err)
	}
	for _, ts := range []int64{1, 2} { // two failures: the breaker trips
		if err := e.Emit(ts, event.New("hit")); err != nil {
			t.Fatal(err)
		}
	}
	// Downstream healthy again, but the firing at t=3 is still suppressed.
	if err := e.Exec(3, map[string]value.Value{"bad": value.NewInt(0)}, event.New("hit")); err != nil {
		t.Fatal(err)
	}
	if err := e.ReviveRule("flaky"); err != nil {
		t.Fatal(err)
	}
	if err := e.Emit(4, event.New("hit")); err != nil { // action runs: n=1
		t.Fatal(err)
	}
	if n, _ := e.DB().Get("n"); n.AsInt() != 1 {
		t.Fatalf("n = %v before crash, want 1", n)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	// Without the revive record, replay would keep the rule quarantined at
	// t=4 and n would recover as 0.
	if n, _ := e2.DB().Get("n"); n.AsInt() != 1 {
		t.Fatalf("recovered n = %v, want 1 — the revive was not replayed", n)
	}
	h, _ := e2.RuleHealth("flaky")
	if h.Quarantined || h.ConsecutiveFailures != 0 || h.TotalFailures != 2 {
		t.Fatalf("recovered health = %+v, want revived with lifetime total 2", h)
	}
	// The recovered engine keeps running the action. (The revived action's
	// own cascade committed at t=5, so the next external instant is 6.)
	if err := e2.Emit(6, event.New("hit")); err != nil {
		t.Fatal(err)
	}
	if n, _ := e2.DB().Get("n"); n.AsInt() != 2 {
		t.Fatalf("post-recovery n = %v, want 2", n)
	}
}

// TestNewEngineRejectsDurability pins the construction contract: durable
// engines come from Restore only.
func TestNewEngineRejectsDurability(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewEngine with Durability set: want panic")
		}
	}()
	NewEngine(Config{Durability: DurabilityWAL})
}

// TestSaveSnapshotRestoresThroughWriter checks Engine.SaveSnapshot against
// a plain writer plus Checkpoint on a durable engine.
func TestCheckpointAndManualSave(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Initial:    map[string]value.Value{"a": value.NewInt(1)},
		Durability: DurabilityWAL,
		NoFsync:    true,
		TrackItems: []string{"a"},
	}
	e, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddTrigger("r", `@tick since item("a") > 2`, nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 7; i++ {
		if err := e.Exec(int64(i), map[string]value.Value{"a": value.NewInt(int64(i))}, event.New("tick")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if e.walSince != 0 {
		t.Fatalf("walSince = %d after Checkpoint, want 0", e.walSince)
	}
	// Two more commits after the checkpoint: recovery must replay exactly
	// those.
	for i := 8; i <= 9; i++ {
		if err := e.Exec(int64(i), map[string]value.Value{"a": value.NewInt(int64(i))}, event.New("tick")); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	rec := e2.Recovery()
	if rec.SnapshotLSN == 0 || rec.ReplayedRecords != 2 {
		t.Fatalf("recovery = %+v, want snapshot plus 2 replayed records", rec)
	}
	if e2.Now() != 9 {
		t.Fatalf("clock %d, want 9", e2.Now())
	}
	// The tracked aux relation survives for instants at or after the
	// compaction horizon the checkpoint established (earlier intervals are
	// pruned by Compact, same as on a memory engine).
	if v, ok := e2.ItemAsOf("a", 8); !ok || v.AsInt() != 8 {
		t.Fatalf("ItemAsOf(a, 8) = %v,%t, want 8", v, ok)
	}
	// Memory engines can still snapshot to a writer.
	mem := NewEngine(Config{Initial: map[string]value.Value{"x": value.NewInt(1)}})
	var sink nopWriter
	if err := mem.SaveSnapshot(&sink); err != nil {
		t.Fatalf("SaveSnapshot on memory engine: %v", err)
	}
}

type nopWriter struct{ n int }

func (w *nopWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
