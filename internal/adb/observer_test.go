package adb

import (
	"fmt"
	"sync"
	"testing"

	"ptlactive/internal/value"
)

// TestOnFiringObservers checks the public observer hook: observers see
// every firing after the Config callback, in registration order, and a
// canceled observer stops receiving.
func TestOnFiringObservers(t *testing.T) {
	var order []string
	e := NewEngine(Config{
		Initial:  map[string]value.Value{"x": value.NewInt(0)},
		OnFiring: func(f Firing) { order = append(order, "cfg:"+f.Rule) },
	})
	if err := e.AddTrigger("up", `item("x") > 0`, nil); err != nil {
		t.Fatal(err)
	}
	cancelA := e.OnFiring(func(f Firing) { order = append(order, "a:"+f.Rule) })
	cancelB := e.OnFiring(func(f Firing) { order = append(order, "b:"+f.Rule) })
	defer cancelB()

	if err := e.Exec(1, map[string]value.Value{"x": value.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	want := []string{"cfg:up", "a:up", "b:up"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}

	cancelA()
	order = nil
	if err := e.Exec(2, map[string]value.Value{"x": value.NewInt(2)}); err != nil {
		t.Fatal(err)
	}
	want = []string{"cfg:up", "b:up"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("after cancel: order = %v, want %v", order, want)
	}
}

// TestOnFiringConcurrentRegistration registers and cancels observers from
// other goroutines while the mutator commits; run under -race this guards
// the copy-on-write discipline.
func TestOnFiringConcurrentRegistration(t *testing.T) {
	e := NewEngine(Config{Initial: map[string]value.Value{"x": value.NewInt(0)}})
	if err := e.AddTrigger("up", `item("x") >= 0`, nil); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cancel := e.OnFiring(func(Firing) {})
				cancel()
			}
		}()
	}
	for ts := int64(1); ts <= 200; ts++ {
		if err := e.Exec(ts, map[string]value.Value{"x": value.NewInt(ts)}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestExecTxnDeletes checks the session-scoped one-shot form applies
// deletes like an explicit Begin/Delete/Commit.
func TestExecTxnDeletes(t *testing.T) {
	e := NewEngine(Config{Initial: map[string]value.Value{
		"a": value.NewInt(1), "b": value.NewInt(2),
	}})
	if err := e.ExecTxn(1, map[string]value.Value{"a": value.NewInt(10)}, []string{"b"}); err != nil {
		t.Fatal(err)
	}
	if v, ok := e.DB().Get("a"); !ok || v.AsInt() != 10 {
		t.Fatalf("a = %v, %v", v, ok)
	}
	if _, ok := e.DB().Get("b"); ok {
		t.Fatalf("b survived its delete")
	}
}

// TestBeginConcurrent allocates transaction ids from many goroutines; ids
// must be unique (run under -race).
func TestBeginConcurrent(t *testing.T) {
	e := NewEngine(Config{})
	const n, per = 8, 50
	ids := make(chan int64, n*per)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				ids <- e.Begin().ID()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[int64]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate txn id %d", id)
		}
		seen[id] = true
	}
}
