package adb

import (
	"errors"
	"testing"

	"ptlactive/internal/event"
	"ptlactive/internal/value"
)

func newTestEngine(t *testing.T, initial map[string]value.Value) *Engine {
	t.Helper()
	return NewEngine(Config{Initial: initial, Start: 0})
}

func TestTriggerFiresOnCondition(t *testing.T) {
	e := newTestEngine(t, map[string]value.Value{"a": value.NewInt(0)})
	if err := e.AddTrigger("r", `item("a") > 5`, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(1, map[string]value.Value{"a": value.NewInt(3)}); err != nil {
		t.Fatal(err)
	}
	if len(e.Firings()) != 0 {
		t.Fatal("should not fire at a=3")
	}
	if err := e.Exec(2, map[string]value.Value{"a": value.NewInt(7)}); err != nil {
		t.Fatal(err)
	}
	fs := e.Firings()
	if len(fs) != 1 || fs[0].Rule != "r" || fs[0].Time != 2 {
		t.Fatalf("firings = %v", fs)
	}
}

func TestTemporalTrigger(t *testing.T) {
	// "a doubled within 10 time units", the paper's running example shape.
	e := newTestEngine(t, map[string]value.Value{"a": value.NewFloat(10)})
	err := e.AddTrigger("doubled",
		`[t <- time] [x <- item("a")] previously (item("a") <= 0.5 * x and time >= t - 10)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = e.Exec(1, map[string]value.Value{"a": value.NewFloat(10)})
	_ = e.Exec(2, map[string]value.Value{"a": value.NewFloat(15)})
	_ = e.Exec(5, map[string]value.Value{"a": value.NewFloat(18)})
	if len(e.Firings()) != 0 {
		t.Fatalf("premature firing: %v", e.Firings())
	}
	_ = e.Exec(8, map[string]value.Value{"a": value.NewFloat(25)})
	if len(e.Firings()) != 1 || e.Firings()[0].Time != 8 {
		t.Fatalf("firings = %v", e.Firings())
	}
}

func TestRuleRegistrationErrors(t *testing.T) {
	e := newTestEngine(t, nil)
	if err := e.AddTrigger("", `true`, nil); err == nil {
		t.Error("empty name should fail")
	}
	if err := e.AddTrigger("r", `true`, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.AddTrigger("r", `true`, nil); err == nil {
		t.Error("duplicate name should fail")
	}
	if err := e.AddTrigger("bad", `nosuch() > 0`, nil); err == nil {
		t.Error("unknown query should fail")
	}
	if err := e.AddTrigger("badsyntax", `and and`, nil); err == nil {
		t.Error("syntax error should fail")
	}
	if err := e.AddConstraint("c", `@e(X)`); err == nil {
		t.Error("constraint with free variables should fail")
	}
	if names := e.RuleNames(); len(names) != 1 || names[0] != "r" {
		t.Errorf("RuleNames = %v", names)
	}
}

func TestIntegrityConstraintAbortsTransaction(t *testing.T) {
	// Constraint: "a never decreases" — phrased temporally: there is no
	// past value x of a exceeding the current value.
	e := newTestEngine(t, map[string]value.Value{"a": value.NewInt(5)})
	err := e.AddConstraint("monotone",
		`[x <- item("a")] not previously (item("a") > x)`)
	if err != nil {
		t.Fatal(err)
	}
	// Increase: fine.
	if err := e.Exec(1, map[string]value.Value{"a": value.NewInt(7)}); err != nil {
		t.Fatal(err)
	}
	// Decrease: must abort.
	err = e.Exec(2, map[string]value.Value{"a": value.NewInt(6)})
	if err == nil {
		t.Fatal("decreasing commit should abort")
	}
	var ce *ConstraintError
	if !errors.As(err, &ce) || ce.Constraint != "monotone" {
		t.Fatalf("error = %v", err)
	}
	if !errors.Is(err, ErrConstraintViolation) {
		t.Fatal("errors.Is(ErrConstraintViolation) should hold")
	}
	// Database unchanged after abort.
	v, _ := e.DB().Get("a")
	if v.AsInt() != 7 {
		t.Fatalf("db corrupted by aborted txn: a = %v", v)
	}
	// The abort state is recorded in the history with a transaction_abort
	// event.
	last, _ := e.History().Last()
	if len(last.Events.ByName(event.TransactionAbort)) != 1 {
		t.Fatalf("last state events = %v", last.Events)
	}
	// A later valid commit still works and the constraint state was not
	// polluted by the aborted attempt.
	if err := e.Exec(3, map[string]value.Value{"a": value.NewInt(8)}); err != nil {
		t.Fatalf("post-abort commit failed: %v", err)
	}
}

func TestConstraintSeesHistoryBeforeTxn(t *testing.T) {
	// Constraint referencing an event history: "u2 only after u1"
	// (the paper's online-satisfaction example, transaction-time model).
	e := newTestEngine(t, nil)
	if err := e.AddConstraint("ordered", `not @u2 or previously @u1`); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	tx.Emit(event.New("u2"))
	if err := tx.Commit(1); err == nil {
		t.Fatal("u2 before u1 should abort")
	}
	tx = e.Begin()
	tx.Emit(event.New("u1"))
	if err := tx.Commit(2); err != nil {
		t.Fatal(err)
	}
	tx = e.Begin()
	tx.Emit(event.New("u2"))
	if err := tx.Commit(3); err != nil {
		t.Fatalf("u2 after u1 should commit: %v", err)
	}
}

func TestActionsAndExecutedPredicate(t *testing.T) {
	// Section 7's schema: r1 fires on C, then r2 executes 10 ticks after
	// r1 executed.
	e := newTestEngine(t, map[string]value.Value{"c": value.NewInt(0), "acted": value.NewInt(0)})
	err := e.AddTrigger("r1", `item("c") = 1`, func(ctx *ActionContext) error {
		// Consume the condition in the same transaction so this
		// level-triggered rule does not refire on its own commit.
		return ctx.Exec(map[string]value.Value{"acted": value.NewInt(1), "c": value.NewInt(0)})
	})
	if err != nil {
		t.Fatal(err)
	}
	var r2Fired []int64
	err = e.AddTrigger("r2", `executed(r1, T) and time = T + 10`, func(ctx *ActionContext) error {
		r2Fired = append(r2Fired, ctx.FiredAt)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(5, map[string]value.Value{"c": value.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	// r1 fired at 5; its action committed at 6 -> executed(r1, 6).
	v, _ := e.DB().Get("acted")
	if v.AsInt() != 1 {
		t.Fatal("r1 action did not run")
	}
	// Advance the clock to 16 = 6 + 10.
	if err := e.Emit(16, event.New("tick")); err != nil {
		t.Fatal(err)
	}
	if len(r2Fired) != 1 || r2Fired[0] != 16 {
		t.Fatalf("r2 firings = %v (executions: %v)", r2Fired, e.Executions("r1", 100))
	}
}

func TestTemporalActionEveryTenMinutes(t *testing.T) {
	// Section 7's temporal action: when price < 60, buy 50 stocks every 10
	// minutes for the next hour. r1 buys once; r2 repeats.
	e := newTestEngine(t, map[string]value.Value{"price": value.NewFloat(100), "bought": value.NewInt(0)})
	buy := func(ctx *ActionContext) error {
		v, _ := ctx.DB().Get("bought")
		return ctx.Exec(map[string]value.Value{"bought": value.NewInt(v.AsInt() + 50)})
	}
	// r1: the condition edge (price drops below 60 having been above).
	err := e.AddTrigger("buy_start", `item("price") < 60 and lasttime (item("price") >= 60)`, buy)
	if err != nil {
		t.Fatal(err)
	}
	err = e.AddTrigger("buy_repeat",
		`executed(buy_start, T) and time - T <= 60 and (time - T) mod 10 = 0`, buy)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(100, map[string]value.Value{"price": value.NewFloat(55)}); err != nil {
		t.Fatal(err)
	}
	// buy_start fires at 100, action commits at 101: executed(buy_start,101).
	// Ticks at 111, 121, ... 161 satisfy (time-101) mod 10 = 0 and <= 60.
	for e.Now() < 175 {
		if err := e.Emit(e.Now()+1, event.New("tick")); err != nil {
			t.Fatal(err)
		}
	}
	v, _ := e.DB().Get("bought")
	// 1 initial + ticks at 111..161 = 6 repeats -> 7 * 50 = 350.
	if v.AsInt() != 350 {
		t.Fatalf("bought = %v, want 350", v)
	}
}

func TestParameterizedTriggerBindings(t *testing.T) {
	e := newTestEngine(t, nil)
	var seen []string
	err := e.AddTrigger("login_watch", `@login(U)`, func(ctx *ActionContext) error {
		u, _ := ctx.Param("U")
		seen = append(seen, u.AsString())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = e.Emit(1, event.New("login", value.NewString("alice")))
	_ = e.Emit(2, event.New("login", value.NewString("bob")), event.New("login", value.NewString("carol")))
	if len(seen) != 3 {
		t.Fatalf("seen = %v", seen)
	}
	// Executions record parameters.
	ex := e.Executions("login_watch", 100)
	if len(ex) != 3 || len(ex[0].Params) != 1 {
		t.Fatalf("executions = %v", ex)
	}
}

func TestSchedulingRelevantDelaysButNeverLoses(t *testing.T) {
	e := newTestEngine(t, map[string]value.Value{"a": value.NewInt(0)})
	// Condition pairs an event with database history.
	err := e.AddTrigger("r", `@ping and previously (item("a") > 5)`, nil, WithScheduling(Relevant))
	if err != nil {
		t.Fatal(err)
	}
	_ = e.Exec(1, map[string]value.Value{"a": value.NewInt(7)})
	_ = e.Exec(2, map[string]value.Value{"a": value.NewInt(1)})
	for ts := int64(3); ts < 10; ts++ {
		_ = e.Emit(ts, event.New("noise"))
	}
	if len(e.Firings()) != 0 {
		t.Fatal("no ping yet")
	}
	_ = e.Emit(10, event.New("ping"))
	if len(e.Firings()) != 1 || e.Firings()[0].Time != 10 {
		t.Fatalf("firings = %v", e.Firings())
	}
}

func TestSchedulingManualFlush(t *testing.T) {
	e := newTestEngine(t, map[string]value.Value{"a": value.NewInt(0)})
	if err := e.AddTrigger("r", `item("a") > 5`, nil, WithScheduling(Manual)); err != nil {
		t.Fatal(err)
	}
	_ = e.Exec(1, map[string]value.Value{"a": value.NewInt(9)})
	_ = e.Exec(2, map[string]value.Value{"a": value.NewInt(1)})
	if len(e.Firings()) != 0 {
		t.Fatal("manual rule should not fire before flush")
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	// The batched invocation recognizes the firing at state time 1 even
	// though the condition no longer holds now: delayed, not lost.
	if len(e.Firings()) != 1 || e.Firings()[0].Time != 1 {
		t.Fatalf("firings = %v", e.Firings())
	}
}

func TestRelevanceSkipsEvaluations(t *testing.T) {
	mk := func(s Scheduling) int64 {
		e := newTestEngine(t, map[string]value.Value{"a": value.NewInt(0)})
		if err := e.AddTrigger("r", `@rare and item("a") > 0`, nil, WithScheduling(s)); err != nil {
			t.Fatal(err)
		}
		for ts := int64(1); ts <= 100; ts++ {
			_ = e.Emit(ts, event.New("noise"))
		}
		_ = e.Emit(101, event.New("rare"))
		return e.EvalSteps()
	}
	eager := mk(Eager)
	relevant := mk(Relevant)
	if relevant >= eager {
		t.Fatalf("relevant scheduling (%d steps) should evaluate less than eager (%d)", relevant, eager)
	}
}

func TestCascadeLimit(t *testing.T) {
	e := NewEngine(Config{
		Initial:      map[string]value.Value{"n": value.NewInt(0)},
		CascadeLimit: 10,
	})
	// Self-perpetuating rule: every update of n fires and updates n again.
	err := e.AddTrigger("loop", `item("n") >= 0`, func(ctx *ActionContext) error {
		v, _ := ctx.DB().Get("n")
		return ctx.Exec(map[string]value.Value{"n": value.NewInt(v.AsInt() + 1)})
	})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Exec(1, map[string]value.Value{"n": value.NewInt(1)})
	if err == nil {
		t.Fatal("infinite cascade should hit the limit")
	}
}

func TestTxnMisuse(t *testing.T) {
	e := newTestEngine(t, nil)
	tx := e.Begin()
	if err := tx.Commit(1); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(2); err == nil {
		t.Error("double commit should fail")
	}
	if err := tx.Abort(2); err == nil {
		t.Error("abort after commit should fail")
	}
	tx2 := e.Begin()
	if err := tx2.Commit(1); err == nil {
		t.Error("non-increasing timestamp should fail")
	}
	tx3 := e.Begin()
	if err := tx3.Abort(5); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 5 {
		t.Errorf("Now = %d", e.Now())
	}
	if err := e.Emit(6); err == nil {
		t.Error("Emit with no events should fail")
	}
}

func TestOnFiringCallback(t *testing.T) {
	var got []Firing
	e := NewEngine(Config{
		Initial:  map[string]value.Value{"a": value.NewInt(1)},
		OnFiring: func(f Firing) { got = append(got, f) },
	})
	if err := e.AddTrigger("r", `item("a") > 5`, nil); err != nil {
		t.Fatal(err)
	}
	_ = e.Exec(1, map[string]value.Value{"a": value.NewInt(10)})
	if len(got) != 1 || got[0].Rule != "r" {
		t.Fatalf("callback got %v", got)
	}
}

func TestRuleEntryStateSemantics(t *testing.T) {
	// A rule entered mid-history observes the state current at entry (the
	// paper initializes auxiliary relations from the database "at that
	// time") but nothing earlier.
	e := newTestEngine(t, map[string]value.Value{"a": value.NewInt(9)})
	_ = e.Exec(1, map[string]value.Value{"a": value.NewInt(10)})
	if err := e.AddTrigger("r", `previously (item("a") = 10)`, nil); err != nil {
		t.Fatal(err)
	}
	_ = e.Exec(2, map[string]value.Value{"a": value.NewInt(3)})
	// The entry state (a=10 at time 1) is visible: one firing at time 1
	// (recognized during the sweep of state 2) and one at time 2 via
	// previously.
	if len(e.Firings()) != 2 || e.Firings()[0].Time != 1 || e.Firings()[1].Time != 2 {
		t.Fatalf("firings = %v", e.Firings())
	}
	// States before entry stay invisible: a was 9 only at state 0.
	e2 := newTestEngine(t, map[string]value.Value{"a": value.NewInt(9)})
	_ = e2.Exec(1, map[string]value.Value{"a": value.NewInt(10)})
	if err := e2.AddTrigger("r", `previously (item("a") = 9)`, nil); err != nil {
		t.Fatal(err)
	}
	_ = e2.Exec(2, map[string]value.Value{"a": value.NewInt(3)})
	if len(e2.Firings()) != 0 {
		t.Fatalf("rule saw pre-entry history: %v", e2.Firings())
	}
}

// TestMembershipRuleThroughEngine: a parameterized rule whose parameter
// ranges over a relation-valued item (the paper's OVERPRICED pattern),
// driven end to end through the engine.
func TestMembershipRuleThroughEngine(t *testing.T) {
	over := func(names ...string) value.Value {
		rows := make([][]value.Value, len(names))
		for i, n := range names {
			rows[i] = []value.Value{value.NewString(n)}
		}
		return value.NewRelation(rows)
	}
	e := newTestEngine(t, map[string]value.Value{"overpriced": over()})
	var seen []string
	err := e.AddTrigger("alert",
		`S in item("overpriced") and not lasttime (S in item("overpriced"))`,
		func(ctx *ActionContext) error {
			s, _ := ctx.Param("S")
			seen = append(seen, s.AsString())
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	_ = e.Exec(1, map[string]value.Value{"overpriced": over("XYZ")})
	_ = e.Exec(2, map[string]value.Value{"overpriced": over("XYZ", "OIL")})
	_ = e.Exec(3, map[string]value.Value{"overpriced": over("OIL")})
	// Edge-triggered: XYZ enters at 1, OIL at 2; no re-alerts.
	if len(seen) != 2 || seen[0] != "XYZ" || seen[1] != "OIL" {
		t.Fatalf("seen = %v", seen)
	}
}

func TestRuleInfo(t *testing.T) {
	e := newTestEngine(t, map[string]value.Value{"a": value.NewInt(0)})
	if err := e.AddTrigger("r", `@login(U) and previously item("a") > 0`, nil, WithScheduling(Manual)); err != nil {
		t.Fatal(err)
	}
	if err := e.AddConstraint("c", `item("a") >= 0`); err != nil {
		t.Fatal(err)
	}
	_ = e.Exec(1, map[string]value.Value{"a": value.NewInt(1)})
	info, ok := e.Rule("r")
	if !ok || !info.Temporal || info.Constraint || info.Scheduling != Manual {
		t.Fatalf("info = %+v", info)
	}
	if len(info.Parameters) != 1 || info.Parameters[0] != "U" {
		t.Fatalf("params = %v", info.Parameters)
	}
	if len(info.Events) != 1 || info.Events[0] != "login" {
		t.Fatalf("events = %v", info.Events)
	}
	if info.PendingStates == 0 {
		t.Fatal("manual rule should have pending states")
	}
	ci, ok := e.Rule("c")
	if !ok || !ci.Constraint {
		t.Fatalf("constraint info = %+v", ci)
	}
	if _, ok := e.Rule("zzz"); ok {
		t.Fatal("unknown rule should miss")
	}
}
