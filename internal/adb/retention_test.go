package adb

import (
	"errors"
	"testing"

	"ptlactive/internal/value"
)

// execSeries commits one update per tick over [1, n] so the engine clock
// and the tracked item's interval history advance predictably.
func execSeries(t *testing.T, e *Engine, n int64) {
	t.Helper()
	for ts := int64(1); ts <= n; ts++ {
		if err := e.Exec(ts, map[string]value.Value{"a": value.NewInt(ts)}); err != nil {
			t.Fatalf("exec at %d: %v", ts, err)
		}
	}
}

// TestRetentionDropRefusesOldReads: under the drop policy, a
// point-in-time read older than the retention floor is refused with the
// typed error — deterministically, before consulting whatever rows happen
// to still be resident — while reads inside the window keep answering.
func TestRetentionDropRefusesOldReads(t *testing.T) {
	e := NewEngine(Config{
		Initial:    map[string]value.Value{"a": value.NewInt(0)},
		TrackItems: []string{"a"},
		Retention:  Retention{HistoryWindow: 5},
	})
	execSeries(t, e, 20)

	floor, ok := e.HistoryFloor()
	if !ok || floor != 15 {
		t.Fatalf("HistoryFloor = %d, %t; want 15, true", floor, ok)
	}
	if _, _, err := e.ItemAsOfChecked("a", 3); err == nil {
		t.Fatal("read below the floor succeeded under the drop policy")
	} else {
		if !errors.Is(err, ErrHistoryTruncated) {
			t.Fatalf("error %v does not match ErrHistoryTruncated", err)
		}
		var hte *HistoryTruncatedError
		if !errors.As(err, &hte) || hte.Time != 3 || hte.Floor != 15 {
			t.Fatalf("typed error = %+v; want Time 3, Floor 15", hte)
		}
	}
	v, ok, err := e.ItemAsOfChecked("a", 17)
	if err != nil || !ok || v.AsInt() != 17 {
		t.Fatalf("in-window read = %v, %t, %v; want 17", v, ok, err)
	}
	// The untyped accessor misses rather than erroring.
	if _, ok := e.ItemAsOf("a", 3); ok {
		t.Fatal("ItemAsOf answered below the floor")
	}
	// Untracked items are a miss, not a truncation.
	if _, ok, err := e.ItemAsOfChecked("zzz", 3); ok || err != nil {
		t.Fatalf("untracked = %t, %v; want miss, nil", ok, err)
	}
}

// TestRetentionSpillServesColdReads: under the spill policy, intervals
// pruned from the resident window are answered from the on-disk cold
// tier with the exact values they had.
func TestRetentionSpillServesColdReads(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Initial:    map[string]value.Value{"a": value.NewInt(0)},
		TrackItems: []string{"a"},
		Durability: DurabilityWAL,
		NoFsync:    true,
		Retention:  Retention{HistoryWindow: 5, SpillHistory: true},
	}
	e, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	execSeries(t, e, 20)

	for _, ts := range []int64{1, 3, 9, 14} {
		v, ok, err := e.ItemAsOfChecked("a", ts)
		if err != nil || !ok || v.AsInt() != ts {
			t.Fatalf("cold read at %d = %v, %t, %v; want %d", ts, v, ok, err, ts)
		}
	}
	st, err := e.Storage()
	if err != nil {
		t.Fatal(err)
	}
	if st.TierRows == 0 || st.TierBytes == 0 {
		t.Fatalf("tier empty after spilling: %+v", st)
	}
	if st.HistoryWindow != 5 || st.HistoryFloor != 15 || !st.SpillHistory {
		t.Fatalf("storage stats window view wrong: %+v", st)
	}
}

// TestRetentionSpillReplayIdempotent: recovery replays the commits that
// originally pruned, so the prunes re-run — the tier watermark must make
// the re-spills no-ops (same row count, same answers) instead of
// duplicating the cold tier on every restart.
func TestRetentionSpillReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Initial:    map[string]value.Value{"a": value.NewInt(0)},
		TrackItems: []string{"a"},
		Durability: DurabilityWAL,
		NoFsync:    true,
		Retention:  Retention{HistoryWindow: 5, SpillHistory: true},
	}
	e, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	execSeries(t, e, 20)
	st1, err := e.Storage()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 2; round++ {
		e, err = Restore(cfg, dir)
		if err != nil {
			t.Fatalf("restart %d: %v", round, err)
		}
		st, err := e.Storage()
		if err != nil {
			t.Fatal(err)
		}
		if st.TierRows != st1.TierRows {
			t.Fatalf("restart %d duplicated the tier: %d rows, want %d", round, st.TierRows, st1.TierRows)
		}
		for _, ts := range []int64{1, 9, 14, 17} {
			v, ok, err := e.ItemAsOfChecked("a", ts)
			if err != nil || !ok || v.AsInt() != ts {
				t.Fatalf("restart %d read at %d = %v, %t, %v; want %d", round, ts, v, ok, err, ts)
			}
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRetentionMemorySpillKeepsResident: a memory engine has no cold tier
// to spill to; rather than silently losing history, the spill policy
// keeps the rows resident.
func TestRetentionMemorySpillKeepsResident(t *testing.T) {
	e := NewEngine(Config{
		Initial:    map[string]value.Value{"a": value.NewInt(0)},
		TrackItems: []string{"a"},
		Retention:  Retention{HistoryWindow: 5, SpillHistory: true},
	})
	execSeries(t, e, 20)
	for _, ts := range []int64{1, 9, 17} {
		v, ok, err := e.ItemAsOfChecked("a", ts)
		if err != nil || !ok || v.AsInt() != ts {
			t.Fatalf("read at %d = %v, %t, %v; want %d (kept resident)", ts, v, ok, err, ts)
		}
	}
}

// TestRetentionGCChaosUnderGroupCommit drives a durable engine with tiny
// segments, an aggressive snapshot cadence and a group-commit flusher in
// flight, so segment rotation and snapshot-chain GC race the background
// flush goroutine; under -race this is the lifecycle subsystem's
// concurrency check, and the disk footprint must stay bounded.
func TestRetentionGCChaosUnderGroupCommit(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Initial:       map[string]value.Value{"a": value.NewInt(0)},
		TrackItems:    []string{"a"},
		Durability:    DurabilitySnapshot,
		SnapshotEvery: 5,
		GroupCommit:   8,
		NoFsync:       true,
		Retention: Retention{
			SegmentBytes:  512,
			KeepSnapshots: 2,
			HistoryWindow: 10,
			SpillHistory:  true,
		},
	}
	e, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	execSeries(t, e, 300)
	if err := e.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	st, err := e.Storage()
	if err != nil {
		t.Fatal(err)
	}
	// With 512-byte segments GCed behind a 2-deep snapshot chain, the live
	// segment count must stay small no matter how many commits ran.
	if st.Segments > 8 {
		t.Fatalf("segment count grew without bound: %+v", st)
	}
	if st.Snapshots > 2 {
		t.Fatalf("snapshot chain not compacted: %+v", st)
	}
	if st.HeadLSN <= 1 {
		t.Fatalf("no WAL head advance (GC never ran): %+v", st)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// The survivor must still recover and keep answering cold reads.
	e, err = Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if got := e.Now(); got != 300 {
		t.Fatalf("recovered clock %d, want 300", got)
	}
	v, ok, err := e.ItemAsOfChecked("a", 42)
	if err != nil || !ok || v.AsInt() != 42 {
		t.Fatalf("cold read after recovery = %v, %t, %v; want 42", v, ok, err)
	}
}
