// Package adb implements the paper's rule system and execution model
// (Sections 3, 7 and 8): Condition-Action rules whose conditions are PTL
// formulas, temporal integrity constraints evaluated at commit attempts,
// the executed predicate for composite and temporal actions, relevance
// filtering and batched invocation of the temporal component.
package adb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ptlactive/internal/core"
	"ptlactive/internal/event"
	"ptlactive/internal/histio"
	"ptlactive/internal/history"
	"ptlactive/internal/persist"
	"ptlactive/internal/ptl"
	"ptlactive/internal/query"
	"ptlactive/internal/relation"
	"ptlactive/internal/retain"
	"ptlactive/internal/value"
)

// Scheduling selects when a trigger's condition is (re)evaluated
// (Section 8).
type Scheduling int

const (
	// Eager evaluates the condition at every new system state.
	Eager Scheduling = iota
	// Relevant evaluates only when a state carries one of the condition's
	// event symbols, or a transaction commit for conditions that read the
	// database. Pending states are then processed in order (catch-up), so
	// firing is delayed, never lost — "trigger firing may be delayed, but
	// not go unrecognized".
	Relevant
	// Manual evaluates only on an explicit Flush; this is the batched
	// invocation mode ("the temporal component invocation can be executed
	// for multiple events at the same time").
	Manual
)

// Firing records one rule firing: the rule, the satisfying parameter
// binding, and the system state at which the condition held.
type Firing struct {
	Rule       string
	Binding    core.Binding
	Time       int64
	StateIndex int
}

// ActionContext is passed to trigger actions. Actions run after the rule
// sweep of the state that fired them; they may run further transactions
// and emit events through it. The engine is reachable only through the
// context's methods: every mutating path (Exec, Begin-transactions) is
// guarded by the deadline gate, so a timed-out action's leaked goroutine
// is refused instead of racing the resumed sweep.
type ActionContext struct {
	Rule    string
	Binding core.Binding
	// FiredAt is the timestamp of the state satisfying the condition.
	FiredAt int64

	engine *Engine
	// ctx carries the Config.ActionTimeout deadline (Background without
	// one); gate refuses engine mutations after the deadline fires.
	ctx  context.Context
	gate actionGate
}

// Param returns a bound condition parameter by name.
func (c *ActionContext) Param(name string) (value.Value, bool) {
	v, ok := c.Binding[name]
	return v, ok
}

// Context returns the action's deadline context (Config.ActionTimeout);
// long-running actions should observe its cancellation. Without a timeout
// it never cancels.
func (c *ActionContext) Context() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// Exec runs a transaction on behalf of the action: updates are applied and
// committed as a new system state (with the given extra events) at the
// next clock tick. After the action's deadline has expired the engine has
// moved on, so the mutation is refused with ErrActionTimeout.
func (c *ActionContext) Exec(updates map[string]value.Value, events ...event.Event) error {
	c.gate.mu.Lock()
	defer c.gate.mu.Unlock()
	if c.gate.expired {
		return &TimeoutError{Rule: c.Rule, Timeout: c.engine.actionTimeout}
	}
	return c.engine.execInternal(updates, events)
}

// Begin opens a transaction on behalf of the action, for multi-item
// commits that Exec's one-shot form cannot express. The transaction is
// bound to the action's deadline gate: Commit and Abort after the
// deadline are refused with ErrActionTimeout.
func (c *ActionContext) Begin() *Txn {
	c.gate.mu.Lock()
	defer c.gate.mu.Unlock()
	if c.gate.expired {
		return &Txn{
			e:       c.engine,
			updates: map[string]value.Value{},
			deletes: map[string]bool{},
			refused: &TimeoutError{Rule: c.Rule, Timeout: c.engine.actionTimeout},
		}
	}
	tx := c.engine.Begin()
	tx.owner = c
	return tx
}

// DB returns the current database state (an immutable snapshot).
func (c *ActionContext) DB() history.DBState { return c.engine.DB() }

// Now returns the timestamp of the latest system state.
func (c *ActionContext) Now() int64 { return c.engine.Now() }

// AsOf returns the value a tracked item (Config.TrackItems) had at the
// instant this firing's condition was satisfied. Actions run after the
// firing state's sweep — possibly much later under Relevant or Manual
// scheduling — so the current database may have moved on; AsOf reads the
// auxiliary relation instead.
func (c *ActionContext) AsOf(item string) (value.Value, bool) {
	return c.engine.ItemAsOf(item, c.FiredAt)
}

// Action is the action part of a trigger.
type Action func(ctx *ActionContext) error

// ErrConstraintViolation is returned (wrapped) by Txn.Commit when a
// temporal integrity constraint rejects the transaction.
var ErrConstraintViolation = errors.New("integrity constraint violated")

// ConstraintError carries the violated constraint's name.
type ConstraintError struct {
	Constraint string
	Txn        int64
}

// Error describes the violation.
func (e *ConstraintError) Error() string {
	return fmt.Sprintf("adb: transaction %d aborted: %s: %v", e.Txn, e.Constraint, ErrConstraintViolation)
}

// Unwrap yields ErrConstraintViolation for errors.Is.
func (e *ConstraintError) Unwrap() error { return ErrConstraintViolation }

// rule is the engine-internal compiled form.
type rule struct {
	name       string
	condition  ptl.Formula
	info       *ptl.Info
	ev         core.ConditionEvaluator
	action     Action
	constraint bool
	sched      Scheduling
	events     map[string]bool
	readsDB    bool
	cursor     int // next history index this rule's evaluator will see
	paramOrder []string
	// health is the rule's isolated failure record (guarded by Engine.mu);
	// health.quarantined suppresses the action, never the condition.
	health ruleHealth

	// Scheduling-index metadata (see readset.go). rs and class are fixed at
	// registration; contiguous marks rules whose evaluator steps every
	// state in order (temporal, Eager or Manual — never the non-temporal
	// Relevant jump), the precondition for the dbUnchanged hint. hinted is
	// ev when it supports hinted stepping.
	rs         readSet
	class      ruleClass
	contiguous bool
	hinted     core.HintedEvaluator
	// wakeGen / dirtyGen are sweep-generation marks: sweepOnce stamps them
	// through the event and item indexes so the assembly pass over the rule
	// table costs O(1) per rule. Only the sweep goroutine touches them.
	wakeGen  uint64
	dirtyGen uint64
	// Quiescent-replay memo (guarded by Engine.mu): the outcome of the last
	// evaluation at a commit state. While every later commit leaves the
	// rule's read set untouched, re-evaluating would reproduce exactly this
	// outcome, so the sweep replays it instead. Persisted in snapshots so a
	// recovered engine evaluates the same states the original did.
	memoValid    bool
	memoFired    bool
	memoBindings []core.Binding
}

// dirtySet records which database items one history state changed relative
// to its predecessor. known is false when the engine cannot tell (the
// initial state, states restored from a snapshot); an unknown dirty set
// disables every read-set refinement for that state but never changes
// results. items is nil for states that change nothing (events, aborts);
// it is a small slice, not a map — commits touch few items, and one slice
// allocation per commit is the whole bookkeeping cost.
type dirtySet struct {
	known bool
	items []string
}

// Engine is an active database: a current database state, a growing
// system history, a rule set and the temporal component that evaluates
// rule conditions incrementally.
//
// All engine methods take explicit timestamps where a new system state is
// created; timestamps must be strictly increasing.
//
// Concurrency model: mutating operations (Emit, transactions, Flush,
// rule registration, Compact, PruneExecutions) must come from a single
// goroutine at a time, but the reader accessors — Firings, ItemAsOf,
// Rule, RuleNames, EvalSteps, Executions, Now, DB, BaseIndex — are safe
// to call from any goroutine concurrently with that mutator. Internally
// the temporal component shards rule evaluation across Config.Workers
// goroutines; firings and constraint violations are merged back in rule
// registration order, so observable behavior is independent of the
// worker count (see DESIGN.md, "Concurrency model").
type Engine struct {
	// mu guards the observable shared state: history length, database,
	// clock, firings, the step counter, the execution log and the rule
	// table. Mutators write under mu.Lock in short windows (never across
	// rule evaluation or user callbacks); reader accessors take mu.RLock.
	mu sync.RWMutex

	reg   *query.Registry
	hist  *history.History
	db    history.DBState
	now   int64
	rules []*rule
	index map[string]*rule

	execs    []ptl.Execution
	execIdx  map[string][]ptl.Execution // secondary index of execs by rule
	firings  []Firing
	onFiring func(Firing)
	// observers are the OnFiring-registered firing observers, notified
	// after the Config.OnFiring callback in registration order. Guarded by
	// mu; mutation is copy-on-write so the sweep can call a snapshot of the
	// list without holding the lock.
	observers []firingObserver
	nextObsID uint64
	nextTxn   int64
	inSweep   bool
	pending   []Firing // firings awaiting action execution
	cascade   int
	cascadeTo int

	// workers bounds the pool evaluating independent rules concurrently.
	workers int

	// base is the absolute index of hist's first state; Compact advances
	// it as fully-processed prefix states are discarded.
	base int

	// tracked holds the Section-5 auxiliary relations for items named in
	// Config.TrackItems: each captures the item's value over time with
	// [T_start, T_end) validity intervals, so delayed actions (Relevant or
	// Manual scheduling, batching) can read values as of their firing
	// instant rather than the current instant. trackedNames fixes the
	// capture order (map iteration order reached the aux relations and the
	// internal-error path otherwise).
	tracked      map[string]*relation.ScalarAux
	trackedNames []string

	// stats for the E8 benchmark.
	evalSteps int64
	noFast    bool

	// Read-set scheduling index (see readset.go). dirty runs parallel to
	// hist: dirty[i] is what state i changed. eventIndex and itemIndex map
	// event names and item names to the rules whose conditions mention
	// them; sweepGen is the generation counter the indexes stamp into
	// rule.wakeGen/dirtyGen. noIndex (Config.DisableReadSetIndex) keeps the
	// historical coarse sweep, for the E12 ablation and recovery of logs
	// written by it.
	noIndex    bool
	dirty      []dirtySet
	eventIndex map[string][]*rule
	itemIndex  map[string][]*rule
	sweepGen   uint64

	// Fault isolation and resource governance (see health.go): the
	// circuit-breaker threshold, the per-sweep step budget, the per-action
	// deadline and the fault observer. degraded, once set, seals the
	// engine read-only (guarded by mu; see seal).
	maxFailures   int
	sweepBudget   int64
	actionTimeout time.Duration
	onRuleFault   func(RuleFault)
	degraded      error

	// Durability subsystem (internal/persist); store is nil for memory
	// engines. suppress is incremented around replay and action cascades so
	// derived operations are not logged — replaying the external operation
	// re-derives them through the normal sweep path.
	store     *persist.Store
	durMode   Durability
	snapEvery int
	// epoch is the replication primary epoch (see persist.KindEpoch): the
	// highest epoch record this engine has logged or replayed. 0 means the
	// engine was never part of a promoted replica set.
	epoch        int64
	suppress     int
	walSince     int // records appended since the last snapshot
	commitsSince int
	recovery     RecoveryInfo
	initRec      *persist.InitRecord
	actions      map[string]Action

	// Storage-lifecycle policy (see retention.go): retention is fixed at
	// construction; tier is the open cold tier (nil without SpillHistory
	// or for memory engines); histFloor is the oldest timestamp resident
	// point-in-time reads answer, advanced only at commit tails so
	// concurrent ItemAsOf readers load it atomically.
	retention Retention
	tier      *retain.Tier
	histFloor atomic.Int64
}

// Config configures a new engine.
type Config struct {
	// Registry supplies the query functions; nil means just the built-ins.
	Registry *query.Registry
	// Initial is the initial database state.
	Initial map[string]value.Value
	// Start is the timestamp of the initial system state.
	Start int64
	// CascadeLimit bounds chains of action-triggered firings per external
	// operation (default 1000).
	CascadeLimit int
	// OnFiring, when set, observes every firing as it happens.
	OnFiring func(Firing)
	// TrackItems names database items whose historic values the engine
	// captures in auxiliary relations, queryable with ItemAsOf and
	// ActionContext.AsOf. Items not listed cost nothing.
	TrackItems []string
	// DisableFastPath forces the general constraint-graph evaluator even
	// for decomposable conditions; the A1 ablation uses it.
	DisableFastPath bool
	// DisableReadSetIndex forces the coarse Section-8 relevance filter:
	// every database-reading rule is evaluated at every commit, with no
	// event gating, quiescent replay or query-cache hints. Firings are
	// identical either way; only the work differs. The E12 ablation uses
	// it. Persisted in the init record: the setting shapes the evaluation
	// step sequence, which recovery verification compares.
	DisableReadSetIndex bool
	// Workers bounds the worker pool the temporal component uses to
	// evaluate independent rules concurrently during sweeps, flushes and
	// constraint checks. 0 means GOMAXPROCS; 1 forces fully sequential
	// evaluation. Firings, violations and errors are merged in rule
	// registration order, so results do not depend on this setting.
	Workers int
	// Durability selects the persistence mode. NewEngine only accepts
	// DurabilityOff; durable engines are opened with Restore, which reads
	// this field (DurabilityOff there is promoted to DurabilityWAL).
	Durability Durability
	// SnapshotEvery is the checkpoint period, in external commits, under
	// DurabilitySnapshot (default 64).
	SnapshotEvery int
	// NoFsync disables the per-record WAL fsync; crash-equivalence tests
	// and benchmarks use it, production durability should not.
	NoFsync bool
	// GroupCommit, when > 1, batches WAL appends: records are buffered and
	// written+fsynced together every GroupCommit records (and on SyncWAL,
	// checkpoints and Close). A crash loses at most the buffered suffix;
	// the flushed prefix recovers exactly. Runtime-only (a durability
	// latency/throughput trade, not behavior-shaping): the logged record
	// sequence is identical at every batch size.
	GroupCommit int
	// MaxRuleFailures trips the per-rule circuit breaker: after this many
	// consecutive action failures (errors, panics, timeouts) the rule is
	// quarantined — its condition stays incrementally maintained and its
	// firings recorded, but the action is suppressed until ReviveRule.
	// 0 disables automatic quarantine (failures are still recorded).
	// Persisted in the init record: it shapes which actions run, so replay
	// must use the original value.
	MaxRuleFailures int
	// SweepBudget bounds the evaluator steps one temporal-component
	// invocation may spend; exceeding it yields ErrBudgetExceeded
	// attributed to the rule that crossed the budget (by registration
	// order, independent of Workers). 0 means unlimited. Persisted in the
	// init record for replay equivalence.
	SweepBudget int64
	// ActionTimeout is the per-action deadline; an action exceeding it
	// yields ErrActionTimeout attributed to its rule, and any later engine
	// mutation through its ActionContext is refused. 0 means no deadline.
	// Wall-clock dependent, so runtime-only (not persisted).
	ActionTimeout time.Duration
	// OnRuleFault, when set, observes every isolated rule fault (action
	// error, panic, timeout, quarantine suppression) as it happens.
	OnRuleFault func(RuleFault)
	// Actions maps rule names to action functions for recovery: rules
	// re-registered from the snapshot or log get their action here. For
	// replay equivalence they must be the same deterministic actions the
	// original engine ran.
	Actions map[string]Action
	// Retention is the storage-lifecycle policy (see retention.go). The
	// history fields (HistoryWindow, SpillHistory) shape query answers and
	// are persisted in the init record; the WAL fields (SegmentBytes,
	// KeepSnapshots) are runtime-only disk-layout knobs read by Restore.
	Retention Retention
}

// NewEngine creates a memory-only engine with an initial state at
// Config.Start; durable engines are opened with Restore.
func NewEngine(cfg Config) *Engine {
	if cfg.Durability != DurabilityOff {
		panic("adb: NewEngine is memory-only; open durable engines with Restore")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = query.NewRegistry()
	}
	limit := cfg.CascadeLimit
	if limit <= 0 {
		limit = 1000
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		reg:           reg,
		hist:          history.New(),
		db:            history.NewDB(cfg.Initial),
		now:           cfg.Start,
		index:         map[string]*rule{},
		execIdx:       map[string][]ptl.Execution{},
		onFiring:      cfg.OnFiring,
		cascadeTo:     limit,
		workers:       workers,
		noFast:        cfg.DisableFastPath,
		noIndex:       cfg.DisableReadSetIndex,
		eventIndex:    map[string][]*rule{},
		itemIndex:     map[string][]*rule{},
		maxFailures:   cfg.MaxRuleFailures,
		sweepBudget:   cfg.SweepBudget,
		actionTimeout: cfg.ActionTimeout,
		onRuleFault:   cfg.OnRuleFault,
	}
	if len(cfg.TrackItems) > 0 {
		e.tracked = make(map[string]*relation.ScalarAux, len(cfg.TrackItems))
		for _, name := range cfg.TrackItems {
			if _, dup := e.tracked[name]; dup {
				continue
			}
			e.tracked[name] = relation.NewScalarAux()
			e.trackedNames = append(e.trackedNames, name)
		}
		sort.Strings(e.trackedNames)
	}
	// The init record reproduces this construction during recovery. Every
	// value kind is supposed to encode; if one does not, the engine comes
	// up sealed and the typed error surfaces at the first mutating call
	// instead of panicking the process.
	initial, err := histio.EncodeItems(cfg.Initial)
	if err != nil {
		e.seal(&InternalError{Op: "encode initial db", Err: err})
	}
	e.initRec = &persist.InitRecord{
		Initial:         initial,
		Start:           cfg.Start,
		TrackItems:      append([]string(nil), e.trackedNames...),
		DisableFast:     cfg.DisableFastPath,
		DisableIndex:    cfg.DisableReadSetIndex,
		CascadeLimit:    limit,
		MaxRuleFailures: cfg.MaxRuleFailures,
		SweepBudget:     cfg.SweepBudget,
		HistoryWindow:   cfg.Retention.HistoryWindow,
		SpillHistory:    cfg.Retention.SpillHistory,
	}
	e.retention = cfg.Retention
	if w := e.retention.HistoryWindow; w > 0 {
		e.histFloor.Store(cfg.Start - w)
	}
	e.hist.MustAppend(history.SystemState{DB: e.db, Events: event.NewSet(), TS: cfg.Start})
	// The initial state's delta from "before the engine existed" is not a
	// meaningful dirty set; leave it unknown so no refinement applies.
	e.dirty = append(e.dirty, dirtySet{})
	if err := e.capture(cfg.Start); err != nil {
		e.seal(err)
	}
	return e
}

// capture records the tracked items' current values in their auxiliary
// relations, in sorted item order so the capture sequence (and any
// internal-error report) is deterministic. Captures are in commit order,
// so a failure means a broken invariant: it is returned as a typed error
// (and the caller seals the engine) rather than panicking.
func (e *Engine) capture(ts int64) error {
	for _, name := range e.trackedNames {
		v, ok := e.db.Get(name)
		if !ok {
			v = value.Value{}
		}
		if err := e.tracked[name].Capture(ts, v); err != nil {
			return &InternalError{Op: "aux capture " + name, Err: err}
		}
	}
	return nil
}

// Degraded reports whether the engine is sealed into read-only degraded
// mode (nil when healthy). A durability fault — a WAL append or fsync
// error — or a broken internal invariant seals the engine: the in-memory
// state stays intact and readable, mutating operations are refused with
// the sealing error, and recovery from disk yields exactly the committed
// prefix. Safe for concurrent use.
func (e *Engine) Degraded() error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.degraded
}

// healthy is the mutator entry check: it returns the sealing error, if
// any.
func (e *Engine) healthy() error { return e.Degraded() }

// seal transitions the engine into read-only degraded mode; the first
// cause wins. It returns the sealing error for the caller to propagate.
func (e *Engine) seal(cause error) error {
	e.mu.Lock()
	if e.degraded == nil {
		if _, ok := cause.(*DegradedError); ok {
			e.degraded = cause
		} else {
			e.degraded = &DegradedError{Cause: cause}
		}
	}
	err := e.degraded
	e.mu.Unlock()
	return err
}

// ItemAsOf returns the value a tracked item had at time t (Null if the
// item did not exist then). The second result is false when the item is
// not tracked, t precedes the engine's start, or t is older than the
// retained history (ItemAsOfChecked distinguishes the latter with a typed
// error). Safe for concurrent use (the tracked table is immutable after
// NewEngine, each auxiliary relation synchronizes its own readers against
// captures, and the retention floor is read atomically).
func (e *Engine) ItemAsOf(name string, t int64) (value.Value, bool) {
	v, ok, err := e.ItemAsOfChecked(name, t)
	if err != nil {
		return value.Value{}, false
	}
	return v, ok
}

// Registry returns the engine's query registry, for registering
// application queries before adding rules.
func (e *Engine) Registry() *query.Registry { return e.reg }

// History returns the system history built so far. It must not be
// modified, and unlike the snapshot accessors it must not be iterated
// concurrently with engine mutations (the mutator appends to it).
func (e *Engine) History() *history.History {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.hist
}

// DB returns the current database state (an immutable snapshot). Safe for
// concurrent use.
func (e *Engine) DB() history.DBState {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.db
}

// Now returns the timestamp of the latest system state. Safe for
// concurrent use.
func (e *Engine) Now() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.now
}

// firingObserver is one OnFiring registration.
type firingObserver struct {
	id uint64
	fn func(Firing)
}

// OnFiring registers an observer called synchronously for every subsequent
// firing, after the Config.OnFiring callback, in registration order; the
// network layer's subscription fan-out hangs off this hook. The returned
// cancel function removes the observer. Observers run on the mutating
// goroutine in the middle of a sweep, so they must not call engine
// mutators and should return quickly (hand the firing to a queue rather
// than doing slow work inline). Safe for concurrent registration.
func (e *Engine) OnFiring(fn func(Firing)) (cancel func()) {
	e.mu.Lock()
	e.nextObsID++
	id := e.nextObsID
	e.observers = append(e.observers, firingObserver{id: id, fn: fn})
	e.mu.Unlock()
	return func() {
		e.mu.Lock()
		// Copy-on-write removal: a sweep may be iterating the old slice
		// outside the lock.
		out := make([]firingObserver, 0, len(e.observers))
		for _, o := range e.observers {
			if o.id != id {
				out = append(out, o)
			}
		}
		e.observers = out
		e.mu.Unlock()
	}
}

// Firings returns a copy of every firing recorded so far. Safe for
// concurrent use.
func (e *Engine) Firings() []Firing {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]Firing(nil), e.firings...)
}

// EvalSteps returns the total number of evaluator steps performed; the
// relevance-filtering benchmark (E8) reads this. Safe for concurrent use.
func (e *Engine) EvalSteps() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.evalSteps
}

// Workers returns the size of the temporal component's worker pool.
func (e *Engine) Workers() int { return e.workers }

// Executions implements ptl.ExecLog over the engine's execution record.
// Safe for concurrent use; the evaluation workers read it through this
// method while no lock is held for writing.
// The per-rule secondary index keeps the lookup proportional to the named
// rule's own executions; the historical scan walked the whole log, which
// made every executed(R, ...) atom O(total executions) per state.
func (e *Engine) Executions(ruleName string, before int64) []ptl.Execution {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []ptl.Execution
	for _, ex := range e.execIdx[ruleName] {
		if ex.Time < before {
			out = append(out, ex)
		}
	}
	return out
}

// appendExecutionLocked appends to the execution log and its per-rule
// index; the caller holds mu. execs stays the source of truth (snapshots
// serialize it); execIdx is derived and rebuilt wherever execs is replaced
// wholesale (restore, prune).
func (e *Engine) appendExecutionLocked(ex ptl.Execution) {
	e.execs = append(e.execs, ex)
	e.execIdx[ex.Rule] = append(e.execIdx[ex.Rule], ex)
}

// rebuildExecIdxLocked rederives the per-rule index from execs; the caller
// holds mu (or has exclusive access during construction).
func (e *Engine) rebuildExecIdxLocked() {
	e.execIdx = make(map[string][]ptl.Execution, len(e.execIdx))
	for _, ex := range e.execs {
		e.execIdx[ex.Rule] = append(e.execIdx[ex.Rule], ex)
	}
}

// RuleOption configures a rule at registration.
type RuleOption func(*rule)

// WithScheduling sets the trigger's evaluation scheduling.
func WithScheduling(s Scheduling) RuleOption {
	return func(r *rule) { r.sched = s }
}

// AddTrigger registers a trigger with a PTL condition in concrete syntax.
// The action may be nil, in which case firings are only recorded.
func (e *Engine) AddTrigger(name, condition string, action Action, opts ...RuleOption) error {
	f, err := ptl.Parse(condition)
	if err != nil {
		return err
	}
	return e.AddTriggerFormula(name, f, action, opts...)
}

// AddTriggerFormula registers a trigger from an AST condition.
func (e *Engine) AddTriggerFormula(name string, condition ptl.Formula, action Action, opts ...RuleOption) error {
	return e.add(name, condition, action, false, opts...)
}

// AddConstraint registers a temporal integrity constraint: a PTL formula
// that must be satisfied at every commit point (Section 3). Internally
// this is the rule "attempts_to_commit(X) and not constraint -> abort(X)":
// the engine evaluates the negated condition against the tentative commit
// state and aborts the transaction when it is violated.
func (e *Engine) AddConstraint(name, constraint string, opts ...RuleOption) error {
	f, err := ptl.Parse(constraint)
	if err != nil {
		return err
	}
	return e.AddConstraintFormula(name, f, opts...)
}

// AddConstraintFormula registers an integrity constraint from an AST.
func (e *Engine) AddConstraintFormula(name string, constraint ptl.Formula, opts ...RuleOption) error {
	return e.add(name, &ptl.Not{F: constraint}, nil, true, opts...)
}

func (e *Engine) add(name string, condition ptl.Formula, action Action, isConstraint bool, opts ...RuleOption) error {
	if err := e.healthy(); err != nil {
		return err
	}
	if name == "" {
		return fmt.Errorf("adb: empty rule name")
	}
	if _, dup := e.index[name]; dup {
		return fmt.Errorf("adb: rule %q already registered", name)
	}
	info, err := ptl.Check(condition, e.reg)
	if err != nil {
		return fmt.Errorf("adb: rule %s: %w", name, err)
	}
	if isConstraint && len(info.Free) > 0 {
		return fmt.Errorf("adb: constraint %s must not have free variables (found %v)", name, info.Free)
	}
	var ev core.ConditionEvaluator
	if e.noFast {
		ev, err = core.New(info, e.reg, e)
	} else {
		// Decomposable, aggregate-free conditions — the subclass the
		// paper's prototype implemented — get the boolean fast path.
		ev, err = core.CompileAuto(info, e.reg, e)
	}
	if err != nil {
		return fmt.Errorf("adb: rule %s: %w", name, err)
	}
	r := &rule{
		name:       name,
		condition:  condition,
		info:       info,
		ev:         ev,
		action:     action,
		constraint: isConstraint,
		events:     map[string]bool{},
		paramOrder: append([]string(nil), info.Free...),
	}
	sort.Strings(r.paramOrder)
	for _, n := range info.Events {
		r.events[n] = true
	}
	ptl.WalkTerms(info.Normalized, func(t ptl.Term) {
		if c, ok := t.(*ptl.Call); ok && c.Fn != "time" {
			r.readsDB = true
		}
	})
	for _, o := range opts {
		o(r)
	}
	// Classification reads the scheduling, so it runs after the options.
	r.rs = extractReadSet(info, e.reg)
	r.class = classify(r)
	if e.noIndex {
		r.class = classExact
	}
	r.contiguous = r.info.Temporal || r.sched != Relevant
	if h, ok := ev.(core.HintedEvaluator); ok {
		r.hinted = h
	}
	// Encode the registration for the WAL before committing it, so an
	// unencodable condition fails the whole registration.
	var walRec *persist.Record
	if e.logging() {
		cond, err := ptl.EncodeFormula(condition)
		if err != nil {
			return fmt.Errorf("adb: rule %s: %w", name, err)
		}
		walRec = &persist.Record{
			Kind:       persist.KindAddRule,
			Name:       name,
			Cond:       cond,
			Constraint: isConstraint,
			Sched:      int(r.sched),
		}
	}
	// A brand-new rule starts observing at the state current when it is
	// entered: "when the trigger condition f is first entered at time T,
	// R_x is set to the relation retrieved by q on the database at that
	// time" (Section 5). Earlier history is invisible to it.
	e.mu.Lock()
	r.cursor = e.hist.Len() - 1
	e.rules = append(e.rules, r)
	e.index[name] = r
	for n := range r.events {
		e.eventIndex[n] = append(e.eventIndex[n], r)
	}
	if r.class == classQuiescent {
		// Only quiescent rules consume dirty-hit marks; exact rules are
		// evaluated whenever woken regardless.
		for item := range r.rs.items {
			e.itemIndex[item] = append(e.itemIndex[item], r)
		}
	}
	e.mu.Unlock()
	if walRec != nil {
		return e.logRecord(walRec)
	}
	return nil
}

// RuleInfo describes a registered rule for inspection.
type RuleInfo struct {
	Name       string
	Condition  string
	Constraint bool
	Scheduling Scheduling
	Parameters []string
	Events     []string
	Temporal   bool
	// PendingStates is how many history states the rule's evaluator has
	// not yet processed (nonzero under Relevant/Manual scheduling).
	PendingStates int
}

// Rule returns information about a registered rule; ok is false for
// unknown names. Safe for concurrent use.
func (e *Engine) Rule(name string) (RuleInfo, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	r, ok := e.index[name]
	if !ok {
		return RuleInfo{}, false
	}
	return RuleInfo{
		Name:          r.name,
		Condition:     r.condition.String(),
		Constraint:    r.constraint,
		Scheduling:    r.sched,
		Parameters:    append([]string(nil), r.info.Free...),
		Events:        append([]string(nil), r.info.Events...),
		Temporal:      r.info.Temporal,
		PendingStates: e.hist.Len() - r.cursor,
	}, true
}

// RuleNames returns the registered rule names in registration order. Safe
// for concurrent use.
func (e *Engine) RuleNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, len(e.rules))
	for i, r := range e.rules {
		out[i] = r.name
	}
	return out
}

// Emit appends an event-only system state at the given time and runs the
// temporal component.
func (e *Engine) Emit(ts int64, events ...event.Event) error {
	if err := e.healthy(); err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("adb: Emit needs at least one event")
	}
	var walRec *persist.Record
	if e.logging() {
		raw, err := histio.EncodeEvents(events)
		if err != nil {
			return fmt.Errorf("adb: wal: %w", err)
		}
		walRec = &persist.Record{Kind: persist.KindEmit, TS: ts, Events: raw}
	}
	st := history.SystemState{DB: e.db, Events: event.NewSet(events...), TS: ts}
	e.mu.Lock()
	if err := e.hist.Append(st); err != nil {
		e.mu.Unlock()
		return err
	}
	e.dirty = append(e.dirty, dirtySet{known: true})
	e.now = ts
	e.mu.Unlock()
	if walRec != nil {
		if err := e.logRecord(walRec); err != nil {
			return err
		}
	}
	e.resetCascade()
	return e.sweep()
}

// resetCascade clears the cascade budget on externally initiated
// operations; transactions run by actions (re-entrant) keep consuming the
// budget of the operation that started the cascade.
func (e *Engine) resetCascade() {
	if !e.inSweep {
		e.cascade = 0
	}
}

// Txn is an open transaction: buffered updates and events that become a
// single commit state.
type Txn struct {
	e       *Engine
	id      int64
	updates map[string]value.Value
	deletes map[string]bool
	events  []event.Event
	done    bool
	// owner is set for transactions opened through ActionContext.Begin:
	// Commit and Abort then run under the action's deadline gate. refused
	// is set instead when the deadline had already expired at Begin.
	owner   *ActionContext
	refused error
}

// Begin opens a transaction. The begin event is recorded with the commit
// (the model adds system states only when events occur; an explicit begin
// state can be created with Emit if a condition needs it). Transaction ids
// are allocated under the lock, so concurrent sessions may Begin safely;
// the buffered Txn itself is still single-goroutine, and commits must be
// serialized by the caller (the network server's commit pipeline does
// exactly that).
func (e *Engine) Begin() *Txn {
	e.mu.Lock()
	e.nextTxn++
	id := e.nextTxn
	e.mu.Unlock()
	return &Txn{e: e, id: id, updates: map[string]value.Value{}, deletes: map[string]bool{}}
}

// ID returns the transaction id.
func (t *Txn) ID() int64 { return t.id }

// Set buffers an update of a database item.
func (t *Txn) Set(item string, v value.Value) *Txn {
	t.updates[item] = v
	return t
}

// Delete buffers the removal of a database item.
func (t *Txn) Delete(item string) *Txn {
	t.deletes[item] = true
	delete(t.updates, item)
	return t
}

// Emit buffers events to occur at the commit instant.
func (t *Txn) Emit(events ...event.Event) *Txn {
	t.events = append(t.events, events...)
	return t
}

// gateCheck refuses a transaction whose owning action's deadline expired
// and, for a live action-owned transaction, acquires the deadline gate so
// the commit (or abort) cannot overlap the resumed sweep. The gate is
// held on a nil return with a non-nil owner; gateRelease drops it. Error
// returns never hold the gate.
func (t *Txn) gateCheck() error {
	if t.refused != nil {
		t.done = true
		return t.refused
	}
	if t.owner == nil {
		return nil
	}
	t.owner.gate.mu.Lock()
	if t.owner.gate.expired {
		t.owner.gate.mu.Unlock()
		t.done = true
		return &TimeoutError{Rule: t.owner.Rule, Timeout: t.e.actionTimeout}
	}
	return nil
}

// gateRelease drops the deadline gate acquired by a successful gateCheck.
func (t *Txn) gateRelease() {
	if t.owner != nil {
		t.owner.gate.mu.Unlock()
	}
}

// Commit attempts to commit at the given time. Integrity constraints are
// evaluated against the tentative commit state (the attempts_to_commit
// event); on violation the transaction aborts: the database is unchanged,
// a transaction_abort state is appended instead, and a *ConstraintError is
// returned.
func (t *Txn) Commit(ts int64) error {
	if t.done {
		return fmt.Errorf("adb: transaction %d already finished", t.id)
	}
	if err := t.gateCheck(); err != nil {
		return err
	}
	defer t.gateRelease()
	e := t.e
	if err := e.healthy(); err != nil {
		return err
	}
	t.done = true
	txv := value.NewInt(t.id)
	// Assemble the commit's event set in one exactly-sized slice the set
	// takes ownership of; the key-sort scratch is pooled. Both run on every
	// commit, so the assembly itself must not allocate beyond the one
	// retained array.
	events := make([]event.Event, 0, 2+len(t.updates)+len(t.events))
	events = append(events,
		event.New(event.AttemptsToCommit, txv),
		event.New(event.TransactionCommit, txv))
	keysp := keyScratch.Get().(*[]string)
	keys := (*keysp)[:0]
	for k := range t.updates {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, item := range keys {
		events = append(events, event.New(event.UpdateItem, value.NewString(item)))
	}
	*keysp = keys
	keyScratch.Put(keysp)
	events = append(events, t.events...)
	ndb := e.db.WithAll(t.updates)
	for _, item := range sortedBoolKeys(t.deletes) {
		ndb = ndb.Without(item)
	}
	tentative := history.SystemState{
		DB:     ndb,
		Events: event.NewSetOwned(events),
		TS:     ts,
	}
	// Validate against history invariants before constraint work.
	if last, ok := e.hist.Last(); ok && ts <= last.TS {
		return fmt.Errorf("adb: commit timestamp %d not after %d", ts, last.TS)
	}
	// One record covers both outcomes: replay re-runs the constraints, so a
	// rejected attempt re-derives its abort state from the same record.
	var walRec *persist.Record
	if e.logging() {
		var err error
		if walRec, err = e.execRecord(t, ts); err != nil {
			return err
		}
	}
	// Evaluate integrity constraints on clones so an abort leaves no trace
	// in the temporal component. Violations are resolved in rule
	// registration order, never by worker timing.
	violated, err := e.checkConstraints(tentative)
	if err != nil {
		return err
	}
	if violated != nil {
		abort := history.SystemState{
			DB:     e.db,
			Events: event.NewSet(event.New(event.TransactionAbort, txv)),
			TS:     ts,
		}
		e.mu.Lock()
		if err := e.hist.Append(abort); err != nil {
			e.mu.Unlock()
			return err
		}
		e.dirty = append(e.dirty, dirtySet{known: true})
		e.now = ts
		e.mu.Unlock()
		if walRec != nil {
			if err := e.logRecord(walRec); err != nil {
				return err
			}
		}
		e.resetCascade()
		if err := e.sweep(); err != nil {
			return err
		}
		return &ConstraintError{Constraint: violated.name, Txn: t.id}
	}
	e.mu.Lock()
	if err := e.hist.Append(tentative); err != nil {
		e.mu.Unlock()
		return err
	}
	d := dirtySet{known: true}
	if n := len(t.updates) + len(t.deletes); n > 0 {
		d.items = make([]string, 0, n)
		for item := range t.updates {
			d.items = append(d.items, item)
		}
		for item := range t.deletes {
			d.items = append(d.items, item)
		}
	}
	e.dirty = append(e.dirty, d)
	e.db = tentative.DB
	e.now = ts
	e.mu.Unlock()
	if walRec != nil {
		if err := e.logRecord(walRec); err != nil {
			return err
		}
	}
	if err := e.capture(ts); err != nil {
		// The auxiliary relations diverged from the history — an invariant
		// violation; seal rather than run on inconsistent temporal state.
		return e.seal(err)
	}
	e.resetCascade()
	if err := e.sweep(); err != nil {
		return err
	}
	if err := e.maybeRetain(ts); err != nil {
		return err
	}
	return e.maybeCheckpoint()
}

// checkConstraints catches every constraint's evaluator up to the present
// and steps a clone of each against the tentative commit state. It
// returns the first violated constraint in rule registration order (nil
// when the commit may proceed). With one worker it short-circuits at the
// first violation exactly like the historical sequential loop; with more,
// all constraints are evaluated concurrently and the winner is still
// chosen by rule order, so which transaction aborts — and with which
// constraint name — never depends on goroutine scheduling.
func (e *Engine) checkConstraints(tentative history.SystemState) (*rule, error) {
	var constraints []*rule
	for _, r := range e.rules {
		if r.constraint {
			constraints = append(constraints, r)
		}
	}
	if len(constraints) == 0 {
		return nil, nil
	}
	end := e.hist.Len()
	workers := e.workers
	if workers > len(constraints) {
		workers = len(constraints)
	}
	if workers <= 1 {
		for _, r := range constraints {
			if err := e.advanceRules([]*rule{r}, end); err != nil {
				return nil, err
			}
			res, err := r.ev.CloneEvaluator().StepResult(tentative)
			e.addSteps(1)
			if err != nil {
				return nil, fmt.Errorf("adb: constraint %s: %w", r.name, err)
			}
			if res.Fired {
				return r, nil
			}
		}
		return nil, nil
	}
	if err := e.advanceRules(constraints, end); err != nil {
		return nil, err
	}
	type verdict struct {
		fired bool
		err   error
	}
	verdicts := make([]verdict, len(constraints))
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(constraints) {
					return
				}
				res, err := constraints[i].ev.CloneEvaluator().StepResult(tentative)
				verdicts[i] = verdict{fired: res.Fired, err: err}
			}
		}()
	}
	wg.Wait()
	e.addSteps(int64(len(constraints)))
	for i, r := range constraints {
		if verdicts[i].err != nil {
			return nil, fmt.Errorf("adb: constraint %s: %w", r.name, verdicts[i].err)
		}
		if verdicts[i].fired {
			return r, nil
		}
	}
	return nil, nil
}

// addSteps bumps the evaluator-step counter under the lock so concurrent
// EvalSteps readers stay race-free.
func (e *Engine) addSteps(n int64) {
	e.mu.Lock()
	e.evalSteps += n
	e.mu.Unlock()
}

// Abort abandons the transaction, appending a transaction_abort state.
func (t *Txn) Abort(ts int64) error {
	if t.done {
		return fmt.Errorf("adb: transaction %d already finished", t.id)
	}
	if err := t.gateCheck(); err != nil {
		return err
	}
	defer t.gateRelease()
	e := t.e
	if err := e.healthy(); err != nil {
		return err
	}
	t.done = true
	st := history.SystemState{
		DB:     e.db,
		Events: event.NewSet(event.New(event.TransactionAbort, value.NewInt(t.id))),
		TS:     ts,
	}
	e.mu.Lock()
	if err := e.hist.Append(st); err != nil {
		e.mu.Unlock()
		return err
	}
	e.dirty = append(e.dirty, dirtySet{known: true})
	e.now = ts
	e.mu.Unlock()
	if err := e.logRecord(&persist.Record{Kind: persist.KindAbort, Txn: t.id, TS: ts}); err != nil {
		return err
	}
	e.resetCascade()
	return e.sweep()
}

// Exec runs a one-shot transaction: apply updates and events, commit at
// the given time.
func (e *Engine) Exec(ts int64, updates map[string]value.Value, events ...event.Event) error {
	tx := e.Begin()
	for k, v := range updates {
		tx.Set(k, v)
	}
	tx.Emit(events...)
	return tx.Commit(ts)
}

// ExecTxn runs a one-shot transaction with updates, deletes and events —
// the session-scoped exec primitive the network layer maps one batched
// Begin/Set/Delete/Emit/Commit round-trip onto.
func (e *Engine) ExecTxn(ts int64, updates map[string]value.Value, deletes []string, events ...event.Event) error {
	tx := e.Begin()
	for k, v := range updates {
		tx.Set(k, v)
	}
	for _, d := range deletes {
		tx.Delete(d)
	}
	tx.Emit(events...)
	return tx.Commit(ts)
}

// execInternal commits an action-initiated transaction at the next tick.
func (e *Engine) execInternal(updates map[string]value.Value, events []event.Event) error {
	return e.Exec(e.now+1, updates, events...)
}

// Flush processes every pending state for every rule (the batched
// temporal-component invocation) and executes resulting actions. This is
// the paper's "temporal component invocation ... executed for multiple
// events at the same time"; with Workers > 1 the batched catch-up is
// sharded across the worker pool.
func (e *Engine) Flush() error {
	if err := e.healthy(); err != nil {
		return err
	}
	// Logged before the work: a flush either happened or it didn't, and a
	// mid-flush failure replays to the same failure.
	if err := e.logRecord(&persist.Record{Kind: persist.KindFlush}); err != nil {
		return err
	}
	e.cascade = 0
	var jobs []*rule
	for _, r := range e.rules {
		if !r.constraint {
			jobs = append(jobs, r)
		}
	}
	if err := e.advanceRules(jobs, e.hist.Len()); err != nil {
		return err
	}
	return e.drainActions()
}

// Compact discards history states that every rule's evaluator has already
// processed, keeping at least the latest state. This realizes the paper's
// space claim end to end: "our algorithm determines, based on analysis of
// the given temporal condition, which information to save, and for how
// long" — once the incremental evaluators have consumed a state, the
// engine itself no longer needs it. It returns the number of states
// discarded. Firing.StateIndex values remain absolute across compactions
// (see BaseIndex).
func (e *Engine) Compact() int {
	if e.healthy() != nil {
		return 0
	}
	e.mu.Lock()
	min := e.hist.Len() - 1 // always keep the newest state
	for _, r := range e.rules {
		if r.cursor < min {
			min = r.cursor
		}
	}
	if min <= 0 {
		e.mu.Unlock()
		return 0
	}
	trimmed := history.New()
	for i := min; i < e.hist.Len(); i++ {
		trimmed.AppendUnchecked(e.hist.At(i))
	}
	e.hist = trimmed
	e.dirty = append([]dirtySet(nil), e.dirty[min:]...)
	e.base += min
	for _, r := range e.rules {
		r.cursor -= min
	}
	horizon := trimmed.At(0).TS
	e.mu.Unlock()
	// Auxiliary intervals that ended before the retained horizon can no
	// longer be read by any pending action. The aux relations synchronize
	// their own readers; under the spill policy the expired intervals go
	// to the cold tier first (a failure there seals the engine, surfacing
	// at the next operation or Close, like the logRecord below).
	_ = e.pruneAux(horizon)
	// Compaction moves base and the aux horizon, so it replays. A failed
	// append seals the engine (logRecord) and surfaces at the next
	// operation or Close.
	_ = e.logRecord(&persist.Record{Kind: persist.KindCompact})
	return min
}

// ExportHistory writes the retained system history as lossless JSON lines
// (see internal/histio); the export replays through offline tools (the
// naive evaluator, histio.Read) bit-for-bit.
func (e *Engine) ExportHistory(w io.Writer) error {
	return histio.Write(w, e.hist)
}

// PruneExecutions discards executed-predicate records with execution time
// before t. Section 7: "only information necessary for future evaluation
// of conditions will be maintained; all other information will be removed
// as and when it is not needed" — rules bounding executed's age (e.g.
// time - T <= 60) never need older records.
func (e *Engine) PruneExecutions(t int64) int {
	if e.healthy() != nil {
		return 0
	}
	e.mu.Lock()
	kept := e.execs[:0]
	dropped := 0
	for _, ex := range e.execs {
		if ex.Time < t {
			dropped++
			continue
		}
		kept = append(kept, ex)
	}
	e.execs = kept
	if dropped > 0 {
		e.rebuildExecIdxLocked()
	}
	e.mu.Unlock()
	_ = e.logRecord(&persist.Record{Kind: persist.KindPrune, Arg: t})
	return dropped
}

// BaseIndex returns the absolute index of the first retained history
// state; History().At(i) corresponds to absolute state BaseIndex()+i.
// Safe for concurrent use.
func (e *Engine) BaseIndex() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.base
}

// sweep runs the temporal component for the newest state according to each
// rule's scheduling, then executes fired actions.
func (e *Engine) sweep() error {
	if e.inSweep {
		// Re-entrant call from an action-initiated transaction: the outer
		// drainActions loop picks up the new state.
		return e.sweepOnce()
	}
	e.inSweep = true
	defer func() { e.inSweep = false }()
	if err := e.sweepOnce(); err != nil {
		return err
	}
	return e.drainActions()
}

func (e *Engine) sweepOnce() error {
	newest := e.hist.Len() - 1
	st := e.hist.At(newest)
	if e.noIndex {
		var jobs []*rule
		for _, r := range e.rules {
			if r.constraint {
				// The constraint's own evaluator advances lazily (at commits
				// and aborts); Txn.Commit catches it up before cloning anyway.
				if st.Events.CommitCount() > 0 || len(st.Events.ByName(event.TransactionAbort)) > 0 {
					jobs = append(jobs, r)
				}
				continue
			}
			switch r.sched {
			case Eager:
				jobs = append(jobs, r)
			case Relevant:
				if e.relevant(r, st) {
					jobs = append(jobs, r)
				}
			case Manual:
				// Only Flush advances.
			}
		}
		return e.advanceRules(jobs, newest+1)
	}
	return e.sweepIndexed(newest, st)
}

// sweepJob is one rule's share of an indexed sweep: either a real
// evaluator advance or a memo replay whose outcome is computed inline.
type sweepJob struct {
	r      *rule
	replay bool
}

// sweepIndexed is the read-set refined sweep. It reproduces the wake
// decisions of the coarse filter (relevant) exactly, then strengthens
// them per rule class: gated rules woken only by a commit have their
// evaluation skipped (the condition is provably false without their
// events), and quiescent rules whose read set the commit left untouched
// replay their memoized outcome. Firings, cursors and engine state are
// byte-identical to the coarse sweep; only evaluator steps differ.
//
// The indexes turn the per-sweep cost into O(rules) pointer work plus
// O(matching rules) for the event and dirty-item marks; the expensive
// part — evaluator steps — is paid only by rules the state concerns.
func (e *Engine) sweepIndexed(newest int, st history.SystemState) error {
	end := newest + 1
	commit := st.Events.CommitCount() > 0
	aborted := len(st.Events.ByName(event.TransactionAbort)) > 0
	e.sweepGen++
	gen := e.sweepGen
	for _, name := range st.Events.Names() {
		for _, r := range e.eventIndex[name] {
			r.wakeGen = gen
		}
	}
	d := e.dirty[newest]
	if commit && d.known {
		for _, item := range d.items {
			for _, r := range e.itemIndex[item] {
				r.dirtyGen = gen
			}
		}
	}
	var jobs []sweepJob
	var bumps, invalidate []*rule
	for _, r := range e.rules {
		if r.constraint {
			if commit || aborted {
				jobs = append(jobs, sweepJob{r: r})
			}
			continue
		}
		switch r.sched {
		case Eager:
			jobs = append(jobs, sweepJob{r: r})
		case Relevant:
			eventWake := r.wakeGen == gen
			commitWake := r.readsDB && commit
			alwaysWake := len(r.events) == 0 && !r.readsDB
			if !eventWake && !commitWake && !alwaysWake {
				continue
			}
			switch {
			case r.class == classGated && !eventWake:
				// Woken by the commit alone; with none of its events in
				// the state the condition is provably false, so the only
				// effect of evaluating — the cursor jump — is applied
				// directly.
				bumps = append(bumps, r)
			case r.class == classQuiescent:
				if r.cursor >= end {
					continue
				}
				switch {
				case !d.known || r.dirtyGen == gen || !r.memoValid:
					// The memo goes stale the moment the rule is selected
					// for re-evaluation: if the evaluation errors, a later
					// clean commit must not replay the pre-change outcome.
					invalidate = append(invalidate, r)
					jobs = append(jobs, sweepJob{r: r})
				case !r.memoFired:
					// A non-firing memo replays to nothing but a cursor
					// move, which is order-independent; skip the job
					// machinery and batch it with the gated bumps.
					bumps = append(bumps, r)
				default:
					jobs = append(jobs, sweepJob{r: r, replay: true})
				}
			default:
				jobs = append(jobs, sweepJob{r: r})
			}
		case Manual:
			// Only Flush advances.
		}
	}
	if len(bumps)+len(invalidate) > 0 {
		e.mu.Lock()
		for _, r := range bumps {
			if r.cursor < end {
				r.cursor = end
			}
		}
		for _, r := range invalidate {
			r.memoValid = false
			r.memoBindings = nil
		}
		e.mu.Unlock()
	}
	return e.runJobs(jobs, end)
}

// replayOutcome reproduces, without evaluation, the outcome re-evaluating
// a quiescent rule at the newest state would yield: the memoized firings
// at the new timestamp. Binding maps are copied so replays never alias
// the memo (or each other) in the firing log.
func (e *Engine) replayOutcome(r *rule, end int) advanceOutcome {
	out := advanceOutcome{cursor: end}
	if !r.memoFired {
		return out
	}
	st := e.hist.At(end - 1)
	for _, b := range r.memoBindings {
		nb := make(core.Binding, len(b))
		for k, v := range b {
			nb[k] = v
		}
		out.firings = append(out.firings, Firing{Rule: r.name, Binding: nb, Time: st.TS, StateIndex: e.base + end - 1})
	}
	return out
}

// relevant implements the Section-8 filter: a state concerns a rule when
// it carries one of the rule's event symbols, or it is a commit point and
// the rule reads the database.
func (e *Engine) relevant(r *rule, st history.SystemState) bool {
	for _, name := range st.Events.Names() {
		if r.events[name] {
			return true
		}
	}
	if r.readsDB && st.Events.CommitCount() > 0 {
		return true
	}
	// Rules with neither events nor database reads (pure time conditions)
	// are always relevant.
	if len(r.events) == 0 && !r.readsDB {
		return true
	}
	return false
}

// advanceOutcome is the result of advancing one rule's evaluator through
// pending history states: it is produced by a worker without touching
// shared engine state and merged back on the engine goroutine.
type advanceOutcome struct {
	firings []Firing
	steps   int64
	cursor  int
	err     error
	// memoSet carries a fresh quiescent-replay memo back to the merge:
	// the rule was evaluated at a commit state, so memoFired/memoBindings
	// are the outcome any read-set-untouched commit may replay.
	memoSet      bool
	memoFired    bool
	memoBindings []core.Binding
}

// advanceRule advances r's evaluator through pending states up to (but
// not including) history index end, collecting firings locally. Each rule
// owns its evaluator, so advances of distinct rules are independent and
// may run concurrently; the shared layers they read — history, database
// snapshots, the query registry, the execution log — are read-only for
// the duration of an evaluation phase.
//
// Non-temporal conditions keep no state between system states, so under
// Relevant scheduling the skipped (irrelevant) states are disregarded
// outright, exactly as Section 8 prescribes — only the newest state is
// evaluated. Temporal conditions must see every state to keep their
// F_{g,i} formulas correct, so they replay the pending states (batched
// invocation: firing delayed, never lost).
func (e *Engine) advanceRule(r *rule, end int) advanceOutcome {
	out := advanceOutcome{cursor: r.cursor}
	if !r.info.Temporal && r.sched == Relevant && out.cursor < end-1 {
		out.cursor = end - 1
	}
	budget := e.sweepBudget
	for out.cursor < end {
		// The per-rule half of the sweep budget: a single rule's catch-up
		// may spend at most SweepBudget steps per invocation. Checked here
		// (not at merge) so a huge backlog stops early; the cursor stays at
		// the stopping point, so the evaluator state remains consistent and
		// the next sweep resumes with a fresh budget (progress, no hang).
		// The comparison matches the cumulative check at the merge (strictly
		// over budget errors), so exactly SweepBudget steps always pass and
		// step budget+1 always trips, whichever check fires first.
		if budget > 0 && out.steps > budget {
			out.err = &BudgetError{Rule: r.name, Steps: out.steps, Budget: budget}
			return out
		}
		st := e.hist.At(out.cursor)
		var res core.Result
		var err error
		if r.hinted != nil {
			// The dbUnchanged hint lets the evaluator keep its query-result
			// cache across states whose dirty set is disjoint from the
			// rule's read set. Only contiguous rules qualify: a cursor jump
			// would leave the cache describing a state the evaluator never
			// stepped past.
			hint := !e.noIndex && r.contiguous && e.stateClean(r, out.cursor)
			res, err = r.hinted.StepResultHinted(st, hint)
		} else {
			res, err = r.ev.StepResult(st)
		}
		out.steps++
		if err != nil {
			out.err = fmt.Errorf("adb: rule %s at state %d: %w", r.name, out.cursor, err)
			return out
		}
		if res.Fired && !r.constraint {
			for _, b := range res.Bindings {
				out.firings = append(out.firings, Firing{Rule: r.name, Binding: b, Time: st.TS, StateIndex: e.base + out.cursor})
			}
		}
		if r.class == classQuiescent && out.cursor == end-1 && st.Events.CommitCount() > 0 {
			out.memoSet = true
			out.memoFired = res.Fired
			out.memoBindings = res.Bindings
		}
		out.cursor++
	}
	return out
}

// stateClean reports whether history state i left every item in r's read
// set unchanged: the dirty set is known and either empty (event or abort
// states — the database pointer is untouched) or, for analyzable rules,
// disjoint from the extracted footprint.
func (e *Engine) stateClean(r *rule, i int) bool {
	d := e.dirty[i]
	if !d.known {
		return false
	}
	if len(d.items) == 0 {
		return true
	}
	if !r.rs.analyzable {
		return false
	}
	for _, item := range d.items {
		if r.rs.items[item] {
			return false
		}
	}
	return true
}

// apply merges one rule's advance outcome into engine state: cursor and
// step counter under the write lock, then the firings one at a time — the
// exact observable sequence (append, OnFiring callback, action queue) the
// sequential engine produces.
func (e *Engine) apply(r *rule, out advanceOutcome) {
	e.mu.Lock()
	r.cursor = out.cursor
	e.evalSteps += out.steps
	if out.memoSet {
		r.memoValid = true
		r.memoFired = out.memoFired
		r.memoBindings = out.memoBindings
	}
	e.mu.Unlock()
	for _, f := range out.firings {
		e.mu.Lock()
		e.firings = append(e.firings, f)
		obs := e.observers // snapshot; mutation is copy-on-write
		e.mu.Unlock()
		if e.onFiring != nil {
			e.onFiring(f)
		}
		for _, o := range obs {
			o.fn(f)
		}
		e.pending = append(e.pending, f)
	}
}

// advanceRules advances the given rules to history index end — the
// parallel temporal component. Rules are dealt to at most Workers
// goroutines; outcomes are merged strictly in the order rules appear in
// the slice (registration order at every call site), so the firing
// sequence, callbacks and step counts are byte-identical to sequential
// evaluation regardless of worker count.
//
// Errors also surface first-by-rule-order, and a failed invocation still
// advances every rule and merges every outcome: the engine state a
// caller observes after the error — cursors, queued firings, step counts
// — is identical at every worker count, so retrying (a later Flush) is
// equivalent whether the failure happened serially or in parallel.
func (e *Engine) advanceRules(rules []*rule, end int) error {
	if len(rules) == 0 {
		return nil
	}
	jobs := make([]sweepJob, len(rules))
	for i, r := range rules {
		jobs[i] = sweepJob{r: r}
	}
	return e.runJobs(jobs, end)
}

// runJobs executes a sweep's job list: evaluation jobs are dealt to the
// worker pool, replay jobs are resolved inline (they are pure memo reads),
// and every outcome is merged strictly in job order — the registration
// order at every call site — so the firing sequence is independent of both
// the worker count and the eval/replay split.
func (e *Engine) runJobs(jobs []sweepJob, end int) error {
	if len(jobs) == 0 {
		return nil
	}
	evalIdx := make([]int, 0, len(jobs))
	for i, j := range jobs {
		if !j.replay {
			evalIdx = append(evalIdx, i)
		}
	}
	outs := make([]advanceOutcome, len(jobs))
	workers := e.workers
	if workers > len(evalIdx) {
		workers = len(evalIdx)
	}
	if workers <= 1 {
		for _, i := range evalIdx {
			outs[i] = e.advanceRule(jobs[i].r, end)
		}
	} else {
		var next int64 = -1
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					k := int(atomic.AddInt64(&next, 1))
					if k >= len(evalIdx) {
						return
					}
					i := evalIdx[k]
					outs[i] = e.advanceRule(jobs[i].r, end)
				}
			}()
		}
		wg.Wait()
	}
	for i, j := range jobs {
		if j.replay {
			outs[i] = e.replayOutcome(j.r, end)
		}
	}
	var firstErr error
	var used int64
	budget := e.sweepBudget
	for i, j := range jobs {
		e.apply(j.r, outs[i])
		if outs[i].err != nil && firstErr == nil {
			firstErr = outs[i].err
		}
		// The cumulative half of the sweep budget: total steps across the
		// invocation, accumulated in rule order so the offending rule is
		// the same at every worker count.
		used += outs[i].steps
		if budget > 0 && used > budget && firstErr == nil {
			firstErr = &BudgetError{Rule: j.r.name, Steps: used, Budget: budget}
		}
	}
	return firstErr
}

// drainActions executes queued actions inside the per-rule sandbox;
// actions may commit transactions, which append states and queue further
// firings (bounded by the cascade limit).
//
// A failing action — an error, a recovered panic, an exceeded deadline —
// is an isolated per-rule fault: it is recorded in the rule's health (and
// counts toward quarantine), the failed firing is not entered in the
// executed-predicate log, and the drain continues with the remaining
// firings, so no other rule's behavior is perturbed. Only engine-level
// failures (the cascade limit, a sealed engine) abort the drain.
func (e *Engine) drainActions() error {
	for len(e.pending) > 0 {
		f := e.pending[0]
		e.pending = e.pending[1:]
		r := e.index[f.Rule]
		if r == nil || r.action == nil {
			e.recordExecution(r, f, f.Time)
			continue
		}
		if e.isQuarantined(r) {
			// Condition maintained, firing recorded, action suppressed.
			e.mu.RLock()
			h := r.health
			e.mu.RUnlock()
			e.reportFault(r.name, f.Time, &QuarantineError{Rule: r.name, Failures: h.consecutive, Cause: h.lastErr})
			continue
		}
		e.cascade++
		if e.cascade > e.cascadeTo {
			return fmt.Errorf("adb: action cascade exceeded %d firings (rule %s)", e.cascadeTo, f.Rule)
		}
		// Operations the action runs are cascade-derived: replaying the
		// external operation that fired it re-derives them, so they must
		// not be logged themselves.
		e.suppress++
		err := e.runAction(r, f)
		e.suppress--
		if err != nil {
			e.recordFailure(r, f.Time, err)
			continue
		}
		e.recordSuccess(r)
		e.recordExecution(r, f, e.now)
	}
	return nil
}

// recordExecution appends to the executed-predicate log. The execution
// time is when the action's effects committed (Section 7: "the action part
// of the rule was committed by the time t").
func (e *Engine) recordExecution(r *rule, f Firing, ts int64) {
	if r == nil {
		return
	}
	params := make([]value.Value, len(r.paramOrder))
	for i, name := range r.paramOrder {
		params[i] = f.Binding[name]
	}
	e.mu.Lock()
	e.appendExecutionLocked(ptl.Execution{Rule: f.Rule, Params: params, Time: ts})
	e.mu.Unlock()
}

// keyScratch pools the key-sorting scratch of the hot commit path; the
// slices never escape a single Commit call.
var keyScratch = sync.Pool{New: func() any {
	s := make([]string, 0, 16)
	return &s
}}

func sortedKeys(m map[string]value.Value) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedBoolKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
