package adb

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"

	"ptlactive/internal/core"
	"ptlactive/internal/histio"
	"ptlactive/internal/history"
	"ptlactive/internal/persist"
	"ptlactive/internal/ptl"
	"ptlactive/internal/relation"
	"ptlactive/internal/retain"
	"ptlactive/internal/value"
)

// Durability selects the persistence mode of an engine opened with
// Restore. Memory engines (NewEngine) are always DurabilityOff.
type Durability int

const (
	// DurabilityOff keeps everything in memory; a crash loses the engine.
	DurabilityOff Durability = iota
	// DurabilityWAL logs every committed operation to the write-ahead log;
	// recovery replays the log from the latest snapshot (if any).
	DurabilityWAL
	// DurabilitySnapshot is DurabilityWAL plus an automatic checkpoint
	// (Compact, snapshot, WAL reset) every Config.SnapshotEvery commits.
	DurabilitySnapshot
)

// String names the mode.
func (d Durability) String() string {
	switch d {
	case DurabilityOff:
		return "off"
	case DurabilityWAL:
		return "wal"
	case DurabilitySnapshot:
		return "snapshot"
	}
	return fmt.Sprintf("Durability(%d)", int(d))
}

// RecoveryInfo describes what Restore found and did.
type RecoveryInfo struct {
	// SnapshotLSN is the last WAL record the loaded snapshot covered; 0
	// when recovery started from the log alone.
	SnapshotLSN int64
	// ReplayedRecords is how many WAL-tail records recovery consumed —
	// only the tail after the snapshot, never the whole history.
	ReplayedRecords int
	// TruncatedAt is the WAL file offset of a torn final record that was
	// discarded, -1 when the log ended cleanly.
	TruncatedAt int64
	// ReplayErrors collects per-record replay failures (for example an
	// action that errored); decode failures abort recovery instead.
	ReplayErrors []error
}

// Recovery returns the outcome of the Restore that created this engine;
// the zero value for engines created with NewEngine.
func (e *Engine) Recovery() RecoveryInfo { return e.recovery }

// logging reports whether the engine should append WAL records right now:
// a durable store is attached and we are not inside replay or an action
// cascade (cascaded operations are re-derived by replaying the external
// operation through the normal sweep path).
func (e *Engine) logging() bool {
	return e.store != nil && e.durMode != DurabilityOff && e.suppress == 0
}

// logRecord appends one record, counting it toward the next checkpoint.
// An append or fsync failure means the durability contract is broken: the
// engine seals into read-only degraded mode (the in-memory state stays
// intact and readable; recovery from disk yields the committed prefix)
// and the sealing error is returned, ErrDegraded-wrapped.
func (e *Engine) logRecord(rec *persist.Record) error {
	if !e.logging() {
		return nil
	}
	if _, err := e.store.Append(rec); err != nil {
		return e.seal(err)
	}
	e.walSince++
	return nil
}

// execRecord encodes a commit attempt for the WAL. Only the caller's own
// updates, deletes and extra events are stored; the synthesized commit
// events and any constraint-driven abort are re-derived during replay.
func (e *Engine) execRecord(t *Txn, ts int64) (*persist.Record, error) {
	updates, err := histio.EncodeItems(t.updates)
	if err != nil {
		return nil, fmt.Errorf("adb: wal: %w", err)
	}
	events, err := histio.EncodeEvents(t.events)
	if err != nil {
		return nil, fmt.Errorf("adb: wal: %w", err)
	}
	return &persist.Record{
		Kind:    persist.KindExec,
		Txn:     t.id,
		TS:      ts,
		Updates: updates,
		Deletes: sortedBoolKeys(t.deletes),
		Events:  events,
	}, nil
}

// maybeCheckpoint runs the periodic snapshot policy after a successful
// external commit.
func (e *Engine) maybeCheckpoint() error {
	if !e.logging() || e.durMode != DurabilitySnapshot || e.inSweep {
		return nil
	}
	e.commitsSince++
	if e.commitsSince < e.snapEvery {
		return nil
	}
	return e.Checkpoint()
}

// Checkpoint compacts the history, writes a snapshot covering everything
// logged so far and resets the WAL. Durable engines only.
func (e *Engine) Checkpoint() error {
	if e.store == nil {
		return fmt.Errorf("adb: Checkpoint requires a durable engine (use Restore)")
	}
	if err := e.healthy(); err != nil {
		return err
	}
	// The checkpoint's own compaction is part of the snapshot, not an
	// operation to replay.
	e.suppress++
	e.Compact()
	e.suppress--
	snap, err := e.buildSnapshot()
	if err != nil {
		return err
	}
	if err := e.store.SaveSnapshot(snap); err != nil {
		return err
	}
	e.walSince = 0
	e.commitsSince = 0
	return nil
}

// SaveSnapshot writes the engine's durable state to w in the snapshot
// format (see internal/persist). The engine must be quiescent: no sweep in
// progress and no actions pending.
func (e *Engine) SaveSnapshot(w io.Writer) error {
	snap, err := e.buildSnapshot()
	if err != nil {
		return err
	}
	if e.store != nil {
		snap.LSN = e.store.LastLSN()
	}
	return persist.EncodeSnapshot(w, snap)
}

// SyncWAL forces any buffered (group-commit) WAL records to stable
// storage; a no-op for memory engines and per-record durability. A flush
// failure breaks the durability contract, so it seals the engine exactly
// like a failed per-record append.
func (e *Engine) SyncWAL() error {
	if e.store == nil {
		return nil
	}
	if err := e.store.Flush(); err != nil {
		return e.seal(err)
	}
	return nil
}

// SetWALFailpoint installs (or clears, with nil) the WAL fault-injection
// hook of a durable engine; a no-op for memory engines. It exists for
// degraded-mode tests outside this package (the network layer's
// writes-fail-reads-survive scenarios); see persist.Failpoint.
func (e *Engine) SetWALFailpoint(fp persist.Failpoint) {
	if e.store != nil {
		e.store.SetFailpoint(fp)
	}
}

// Close releases the durability store (no-op for memory engines) and
// surfaces the sealing error of a degraded engine, so a fault noted by an
// int-returning operation (Compact, PruneExecutions) is never silent.
func (e *Engine) Close() error {
	var err error
	if e.store != nil {
		err = e.store.Close()
		e.store = nil
	}
	if e.tier != nil {
		terr := e.tier.Close()
		e.tier = nil
		if err == nil {
			err = terr
		}
	}
	if deg := e.Degraded(); deg != nil {
		return deg
	}
	return err
}

// buildSnapshot captures the engine's full durable state: the retained
// history window, each rule's registration and evaluator registers (the
// bounded F_{g,i} state of Theorem 1), the firing and execution logs and
// the tracked auxiliary relations.
func (e *Engine) buildSnapshot() (*persist.EngineSnapshot, error) {
	if e.inSweep {
		return nil, fmt.Errorf("adb: snapshot during sweep")
	}
	if len(e.pending) > 0 {
		return nil, fmt.Errorf("adb: snapshot with %d pending actions", len(e.pending))
	}
	snap := &persist.EngineSnapshot{
		Init:      e.initRec,
		Epoch:     e.epoch,
		Base:      e.base,
		Now:       e.now,
		NextTxn:   e.nextTxn,
		EvalSteps: e.evalSteps,
	}
	for i := 0; i < e.hist.Len(); i++ {
		line, err := histio.EncodeState(e.hist.At(i))
		if err != nil {
			return nil, fmt.Errorf("adb: snapshot state %d: %w", i, err)
		}
		snap.History = append(snap.History, line)
	}
	for _, r := range e.rules {
		cond, err := ptl.EncodeFormula(r.condition)
		if err != nil {
			return nil, fmt.Errorf("adb: snapshot rule %s: %w", r.name, err)
		}
		ev, err := core.EncodeEvaluatorState(r.ev)
		if err != nil {
			return nil, fmt.Errorf("adb: snapshot rule %s: %w", r.name, err)
		}
		rs := persist.RuleSnapshot{
			Name:        r.name,
			Cond:        cond,
			Constraint:  r.constraint,
			Sched:       int(r.sched),
			Cursor:      r.cursor,
			Eval:        ev,
			Quarantined: r.health.quarantined,
			ConsecFails: r.health.consecutive,
			TotalFails:  r.health.total,
			LastFailAt:  r.health.lastAt,
		}
		if r.health.lastErr != nil {
			rs.LastFailure = r.health.lastErr.Error()
		}
		if r.memoValid {
			rs.MemoValid = true
			rs.MemoFired = r.memoFired
			for _, b := range r.memoBindings {
				raw, err := histio.EncodeItems(b)
				if err != nil {
					return nil, fmt.Errorf("adb: snapshot rule %s memo: %w", r.name, err)
				}
				rs.MemoBindings = append(rs.MemoBindings, raw)
			}
		}
		snap.Rules = append(snap.Rules, rs)
	}
	for _, f := range e.firings {
		binding, err := histio.EncodeItems(f.Binding)
		if err != nil {
			return nil, fmt.Errorf("adb: snapshot firing %s: %w", f.Rule, err)
		}
		snap.Firings = append(snap.Firings, persist.FiringSnapshot{
			Rule:       f.Rule,
			Binding:    binding,
			Time:       f.Time,
			StateIndex: f.StateIndex,
		})
	}
	for _, ex := range e.execs {
		rec := persist.ExecutionSnapshot{Rule: ex.Rule, Time: ex.Time}
		for _, p := range ex.Params {
			raw, err := histio.EncodeValue(p)
			if err != nil {
				return nil, fmt.Errorf("adb: snapshot execution %s: %w", ex.Rule, err)
			}
			rec.Params = append(rec.Params, raw)
		}
		snap.Execs = append(snap.Execs, rec)
	}
	for _, name := range e.trackedNames {
		rows, last, captured := e.tracked[name].SnapshotRows()
		aux := persist.AuxSnapshot{Item: name, LastCapture: last, Captured: captured}
		for _, r := range rows {
			iv := persist.IntervalJSON{Start: r.Start, End: r.End}
			for _, v := range r.Tuple {
				raw, err := histio.EncodeValue(v)
				if err != nil {
					return nil, fmt.Errorf("adb: snapshot aux %s: %w", name, err)
				}
				iv.Tuple = append(iv.Tuple, raw)
			}
			aux.Rows = append(aux.Rows, iv)
		}
		snap.Tracked = append(snap.Tracked, aux)
	}
	return snap, nil
}

// Restore opens (creating if needed) a durable engine backed by dir: it
// loads the newest valid snapshot, replays only the WAL tail after it
// through the normal commit and sweep path, truncates a torn final record
// and attaches the WAL for further logging. A recovered engine is
// firing-identical to one that never crashed.
//
// cfg supplies the runtime-only pieces — Registry, Actions (the action
// functions of logged rules, by name; they must be the same deterministic
// actions for replay equivalence), OnFiring, Workers, Durability,
// SnapshotEvery, NoFsync. The persisted init record governs the rest
// (Initial, Start, TrackItems, DisableFastPath, CascadeLimit); for a fresh
// directory those are taken from cfg and logged. DurabilityOff is promoted
// to DurabilityWAL: an engine with a data directory logs.
func Restore(cfg Config, dir string) (*Engine, error) {
	st, res, err := persist.OpenOptions(dir, persist.Options{
		SegmentBytes:  cfg.Retention.SegmentBytes,
		KeepSnapshots: cfg.Retention.KeepSnapshots,
	})
	if err != nil {
		return nil, err
	}
	if cfg.NoFsync {
		st.DisableSync()
	}
	var e *Engine
	tail := res.Tail
	replayed := 0
	switch {
	case res.Snapshot != nil:
		e, err = engineFromSnapshot(cfg, res.Snapshot)
	case len(tail) > 0:
		if tail[0].Kind != persist.KindInit || tail[0].Init == nil {
			err = fmt.Errorf("adb: wal does not begin with an init record (kind %q)", tail[0].Kind)
		} else {
			e, err = engineFromInit(cfg, tail[0].Init)
			tail = tail[1:]
			replayed = 1
		}
	default:
		mem := cfg
		mem.Durability = DurabilityOff
		e = NewEngine(mem)
		e.actions = cfg.Actions
	}
	if err != nil {
		st.Close()
		return nil, err
	}
	e.store = st
	e.durMode = cfg.Durability
	if e.durMode == DurabilityOff {
		e.durMode = DurabilityWAL
	}
	e.snapEvery = cfg.SnapshotEvery
	if e.snapEvery <= 0 {
		e.snapEvery = 64
	}
	if cfg.GroupCommit > 1 {
		if err := st.SetGroupCommit(cfg.GroupCommit); err != nil {
			st.Close()
			return nil, err
		}
	}
	// The cold tier must be attached before replay: replayed commits run
	// the same retention prunes the original engine did, and under the
	// spill policy those spill (idempotently, by watermark) before pruning.
	if e.retention.SpillHistory && e.retention.HistoryWindow > 0 {
		tier, terr := retain.OpenTier(filepath.Join(dir, coldTierFile))
		if terr != nil {
			st.Close()
			return nil, terr
		}
		e.tier = tier
	}
	if res.Snapshot == nil && replayed == 0 {
		// Fresh directory: the init record opens the log.
		if err := e.logRecord(&persist.Record{Kind: persist.KindInit, Init: e.initRec}); err != nil {
			st.Close()
			return nil, err
		}
	}
	info := RecoveryInfo{SnapshotLSN: res.SnapshotLSN, TruncatedAt: res.TruncatedAt}
	e.suppress++
	for _, rec := range tail {
		opErr, fatal := e.applyRecord(rec)
		if fatal != nil {
			e.suppress--
			st.Close()
			return nil, fatal
		}
		replayed++
		if opErr != nil {
			info.ReplayErrors = append(info.ReplayErrors, fmt.Errorf("adb: replay LSN %d: %w", rec.LSN, opErr))
		}
	}
	e.suppress--
	info.ReplayedRecords = replayed
	e.recovery = info
	// A fresh directory already counted its init record via logRecord;
	// replayed records are appended on top of whatever the log holds.
	e.walSince += replayed
	return e, nil
}

// engineFromInit builds a fresh engine from a persisted init record plus
// the runtime-only config.
func engineFromInit(cfg Config, init *persist.InitRecord) (*Engine, error) {
	items, err := histio.DecodeItems(init.Initial)
	if err != nil {
		return nil, fmt.Errorf("adb: init record: %w", err)
	}
	e := NewEngine(Config{
		Registry:            cfg.Registry,
		Initial:             items,
		Start:               init.Start,
		CascadeLimit:        init.CascadeLimit,
		OnFiring:            cfg.OnFiring,
		TrackItems:          init.TrackItems,
		DisableFastPath:     init.DisableFast,
		DisableReadSetIndex: init.DisableIndex,
		Workers:             cfg.Workers,
		// Behavior-shaping governance knobs come from the init record (like
		// Initial and Start); wall-clock and observer knobs are runtime-only.
		MaxRuleFailures: init.MaxRuleFailures,
		SweepBudget:     init.SweepBudget,
		ActionTimeout:   cfg.ActionTimeout,
		OnRuleFault:     cfg.OnRuleFault,
		// The history-retention policy shapes query answers, so it comes
		// from the init record; the WAL-layout knobs are runtime-only.
		Retention: Retention{
			SegmentBytes:  cfg.Retention.SegmentBytes,
			KeepSnapshots: cfg.Retention.KeepSnapshots,
			HistoryWindow: init.HistoryWindow,
			SpillHistory:  init.SpillHistory,
		},
	})
	e.actions = cfg.Actions
	return e, nil
}

// engineFromSnapshot rebuilds an engine from a snapshot: history, rules
// with their evaluator registers and cursors, firing and execution logs,
// and the tracked auxiliary relations.
func engineFromSnapshot(cfg Config, snap *persist.EngineSnapshot) (*Engine, error) {
	e, err := engineFromInit(cfg, snap.Init)
	if err != nil {
		return nil, err
	}
	h := history.New()
	for i, line := range snap.History {
		st, err := histio.DecodeState(line)
		if err != nil {
			return nil, fmt.Errorf("adb: snapshot state %d: %w", i, err)
		}
		if err := h.Append(st); err != nil {
			return nil, fmt.Errorf("adb: snapshot state %d: %w", i, err)
		}
	}
	last, _ := h.Last()
	if snap.Now != last.TS {
		return nil, fmt.Errorf("adb: snapshot clock %d does not match last state %d", snap.Now, last.TS)
	}
	e.hist = h
	// The snapshot does not carry per-state dirty sets, but they are
	// reconstructible: diff each restored state against its predecessor.
	// (States decoded from one snapshot share no structure, so each pair
	// costs a sorted merge — paid once, at recovery.) Item-level read-set
	// refinement and the dbUnchanged evaluator hint then apply to the
	// restored window exactly as before the restart; the diff is by value,
	// which is sound for both refinements — they only require that the
	// items a rule reads carry the same values, not that no write touched
	// them. The window's first state keeps an unknown dirty set: its
	// predecessor is outside the snapshot.
	e.dirty = make([]dirtySet, h.Len())
	for i := 1; i < h.Len(); i++ {
		d := dirtySet{known: true}
		h.At(i).DB.Diff(h.At(i-1).DB, func(name string) bool {
			d.items = append(d.items, name)
			return true
		})
		e.dirty[i] = d
	}
	e.db = last.DB
	e.now = snap.Now
	// The snapshot was taken after the retention prunes up to its clock;
	// resume the floor there so refusals pick up exactly where they stood
	// (replayed commits advance it further via maybeRetain).
	if w := e.retention.HistoryWindow; w > 0 {
		e.histFloor.Store(snap.Now - w)
	}
	e.base = snap.Base
	e.nextTxn = snap.NextTxn
	e.evalSteps = snap.EvalSteps
	e.epoch = snap.Epoch

	seen := map[string]bool{}
	for _, a := range snap.Tracked {
		aux, ok := e.tracked[a.Item]
		if !ok {
			return nil, fmt.Errorf("adb: snapshot tracks unlisted item %s", a.Item)
		}
		if seen[a.Item] {
			return nil, fmt.Errorf("adb: snapshot tracks %s twice", a.Item)
		}
		seen[a.Item] = true
		rows := make([]relation.IntervalRow, len(a.Rows))
		for i, r := range a.Rows {
			tuple := make([]value.Value, len(r.Tuple))
			for j, raw := range r.Tuple {
				if tuple[j], err = histio.DecodeValue(raw); err != nil {
					return nil, fmt.Errorf("adb: snapshot aux %s row %d: %w", a.Item, i, err)
				}
			}
			rows[i] = relation.IntervalRow{Tuple: tuple, Start: r.Start, End: r.End}
		}
		if err := aux.RestoreRows(rows, a.LastCapture, a.Captured); err != nil {
			return nil, fmt.Errorf("adb: snapshot aux %s: %w", a.Item, err)
		}
	}
	if len(seen) != len(e.trackedNames) {
		return nil, fmt.Errorf("adb: snapshot covers %d of %d tracked items", len(seen), len(e.trackedNames))
	}

	for _, rs := range snap.Rules {
		f, err := ptl.DecodeFormula(rs.Cond)
		if err != nil {
			return nil, fmt.Errorf("adb: snapshot rule %s: %w", rs.Name, err)
		}
		if rs.Sched < int(Eager) || rs.Sched > int(Manual) {
			return nil, fmt.Errorf("adb: snapshot rule %s: unknown scheduling %d", rs.Name, rs.Sched)
		}
		if err := e.add(rs.Name, f, e.actionFor(rs.Name), rs.Constraint, WithScheduling(Scheduling(rs.Sched))); err != nil {
			return nil, err
		}
		r := e.index[rs.Name]
		if err := core.RestoreEvaluatorState(r.ev, rs.Eval); err != nil {
			return nil, fmt.Errorf("adb: snapshot rule %s: %w", rs.Name, err)
		}
		r.cursor = rs.Cursor
		// The quiescent-replay memo travels with the snapshot so the
		// recovered engine makes the same replay-vs-evaluate decisions the
		// original would have (and so their step counts stay comparable).
		if rs.MemoValid {
			r.memoValid = true
			r.memoFired = rs.MemoFired
			for i, raw := range rs.MemoBindings {
				items, err := histio.DecodeItems(raw)
				if err != nil {
					return nil, fmt.Errorf("adb: snapshot rule %s memo binding %d: %w", rs.Name, i, err)
				}
				r.memoBindings = append(r.memoBindings, core.Binding(items))
			}
		}
		// Health travels with the snapshot: a quarantined rule stays
		// suppressed after recovery, and the failure run resumes where it
		// stood — replay reproduces the original run's governance decisions.
		r.health = ruleHealth{
			quarantined: rs.Quarantined,
			consecutive: rs.ConsecFails,
			total:       rs.TotalFails,
			lastAt:      rs.LastFailAt,
		}
		if rs.LastFailure != "" {
			r.health.lastErr = errors.New(rs.LastFailure)
		}
	}

	for _, f := range snap.Firings {
		var binding core.Binding
		if len(f.Binding) > 0 {
			items, err := histio.DecodeItems(f.Binding)
			if err != nil {
				return nil, fmt.Errorf("adb: snapshot firing %s: %w", f.Rule, err)
			}
			binding = core.Binding(items)
		}
		e.firings = append(e.firings, Firing{Rule: f.Rule, Binding: binding, Time: f.Time, StateIndex: f.StateIndex})
	}
	for _, ex := range snap.Execs {
		var params []value.Value
		for i, raw := range ex.Params {
			v, err := histio.DecodeValue(raw)
			if err != nil {
				return nil, fmt.Errorf("adb: snapshot execution %s param %d: %w", ex.Rule, i, err)
			}
			params = append(params, v)
		}
		e.execs = append(e.execs, ptl.Execution{Rule: ex.Rule, Params: params, Time: ex.Time})
	}
	e.rebuildExecIdxLocked()
	return e, nil
}

// actionFor looks up the recovery action table.
func (e *Engine) actionFor(name string) Action {
	if e.actions == nil {
		return nil
	}
	return e.actions[name]
}

// applyRecord replays one WAL record through the engine's normal paths.
// The first result is a per-operation failure (recovery continues and
// reports it); the second is fatal (malformed record — recovery stops).
func (e *Engine) applyRecord(rec *persist.Record) (opErr, fatal error) {
	switch rec.Kind {
	case persist.KindInit:
		return nil, fmt.Errorf("adb: replay LSN %d: unexpected init record", rec.LSN)
	case persist.KindAddRule:
		f, err := ptl.DecodeFormula(rec.Cond)
		if err != nil {
			return nil, fmt.Errorf("adb: replay LSN %d: %w", rec.LSN, err)
		}
		if rec.Sched < int(Eager) || rec.Sched > int(Manual) {
			return nil, fmt.Errorf("adb: replay LSN %d: unknown scheduling %d", rec.LSN, rec.Sched)
		}
		return e.add(rec.Name, f, e.actionFor(rec.Name), rec.Constraint, WithScheduling(Scheduling(rec.Sched))), nil
	case persist.KindExec:
		updates, err := histio.DecodeItems(rec.Updates)
		if err != nil {
			return nil, fmt.Errorf("adb: replay LSN %d: %w", rec.LSN, err)
		}
		events, err := histio.DecodeEvents(rec.Events)
		if err != nil {
			return nil, fmt.Errorf("adb: replay LSN %d: %w", rec.LSN, err)
		}
		e.nextTxn = rec.Txn - 1
		tx := e.Begin()
		for _, item := range sortedKeys(updates) {
			tx.Set(item, updates[item])
		}
		for _, item := range rec.Deletes {
			tx.Delete(item)
		}
		tx.Emit(events...)
		err = tx.Commit(rec.TS)
		var cerr *ConstraintError
		if errors.As(err, &cerr) {
			// The constraints rejected this commit originally too; the
			// replayed abort state is the logged outcome.
			err = nil
		}
		return err, nil
	case persist.KindAbort:
		e.nextTxn = rec.Txn - 1
		return e.Begin().Abort(rec.TS), nil
	case persist.KindEmit:
		events, err := histio.DecodeEvents(rec.Events)
		if err != nil {
			return nil, fmt.Errorf("adb: replay LSN %d: %w", rec.LSN, err)
		}
		return e.Emit(rec.TS, events...), nil
	case persist.KindFlush:
		return e.Flush(), nil
	case persist.KindCompact:
		e.Compact()
		return nil, nil
	case persist.KindPrune:
		e.PruneExecutions(rec.Arg)
		return nil, nil
	case persist.KindRevive:
		return e.ReviveRule(rec.Name), nil
	case persist.KindEpoch:
		if rec.Epoch > e.epoch {
			e.epoch = rec.Epoch
		}
		return nil, nil
	}
	return nil, fmt.Errorf("adb: replay LSN %d: unknown kind %q", rec.LSN, rec.Kind)
}
