package adb

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"ptlactive/internal/event"
	"ptlactive/internal/value"
)

// sortedFirings orders firings by (rule, time) for set comparison; within
// one rule this equals the firing order, so per-rule subsequences are
// compared exactly.
func sortedFirings(fs []Firing) []Firing {
	out := append([]Firing(nil), fs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Time < out[j].Time
	})
	return out
}

// fireOnce emits one @hit state, which fires every rule gated on @hit.
func fireOnce(t *testing.T, e *Engine, ts int64) {
	t.Helper()
	if err := e.Emit(ts, event.New("hit")); err != nil {
		t.Fatalf("Emit(%d): %v", ts, err)
	}
}

// TestActionPanicIsolated is the sandbox property: a panicking action is
// recovered into a typed per-rule fault, the sweep completes, and the
// other rules' actions run exactly as if the bad rule were absent.
func TestActionPanicIsolated(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var goodRuns int
			e := NewEngine(Config{
				Initial: map[string]value.Value{"a": value.NewInt(1)},
				Workers: workers,
			})
			if err := e.AddTrigger("bad", `@hit`, func(ctx *ActionContext) error {
				panic("kaboom")
			}); err != nil {
				t.Fatal(err)
			}
			if err := e.AddTrigger("good", `@hit`, func(ctx *ActionContext) error {
				goodRuns++
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			fireOnce(t, e, 1)
			fireOnce(t, e, 2)

			if goodRuns != 2 {
				t.Errorf("good action ran %d times, want 2", goodRuns)
			}
			// Both rules' conditions held at both states: four firings total.
			if got := len(e.Firings()); got != 4 {
				t.Errorf("%d firings recorded, want 4", got)
			}
			h, ok := e.RuleHealth("bad")
			if !ok {
				t.Fatal("no health for rule bad")
			}
			if h.TotalFailures != 2 || h.ConsecutiveFailures != 2 {
				t.Errorf("bad health = %+v, want 2 total / 2 consecutive", h)
			}
			if !errors.Is(h.LastError, ErrActionPanic) {
				t.Errorf("LastError = %v, want ErrActionPanic", h.LastError)
			}
			var pe *ActionPanicError
			if !errors.As(h.LastError, &pe) || pe.Value != "kaboom" || len(pe.Stack) == 0 {
				t.Errorf("panic detail lost: %+v", pe)
			}
			// The panicking action never succeeded, so it has no entry in the
			// executed-predicate log; the good rule has both.
			if got := len(e.Executions("bad", e.Now()+1)); got != 0 {
				t.Errorf("bad has %d executions, want 0", got)
			}
			if got := len(e.Executions("good", e.Now()+1)); got != 2 {
				t.Errorf("good has %d executions, want 2", got)
			}
		})
	}
}

// TestQuarantineAndRevive is the circuit breaker: MaxRuleFailures
// consecutive action failures quarantine the rule (condition maintained,
// firings recorded, action suppressed), and ReviveRule re-arms it.
func TestQuarantineAndRevive(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var faults []RuleFault
			calls := 0
			fail := true
			e := NewEngine(Config{
				Initial:         map[string]value.Value{"a": value.NewInt(1)},
				Workers:         workers,
				MaxRuleFailures: 2,
				OnRuleFault:     func(f RuleFault) { faults = append(faults, f) },
			})
			if err := e.AddTrigger("flaky", `@hit`, func(ctx *ActionContext) error {
				calls++
				if fail {
					return errors.New("downstream unavailable")
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			fireOnce(t, e, 1) // failure 1
			fireOnce(t, e, 2) // failure 2: breaker trips
			fireOnce(t, e, 3) // suppressed
			fireOnce(t, e, 4) // suppressed

			if calls != 2 {
				t.Errorf("action invoked %d times, want 2 (quarantine suppresses the rest)", calls)
			}
			if got := len(e.Firings()); got != 4 {
				t.Errorf("%d firings, want 4 — quarantine must not stop condition maintenance", got)
			}
			h, _ := e.RuleHealth("flaky")
			if !h.Quarantined || h.ConsecutiveFailures != 2 || h.TotalFailures != 2 {
				t.Errorf("health after trip = %+v", h)
			}
			if got := e.QuarantinedRules(); len(got) != 1 || got[0] != "flaky" {
				t.Errorf("QuarantinedRules = %v, want [flaky]", got)
			}
			// Fault stream: 2 failures, the quarantine trip, 2 suppressions.
			if len(faults) != 5 {
				t.Fatalf("%d faults reported, want 5: %v", len(faults), faults)
			}
			if !errors.Is(faults[2].Err, ErrRuleQuarantined) {
				t.Errorf("fault[2] = %v, want the quarantine trip", faults[2].Err)
			}
			for _, i := range []int{3, 4} {
				if !errors.Is(faults[i].Err, ErrRuleQuarantined) {
					t.Errorf("fault[%d] = %v, want a suppression fault", i, faults[i].Err)
				}
			}

			// Revive with the downstream healthy again: the action runs.
			fail = false
			if err := e.ReviveRule("flaky"); err != nil {
				t.Fatal(err)
			}
			h, _ = e.RuleHealth("flaky")
			if h.Quarantined || h.ConsecutiveFailures != 0 {
				t.Errorf("health after revive = %+v", h)
			}
			if h.TotalFailures != 2 {
				t.Errorf("revive erased the lifetime total: %+v", h)
			}
			fireOnce(t, e, 5)
			if calls != 3 {
				t.Errorf("action invoked %d times after revive, want 3", calls)
			}
			if h, _ := e.RuleHealth("flaky"); h.Quarantined {
				t.Error("rule re-quarantined after a success")
			}
			if err := e.ReviveRule("nosuch"); err == nil {
				t.Error("ReviveRule accepted an unknown rule name")
			}
		})
	}
}

// TestSweepBudget is resource governance: a sweep that exceeds
// Config.SweepBudget fails with a typed, rule-attributed error — at any
// worker count the same rule is blamed — and repeated invocations drain
// the backlog incrementally (progress, never a hang), converging on the
// exact firing sequence of an unbudgeted engine.
func TestSweepBudget(t *testing.T) {
	build := func(workers int, budget int64) *Engine {
		e := NewEngine(Config{
			Initial:     map[string]value.Value{"a": value.NewInt(1)},
			Workers:     workers,
			SweepBudget: budget,
		})
		for i := 0; i < 2; i++ {
			// Temporal + Manual: every state must be replayed, only at Flush —
			// so a backlog accumulates and the budget has something to govern.
			if err := e.AddTrigger(fmt.Sprintf("m%d", i), `lasttime @go`, nil, WithScheduling(Manual)); err != nil {
				t.Fatal(err)
			}
		}
		for ts := int64(1); ts <= 4; ts++ {
			if err := e.Emit(ts, event.New("go")); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}

	ref := build(1, 0) // unbudgeted reference
	if err := ref.Flush(); err != nil {
		t.Fatalf("reference Flush: %v", err)
	}

	var blamed string
	var afterFail []Firing
	for _, workers := range []int{1, 4} {
		e := build(workers, 3)
		err := e.Flush()
		if !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("workers=%d: first Flush err = %v, want ErrBudgetExceeded", workers, err)
		}
		var be *BudgetError
		if !errors.As(err, &be) || be.Rule == "" {
			t.Fatalf("workers=%d: budget error lacks rule attribution: %v", workers, err)
		}
		if blamed == "" {
			blamed = be.Rule
		} else if be.Rule != blamed {
			t.Errorf("workers=%d blames %s, workers=1 blamed %s — attribution must be deterministic", workers, be.Rule, blamed)
		}
		// A failed sweep still advances and merges every rule, so the engine
		// state after the error — here the recorded firings — is identical at
		// every worker count, not just the error attribution.
		if afterFail == nil {
			afterFail = append([]Firing(nil), e.Firings()...)
		} else if got := e.Firings(); !reflect.DeepEqual(got, afterFail) {
			t.Errorf("workers=%d: state after failed Flush diverges from workers=1:\n got %v\nwant %v", workers, got, afterFail)
		}
		// Drain: each Flush gets a fresh budget and advances the cursors, so
		// a bounded number of retries reaches the fixpoint.
		drained := false
		for i := 0; i < 10; i++ {
			if err := e.Flush(); err == nil {
				drained = true
				break
			} else if !errors.Is(err, ErrBudgetExceeded) {
				t.Fatalf("workers=%d: Flush err = %v", workers, err)
			}
		}
		if !drained {
			t.Fatalf("workers=%d: backlog not drained in 10 budgeted flushes", workers)
		}
		// A budget-interrupted sweep changes how firings interleave across
		// the resumed flushes (rules after the attributed one have already
		// advanced when the error surfaces), but no firing may be lost or
		// invented: the sets must match, and each rule's own subsequence is
		// identical because relative order within a rule never changes.
		if got, want := sortedFirings(e.Firings()), sortedFirings(ref.Firings()); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: budgeted firings diverge from reference:\n got %v\nwant %v", workers, got, want)
		}
	}
}

// TestActionTimeout is the deadline sandbox: an overrunning action yields
// a typed timeout fault attributed to its rule, the sweep moves on, and a
// late mutation attempt through the expired ActionContext is refused —
// the runaway goroutine cannot perturb the engine after its deadline.
func TestActionTimeout(t *testing.T) {
	release := make(chan struct{})
	late := make(chan error, 1)
	lateTx := make(chan error, 1)
	e := NewEngine(Config{
		Initial:       map[string]value.Value{"a": value.NewInt(1)},
		ActionTimeout: 20 * time.Millisecond,
	})
	if err := e.AddTrigger("slow", `@hit`, func(ctx *ActionContext) error {
		<-ctx.Context().Done() // the deadline context is visible to the action
		<-release              // keep running well past the deadline
		late <- ctx.Exec(map[string]value.Value{"a": value.NewInt(99)})
		tx := ctx.Begin() // transactions opened after expiry are refused too
		tx.Set("a", value.NewInt(77))
		lateTx <- tx.Commit(ctx.Now() + 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddTrigger("fast", `@hit`, func(ctx *ActionContext) error {
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	fireOnce(t, e, 1) // returns once slow's deadline expires; slow still running

	h, _ := e.RuleHealth("slow")
	if !errors.Is(h.LastError, ErrActionTimeout) {
		t.Errorf("LastError = %v, want ErrActionTimeout", h.LastError)
	}
	var te *TimeoutError
	if !errors.As(h.LastError, &te) || te.Rule != "slow" {
		t.Errorf("timeout not attributed: %v", h.LastError)
	}
	if hf, _ := e.RuleHealth("fast"); hf.TotalFailures != 0 {
		t.Errorf("fast rule perturbed: %+v", hf)
	}

	// Let the runaway goroutine attempt its late mutations.
	close(release)
	if err := <-late; !errors.Is(err, ErrActionTimeout) {
		t.Errorf("late Exec = %v, want refusal with ErrActionTimeout", err)
	}
	if err := <-lateTx; !errors.Is(err, ErrActionTimeout) {
		t.Errorf("late Commit = %v, want refusal with ErrActionTimeout", err)
	}
	if v, _ := e.DB().Get("a"); !v.Equal(value.NewInt(1)) {
		t.Errorf("late mutation reached the database: a = %v", v)
	}
}

// TestActionErrorDoesNotFailSweep pins that a plain error return (no
// panic, no timeout) is likewise isolated: Emit succeeds, health records
// the failure, and no executed-predicate entry is made.
func TestActionErrorDoesNotFailSweep(t *testing.T) {
	e := NewEngine(Config{Initial: map[string]value.Value{"a": value.NewInt(1)}})
	boom := errors.New("boom")
	if err := e.AddTrigger("errs", `@hit`, func(ctx *ActionContext) error { return boom }); err != nil {
		t.Fatal(err)
	}
	fireOnce(t, e, 1)
	h, _ := e.RuleHealth("errs")
	if !errors.Is(h.LastError, boom) || h.TotalFailures != 1 || h.LastFailureAt != 1 {
		t.Errorf("health = %+v, want the recorded boom at t=1", h)
	}
	if got := len(e.Executions("errs", e.Now()+1)); got != 0 {
		t.Errorf("failed action has %d executions, want 0", got)
	}
}
