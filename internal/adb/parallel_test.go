package adb

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"ptlactive/internal/event"
	"ptlactive/internal/value"
)

// condPool is a mix of condition shapes exercising the fast path, the
// general constraint-graph path, temporal operators, free parameters and
// database reads; %d is the rule index, keeping event gates distinct.
var condPool = []string{
	`@ev%d and item("a") > 2`,
	`@ev%d since item("a") > 4`,
	`lasttime @ev%d`,
	`previously (@ev%d and item("b") > 1)`,
	`@pay%d(U) and U > 3`,
	`[x <- item("a")] (@ev%d and x >= 0 and item("b") < 100)`,
	`item("a") + item("b") > 6 and @ev%d`,
}

// engineParams is a deterministically generated engine setup: the initial
// database plus rule conditions and schedulings. Deriving it from the seed
// separately from engine construction lets the recovery tests register the
// identical rule set on a memory reference and on a durable engine.
type engineParams struct {
	a, b            int64
	conds           []string
	scheds          []Scheduling
	withConstraints bool
}

// randomEngineParams consumes the seed's randomness in the exact order the
// historical buildRandomEngine did, so the rule set for a given seed is
// stable across the refactor.
func randomEngineParams(seed int64, rules int, withConstraints bool) engineParams {
	rng := rand.New(rand.NewSource(seed))
	p := engineParams{
		a:               int64(rng.Intn(5)),
		b:               int64(rng.Intn(5)),
		withConstraints: withConstraints,
	}
	scheds := []Scheduling{Eager, Relevant, Manual}
	for i := 0; i < rules; i++ {
		p.conds = append(p.conds, fmt.Sprintf(condPool[rng.Intn(len(condPool))], i))
		p.scheds = append(p.scheds, scheds[rng.Intn(len(scheds))])
	}
	return p
}

// config builds the engine configuration for this parameter set.
func (p engineParams) config(workers int) Config {
	return Config{
		Initial: map[string]value.Value{
			"a": value.NewInt(p.a),
			"b": value.NewInt(p.b),
		},
		Workers:    workers,
		TrackItems: []string{"a", "b"},
	}
}

// register adds the parameter set's rules and constraints to an engine.
func (p engineParams) register(t *testing.T, e *Engine) {
	t.Helper()
	for i, cond := range p.conds {
		if err := e.AddTrigger(fmt.Sprintf("r%03d", i), cond, nil, WithScheduling(p.scheds[i])); err != nil {
			t.Fatalf("AddTrigger: %v", err)
		}
	}
	if p.withConstraints {
		if err := e.AddConstraint("c_a_low", `not (item("a") > 50)`); err != nil {
			t.Fatalf("AddConstraint: %v", err)
		}
		if err := e.AddConstraint("c_b_low", `not (item("b") > 50)`); err != nil {
			t.Fatalf("AddConstraint: %v", err)
		}
	}
}

// buildRandomEngine registers R random rules (and optionally constraints)
// on a fresh engine with the given worker count; the rule set depends only
// on seed, so two calls with different workers get identical rule sets.
func buildRandomEngine(t *testing.T, seed int64, rules, workers int, withConstraints bool) *Engine {
	t.Helper()
	p := randomEngineParams(seed, rules, withConstraints)
	e := NewEngine(p.config(workers))
	p.register(t, e)
	return e
}

// engineOp is one pre-generated external operation; materializing the
// random mix as a list lets the crash tests cut it at every boundary.
type engineOp struct {
	kind   int
	ts     int64
	events []event.Event
	upd    map[string]value.Value
}

const (
	opEmit = iota
	opExec
	opAbort
	opFlush
)

// randomOps generates the operation mix, consuming the seed's randomness
// in the exact order the historical driveRandomHistory did.
func randomOps(seed int64, rules, states int, start int64) []engineOp {
	rng := rand.New(rand.NewSource(seed))
	ts := start
	var ops []engineOp
	for s := 0; s < states; s++ {
		ts += int64(1 + rng.Intn(3))
		switch rng.Intn(10) {
		case 0, 1, 2: // event-only state hitting some rule's gate
			i := rng.Intn(rules)
			var ev event.Event
			if rng.Intn(2) == 0 {
				ev = event.New(fmt.Sprintf("ev%d", i))
			} else {
				ev = event.New(fmt.Sprintf("pay%d", i), value.NewInt(int64(rng.Intn(8))))
			}
			ops = append(ops, engineOp{kind: opEmit, ts: ts, events: []event.Event{ev}})
		case 3: // noise event no rule listens to
			ops = append(ops, engineOp{kind: opEmit, ts: ts, events: []event.Event{event.New("noise")}})
		case 4, 5, 6, 7: // transaction updating the database
			upd := map[string]value.Value{}
			if rng.Intn(2) == 0 {
				upd["a"] = value.NewInt(int64(rng.Intn(60)))
			}
			if rng.Intn(2) == 0 {
				upd["b"] = value.NewInt(int64(rng.Intn(60)))
			}
			ops = append(ops, engineOp{
				kind:   opExec,
				ts:     ts,
				upd:    upd,
				events: []event.Event{event.New(fmt.Sprintf("ev%d", rng.Intn(rules)))},
			})
		case 8: // explicit abort
			ops = append(ops, engineOp{kind: opAbort, ts: ts})
		case 9: // batched invocation of the temporal component
			ops = append(ops, engineOp{kind: opFlush})
		}
	}
	ops = append(ops, engineOp{kind: opFlush})
	return ops
}

// applyOp runs one operation, returning the violated constraint's name
// when the operation was a constraint-aborted commit ("" otherwise).
func applyOp(t *testing.T, e *Engine, op engineOp) string {
	t.Helper()
	switch op.kind {
	case opEmit:
		if err := e.Emit(op.ts, op.events...); err != nil {
			t.Fatalf("Emit: %v", err)
		}
	case opExec:
		err := e.Exec(op.ts, op.upd, op.events...)
		var ce *ConstraintError
		if errors.As(err, &ce) {
			return ce.Constraint
		}
		if err != nil {
			t.Fatalf("Exec: %v", err)
		}
	case opAbort:
		tx := e.Begin()
		tx.Set("a", value.NewInt(99))
		if err := tx.Abort(op.ts); err != nil {
			t.Fatalf("Abort: %v", err)
		}
	case opFlush:
		if err := e.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
	}
	return ""
}

// driveRandomHistory runs an identical random operation mix (emits,
// commits, aborts, flushes) against the engine; identical seeds produce
// identical histories.
func driveRandomHistory(t *testing.T, e *Engine, seed int64, rules, states int) {
	t.Helper()
	for _, op := range randomOps(seed, rules, states, e.Now()) {
		applyOp(t, e, op)
	}
}

// TestParallelFiringEquivalence is the determinism property: over random
// rule sets and random histories, Workers=N produces the identical firing
// sequence (names, bindings, timestamps, state indices, order), the same
// step counts and the same final database as Workers=1.
func TestParallelFiringEquivalence(t *testing.T) {
	trials := 12
	states := 120
	if testing.Short() {
		trials, states = 4, 60
	}
	for trial := 0; trial < trials; trial++ {
		seed := int64(1000 + trial)
		rules := 3 + trial%9
		withConstraints := trial%2 == 0
		seq := buildRandomEngine(t, seed, rules, 1, withConstraints)
		par := buildRandomEngine(t, seed, rules, 8, withConstraints)
		driveRandomHistory(t, seq, seed*31, rules, states)
		driveRandomHistory(t, par, seed*31, rules, states)

		sf, pf := seq.Firings(), par.Firings()
		if !reflect.DeepEqual(sf, pf) {
			t.Fatalf("trial %d: firing sequences diverge:\n  sequential (%d): %v\n  parallel   (%d): %v",
				trial, len(sf), sf, len(pf), pf)
		}
		if sn, pn := seq.Now(), par.Now(); sn != pn {
			t.Fatalf("trial %d: clocks diverge: %d vs %d", trial, sn, pn)
		}
		// Step counts match exactly only without constraints: on an
		// aborted commit the sequential path short-circuits at the first
		// violated constraint while the parallel path evaluates all of
		// them (a documented divergence — see DESIGN.md).
		if !withConstraints {
			if ss, ps := seq.EvalSteps(), par.EvalSteps(); ss != ps {
				t.Fatalf("trial %d: eval step counts diverge: %d vs %d", trial, ss, ps)
			}
		}
		if !seq.DB().Equal(par.DB()) {
			t.Fatalf("trial %d: final databases diverge: %v vs %v", trial, seq.DB(), par.DB())
		}
	}
}

// TestParallelConstraintAbortOrder checks that when several constraints
// reject the same commit, the reported violation is the first one in rule
// registration order — not whichever worker finished first.
func TestParallelConstraintAbortOrder(t *testing.T) {
	for round := 0; round < 20; round++ {
		e := NewEngine(Config{
			Initial: map[string]value.Value{"a": value.NewInt(0)},
			Workers: 8,
		})
		// c0 holds; c1..c7 are all violated by the same update.
		if err := e.AddConstraint("c0", `not (item("a") < 0)`); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < 8; i++ {
			if err := e.AddConstraint(fmt.Sprintf("c%d", i), `not (item("a") > 10)`); err != nil {
				t.Fatal(err)
			}
		}
		err := e.Exec(int64(round+1), map[string]value.Value{"a": value.NewInt(50)})
		var ce *ConstraintError
		if !errors.As(err, &ce) {
			t.Fatalf("round %d: want constraint violation, got %v", round, err)
		}
		if ce.Constraint != "c1" {
			t.Fatalf("round %d: violation attributed to %s, want c1 (first in rule order)", round, ce.Constraint)
		}
	}
}

// TestParallelWorkersConfig checks the Workers plumbing: zero defaults to
// a positive pool, explicit values are kept.
func TestParallelWorkersConfig(t *testing.T) {
	if w := NewEngine(Config{}).Workers(); w < 1 {
		t.Fatalf("default worker pool is %d, want >= 1", w)
	}
	if w := NewEngine(Config{Workers: 3}).Workers(); w != 3 {
		t.Fatalf("Workers = %d, want 3", w)
	}
}

// TestConcurrentReaderStress hammers the reader accessors from several
// goroutines while a single mutator runs emits, transactions and flushes;
// run under -race this is the regression test for the engine's
// concurrency model (readers may overlap one mutator).
func TestConcurrentReaderStress(t *testing.T) {
	e := NewEngine(Config{
		Initial:    map[string]value.Value{"a": value.NewInt(1), "b": value.NewInt(2)},
		Workers:    4,
		TrackItems: []string{"a"},
	})
	for i := 0; i < 12; i++ {
		cond := fmt.Sprintf(condPool[i%len(condPool)], i)
		if err := e.AddTrigger(fmt.Sprintf("r%d", i), cond, nil, WithScheduling(Scheduling(i%3))); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.AddConstraint("cap", `not (item("a") > 1000)`); err != nil {
		t.Fatal(err)
	}

	states := 120
	if testing.Short() {
		states = 40
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = e.Firings()
				_, _ = e.ItemAsOf("a", e.Now())
				_, _ = e.Rule(fmt.Sprintf("r%d", g))
				_ = e.EvalSteps()
				_ = e.DB()
				_ = e.RuleNames()
				_ = e.Executions("r0", e.Now())
				_ = e.BaseIndex()
				runtime.Gosched()
			}
		}(g)
	}
	rng := rand.New(rand.NewSource(99))
	ts := e.Now()
	for s := 0; s < states; s++ {
		ts += 2
		switch s % 4 {
		case 0:
			if err := e.Emit(ts, event.New(fmt.Sprintf("ev%d", rng.Intn(12)))); err != nil {
				t.Fatal(err)
			}
		case 1, 2:
			err := e.Exec(ts, map[string]value.Value{"a": value.NewInt(int64(rng.Intn(50)))})
			if err != nil && !errors.Is(err, ErrConstraintViolation) {
				t.Fatal(err)
			}
		case 3:
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(done)
	wg.Wait()
}

// TestParallelPanicIsolationEquivalence composes the sandbox with the
// determinism property: a rule whose action alternately panics and errors
// (and is eventually quarantined) rides along with the random rule set,
// constraints included. The faulting rule must not perturb anything —
// Workers=4 stays byte-identical to Workers=1, and with the chaos rule's
// own firings filtered out, the run is byte-identical to an engine that
// never had the rule — while both engines quarantine and revive it at the
// same point.
func TestParallelPanicIsolationEquivalence(t *testing.T) {
	const seed, rules, states = 4242, 4, 40
	p := randomEngineParams(seed, rules, true)
	ops := randomOps(seed*31, rules, states, 0)

	// Baseline: the same random run without the chaos rule.
	base := NewEngine(p.config(1))
	p.register(t, base)
	var baseAborts []string
	for _, op := range ops {
		if name := applyOp(t, base, op); name != "" {
			baseAborts = append(baseAborts, name)
		}
	}

	type run struct {
		e      *Engine
		calls  int
		aborts []string
	}
	mkRun := func(workers int) *run {
		r := &run{}
		cfg := p.config(workers)
		cfg.MaxRuleFailures = 3
		r.e = NewEngine(cfg)
		p.register(t, r.e)
		// Registered after the random set, so the existing rules keep their
		// registration order. Gated on ev0, which the op mix emits routinely.
		if err := r.e.AddTrigger("chaos", `@ev0`, func(ctx *ActionContext) error {
			r.calls++
			if r.calls%2 == 1 {
				panic(fmt.Sprintf("chaos %d", r.calls))
			}
			return fmt.Errorf("chaos %d", r.calls)
		}); err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			if name := applyOp(t, r.e, op); name != "" {
				r.aborts = append(r.aborts, name)
			}
		}
		return r
	}
	seq, par := mkRun(1), mkRun(4)

	// Worker-count equivalence of the full faulting run.
	if !firingsEqual(seq.e.Firings(), par.e.Firings()) {
		t.Fatalf("firings diverge between worker counts:\n seq %v\n par %v", seq.e.Firings(), par.e.Firings())
	}
	// EvalSteps is not compared: with constraints, the sequential abort
	// path short-circuits where the parallel path evaluates all
	// constraints (the documented divergence — see DESIGN.md).
	if seq.e.Now() != par.e.Now() || !seq.e.DB().Equal(par.e.DB()) {
		t.Fatal("engine state diverges between worker counts")
	}
	if !reflect.DeepEqual(seq.aborts, par.aborts) {
		t.Fatalf("abort sequences diverge: %v vs %v", seq.aborts, par.aborts)
	}
	if seq.calls != par.calls {
		t.Fatalf("chaos action invoked %d times sequentially, %d in parallel", seq.calls, par.calls)
	}
	if seq.calls == 0 {
		t.Fatal("chaos rule never fired; the property was not exercised")
	}

	for _, r := range []*run{seq, par} {
		// Isolation: dropping the chaos firings reproduces the baseline.
		var others []Firing
		for _, f := range r.e.Firings() {
			if f.Rule != "chaos" {
				others = append(others, f)
			}
		}
		if !firingsEqual(others, base.Firings()) {
			t.Fatalf("chaos rule perturbed other rules' firings:\n got %v\nwant %v", others, base.Firings())
		}
		if !r.e.DB().Equal(base.DB()) || r.e.Now() != base.Now() {
			t.Fatal("chaos rule perturbed the database or clock")
		}
		if !reflect.DeepEqual(r.aborts, baseAborts) {
			t.Fatalf("chaos rule perturbed constraint aborts: %v vs %v", r.aborts, baseAborts)
		}

		// Both engines trip the breaker at the same point and can revive.
		h, ok := r.e.RuleHealth("chaos")
		if !ok || !h.Quarantined {
			t.Fatalf("chaos not quarantined: %+v", h)
		}
		if h.TotalFailures != 3 {
			t.Fatalf("chaos failed %d times, want exactly MaxRuleFailures=3 then suppression", h.TotalFailures)
		}
		// Failure 3 (odd) was a panic, so the recorded cause is the sandbox's.
		if !errors.Is(h.LastError, ErrActionPanic) {
			t.Fatalf("LastError = %v, want the recovered panic", h.LastError)
		}
		before := r.calls
		if err := r.e.ReviveRule("chaos"); err != nil {
			t.Fatal(err)
		}
		if err := r.e.Emit(r.e.Now()+1, event.New("ev0")); err != nil {
			t.Fatalf("Emit after revive: %v", err)
		}
		if r.calls != before+1 {
			t.Fatalf("revived action invoked %d times, want %d", r.calls, before+1)
		}
	}
}
