package adb

import (
	"fmt"

	"ptlactive/internal/histio"
	"ptlactive/internal/retain"
	"ptlactive/internal/value"
)

// Retention is the storage-lifecycle policy of a durable engine: how the
// WAL is rotated and garbage-collected, how many snapshots the chain
// keeps, and what happens to collapsed temporal history older than the
// hot window. The zero value retains everything forever (the historical
// behavior).
type Retention struct {
	// SegmentBytes rotates the WAL to a new segment file once the active
	// one reaches this size; snapshot-covered segments are then deleted
	// whole. 0 keeps the historical single-segment-forever behavior.
	// Runtime-only: rotation points are a disk-layout concern, not part of
	// the logged record sequence, so replicas may differ here.
	SegmentBytes int64
	// KeepSnapshots bounds the snapshot chain: after each checkpoint, all
	// but the newest KeepSnapshots snapshot files (and every WAL segment
	// they cover) are deleted. 0 or 1 keeps only the newest. Runtime-only,
	// like SegmentBytes.
	KeepSnapshots int
	// HistoryWindow, when > 0, bounds the resident temporal history:
	// closed aux-relation intervals that ended more than HistoryWindow
	// time units before the engine clock are pruned at each commit.
	// Point-in-time reads older than the pruned floor are answered from
	// the cold tier (SpillHistory) or refused with ErrHistoryTruncated.
	// Persisted in the init record: the window shapes which AsOf queries
	// answer, so replay must use the original value.
	HistoryWindow int64
	// SpillHistory selects the tiered policy: pruned intervals are first
	// appended (fsynced) to an on-disk cold tier, which then serves AsOf
	// queries older than the hot window. False drops them. Persisted in
	// the init record alongside HistoryWindow.
	SpillHistory bool
}

// coldTierFile is the cold tier's filename inside the data directory.
const coldTierFile = "history.cold"

// ErrHistoryTruncated re-exports the sentinel for reads older than the
// retained history window under the drop policy; errors.Is matches it
// through HistoryTruncatedError.
var ErrHistoryTruncated = retain.ErrHistoryTruncated

// HistoryTruncatedError reports a point-in-time read older than the
// retention floor of an engine that drops (rather than spills) history.
type HistoryTruncatedError struct {
	// Time is the requested timestamp; Floor the oldest retained one.
	Time  int64
	Floor int64
}

// Error describes the refusal.
func (e *HistoryTruncatedError) Error() string {
	return fmt.Sprintf("adb: history at %d truncated (retention floor is %d; configure SpillHistory to keep a cold tier)", e.Time, e.Floor)
}

// Unwrap yields the sentinel for errors.Is.
func (e *HistoryTruncatedError) Unwrap() error { return ErrHistoryTruncated }

// Retention returns the engine's storage-lifecycle policy.
func (e *Engine) Retention() Retention { return e.retention }

// HistoryFloor returns the oldest timestamp point-in-time reads are
// guaranteed to answer from resident state. ok is false when no window is
// configured (everything is retained). The floor only advances at commits
// (it is now − HistoryWindow as of the latest prune), so it is a
// deterministic function of the logged history — replicas agree on it.
func (e *Engine) HistoryFloor() (int64, bool) {
	if e.retention.HistoryWindow <= 0 {
		return 0, false
	}
	return e.histFloor.Load(), true
}

// ItemAsOfChecked is ItemAsOf with typed retention errors: under the drop
// policy a read older than the retention floor returns
// HistoryTruncatedError (checked before the resident rows, so the answer
// set is a deterministic function of the configured window rather than of
// prune timing); under the spill policy a miss in the resident window
// falls back to the cold tier.
func (e *Engine) ItemAsOfChecked(name string, t int64) (value.Value, bool, error) {
	aux, ok := e.tracked[name]
	if !ok {
		return value.Value{}, false, nil
	}
	if e.retention.HistoryWindow > 0 && !e.retention.SpillHistory {
		if floor := e.histFloor.Load(); t < floor {
			return value.Value{}, false, &HistoryTruncatedError{Time: t, Floor: floor}
		}
	}
	if v, ok := aux.AsOf(t); ok {
		return v, true, nil
	}
	if e.tier != nil {
		raw, ok, err := e.tier.AsOf(name, t)
		if err != nil {
			return value.Value{}, false, &InternalError{Op: "cold tier read", Err: err}
		}
		if ok {
			v, err := histio.DecodeValue(raw)
			if err != nil {
				return value.Value{}, false, &InternalError{Op: "cold tier decode", Err: err}
			}
			return v, true, nil
		}
	}
	return value.Value{}, false, nil
}

// maybeRetain advances the retention floor to ts − HistoryWindow and
// prunes aux intervals that ended at or before it, spilling them to the
// cold tier first under the spill policy. It runs at the tail of every
// committed external operation — including during replay, where the tier
// watermark makes re-spills idempotent — so the floor is a deterministic
// function of the logged history.
func (e *Engine) maybeRetain(ts int64) error {
	w := e.retention.HistoryWindow
	if w <= 0 {
		return nil
	}
	floor := ts - w
	if floor <= e.histFloor.Load() {
		return nil
	}
	e.histFloor.Store(floor)
	return e.pruneAux(floor)
}

// pruneAux discards closed aux intervals that ended at or before horizon.
// Under the spill policy the expired rows are first appended and fsynced
// to the cold tier — only then pruned, so every captured interval exists
// in at least one place at every instant. A memory engine with
// SpillHistory set has no tier to spill to; it keeps the rows resident
// rather than lose them. A tier write failure breaks that contract, so it
// seals the engine like a WAL append failure.
func (e *Engine) pruneAux(horizon int64) error {
	for _, name := range e.trackedNames {
		aux := e.tracked[name]
		if e.retention.SpillHistory {
			if e.tier == nil {
				continue
			}
			expired := aux.Expired(horizon)
			rows := make([]retain.Row, 0, len(expired))
			for _, r := range expired {
				raw, err := histio.EncodeValue(r.Tuple[0])
				if err != nil {
					return e.seal(&InternalError{Op: "cold tier encode", Err: err})
				}
				rows = append(rows, retain.Row{Item: name, V: raw, Start: r.Start, End: r.End})
			}
			if err := e.tier.Spill(rows); err != nil {
				return e.seal(&InternalError{Op: "cold tier spill", Err: err})
			}
		}
		aux.Prune(horizon)
	}
	return nil
}

// StorageStats is the engine's storage footprint: the persistence layer's
// segment and snapshot accounting plus the retention policy's view of the
// history tiers. Memory engines report zero persistence fields.
type StorageStats struct {
	// Segments, WALBytes, Snapshots, SnapshotBytes, HeadLSN and LastLSN
	// mirror persist.StorageStats.
	Segments      int
	WALBytes      int64
	Snapshots     int
	SnapshotBytes int64
	HeadLSN       int64
	LastLSN       int64
	// HistoryWindow and HistoryFloor describe the hot window; both are 0
	// when no window is configured.
	HistoryWindow int64
	HistoryFloor  int64
	// SpillHistory reports the tiered policy; TierRows and TierBytes the
	// cold tier's size (0 without a tier).
	SpillHistory bool
	TierRows     int64
	TierBytes    int64
}

// Storage reports the engine's storage footprint. Like Checkpoint it runs
// at the engine owner's serialization point (the persist layer is not
// synchronized against concurrent appends).
func (e *Engine) Storage() (StorageStats, error) {
	var out StorageStats
	if e.store != nil {
		st, err := e.store.Stats()
		if err != nil {
			return out, err
		}
		out.Segments = st.Segments
		out.WALBytes = st.WALBytes
		out.Snapshots = st.Snapshots
		out.SnapshotBytes = st.SnapshotBytes
		out.HeadLSN = st.HeadLSN
		out.LastLSN = st.LastLSN
	}
	if e.retention.HistoryWindow > 0 {
		out.HistoryWindow = e.retention.HistoryWindow
		out.HistoryFloor = e.histFloor.Load()
	}
	out.SpillHistory = e.retention.SpillHistory
	if e.tier != nil {
		out.TierRows, out.TierBytes = e.tier.Stats()
	}
	return out, nil
}
