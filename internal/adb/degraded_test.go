package adb

import (
	"errors"
	"fmt"
	"testing"

	"ptlactive/internal/event"
	"ptlactive/internal/persist"
	"ptlactive/internal/value"
)

// registerTolerant registers the parameter set's rules in the exact order
// engineParams.register does, but tolerates a degraded seal mid-way: it
// returns how many registrations committed and the sealing error (nil if
// all succeeded). Any other failure is fatal.
func registerTolerant(t *testing.T, e *Engine, p engineParams) (int, error) {
	t.Helper()
	n := 0
	reg := func(add func() error) error {
		if err := add(); err != nil {
			if errors.Is(err, ErrDegraded) {
				return err
			}
			t.Fatalf("register: %v", err)
		}
		n++
		return nil
	}
	for i, cond := range p.conds {
		name, sched := fmt.Sprintf("r%03d", i), p.scheds[i]
		if _, ok := e.Rule(name); ok {
			n++
			continue
		}
		if err := reg(func() error { return e.AddTrigger(name, cond, nil, WithScheduling(sched)) }); err != nil {
			return n, err
		}
	}
	if p.withConstraints {
		for _, c := range []struct{ name, cond string }{
			{"c_a_low", `not (item("a") > 50)`},
			{"c_b_low", `not (item("b") > 50)`},
		} {
			if _, ok := e.Rule(c.name); ok {
				n++
				continue
			}
			c := c
			if err := reg(func() error { return e.AddConstraint(c.name, c.cond) }); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// applyOpTolerant runs one operation, returning (violated constraint,
// sealing error). A degraded seal is the expected fault; anything else
// non-constraint is fatal.
func applyOpTolerant(t *testing.T, e *Engine, op engineOp) (string, error) {
	t.Helper()
	var err error
	switch op.kind {
	case opEmit:
		err = e.Emit(op.ts, op.events...)
	case opExec:
		err = e.Exec(op.ts, op.upd, op.events...)
		var ce *ConstraintError
		if errors.As(err, &ce) {
			return ce.Constraint, nil
		}
	case opAbort:
		tx := e.Begin()
		tx.Set("a", value.NewInt(99))
		err = tx.Abort(op.ts)
	case opFlush:
		err = e.Flush()
	}
	if err != nil {
		if errors.Is(err, ErrDegraded) {
			return "", err
		}
		t.Fatalf("op %+v: %v", op, err)
	}
	return "", nil
}

// TestDegradedOnWALFaultEveryBoundary is graceful degradation under
// durability faults: a WAL append failure injected at every record
// boundary of a random history must (a) surface as an ErrDegraded-wrapped
// error from the operation in flight, (b) seal the engine — every further
// mutation is refused while read accessors keep serving the in-memory
// state — and (c) leave a log from which Restore recovers exactly the
// committed prefix: re-applying the remaining operations reproduces the
// fault-free run byte for byte (the injected half-frame is truncated as a
// torn tail, never replayed).
//
// LSN 1 (the init record of a fresh directory) is written inside Restore
// before a failpoint can be installed, so the swept boundaries start at
// the first rule-registration record; Restore's own error path for a
// failed init append returns the error directly.
func TestDegradedOnWALFaultEveryBoundary(t *testing.T) {
	const seed, rules, states = 7001, 5, 24
	p := randomEngineParams(seed, rules, true)
	ops := randomOps(seed*31, rules, states, 0)
	preamble := int64(1 + rules + 2) // init + triggers + constraints

	// Fault-free in-memory reference.
	ref := NewEngine(p.config(1))
	p.register(t, ref)
	var refAborts []string
	for _, op := range ops {
		if name := applyOp(t, ref, op); name != "" {
			refAborts = append(refAborts, name)
		}
	}

	for L := int64(2); L <= preamble+int64(len(ops)); L++ {
		L := L
		t.Run(fmt.Sprintf("faultLSN=%d", L), func(t *testing.T) {
			dir := t.TempDir()
			cfg := p.config(1)
			cfg.Durability = DurabilityWAL
			cfg.NoFsync = true
			e1, err := Restore(cfg, dir)
			if err != nil {
				t.Fatalf("fresh Restore: %v", err)
			}
			boom := errors.New("injected write fault")
			e1.store.SetFailpoint(func(op string, lsn int64) error {
				if op == "append" && lsn == L {
					return boom
				}
				return nil
			})

			// Drive until the fault seals the engine.
			var sealErr error
			_, sealErr = registerTolerant(t, e1, p)
			opsApplied := 0
			if sealErr == nil {
				for _, op := range ops {
					if _, err := applyOpTolerant(t, e1, op); err != nil {
						sealErr = err
						break
					}
					opsApplied++
				}
			}
			if sealErr == nil {
				t.Fatalf("fault at LSN %d never fired", L)
			}
			if !errors.Is(sealErr, ErrDegraded) || !errors.Is(sealErr, boom) {
				t.Fatalf("seal error = %v, want ErrDegraded wrapping the injected fault", sealErr)
			}
			if want := int(L - 2 - (preamble - 1)); opsApplied != max(0, want) {
				t.Fatalf("committed %d ops before fault at LSN %d, want %d", opsApplied, L, max(0, want))
			}
			// Sealed: mutations refused, read accessors still serve.
			if err := e1.Emit(e1.Now()+1000, event.New("late")); !errors.Is(err, ErrDegraded) {
				t.Fatalf("Emit after seal = %v, want ErrDegraded", err)
			}
			if e1.Degraded() == nil {
				t.Fatal("Degraded() nil after seal")
			}
			_ = e1.Firings() // read path must not panic or block
			_ = e1.DB()
			_ = e1.Close()

			// Recovery: the committed prefix, then the rest of the run.
			e2, err := Restore(cfg, dir)
			if err != nil {
				t.Fatalf("Restore after fault: %v", err)
			}
			defer e2.Close()
			if n, err := registerTolerant(t, e2, p); err != nil || n != rules+2 {
				t.Fatalf("re-register: n=%d err=%v", n, err)
			}
			var aborts []string
			for _, op := range ops[opsApplied:] {
				if name := applyOp(t, e2, op); name != "" {
					aborts = append(aborts, name)
				}
			}
			// The recovered engine replayed ops[:opsApplied]; its abort list
			// only covers the re-applied suffix, so compare against the
			// reference's suffix of the same length.
			if len(aborts) > len(refAborts) {
				t.Fatalf("more aborts after recovery (%d) than the reference run (%d)", len(aborts), len(refAborts))
			}
			for i, name := range aborts {
				if want := refAborts[len(refAborts)-len(aborts)+i]; name != want {
					t.Fatalf("abort %d after recovery = %s, want %s", i, name, want)
				}
			}
			if !firingsEqual(e2.Firings(), ref.Firings()) {
				t.Fatalf("firings diverge after recovery:\n got %v\nwant %v", e2.Firings(), ref.Firings())
			}
			if e2.Now() != ref.Now() {
				t.Fatalf("Now = %d, want %d", e2.Now(), ref.Now())
			}
			if !e2.DB().Equal(ref.DB()) {
				t.Fatalf("DB diverges after recovery:\n got %v\nwant %v", e2.DB(), ref.DB())
			}
			if e2.EvalSteps() != ref.EvalSteps() {
				t.Fatalf("EvalSteps = %d, want %d", e2.EvalSteps(), ref.EvalSteps())
			}
		})
	}
}

// TestDegradedOnFsyncFault is the fsync flavor: the frame reaches the
// file but the fsync fails. The engine seals exactly as for a write
// fault; on Restore the fully-framed record is legitimately recovered —
// it may have reached disk, and replaying a possibly-durable record is
// the safe direction — so recovery resumes one operation further along.
func TestDegradedOnFsyncFault(t *testing.T) {
	const seed, rules, states = 7002, 4, 12
	p := randomEngineParams(seed, rules, true)
	ops := randomOps(seed*31, rules, states, 0)
	preamble := int64(1 + rules + 2)

	ref := NewEngine(p.config(1))
	p.register(t, ref)
	for _, op := range ops {
		applyOp(t, ref, op)
	}

	// Fault the fsync of the middle operation's record.
	faultOp := len(ops) / 2
	L := preamble + int64(faultOp) + 1

	dir := t.TempDir()
	cfg := p.config(1)
	cfg.Durability = DurabilityWAL // NoFsync stays false: the sync path must run
	e1, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected fsync fault")
	e1.store.SetFailpoint(func(op string, lsn int64) error {
		if op == "sync" && lsn == L {
			return boom
		}
		return nil
	})
	if _, err := registerTolerant(t, e1, p); err != nil {
		t.Fatal(err)
	}
	opsApplied := 0
	var sealErr error
	for _, op := range ops {
		if _, err := applyOpTolerant(t, e1, op); err != nil {
			sealErr = err
			break
		}
		opsApplied++
	}
	if !errors.Is(sealErr, ErrDegraded) || !errors.Is(sealErr, boom) {
		t.Fatalf("seal error = %v, want ErrDegraded wrapping the fsync fault", sealErr)
	}
	if opsApplied != faultOp {
		t.Fatalf("committed %d ops, want %d", opsApplied, faultOp)
	}
	_ = e1.Close()

	e2, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.Recovery().TruncatedAt >= 0 {
		t.Fatalf("fsync fault left a torn tail at %d; the frame was fully written", e2.Recovery().TruncatedAt)
	}
	// The faulted record was fully framed: recovery replays it too.
	for _, op := range ops[faultOp+1:] {
		applyOp(t, e2, op)
	}
	if !firingsEqual(e2.Firings(), ref.Firings()) {
		t.Fatalf("firings diverge:\n got %v\nwant %v", e2.Firings(), ref.Firings())
	}
	if !e2.DB().Equal(ref.DB()) || e2.Now() != ref.Now() {
		t.Fatalf("state diverges: DB %v vs %v, Now %d vs %d", e2.DB(), ref.DB(), e2.Now(), ref.Now())
	}
}

// TestReviveRefusedWhenDegraded pins that ReviveRule is a mutator under
// the degraded seal: once a durability fault seals the engine, a revive
// is refused and the quarantine stays in place — a sealed engine cannot
// diverge from its log by re-enabling suppressed actions it can no
// longer record.
func TestReviveRefusedWhenDegraded(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Initial:         map[string]value.Value{"a": value.NewInt(1)},
		Durability:      DurabilityWAL,
		NoFsync:         true,
		MaxRuleFailures: 1,
	}
	e, err := Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("broken action")
	if err := e.AddTrigger("flaky", `@hit`, func(ctx *ActionContext) error { return boom }); err != nil {
		t.Fatal(err)
	}
	if err := e.Emit(1, event.New("hit")); err != nil { // one failure: quarantined
		t.Fatal(err)
	}
	if got := e.QuarantinedRules(); len(got) != 1 {
		t.Fatalf("QuarantinedRules = %v, want [flaky]", got)
	}
	fault := errors.New("injected write fault")
	e.store.SetFailpoint(func(op string, lsn int64) error {
		if op == "append" {
			return fault
		}
		return nil
	})
	if err := e.Emit(2, event.New("hit")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Emit under fault = %v, want ErrDegraded", err)
	}
	if err := e.ReviveRule("flaky"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("ReviveRule on sealed engine = %v, want ErrDegraded", err)
	}
	if got := e.QuarantinedRules(); len(got) != 1 || got[0] != "flaky" {
		t.Fatalf("quarantine changed on a sealed engine: %v", got)
	}
	_ = e.Close()
}

// Compile-time check that the failpoint type is reachable from this
// package the way operators would use it (engine tests reach the store
// directly; external callers go through persist.Store.SetFailpoint).
var _ persist.Failpoint = func(op string, lsn int64) error { return nil }
