package adb

// Read-set extraction and rule classification for the scheduling index.
//
// Section 8 prescribes evaluating a rule only on states that concern it.
// The engine's wake conditions (see relevant) are sound but coarse: every
// database-reading rule wakes on every commit. This file extracts, at
// registration time, a static read set from the compiled condition — the
// database items, event names and executed() targets the condition can
// observe — and classifies each rule by how its wake set can be refined
// without changing a single firing:
//
//   - classExact: evaluated exactly when the coarse filter wakes it.
//     Temporal rules (their F_{g,i} registers must see every woken
//     state), rules with an unanalyzable footprint, time-dependent
//     conditions, and event rules the gate analysis cannot discharge.
//   - classGated: non-temporal rules whose condition is provably false on
//     any state carrying none of their events (a three-valued fold). On
//     commits without their events the evaluation is skipped outright —
//     the result is known to be "no firing" — and only the cursor moves.
//   - classQuiescent: non-temporal, event-free, database-reading rules
//     with a fully analyzable, time-independent footprint. On commits
//     that touch no item in the footprint the previous evaluation result
//     is replayed from a memo (same bindings, new timestamp) instead of
//     re-evaluated; the firings are byte-identical to re-evaluation
//     because the condition's value depends only on the untouched items.

import (
	"sort"

	"ptlactive/internal/ptl"
	"ptlactive/internal/query"
	"ptlactive/internal/value"
)

// ruleClass is the scheduling refinement a rule admits.
type ruleClass int

const (
	classExact ruleClass = iota
	classGated
	classQuiescent
)

// readSet is the statically extracted footprint of a condition.
type readSet struct {
	// items names the database items the condition can read, complete
	// only when analyzable is true.
	items map[string]bool
	// analyzable reports that items is the complete database footprint:
	// every query call either is item() with a constant name or declares
	// its reads (query.Registry.ReadSet).
	analyzable bool
	// timeDep reports a dependency on the state timestamp (a time() call
	// or an impure query), so the condition's value can change between
	// states even with an untouched database.
	timeDep bool
	// execRules names the executed() targets; their executions feed the
	// condition, so states recording them concern the rule. (Executed is
	// a temporal operator, so such rules are classExact regardless.)
	execRules map[string]bool
	// hasEventAtoms reports whether any event atom occurs in the
	// condition (info.Events carries the names).
	hasEventAtoms bool
}

// extractReadSet walks the normalized condition (including aggregate
// subformulas — ptl.Walk and ptl.WalkTerms recurse into them).
func extractReadSet(info *ptl.Info, reg *query.Registry) readSet {
	rs := readSet{
		items:      map[string]bool{},
		analyzable: true,
		execRules:  map[string]bool{},
	}
	ptl.Walk(info.Normalized, func(f ptl.Formula) {
		switch x := f.(type) {
		case *ptl.EventAtom:
			rs.hasEventAtoms = true
		case *ptl.Executed:
			rs.execRules[x.Rule] = true
		}
	})
	ptl.WalkTerms(info.Normalized, func(t ptl.Term) {
		c, ok := t.(*ptl.Call)
		if !ok {
			return
		}
		switch {
		case c.Fn == "time":
			rs.timeDep = true
		case c.Fn == "item":
			if len(c.Args) == 1 {
				if k, isConst := c.Args[0].(*ptl.Const); isConst && k.V.Kind() == value.String {
					rs.items[k.V.AsString()] = true
					return
				}
			}
			// item(<non-constant>): the footprint depends on runtime
			// values.
			rs.analyzable = false
		default:
			if reads, known := reg.ReadSet(c.Fn); known {
				for _, item := range reads {
					rs.items[item] = true
				}
				return
			}
			rs.analyzable = false
			if !reg.Pure(c.Fn) {
				// An impure query may read anything, including the
				// clock; force evaluation at every woken state.
				rs.timeDep = true
			}
		}
	})
	return rs
}

// EventUse is one event-atom shape a condition observes: the symbol name
// and the atom's arity. Two atoms of the same symbol at different arities
// are distinct uses (an occurrence matches an atom only at equal arity).
type EventUse struct {
	Name  string
	Arity int
}

// Footprint is the externally usable form of a condition's static read
// set: the database items and event atoms it can observe. The cluster
// router uses it as its placement oracle — a rule whose items all hash to
// one shard is pinned there, and its remote event uses become forwarding
// subscriptions. Items and Events are sorted; Items is complete only when
// Analyzable is true.
type Footprint struct {
	Items []string
	// Analyzable reports that Items is the complete database footprint.
	Analyzable bool
	// TimeDep reports a dependency on the state timestamp or an impure
	// query.
	TimeDep bool
	// Temporal reports that the condition uses temporal operators, so its
	// value depends on the whole state sequence it observes, not just the
	// current state.
	Temporal bool
	// Events lists the distinct event-atom uses, sorted by name then arity.
	Events []EventUse
	// ExecRules lists the executed() targets, sorted; their executions
	// feed the condition, so they must be observable where it runs.
	ExecRules []string
}

// ConditionFootprint parses and checks a condition and extracts its
// Footprint. It accepts exactly the condition strings AddTrigger and
// AddConstraint accept (a constraint's implicit negation does not change
// its footprint). reg supplies the query functions; nil means just the
// built-ins.
func ConditionFootprint(condition string, reg *query.Registry) (Footprint, error) {
	if reg == nil {
		reg = query.NewRegistry()
	}
	f, err := ptl.Parse(condition)
	if err != nil {
		return Footprint{}, err
	}
	info, err := ptl.Check(f, reg)
	if err != nil {
		return Footprint{}, err
	}
	rs := extractReadSet(info, reg)
	fp := Footprint{
		Analyzable: rs.analyzable,
		TimeDep:    rs.timeDep,
		Temporal:   info.Temporal,
	}
	for item := range rs.items {
		fp.Items = append(fp.Items, item)
	}
	sort.Strings(fp.Items)
	for rule := range rs.execRules {
		fp.ExecRules = append(fp.ExecRules, rule)
	}
	sort.Strings(fp.ExecRules)
	seen := map[EventUse]bool{}
	ptl.Walk(info.Normalized, func(g ptl.Formula) {
		if atom, ok := g.(*ptl.EventAtom); ok {
			seen[EventUse{Name: atom.Name, Arity: len(atom.Args)}] = true
		}
	})
	for use := range seen {
		fp.Events = append(fp.Events, use)
	}
	sort.Slice(fp.Events, func(i, j int) bool {
		if fp.Events[i].Name != fp.Events[j].Name {
			return fp.Events[i].Name < fp.Events[j].Name
		}
		return fp.Events[i].Arity < fp.Events[j].Arity
	})
	return fp, nil
}

// gateValue is a three-valued truth value for the event-gate fold.
type gateValue int

const (
	gateFalse gateValue = iota
	gateUnknown
	gateTrue
)

func (v gateValue) not() gateValue {
	switch v {
	case gateFalse:
		return gateTrue
	case gateTrue:
		return gateFalse
	default:
		return gateUnknown
	}
}

func gateMin(a, b gateValue) gateValue {
	if a < b {
		return a
	}
	return b
}

func gateMax(a, b gateValue) gateValue {
	if a > b {
		return a
	}
	return b
}

// gatedByEvents reports whether the (non-temporal) condition is provably
// false at any state carrying none of its events: a Kleene fold with
// every event atom pinned to false and every other atom unknown. On an
// event-free state an event atom folds to an empty disjunction — false —
// so a gateFalse verdict means no binding can satisfy the condition
// there, whatever the database holds.
func gatedByEvents(f ptl.Formula) bool {
	return gateFold(f) == gateFalse
}

func gateFold(f ptl.Formula) gateValue {
	switch x := f.(type) {
	case *ptl.BoolConst:
		if x.V {
			return gateTrue
		}
		return gateFalse
	case *ptl.EventAtom:
		return gateFalse
	case *ptl.Not:
		return gateFold(x.F).not()
	case *ptl.And:
		return gateMin(gateFold(x.L), gateFold(x.R))
	case *ptl.Or:
		return gateMax(gateFold(x.L), gateFold(x.R))
	case *ptl.Assign:
		return gateFold(x.Body)
	default:
		// Comparisons, membership, executed, temporal operators: value
		// unknown without evaluating.
		return gateUnknown
	}
}

// classify picks the scheduling refinement for a rule. Only Relevant
// triggers are refined: Eager means "evaluate at every state" by
// contract, Manual only advances on Flush, and constraints have their
// own commit/abort cadence.
func classify(r *rule) ruleClass {
	if r.constraint || r.sched != Relevant || r.info.Temporal {
		return classExact
	}
	if r.rs.hasEventAtoms {
		if gatedByEvents(r.info.Normalized) {
			return classGated
		}
		return classExact
	}
	if r.readsDB && r.rs.analyzable && !r.rs.timeDep {
		return classQuiescent
	}
	return classExact
}
