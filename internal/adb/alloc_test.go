package adb

import (
	"testing"

	"ptlactive/internal/value"
)

// TestCommitAllocs is the allocation-regression gate for the commit hot
// path. BenchmarkCommit sat at 44 allocs/op when the gate landed
// (pooled key scratch, owned event sets, structurally-shared DBState);
// the ceiling keeps those wins from rotting silently — an accidental
// return to whole-map copying in history.DBState, or a new per-commit
// map, fails this test rather than only shifting a benchmark number.
// The workload mirrors BenchmarkCommit exactly: a two-item transaction
// against a small rule table of eight triggers and one constraint.
func TestCommitAllocs(t *testing.T) {
	e := NewEngine(Config{Initial: map[string]value.Value{
		"a": value.NewInt(0), "b": value.NewInt(0), "c": value.NewInt(0),
	}})
	items := []string{"a", "b", "c"}
	for i := 0; i < 8; i++ {
		name := "watch" + string(rune('0'+i))
		if err := e.AddTrigger(name, `item("`+items[i%3]+`") > 1000000`, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.AddConstraint("cap", `item("a") < 1000000`); err != nil {
		t.Fatal(err)
	}
	ts := int64(0)
	var failed error
	got := testing.AllocsPerRun(500, func() {
		ts++
		if err := e.Exec(ts, map[string]value.Value{
			"a": value.NewInt(ts % 1000),
			"b": value.NewInt(ts % 777),
		}); err != nil {
			failed = err
		}
	})
	if failed != nil {
		t.Fatal(failed)
	}
	if got > 44 {
		t.Fatalf("commit path: %.1f allocs/op, ceiling 44", got)
	}
}
