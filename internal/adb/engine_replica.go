package adb

import (
	"fmt"
	"path/filepath"

	"ptlactive/internal/persist"
	"ptlactive/internal/retain"
)

// This file is the engine half of the replication subsystem (see
// internal/replica): a primary exposes its durable WAL batches for
// shipping, and a Follower applies shipped frames byte-for-byte through
// the normal recovery path, so follower state and firing stream are
// identical to the primary's by construction.

// Epoch returns the replication primary epoch — the highest epoch record
// (persist.KindEpoch) this engine has logged or replayed, 0 when it was
// never part of a promoted replica set. Safe for concurrent use.
func (e *Engine) Epoch() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.epoch
}

// BumpEpoch fences a leadership change: it logs an epoch record carrying
// n, forces it to stable storage and only then adopts n as the engine's
// epoch. Durable engines only; n must exceed the current epoch. The
// ordering matters for shipping: the flush hook observes the batch that
// carries the epoch record while the engine still reports the old epoch,
// so a follower at the old epoch accepts the batch and the record itself
// performs the bump on both sides.
func (e *Engine) BumpEpoch(n int64) error {
	if e.store == nil {
		return fmt.Errorf("adb: BumpEpoch requires a durable engine")
	}
	if err := e.healthy(); err != nil {
		return err
	}
	if cur := e.Epoch(); n <= cur {
		return fmt.Errorf("adb: epoch %d does not exceed current epoch %d", n, cur)
	}
	if err := e.logRecord(&persist.Record{Kind: persist.KindEpoch, Epoch: n}); err != nil {
		return err
	}
	if err := e.SyncWAL(); err != nil {
		return err
	}
	e.mu.Lock()
	e.epoch = n
	e.mu.Unlock()
	return nil
}

// WALLastLSN returns the LSN of the engine's most recent WAL record
// (snapshot-covered or appended), 0 for memory engines.
func (e *Engine) WALLastLSN() int64 {
	if e.store == nil {
		return 0
	}
	return e.store.LastLSN()
}

// WALFlushHook installs (or clears, with nil) the durable-batch observer
// on the engine's WAL; see persist.FlushHook. A no-op for memory engines.
// The caller must serialize installation against commits (the replica
// backend's pipeline does).
func (e *Engine) WALFlushHook(h persist.FlushHook) {
	if e.store != nil {
		e.store.SetFlushHook(h)
	}
}

// WALReadFrom reads the engine's durable WAL frames with LSN >= from in
// chunks of at most maxChunk bytes (see persist.Store.ReadFramesFrom); a
// replication follower's backlog is served from it. Durable engines only.
func (e *Engine) WALReadFrom(from int64, maxChunk int) ([]persist.WALChunk, error) {
	if e.store == nil {
		return nil, fmt.Errorf("adb: WALReadFrom requires a durable engine")
	}
	return e.store.ReadFramesFrom(from, maxChunk)
}

// WALNewestSnapshot returns the newest durable snapshot's raw bytes and
// covered LSN, for bootstrapping a follower whose resume position fell
// behind the retained WAL head. ok is false when no snapshot exists (then
// no GC has run either, so the full log is still readable). Durable
// engines only.
func (e *Engine) WALNewestSnapshot() ([]byte, int64, bool, error) {
	if e.store == nil {
		return nil, 0, false, fmt.Errorf("adb: WALNewestSnapshot requires a durable engine")
	}
	return e.store.NewestSnapshot()
}

// Follower is a replication replica of a remote primary: it owns a
// durability directory whose WAL is an exact byte prefix of the primary's
// and an engine rebuilt from it by replay. Shipped frames are persisted
// verbatim (AppendRaw) and then applied through the same replay path
// recovery uses, so the follower's state, firing stream and on-disk log
// are identical to the primary's at every batch boundary.
//
// A Follower is not safe for concurrent use; the replica node serializes
// ApplyFrames, reads and Promote.
type Follower struct {
	cfg      Config
	store    *persist.Store
	tier     *retain.Tier // open cold tier under the spill policy, else nil
	eng      *Engine      // nil until the primary's init frame arrives
	lastLSN  int64
	epoch    int64
	promoted bool
}

// OpenFollower opens (creating if needed) a follower directory: it loads
// the newest snapshot, replays the WAL tail and returns a Follower ready
// to apply shipped frames from LastLSN()+1. Unlike Restore it never logs
// anything of its own — a fresh directory stays empty until the primary's
// init frame arrives, because the init record must be the primary's bytes
// for the logs to match. cfg supplies the runtime-only pieces (Registry,
// Actions, OnFiring, Workers); the replicated init record governs the
// rest.
func OpenFollower(cfg Config, dir string) (*Follower, error) {
	st, res, err := persist.OpenOptions(dir, persist.Options{
		SegmentBytes:  cfg.Retention.SegmentBytes,
		KeepSnapshots: cfg.Retention.KeepSnapshots,
	})
	if err != nil {
		return nil, err
	}
	if cfg.NoFsync {
		st.DisableSync()
	}
	// The follower keeps its own cold tier (spills during replay are
	// idempotent via the tier watermark, exactly as in Restore). It opens
	// before replay so replayed prunes can spill.
	var tier *retain.Tier
	if cfg.Retention.SpillHistory && cfg.Retention.HistoryWindow > 0 {
		if tier, err = retain.OpenTier(filepath.Join(dir, coldTierFile)); err != nil {
			st.Close()
			return nil, err
		}
	}
	var e *Engine
	tail := res.Tail
	switch {
	case res.Snapshot != nil:
		e, err = engineFromSnapshot(cfg, res.Snapshot)
	case len(tail) > 0:
		if tail[0].Kind != persist.KindInit || tail[0].Init == nil {
			err = fmt.Errorf("adb: follower wal does not begin with an init record (kind %q)", tail[0].Kind)
		} else {
			e, err = engineFromInit(cfg, tail[0].Init)
			tail = tail[1:]
		}
	}
	if err != nil {
		if tier != nil {
			tier.Close()
		}
		st.Close()
		return nil, err
	}
	if e != nil {
		e.tier = tier
	}
	for _, rec := range tail {
		// Per-operation failures replay the primary's own logged outcome
		// (a rejected commit, a failed action) — they are state, not
		// errors; malformed records are fatal exactly as in Restore.
		if _, fatal := e.applyRecord(rec); fatal != nil {
			if tier != nil {
				tier.Close()
			}
			st.Close()
			return nil, fatal
		}
	}
	return &Follower{
		cfg:     cfg,
		store:   st,
		tier:    tier,
		eng:     e,
		lastLSN: st.LastLSN(),
		epoch:   res.Epoch,
	}, nil
}

// Engine returns the replayed engine for read-only access (queries,
// firings, health); nil before the primary's init frame has arrived.
// Mutating it directly would diverge from the primary.
func (f *Follower) Engine() *Engine { return f.eng }

// LastLSN returns the LSN of the last applied record; the follower wants
// frames from LastLSN()+1.
func (f *Follower) LastLSN() int64 { return f.lastLSN }

// Epoch returns the highest primary epoch the follower has applied.
func (f *Follower) Epoch() int64 { return f.epoch }

// ApplyFrames persists and applies one shipped batch of WAL frames.
// batchEpoch is the sending primary's epoch when the batch was flushed;
// a batch from an epoch older than the follower's is a deposed primary's
// stale tail and is rejected (epoch fencing). Frames whose LSN the
// follower has already applied are skipped — redelivered batches are
// idempotent — and a gap beyond lastLSN+1 is a hard error (applying
// across it would silently diverge). Returns how many records were newly
// applied.
func (f *Follower) ApplyFrames(data []byte, batchEpoch int64) (int, error) {
	if f.promoted {
		return 0, fmt.Errorf("adb: follower was promoted; no further frames")
	}
	if batchEpoch < f.epoch {
		return 0, fmt.Errorf("adb: fenced: batch epoch %d older than follower epoch %d", batchEpoch, f.epoch)
	}
	recs, offs, err := persist.ParseFrames(data)
	if err != nil {
		return 0, err
	}
	if len(recs) == 0 {
		return 0, nil
	}
	// Find the first record beyond what we already have; everything before
	// it is a duplicate delivery of bytes we already persisted.
	start := 0
	for start < len(recs) && recs[start].LSN <= f.lastLSN {
		start++
	}
	if start == len(recs) {
		return 0, nil
	}
	first, last := recs[start].LSN, recs[len(recs)-1].LSN
	if first != f.lastLSN+1 {
		return 0, fmt.Errorf("adb: wal gap: batch starts at LSN %d, follower has %d", first, f.lastLSN)
	}
	if f.eng == nil && recs[start].Kind != persist.KindInit {
		return 0, fmt.Errorf("adb: follower stream does not begin with an init record (kind %q)", recs[start].Kind)
	}
	// Persist first, exactly as the primary did (WAL before state), and
	// byte-for-byte: the follower log is the primary log's prefix.
	if err := f.store.AppendRaw(data[offs[start]:], first, last); err != nil {
		return 0, err
	}
	applied := 0
	for _, rec := range recs[start:] {
		switch {
		case rec.Kind == persist.KindInit:
			if f.eng != nil {
				return applied, fmt.Errorf("adb: replay LSN %d: unexpected init record", rec.LSN)
			}
			e, err := engineFromInit(f.cfg, rec.Init)
			if err != nil {
				return applied, err
			}
			e.tier = f.tier
			f.eng = e
		default:
			// Per-operation failures are the primary's logged outcome;
			// only malformed records stop the stream (see OpenFollower).
			if _, fatal := f.eng.applyRecord(rec); fatal != nil {
				return applied, fatal
			}
		}
		if rec.Kind == persist.KindEpoch && rec.Epoch > f.epoch {
			f.epoch = rec.Epoch
		}
		f.lastLSN = rec.LSN
		applied++
	}
	return applied, nil
}

// BootstrapSnapshot installs a primary snapshot shipped to a follower
// whose resume position fell behind the primary's retained WAL head (the
// segments covering it were garbage-collected). The snapshot bytes are
// durably installed, the follower's log is reset to continue from lsn+1
// and the engine is rebuilt from the snapshot, after which the ordinary
// frame stream converges the follower byte-identically from that point.
// A snapshot at or behind the follower's position is refused — the
// follower is not behind, and regressing would discard applied state.
func (f *Follower) BootstrapSnapshot(data []byte, lsn int64) error {
	if f.promoted {
		return fmt.Errorf("adb: follower was promoted; no snapshot bootstrap")
	}
	if lsn <= f.lastLSN {
		return fmt.Errorf("adb: snapshot at LSN %d does not advance follower at %d", lsn, f.lastLSN)
	}
	snap, err := f.store.InstallSnapshot(data, lsn)
	if err != nil {
		return err
	}
	e, err := engineFromSnapshot(f.cfg, snap)
	if err != nil {
		return err
	}
	e.tier = f.tier
	f.eng = e
	f.lastLSN = lsn
	if snap.Epoch > f.epoch {
		f.epoch = snap.Epoch
	}
	return nil
}

// Promote turns the follower into a primary: it attaches the store to the
// engine for logging (group commit and all), fences the leadership change
// with an epoch record carrying newEpoch and returns the now-writable
// engine. The Follower itself is spent — further ApplyFrames calls fail.
// A follower that never received an init frame can only be promoted over
// an empty log; it then starts fresh from its own config, logging its own
// init record, exactly like Restore on a fresh directory.
func (f *Follower) Promote(newEpoch int64) (*Engine, error) {
	if f.promoted {
		return nil, fmt.Errorf("adb: follower already promoted")
	}
	if newEpoch <= f.epoch {
		return nil, fmt.Errorf("adb: promotion epoch %d does not exceed follower epoch %d", newEpoch, f.epoch)
	}
	fresh := false
	if f.eng == nil {
		if f.lastLSN != 0 {
			return nil, fmt.Errorf("adb: follower has %d records but no engine", f.lastLSN)
		}
		mem := f.cfg
		mem.Durability = DurabilityOff
		f.eng = NewEngine(mem)
		f.eng.actions = f.cfg.Actions
		f.eng.tier = f.tier
		fresh = true
	}
	e := f.eng
	e.store = f.store
	e.durMode = f.cfg.Durability
	if e.durMode == DurabilityOff {
		e.durMode = DurabilityWAL
	}
	e.snapEvery = f.cfg.SnapshotEvery
	if e.snapEvery <= 0 {
		e.snapEvery = 64
	}
	if f.cfg.GroupCommit > 1 {
		if err := f.store.SetGroupCommit(f.cfg.GroupCommit); err != nil {
			return nil, err
		}
	}
	if fresh {
		if err := e.logRecord(&persist.Record{Kind: persist.KindInit, Init: e.initRec}); err != nil {
			return nil, err
		}
	}
	e.mu.Lock()
	e.epoch = f.epoch
	e.mu.Unlock()
	if err := e.BumpEpoch(newEpoch); err != nil {
		return nil, err
	}
	f.promoted = true
	return e, nil
}

// Storage reports the follower's storage footprint: persistence stats
// from its own store plus the retention fields from the replayed engine
// (which has no store attached until promotion, so Engine().Storage()
// alone would report zero persistence fields).
func (f *Follower) Storage() (StorageStats, error) {
	if f.promoted {
		return StorageStats{}, fmt.Errorf("adb: follower was promoted; query the engine")
	}
	st, err := f.store.Stats()
	if err != nil {
		return StorageStats{}, err
	}
	out := StorageStats{
		Segments:      st.Segments,
		WALBytes:      st.WALBytes,
		Snapshots:     st.Snapshots,
		SnapshotBytes: st.SnapshotBytes,
		HeadLSN:       st.HeadLSN,
		LastLSN:       st.LastLSN,
	}
	if f.eng != nil {
		if w := f.eng.retention.HistoryWindow; w > 0 {
			out.HistoryWindow = w
			out.HistoryFloor = f.eng.histFloor.Load()
		}
		out.SpillHistory = f.eng.retention.SpillHistory
	}
	if f.tier != nil {
		out.TierRows, out.TierBytes = f.tier.Stats()
	}
	return out, nil
}

// Close releases the follower's store and cold tier; after promotion the
// engine owns both and Close is a no-op.
func (f *Follower) Close() error {
	if f.promoted {
		return nil
	}
	if f.eng != nil {
		// The engine never had the store attached; close just the store.
		f.eng = nil
	}
	err := f.store.Close()
	if f.tier != nil {
		if terr := f.tier.Close(); err == nil {
			err = terr
		}
		f.tier = nil
	}
	return err
}
