package adb

import (
	"bytes"
	"testing"

	"ptlactive/internal/event"
	"ptlactive/internal/histio"
	"ptlactive/internal/value"
)

// TestDelayedActionReadsFiringTimeValue: under Manual scheduling the
// action runs long after the firing instant; AsOf must return the value
// the item had when the condition held, while the live DB has moved on.
func TestDelayedActionReadsFiringTimeValue(t *testing.T) {
	e := NewEngine(Config{
		Initial:    map[string]value.Value{"price": value.NewFloat(100)},
		TrackItems: []string{"price"},
	})
	var sawLive, sawAsOf float64
	err := e.AddTrigger("spike", `item("price") > 150`, func(ctx *ActionContext) error {
		live, _ := ctx.DB().Get("price")
		sawLive = live.AsFloat()
		asof, ok := ctx.AsOf("price")
		if !ok {
			t.Error("AsOf miss for tracked item")
			return nil
		}
		sawAsOf = asof.AsFloat()
		return nil
	}, WithScheduling(Manual))
	if err != nil {
		t.Fatal(err)
	}
	_ = e.Exec(1, map[string]value.Value{"price": value.NewFloat(160)}) // fires here
	_ = e.Exec(2, map[string]value.Value{"price": value.NewFloat(40)})  // price collapses
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if sawAsOf != 160 {
		t.Errorf("AsOf = %g, want 160 (the firing-instant value)", sawAsOf)
	}
	if sawLive != 40 {
		t.Errorf("live = %g, want 40 (the current value)", sawLive)
	}
}

func TestItemAsOfSemantics(t *testing.T) {
	e := NewEngine(Config{
		Initial:    map[string]value.Value{"a": value.NewInt(1)},
		TrackItems: []string{"a"},
		Start:      10,
	})
	_ = e.Exec(12, map[string]value.Value{"a": value.NewInt(2)})
	_ = e.Exec(15, map[string]value.Value{"a": value.NewInt(3)})
	cases := []struct {
		t    int64
		want int64
		ok   bool
	}{
		{9, 0, false}, // before start
		{10, 1, true},
		{11, 1, true},
		{12, 2, true},
		{14, 2, true},
		{15, 3, true},
		{99, 3, true}, // open interval
	}
	for _, c := range cases {
		v, ok := e.ItemAsOf("a", c.t)
		if ok != c.ok {
			t.Errorf("ItemAsOf(a, %d) ok=%t want %t", c.t, ok, c.ok)
			continue
		}
		if ok && v.AsInt() != c.want {
			t.Errorf("ItemAsOf(a, %d) = %v, want %d", c.t, v, c.want)
		}
	}
	// Untracked items miss.
	if _, ok := e.ItemAsOf("zzz", 12); ok {
		t.Error("untracked item should miss")
	}
	// Tracked-but-absent items capture Null.
	e2 := NewEngine(Config{TrackItems: []string{"ghost"}})
	_ = e2.Exec(1, map[string]value.Value{"other": value.NewInt(1)})
	v, ok := e2.ItemAsOf("ghost", 1)
	if !ok || !v.IsNull() {
		t.Errorf("absent tracked item = %v ok=%t, want Null true", v, ok)
	}
}

func TestCompactPrunesAux(t *testing.T) {
	e := NewEngine(Config{
		Initial:    map[string]value.Value{"a": value.NewInt(0)},
		TrackItems: []string{"a"},
	})
	if err := e.AddTrigger("r", `item("a") > 100`, nil); err != nil {
		t.Fatal(err)
	}
	for ts := int64(1); ts <= 30; ts++ {
		_ = e.Exec(ts, map[string]value.Value{"a": value.NewInt(ts)})
	}
	if e.Compact() == 0 {
		t.Fatal("nothing compacted")
	}
	// Values before the retained horizon are gone; recent ones remain.
	horizon := e.History().At(0).TS
	if _, ok := e.ItemAsOf("a", horizon-5); ok {
		t.Error("pruned interval still readable")
	}
	if v, ok := e.ItemAsOf("a", 30); !ok || v.AsInt() != 30 {
		t.Errorf("recent value lost: %v %t", v, ok)
	}
}

func TestPruneExecutions(t *testing.T) {
	e := NewEngine(Config{Initial: map[string]value.Value{"c": value.NewInt(0)}})
	err := e.AddTrigger("r", `@fire`, func(ctx *ActionContext) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(1); ts <= 5; ts++ {
		_ = e.Emit(ts, event.New("fire"))
	}
	if len(e.Executions("r", 100)) != 5 {
		t.Fatalf("executions = %v", e.Executions("r", 100))
	}
	if d := e.PruneExecutions(4); d != 3 {
		t.Fatalf("dropped %d, want 3", d)
	}
	if len(e.Executions("r", 100)) != 2 {
		t.Fatalf("after prune: %v", e.Executions("r", 100))
	}
	if d := e.PruneExecutions(0); d != 0 {
		t.Fatalf("second prune dropped %d", d)
	}
}

// TestExportHistoryRoundTrip: an engine's exported history re-reads
// losslessly.
func TestExportHistoryRoundTrip(t *testing.T) {
	e := NewEngine(Config{Initial: map[string]value.Value{"a": value.NewInt(1)}})
	_ = e.Exec(1, map[string]value.Value{"a": value.NewInt(2)}, event.New("tick", value.NewString("x")))
	_ = e.Emit(2, event.New("ping"))
	var buf bytes.Buffer
	if err := e.ExportHistory(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := histio.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h := e.History()
	if back.Len() != h.Len() {
		t.Fatalf("len %d != %d", back.Len(), h.Len())
	}
	for i := 0; i < h.Len(); i++ {
		if !h.At(i).DB.Equal(back.At(i).DB) || h.At(i).TS != back.At(i).TS {
			t.Fatalf("state %d differs", i)
		}
	}
}
