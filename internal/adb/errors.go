package adb

import (
	"errors"
	"fmt"
	"time"
)

// Sentinel errors of the fault-isolation layer. Concrete failures are
// carried by the typed errors below; these sentinels are what callers
// match with errors.Is.
var (
	// ErrRuleQuarantined reports a rule whose action is suppressed by the
	// per-rule circuit breaker (Config.MaxRuleFailures); its condition is
	// still maintained and its firings still recorded.
	ErrRuleQuarantined = errors.New("rule quarantined")
	// ErrActionPanic reports a user action that panicked; the panic was
	// recovered by the sandbox and the sweep continued.
	ErrActionPanic = errors.New("action panicked")
	// ErrDegraded reports an engine sealed into read-only degraded mode
	// (after a durability fault or a broken internal invariant): reader
	// accessors keep working on the intact in-memory state, mutating
	// operations are refused.
	ErrDegraded = errors.New("engine degraded (read-only)")
	// ErrBudgetExceeded reports a sweep that exceeded Config.SweepBudget
	// evaluator steps.
	ErrBudgetExceeded = errors.New("sweep evaluation budget exceeded")
	// ErrActionTimeout reports an action that exceeded Config.ActionTimeout.
	ErrActionTimeout = errors.New("action deadline exceeded")
	// ErrInternal reports a broken engine invariant (a must-not-fail encode
	// or capture path that failed anyway).
	ErrInternal = errors.New("internal invariant violated")
)

// ActionPanicError is the sandboxed form of a panic recovered from a user
// action: the recovered value plus the goroutine stack at the panic site.
type ActionPanicError struct {
	Rule  string
	Value any
	Stack []byte
}

// Error describes the panic.
func (e *ActionPanicError) Error() string {
	return fmt.Sprintf("adb: action of %s: %v: %v", e.Rule, ErrActionPanic, e.Value)
}

// Unwrap yields ErrActionPanic for errors.Is.
func (e *ActionPanicError) Unwrap() error { return ErrActionPanic }

// QuarantineError reports a firing whose action was suppressed because the
// rule is quarantined; Cause is the failure that tripped the breaker.
type QuarantineError struct {
	Rule     string
	Failures int
	Cause    error
}

// Error describes the suppression.
func (e *QuarantineError) Error() string {
	return fmt.Sprintf("adb: rule %s: %v after %d consecutive action failures", e.Rule, ErrRuleQuarantined, e.Failures)
}

// Unwrap yields ErrRuleQuarantined and the tripping failure for
// errors.Is/As.
func (e *QuarantineError) Unwrap() []error {
	if e.Cause == nil {
		return []error{ErrRuleQuarantined}
	}
	return []error{ErrRuleQuarantined, e.Cause}
}

// DegradedError seals the engine read-only; Cause is the durability fault
// or invariant violation that forced the seal.
type DegradedError struct {
	Cause error
}

// Error describes the seal.
func (e *DegradedError) Error() string {
	return fmt.Sprintf("adb: %v: %v", ErrDegraded, e.Cause)
}

// Unwrap yields ErrDegraded and the sealing cause for errors.Is/As.
func (e *DegradedError) Unwrap() []error { return []error{ErrDegraded, e.Cause} }

// BudgetError attributes an exceeded sweep budget to the rule whose
// evaluation crossed it.
type BudgetError struct {
	Rule   string
	Steps  int64
	Budget int64
}

// Error describes the overrun.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("adb: rule %s: %v (%d steps, budget %d)", e.Rule, ErrBudgetExceeded, e.Steps, e.Budget)
}

// Unwrap yields ErrBudgetExceeded for errors.Is.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// TimeoutError attributes an exceeded action deadline to its rule.
type TimeoutError struct {
	Rule    string
	Timeout time.Duration
}

// Error describes the timeout.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("adb: action of %s: %v (limit %v)", e.Rule, ErrActionTimeout, e.Timeout)
}

// Unwrap yields ErrActionTimeout for errors.Is.
func (e *TimeoutError) Unwrap() error { return ErrActionTimeout }

// InternalError reports a failure on a path the engine's invariants say
// cannot fail (aux capture, initial-database encode); it wraps the cause.
type InternalError struct {
	Op  string
	Err error
}

// Error describes the violation.
func (e *InternalError) Error() string {
	return fmt.Sprintf("adb: %s: %v: %v", e.Op, ErrInternal, e.Err)
}

// Unwrap yields ErrInternal and the cause for errors.Is/As.
func (e *InternalError) Unwrap() []error { return []error{ErrInternal, e.Err} }
