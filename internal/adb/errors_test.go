package adb

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestErrorTaxonomy pins the errors.Is/As contract of every typed error
// in the fault-isolation layer: each unwraps to its sentinel, and the
// wrappers that carry a cause expose it too.
func TestErrorTaxonomy(t *testing.T) {
	cause := errors.New("root cause")

	panicErr := &ActionPanicError{Rule: "r1", Value: "boom", Stack: []byte("stack")}
	if !errors.Is(panicErr, ErrActionPanic) {
		t.Error("ActionPanicError does not match ErrActionPanic")
	}
	var ap *ActionPanicError
	if !errors.As(error(panicErr), &ap) || ap.Rule != "r1" || ap.Value != "boom" {
		t.Errorf("errors.As lost ActionPanicError fields: %+v", ap)
	}

	q := &QuarantineError{Rule: "r2", Failures: 3, Cause: cause}
	if !errors.Is(q, ErrRuleQuarantined) {
		t.Error("QuarantineError does not match ErrRuleQuarantined")
	}
	if !errors.Is(q, cause) {
		t.Error("QuarantineError does not expose its cause")
	}
	if qNil := (&QuarantineError{Rule: "r2", Failures: 3}); !errors.Is(qNil, ErrRuleQuarantined) {
		t.Error("QuarantineError with nil cause does not match ErrRuleQuarantined")
	}

	d := &DegradedError{Cause: cause}
	if !errors.Is(d, ErrDegraded) {
		t.Error("DegradedError does not match ErrDegraded")
	}
	if !errors.Is(d, cause) {
		t.Error("DegradedError does not expose its cause")
	}
	var de *DegradedError
	if !errors.As(error(d), &de) || de.Cause != cause {
		t.Errorf("errors.As lost DegradedError cause: %+v", de)
	}

	b := &BudgetError{Rule: "r3", Steps: 120, Budget: 100}
	if !errors.Is(b, ErrBudgetExceeded) {
		t.Error("BudgetError does not match ErrBudgetExceeded")
	}
	var be *BudgetError
	if !errors.As(error(b), &be) || be.Rule != "r3" {
		t.Errorf("errors.As lost BudgetError attribution: %+v", be)
	}

	to := &TimeoutError{Rule: "r4", Timeout: 50 * time.Millisecond}
	if !errors.Is(to, ErrActionTimeout) {
		t.Error("TimeoutError does not match ErrActionTimeout")
	}

	in := &InternalError{Op: "aux capture a", Err: cause}
	if !errors.Is(in, ErrInternal) {
		t.Error("InternalError does not match ErrInternal")
	}
	if !errors.Is(in, cause) {
		t.Error("InternalError does not expose its cause")
	}

	// A degraded seal around an internal fault matches every layer.
	sealed := &DegradedError{Cause: in}
	for _, want := range []error{ErrDegraded, ErrInternal, cause} {
		if !errors.Is(sealed, want) {
			t.Errorf("sealed internal fault does not match %v", want)
		}
	}

	// The sentinels stay distinct from each other.
	sentinels := []error{ErrRuleQuarantined, ErrActionPanic, ErrDegraded, ErrBudgetExceeded, ErrActionTimeout, ErrInternal}
	for i, a := range sentinels {
		for j, bb := range sentinels {
			if i != j && errors.Is(a, bb) {
				t.Errorf("sentinel %v matches unrelated sentinel %v", a, bb)
			}
		}
	}
}

// TestErrorMessagesCarryAttribution pins that rendered errors name the
// offending rule — operators read these from logs.
func TestErrorMessagesCarryAttribution(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{&ActionPanicError{Rule: "alpha", Value: 1}, "alpha"},
		{&QuarantineError{Rule: "beta", Failures: 2, Cause: errors.New("x")}, "beta"},
		{&BudgetError{Rule: "gamma", Steps: 9, Budget: 5}, "gamma"},
		{&TimeoutError{Rule: "delta", Timeout: time.Second}, "delta"},
		{&InternalError{Op: "encode initial db", Err: errors.New("x")}, "encode initial db"},
		{&DegradedError{Cause: errors.New("disk gone")}, "disk gone"},
	}
	for _, c := range cases {
		if msg := c.err.Error(); !strings.Contains(msg, c.want) {
			t.Errorf("%T message %q does not mention %q", c.err, msg, c.want)
		}
	}
}
