// Rule fault isolation and resource governance: the action sandbox
// (recovered panics, deadlines), the per-rule circuit breaker and the
// rule-health surface. A misbehaving action is an isolated per-rule fault,
// never a sweep failure: the firing semantics of Theorem 1 — every other
// rule fires iff its PTL condition holds — are unaffected, because
// conditions are evaluated before actions run and faults never reach the
// temporal component.
package adb

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"

	"ptlactive/internal/persist"
)

// RuleFault is one isolated action failure (or suppression), reported to
// Config.OnRuleFault as it happens. Time is the firing instant of the
// affected rule.
type RuleFault struct {
	Rule string
	Time int64
	Err  error
}

// RuleHealth is the inspection view of a rule's failure record.
type RuleHealth struct {
	Rule string
	// Quarantined reports whether the circuit breaker has tripped: the
	// condition is still incrementally maintained and firings recorded,
	// but the action is suppressed until ReviveRule.
	Quarantined bool
	// ConsecutiveFailures is the current run of action failures without an
	// intervening success; Config.MaxRuleFailures of these trip the breaker.
	ConsecutiveFailures int
	// TotalFailures counts every action failure over the rule's lifetime.
	TotalFailures int
	// LastError is the most recent action failure (nil if none ever).
	LastError error
	// LastFailureAt is the firing instant of the most recent failure.
	LastFailureAt int64
}

// ruleHealth is the engine-internal failure record, guarded by Engine.mu.
type ruleHealth struct {
	consecutive int
	total       int
	quarantined bool
	lastErr     error
	lastAt      int64
}

// RuleHealth returns the failure record of a registered rule; ok is false
// for unknown names. Safe for concurrent use.
func (e *Engine) RuleHealth(name string) (RuleHealth, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	r, ok := e.index[name]
	if !ok {
		return RuleHealth{}, false
	}
	return RuleHealth{
		Rule:                r.name,
		Quarantined:         r.health.quarantined,
		ConsecutiveFailures: r.health.consecutive,
		TotalFailures:       r.health.total,
		LastError:           r.health.lastErr,
		LastFailureAt:       r.health.lastAt,
	}, true
}

// QuarantinedRules returns the quarantined rules in registration order.
// Safe for concurrent use.
func (e *Engine) QuarantinedRules() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []string
	for _, r := range e.rules {
		if r.health.quarantined {
			out = append(out, r.name)
		}
	}
	return out
}

// ReviveRule re-arms a rule: the quarantine is lifted and the consecutive
// failure count reset (the lifetime total and last error are kept for
// forensics). Reviving a healthy rule just resets its failure run.
//
// Revival re-enables suppressed actions — a behavior-shaping mutation —
// so on a durable engine it is written to the WAL and replayed at the
// same point during recovery, and a degraded engine refuses it like any
// other mutator.
func (e *Engine) ReviveRule(name string) error {
	if err := e.healthy(); err != nil {
		return err
	}
	e.mu.Lock()
	r, ok := e.index[name]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("adb: unknown rule %q", name)
	}
	r.health.quarantined = false
	r.health.consecutive = 0
	e.mu.Unlock()
	return e.logRecord(&persist.Record{Kind: persist.KindRevive, Name: name})
}

// isQuarantined reads the breaker state under the lock (ReviveRule may be
// called concurrently with a sweep's reader accessors).
func (e *Engine) isQuarantined(r *rule) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return r.health.quarantined
}

// recordFailure notes one isolated action failure and trips the circuit
// breaker after MaxRuleFailures consecutive ones.
func (e *Engine) recordFailure(r *rule, at int64, err error) {
	e.mu.Lock()
	r.health.consecutive++
	r.health.total++
	r.health.lastErr = err
	r.health.lastAt = at
	tripped := false
	if e.maxFailures > 0 && r.health.consecutive >= e.maxFailures && !r.health.quarantined {
		r.health.quarantined = true
		tripped = true
	}
	failures := r.health.consecutive
	e.mu.Unlock()
	e.reportFault(r.name, at, err)
	if tripped {
		e.reportFault(r.name, at, &QuarantineError{Rule: r.name, Failures: failures, Cause: err})
	}
}

// recordSuccess ends the rule's failure run.
func (e *Engine) recordSuccess(r *rule) {
	e.mu.Lock()
	r.health.consecutive = 0
	e.mu.Unlock()
}

// reportFault delivers one fault to the observer callback.
func (e *Engine) reportFault(rule string, at int64, err error) {
	if e.onRuleFault != nil {
		e.onRuleFault(RuleFault{Rule: rule, Time: at, Err: err})
	}
}

// runAction executes one action inside the sandbox: panics become typed
// errors, and with Config.ActionTimeout set the action runs under a
// deadline. A timed-out action cannot be killed, but it is neutered: its
// ActionContext expires, so further engine mutations through it are
// refused, and the expiry handshake (the context mutex) guarantees no
// mutation is in flight when control returns to the sweep.
func (e *Engine) runAction(r *rule, f Firing) error {
	ctx := &ActionContext{engine: e, Rule: f.Rule, Binding: f.Binding, FiredAt: f.Time, ctx: context.Background()}
	if e.actionTimeout <= 0 {
		return e.invokeAction(r, ctx)
	}
	cctx, cancel := context.WithTimeout(context.Background(), e.actionTimeout)
	defer cancel()
	ctx.ctx = cctx
	done := make(chan error, 1)
	go func() { done <- e.invokeAction(r, ctx) }()
	select {
	case err := <-done:
		return err
	case <-cctx.Done():
		// Prefer a completion that raced the deadline.
		select {
		case err := <-done:
			return err
		default:
		}
		ctx.expire()
		return &TimeoutError{Rule: r.name, Timeout: e.actionTimeout}
	}
}

// invokeAction is the recover wrapper around the user action.
func (e *Engine) invokeAction(r *rule, ctx *ActionContext) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &ActionPanicError{Rule: r.name, Value: p, Stack: debug.Stack()}
		}
	}()
	return r.action(ctx)
}

// actionGate is the expiry handshake embedded in ActionContext. Engine
// mutations by the action hold the mutex; the timeout path marks expiry
// under the same mutex, so once expire returns, no mutation is in flight
// and none can start.
type actionGate struct {
	mu      sync.Mutex
	expired bool
}

// expire marks the gate, waiting out any in-flight mutation.
func (c *ActionContext) expire() {
	c.gate.mu.Lock()
	c.gate.expired = true
	c.gate.mu.Unlock()
}
