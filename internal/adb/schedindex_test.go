package adb

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ptlactive/internal/value"
)

// indexCondPool extends the parallel-test condition mix with event-free
// database readers — the shapes the read-set index actually refines
// (quiescent memo replay) — alongside gated and exact ones.
var indexCondPool = []string{
	`item("a") > %d`,
	`item("a") + item("b") > %d`,
	`[x <- item("a")] (x > %d and item("b") < 55)`,
	`@ev%d and item("a") > 2`,
	`@ev%d and (item("a") > 3 or item("b") > 3)`,
	`not @ev%d and item("a") > 1`,
	`@ev%d or item("b") > 4`,
	`previously item("a") > %d`,
	`@ev%d since item("b") > 2`,
	`@pay%d(U) and U > 3`,
}

// randomIndexParams mirrors randomEngineParams but draws from
// indexCondPool, so runs are reproducible per seed across the
// index-enabled and index-disabled engines.
func randomIndexParams(seed int64, rules int, withConstraints bool) engineParams {
	rng := rand.New(rand.NewSource(seed))
	p := engineParams{
		a:               int64(rng.Intn(5)),
		b:               int64(rng.Intn(5)),
		withConstraints: withConstraints,
	}
	scheds := []Scheduling{Eager, Relevant, Relevant, Relevant, Manual}
	for i := 0; i < rules; i++ {
		p.conds = append(p.conds, fmt.Sprintf(indexCondPool[rng.Intn(len(indexCondPool))], i))
		p.scheds = append(p.scheds, scheds[rng.Intn(len(scheds))])
	}
	return p
}

// ruleCursors snapshots every rule's evaluator position.
func ruleCursors(e *Engine) map[string]int {
	out := map[string]int{}
	for _, r := range e.rules {
		out[r.name] = r.cursor
	}
	return out
}

// TestIndexedSweepEquivalence is the scheduling-index determinism
// property: over random rule sets and histories, the read-set indexed
// engine produces the identical firing sequence, final database, clock,
// cursors and execution log as the coarse Section-8 filter, at one worker
// and at four. EvalSteps is intentionally NOT compared — skipping
// evaluations is the point of the index.
func TestIndexedSweepEquivalence(t *testing.T) {
	trials := 12
	states := 150
	if testing.Short() {
		trials, states = 4, 60
	}
	for trial := 0; trial < trials; trial++ {
		seed := int64(7000 + trial)
		rules := 4 + trial%8
		withConstraints := trial%2 == 0
		p := randomIndexParams(seed, rules, withConstraints)
		mk := func(workers int, noIndex bool) *Engine {
			cfg := p.config(workers)
			cfg.DisableReadSetIndex = noIndex
			e := NewEngine(cfg)
			p.register(t, e)
			driveRandomHistory(t, e, seed*31, rules, states)
			return e
		}
		ref := mk(1, true)
		for _, workers := range []int{1, 4} {
			idx := mk(workers, false)
			if sf, pf := ref.Firings(), idx.Firings(); !reflect.DeepEqual(sf, pf) {
				t.Fatalf("trial %d workers=%d: firings diverge:\n coarse (%d): %v\n indexed (%d): %v",
					trial, workers, len(sf), sf, len(pf), pf)
			}
			if ref.Now() != idx.Now() {
				t.Fatalf("trial %d workers=%d: clocks diverge", trial, workers)
			}
			if !ref.DB().Equal(idx.DB()) {
				t.Fatalf("trial %d workers=%d: databases diverge", trial, workers)
			}
			if rc, ic := ruleCursors(ref), ruleCursors(idx); !reflect.DeepEqual(rc, ic) {
				t.Fatalf("trial %d workers=%d: cursors diverge: %v vs %v", trial, workers, rc, ic)
			}
			for i := 0; i < rules; i++ {
				name := fmt.Sprintf("r%03d", i)
				if re, ie := ref.Executions(name, ref.Now()+1), idx.Executions(name, idx.Now()+1); !reflect.DeepEqual(re, ie) {
					t.Fatalf("trial %d workers=%d: executions diverge for %s", trial, workers, name)
				}
			}
		}
	}
}

// TestIndexedSweepSkipsSteps pins the perf claim behind the equivalence
// property: on a sparse-touch workload the indexed engine spends strictly
// fewer evaluator steps than the coarse filter.
func TestIndexedSweepSkipsSteps(t *testing.T) {
	run := func(noIndex bool) (int64, []Firing) {
		initial := map[string]value.Value{}
		for i := 0; i < 40; i++ {
			initial[fmt.Sprintf("i%d", i)] = value.NewInt(0)
		}
		e := NewEngine(Config{Initial: initial, DisableReadSetIndex: noIndex})
		for i := 0; i < 40; i++ {
			cond := fmt.Sprintf(`item("i%d") > 10`, i)
			if err := e.AddTrigger(fmt.Sprintf("r%d", i), cond, nil, WithScheduling(Relevant)); err != nil {
				t.Fatal(err)
			}
		}
		for c := 0; c < 30; c++ {
			upd := map[string]value.Value{
				fmt.Sprintf("i%d", c%40): value.NewInt(int64(5 + 10*(c%2))),
			}
			if err := e.Exec(int64(c+1), upd); err != nil {
				t.Fatal(err)
			}
		}
		return e.EvalSteps(), e.Firings()
	}
	idxSteps, idxF := run(false)
	coarseSteps, coarseF := run(true)
	if !reflect.DeepEqual(idxF, coarseF) {
		t.Fatalf("firings diverge: %v vs %v", idxF, coarseF)
	}
	if idxSteps >= coarseSteps {
		t.Fatalf("index did not skip work: %d steps vs coarse %d", idxSteps, coarseSteps)
	}
}

// TestQuiescentMemoReplayFirings checks the memo actually replays firing
// outcomes: a quiescent rule that fired keeps firing (with the new
// timestamps) across commits that never touch its read set, identically
// to re-evaluation.
func TestQuiescentMemoReplayFirings(t *testing.T) {
	mk := func(noIndex bool) *Engine {
		e := NewEngine(Config{
			Initial: map[string]value.Value{
				"a": value.NewInt(0), "other": value.NewInt(0),
			},
			DisableReadSetIndex: noIndex,
		})
		if err := e.AddTrigger("watch", `item("a") > 10`, nil, WithScheduling(Relevant)); err != nil {
			t.Fatal(err)
		}
		// Fire the condition once, then commit only to the unrelated item.
		if err := e.Exec(1, map[string]value.Value{"a": value.NewInt(20)}); err != nil {
			t.Fatal(err)
		}
		for ts := int64(2); ts <= 6; ts++ {
			if err := e.Exec(ts, map[string]value.Value{"other": value.NewInt(ts)}); err != nil {
				t.Fatal(err)
			}
		}
		// Drop it back below threshold; replay must stop after this commit.
		if err := e.Exec(7, map[string]value.Value{"a": value.NewInt(0)}); err != nil {
			t.Fatal(err)
		}
		for ts := int64(8); ts <= 10; ts++ {
			if err := e.Exec(ts, map[string]value.Value{"other": value.NewInt(ts)}); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	idx, coarse := mk(false), mk(true)
	if !reflect.DeepEqual(idx.Firings(), coarse.Firings()) {
		t.Fatalf("firings diverge:\n indexed: %v\n coarse:  %v", idx.Firings(), coarse.Firings())
	}
	// One firing per commit while a > 10: states 1..6.
	if got := len(idx.Firings()); got != 6 {
		t.Fatalf("want 6 firings (states 1..6), got %d: %v", got, idx.Firings())
	}
	if idx.EvalSteps() >= coarse.EvalSteps() {
		t.Fatalf("memo replay did not save steps: %d vs %d", idx.EvalSteps(), coarse.EvalSteps())
	}
}
