package adb

import (
	"sort"
	"testing"

	"ptlactive/internal/history"
	"ptlactive/internal/value"
)

// classEngine builds an engine with items a, b, p; a pure query function
// "total" declaring the footprint {a, b}; and "opaque", registered
// without purity or a footprint.
func classEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(Config{Initial: map[string]value.Value{
		"a": value.NewInt(1), "b": value.NewInt(2), "p": value.NewInt(3),
	}})
	if err := e.Registry().RegisterPure("total", 0, []string{"a", "b"}, func(st history.SystemState, args []value.Value) (value.Value, error) {
		av, _ := st.DB.Get("a")
		bv, _ := st.DB.Get("b")
		return value.NewInt(av.AsInt() + bv.AsInt()), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Registry().Register("opaque", 0, func(st history.SystemState, args []value.Value) (value.Value, error) {
		return value.NewInt(7), nil
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

// addRule registers the condition under Relevant scheduling and returns
// the compiled rule for white-box inspection.
func addRule(t *testing.T, e *Engine, name, cond string, opts ...RuleOption) *rule {
	t.Helper()
	if len(opts) == 0 {
		opts = []RuleOption{WithScheduling(Relevant)}
	}
	if err := e.AddTrigger(name, cond, nil, opts...); err != nil {
		t.Fatalf("AddTrigger(%s): %v", cond, err)
	}
	return e.index[name]
}

func itemList(rs readSet) []string {
	var out []string
	for k := range rs.items {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestReadSetExtraction(t *testing.T) {
	cases := []struct {
		cond       string
		items      []string
		analyzable bool
		timeDep    bool
	}{
		// Plain item comparisons.
		{`item("a") > 2`, []string{"a"}, true, false},
		{`item("a") + item("b") > 6`, []string{"a", "b"}, true, false},
		// The [x <- q] assignment binds x to a query result; the footprint
		// must include items read inside the assignment term and the body.
		{`[x <- item("a")] (x > 0 and item("b") < 100)`, []string{"a", "b"}, true, false},
		// Aggregate subformulas are walked too: the aggregated term and
		// both trigger/reset subformulas contribute.
		{`sum(item("a"); @reset; @tick and item("b") > 0) > 5`, []string{"a", "b"}, true, false},
		// A registered pure function contributes its declared footprint.
		{`total() > 2`, []string{"a", "b"}, true, false},
		// time() is a timestamp dependency, not a database read.
		{`time() > 10 and item("p") > 0`, []string{"p"}, true, true},
		// An unregistered-footprint function poisons analyzability; being
		// impure it also forces a time dependency.
		{`opaque() > 0`, nil, false, true},
	}
	for _, tc := range cases {
		e := classEngine(t)
		r := addRule(t, e, "r", tc.cond)
		if got := itemList(r.rs); !equalStrings(got, tc.items) {
			t.Errorf("%s: items = %v, want %v", tc.cond, got, tc.items)
		}
		if r.rs.analyzable != tc.analyzable {
			t.Errorf("%s: analyzable = %v, want %v", tc.cond, r.rs.analyzable, tc.analyzable)
		}
		if r.rs.timeDep != tc.timeDep {
			t.Errorf("%s: timeDep = %v, want %v", tc.cond, r.rs.timeDep, tc.timeDep)
		}
	}
}

func TestReadSetExecutedAtoms(t *testing.T) {
	e := classEngine(t)
	r0 := addRule(t, e, "r0", `item("a") > 0`)
	r := addRule(t, e, "r", `executed(r0, T) and time() > T + 10`)
	if !r.rs.execRules["r0"] {
		t.Fatalf("executed() target not extracted: %v", r.rs.execRules)
	}
	// executed() is a temporal predicate: the rule must stay classExact so
	// every woken state is really evaluated.
	if r.class != classExact {
		t.Fatalf("executed() rule classified %d, want classExact", r.class)
	}
	_ = r0
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		cond string
		opts []RuleOption
		want ruleClass
	}{
		// Event-free database readers with a full footprint are quiescent.
		{"quiescent", `item("a") > 2`, nil, classQuiescent},
		{"quiescentAssign", `[x <- item("a")] x > 0`, nil, classQuiescent},
		{"quiescentFunc", `total() > 2`, nil, classQuiescent},
		// Conjunction with an event atom: provably false without the event.
		{"gated", `@ev and item("a") > 2`, nil, classGated},
		{"gatedNested", `(@ev or @ev2) and item("a") > 2`, nil, classGated},
		// not @ev is TRUE on event-free states — must not be gated.
		{"negatedEvent", `not @ev and item("a") > 2`, nil, classExact},
		// Disjunction can hold without the event.
		{"orEscape", `@ev or item("a") > 5`, nil, classExact},
		// Temporal operators need every woken state.
		{"temporal", `@ev since item("a") > 4`, nil, classExact},
		{"temporalPreviously", `previously item("a") > 3`, nil, classExact},
		// Time-dependent conditions can change without a commit.
		{"timeDep", `time() > 10 and item("a") > 0`, nil, classExact},
		// Unanalyzable footprint.
		{"opaque", `opaque() > 0`, nil, classExact},
		// Only Relevant scheduling is refined.
		{"eager", `item("a") > 2`, []RuleOption{WithScheduling(Eager)}, classExact},
		{"manual", `item("a") > 2`, []RuleOption{WithScheduling(Manual)}, classExact},
	}
	for _, tc := range cases {
		e := classEngine(t)
		r := addRule(t, e, tc.name, tc.cond, tc.opts...)
		if r.class != tc.want {
			t.Errorf("%s (%s): class = %d, want %d", tc.name, tc.cond, r.class, tc.want)
		}
	}
}

func TestClassifyConstraint(t *testing.T) {
	e := classEngine(t)
	if err := e.AddConstraint("c", `not (item("a") > 50)`); err != nil {
		t.Fatal(err)
	}
	if r := e.index["c"]; r.class != classExact {
		t.Fatalf("constraint classified %d, want classExact", r.class)
	}
}

func TestClassifyDisabledIndex(t *testing.T) {
	e := NewEngine(Config{
		Initial:             map[string]value.Value{"a": value.NewInt(1)},
		DisableReadSetIndex: true,
	})
	r := addRule(t, e, "r", `item("a") > 2`)
	if r.class != classExact {
		t.Fatalf("DisableReadSetIndex engine classified %d, want classExact", r.class)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
