package adb

import (
	"fmt"
	"math/rand"
	"testing"

	"ptlactive/internal/event"
	"ptlactive/internal/ptlgen"
	"ptlactive/internal/value"
)

// firingSet canonicalizes firings as "rule@time" strings, ignoring
// recognition order (scheduling modes may delay recognition).
func firingSet(fs []Firing) map[string]int {
	out := map[string]int{}
	for _, f := range fs {
		out[fmt.Sprintf("%s@%d", f.Rule, f.Time)]++
	}
	return out
}

// TestSchedulingEquivalenceTemporal: for temporal rules, Eager, Relevant
// and Manual+Flush recognize exactly the same firing set — delayed, never
// lost (Section 8's guarantee).
func TestSchedulingEquivalenceTemporal(t *testing.T) {
	conds := []string{
		`@e0 since @e1(1)`,
		`previously <= 5 (@e2(1, 2) and item("a") > 3)`,
		`(not @e0) since (@e1(0) and lasttime item("b") >= 0)`,
	}
	for seed := 0; seed < 30; seed++ {
		rng := rand.New(rand.NewSource(int64(4000 + seed)))
		h := ptlgen.History(rng, 40)
		results := make([]map[string]int, 0, 3)
		for _, sched := range []Scheduling{Eager, Relevant, Manual} {
			e := NewEngine(Config{Initial: map[string]value.Value{
				"a": value.NewInt(5), "b": value.NewInt(0), "c": value.NewInt(0),
			}})
			for i, c := range conds {
				if err := e.AddTrigger(fmt.Sprintf("r%d", i), c, nil, WithScheduling(sched)); err != nil {
					t.Fatal(err)
				}
			}
			// Replay the generated history through the engine.
			for i := 1; i < h.Len(); i++ {
				st := h.At(i)
				evs := st.Events.Events()
				if st.Events.CommitCount() > 0 {
					tx := e.Begin()
					for _, name := range st.DB.Items() {
						v, _ := st.DB.Get(name)
						tx.Set(name, v)
					}
					for _, ev := range evs {
						if ev.Name != event.TransactionCommit {
							tx.Emit(ev)
						}
					}
					if err := tx.Commit(st.TS); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := e.Emit(st.TS, evs...); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			results = append(results, firingSet(e.Firings()))
		}
		for m := 1; m < len(results); m++ {
			if len(results[m]) != len(results[0]) {
				t.Fatalf("seed %d: scheduling %d firing set size differs: %v vs %v",
					seed, m, results[0], results[m])
			}
			for k, v := range results[0] {
				if results[m][k] != v {
					t.Fatalf("seed %d: scheduling %d differs at %s: %d vs %d",
						seed, m, k, v, results[m][k])
				}
			}
		}
	}
}

// TestCompact: compaction drops fully-processed states, preserves firing
// indices as absolute values, and does not disturb subsequent evaluation.
func TestCompact(t *testing.T) {
	e := NewEngine(Config{Initial: map[string]value.Value{"a": value.NewInt(0)}})
	if err := e.AddTrigger("r", `previously <= 3 (item("a") > 8)`, nil); err != nil {
		t.Fatal(err)
	}
	for ts := int64(1); ts <= 20; ts++ {
		v := int64(ts % 10)
		if err := e.Exec(ts, map[string]value.Value{"a": value.NewInt(v)}); err != nil {
			t.Fatal(err)
		}
	}
	before := e.History().Len()
	dropped := e.Compact()
	if dropped == 0 {
		t.Fatal("nothing compacted")
	}
	if e.History().Len() != before-dropped {
		t.Fatalf("history len %d after dropping %d from %d", e.History().Len(), dropped, before)
	}
	if e.BaseIndex() != dropped {
		t.Fatalf("BaseIndex = %d, want %d", e.BaseIndex(), dropped)
	}
	preFirings := len(e.Firings())
	// Continue running; firings must keep absolute indices and the rule
	// must still fire on the bounded condition.
	for ts := int64(21); ts <= 40; ts++ {
		v := int64(ts % 10)
		if err := e.Exec(ts, map[string]value.Value{"a": value.NewInt(v)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(e.Firings()) <= preFirings {
		t.Fatal("no firings after compaction")
	}
	last := e.Firings()[len(e.Firings())-1]
	if last.StateIndex < e.BaseIndex() {
		t.Fatalf("firing index %d below base %d", last.StateIndex, e.BaseIndex())
	}
	// Second compaction also works.
	if e.Compact() == 0 {
		t.Fatal("second compaction dropped nothing")
	}
	// An equivalent engine without compaction fires at the same times.
	ref := NewEngine(Config{Initial: map[string]value.Value{"a": value.NewInt(0)}})
	_ = ref.AddTrigger("r", `previously <= 3 (item("a") > 8)`, nil)
	for ts := int64(1); ts <= 40; ts++ {
		v := int64(ts % 10)
		if err := ref.Exec(ts, map[string]value.Value{"a": value.NewInt(v)}); err != nil {
			t.Fatal(err)
		}
	}
	a, b := firingSet(e.Firings()), firingSet(ref.Firings())
	if len(a) != len(b) {
		t.Fatalf("compacted engine diverged: %v vs %v", a, b)
	}
	for k, v := range b {
		if a[k] != v {
			t.Fatalf("compacted engine diverged at %s", k)
		}
	}
}

// TestCompactWithLaggingRule: a Manual rule pins the compaction horizon.
func TestCompactWithLaggingRule(t *testing.T) {
	e := NewEngine(Config{Initial: map[string]value.Value{"a": value.NewInt(0)}})
	if err := e.AddTrigger("lag", `previously item("a") = 7`, nil, WithScheduling(Manual)); err != nil {
		t.Fatal(err)
	}
	for ts := int64(1); ts <= 10; ts++ {
		if err := e.Exec(ts, map[string]value.Value{"a": value.NewInt(ts % 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if d := e.Compact(); d != 0 {
		t.Fatalf("compaction dropped %d states a manual rule still needs", d)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if e.Compact() == 0 {
		t.Fatal("after flush the prefix should be reclaimable")
	}
	// The lagging rule recognized a=7 (at ts 7) despite never being
	// evaluated before the flush.
	if len(e.Firings()) == 0 {
		t.Fatal("manual rule lost its firing")
	}
}

// TestFastPathMatchesGeneralInEngine: the engine's automatic fast-path
// selection for decomposable rules never changes observable behavior.
func TestFastPathMatchesGeneralInEngine(t *testing.T) {
	run := func(disable bool) map[string]int {
		e := NewEngine(Config{
			Initial:         map[string]value.Value{"a": value.NewInt(0)},
			DisableFastPath: disable,
		})
		conds := []string{
			`@e0 since @e1(1)`,
			`previously <= 4 (item("a") > 6)`,
			`item("a") > 3 and lasttime item("a") <= 3`,
		}
		for i, c := range conds {
			if err := e.AddTrigger(fmt.Sprintf("r%d", i), c, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.AddConstraint("cap", `item("a") <= 9`); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(77))
		for ts := int64(1); ts <= 60; ts++ {
			if rng.Intn(2) == 0 {
				var evs []event.Event
				if rng.Intn(2) == 0 {
					evs = append(evs, event.New("e0"))
				} else {
					evs = append(evs, event.New("e1", value.NewInt(1)))
				}
				if err := e.Emit(ts, evs...); err != nil {
					t.Fatal(err)
				}
				continue
			}
			// Some commits violate the constraint and abort; both engines
			// must agree on which.
			_ = e.Exec(ts, map[string]value.Value{"a": value.NewInt(int64(rng.Intn(12)))})
		}
		return firingSet(e.Firings())
	}
	fast, general := run(false), run(true)
	if len(fast) != len(general) {
		t.Fatalf("firing sets differ: fast=%v general=%v", fast, general)
	}
	for k, v := range general {
		if fast[k] != v {
			t.Fatalf("fast path diverged at %s", k)
		}
	}
}
