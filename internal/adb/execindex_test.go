package adb

import (
	"fmt"
	"reflect"
	"testing"

	"ptlactive/internal/event"
	"ptlactive/internal/ptl"
	"ptlactive/internal/value"
)

// TestExecutionsIndexPerRule is the regression test for the per-rule
// execution index: interleaved executions of several rules come back
// per-rule, in recording order, matching a scan of the full log — and
// the index survives a prune-triggered rebuild.
func TestExecutionsIndexPerRule(t *testing.T) {
	e := NewEngine(Config{Initial: map[string]value.Value{"c": value.NewInt(0)}})
	for i := 0; i < 3; i++ {
		err := e.AddTrigger(fmt.Sprintf("r%d", i), fmt.Sprintf("@fire%d", i),
			func(ctx *ActionContext) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
	}
	// Interleave: r0, r1, r0, r2, r1, r0 ...
	order := []int{0, 1, 0, 2, 1, 0, 2, 2, 1, 0}
	for i, ri := range order {
		if err := e.Emit(int64(i+1), event.New(fmt.Sprintf("fire%d", ri))); err != nil {
			t.Fatal(err)
		}
	}

	// Reference: filter the raw log (the pre-index semantics).
	scan := func(rule string, before int64) []ptl.Execution {
		var out []ptl.Execution
		for _, ex := range e.execs {
			if ex.Rule == rule && ex.Time < before {
				out = append(out, ex)
			}
		}
		return out
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("r%d", i)
		for _, before := range []int64{0, 3, 7, 100} {
			got := e.Executions(name, before)
			want := scan(name, before)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("Executions(%s, %d) = %v, want %v", name, before, got, want)
			}
		}
	}
	if n := len(e.Executions("r0", 100)); n != 4 {
		t.Fatalf("r0 executions = %d, want 4", n)
	}

	// Prune rebuilds the index; lookups must agree with the shrunk log.
	if d := e.PruneExecutions(6); d == 0 {
		t.Fatal("prune dropped nothing")
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("r%d", i)
		if got, want := e.Executions(name, 100), scan(name, 100); !reflect.DeepEqual(got, want) {
			t.Fatalf("after prune: Executions(%s) = %v, want %v", name, got, want)
		}
	}
	if n := len(e.Executions("r0", 100)); n != 2 {
		t.Fatalf("after prune: r0 executions = %d, want 2", n)
	}
	if n := len(e.Executions("nosuch", 100)); n != 0 {
		t.Fatalf("unknown rule returned %d executions", n)
	}
}
