package adb

import (
	"fmt"
	"testing"

	"ptlactive/internal/value"
)

// BenchmarkCommit measures the engine-side cost of one transaction on the
// hot commit path — event-set assembly, constraint check, history append,
// sweep — with a typical small rule table. Run with -benchmem: the
// per-commit allocation count is what the pooled scratch and the
// map-free small event sets are holding down.
func BenchmarkCommit(b *testing.B) {
	e := NewEngine(Config{Initial: map[string]value.Value{
		"a": value.NewInt(0), "b": value.NewInt(0), "c": value.NewInt(0),
	}})
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("watch%d", i)
		item := []string{"a", "b", "c"}[i%3]
		if err := e.AddTrigger(name, fmt.Sprintf("item(%q) > 1000000", item), nil); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.AddConstraint("cap", `item("a") < 1000000`); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Exec(int64(i+1), map[string]value.Value{
			"a": value.NewInt(int64(i % 1000)),
			"b": value.NewInt(int64(i % 777)),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
