package replica

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ptlactive/internal/value"
)

// tornConn cuts the read side after a byte budget: mid-frame, mid-batch,
// wherever the budget lands. The write side is left alone so the
// replicate request always gets out.
type tornConn struct {
	net.Conn
	mu     sync.Mutex
	budget int
}

func (c *tornConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	b := c.budget
	c.mu.Unlock()
	if b <= 0 {
		c.Conn.Close()
		return 0, fmt.Errorf("torn: read budget exhausted")
	}
	if len(p) > b {
		p = p[:b]
	}
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	c.budget -= n
	c.mu.Unlock()
	return n, err
}

// TestChaosTornStream tears the replication connection at an escalating
// byte budget — every cut lands at a different offset, many mid-frame —
// and checks the follower converges to a byte-identical log anyway:
// resume-by-LSN plus idempotent apply turn torn, redelivered frames into
// exactly-once effects.
func TestChaosTornStream(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p := startPrimary(t, pdir, 1, 4)
	c := dialT(t, p.addr)
	if err := c.AddTrigger("hot", `item("a") > 5`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		if _, err := c.Exec(int64(i), map[string]value.Value{"a": value.NewInt(int64(i % 12))}); err != nil {
			t.Fatal(err)
		}
	}
	p.sync(t)

	var dials int32
	fn := newFollowerNode(t, fdir, p.addr, "", 1)
	st := StartStream(fn, StreamConfig{
		Primary:     p.addr,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Dial: func(addr string) (net.Conn, error) {
			n := atomic.AddInt32(&dials, 1)
			conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				return nil, err
			}
			// Attempt n may read at most 149n bytes: the first attempts die
			// inside the handshake or the first frames; later ones deliver a
			// few batches then tear mid-frame.
			return &tornConn{Conn: conn, budget: 149 * int(n)}, nil
		},
	})
	defer st.Stop()

	assertReplicaIdentical(t, p, pdir, fn, fdir)
	if got := atomic.LoadInt32(&dials); got < 3 {
		t.Fatalf("chaos dial ran %d times; the stream was never torn", got)
	}
}

// TestLeaseExclusionAndSuccession pins the flock lease contract:
// exclusive while held, epoch monotonically minted across handovers, and
// fail-stop detection when the anchor file is replaced.
func TestLeaseExclusionAndSuccession(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lease")
	l1, err := TryAcquire(path, "a")
	if err != nil {
		t.Fatal(err)
	}
	if l1.Epoch() != 1 || l1.Owner() != "a" {
		t.Fatalf("first acquisition = epoch %d owner %s", l1.Epoch(), l1.Owner())
	}
	if _, err := TryAcquire(path, "b"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("second acquisition = %v, want ErrLeaseHeld", err)
	}
	if err := l1.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := l1.Release(); err != nil {
		t.Fatal(err)
	}
	l2, err := TryAcquire(path, "b")
	if err != nil {
		t.Fatal(err)
	}
	if l2.Epoch() != 2 {
		t.Fatalf("succession epoch = %d, want 2", l2.Epoch())
	}
	// Replacing the anchor must trip Verify — the fencing guarantee is gone.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(`{"owner":"evil","epoch":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l2.Verify(); err == nil {
		t.Fatal("Verify accepted a replaced lease file")
	}
}

// TestFailoverLeasePromotion is experiment E15 in miniature: primary and
// follower with a shared lease, client workload with a live subscription,
// primary killed, follower wins the lease and promotes, client redials
// and resumes its subscription by sequence number — no acknowledged,
// replicated commit lost, no gap in the firing stream.
func TestFailoverLeasePromotion(t *testing.T) {
	leasePath := filepath.Join(t.TempDir(), "lease")
	pl, err := TryAcquire(leasePath, "primary")
	if err != nil {
		t.Fatal(err)
	}
	pdir, fdir := t.TempDir(), t.TempDir()
	p := startPrimary(t, pdir, 1, 2)
	if err := p.node.Shipper().BumpEpoch(pl.Epoch()); err != nil {
		t.Fatal(err)
	}

	c := dialT(t, p.addr)
	if err := c.AddTrigger("hot", `item("a") > 5`); err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}

	fln := listenT(t)
	fn := newFollowerNode(t, fdir, p.addr, fln.Addr().String(), 1)
	faddr := serveNode(t, fn, fln)
	st := StartStream(fn, StreamConfig{Primary: p.addr, BackoffBase: 2 * time.Millisecond})
	defer st.Stop()

	const commits = 8
	for i := 1; i <= commits; i++ {
		if _, err := c.Exec(int64(i), map[string]value.Value{"a": value.NewInt(9)}); err != nil {
			t.Fatal(err)
		}
	}
	p.sync(t)
	waitLSN(t, fn, p.node.LastLSN())
	ackedLSN := p.node.LastLSN()
	prefix := walBytes(t, pdir)

	lastSeq := -1
	for i := 0; i < commits; i++ {
		ev := recvEvent(t, sub)
		if ev.Gap != 0 || ev.Seq != lastSeq+1 {
			t.Fatalf("pre-failover event = %+v after seq %d", ev, lastSeq)
		}
		lastSeq = ev.Seq
	}

	// Kill the primary. Shutdown stands in for SIGKILL; releasing the
	// lease stands in for the kernel dropping the flock at process death.
	start := time.Now()
	p.shutdown()
	pl.Release()

	// The follower's promotion loop: poll the lease until the primary's
	// death releases it, then stop the stream and promote under the
	// freshly minted epoch.
	var fl *FileLease
	for {
		fl, err = TryAcquire(leasePath, "follower")
		if errors.Is(err, ErrLeaseHeld) {
			time.Sleep(time.Millisecond)
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		break
	}
	st.Stop()
	if err := fn.Promote(fl.Epoch()); err != nil {
		t.Fatal(err)
	}
	t.Logf("time to promote: %v (epoch %d)", time.Since(start), fl.Epoch())
	if fl.Epoch() != 2 {
		t.Fatalf("promotion epoch = %d, want 2", fl.Epoch())
	}

	// Zero acknowledged, replicated commits lost: the promoted node holds
	// the full replicated prefix.
	if got := fn.LastLSN(); got < ackedLSN {
		t.Fatalf("promoted node at LSN %d, primary acked through %d", got, ackedLSN)
	}
	if !bytes.HasPrefix(walBytes(t, fdir), prefix) {
		t.Fatal("promoted node's wal lost part of the replicated prefix")
	}

	// The old subscription dies with the primary; the client redials the
	// new primary and resumes by sequence number, gap-free.
	fc := dialT(t, faddr)
	rs, err := fc.Role()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Role != "primary" || rs.Leader != faddr || rs.Epoch != 2 {
		t.Fatalf("promoted role = %+v", rs)
	}
	sub2, err := fc.Subscribe(lastSeq + 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Exec(100, map[string]value.Value{"a": value.NewInt(7)}); err != nil {
		t.Fatalf("write to promoted node: %v", err)
	}
	ev := recvEvent(t, sub2)
	if ev.Gap != 0 || ev.Seq != lastSeq+1 || ev.Firing.Time != 100 {
		t.Fatalf("post-failover event = %+v, want seq %d at t=100", ev, lastSeq+1)
	}
}
