package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"ptlactive/client"
	"ptlactive/internal/adb"
	"ptlactive/internal/server"
	"ptlactive/internal/server/wire"
	"ptlactive/internal/value"
)

// walSegment reports whether name is a WAL segment file (wal.000001,
// wal.000002, ...); the manifest (wal.manifest) is not one.
func walSegment(name string) bool {
	if !strings.HasPrefix(name, "wal.") {
		return false
	}
	digits := name[len("wal."):]
	if digits == "" {
		return false
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// prim bundles a running primary: durable engine, node, server.
type prim struct {
	node *Node
	eng  *adb.Engine
	addr string
	srv  *server.Server
}

// startPrimary restores (or creates) a durable primary in dir and serves
// it on loopback with replication enabled.
func startPrimary(t *testing.T, dir string, workers, group int) *prim {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := adb.Config{
		Workers:     workers,
		NoFsync:     true,
		GroupCommit: group,
		Durability:  adb.DurabilityWAL,
		Initial:     map[string]value.Value{"a": value.NewInt(0)},
	}
	eng, err := adb.Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	node := NewPrimary(server.NewEngineBackend(eng), ln.Addr().String())
	srv, err := server.New(server.Config{Backend: node, WALSource: node, RoleInfo: node.RoleInfo})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	p := &prim{node: node, eng: eng, addr: ln.Addr().String(), srv: srv}
	t.Cleanup(func() { p.shutdown() }) // idempotent
	return p
}

func (p *prim) shutdown() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	p.srv.Shutdown(ctx)
}

// sync flushes the primary's group-commit buffer at the serialization
// point, so everything acked is durable and shipped.
func (p *prim) sync(t *testing.T) {
	t.Helper()
	var err error
	p.node.be.Do(func() { err = p.eng.SyncWAL() })
	if err != nil {
		t.Fatal(err)
	}
}

// newFollowerNode opens a follower node over dir replicating (logically)
// from primaryAddr; the stream is the caller's to start. advertise is the
// address the node reports as leader once promoted ("" for unserved
// followers).
func newFollowerNode(t *testing.T, dir, primaryAddr, advertise string, workers int) *Node {
	t.Helper()
	n, err := NewFollower(adb.Config{Workers: workers, NoFsync: true}, dir, primaryAddr, advertise)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// listenT grabs a loopback listener, so a node's advertise address can be
// known before the node exists (the daemon orders it the same way).
func listenT(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// serveNode exposes an existing node (usually a follower) on ln.
func serveNode(t *testing.T, n *Node, ln net.Listener) string {
	t.Helper()
	srv, err := server.New(server.Config{Backend: n, WALSource: n, RoleInfo: n.RoleInfo})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String()
}

func dialT(t *testing.T, addr string) *client.Client {
	t.Helper()
	c, err := client.DialOptions(addr, client.Options{Retry: client.DefaultRetry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// waitLSN blocks until the follower has applied through want.
func waitLSN(t *testing.T, n *Node, want int64) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if n.LastLSN() >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower stuck at LSN %d, want %d", n.LastLSN(), want)
}

func walBytes(t *testing.T, dir string) []byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	var names []string
	for _, ent := range entries {
		if walSegment(ent.Name()) {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names) // zero-padded ordinals: lexical order is replay order
	var out []byte
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b...)
	}
	return out
}

// assertReplicaIdentical is the core acceptance check: after the primary
// syncs and the follower catches up, the two wal files are byte-equal and
// the replayed firing streams and database states agree.
func assertReplicaIdentical(t *testing.T, p *prim, pdir string, fn *Node, fdir string) {
	t.Helper()
	p.sync(t)
	waitLSN(t, fn, p.node.LastLSN())
	pb, fb := walBytes(t, pdir), walBytes(t, fdir)
	if !bytes.Equal(pb, fb) {
		t.Fatalf("wal bytes differ at LSN %d: primary %d bytes, follower %d bytes",
			p.node.LastLSN(), len(pb), len(fb))
	}
	feng := fn.engine()
	if feng == nil {
		t.Fatal("follower engine missing after catch-up")
	}
	pf, ff := p.eng.Firings(), feng.Firings()
	if !reflect.DeepEqual(pf, ff) {
		t.Fatalf("firing streams diverge: primary %d firings, follower %d", len(pf), len(ff))
	}
	pdb, fdb := p.eng.DB(), feng.DB()
	for _, name := range pdb.Items() {
		pv, _ := pdb.Get(name)
		fv, ok := fdb.Get(name)
		if !ok || !reflect.DeepEqual(pv, fv) {
			t.Fatalf("item %q diverges: primary %v, follower %v (ok=%v)", name, pv, fv, ok)
		}
	}
}

// TestFollowerByteIdentity is the tentpole property test: under both
// codecs and both worker counts, a follower streaming over the wire is
// byte-identical to the primary at every checked batch boundary — wal
// file, firing stream, database state.
func TestFollowerByteIdentity(t *testing.T) {
	codecs := map[string][]string{
		"json":   {wire.CodecNameJSON},
		"binary": nil, // default offer negotiates binary
	}
	for _, workers := range []int{1, 4} {
		for cname, offer := range codecs {
			t.Run(fmt.Sprintf("workers=%d/codec=%s", workers, cname), func(t *testing.T) {
				pdir, fdir := t.TempDir(), t.TempDir()
				p := startPrimary(t, pdir, workers, 4)
				c := dialT(t, p.addr)
				if err := c.AddTrigger("hot", `item("a") > 5`); err != nil {
					t.Fatal(err)
				}
				fn := newFollowerNode(t, fdir, p.addr, "", workers)
				st := StartStream(fn, StreamConfig{Primary: p.addr, Codecs: offer, BackoffBase: 2 * time.Millisecond})
				defer st.Stop()

				ts := int64(1)
				for round := 0; round < 5; round++ {
					for i := 0; i < 6; i++ {
						v := int64((i*3 + round) % 10)
						if _, err := c.Exec(ts, map[string]value.Value{"a": value.NewInt(v)}); err != nil {
							t.Fatal(err)
						}
						ts++
					}
					// Check identity at this batch boundary before growing on.
					assertReplicaIdentical(t, p, pdir, fn, fdir)
				}
				if len(p.eng.Firings()) == 0 {
					t.Fatal("workload produced no firings; test is vacuous")
				}
			})
		}
	}
}

// TestFollowerServesReadsRefusesWrites: a follower answers queries,
// role, and firing subscriptions, and bounces writes with the
// not_primary sentinel carrying the primary's address.
func TestFollowerServesReadsRefusesWrites(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p := startPrimary(t, pdir, 1, 2)
	c := dialT(t, p.addr)
	if err := c.AddTrigger("hot", `item("a") > 5`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(1, map[string]value.Value{"a": value.NewInt(9)}); err != nil {
		t.Fatal(err)
	}
	fln := listenT(t)
	fn := newFollowerNode(t, fdir, p.addr, fln.Addr().String(), 1)
	st := StartStream(fn, StreamConfig{Primary: p.addr, BackoffBase: 2 * time.Millisecond})
	defer st.Stop()
	p.sync(t)
	waitLSN(t, fn, p.node.LastLSN())

	faddr := serveNode(t, fn, fln)
	fc := dialT(t, faddr)

	// Reads work and match the primary.
	rs, err := fc.Role()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Role != "follower" || rs.Leader != p.addr {
		t.Fatalf("role = %+v, want follower led by %s", rs, p.addr)
	}
	fs, err := fc.Firings(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Rule != "hot" {
		t.Fatalf("follower firings = %+v", fs)
	}

	// Writes bounce with the redirect hint.
	_, err = fc.Exec(2, map[string]value.Value{"a": value.NewInt(1)})
	if !errors.Is(err, wire.ErrNotPrimary) {
		t.Fatalf("follower write error = %v, want ErrNotPrimary", err)
	}
	var npe *wire.NotPrimaryError
	if !errors.As(err, &npe) || npe.Leader != p.addr {
		t.Fatalf("redirect hint = %+v, want leader %s", npe, p.addr)
	}
	if err := fc.AddTrigger("nope", `item("a") > 0`); !errors.Is(err, wire.ErrNotPrimary) {
		t.Fatalf("follower rule registration error = %v, want ErrNotPrimary", err)
	}

	// Subscriptions serve the replicated firing stream: backlog then live.
	sub, err := fc.Subscribe(0)
	if err != nil {
		t.Fatal(err)
	}
	ev := recvEvent(t, sub)
	if ev.Firing.Rule != "hot" || ev.Seq != 0 {
		t.Fatalf("backlog event = %+v", ev)
	}
	if _, err := c.Exec(2, map[string]value.Value{"a": value.NewInt(8)}); err != nil {
		t.Fatal(err)
	}
	p.sync(t)
	ev = recvEvent(t, sub)
	if ev.Firing.Time != 2 || ev.Seq != 1 || ev.Gap != 0 {
		t.Fatalf("live replicated event = %+v", ev)
	}
}

func recvEvent(t *testing.T, sub *client.Subscription) client.StreamEvent {
	t.Helper()
	select {
	case ev, ok := <-sub.C:
		if !ok {
			t.Fatal("subscription closed")
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("no event within 10s")
	}
	panic("unreachable")
}

// TestApplyFramesDuplicatesGapsAndFencing pins the follower-side apply
// contract at the engine level: redelivered frames are idempotent, gaps
// are hard errors, and batches from a deposed primary's older epoch are
// fenced off.
func TestApplyFramesDuplicatesGapsAndFencing(t *testing.T) {
	dir := t.TempDir()
	cfg := adb.Config{NoFsync: true, Durability: adb.DurabilityWAL,
		Initial: map[string]value.Value{"a": value.NewInt(0)}}
	eng, err := adb.Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := 1; i <= 4; i++ {
		if err := eng.Exec(int64(i), map[string]value.Value{"a": value.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	chunks, err := eng.WALReadFrom(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) == 0 {
		t.Fatal("no backlog")
	}
	whole := chunks[0].Data
	for _, c := range chunks[1:] {
		whole = append(whole, c.Data...)
	}
	last := chunks[len(chunks)-1].Last

	fol, err := adb.OpenFollower(adb.Config{}, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	// A gap beyond lastLSN+1 is refused before anything is persisted.
	tail, err := eng.WALReadFrom(3, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fol.ApplyFrames(tail[0].Data, 0); err == nil {
		t.Fatal("gapped batch (starts at LSN 3, follower empty) accepted")
	}
	if fol.LastLSN() != 0 {
		t.Fatalf("gapped batch moved LastLSN to %d", fol.LastLSN())
	}

	n, err := fol.ApplyFrames(whole, 0)
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) != last {
		t.Fatalf("applied %d records, want %d", n, last)
	}
	// Exact redelivery: zero newly applied, no error, no divergence.
	n, err = fol.ApplyFrames(whole, 0)
	if err != nil || n != 0 {
		t.Fatalf("duplicate batch: applied=%d err=%v, want 0, nil", n, err)
	}
	if fol.LastLSN() != last {
		t.Fatalf("LastLSN moved to %d on duplicate", fol.LastLSN())
	}

	// Fence: the primary promotes (epoch record), the follower applies it,
	// and a deposed primary's older-epoch batch is rejected thereafter.
	if err := eng.BumpEpoch(3); err != nil {
		t.Fatal(err)
	}
	if err := eng.Exec(9, map[string]value.Value{"a": value.NewInt(9)}); err != nil {
		t.Fatal(err)
	}
	chunks, err = eng.WALReadFrom(last+1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		if _, err := fol.ApplyFrames(c.Data, 3); err != nil {
			t.Fatal(err)
		}
	}
	if fol.Epoch() != 3 {
		t.Fatalf("follower epoch %d after epoch record, want 3", fol.Epoch())
	}
	if _, err := fol.ApplyFrames(whole, 0); err == nil {
		t.Fatal("older-epoch batch accepted after fence")
	}
}

// TestPromoteFollower: a caught-up follower promotes, accepts writes,
// fences with the new epoch, and survives its own restart as a primary.
func TestPromoteFollower(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p := startPrimary(t, pdir, 1, 2)
	c := dialT(t, p.addr)
	if err := c.AddTrigger("hot", `item("a") > 5`); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := c.Exec(int64(i), map[string]value.Value{"a": value.NewInt(9)}); err != nil {
			t.Fatal(err)
		}
	}
	fln := listenT(t)
	fn := newFollowerNode(t, fdir, p.addr, fln.Addr().String(), 1)
	st := StartStream(fn, StreamConfig{Primary: p.addr, BackoffBase: 2 * time.Millisecond})
	p.sync(t)
	waitLSN(t, fn, p.node.LastLSN())
	prefix := walBytes(t, pdir)

	st.Stop()
	p.shutdown()
	if err := fn.Promote(2); err != nil {
		t.Fatal(err)
	}
	if got := fn.Epoch(); got != 2 {
		t.Fatalf("epoch after promote = %d, want 2", got)
	}
	if ri := fn.RoleInfo(); ri.Role != "primary" {
		t.Fatalf("role after promote = %+v", ri)
	}

	// Writes flow; firings continue the same stream.
	faddr := serveNode(t, fn, fln)
	fc := dialT(t, faddr)
	if _, err := fc.Exec(10, map[string]value.Value{"a": value.NewInt(7)}); err != nil {
		t.Fatal(err)
	}
	fs, err := fc.Firings(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 4 || fs[3].Time != 10 {
		t.Fatalf("post-promotion firings = %+v", fs)
	}

	// The promoted log extends the replicated prefix byte-for-byte.
	var serr error
	fn.be.Do(func() { serr = fn.be.Engine().SyncWAL() })
	if serr != nil {
		t.Fatal(serr)
	}
	grown := walBytes(t, fdir)
	if !bytes.HasPrefix(grown, prefix) || len(grown) <= len(prefix) {
		t.Fatalf("promoted wal (%d bytes) does not extend the replicated prefix (%d bytes)",
			len(grown), len(prefix))
	}
}

// TestPrimaryRestartEveryBatchBoundary kills (gracefully stops) and
// restarts the primary after every replication batch; the follower
// redials, resumes by LSN, and stays byte-identical after each round —
// the committed prefix survives every boundary with no double-applies
// (byte identity rules them out).
func TestPrimaryRestartEveryBatchBoundary(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	var fn *Node
	ts := int64(1)
	const group = 3
	for round := 0; round < 5; round++ {
		p := startPrimary(t, pdir, 1, group)
		c := dialT(t, p.addr)
		if round == 0 {
			if err := c.AddTrigger("hot", `item("a") > 5`); err != nil {
				t.Fatal(err)
			}
			fn = newFollowerNode(t, fdir, p.addr, "", 1)
		}
		fn.SetLeader(p.addr)
		st := StartStream(fn, StreamConfig{Primary: p.addr, BackoffBase: 2 * time.Millisecond})
		for i := 0; i < group; i++ {
			if _, err := c.Exec(ts, map[string]value.Value{"a": value.NewInt(int64(6 + i))}); err != nil {
				t.Fatal(err)
			}
			ts++
		}
		assertReplicaIdentical(t, p, pdir, fn, fdir)
		st.Stop()
		c.Close()
		p.shutdown() // the batch boundary kill
	}
}
