package replica

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ptlactive/internal/adb"
	"ptlactive/internal/event"
	"ptlactive/internal/server"
	"ptlactive/internal/server/wire"
	"ptlactive/internal/value"
)

// Node is a replica's server backend, in either role. As a follower it
// applies shipped WAL batches to an adb.Follower, serves reads, health
// and firing subscriptions from the replayed engine, and refuses every
// mutation with *wire.NotPrimaryError carrying the primary's address. At
// promotion it becomes a primary: the follower's engine gets the store
// attached, an epoch record fences the change, and a normal
// EngineBackend pipeline plus Shipper take over — with firing sequence
// continuity, since both sides number firings by absolute log index.
type Node struct {
	mu  sync.Mutex // serializes apply, promote, and follower-side reads
	cfg adb.Config
	fol *adb.Follower

	// Post-promotion (or primary-from-start) state. be and shipper are
	// set exactly once, under mu, with promoted flipping last-to-first:
	// promoted is set before be so Node.fired stops double-counting the
	// moment the backend's own observer takes over.
	be       *server.EngineBackend
	shipper  *Shipper
	promoted atomic.Bool

	// leader is the primary's address hint served to redirected clients
	// and the role query; empty when unknown. advertise is this node's
	// own address, served as leader once promoted.
	leaderMu  sync.Mutex
	leader    string
	advertise string

	// Follower-side firing fan-out: seq is the next absolute firing
	// index, obs the single server observer, live gates out the replay
	// inside OpenFollower (those firings are counted by the seq reseed).
	seq  int
	obs  atomic.Pointer[func(server.FiringEvent)]
	live atomic.Bool
}

// NewFollower opens (creating if needed) the follower directory and
// returns a Node in follower role. cfg supplies the runtime-only engine
// pieces; cfg.OnFiring is taken over by the node (the server subscribes
// through it). primary is the upstream address hint; advertise is this
// node's own client address, reported once promoted.
func NewFollower(cfg adb.Config, dir, primary, advertise string) (*Node, error) {
	n := &Node{leader: primary, advertise: advertise}
	cfg.OnFiring = n.fired
	fol, err := adb.OpenFollower(cfg, dir)
	if err != nil {
		return nil, err
	}
	n.cfg = cfg
	n.fol = fol
	if eng := fol.Engine(); eng != nil {
		n.seq = len(eng.Firings())
	}
	n.live.Store(true)
	return n, nil
}

// NewPrimary wraps an already-restored durable engine backend as a
// primary-role Node: pipeline and shipper from the start, writes
// accepted, replication served. advertise is this node's client address.
func NewPrimary(be *server.EngineBackend, advertise string) *Node {
	n := &Node{be: be, shipper: NewShipper(be), advertise: advertise, leader: advertise}
	n.promoted.Store(true)
	n.live.Store(true)
	return n
}

// fired is the follower engine's firing callback: it runs inside
// ApplyFrames (under n.mu), assigning absolute sequence numbers and
// feeding the server's broadcast observer. After promotion the
// EngineBackend's own observer carries the stream, with the same
// numbering, so fired steps aside.
func (n *Node) fired(f adb.Firing) {
	if n.promoted.Load() || !n.live.Load() {
		return
	}
	fe := server.FiringEvent{F: f, Seq: n.seq}
	n.seq++
	if fn := n.obs.Load(); fn != nil {
		(*fn)(fe)
	}
}

// Apply persists and applies one shipped WAL batch (see
// adb.Follower.ApplyFrames); the stream loop calls it per wal frame.
func (n *Node) Apply(data []byte, epoch int64) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.promoted.Load() {
		return 0, fmt.Errorf("replica: node was promoted; stream must stop")
	}
	return n.fol.ApplyFrames(data, epoch)
}

// Bootstrap installs a primary snapshot shipped because the node's resume
// position fell behind the primary's retained WAL head (see
// adb.Follower.BootstrapSnapshot). The stream loop calls it when a snap
// frame sequence completes; the engine is rebuilt from the snapshot and
// the firing sequence reseeds to the snapshot's absolute count, exactly
// as a restored primary would number them.
func (n *Node) Bootstrap(data []byte, lsn int64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.promoted.Load() {
		return fmt.Errorf("replica: node was promoted; stream must stop")
	}
	if err := n.fol.BootstrapSnapshot(data, lsn); err != nil {
		return err
	}
	if eng := n.fol.Engine(); eng != nil {
		n.seq = len(eng.Firings())
	}
	return nil
}

// Storage implements server.StorageBackend for either role.
func (n *Node) Storage() (wire.StorageJSON, error) {
	if n.promoted.Load() {
		return n.be.Storage()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	st, err := n.fol.Storage()
	if err != nil {
		return wire.StorageJSON{}, err
	}
	return server.StorageWire(st), nil
}

// LastLSN returns the node's durable WAL position (the resume point minus
// one). Safe for concurrent use.
func (n *Node) LastLSN() int64 {
	if n.promoted.Load() {
		return n.shipper.LastLSN()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fol.LastLSN()
}

// Epoch returns the node's replication epoch. Safe for concurrent use.
func (n *Node) Epoch() int64 {
	if n.promoted.Load() {
		return n.shipper.Epoch()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fol.Epoch()
}

// Promote turns a follower node into the primary under epoch newEpoch
// (minted by lease acquisition): the engine takes over the store, the
// epoch record fences deposed-primary frames, writes open up, and the
// node starts serving replication to its own followers. The caller must
// have stopped the stream loop first.
func (n *Node) Promote(newEpoch int64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.promoted.Load() {
		return fmt.Errorf("replica: node is already primary")
	}
	eng, err := n.fol.Promote(newEpoch)
	if err != nil {
		return err
	}
	// Order matters: promoted first, so fired() yields the firing stream
	// to the backend observer the moment it exists; the backend seeds its
	// sequence from len(firings), which equals n.seq at this quiescent
	// point, so subscribers see one continuous numbering across roles.
	n.promoted.Store(true)
	be := server.NewEngineBackend(eng)
	if fn := n.obs.Load(); fn != nil {
		be.OnFiring(*fn)
	}
	n.be = be
	n.shipper = NewShipper(be)
	n.leaderMu.Lock()
	n.leader = n.advertise
	n.leaderMu.Unlock()
	return nil
}

// Leader returns the current primary hint ("" when unknown).
func (n *Node) Leader() string {
	n.leaderMu.Lock()
	defer n.leaderMu.Unlock()
	return n.leader
}

// SetLeader updates the primary hint (the stream loop calls it when the
// upstream address changes).
func (n *Node) SetLeader(addr string) {
	n.leaderMu.Lock()
	n.leader = addr
	n.leaderMu.Unlock()
}

// RoleInfo answers the server's "role" query.
func (n *Node) RoleInfo() server.RoleInfo {
	role := "follower"
	if n.promoted.Load() {
		role = "primary"
	}
	return server.RoleInfo{Role: role, Leader: n.Leader(), Epoch: n.Epoch(), LSN: n.LastLSN()}
}

// FollowWAL implements server.WALSource: a follower refuses downstream
// replication (chaining is future work); a promoted node serves it.
func (n *Node) FollowWAL(from, epoch int64, ack func(), sink func(server.WALBatch)) (func(), error) {
	if !n.promoted.Load() {
		return nil, &wire.NotPrimaryError{Leader: n.Leader()}
	}
	return n.shipper.FollowWAL(from, epoch, ack, sink)
}

// Shipper returns the primary-side shipper (nil while follower).
func (n *Node) Shipper() *Shipper {
	if !n.promoted.Load() {
		return nil
	}
	return n.shipper
}

// engine returns the replayed engine for reads (nil before the init
// frame arrived on a fresh follower).
func (n *Node) engine() *adb.Engine {
	if n.promoted.Load() {
		return n.be.Engine()
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fol.Engine()
}

// notPrimary finishes a refused mutation with the redirect hint.
func (n *Node) notPrimary() error { return &wire.NotPrimaryError{Leader: n.Leader()} }

// --- server.Backend ---

func (n *Node) GoTxn(ts int64, updates map[string]value.Value, deletes []string,
	events []event.Event, done func(int64, error)) {
	if n.promoted.Load() {
		n.be.GoTxn(ts, updates, deletes, events, done)
		return
	}
	done(0, n.notPrimary())
}

func (n *Node) GoEmit(ts int64, events []event.Event, done func(int64, error)) {
	if n.promoted.Load() {
		n.be.GoEmit(ts, events, done)
		return
	}
	done(0, n.notPrimary())
}

func (n *Node) GoRule(name, cond string, constraint bool, sched int, done func(error)) {
	if n.promoted.Load() {
		n.be.GoRule(name, cond, constraint, sched, done)
		return
	}
	done(n.notPrimary())
}

func (n *Node) GoRevive(name string, done func(error)) {
	if n.promoted.Load() {
		n.be.GoRevive(name, done)
		return
	}
	done(n.notPrimary())
}

func (n *Node) OnFiring(fn func(server.FiringEvent)) (cancel func()) {
	n.obs.Store(&fn)
	var beCancel func()
	n.mu.Lock()
	if n.be != nil {
		beCancel = n.be.OnFiring(fn)
	}
	n.mu.Unlock()
	return func() {
		n.obs.CompareAndSwap(&fn, nil)
		if beCancel != nil {
			beCancel()
		}
	}
}

// SyncFirings delivers the backlog atomically with the live stream: on a
// follower, n.mu serializes it against Apply (whose firings flow through
// fired under the same lock); once primary, the backend's serialization
// point does the same job.
func (n *Node) SyncFirings(from int, fn func(int, []server.FiringEvent)) {
	n.mu.Lock()
	if n.be != nil {
		be := n.be
		n.mu.Unlock()
		be.SyncFirings(from, fn)
		return
	}
	defer n.mu.Unlock()
	var fs []adb.Firing
	if eng := n.fol.Engine(); eng != nil {
		fs = eng.Firings()
	}
	if from < 0 {
		from = 0
	}
	if from > len(fs) {
		from = len(fs)
	}
	backlog := make([]server.FiringEvent, 0, len(fs)-from)
	for i := from; i < len(fs); i++ {
		backlog = append(backlog, server.FiringEvent{F: fs[i], Seq: i})
	}
	fn(from, backlog)
}

func (n *Node) Now() int64 {
	if eng := n.engine(); eng != nil {
		return eng.Now()
	}
	return 0
}

func (n *Node) Items() (map[string]value.Value, error) {
	eng := n.engine()
	items := map[string]value.Value{}
	if eng == nil {
		return items, nil
	}
	db := eng.DB()
	db.Range(func(name string, v value.Value) bool {
		items[name] = v
		return true
	})
	return items, nil
}

func (n *Node) Firings(from int) ([]server.FiringEvent, error) {
	var fs []adb.Firing
	if eng := n.engine(); eng != nil {
		fs = eng.Firings()
	}
	if from < 0 {
		from = 0
	}
	if from > len(fs) {
		from = len(fs)
	}
	out := make([]server.FiringEvent, 0, len(fs)-from)
	for i := from; i < len(fs); i++ {
		out = append(out, server.FiringEvent{F: fs[i], Seq: i})
	}
	return out, nil
}

func (n *Node) Rules() ([]wire.RuleJSON, error) {
	eng := n.engine()
	if eng == nil {
		return nil, nil
	}
	return server.EngineRules(eng)
}

func (n *Node) Health() ([]wire.HealthJSON, string, error) {
	eng := n.engine()
	if eng == nil {
		return nil, "", nil
	}
	return server.EngineHealth(eng)
}

func (n *Node) Barrier() {
	n.mu.Lock()
	be := n.be
	n.mu.Unlock()
	if be != nil {
		be.Barrier()
	}
}

func (n *Node) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.be != nil {
		return n.be.Close()
	}
	return n.fol.Close()
}
