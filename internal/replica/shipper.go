// Package replica implements WAL-shipping replication and lease-based
// failover for the active-database server (DESIGN.md §4i): a primary
// engine's group-commit WAL batches — already byte-stable at every batch
// size — stream over the wire protocol to follower engines that persist
// them verbatim and replay them through the recovery path, so each
// follower's state, firing stream and on-disk log are byte-identical to
// the primary's at every batch boundary by construction.
//
// The pieces: Shipper taps the primary's WAL flush hook and fans durable
// batches out to follower sinks (the server's replication endpoint);
// Node is the follower-side server backend — it serves reads, health and
// firing subscriptions from the replayed engine, refuses writes with the
// not_primary sentinel carrying a primary hint, and can be promoted into
// a primary; Stream is the follower's pull loop (dial, replicate, apply,
// reconnect with capped exponential backoff); FileLease is the flock-
// anchored lease whose acquisition order mints fencing epochs.
//
// Replication is asynchronous: a commit is acknowledged to the client
// once locally durable, before followers confirm. A primary crash can
// therefore lose acked-but-unshipped commits from the *replica set*
// (never from the primary's own disk); the failover experiment (E15)
// waits for follower catch-up before declaring zero loss.
package replica

import (
	"errors"
	"fmt"
	"sync"

	"ptlactive/internal/persist"
	"ptlactive/internal/server"
)

// maxWalChunk bounds one shipped batch's frame bytes. The JSON codec
// base64-expands Wal by 4/3, so 1 MiB keeps every wal frame far below
// wire.MaxFrame on either codec. (A single WAL record beyond ~6 MiB
// cannot ship over the JSON codec; the binary codec carries it raw.)
const maxWalChunk = 1 << 20

// Shipper taps a durable primary engine's WAL flush hook and fans every
// durable batch out to registered follower sinks, stamped with the
// primary epoch in force when the batch hit disk. It installs itself at
// the backend's serialization point, so batch delivery order is exactly
// commit order.
type Shipper struct {
	be *server.EngineBackend

	mu      sync.Mutex
	epoch   int64
	lastLSN int64
	sinks   map[int]func(server.WALBatch)
	nextID  int
}

// NewShipper installs the flush hook on be's engine (which must be
// durable) and returns the shipper. The backend must outlive it.
func NewShipper(be *server.EngineBackend) *Shipper {
	s := &Shipper{be: be, sinks: map[int]func(server.WALBatch){}}
	be.Do(func() {
		s.epoch = be.Engine().Epoch()
		s.lastLSN = be.Engine().WALLastLSN()
		be.Engine().WALFlushHook(s.flushed)
	})
	return s
}

// flushed runs inside the engine call that made the batch durable, on the
// pipeline goroutine. The log reuses its batch buffer, so the bytes are
// copied once here (and only when someone is listening).
func (s *Shipper) flushed(data []byte, first, last int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastLSN = last
	if len(s.sinks) == 0 {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	b := server.WALBatch{Data: cp, First: first, Last: last, Epoch: s.epoch}
	for _, sink := range s.sinks {
		sink(b)
	}
}

// Epoch returns the primary epoch batches are currently stamped with.
func (s *Shipper) Epoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// LastLSN returns the last durable LSN the shipper has observed; safe for
// concurrent use (the role query reads it while commits flow).
func (s *Shipper) LastLSN() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastLSN
}

// BumpEpoch fences a leadership change on the primary: the engine logs
// and syncs the epoch record (whose batch ships stamped with the old
// epoch — the record itself performs the bump on both ends), then the
// shipper stamps every later batch with the new epoch. Runs at the
// serialization point so no commit's batch can interleave between the
// record and the stamp change.
func (s *Shipper) BumpEpoch(n int64) error {
	var err error
	s.be.Do(func() {
		if cur := s.be.Engine().Epoch(); n <= cur {
			// Already there (e.g. recovery replayed the epoch record):
			// re-fencing at the same epoch is a no-op, going backwards is not.
			if n == cur {
				s.mu.Lock()
				if s.epoch < n {
					s.epoch = n
				}
				s.mu.Unlock()
				return
			}
		}
		if err = s.be.Engine().BumpEpoch(n); err != nil {
			return
		}
		s.mu.Lock()
		s.epoch = n
		s.mu.Unlock()
	})
	return err
}

// FollowWAL implements server.WALSource: it validates the request, acks,
// replays the durable backlog from LSN `from` in bounded chunks and
// registers sink for every later flush — all at the serialization point,
// so the handoff from backlog to live stream is gap-free and
// duplicate-free by construction.
func (s *Shipper) FollowWAL(from, epoch int64, ack func(), sink func(server.WALBatch)) (func(), error) {
	var err error
	var id int
	s.be.Do(func() {
		s.mu.Lock()
		cur := s.epoch
		s.mu.Unlock()
		if epoch > cur {
			err = fmt.Errorf("replica: follower epoch %d is ahead of primary epoch %d (deposed primary?)", epoch, cur)
			return
		}
		chunks, rerr := s.be.Engine().WALReadFrom(from, maxWalChunk)
		acked := false
		if rerr != nil {
			// A follower asking below the retained WAL head (its segments
			// were garbage-collected) is bootstrapped from the newest durable
			// snapshot instead: snapshot chunks ship first, then the ordinary
			// frame stream resumes from the LSN the snapshot covers.
			if !errors.Is(rerr, persist.ErrTruncatedHead) {
				err = rerr
				return
			}
			snap, snapLSN, ok, serr := s.be.Engine().WALNewestSnapshot()
			if !ok || serr != nil || snapLSN+1 <= from {
				// No snapshot to bootstrap from (or it would not advance the
				// follower past its own position — then the truncation is
				// real and unfixable from here). Surface the original error;
				// the wire layer maps it to wal_truncated.
				err = rerr
				return
			}
			ack()
			acked = true
			for off := 0; off < len(snap); off += maxWalChunk {
				end := off + maxWalChunk
				if end > len(snap) {
					end = len(snap)
				}
				sink(server.WALBatch{Data: snap[off:end], First: snapLSN, Epoch: cur,
					Snap: true, More: end < len(snap)})
			}
			if chunks, rerr = s.be.Engine().WALReadFrom(snapLSN+1, maxWalChunk); rerr != nil {
				err = rerr
				return
			}
		}
		if !acked {
			ack()
		}
		for _, c := range chunks {
			// Backlog chunks alias a fresh file read, so no copy is needed;
			// stamping them with the current epoch is sound because the
			// chunk bytes themselves contain every epoch record up to it.
			sink(server.WALBatch{Data: c.Data, First: c.First, Last: c.Last, Epoch: cur})
		}
		s.mu.Lock()
		id = s.nextID
		s.nextID++
		s.sinks[id] = sink
		s.mu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	return func() {
		s.mu.Lock()
		delete(s.sinks, id)
		s.mu.Unlock()
	}, nil
}
