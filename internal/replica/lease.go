package replica

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"syscall"
)

// ErrLeaseHeld reports a TryAcquire against a lease another live process
// holds; the caller polls again later.
var ErrLeaseHeld = errors.New("replica: lease is held by another process")

// leaseState is the lease file's payload: who holds it and the epoch its
// acquisition minted. The epoch outlives the holder — each acquisition
// reads the last epoch and writes last+1, so leadership changes are
// totally ordered even across crashes.
type leaseState struct {
	Owner string `json:"owner"`
	Epoch int64  `json:"epoch"`
}

// FileLease is the flock-anchored primary lease: exclusive while the
// holder lives, and — the property failover is built on — released by
// the kernel the instant the holding process dies, SIGKILL included. No
// timeout tuning, no clock assumptions; a follower polling TryAcquire
// wins the lease as soon as the primary is truly gone, never before.
// Epoch succession through the file body provides the fencing number
// stamped into the WAL at promotion (adb.Engine.BumpEpoch).
//
// The lease file must live on a filesystem shared by the replica set's
// processes (one host, or a shared mount that honors flock).
type FileLease struct {
	path  string
	owner string
	f     *os.File
	epoch int64
}

// TryAcquire attempts to take the lease at path without blocking. On
// success the returned lease holds the flock (released on Release or
// process death) and Epoch() is the freshly minted fencing epoch; a held
// lease returns ErrLeaseHeld.
func TryAcquire(path, owner string) (*FileLease, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("replica: lease open: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return nil, ErrLeaseHeld
		}
		return nil, fmt.Errorf("replica: lease flock: %w", err)
	}
	// Epoch succession: read the previous holder's epoch (a fresh or
	// garbled file counts as epoch 0) and mint the next one.
	var prev leaseState
	if data, err := io.ReadAll(f); err == nil && len(data) > 0 {
		_ = json.Unmarshal(data, &prev)
	}
	st := leaseState{Owner: owner, Epoch: prev.Epoch + 1}
	data, err := json.Marshal(st)
	if err == nil {
		err = f.Truncate(0)
	}
	if err == nil {
		_, err = f.WriteAt(data, 0)
	}
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
		return nil, fmt.Errorf("replica: lease write: %w", err)
	}
	return &FileLease{path: path, owner: owner, f: f, epoch: st.Epoch}, nil
}

// Epoch returns the fencing epoch this acquisition minted.
func (l *FileLease) Epoch() int64 { return l.epoch }

// Owner returns the name recorded in the lease file.
func (l *FileLease) Owner() string { return l.owner }

// Verify checks the lease is still anchored: the file at the lease path
// is the very inode this process holds locked. A replaced or deleted
// lease file means some operator or process broke the anchor — the
// holder must fail-stop (it can no longer prove it is the primary), which
// the server's main loop does on a Verify error.
func (l *FileLease) Verify() error {
	held, err := l.f.Stat()
	if err != nil {
		return fmt.Errorf("replica: lease verify: %w", err)
	}
	disk, err := os.Stat(l.path)
	if err != nil {
		return fmt.Errorf("replica: lease file gone: %w", err)
	}
	if !os.SameFile(held, disk) {
		return fmt.Errorf("replica: lease file %s was replaced; fencing broken", l.path)
	}
	return nil
}

// Release drops the lease (the kernel would also release it at process
// exit; explicit release makes clean shutdown hand over promptly).
func (l *FileLease) Release() error {
	syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	return l.f.Close()
}
