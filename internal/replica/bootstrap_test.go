package replica

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"time"

	"ptlactive/internal/adb"
	"ptlactive/internal/persist"
	"ptlactive/internal/server"
	"ptlactive/internal/server/wire"
	"ptlactive/internal/value"
)

// startRetainingPrimary is startPrimary with an aggressive storage
// lifecycle: tiny WAL segments, a short snapshot cadence and a 1-deep
// snapshot chain, so a burst of commits garbage-collects the log head.
func startRetainingPrimary(t *testing.T, dir string) *prim {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := adb.Config{
		NoFsync:       true,
		Durability:    adb.DurabilitySnapshot,
		SnapshotEvery: 8,
		Initial:       map[string]value.Value{"a": value.NewInt(0)},
		Retention:     adb.Retention{SegmentBytes: 1 << 10, KeepSnapshots: 1},
	}
	eng, err := adb.Restore(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	node := NewPrimary(server.NewEngineBackend(eng), ln.Addr().String())
	srv, err := server.New(server.Config{Backend: node, WALSource: node, RoleInfo: node.RoleInfo})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	p := &prim{node: node, eng: eng, addr: ln.Addr().String(), srv: srv}
	t.Cleanup(func() { p.shutdown() })
	return p
}

// primaryStorage reads the primary's storage stats at the serialization
// point.
func primaryStorage(t *testing.T, p *prim) adb.StorageStats {
	t.Helper()
	var st adb.StorageStats
	var err error
	p.node.be.Do(func() { st, err = p.eng.Storage() })
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestReplicaSnapshotBootstrapBehindHead: a follower whose resume
// position predates the primary's retained WAL head (the covering
// segments were GCed) is bootstrapped from the newest shipped snapshot
// and then converges byte-identically through the ordinary frame stream.
func TestReplicaSnapshotBootstrapBehindHead(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	p := startRetainingPrimary(t, pdir)
	c := dialT(t, p.addr)
	if err := c.AddTrigger("hot", `item("a") > 5`); err != nil {
		t.Fatal(err)
	}
	// Burn through enough commits that snapshot GC truncates the head
	// well past LSN 1 — the position a fresh follower resumes from.
	ts := int64(1)
	for ; ts <= 120; ts++ {
		if _, err := c.Exec(ts, map[string]value.Value{"a": value.NewInt(ts % 10)}); err != nil {
			t.Fatal(err)
		}
	}
	p.sync(t)
	st := primaryStorage(t, p)
	if st.HeadLSN <= 1 {
		t.Fatalf("GC never truncated the head (head %d); test is vacuous", st.HeadLSN)
	}

	// A brand-new follower resumes from LSN 1 — below the head.
	fn := newFollowerNode(t, fdir, p.addr, "", 0)
	stream := StartStream(fn, StreamConfig{Primary: p.addr, BackoffBase: 2 * time.Millisecond, Logf: t.Logf})
	defer stream.Stop()
	waitLSN(t, fn, p.node.LastLSN())

	// Convergence continues through the ordinary stream: more commits,
	// then the follower's log must be byte-identical to the primary's
	// tail over the range both hold.
	for ; ts <= 165; ts++ {
		if _, err := c.Exec(ts, map[string]value.Value{"a": value.NewInt(ts % 10)}); err != nil {
			t.Fatal(err)
		}
	}
	p.sync(t)
	waitLSN(t, fn, p.node.LastLSN())
	// The primary checkpoints every few commits, so its retained log is
	// the short one: everything since its newest snapshot. Those bytes
	// must be the exact tail of the follower's log, which kept everything
	// since the bootstrap point (the follower runs no GC here).
	pb, fb := walBytes(t, pdir), walBytes(t, fdir)
	if len(pb) == 0 || !bytes.HasSuffix(fb, pb) {
		t.Fatalf("primary's retained log (%d bytes) is not a byte suffix of the follower's (%d bytes)", len(pb), len(fb))
	}
	// The follower took the snapshot path, not a full replay: its oldest
	// retained frame postdates the position it originally asked for.
	recs, _, err := persist.ParseFrames(fb)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || recs[0].LSN <= 1 {
		t.Fatalf("follower log starts at LSN %d; wanted a post-bootstrap suffix", recs[0].LSN)
	}

	feng := fn.engine()
	if feng == nil {
		t.Fatal("follower engine missing after bootstrap")
	}
	if feng.Now() != p.eng.Now() {
		t.Fatalf("clocks diverge: follower %d, primary %d", feng.Now(), p.eng.Now())
	}
	pdb, fdb := p.eng.DB(), feng.DB()
	for _, name := range pdb.Items() {
		pv, _ := pdb.Get(name)
		fv, ok := fdb.Get(name)
		if !ok || !reflect.DeepEqual(pv, fv) {
			t.Fatalf("item %q diverges: primary %v, follower %v", name, pv, fv)
		}
	}
	// The firing logs must agree structurally (the follower's prefix went
	// through the snapshot's JSON round trip, so representations may
	// differ while the values must not).
	pf, ff := p.eng.Firings(), feng.Firings()
	if len(pf) == 0 {
		t.Fatal("workload produced no firings; test is vacuous")
	}
	if len(pf) != len(ff) {
		t.Fatalf("firing logs diverge: primary %d, follower %d", len(pf), len(ff))
	}
	for i := range pf {
		x, y := pf[i], ff[i]
		if x.Rule != y.Rule || x.Time != y.Time || x.StateIndex != y.StateIndex || len(x.Binding) != len(y.Binding) {
			t.Fatalf("firing %d diverges: primary %+v, follower %+v", i, x, y)
		}
		for k, v := range x.Binding {
			if w, ok := y.Binding[k]; !ok || !v.Equal(w) {
				t.Fatalf("firing %d binding %q diverges: %v vs %v", i, k, v, w)
			}
		}
	}

	// The follower's storage query reports through the node backend.
	sj, err := fn.Storage()
	if err != nil {
		t.Fatal(err)
	}
	if sj.LastLsn != p.node.LastLSN() {
		t.Fatalf("follower storage last LSN %d, want %d", sj.LastLsn, p.node.LastLSN())
	}
}

// TestWalTruncatedWireCode: the persist-layer truncated-head sentinel
// maps to the wal_truncated wire code, and a client-side RemoteError
// with that code unwraps to wire.ErrWalTruncated.
func TestWalTruncatedWireCode(t *testing.T) {
	if got := wire.CodeFor(&wire.RemoteError{Code: wire.CodeWalTruncated}); got != wire.CodeWalTruncated {
		t.Fatalf("CodeFor round-trip = %q", got)
	}
}
