package replica

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"ptlactive/internal/server/wire"
)

// StreamConfig configures a follower's replication pull loop.
type StreamConfig struct {
	// Primary is the upstream address to replicate from.
	Primary string
	// Dial opens the transport (default: net.Dial "tcp"). Chaos tests
	// inject torn and partitioned connections here.
	Dial func(addr string) (net.Conn, error)
	// Codecs is the frame-codec offer for the replication session
	// (default wire.DefaultCodecs); tests pin one to cover both framings.
	Codecs []string
	// BackoffBase and BackoffMax bound the capped exponential reconnect
	// backoff (defaults 50ms and 2s); jitter is applied on top.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Logf, when set, receives stream diagnostics.
	Logf func(format string, args ...any)
}

// Stream is a running replication pull loop: it dials the primary, sends
// a replicate request resuming at the node's last LSN, applies every
// pushed wal frame, and redials with capped exponential backoff plus
// jitter on any failure — duplicate frames are skipped by LSN on apply,
// so at-least-once delivery over reconnects stays exactly-once in effect.
type Stream struct {
	node *Node
	cfg  StreamConfig

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	mu   sync.Mutex
	conn net.Conn
}

// StartStream launches the pull loop for n against cfg.Primary.
func StartStream(n *Node, cfg StreamConfig) *Stream {
	if cfg.Dial == nil {
		cfg.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Stream{node: n, cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	go s.run()
	return s
}

// Stop terminates the loop and waits for it; safe to call repeatedly.
// The caller stops the stream before promoting its node.
func (s *Stream) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.Lock()
	if s.conn != nil {
		s.conn.Close()
	}
	s.mu.Unlock()
	<-s.done
}

func (s *Stream) setConn(c net.Conn) {
	s.mu.Lock()
	s.conn = c
	s.mu.Unlock()
}

func (s *Stream) run() {
	defer close(s.done)
	delay := s.cfg.BackoffBase
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		if s.node.promoted.Load() {
			return
		}
		before := s.node.LastLSN()
		err := s.once()
		if s.node.LastLSN() > before {
			// Progress resets the backoff: the primary was reachable and
			// shipping; the failure is fresh, not a continuation.
			delay = s.cfg.BackoffBase
		}
		if err != nil {
			s.cfg.Logf("replica: stream from %s: %v (retrying in ~%v)", s.cfg.Primary, err, delay)
		}
		// Capped exponential backoff with jitter: sleep delay/2 plus a
		// random half, so a fleet of followers does not redial in lockstep.
		sleep := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		select {
		case <-s.stop:
			return
		case <-time.After(sleep):
		}
		if delay *= 2; delay > s.cfg.BackoffMax {
			delay = s.cfg.BackoffMax
		}
	}
}

// once runs one connection lifetime: handshake, replicate request, then
// apply pushed frames until the stream dies. The wire client cannot carry
// this (wal pushes have no request id), so the loop speaks raw frames.
func (s *Stream) once() error {
	conn, err := s.cfg.Dial(s.cfg.Primary)
	if err != nil {
		return err
	}
	s.setConn(conn)
	defer func() {
		s.setConn(nil)
		conn.Close()
	}()
	// Hello is always JSON; the reply's Codec switches the session.
	hello := wire.Hello()
	hello.Codecs = s.cfg.Codecs
	if hello.Codecs == nil {
		hello.Codecs = wire.DefaultCodecs()
	}
	if err := wire.WriteFrame(conn, hello); err != nil {
		return err
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	reply, err := wire.ReadFrame(br)
	if err != nil {
		return err
	}
	if err := wire.CheckHello(reply); err != nil {
		return err
	}
	codec := wire.CodecJSON
	if reply.Codec != "" {
		if c, ok := wire.ParseCodec(reply.Codec); ok {
			codec = c
		}
	}
	req := &wire.Msg{T: wire.TypeReplicate, ID: 1, Lsn: s.node.LastLSN() + 1, Epoch: s.node.Epoch()}
	if err := wire.WriteFrameC(conn, req, codec); err != nil {
		return err
	}
	// snapBuf accumulates a chunked snapshot bootstrap (the primary ships
	// one when our resume position fell behind its retained WAL head); the
	// final chunk (More unset) installs it.
	var snapBuf []byte
	for {
		m, err := wire.ReadFrameC(br, codec)
		if err != nil {
			return err
		}
		switch m.T {
		case wire.TypeOK:
			// The replicate ack; batches follow.
		case wire.TypeWal:
			if _, err := s.node.Apply(m.Wal, m.Epoch); err != nil {
				return err
			}
		case wire.TypeSnap:
			snapBuf = append(snapBuf, m.Wal...)
			if !m.More {
				s.cfg.Logf("replica: bootstrapping from primary snapshot at LSN %d (%d bytes)", m.Lsn, len(snapBuf))
				if err := s.node.Bootstrap(snapBuf, m.Lsn); err != nil {
					return err
				}
				snapBuf = nil
			}
		case wire.TypeError:
			return fmt.Errorf("primary refused: %s: %s", m.Code, m.Err)
		case wire.TypeBye:
			return fmt.Errorf("primary is draining")
		default:
			return fmt.Errorf("unexpected %s frame on replication stream", m.T)
		}
	}
}
