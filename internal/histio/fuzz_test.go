package histio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ptlactive/internal/value"
)

// valueFromBytes deterministically derives an arbitrary (possibly nested)
// value from fuzz input, consuming bytes as it goes. Depth is bounded so
// adversarial inputs cannot build unbounded recursion.
func valueFromBytes(data []byte, depth int) (value.Value, []byte) {
	if len(data) == 0 {
		return value.Value{}, nil
	}
	sel := int(data[0])
	data = data[1:]
	kinds := 7
	if depth <= 0 {
		kinds = 5 // leaves only
	}
	switch sel % kinds {
	case 0:
		return value.Value{}, data
	case 1:
		return value.NewBool(sel%2 == 0), data
	case 2:
		n, rest := i64FromBytes(data)
		return value.NewInt(n), rest
	case 3:
		n, rest := i64FromBytes(data)
		f := math.Float64frombits(uint64(n))
		return value.NewFloat(f), rest
	case 4:
		ln := 0
		if len(data) > 0 {
			ln = int(data[0]) % 9
			data = data[1:]
		}
		if ln > len(data) {
			ln = len(data)
		}
		// JSON strings must be valid UTF-8; the encodable domain is
		// sanitized strings (json.Marshal would substitute U+FFFD anyway).
		return value.NewString(strings.ToValidUTF8(string(data[:ln]), "?")), data[ln:]
	case 5:
		n := 0
		if len(data) > 0 {
			n = int(data[0]) % 4
			data = data[1:]
		}
		elems := make([]value.Value, n)
		for i := 0; i < n; i++ {
			elems[i], data = valueFromBytes(data, depth-1)
		}
		return value.NewTuple(elems...), data
	default:
		nr := 0
		if len(data) > 0 {
			nr = int(data[0]) % 4
			data = data[1:]
		}
		nc := 0
		if len(data) > 0 {
			nc = int(data[0]) % 3
			data = data[1:]
		}
		rows := make([][]value.Value, nr)
		for i := range rows {
			rows[i] = make([]value.Value, nc)
			for j := 0; j < nc; j++ {
				rows[i][j], data = valueFromBytes(data, depth-1)
			}
		}
		return value.NewRelation(rows), data
	}
}

func i64FromBytes(data []byte) (int64, []byte) {
	var n uint64
	take := 8
	if take > len(data) {
		take = len(data)
	}
	for i := 0; i < take; i++ {
		n = n<<8 | uint64(data[i])
	}
	return int64(n), data[take:]
}

// FuzzEncodeValue is the round-trip property: every value survives
// Encode -> Decode exactly. Exactness is asserted three ways: same kind,
// same canonical Key (which covers nested structure), and a byte-identical
// re-encoding — the last one catches kind drift in nested positions where
// Key and Equal treat int and float alike, and holds for NaN where Equal
// does not.
func FuzzEncodeValue(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 42})
	f.Add([]byte{3, 0x7f, 0xf8, 0, 0, 0, 0, 0, 1})       // NaN
	f.Add([]byte{3, 0x7f, 0xf0, 0, 0, 0, 0, 0, 0})       // +Inf
	f.Add([]byte{3, 0xff, 0xf0, 0, 0, 0, 0, 0, 0})       // -Inf
	f.Add([]byte{5, 3, 2, 1, 2, 3, 4, 1, 0})             // tuple
	f.Add([]byte{6, 2, 2, 2, 1, 1, 4, 3, 'a', 'b', 'c'}) // relation
	f.Fuzz(func(t *testing.T, data []byte) {
		v, _ := valueFromBytes(data, 3)
		enc, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		dec, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("decode %s: %v", enc, err)
		}
		if dec.Kind() != v.Kind() {
			t.Fatalf("kind changed: %s -> %s (%s)", v.Kind(), dec.Kind(), enc)
		}
		if dec.Key() != v.Key() {
			t.Fatalf("key changed: %q -> %q (%s)", v.Key(), dec.Key(), enc)
		}
		re, err := EncodeValue(dec)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("encoding not stable: %s -> %s", enc, re)
		}
	})
}
