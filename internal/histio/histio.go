// Package histio serializes system histories as JSON lines, losslessly:
// one state per line with its timestamp, full database state and event
// set. It supports exporting an engine's history for offline analysis
// (ptlcheck, the naive evaluator) and rebuilding a history — or replaying
// it through a fresh engine — elsewhere. The durability subsystem
// (internal/persist) reuses the same encoding for snapshots and WAL
// records, so one kind-tagged value grammar covers every on-disk artifact.
//
// Values are kind-tagged so integers, floats, strings, booleans, tuples
// and relations round-trip exactly:
//
//	{"int": 3} {"float": 2.5} {"str": "x"} {"bool": true}
//	{"tuple": [...]} {"rel": [[...], ...]}
//
// Non-finite floats are not representable in JSON numbers; they are
// encoded as the strings "NaN", "+Inf" and "-Inf" under the float tag.
package histio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"ptlactive/internal/event"
	"ptlactive/internal/history"
	"ptlactive/internal/value"
)

// EncodeValue renders a value as its kind-tagged JSON form. The codec
// itself lives in the value package (value.EncodeJSON) so layers below
// histio — the rule-formula codec in internal/ptl — can share it.
func EncodeValue(v value.Value) (json.RawMessage, error) {
	return value.EncodeJSON(v)
}

// DecodeValue parses a kind-tagged JSON value.
func DecodeValue(raw json.RawMessage) (value.Value, error) {
	return value.DecodeJSON(raw)
}

// EncodeItems encodes an item map value by value.
func EncodeItems(items map[string]value.Value) (map[string]json.RawMessage, error) {
	out := make(map[string]json.RawMessage, len(items))
	for name, v := range items {
		raw, err := EncodeValue(v)
		if err != nil {
			return nil, fmt.Errorf("histio: item %s: %w", name, err)
		}
		out[name] = raw
	}
	return out, nil
}

// DecodeItems inverts EncodeItems.
func DecodeItems(raw map[string]json.RawMessage) (map[string]value.Value, error) {
	out := make(map[string]value.Value, len(raw))
	for name, r := range raw {
		v, err := DecodeValue(r)
		if err != nil {
			return nil, fmt.Errorf("histio: item %s: %w", name, err)
		}
		out[name] = v
	}
	return out, nil
}

// EncodeEvents encodes an event list as [name, arg...] records.
func EncodeEvents(events []event.Event) ([][]json.RawMessage, error) {
	var out [][]json.RawMessage
	for _, ev := range events {
		rec := make([]json.RawMessage, 0, len(ev.Args)+1)
		nameRaw, err := json.Marshal(ev.Name)
		if err != nil {
			return nil, err
		}
		rec = append(rec, nameRaw)
		for _, a := range ev.Args {
			raw, err := EncodeValue(a)
			if err != nil {
				return nil, err
			}
			rec = append(rec, raw)
		}
		out = append(out, rec)
	}
	return out, nil
}

// DecodeEvents inverts EncodeEvents.
func DecodeEvents(raw [][]json.RawMessage) ([]event.Event, error) {
	var events []event.Event
	for _, rec := range raw {
		if len(rec) == 0 {
			return nil, fmt.Errorf("histio: empty event")
		}
		var name string
		if err := json.Unmarshal(rec[0], &name); err != nil {
			return nil, fmt.Errorf("histio: event name: %w", err)
		}
		args := make([]value.Value, 0, len(rec)-1)
		for _, r := range rec[1:] {
			v, err := DecodeValue(r)
			if err != nil {
				return nil, err
			}
			args = append(args, v)
		}
		events = append(events, event.New(name, args...))
	}
	return events, nil
}

// StateJSON is the wire form of one system state; one line of a history
// export, and the per-state element of engine snapshots.
type StateJSON struct {
	Time   int64                      `json:"time"`
	DB     map[string]json.RawMessage `json:"db"`
	Events [][]json.RawMessage        `json:"events,omitempty"`
}

// EncodeState renders one system state in wire form.
func EncodeState(st history.SystemState) (StateJSON, error) {
	line := StateJSON{Time: st.TS, DB: map[string]json.RawMessage{}}
	var encErr error
	st.DB.Range(func(name string, v value.Value) bool {
		raw, err := EncodeValue(v)
		if err != nil {
			encErr = fmt.Errorf("histio: item %s: %w", name, err)
			return false
		}
		line.DB[name] = raw
		return true
	})
	if encErr != nil {
		return StateJSON{}, encErr
	}
	evs, err := EncodeEvents(st.Events.Events())
	if err != nil {
		return StateJSON{}, err
	}
	line.Events = evs
	return line, nil
}

// DecodeState inverts EncodeState.
func DecodeState(line StateJSON) (history.SystemState, error) {
	items, err := DecodeItems(line.DB)
	if err != nil {
		return history.SystemState{}, err
	}
	events, err := DecodeEvents(line.Events)
	if err != nil {
		return history.SystemState{}, err
	}
	return history.SystemState{
		DB:     history.NewDB(items),
		Events: event.NewSet(events...),
		TS:     line.Time,
	}, nil
}

// Write serializes the history, one state per line.
func Write(w io.Writer, h *history.History) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := 0; i < h.Len(); i++ {
		line, err := EncodeState(h.At(i))
		if err != nil {
			return err
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read rebuilds a history from Write's output. The transaction-time
// invariants are not re-checked (AppendUnchecked), so valid-time and
// committed histories round-trip too.
func Read(r io.Reader) (*history.History, error) {
	h := history.New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var line StateJSON
		if err := json.Unmarshal(text, &line); err != nil {
			return nil, fmt.Errorf("histio: line %d: %w", lineNo, err)
		}
		st, err := DecodeState(line)
		if err != nil {
			return nil, fmt.Errorf("histio: line %d: %w", lineNo, err)
		}
		if last, ok := h.Last(); ok && st.TS <= last.TS {
			return nil, fmt.Errorf("histio: line %d: timestamp %d not increasing", lineNo, st.TS)
		}
		h.AppendUnchecked(st)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return h, nil
}
