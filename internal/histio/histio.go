// Package histio serializes system histories as JSON lines, losslessly:
// one state per line with its timestamp, full database state and event
// set. It supports exporting an engine's history for offline analysis
// (ptlcheck, the naive evaluator) and rebuilding a history — or replaying
// it through a fresh engine — elsewhere.
//
// Values are kind-tagged so integers, floats, strings, booleans, tuples
// and relations round-trip exactly:
//
//	{"int": 3} {"float": 2.5} {"str": "x"} {"bool": true}
//	{"tuple": [...]} {"rel": [[...], ...]}
package histio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"ptlactive/internal/event"
	"ptlactive/internal/history"
	"ptlactive/internal/value"
)

// EncodeValue renders a value as its kind-tagged JSON form.
func EncodeValue(v value.Value) (json.RawMessage, error) {
	switch v.Kind() {
	case value.Null:
		return json.RawMessage(`{"null":true}`), nil
	case value.Bool:
		return tag("bool", v.AsBool())
	case value.Int:
		return tag("int", v.AsInt())
	case value.Float:
		return tag("float", v.AsFloat())
	case value.String:
		return tag("str", v.AsString())
	case value.Tuple:
		elems := make([]json.RawMessage, v.TupleLen())
		for i := 0; i < v.TupleLen(); i++ {
			e, err := EncodeValue(v.TupleAt(i))
			if err != nil {
				return nil, err
			}
			elems[i] = e
		}
		return tag("tuple", elems)
	case value.Relation:
		rows := make([][]json.RawMessage, 0, v.NumRows())
		for _, row := range v.Rows() {
			enc := make([]json.RawMessage, len(row))
			for i, cell := range row {
				e, err := EncodeValue(cell)
				if err != nil {
					return nil, err
				}
				enc[i] = e
			}
			rows = append(rows, enc)
		}
		return tag("rel", rows)
	default:
		return nil, fmt.Errorf("histio: unknown value kind %s", v.Kind())
	}
}

func tag(name string, payload any) (json.RawMessage, error) {
	return json.Marshal(map[string]any{name: payload})
}

// DecodeValue parses a kind-tagged JSON value.
func DecodeValue(raw json.RawMessage) (value.Value, error) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return value.Value{}, fmt.Errorf("histio: value: %w", err)
	}
	if len(m) != 1 {
		return value.Value{}, fmt.Errorf("histio: value must have exactly one kind tag, got %d", len(m))
	}
	for kind, payload := range m {
		switch kind {
		case "null":
			return value.Value{}, nil
		case "bool":
			var b bool
			if err := json.Unmarshal(payload, &b); err != nil {
				return value.Value{}, err
			}
			return value.NewBool(b), nil
		case "int":
			var i int64
			if err := json.Unmarshal(payload, &i); err != nil {
				return value.Value{}, err
			}
			return value.NewInt(i), nil
		case "float":
			var f float64
			if err := json.Unmarshal(payload, &f); err != nil {
				return value.Value{}, err
			}
			return value.NewFloat(f), nil
		case "str":
			var s string
			if err := json.Unmarshal(payload, &s); err != nil {
				return value.Value{}, err
			}
			return value.NewString(s), nil
		case "tuple":
			var elems []json.RawMessage
			if err := json.Unmarshal(payload, &elems); err != nil {
				return value.Value{}, err
			}
			out := make([]value.Value, len(elems))
			for i, e := range elems {
				v, err := DecodeValue(e)
				if err != nil {
					return value.Value{}, err
				}
				out[i] = v
			}
			return value.NewTuple(out...), nil
		case "rel":
			var rows [][]json.RawMessage
			if err := json.Unmarshal(payload, &rows); err != nil {
				return value.Value{}, err
			}
			out := make([][]value.Value, len(rows))
			for i, row := range rows {
				out[i] = make([]value.Value, len(row))
				for j, cell := range row {
					v, err := DecodeValue(cell)
					if err != nil {
						return value.Value{}, err
					}
					out[i][j] = v
				}
			}
			return value.NewRelation(out), nil
		default:
			return value.Value{}, fmt.Errorf("histio: unknown value kind tag %q", kind)
		}
	}
	return value.Value{}, fmt.Errorf("histio: empty value")
}

// stateLine is the wire form of one system state.
type stateLine struct {
	Time   int64                      `json:"time"`
	DB     map[string]json.RawMessage `json:"db"`
	Events [][]json.RawMessage        `json:"events,omitempty"`
}

// Write serializes the history, one state per line.
func Write(w io.Writer, h *history.History) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := 0; i < h.Len(); i++ {
		st := h.At(i)
		line := stateLine{Time: st.TS, DB: map[string]json.RawMessage{}}
		for _, name := range st.DB.Items() {
			v, _ := st.DB.Get(name)
			raw, err := EncodeValue(v)
			if err != nil {
				return err
			}
			line.DB[name] = raw
		}
		for _, ev := range st.Events.Events() {
			rec := make([]json.RawMessage, 0, len(ev.Args)+1)
			nameRaw, err := json.Marshal(ev.Name)
			if err != nil {
				return err
			}
			rec = append(rec, nameRaw)
			for _, a := range ev.Args {
				raw, err := EncodeValue(a)
				if err != nil {
					return err
				}
				rec = append(rec, raw)
			}
			line.Events = append(line.Events, rec)
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read rebuilds a history from Write's output. The transaction-time
// invariants are not re-checked (AppendUnchecked), so valid-time and
// committed histories round-trip too.
func Read(r io.Reader) (*history.History, error) {
	h := history.New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var line stateLine
		if err := json.Unmarshal(text, &line); err != nil {
			return nil, fmt.Errorf("histio: line %d: %w", lineNo, err)
		}
		items := map[string]value.Value{}
		for name, raw := range line.DB {
			v, err := DecodeValue(raw)
			if err != nil {
				return nil, fmt.Errorf("histio: line %d: item %s: %w", lineNo, name, err)
			}
			items[name] = v
		}
		var events []event.Event
		for _, rec := range line.Events {
			if len(rec) == 0 {
				return nil, fmt.Errorf("histio: line %d: empty event", lineNo)
			}
			var name string
			if err := json.Unmarshal(rec[0], &name); err != nil {
				return nil, fmt.Errorf("histio: line %d: event name: %w", lineNo, err)
			}
			args := make([]value.Value, 0, len(rec)-1)
			for _, raw := range rec[1:] {
				v, err := DecodeValue(raw)
				if err != nil {
					return nil, fmt.Errorf("histio: line %d: %w", lineNo, err)
				}
				args = append(args, v)
			}
			events = append(events, event.New(name, args...))
		}
		st := history.SystemState{
			DB:     history.NewDB(items),
			Events: event.NewSet(events...),
			TS:     line.Time,
		}
		if last, ok := h.Last(); ok && st.TS <= last.TS {
			return nil, fmt.Errorf("histio: line %d: timestamp %d not increasing", lineNo, st.TS)
		}
		h.AppendUnchecked(st)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return h, nil
}
