package histio

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"ptlactive/internal/naive"
	"ptlactive/internal/ptlgen"
	"ptlactive/internal/value"
)

func TestValueRoundTrip(t *testing.T) {
	vals := []value.Value{
		{},
		value.NewBool(true),
		value.NewBool(false),
		value.NewInt(-42),
		value.NewFloat(2.5),
		value.NewFloat(0),
		value.NewString("a \"quoted\" string\nwith newline"),
		value.NewString(""),
		value.NewTuple(value.NewInt(1), value.NewString("x"), value.NewTuple(value.NewBool(true))),
		value.NewRelation(nil),
		value.NewRelation([][]value.Value{
			{value.NewString("IBM"), value.NewFloat(72.5)},
			{value.NewString("DJ"), value.NewFloat(3900)},
		}),
	}
	for _, v := range vals {
		raw, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("encode %v: %v", v, err)
		}
		back, err := DecodeValue(raw)
		if err != nil {
			t.Fatalf("decode %s: %v", raw, err)
		}
		if !v.Equal(back) || v.Kind() != back.Kind() {
			t.Errorf("round trip changed %v (%s) -> %v (%s)", v, v.Kind(), back, back.Kind())
		}
	}
}

func TestValueIntFloatPreserved(t *testing.T) {
	// The tagged encoding must keep Int 2 distinct from Float 2.
	i, _ := EncodeValue(value.NewInt(2))
	f, _ := EncodeValue(value.NewFloat(2))
	vi, err := DecodeValue(i)
	if err != nil {
		t.Fatal(err)
	}
	vf, err := DecodeValue(f)
	if err != nil {
		t.Fatal(err)
	}
	if vi.Kind() != value.Int || vf.Kind() != value.Float {
		t.Fatalf("kinds lost: %s %s", vi.Kind(), vf.Kind())
	}
}

func TestDecodeValueErrors(t *testing.T) {
	bad := []string{
		`3`, `"s"`, `{}`, `{"int": 1, "str": "x"}`, `{"zzz": 1}`,
		`{"int": "notanint"}`, `{"tuple": 3}`, `{"rel": [3]}`,
		`{"tuple": [{"zzz": 1}]}`, `{"rel": [[{"zzz": 1}]]}`,
		`not json`, `{"bool": 3}`, `{"float": "x"}`, `{"str": 1}`,
	}
	for _, s := range bad {
		if _, err := DecodeValue(json.RawMessage(s)); err == nil {
			t.Errorf("DecodeValue(%s) should fail", s)
		}
	}
}

func TestHistoryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	h := ptlgen.History(rng, 60)
	var buf bytes.Buffer
	if err := Write(&buf, h); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != h.Len() {
		t.Fatalf("Len %d != %d", back.Len(), h.Len())
	}
	for i := 0; i < h.Len(); i++ {
		a, b := h.At(i), back.At(i)
		if a.TS != b.TS {
			t.Fatalf("state %d: ts %d != %d", i, a.TS, b.TS)
		}
		if !a.DB.Equal(b.DB) {
			t.Fatalf("state %d: db %s != %s", i, a.DB, b.DB)
		}
		if a.Events.String() != b.Events.String() {
			t.Fatalf("state %d: events %s != %s", i, a.Events, b.Events)
		}
	}
}

// TestRoundTripPreservesSemantics: formulas evaluate identically on the
// original and the re-read history — export is fit for offline analysis.
func TestRoundTripPreservesSemantics(t *testing.T) {
	reg := ptlgen.Registry()
	rng := rand.New(rand.NewSource(22))
	h := ptlgen.History(rng, 25)
	var buf bytes.Buffer
	if err := Write(&buf, h); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 40; it++ {
		f := ptlgen.Formula(rng, 1+rng.Intn(3))
		na := naive.New(reg, h, nil)
		nb := naive.New(reg, back, nil)
		for i := 0; i < h.Len(); i++ {
			a, err := na.Sat(i, f, nil)
			if err != nil {
				t.Fatal(err)
			}
			b, err := nb.Sat(i, f, nil)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("semantics changed at state %d for %s", i, f)
			}
		}
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		`not json`,
		`{"time": 1, "db": {"a": {"zzz": 1}}}`,
		`{"time": 1, "events": [[]]}`,
		`{"time": 1, "events": [[3]]}`,
		`{"time": 1, "events": [["e", {"zzz": 1}]]}`,
		"{\"time\": 5, \"db\": {}}\n{\"time\": 5, \"db\": {}}",
	}
	for _, s := range bad {
		if _, err := Read(strings.NewReader(s)); err == nil {
			t.Errorf("Read(%q) should fail", s)
		}
	}
	// Blank lines are skipped.
	h, err := Read(strings.NewReader("\n{\"time\": 1, \"db\": {}}\n\n"))
	if err != nil || h.Len() != 1 {
		t.Fatalf("blank-line handling: %v len=%d", err, h.Len())
	}
}
