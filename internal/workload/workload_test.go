package workload

import (
	"math/rand"
	"testing"

	"ptlactive/internal/value"
)

func TestStocksShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultStockConfig()
	h := Stocks(rng, cfg, 50)
	if h.Len() != 51 {
		t.Fatalf("Len = %d, want 51 (initial + 50 commits)", h.Len())
	}
	if got := len(h.CommitPoints()); got != 50 {
		t.Fatalf("commit points = %d", got)
	}
	// Prices stay above the floor; timestamps strictly increase (enforced
	// by History, but check the generator's bounds).
	for i := 0; i < h.Len(); i++ {
		st := h.At(i)
		for _, s := range cfg.Symbols {
			v, ok := st.DB.Get(ItemName(s))
			if !ok {
				t.Fatalf("state %d missing %s", i, ItemName(s))
			}
			if v.AsFloat() < cfg.Floor {
				t.Fatalf("price below floor at state %d: %v", i, v)
			}
		}
	}
	// Update events attached.
	st := h.At(1)
	if len(st.Events.ByName(cfg.UpdateEvent)) != 1 {
		t.Errorf("missing update event: %v", st.Events)
	}
	// Determinism.
	h2 := Stocks(rand.New(rand.NewSource(1)), cfg, 50)
	for i := 0; i < h.Len(); i++ {
		if !h.At(i).DB.Equal(h2.At(i).DB) || h.At(i).TS != h2.At(i).TS {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestStocksPanicsOnEmptySymbols(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Stocks(rand.New(rand.NewSource(1)), StockConfig{}, 1)
}

func TestSessionsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultSessionsConfig()
	h := Sessions(rng, cfg, 200)
	if h.Len() != 201 {
		t.Fatalf("Len = %d", h.Len())
	}
	// Logins and logouts alternate per user (no double login).
	logged := map[string]bool{}
	for i := 0; i < h.Len(); i++ {
		for _, e := range h.At(i).Events.Events() {
			switch e.Name {
			case "login":
				u := e.Args[0].AsString()
				if logged[u] {
					t.Fatalf("double login for %s at state %d", u, i)
				}
				logged[u] = true
			case "logout":
				u := e.Args[0].AsString()
				if !logged[u] {
					t.Fatalf("logout without login for %s at state %d", u, i)
				}
				logged[u] = false
			}
		}
	}
	// The watched item exists everywhere.
	if _, ok := h.At(0).DB.Get("A"); !ok {
		t.Error("A item missing")
	}
}

func TestEventMix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := EventMix(rng, []string{"rare", "noise"}, []float64{0.01, 0.99}, 500)
	if h.Len() != 501 {
		t.Fatalf("Len = %d", h.Len())
	}
	rare, noise := 0, 0
	for i := 1; i < h.Len(); i++ {
		evs := h.At(i).Events.Events()
		if len(evs) != 1 {
			t.Fatalf("state %d has %d events", i, len(evs))
		}
		switch evs[0].Name {
		case "rare":
			rare++
		case "noise":
			noise++
		}
	}
	if rare+noise != 500 || noise < 400 {
		t.Errorf("mix off: rare=%d noise=%d", rare, noise)
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched weights should panic")
		}
	}()
	EventMix(rng, []string{"a"}, nil, 1)
}

func TestRetroStream(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ops := Retro(rng, 10, 5, 0.3)
	begins, commits, aborts, posts := 0, 0, 0, 0
	lastAt := int64(0)
	for _, op := range ops {
		switch op.Op {
		case "begin":
			begins++
		case "post":
			posts++
			if op.Valid > op.At || op.At-op.Valid > 5 {
				t.Fatalf("post outside delay window: %+v", op)
			}
			if op.V.Kind() != value.Int {
				t.Fatalf("post value kind %s", op.V.Kind())
			}
		case "commit":
			commits++
		case "abort":
			aborts++
		}
		if op.At < lastAt {
			t.Fatalf("operation times went backwards: %+v", op)
		}
		lastAt = op.At
	}
	if begins != 10 || commits+aborts != 10 || posts < 10 {
		t.Errorf("ops: begins=%d commits=%d aborts=%d posts=%d", begins, commits, aborts, posts)
	}
}
