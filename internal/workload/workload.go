// Package workload generates the synthetic inputs the benchmarks and
// examples run on. The paper's motivating domains are a stock market feed
// (IBM price, Dow Jones Industrial Average) and user sessions
// (login/logout); since the original traces are not available, these
// generators produce deterministic-seed equivalents that exercise the
// same code paths (see DESIGN.md's substitution table).
package workload

import (
	"fmt"
	"math/rand"

	"ptlactive/internal/event"
	"ptlactive/internal/history"
	"ptlactive/internal/value"
)

// StockConfig parameterizes a random-walk stock feed.
type StockConfig struct {
	// Symbols are the stock names; item "px_<symbol>" holds each price.
	Symbols []string
	// Start is the initial price for every symbol.
	Start float64
	// Step is the maximum absolute per-tick change.
	Step float64
	// Floor clamps prices from below (prices never drop under it).
	Floor float64
	// TickGap is the maximum gap between consecutive tick timestamps
	// (uniform in 1..TickGap).
	TickGap int64
	// UpdateEvent, when set, attaches @<UpdateEvent>(symbol) to each
	// commit (the paper's update_stocks).
	UpdateEvent string
}

// DefaultStockConfig mirrors the paper's examples: one IBM-like symbol and
// the DJ index.
func DefaultStockConfig() StockConfig {
	return StockConfig{
		Symbols:     []string{"IBM", "DJ"},
		Start:       100,
		Step:        4,
		Floor:       1,
		TickGap:     3,
		UpdateEvent: "update_stocks",
	}
}

// ItemName returns the database item holding a symbol's price.
func ItemName(symbol string) string { return "px_" + symbol }

// Stocks generates a transaction-time history of n price-update commits.
// Each commit updates one symbol (round-robin) by a bounded random step.
func Stocks(rng *rand.Rand, cfg StockConfig, n int) *history.History {
	if len(cfg.Symbols) == 0 {
		panic("workload: no symbols")
	}
	db := history.EmptyDB()
	prices := map[string]float64{}
	for _, s := range cfg.Symbols {
		prices[s] = cfg.Start
		db = db.With(ItemName(s), value.NewFloat(cfg.Start))
	}
	b := history.NewBuilder(db, 0)
	for i := 0; i < n; i++ {
		sym := cfg.Symbols[i%len(cfg.Symbols)]
		delta := (rng.Float64()*2 - 1) * cfg.Step
		prices[sym] += delta
		if prices[sym] < cfg.Floor {
			prices[sym] = cfg.Floor
		}
		ts := b.Now() + 1 + rng.Int63n(cfg.TickGap)
		var evs []event.Event
		if cfg.UpdateEvent != "" {
			evs = append(evs, event.New(cfg.UpdateEvent, value.NewString(sym)))
		}
		if err := b.Commit(ts, int64(i+1), map[string]value.Value{
			ItemName(sym): value.NewFloat(prices[sym]),
		}, evs...); err != nil {
			panic(fmt.Sprintf("workload: %v", err))
		}
	}
	return b.History()
}

// SessionsConfig parameterizes a login/logout event stream.
type SessionsConfig struct {
	// Users is the number of distinct users (user names u0..u{n-1}).
	Users int
	// PLogin / PLogout are the per-tick probabilities that a logged-out
	// user logs in / a logged-in user logs out.
	PLogin, PLogout float64
	// AItem, when set, names an integer item ("A" in the paper's intro
	// example) updated by a random walk on commits interleaved with the
	// session events.
	AItem string
	// AStart is the initial value of AItem.
	AStart int64
}

// DefaultSessionsConfig matches the intro example's shape.
func DefaultSessionsConfig() SessionsConfig {
	return SessionsConfig{Users: 5, PLogin: 0.3, PLogout: 0.2, AItem: "A", AStart: 5}
}

// Sessions generates a history of n states mixing login/logout events and
// (when configured) commits updating the watched item.
func Sessions(rng *rand.Rand, cfg SessionsConfig, n int) *history.History {
	db := history.EmptyDB()
	a := cfg.AStart
	if cfg.AItem != "" {
		db = db.With(cfg.AItem, value.NewInt(a))
	}
	b := history.NewBuilder(db, 0)
	loggedIn := make([]bool, cfg.Users)
	txn := int64(0)
	for i := 0; i < n; i++ {
		ts := b.Now() + 1
		var evs []event.Event
		for u := 0; u < cfg.Users; u++ {
			name := value.NewString(fmt.Sprintf("u%d", u))
			if loggedIn[u] {
				if rng.Float64() < cfg.PLogout {
					loggedIn[u] = false
					evs = append(evs, event.New("logout", name))
				}
			} else if rng.Float64() < cfg.PLogin {
				loggedIn[u] = true
				evs = append(evs, event.New("login", name))
			}
		}
		if cfg.AItem != "" && rng.Intn(2) == 0 {
			txn++
			a += int64(rng.Intn(5)) - 2
			if err := b.Commit(ts, txn, map[string]value.Value{cfg.AItem: value.NewInt(a)}, evs...); err != nil {
				panic(fmt.Sprintf("workload: %v", err))
			}
			continue
		}
		if len(evs) == 0 {
			evs = append(evs, event.New("tick"))
		}
		if err := b.Event(ts, evs...); err != nil {
			panic(fmt.Sprintf("workload: %v", err))
		}
	}
	return b.History()
}

// EventMix generates a history of n event-only states. Each state carries
// one event drawn from names with the given weights (parallel slices); a
// weight of 0 never occurs.
func EventMix(rng *rand.Rand, names []string, weights []float64, n int) *history.History {
	if len(names) != len(weights) || len(names) == 0 {
		panic("workload: names/weights mismatch")
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	b := history.NewBuilder(history.EmptyDB(), 0)
	for i := 0; i < n; i++ {
		x := rng.Float64() * total
		pick := 0
		for j, w := range weights {
			if x < w {
				pick = j
				break
			}
			x -= w
		}
		if err := b.Event(b.Now()+1, event.New(names[pick])); err != nil {
			panic(fmt.Sprintf("workload: %v", err))
		}
	}
	return b.History()
}

// RetroStream is one operation of a valid-time workload.
type RetroStream struct {
	// Op is "begin", "post", "commit" or "abort".
	Op string
	// Txn is the transaction id.
	Txn int64
	// Item/V/Valid/At parameterize posts; At is also the commit/abort
	// time.
	Item  string
	V     value.Value
	Valid int64
	At    int64
}

// Retro generates a valid-time operation stream: txns transactions, each
// posting 1..3 retroactive updates and committing (a fraction aborts).
// Every update's valid time is within maxDelay of both its posting time
// and its transaction's commit time, so the stream satisfies the
// maximum-delay invariant the definiteness machinery relies on
// (Section 9.2).
func Retro(rng *rand.Rand, txns int, maxDelay int64, abortFrac float64) []RetroStream {
	var out []RetroStream
	now := int64(1)
	for id := int64(1); id <= int64(txns); id++ {
		out = append(out, RetroStream{Op: "begin", Txn: id, At: now})
		nu := 1 + rng.Intn(3)
		// All posts and the commit happen at one instant pt, so
		// commit - valid <= maxDelay reduces to the per-post bound.
		pt := now
		for u := 0; u < nu; u++ {
			lo := pt - maxDelay
			if lo < 1 {
				lo = 1
			}
			valid := pt
			if lo < pt {
				valid = lo + rng.Int63n(pt-lo+1)
			}
			out = append(out, RetroStream{
				Op: "post", Txn: id, Item: "a",
				V:     value.NewInt(int64(rng.Intn(100))),
				Valid: valid, At: pt,
			})
		}
		if rng.Float64() < abortFrac {
			out = append(out, RetroStream{Op: "abort", Txn: id, At: pt})
		} else {
			out = append(out, RetroStream{Op: "commit", Txn: id, At: pt})
		}
		now = pt + 1 + rng.Int63n(3)
	}
	return out
}
