package core

import (
	"ptlactive/internal/ptl"
	"ptlactive/internal/value"
)

// Clone returns an independent copy of the evaluator sharing no mutable
// state with the original. Constraint nodes are immutable, so the stored
// F_{g,i} DAGs are shared structurally; only the maps and aggregate
// buffers are copied.
//
// The engine uses clones to evaluate integrity constraints against a
// tentative commit state: if the transaction aborts, the clone is
// discarded and the original evaluator never sees the rolled-back state
// (Section 8; abort must leave no trace in the temporal component).
func (e *Evaluator) Clone() *Evaluator {
	c := &Evaluator{
		info:      e.info,
		reg:       e.reg,
		log:       e.log,
		sincePrev: make(map[*ptl.Since]*cnode, len(e.sincePrev)),
		lastPrev:  make(map[*ptl.Lasttime]*cnode, len(e.lastPrev)),
		aggs:      make(map[*ptl.Agg]*aggState, len(e.aggs)),
		aggOrder:  e.aggOrder,
		optimize:  e.optimize,
		steps:     e.steps,
		// cacheable is immutable and shared; the query cache starts empty
		// (it refills on the clone's first unhinted step).
		cacheable: e.cacheable,
	}
	for k, v := range e.sincePrev {
		c.sincePrev[k] = v
	}
	for k, v := range e.lastPrev {
		c.lastPrev[k] = v
	}
	for k, v := range e.aggs {
		c.aggs[k] = v.clone()
	}
	return c
}

func (s *aggState) clone() *aggState {
	c := &aggState{
		agg:     s.agg,
		reg:     s.reg,
		started: s.started,
		samples: append([]value.Value(nil), s.samples...),
		times:   append([]int64(nil), s.times...),
		sum:     s.sum,
		count:   s.count,
		cur:     s.cur,
		has:     s.has,
	}
	if s.startEv != nil {
		c.startEv = s.startEv.Clone()
	}
	c.sampEv = s.sampEv.Clone()
	return c
}
