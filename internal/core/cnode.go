// Package core implements the paper's primary contribution: the
// incremental algorithm of Section 5 for evaluating PTL trigger
// conditions. After the i-th update it maintains, for every temporal
// subformula g, a constraint formula F_{g,i} over the condition's
// variables; the recurrences
//
//	F_{g since h, i} = F_{h,i}  OR  (F_{g,i} AND F_{g since h, i-1})
//	F_{lasttime g, i} = F_{g, i-1}
//
// combine each new system state with the stored formulas, so evaluation
// cost depends on the change, never on the length of the history
// (Theorem 1). Constraint formulas are kept as an and-or graph with
// aggressive simplification, and the time-bound optimization folds dead
// clauses over time-anchored variables to false, which bounds the state
// kept for bounded operators.
//
// This file implements the constraint-formula representation: immutable
// nodes (true/false, comparison atoms, and/or/not) over constraint terms
// (constants, variables, arithmetic), with construction-time
// simplification, substitution, pruning, evaluation and candidate
// extraction.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"ptlactive/internal/value"
)

// ctKind enumerates constraint-term kinds.
type ctKind int

const (
	ctConst ctKind = iota
	ctVar
	ctArith
)

// cterm is an immutable constraint term: a constant, a variable left
// symbolic by an enclosing assignment, or arithmetic over those.
type cterm struct {
	kind ctKind
	v    value.Value   // ctConst
	name string        // ctVar
	op   value.ArithOp // ctArith
	l, r *cterm        // ctArith
	key  string
	vars []string // sorted distinct variable names, nil when ground
}

func constTerm(v value.Value) *cterm {
	return &cterm{kind: ctConst, v: v, key: "c" + v.Key()}
}

func varTerm(name string) *cterm {
	return &cterm{kind: ctVar, name: name, key: "v" + name + ";", vars: []string{name}}
}

// arithTerm builds an arithmetic term, folding when both sides are
// constant. Arithmetic over an undefined (Null) constant yields Null,
// implementing "undefined aggregate values propagate" (see package naive).
func arithTerm(op value.ArithOp, l, r *cterm) (*cterm, error) {
	if l.kind == ctConst && r.kind == ctConst {
		if l.v.IsNull() || r.v.IsNull() || divByZero(op, r.v) {
			return constTerm(value.Value{}), nil
		}
		v, err := value.Arith(op, l.v, r.v)
		if err != nil {
			return nil, err
		}
		return constTerm(v), nil
	}
	return &cterm{kind: ctArith, op: op, l: l, r: r,
		key:  "a" + op.String() + "(" + l.key + r.key + ")",
		vars: mergeVars(l.vars, r.vars)}, nil
}

// hasVar reports whether the term mentions any variable.
func (t *cterm) hasVar() bool {
	switch t.kind {
	case ctVar:
		return true
	case ctArith:
		return t.l.hasVar() || t.r.hasVar()
	default:
		return false
	}
}

// subst replaces a variable with a constant value, folding arithmetic.
func (t *cterm) subst(name string, v value.Value) (*cterm, error) {
	switch t.kind {
	case ctConst:
		return t, nil
	case ctVar:
		if t.name == name {
			return constTerm(v), nil
		}
		return t, nil
	case ctArith:
		l, err := t.l.subst(name, v)
		if err != nil {
			return nil, err
		}
		r, err := t.r.subst(name, v)
		if err != nil {
			return nil, err
		}
		if l == t.l && r == t.r {
			return t, nil
		}
		return arithTerm(t.op, l, r)
	default:
		return nil, fmt.Errorf("core: unknown cterm kind %d", t.kind)
	}
}

// eval computes the term under a complete assignment.
func (t *cterm) eval(env map[string]value.Value) (value.Value, error) {
	switch t.kind {
	case ctConst:
		return t.v, nil
	case ctVar:
		v, ok := env[t.name]
		if !ok {
			return value.Value{}, fmt.Errorf("core: unbound variable %s in constraint", t.name)
		}
		return v, nil
	case ctArith:
		l, err := t.l.eval(env)
		if err != nil {
			return value.Value{}, err
		}
		r, err := t.r.eval(env)
		if err != nil {
			return value.Value{}, err
		}
		if l.IsNull() || r.IsNull() || divByZero(t.op, r) {
			return value.Value{}, nil
		}
		return value.Arith(t.op, l, r)
	default:
		return value.Value{}, fmt.Errorf("core: unknown cterm kind %d", t.kind)
	}
}

func (t *cterm) String() string {
	switch t.kind {
	case ctConst:
		return t.v.String()
	case ctVar:
		return t.name
	case ctArith:
		return fmt.Sprintf("(%s %s %s)", t.l, t.op, t.r)
	default:
		return "?"
	}
}

// nodeKind enumerates constraint-formula node kinds.
type nodeKind int

const (
	nkTrue nodeKind = iota
	nkFalse
	nkAtom // comparison atom over cterms
	nkMember
	nkAnd
	nkOr
	nkNot
)

// memberExpandLimit caps the equality expansion of a membership atom
// (rows x elements); beyond it evaluation reports an error rather than
// building an unbounded constraint formula.
const memberExpandLimit = 100000

// cnode is an immutable constraint-formula node. Nodes are shared freely:
// the Since recurrence links each new formula to the previous one, so the
// stored state forms a DAG ("the formulas F can be maintained as an and-or
// graph", Section 5). Construction is hash-consed through the process-wide
// intern table (intern.go): structurally equal formulas are one pointer,
// which makes pointer-keyed memoization effective across rules and lets
// and/or keys use compact node ids instead of concatenated subtree keys.
type cnode struct {
	kind  nodeKind
	op    value.CmpOp // nkAtom
	l, r  *cterm      // nkAtom
	elems []*cterm    // nkMember tuple elements
	rel   *cterm      // nkMember relation term
	kids  []*cnode    // nkAnd, nkOr (flattened, deduplicated)
	sub   *cnode      // nkNot
	key   string
	id    uint64   // interner-assigned, unique per live node
	vars  []string // sorted distinct variable names, nil when ground
}

var (
	nodeTrue  = &cnode{kind: nkTrue, key: "T", id: 1}
	nodeFalse = &cnode{kind: nkFalse, key: "F", id: 2}
)

func nodeBool(b bool) *cnode {
	if b {
		return nodeTrue
	}
	return nodeFalse
}

// mkAtom builds a comparison atom, folding to a constant when both sides
// are ground. A Null (undefined) side makes the atom false.
func mkAtom(op value.CmpOp, l, r *cterm) (*cnode, error) {
	if !l.hasVar() && !r.hasVar() {
		lv, err := l.eval(nil)
		if err != nil {
			return nil, err
		}
		rv, err := r.eval(nil)
		if err != nil {
			return nil, err
		}
		if lv.IsNull() || rv.IsNull() {
			return nodeFalse, nil
		}
		b, err := value.Cmp(op, lv, rv)
		if err != nil {
			return nil, err
		}
		return nodeBool(b), nil
	}
	key := "@" + op.String() + "(" + l.key + r.key + ")"
	return internNode(key, func() *cnode {
		return &cnode{kind: nkAtom, op: op, l: l, r: r,
			vars: mergeVars(l.vars, r.vars)}
	}), nil
}

// mkMember builds a membership atom (elems) in rel. When the relation
// side is a constant it expands into the disjunction over rows of
// element-equality conjunctions — membership is how relation-valued
// bindings (the paper's auxiliary relations R_x) surface as equality
// constraints that bind rule parameters. While the relation is still
// symbolic (bound by an enclosing assignment under a temporal operator)
// the atom is kept as-is and expands upon substitution.
func mkMember(elems []*cterm, rel *cterm) (*cnode, error) {
	if rel.kind == ctConst {
		if rel.v.IsNull() {
			return nodeFalse, nil
		}
		if rel.v.Kind() != value.Relation {
			return nil, fmt.Errorf("core: membership in %s, want relation", rel.v.Kind())
		}
		rows := rel.v.Rows()
		if len(rows)*len(elems) > memberExpandLimit {
			return nil, fmt.Errorf("core: membership expansion of %d rows x %d elements exceeds limit %d",
				len(rows), len(elems), memberExpandLimit)
		}
		disjuncts := make([]*cnode, 0, len(rows))
		for _, row := range rows {
			if len(row) != len(elems) {
				continue // arity mismatch cannot match
			}
			conj := make([]*cnode, len(elems))
			for k := range elems {
				a, err := mkAtom(value.EQ, elems[k], constTerm(row[k]))
				if err != nil {
					return nil, err
				}
				conj[k] = a
			}
			disjuncts = append(disjuncts, mkAnd(conj...))
		}
		return mkOr(disjuncts...), nil
	}
	var sb strings.Builder
	sb.WriteString("m(")
	for _, e := range elems {
		sb.WriteString(e.key)
	}
	sb.WriteString(":")
	sb.WriteString(rel.key)
	sb.WriteString(")")
	return internNode(sb.String(), func() *cnode {
		lists := make([][]string, 0, len(elems)+1)
		for _, e := range elems {
			lists = append(lists, e.vars)
		}
		lists = append(lists, rel.vars)
		return &cnode{kind: nkMember, elems: elems, rel: rel, vars: mergeVars(lists...)}
	}), nil
}

// mkAnd conjoins nodes with flattening, constant folding, deduplication
// and complementary-pair detection.
func mkAnd(kids ...*cnode) *cnode {
	flat := make([]*cnode, 0, len(kids))
	seen := make(map[string]struct{}, len(kids))
	var add func(n *cnode) bool // returns false if the whole AND is false
	add = func(n *cnode) bool {
		switch n.kind {
		case nkTrue:
			return true
		case nkFalse:
			return false
		case nkAnd:
			for _, k := range n.kids {
				if !add(k) {
					return false
				}
			}
			return true
		default:
			if _, dup := seen[n.key]; dup {
				return true
			}
			if _, comp := seen[complementKey(n)]; comp {
				return false
			}
			seen[n.key] = struct{}{}
			flat = append(flat, n)
			return true
		}
	}
	for _, k := range kids {
		if !add(k) {
			return nodeFalse
		}
	}
	switch len(flat) {
	case 0:
		return nodeTrue
	case 1:
		return flat[0]
	}
	return internNode(junctionKey('&', flat), func() *cnode {
		return &cnode{kind: nkAnd, kids: flat, vars: kidVars(flat)}
	})
}

// mkOr disjoins nodes, dual to mkAnd.
func mkOr(kids ...*cnode) *cnode {
	flat := make([]*cnode, 0, len(kids))
	seen := make(map[string]struct{}, len(kids))
	var add func(n *cnode) bool // returns false if the whole OR is true
	add = func(n *cnode) bool {
		switch n.kind {
		case nkFalse:
			return true
		case nkTrue:
			return false
		case nkOr:
			for _, k := range n.kids {
				if !add(k) {
					return false
				}
			}
			return true
		default:
			if _, dup := seen[n.key]; dup {
				return true
			}
			if _, comp := seen[complementKey(n)]; comp {
				return false
			}
			seen[n.key] = struct{}{}
			flat = append(flat, n)
			return true
		}
	}
	for _, k := range kids {
		if !add(k) {
			return nodeTrue
		}
	}
	switch len(flat) {
	case 0:
		return nodeFalse
	case 1:
		return flat[0]
	}
	return internNode(junctionKey('|', flat), func() *cnode {
		return &cnode{kind: nkOr, kids: flat, vars: kidVars(flat)}
	})
}

// mkNot negates a node. Atoms negate into their complementary operator so
// negation never blocks folding.
func mkNot(n *cnode) *cnode {
	switch n.kind {
	case nkTrue:
		return nodeFalse
	case nkFalse:
		return nodeTrue
	case nkNot:
		return n.sub
	case nkAtom:
		neg, err := mkAtom(n.op.Negate(), n.l, n.r)
		if err != nil {
			// Negating an existing atom cannot introduce evaluation errors.
			panic(fmt.Sprintf("core: internal: negate atom: %v", err))
		}
		return neg
	default:
		return internNode(notKey(n), func() *cnode {
			return &cnode{kind: nkNot, sub: n, vars: n.vars}
		})
	}
}

// complementKey returns the key of a node's direct complement, for
// contradiction/tautology detection inside mkAnd/mkOr.
func complementKey(n *cnode) string {
	switch n.kind {
	case nkAtom:
		return "@" + n.op.Negate().String() + "(" + n.l.key + n.r.key + ")"
	case nkNot:
		return n.sub.key
	default:
		return notKey(n)
	}
}

// junctionKey builds an and/or intern key from the children's interner
// ids. Children are interned before parents, so structurally equal child
// lists yield identical keys within an intern epoch, at O(#kids) cost
// instead of the O(subtree) churn of concatenating full child keys.
func junctionKey(tag byte, kids []*cnode) string {
	var sb strings.Builder
	sb.Grow(3 + len(kids)*8)
	sb.WriteByte(tag)
	sb.WriteByte('(')
	for i, k := range kids {
		if i > 0 {
			sb.WriteByte('.')
		}
		sb.WriteString(strconv.FormatUint(k.id, 10))
	}
	sb.WriteByte(')')
	return sb.String()
}

// notKey is the intern key of the negation of n; complementKey relies on
// the two producing the same string.
func notKey(n *cnode) string {
	return "!" + strconv.FormatUint(n.id, 10)
}

// kidVars merges the variable lists of the children.
func kidVars(kids []*cnode) []string {
	lists := make([][]string, len(kids))
	for i, k := range kids {
		lists[i] = k.vars
	}
	return mergeVars(lists...)
}

// substNode substitutes a constant for a variable throughout the node,
// re-simplifying. A memo table keyed by node pointer keeps the cost
// proportional to the DAG size, not the tree size.
func substNode(n *cnode, name string, v value.Value, memo map[*cnode]*cnode) (*cnode, error) {
	if !n.mentions(name) {
		return n, nil
	}
	if cached, ok := memo[n]; ok {
		return cached, nil
	}
	var out *cnode
	var err error
	switch n.kind {
	case nkTrue, nkFalse:
		out = n
	case nkAtom:
		l, lerr := n.l.subst(name, v)
		if lerr != nil {
			return nil, lerr
		}
		r, rerr := n.r.subst(name, v)
		if rerr != nil {
			return nil, rerr
		}
		if l == n.l && r == n.r {
			out = n
		} else {
			out, err = mkAtom(n.op, l, r)
			if err != nil {
				return nil, err
			}
		}
	case nkMember:
		elems := make([]*cterm, len(n.elems))
		changed := false
		for i, e := range n.elems {
			ne, eerr := e.subst(name, v)
			if eerr != nil {
				return nil, eerr
			}
			elems[i] = ne
			if ne != e {
				changed = true
			}
		}
		rel, rerr := n.rel.subst(name, v)
		if rerr != nil {
			return nil, rerr
		}
		if !changed && rel == n.rel {
			out = n
		} else {
			out, err = mkMember(elems, rel)
			if err != nil {
				return nil, err
			}
		}
	case nkAnd, nkOr:
		kids := make([]*cnode, len(n.kids))
		changed := false
		for i, k := range n.kids {
			nk, kerr := substNode(k, name, v, memo)
			if kerr != nil {
				return nil, kerr
			}
			kids[i] = nk
			if nk != k {
				changed = true
			}
		}
		if !changed {
			out = n
		} else if n.kind == nkAnd {
			out = mkAnd(kids...)
		} else {
			out = mkOr(kids...)
		}
	case nkNot:
		s, serr := substNode(n.sub, name, v, memo)
		if serr != nil {
			return nil, serr
		}
		if s == n.sub {
			out = n
		} else {
			out = mkNot(s)
		}
	default:
		return nil, fmt.Errorf("core: unknown node kind %d", n.kind)
	}
	memo[n] = out
	return out, nil
}

// evalNode evaluates the node under a complete assignment. Comparison
// errors (e.g. ordering a string against an int) surface as errors.
func evalNode(n *cnode, env map[string]value.Value) (bool, error) {
	switch n.kind {
	case nkTrue:
		return true, nil
	case nkFalse:
		return false, nil
	case nkAtom:
		l, err := n.l.eval(env)
		if err != nil {
			return false, err
		}
		r, err := n.r.eval(env)
		if err != nil {
			return false, err
		}
		if l.IsNull() || r.IsNull() {
			return false, nil
		}
		return value.Cmp(n.op, l, r)
	case nkMember:
		rel, err := n.rel.eval(env)
		if err != nil {
			return false, err
		}
		if rel.IsNull() {
			return false, nil
		}
		if rel.Kind() != value.Relation {
			return false, fmt.Errorf("core: membership in %s, want relation", rel.Kind())
		}
		elems := make([]value.Value, len(n.elems))
		for i, e := range n.elems {
			v, err := e.eval(env)
			if err != nil {
				return false, err
			}
			elems[i] = v
		}
		want := value.NewTuple(elems...)
		for _, row := range rel.Rows() {
			if value.NewTuple(row...).Equal(want) {
				return true, nil
			}
		}
		return false, nil
	case nkAnd:
		for _, k := range n.kids {
			b, err := evalNode(k, env)
			if err != nil || !b {
				return false, err
			}
		}
		return true, nil
	case nkOr:
		for _, k := range n.kids {
			b, err := evalNode(k, env)
			if err != nil {
				return false, err
			}
			if b {
				return true, nil
			}
		}
		return false, nil
	case nkNot:
		b, err := evalNode(n.sub, env)
		return !b, err
	default:
		return false, fmt.Errorf("core: unknown node kind %d", n.kind)
	}
}

// timeBoundPrune implements the Section-5 optimization: for a variable t
// known to always be substituted with the current time (which is
// nondecreasing), an upper-bound clause like t <= c can never be satisfied
// again once now > c, so it folds to false; dually a lower-bound clause
// t >= c is permanently satisfied once now >= c and folds to true. The
// memo is keyed by node pointer and is valid for one value of now.
func timeBoundPrune(n *cnode, now int64, timeVars map[string]bool, memo map[*cnode]*cnode) *cnode {
	if len(timeVars) == 0 || !n.mentionsAny(timeVars) {
		return n
	}
	if cached, ok := memo[n]; ok {
		return cached
	}
	out := n
	switch n.kind {
	case nkAtom:
		if v, c, op, ok := varConstAtom(n, timeVars); ok {
			_ = v
			switch op {
			case value.LE, value.EQ:
				if float64(now) > c {
					out = nodeFalse
				}
			case value.LT:
				if float64(now) >= c {
					out = nodeFalse
				}
			case value.GE:
				if float64(now) >= c {
					out = nodeTrue
				}
			case value.GT:
				if float64(now) > c {
					out = nodeTrue
				}
			case value.NE:
				if float64(now) > c {
					out = nodeTrue
				}
			}
		}
	case nkAnd, nkOr:
		kids := make([]*cnode, len(n.kids))
		changed := false
		for i, k := range n.kids {
			nk := timeBoundPrune(k, now, timeVars, memo)
			kids[i] = nk
			if nk != k {
				changed = true
			}
		}
		if changed {
			if n.kind == nkAnd {
				out = mkAnd(kids...)
			} else {
				out = mkOr(kids...)
			}
		}
	case nkNot:
		s := timeBoundPrune(n.sub, now, timeVars, memo)
		if s != n.sub {
			out = mkNot(s)
		}
	}
	memo[n] = out
	return out
}

// linearPart is the decomposition of a constraint term as sign*var +
// offset where sign is 0 (no variable), +1 or -1.
type linearPart struct {
	varName string
	sign    int
	offset  float64
}

// decomposeLinear writes the term as sign*var + offset when it has that
// shape (additive chains with at most one variable of unit coefficient).
func decomposeLinear(t *cterm) (linearPart, bool) {
	switch t.kind {
	case ctConst:
		if !t.v.IsNumeric() {
			return linearPart{}, false
		}
		return linearPart{offset: t.v.AsFloat()}, true
	case ctVar:
		return linearPart{varName: t.name, sign: 1}, true
	case ctArith:
		if t.op != value.Add && t.op != value.Sub {
			return linearPart{}, false
		}
		l, ok := decomposeLinear(t.l)
		if !ok {
			return linearPart{}, false
		}
		r, ok := decomposeLinear(t.r)
		if !ok {
			return linearPart{}, false
		}
		if t.op == value.Sub {
			r.sign, r.offset = -r.sign, -r.offset
		}
		if l.sign != 0 && r.sign != 0 {
			return linearPart{}, false // two variable occurrences
		}
		out := linearPart{offset: l.offset + r.offset}
		if l.sign != 0 {
			out.varName, out.sign = l.varName, l.sign
		} else if r.sign != 0 {
			out.varName, out.sign = r.varName, r.sign
		}
		return out, true
	default:
		return linearPart{}, false
	}
}

// varConstAtom normalizes atoms whose two sides are linear in a single
// time-anchored variable into the form `var OP const`. The desugared
// bounded operators produce shapes like time_j >= t - 10, which normalize
// to t <= time_j + 10 — exactly the clauses the Section-5 optimization
// folds.
func varConstAtom(n *cnode, timeVars map[string]bool) (string, float64, value.CmpOp, bool) {
	if n.kind != nkAtom {
		return "", 0, 0, false
	}
	l, ok := decomposeLinear(n.l)
	if !ok {
		return "", 0, 0, false
	}
	r, ok := decomposeLinear(n.r)
	if !ok {
		return "", 0, 0, false
	}
	// Move the variable to the left: sign*v + c1 OP c2.
	var sign int
	var name string
	var c1, c2 float64
	op := n.op
	switch {
	case l.sign != 0 && r.sign == 0:
		sign, name, c1, c2 = l.sign, l.varName, l.offset, r.offset
	case l.sign == 0 && r.sign != 0:
		sign, name, c1, c2 = r.sign, r.varName, r.offset, l.offset
		op = op.Flip()
	default:
		return "", 0, 0, false
	}
	if !timeVars[name] {
		return "", 0, 0, false
	}
	// sign*v OP c2 - c1; divide by sign (flip on -1).
	c := c2 - c1
	if sign < 0 {
		c = -c
		op = op.Flip()
	}
	return name, c, op, true
}

// collectCandidates gathers, for every variable, the constant values it is
// equated with anywhere in the node. Rule parameters take their values
// from these active-domain candidates (event parameters, executed records
// and relation members all surface as equalities).
func collectCandidates(n *cnode, out map[string]map[string]value.Value) {
	switch n.kind {
	case nkAtom:
		if n.op != value.EQ {
			return
		}
		if n.l.kind == ctVar && n.r.kind == ctConst {
			addCandidate(out, n.l.name, n.r.v)
		}
		if n.r.kind == ctVar && n.l.kind == ctConst {
			addCandidate(out, n.r.name, n.l.v)
		}
	case nkAnd, nkOr:
		for _, k := range n.kids {
			collectCandidates(k, out)
		}
	case nkNot:
		collectCandidates(n.sub, out)
	}
}

func addCandidate(out map[string]map[string]value.Value, name string, v value.Value) {
	m, ok := out[name]
	if !ok {
		m = make(map[string]value.Value)
		out[name] = m
	}
	m[v.Key()] = v
}

// nodeSize counts the distinct nodes reachable from n — the state-size
// metric reported by the evaluator (E2, E7).
func nodeSize(n *cnode, seen map[*cnode]struct{}) int {
	if _, ok := seen[n]; ok {
		return 0
	}
	seen[n] = struct{}{}
	total := 1
	switch n.kind {
	case nkAnd, nkOr:
		for _, k := range n.kids {
			total += nodeSize(k, seen)
		}
	case nkNot:
		total += nodeSize(n.sub, seen)
	}
	return total
}

// String renders a constraint formula for diagnostics.
func (n *cnode) String() string {
	switch n.kind {
	case nkTrue:
		return "true"
	case nkFalse:
		return "false"
	case nkAtom:
		return fmt.Sprintf("%s %s %s", n.l, n.op, n.r)
	case nkMember:
		parts := make([]string, len(n.elems))
		for i, e := range n.elems {
			parts[i] = e.String()
		}
		return "(" + strings.Join(parts, ", ") + ") in " + n.rel.String()
	case nkAnd, nkOr:
		sep := " and "
		if n.kind == nkOr {
			sep = " or "
		}
		parts := make([]string, len(n.kids))
		for i, k := range n.kids {
			parts[i] = k.String()
		}
		return "(" + strings.Join(parts, sep) + ")"
	case nkNot:
		return "not (" + n.sub.String() + ")"
	default:
		return "?"
	}
}

// divByZero reports a division or modulo with a zero right operand; in
// formula evaluation it yields the undefined value (its atom becomes
// false) instead of an error, consistently with empty aggregates.
func divByZero(op value.ArithOp, r value.Value) bool {
	if op != value.Div && op != value.Mod {
		return false
	}
	return r.IsNumeric() && r.AsFloat() == 0
}
