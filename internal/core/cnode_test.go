package core

import (
	"math/rand"
	"strings"
	"testing"

	"ptlactive/internal/value"
)

// randNode generates a random constraint node over variables x, y with
// small integer constants; returns the node. Depth bounds recursion.
func randNode(rng *rand.Rand, depth int) *cnode {
	mk := func() *cterm {
		switch rng.Intn(3) {
		case 0:
			return constTerm(value.NewInt(int64(rng.Intn(7) - 3)))
		case 1:
			return varTerm([]string{"x", "y"}[rng.Intn(2)])
		default:
			t, err := arithTerm(value.ArithOp(rng.Intn(3)), // add/sub/mul
				varTerm([]string{"x", "y"}[rng.Intn(2)]),
				constTerm(value.NewInt(int64(rng.Intn(5)))))
			if err != nil {
				panic(err)
			}
			return t
		}
	}
	if depth <= 0 {
		n, err := mkAtom(value.CmpOp(rng.Intn(6)), mk(), mk())
		if err != nil {
			panic(err)
		}
		return n
	}
	switch rng.Intn(4) {
	case 0:
		return mkAnd(randNode(rng, depth-1), randNode(rng, depth-1))
	case 1:
		return mkOr(randNode(rng, depth-1), randNode(rng, depth-1))
	case 2:
		return mkNot(randNode(rng, depth-1))
	default:
		return randNode(rng, 0)
	}
}

func env(x, y int64) map[string]value.Value {
	return map[string]value.Value{"x": value.NewInt(x), "y": value.NewInt(y)}
}

func TestMkAtomFoldsGround(t *testing.T) {
	a, err := mkAtom(value.LT, constTerm(value.NewInt(1)), constTerm(value.NewInt(2)))
	if err != nil || a != nodeTrue {
		t.Fatalf("1 < 2 should fold to true, got %v %v", a, err)
	}
	a, err = mkAtom(value.EQ, constTerm(value.NewInt(1)), constTerm(value.NewInt(2)))
	if err != nil || a != nodeFalse {
		t.Fatalf("1 = 2 should fold to false")
	}
	// Null side folds to false.
	a, err = mkAtom(value.GE, constTerm(value.Value{}), constTerm(value.NewInt(0)))
	if err != nil || a != nodeFalse {
		t.Fatalf("null >= 0 should fold to false, got %v %v", a, err)
	}
	// Symbolic atom does not fold.
	a, err = mkAtom(value.LT, varTerm("x"), constTerm(value.NewInt(2)))
	if err != nil || a.kind != nkAtom {
		t.Fatalf("symbolic atom folded: %v", a)
	}
}

func TestMkAndOrIdentities(t *testing.T) {
	x, _ := mkAtom(value.GT, varTerm("x"), constTerm(value.NewInt(0)))
	if mkAnd() != nodeTrue || mkOr() != nodeFalse {
		t.Fatal("empty and/or wrong")
	}
	if mkAnd(x, nodeTrue) != x || mkOr(x, nodeFalse) != x {
		t.Fatal("identity elements not dropped")
	}
	if mkAnd(x, nodeFalse) != nodeFalse || mkOr(x, nodeTrue) != nodeTrue {
		t.Fatal("absorbing elements not applied")
	}
	if mkAnd(x, x) != x || mkOr(x, x) != x {
		t.Fatal("duplicates not merged")
	}
	// Complementary atoms contradict / tautologize.
	nx := mkNot(x)
	if mkAnd(x, nx) != nodeFalse {
		t.Fatal("x and not x should be false")
	}
	if mkOr(x, nx) != nodeTrue {
		t.Fatal("x or not x should be true")
	}
	// Flattening: and(and(a,b),c) has three kids.
	y, _ := mkAtom(value.GT, varTerm("y"), constTerm(value.NewInt(0)))
	z, _ := mkAtom(value.LT, varTerm("y"), constTerm(value.NewInt(9)))
	n := mkAnd(mkAnd(x, y), z)
	if n.kind != nkAnd || len(n.kids) != 3 {
		t.Fatalf("flattening failed: %v", n)
	}
}

func TestMkNot(t *testing.T) {
	if mkNot(nodeTrue) != nodeFalse || mkNot(nodeFalse) != nodeTrue {
		t.Fatal("constant negation wrong")
	}
	x, _ := mkAtom(value.LE, varTerm("x"), constTerm(value.NewInt(2)))
	nx := mkNot(x)
	if nx.kind != nkAtom || nx.op != value.GT {
		t.Fatalf("atom negation should flip the operator, got %v", nx)
	}
	and := mkAnd(x, mkNot(mkAnd(x, x))) // contradiction
	if and != nodeFalse {
		t.Fatalf("contradiction not detected: %v", and)
	}
	n := mkNot(mkAnd(x, mustAtom(t, value.GT, varTerm("y"), constTerm(value.NewInt(1)))))
	if mkNot(n).kind != nkAnd {
		t.Fatal("double negation should cancel")
	}
}

func mustAtom(t *testing.T, op value.CmpOp, l, r *cterm) *cnode {
	t.Helper()
	a, err := mkAtom(op, l, r)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestSimplifierSoundness: random nodes evaluate identically before and
// after substitution-based simplification, across assignments.
func TestSimplifierSoundness(t *testing.T) {
	for seed := 0; seed < 300; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := randNode(rng, 3)
		xv := int64(rng.Intn(9) - 4)
		// Substituting x then evaluating with y must equal evaluating the
		// original with both.
		sub, err := substNode(n, "x", value.NewInt(xv), map[*cnode]*cnode{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for yv := int64(-3); yv <= 3; yv++ {
			got, err := evalNode(sub, env(0 /*unused*/, yv))
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			want, err := evalNode(n, env(xv, yv))
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if got != want {
				t.Fatalf("seed %d: subst changed semantics (x=%d y=%d): %s vs %s",
					seed, xv, yv, n, sub)
			}
		}
	}
}

func TestSubstSharing(t *testing.T) {
	// Substituting a variable not present returns the identical node.
	x := mustAtom(t, value.GT, varTerm("x"), constTerm(value.NewInt(0)))
	n := mkAnd(x, mkNot(mkOr(x, x)))
	got, err := substNode(n, "zzz", value.NewInt(1), map[*cnode]*cnode{})
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatal("substitution of absent variable should be identity (pointer-equal)")
	}
}

func TestDecomposeLinear(t *testing.T) {
	v := varTerm("t")
	c3 := constTerm(value.NewInt(3))
	c5 := constTerm(value.NewInt(5))
	add, _ := arithTerm(value.Add, v, c3)      // t + 3
	sub, _ := arithTerm(value.Sub, c5, v)      // 5 - t
	nested, _ := arithTerm(value.Sub, add, c5) // (t+3) - 5
	mul, _ := arithTerm(value.Mul, v, c3)      // 3t: not unit
	twoVars, _ := arithTerm(value.Add, v, varTerm("u"))

	cases := []struct {
		t      *cterm
		sign   int
		offset float64
		ok     bool
	}{
		{v, 1, 0, true},
		{c3, 0, 3, true},
		{add, 1, 3, true},
		{sub, -1, 5, true},
		{nested, 1, -2, true},
		{mul, 0, 0, false},
		{twoVars, 0, 0, false},
	}
	for i, c := range cases {
		lp, ok := decomposeLinear(c.t)
		if ok != c.ok {
			t.Errorf("case %d: ok=%t want %t", i, ok, c.ok)
			continue
		}
		if ok && (lp.sign != c.sign || lp.offset != c.offset) {
			t.Errorf("case %d: got sign=%d offset=%g", i, lp.sign, lp.offset)
		}
	}
}

func TestVarConstAtomNormalization(t *testing.T) {
	tv := map[string]bool{"t": true}
	v := varTerm("t")
	// time_j >= t - 10 with time_j = 7: atom 7 >= t-10 should normalize to
	// t <= 17.
	rhs, _ := arithTerm(value.Sub, v, constTerm(value.NewInt(10)))
	atom := mustAtom(t, value.GE, constTerm(value.NewInt(7)), rhs)
	name, c, op, ok := varConstAtom(atom, tv)
	if !ok || name != "t" || c != 17 || op != value.LE {
		t.Fatalf("normalized to %s %s %g (ok=%t)", name, op, c, ok)
	}
	// 5 - t < 2 -> -t < -3 -> t > 3.
	lhs, _ := arithTerm(value.Sub, constTerm(value.NewInt(5)), v)
	atom = mustAtom(t, value.LT, lhs, constTerm(value.NewInt(2)))
	name, c, op, ok = varConstAtom(atom, tv)
	if !ok || name != "t" || c != 3 || op != value.GT {
		t.Fatalf("normalized to %s %s %g (ok=%t)", name, op, c, ok)
	}
	// Non-time variables are not pruned.
	atom = mustAtom(t, value.LE, varTerm("u"), constTerm(value.NewInt(2)))
	if _, _, _, ok := varConstAtom(atom, tv); ok {
		t.Fatal("non-anchored variable should not match")
	}
}

// TestTimeBoundPruneSoundness: for time-anchored variables substituted
// with any value >= now, the pruned node evaluates identically.
func TestTimeBoundPruneSoundness(t *testing.T) {
	tv := map[string]bool{"x": true}
	for seed := 0; seed < 200; seed++ {
		rng := rand.New(rand.NewSource(int64(1000 + seed)))
		n := randNode(rng, 3)
		now := int64(rng.Intn(10))
		pruned := timeBoundPrune(n, now, tv, map[*cnode]*cnode{})
		// x takes values now, now+1, ... (nondecreasing current time).
		for dx := int64(0); dx < 4; dx++ {
			for yv := int64(-2); yv <= 2; yv++ {
				got, err := evalNode(pruned, env(now+dx, yv))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				want, err := evalNode(n, env(now+dx, yv))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if got != want {
					t.Fatalf("seed %d: prune changed semantics at x=%d y=%d now=%d\nbefore: %s\nafter:  %s",
						seed, now+dx, yv, now, n, pruned)
				}
			}
		}
	}
}

func TestMemberExpansion(t *testing.T) {
	rel := value.NewRelation([][]value.Value{
		{value.NewString("a"), value.NewInt(1)},
		{value.NewString("b"), value.NewInt(2)},
	})
	// Ground membership folds to a constant.
	n, err := mkMember([]*cterm{constTerm(value.NewString("a")), constTerm(value.NewInt(1))}, constTerm(rel))
	if err != nil || n != nodeTrue {
		t.Fatalf("ground member = %v, %v", n, err)
	}
	n, err = mkMember([]*cterm{constTerm(value.NewString("a")), constTerm(value.NewInt(2))}, constTerm(rel))
	if err != nil || n != nodeFalse {
		t.Fatalf("ground non-member = %v, %v", n, err)
	}
	// Variable elements expand to equality disjunction.
	n, err = mkMember([]*cterm{varTerm("s"), varTerm("v")}, constTerm(rel))
	if err != nil || n.kind != nkOr || len(n.kids) != 2 {
		t.Fatalf("expansion = %v, %v", n, err)
	}
	// Candidates surface from the expansion.
	cands := map[string]map[string]value.Value{}
	collectCandidates(n, cands)
	if len(cands["s"]) != 2 || len(cands["v"]) != 2 {
		t.Fatalf("candidates = %v", cands)
	}
	// Arity-mismatched rows never match.
	n, err = mkMember([]*cterm{varTerm("s")}, constTerm(rel))
	if err != nil || n != nodeFalse {
		t.Fatalf("arity mismatch should be false: %v", n)
	}
	// Membership in a scalar errors.
	if _, err := mkMember([]*cterm{varTerm("s")}, constTerm(value.NewInt(1))); err == nil {
		t.Fatal("member of scalar should error")
	}
	// Null relation: false.
	n, err = mkMember([]*cterm{varTerm("s")}, constTerm(value.Value{}))
	if err != nil || n != nodeFalse {
		t.Fatalf("member of null should be false: %v %v", n, err)
	}
	// Symbolic relation stays a member node; substitution expands it.
	sym, err := mkMember([]*cterm{varTerm("s")}, varTerm("r"))
	if err != nil || sym.kind != nkMember {
		t.Fatalf("symbolic member = %v", sym)
	}
	unary := value.NewRelation([][]value.Value{{value.NewString("z")}})
	got, err := substNode(sym, "r", unary, map[*cnode]*cnode{})
	if err != nil {
		t.Fatal(err)
	}
	if got.kind != nkAtom || got.op != value.EQ {
		t.Fatalf("substituted member = %v", got)
	}
	// evalNode on a symbolic member with env.
	ok, err := evalNode(sym, map[string]value.Value{"s": value.NewString("z"), "r": unary})
	if err != nil || !ok {
		t.Fatalf("evalNode member: %t %v", ok, err)
	}
}

func TestMemberExpandLimit(t *testing.T) {
	rows := make([][]value.Value, memberExpandLimit+1)
	for i := range rows {
		rows[i] = []value.Value{value.NewInt(int64(i))}
	}
	big := value.NewRelation(rows)
	if _, err := mkMember([]*cterm{varTerm("s")}, constTerm(big)); err == nil {
		t.Fatal("oversized expansion should error")
	}
}

func TestNodeStrings(t *testing.T) {
	x := mustAtom(t, value.GT, varTerm("x"), constTerm(value.NewInt(0)))
	m, _ := mkMember([]*cterm{varTerm("s")}, varTerm("r"))
	for _, n := range []*cnode{nodeTrue, nodeFalse, x, mkAnd(x, mustAtom(t, value.LT, varTerm("y"), constTerm(value.NewInt(9)))), mkNot(mkOr(x, m)), m} {
		if n.String() == "" {
			t.Fatal("empty node string")
		}
	}
	at, _ := arithTerm(value.Add, varTerm("x"), constTerm(value.NewInt(1)))
	if !strings.Contains(at.String(), "+") {
		t.Fatalf("cterm string = %s", at)
	}
}

func TestNodeSizeSharing(t *testing.T) {
	x := mustAtom(t, value.GT, varTerm("x"), constTerm(value.NewInt(0)))
	y := mustAtom(t, value.LT, varTerm("y"), constTerm(value.NewInt(5)))
	shared := mkOr(x, y)
	n := mkAnd(shared, mkNot(shared))
	// n is a contradiction... actually mkAnd detects shared/complement by
	// key: not(shared) has key !(or) and shared has key or -> complement
	// detection folds to false.
	if n != nodeFalse {
		t.Fatalf("complement detection failed: %v", n)
	}
	big := mkAnd(mkOr(x, y), mkOr(y, x))
	seen := map[*cnode]struct{}{}
	if s := nodeSize(big, seen); s <= 0 {
		t.Fatalf("nodeSize = %d", s)
	}
}
