package core

import (
	"fmt"
	"sort"

	"ptlactive/internal/history"
	"ptlactive/internal/ptl"
	"ptlactive/internal/query"
	"ptlactive/internal/value"
)

// enumerationLimit caps the number of candidate parameter combinations
// tried when a rule has free variables.
const enumerationLimit = 100000

// Binding is one satisfying assignment of a condition's free variables;
// the values pass to the rule's action part.
type Binding map[string]value.Value

// Result is the outcome of feeding one system state to the evaluator.
type Result struct {
	// Fired reports whether the condition is satisfied at this state.
	Fired bool
	// Bindings holds one entry per satisfying parameter assignment. For a
	// closed condition it contains a single empty binding when fired.
	Bindings []Binding
}

// Evaluator incrementally evaluates one PTL condition over an evolving
// system history, implementing the Section-5 algorithm. Feed each new
// system state to Step; the evaluator never looks at older states again —
// per-update cost is independent of history length (Theorem 1 is verified
// against the naive whole-history semantics by the package tests).
//
// An Evaluator is not safe for concurrent use.
type Evaluator struct {
	info *ptl.Info
	reg  *query.Registry
	log  ptl.ExecLog

	// Stored constraint formulas F_{g,i-1} per temporal occurrence.
	sincePrev map[*ptl.Since]*cnode
	lastPrev  map[*ptl.Lasttime]*cnode
	// Aggregate state machines per aggregate occurrence. aggOrder fixes the
	// iteration order to the formula-walk order so per-step effects (and
	// error reporting when several machines fail) are deterministic; the
	// slice is immutable after New and shared by clones.
	aggs     map[*ptl.Agg]*aggState
	aggOrder []*ptl.Agg

	// optimize enables the time-bound pruning of Section 5; disabled only
	// by benchmarks that measure its effect (E2).
	optimize bool

	steps int
	// current state during a Step call.
	st history.SystemState
	// per-step memo for time-bound pruning, cleared and reused across
	// steps instead of reallocated.
	pruneMemo map[*cnode]*cnode
	// free list of substitution memos (Assign can nest, so one reusable
	// map is not enough).
	memoPool []map[*cnode]*cnode
	// qcache holds results of cacheable query calls, valid while the
	// database is unchanged (see qcache.go); cacheable is the static
	// analysis, immutable after New and shared by clones.
	qcache    map[*ptl.Call]value.Value
	cacheable map[*ptl.Call]bool
}

// Option configures an Evaluator.
type Option func(*Evaluator)

// WithoutTimeBoundOptimization disables the Section-5 optimization that
// folds dead time clauses; used by the E2 ablation benchmark.
func WithoutTimeBoundOptimization() Option {
	return func(e *Evaluator) { e.optimize = false }
}

// New compiles a checked condition into an incremental evaluator. A nil
// log means the executed predicate sees no executions.
func New(info *ptl.Info, reg *query.Registry, log ptl.ExecLog, opts ...Option) (*Evaluator, error) {
	if info == nil {
		return nil, fmt.Errorf("core: nil condition info")
	}
	if log == nil {
		log = ptl.NoExecutions{}
	}
	e := &Evaluator{
		info:      info,
		reg:       reg,
		log:       log,
		sincePrev: make(map[*ptl.Since]*cnode),
		lastPrev:  make(map[*ptl.Lasttime]*cnode),
		aggs:      make(map[*ptl.Agg]*aggState),
		optimize:  true,
	}
	for _, o := range opts {
		o(e)
	}
	// Pre-register temporal occurrences and aggregate machines so Step
	// never allocates map entries for fresh pointers.
	var regErr error
	ptl.Walk(info.Normalized, func(g ptl.Formula) {
		switch x := g.(type) {
		case *ptl.Since:
			e.sincePrev[x] = nodeFalse
		case *ptl.Lasttime:
			e.lastPrev[x] = nodeFalse
		}
	})
	ptl.WalkTerms(info.Normalized, func(t ptl.Term) {
		if a, ok := t.(*ptl.Agg); ok && regErr == nil {
			if _, dup := e.aggs[a]; dup {
				return
			}
			st, err := newAggState(a, reg, log, e.optimize)
			if err != nil {
				regErr = err
				return
			}
			e.aggs[a] = st
			e.aggOrder = append(e.aggOrder, a)
		}
	})
	if regErr != nil {
		return nil, regErr
	}
	e.cacheable = cacheableCalls(info.Normalized, reg)
	return e, nil
}

// Compile is a convenience that checks a formula and builds its evaluator.
func Compile(f ptl.Formula, reg *query.Registry, log ptl.ExecLog, opts ...Option) (*Evaluator, error) {
	info, err := ptl.Check(f, reg)
	if err != nil {
		return nil, err
	}
	return New(info, reg, log, opts...)
}

// Info returns the compiled condition's static information.
func (e *Evaluator) Info() *ptl.Info { return e.info }

// Steps returns the number of states processed so far.
func (e *Evaluator) Steps() int { return e.steps }

// StateSize returns the number of distinct constraint nodes currently
// retained across all temporal subformulas — the metric the paper's
// optimization discussion is about, benched in E2 and E7.
func (e *Evaluator) StateSize() int {
	seen := make(map[*cnode]struct{})
	total := 0
	for _, n := range e.sincePrev {
		total += nodeSize(n, seen)
	}
	for _, n := range e.lastPrev {
		total += nodeSize(n, seen)
	}
	for _, a := range e.aggs {
		total += a.stateSize(seen)
	}
	return total
}

// Registers returns the number of temporal storage slots the compiled
// condition keeps (one per since/lasttime occurrence) — the static
// component of the evaluator's space, linear in formula size. StateSize
// reports the dynamic constraint-graph nodes those slots reference.
func (e *Evaluator) Registers() int {
	total := len(e.sincePrev) + len(e.lastPrev)
	for _, a := range e.aggs {
		if a.startEv != nil {
			total += a.startEv.Registers()
		}
		total += a.sampEv.Registers()
	}
	return total
}

// Step feeds the next system state (the result of the i-th update) to the
// evaluator and reports whether the condition fires at that state,
// together with the satisfying parameter bindings.
func (e *Evaluator) Step(st history.SystemState) (Result, error) {
	return e.stepHinted(st, false)
}

// stepHinted is Step with the database-unchanged hint of HintedEvaluator:
// when dbUnchanged is false any cached query results are discarded first.
func (e *Evaluator) stepHinted(st history.SystemState, dbUnchanged bool) (Result, error) {
	if !dbUnchanged {
		clear(e.qcache)
	}
	// Aggregate machines advance first: the aggregate value at state i
	// includes state i itself as a potential start/sample point.
	for _, a := range e.aggOrder {
		if err := e.aggs[a].step(st, dbUnchanged); err != nil {
			return Result{}, err
		}
	}
	e.st = st
	if e.pruneMemo == nil {
		e.pruneMemo = make(map[*cnode]*cnode)
	} else {
		clear(e.pruneMemo)
	}
	node, err := e.build(e.info.Normalized)
	if err != nil {
		return Result{}, err
	}
	e.steps++
	return e.resolve(node)
}

// getMemo pops a cleared substitution memo off the free list.
func (e *Evaluator) getMemo() map[*cnode]*cnode {
	if n := len(e.memoPool); n > 0 {
		m := e.memoPool[n-1]
		e.memoPool = e.memoPool[:n-1]
		return m
	}
	return make(map[*cnode]*cnode)
}

// putMemo returns a substitution memo to the free list.
func (e *Evaluator) putMemo(m map[*cnode]*cnode) {
	clear(m)
	e.memoPool = append(e.memoPool, m)
}

// resolve turns the final constraint formula into a firing decision.
func (e *Evaluator) resolve(node *cnode) (Result, error) {
	switch node.kind {
	case nkTrue:
		return Result{Fired: true, Bindings: []Binding{{}}}, nil
	case nkFalse:
		return Result{}, nil
	}
	free := e.info.Free
	if len(free) == 0 {
		// Closed condition but unresolved constraint: should be impossible
		// since every variable is either assigned (substituted) or free.
		return Result{}, fmt.Errorf("core: internal: closed condition left residual constraint %s", node)
	}
	// Active-domain enumeration: candidates come from equality atoms.
	cands := make(map[string]map[string]value.Value)
	collectCandidates(node, cands)
	domains := make([][]value.Value, len(free))
	total := 1
	for i, v := range free {
		m := cands[v]
		if len(m) == 0 {
			// No candidate for this parameter at this state: no firing.
			return Result{}, nil
		}
		dom := make([]value.Value, 0, len(m))
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			dom = append(dom, m[k])
		}
		domains[i] = dom
		total *= len(dom)
		if total > enumerationLimit {
			return Result{}, fmt.Errorf("core: parameter enumeration exceeds %d combinations", enumerationLimit)
		}
	}
	var res Result
	env := make(map[string]value.Value, len(free))
	var walk func(i int) error
	walk = func(i int) error {
		if i == len(free) {
			ok, err := evalNode(node, env)
			if err != nil {
				return err
			}
			if ok {
				b := make(Binding, len(free))
				for k, v := range env {
					b[k] = v
				}
				res.Bindings = append(res.Bindings, b)
			}
			return nil
		}
		for _, v := range domains[i] {
			env[free[i]] = v
			if err := walk(i + 1); err != nil {
				return err
			}
		}
		delete(env, free[i])
		return nil
	}
	if err := walk(0); err != nil {
		return Result{}, err
	}
	res.Fired = len(res.Bindings) > 0
	return res, nil
}

// build computes F_{g,i} for the subformula g at the current state,
// updating stored temporal state along the way.
func (e *Evaluator) build(f ptl.Formula) (*cnode, error) {
	switch x := f.(type) {
	case *ptl.BoolConst:
		return nodeBool(x.V), nil
	case *ptl.Cmp:
		l, err := e.buildTerm(x.L)
		if err != nil {
			return nil, err
		}
		r, err := e.buildTerm(x.R)
		if err != nil {
			return nil, err
		}
		return mkAtom(x.Op, l, r)
	case *ptl.EventAtom:
		return e.buildEvent(x)
	case *ptl.Executed:
		return e.buildExecuted(x)
	case *ptl.Member:
		elems := make([]*cterm, len(x.Elems))
		for i, el := range x.Elems {
			t, err := e.buildTerm(el)
			if err != nil {
				return nil, err
			}
			elems[i] = t
		}
		rel, err := e.buildTerm(x.Rel)
		if err != nil {
			return nil, err
		}
		return mkMember(elems, rel)
	case *ptl.Not:
		n, err := e.build(x.F)
		if err != nil {
			return nil, err
		}
		return mkNot(n), nil
	case *ptl.And:
		l, err := e.build(x.L)
		if err != nil {
			return nil, err
		}
		if l == nodeFalse {
			// Still must advance temporal state on the right side; the
			// result is discarded because the conjunction is already false.
			if _, err := e.build(x.R); err != nil {
				return nil, err
			}
			return nodeFalse, nil
		}
		r, err := e.build(x.R)
		if err != nil {
			return nil, err
		}
		return mkAnd(l, r), nil
	case *ptl.Or:
		l, err := e.build(x.L)
		if err != nil {
			return nil, err
		}
		r, err := e.build(x.R)
		if err != nil {
			return nil, err
		}
		return mkOr(l, r), nil
	case *ptl.Since:
		// F_{g since h, i} = F_{h,i} OR (F_{g,i} AND F_{g since h, i-1}).
		fg, err := e.build(x.L)
		if err != nil {
			return nil, err
		}
		fh, err := e.build(x.R)
		if err != nil {
			return nil, err
		}
		prev := e.sincePrev[x]
		if e.optimize {
			prev = timeBoundPrune(prev, e.st.TS, e.info.TimeVars, e.pruneMemo)
		}
		cur := mkOr(fh, mkAnd(fg, prev))
		e.sincePrev[x] = cur
		return cur, nil
	case *ptl.Lasttime:
		// F_{lasttime g, i} = F_{g, i-1}; store F_{g,i} for the next state.
		ret := e.lastPrev[x]
		cur, err := e.build(x.F)
		if err != nil {
			return nil, err
		}
		e.lastPrev[x] = cur
		if e.optimize {
			ret = timeBoundPrune(ret, e.st.TS, e.info.TimeVars, e.pruneMemo)
		}
		return ret, nil
	case *ptl.Assign:
		// F_{[x <- q] g, i} = F_{g,i}[x := value_i(q)]. The stored state
		// beneath keeps x symbolic; only the formula flowing upward is
		// substituted (see the worked IBM example in Section 5).
		qt, err := e.buildTerm(x.Q)
		if err != nil {
			return nil, err
		}
		qv, err := qt.eval(nil)
		if err != nil {
			return nil, err
		}
		body, err := e.build(x.Body)
		if err != nil {
			return nil, err
		}
		memo := e.getMemo()
		out, err := substNode(body, x.Var, qv, memo)
		e.putMemo(memo)
		return out, err
	default:
		return nil, fmt.Errorf("core: unsupported formula %T (did it pass ptl.Check?)", f)
	}
}

// buildTerm lowers a PTL term to a constraint term, evaluating queries and
// aggregates against the current state.
func (e *Evaluator) buildTerm(t ptl.Term) (*cterm, error) {
	switch x := t.(type) {
	case *ptl.Const:
		return constTerm(x.V), nil
	case *ptl.Var:
		return varTerm(x.Name), nil
	case *ptl.Call:
		if e.cacheable[x] {
			if v, hit := e.qcache[x]; hit {
				return constTerm(v), nil
			}
		}
		args := make([]value.Value, len(x.Args))
		for i, a := range x.Args {
			at, err := e.buildTerm(a)
			if err != nil {
				return nil, err
			}
			v, err := at.eval(nil)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		v, err := e.reg.Eval(x.Fn, e.st, args)
		if err != nil {
			return nil, err
		}
		if e.cacheable[x] {
			if e.qcache == nil {
				e.qcache = make(map[*ptl.Call]value.Value)
			}
			e.qcache[x] = v
		}
		return constTerm(v), nil
	case *ptl.Arith:
		l, err := e.buildTerm(x.L)
		if err != nil {
			return nil, err
		}
		r, err := e.buildTerm(x.R)
		if err != nil {
			return nil, err
		}
		return arithTerm(x.Op, l, r)
	case *ptl.Neg:
		inner, err := e.buildTerm(x.X)
		if err != nil {
			return nil, err
		}
		return arithTerm(value.Sub, constTerm(value.NewInt(0)), inner)
	case *ptl.Agg:
		a, ok := e.aggs[x]
		if !ok {
			return nil, fmt.Errorf("core: internal: unregistered aggregate %s", x)
		}
		v, err := a.value()
		if err != nil {
			return nil, err
		}
		return constTerm(v), nil
	default:
		return nil, fmt.Errorf("core: unsupported term %T", t)
	}
}

// buildEvent folds an event atom against the current state's event set:
// the disjunction over matching occurrences of per-argument equality
// constraints.
func (e *Evaluator) buildEvent(x *ptl.EventAtom) (*cnode, error) {
	args := make([]*cterm, len(x.Args))
	for i, a := range x.Args {
		t, err := e.buildTerm(a)
		if err != nil {
			return nil, err
		}
		args[i] = t
	}
	var disjuncts []*cnode
	for _, ev := range e.st.Events.ByName(x.Name) {
		if len(ev.Args) != len(args) {
			continue
		}
		conj := make([]*cnode, len(args))
		ok := true
		for k := range args {
			atom, err := mkAtom(value.EQ, args[k], constTerm(ev.Args[k]))
			if err != nil {
				return nil, err
			}
			if atom == nodeFalse {
				ok = false
				break
			}
			conj[k] = atom
		}
		if ok {
			disjuncts = append(disjuncts, mkAnd(conj...))
		}
	}
	return mkOr(disjuncts...), nil
}

// buildExecuted folds the executed predicate against the execution log:
// occurrences strictly before the current time, each yielding equality
// constraints on the parameter terms and the time term.
func (e *Evaluator) buildExecuted(x *ptl.Executed) (*cnode, error) {
	args := make([]*cterm, len(x.Args))
	for i, a := range x.Args {
		t, err := e.buildTerm(a)
		if err != nil {
			return nil, err
		}
		args[i] = t
	}
	tArg, err := e.buildTerm(x.TimeArg)
	if err != nil {
		return nil, err
	}
	var disjuncts []*cnode
	for _, ex := range e.log.Executions(x.Rule, e.st.TS) {
		if len(ex.Params) != len(args) {
			continue
		}
		conj := make([]*cnode, 0, len(args)+1)
		ok := true
		for k := range args {
			atom, aerr := mkAtom(value.EQ, args[k], constTerm(ex.Params[k]))
			if aerr != nil {
				return nil, aerr
			}
			if atom == nodeFalse {
				ok = false
				break
			}
			conj = append(conj, atom)
		}
		if !ok {
			continue
		}
		atom, aerr := mkAtom(value.EQ, tArg, constTerm(value.NewInt(ex.Time)))
		if aerr != nil {
			return nil, aerr
		}
		if atom == nodeFalse {
			continue
		}
		conj = append(conj, atom)
		disjuncts = append(disjuncts, mkAnd(conj...))
	}
	return mkOr(disjuncts...), nil
}

// aggState maintains one aggregate occurrence incrementally: sub-evaluators
// decide the start and sample formulas per state, and the sample buffer
// supports O(1) amortized updates (a timestamped deque for windowed
// aggregates).
type aggState struct {
	agg     *ptl.Agg
	startEv *Evaluator // nil for windowed aggregates
	sampEv  *Evaluator
	reg     *query.Registry

	started bool
	samples []value.Value
	times   []int64 // parallel to samples; used for window eviction
	sum     value.Value
	count   int64

	cur history.SystemState
	has bool
}

func newAggState(a *ptl.Agg, reg *query.Registry, log ptl.ExecLog, optimize bool) (*aggState, error) {
	st := &aggState{agg: a, reg: reg, sum: value.NewInt(0)}
	var opts []Option
	if !optimize {
		opts = append(opts, WithoutTimeBoundOptimization())
	}
	if a.Window < 0 {
		ev, err := Compile(a.Start, reg, log, opts...)
		if err != nil {
			return nil, fmt.Errorf("core: aggregate start formula: %w", err)
		}
		st.startEv = ev
	}
	ev, err := Compile(a.Sample, reg, log, opts...)
	if err != nil {
		return nil, fmt.Errorf("core: aggregate sampling formula: %w", err)
	}
	st.sampEv = ev
	return st, nil
}

func (s *aggState) step(st history.SystemState, dbUnchanged bool) error {
	s.cur, s.has = st, true
	if s.agg.Window >= 0 {
		s.started = true
		// Evict samples that fell out of the window.
		cutoff := st.TS - s.agg.Window
		drop := 0
		for drop < len(s.times) && s.times[drop] < cutoff {
			v := s.samples[drop]
			nsum, err := value.Arith(value.Sub, s.sum, v)
			if err != nil {
				return err
			}
			s.sum = nsum
			s.count--
			drop++
		}
		if drop > 0 {
			s.samples = append([]value.Value{}, s.samples[drop:]...)
			s.times = append([]int64{}, s.times[drop:]...)
		}
	} else {
		res, err := s.startEv.stepHinted(st, dbUnchanged)
		if err != nil {
			return err
		}
		if res.Fired {
			s.started = true
			s.samples = s.samples[:0]
			s.times = s.times[:0]
			s.sum = value.NewInt(0)
			s.count = 0
		}
	}
	res, err := s.sampEv.stepHinted(st, dbUnchanged)
	if err != nil {
		return err
	}
	if res.Fired && s.started {
		// Evaluate the aggregate's query at this state.
		tmp := &Evaluator{reg: s.reg, st: st, aggs: map[*ptl.Agg]*aggState{}}
		qt, err := tmp.buildTerm(s.agg.Q)
		if err != nil {
			return err
		}
		v, err := qt.eval(nil)
		if err != nil {
			return err
		}
		if !v.IsNumeric() {
			return fmt.Errorf("core: aggregate %s over non-numeric value %s", s.agg.Fn, v)
		}
		s.samples = append(s.samples, v)
		s.times = append(s.times, st.TS)
		nsum, err := value.Arith(value.Add, s.sum, v)
		if err != nil {
			return err
		}
		s.sum = nsum
		s.count++
	}
	return nil
}

// value returns the aggregate's current value; Null when undefined.
func (s *aggState) value() (value.Value, error) {
	if !s.started {
		return value.Value{}, nil
	}
	switch s.agg.Fn {
	case ptl.AggSum:
		return s.sum, nil
	case ptl.AggCount:
		return value.NewInt(s.count), nil
	case ptl.AggAvg:
		if s.count == 0 {
			return value.Value{}, nil
		}
		return value.Arith(value.Div, floatOf(s.sum), value.NewFloat(float64(s.count)))
	case ptl.AggMin, ptl.AggMax:
		if len(s.samples) == 0 {
			return value.Value{}, nil
		}
		best := s.samples[0]
		for _, v := range s.samples[1:] {
			c, err := v.Compare(best)
			if err != nil {
				return value.Value{}, err
			}
			if (s.agg.Fn == ptl.AggMin && c < 0) || (s.agg.Fn == ptl.AggMax && c > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return value.Value{}, fmt.Errorf("core: unknown aggregate %q", s.agg.Fn)
	}
}

func floatOf(v value.Value) value.Value {
	return value.NewFloat(v.AsFloat())
}

func (s *aggState) stateSize(seen map[*cnode]struct{}) int {
	total := len(s.samples)
	if s.startEv != nil {
		for _, n := range s.startEv.sincePrev {
			total += nodeSize(n, seen)
		}
		for _, n := range s.startEv.lastPrev {
			total += nodeSize(n, seen)
		}
	}
	for _, n := range s.sampEv.sincePrev {
		total += nodeSize(n, seen)
	}
	for _, n := range s.sampEv.lastPrev {
		total += nodeSize(n, seen)
	}
	return total
}
