package core

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// Hash-consing for constraint-formula nodes. Section 5 keeps the
// constraint formulas "as an and-or graph" shared across subformulas; the
// intern table extends that sharing across rules and across sweeps:
// structurally equal cnodes constructed anywhere in the process resolve to
// one pointer, so the pointer-keyed memo tables in substNode and
// timeBoundPrune hit across evaluators, and the and/or constructor keys
// can be built from compact node ids instead of concatenated subtree keys.
//
// The table is sharded to keep parallel sweeps off a single lock, and each
// shard is capped: when a shard fills up it is dropped wholesale and
// re-grown. A reset only forfeits future sharing — nodes already handed
// out stay valid (they are immutable and never point back into the table),
// and a structurally equal node built after the reset simply gets a fresh
// id. Missed deduplication weakens simplification opportunities but never
// changes evaluation results.

const (
	internShards   = 64
	internShardCap = 4096
)

type internShard struct {
	mu sync.Mutex
	m  map[string]*cnode
}

var (
	internTab  [internShards]internShard
	internSeed = maphash.MakeSeed()
	// nodeIDs starts above the reserved ids of the true/false singletons.
	nodeIDs atomic.Uint64
)

func init() {
	nodeIDs.Store(2)
}

// internNode returns the canonical node for key, calling build to
// construct it on a miss. build must not re-enter the interner (all our
// constructors intern children before parents, so it never does). The
// lock is held across build: construction is allocation plus a vars
// merge, and holding it closes the duplicate-build race.
func internNode(key string, build func() *cnode) *cnode {
	var h maphash.Hash
	h.SetSeed(internSeed)
	h.WriteString(key)
	s := &internTab[h.Sum64()&(internShards-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.m[key]; ok {
		return n
	}
	n := build()
	n.key = key
	n.id = nodeIDs.Add(1)
	if s.m == nil || len(s.m) >= internShardCap {
		s.m = make(map[string]*cnode, 128)
	}
	s.m[key] = n
	return n
}

// internedNodes reports the live entry count across shards (tests only).
func internedNodes() int {
	total := 0
	for i := range internTab {
		internTab[i].mu.Lock()
		total += len(internTab[i].m)
		internTab[i].mu.Unlock()
	}
	return total
}

// resetIntern drops every shard (tests only; production shards reset
// individually when they hit their cap).
func resetIntern() {
	for i := range internTab {
		internTab[i].mu.Lock()
		internTab[i].m = nil
		internTab[i].mu.Unlock()
	}
}

// mergeVars merges sorted, deduplicated variable-name lists into one.
// Returns nil for an empty result so ground nodes carry no slice.
func mergeVars(lists ...[]string) []string {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	out := make([]string, 0, total)
	for _, l := range lists {
		out = mergeInto(out, l)
	}
	return out
}

// mergeInto merges sorted list l into sorted acc, keeping order and
// dropping duplicates.
func mergeInto(acc, l []string) []string {
	if len(l) == 0 {
		return acc
	}
	if len(acc) == 0 {
		return append(acc, l...)
	}
	// Fast path: l entirely after acc (common when merging event params).
	if l[0] > acc[len(acc)-1] {
		return append(acc, l...)
	}
	out := make([]string, 0, len(acc)+len(l))
	i, j := 0, 0
	for i < len(acc) && j < len(l) {
		switch {
		case acc[i] < l[j]:
			out = append(out, acc[i])
			i++
		case acc[i] > l[j]:
			out = append(out, l[j])
			j++
		default:
			out = append(out, acc[i])
			i++
			j++
		}
	}
	out = append(out, acc[i:]...)
	out = append(out, l[j:]...)
	return out
}

// mentions reports whether the node's formula mentions the variable, via
// binary search over the sorted vars list. It lets substNode and
// timeBoundPrune skip whole sub-DAGs without touching their memo tables.
func (n *cnode) mentions(name string) bool {
	lo, hi := 0, len(n.vars)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.vars[mid] < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(n.vars) && n.vars[lo] == name
}

// mentionsAny reports whether any of the node's variables is in set.
func (n *cnode) mentionsAny(set map[string]bool) bool {
	for _, v := range n.vars {
		if set[v] {
			return true
		}
	}
	return false
}
