package core
