package core

import (
	"math/rand"
	"reflect"
	"testing"

	"ptlactive/internal/ptl"
	"ptlactive/internal/ptlgen"
)

// compileAuto checks and compiles like the engine does (fast path when
// decomposable, general otherwise).
func compileAuto(t *testing.T, f ptl.Formula) ConditionEvaluator {
	t.Helper()
	reg := ptlgen.Registry()
	info, err := ptl.Check(f, reg)
	if err != nil {
		t.Fatalf("check %s: %v", f, err)
	}
	ev, err := CompileAuto(info, reg, nil)
	if err != nil {
		t.Fatalf("compile %s: %v", f, err)
	}
	return ev
}

func resultsEqual(a, b Result) bool {
	if a.Fired != b.Fired || len(a.Bindings) != len(b.Bindings) {
		return false
	}
	return reflect.DeepEqual(a.Bindings, b.Bindings)
}

// TestEvaluatorStateRoundTrip is the snapshot/restore property behind the
// durability subsystem: stepping to state k, serializing, restoring onto a
// freshly compiled evaluator (compiled from the formula's own round-tripped
// serialization, as recovery does), then continuing must match a
// never-interrupted evaluator at every remaining state — for both the
// general and the fast implementation, aggregates included.
func TestEvaluatorStateRoundTrip(t *testing.T) {
	iters := 120
	if testing.Short() {
		iters = 25
	}
	for it := 0; it < iters; it++ {
		rng := rand.New(rand.NewSource(int64(9000 + it)))
		var f ptl.Formula
		if it%3 == 0 {
			f = ptlgen.FormulaWithAggregates(rng, 1+rng.Intn(3))
		} else {
			f = ptlgen.Formula(rng, 1+rng.Intn(4))
		}
		h := ptlgen.History(rng, 10)
		cont := compileAuto(t, f)
		crash := compileAuto(t, f)
		cut := 1 + rng.Intn(h.Len()-1)
		for i := 0; i < cut; i++ {
			if _, err := cont.StepResult(h.At(i)); err != nil {
				t.Fatalf("seed %d: continuous step %d: %v\nformula: %s", it, i, err, f)
			}
			if _, err := crash.StepResult(h.At(i)); err != nil {
				t.Fatalf("seed %d: crash step %d: %v", it, i, err)
			}
		}
		blob, err := EncodeEvaluatorState(crash)
		if err != nil {
			t.Fatalf("seed %d: encode state: %v\nformula: %s", it, err, f)
		}
		// Recovery recompiles the condition from its serialized form.
		fblob, err := ptl.EncodeFormula(f)
		if err != nil {
			t.Fatalf("seed %d: encode formula: %v", it, err)
		}
		f2, err := ptl.DecodeFormula(fblob)
		if err != nil {
			t.Fatalf("seed %d: decode formula: %v", it, err)
		}
		restored := compileAuto(t, f2)
		if err := RestoreEvaluatorState(restored, blob); err != nil {
			t.Fatalf("seed %d: restore: %v\nformula: %s\nstate: %s", it, err, f, blob)
		}
		for i := cut; i < h.Len(); i++ {
			want, err := cont.StepResult(h.At(i))
			if err != nil {
				t.Fatalf("seed %d: continuous step %d: %v\nformula: %s", it, i, err, f)
			}
			got, err := restored.StepResult(h.At(i))
			if err != nil {
				t.Fatalf("seed %d: restored step %d: %v\nformula: %s", it, i, err, f)
			}
			if !resultsEqual(want, got) {
				t.Fatalf("seed %d state %d (cut %d): restored diverged: want %+v got %+v\nformula: %s",
					it, i, cut, want, got, f)
			}
		}
	}
}

// TestEvaluatorStateRoundTripIBM pins the property on the paper's worked
// example with a cut at every state boundary.
func TestEvaluatorStateRoundTripIBM(t *testing.T) {
	src := `[t <- time] [x <- price("IBM")]
	    previously (price("IBM") <= 0.5 * x and time >= t - 10)`
	f := mustParse(t, src)
	reg := ibmRegistry(t)
	h := ibmHistory([][2]int64{{10, 1}, {15, 2}, {18, 5}, {25, 8}})
	want := []bool{false, false, false, true}
	for cut := 1; cut < h.Len(); cut++ {
		ev, err := Compile(f, reg, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < cut; i++ {
			if _, err := ev.Step(h.At(i)); err != nil {
				t.Fatal(err)
			}
		}
		blob, err := EncodeEvaluatorState(ev)
		if err != nil {
			t.Fatal(err)
		}
		ev2, err := Compile(f, reg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := RestoreEvaluatorState(ev2, blob); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if ev2.Steps() != cut {
			t.Fatalf("cut %d: restored steps = %d", cut, ev2.Steps())
		}
		for i := cut; i < h.Len(); i++ {
			res, err := ev2.Step(h.At(i))
			if err != nil {
				t.Fatal(err)
			}
			if res.Fired != want[i] {
				t.Errorf("cut %d state %d: fired = %t, want %t", cut, i, res.Fired, want[i])
			}
		}
	}
}

// TestEvaluatorStateRejectsCorrupt exercises the decoder's validation:
// forward references, bad kinds, and implementation mismatches must error,
// never panic.
func TestEvaluatorStateRejectsCorrupt(t *testing.T) {
	f := mustParse(t, `lasttime price("IBM") > 10`)
	reg := ibmRegistry(t)
	ev, err := Compile(f, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{
		`{"kind":"fast"}`, // wrong implementation
		`{"kind":"general","terms":[{"k":2,"op":0,"l":0,"r":5}],"last":[0],"nodes":[{"k":0}]}`, // forward term ref
		`{"kind":"general","nodes":[{"k":6,"sub":0}],"last":[0]}`,                              // self node ref
		`{"kind":"general","nodes":[{"k":99}],"last":[0]}`,                                     // bad node kind
		`{"kind":"general","nodes":[{"k":0}],"last":[0,1]}`,                                    // register count
		`{"kind":"general","nodes":[{"k":0}],"last":[7]}`,                                      // register id range
		`{"kind":"general","nodes":[{"k":0}],"last":[0],"aggs":[{"sum":{"int":0},"count":0}]}`, // phantom aggregate
		`not json`,
	}
	for _, src := range bad {
		if err := RestoreEvaluatorState(ev, []byte(src)); err == nil {
			t.Errorf("restore %s: want error, got nil", src)
		}
	}
}
