package core

import (
	"ptlactive/internal/history"
	"ptlactive/internal/ptl"
	"ptlactive/internal/query"
)

// Query-result caching across states. A registered query that is pure
// (query.Registry.Pure) and whose arguments are stable — built from
// constants and other cacheable calls, never from variables or aggregates
// — evaluates to the same value at every state with the same database.
// The engine knows which appended states leave the database untouched
// (event-only states, and replayed states a rule's read set is disjoint
// from), and passes that down through StepResultHinted; the evaluator
// then reuses the cached results instead of re-running the query.

// HintedEvaluator is implemented by evaluators that can exploit the
// engine's knowledge that the database portion of the state stream is
// unchanged since the previous state this evaluator stepped.
type HintedEvaluator interface {
	ConditionEvaluator
	// StepResultHinted is StepResult with a validity hint: dbUnchanged
	// asserts that every database item read by this condition has the
	// same value as at the previously stepped state. The hint never
	// changes results — it only allows query-cache reuse.
	StepResultHinted(st history.SystemState, dbUnchanged bool) (Result, error)
}

// cacheableCalls computes, for every query call in the formula, whether
// its result may be cached while the database is unchanged: the function
// must be pure and every argument stable (constants, arithmetic over
// stable terms, or nested cacheable calls — never variables, aggregates,
// or the timestamp-reading "time").
func cacheableCalls(f ptl.Formula, reg *query.Registry) map[*ptl.Call]bool {
	if reg == nil {
		return nil
	}
	out := make(map[*ptl.Call]bool)
	var stable func(t ptl.Term) bool
	stable = func(t ptl.Term) bool {
		switch x := t.(type) {
		case *ptl.Const:
			return true
		case *ptl.Arith:
			return stable(x.L) && stable(x.R)
		case *ptl.Neg:
			return stable(x.X)
		case *ptl.Call:
			if c, seen := out[x]; seen {
				return c
			}
			ok := reg.Pure(x.Fn)
			for _, a := range x.Args {
				if !ok {
					break
				}
				ok = stable(a)
			}
			out[x] = ok
			return ok
		default: // Var, Agg: value changes per binding / per state
			return false
		}
	}
	ptl.WalkTerms(f, func(t ptl.Term) {
		if c, ok := t.(*ptl.Call); ok {
			stable(c)
		}
	})
	return out
}
