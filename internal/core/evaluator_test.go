package core

import (
	"math/rand"
	"testing"

	"ptlactive/internal/event"
	"ptlactive/internal/history"
	"ptlactive/internal/naive"
	"ptlactive/internal/ptl"
	"ptlactive/internal/ptlgen"
	"ptlactive/internal/query"
	"ptlactive/internal/value"
)

// mustParse parses or fails the test.
func mustParse(t *testing.T, src string) ptl.Formula {
	t.Helper()
	f, err := ptl.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return f
}

// ibmHistory builds the paper's worked example history: states are
// (price(IBM), time) pairs; prices posted by committing transactions.
func ibmHistory(pairs [][2]int64) *history.History {
	db := history.EmptyDB().With("ibm", value.NewFloat(float64(pairs[0][0])))
	b := history.NewBuilder(db, pairs[0][1])
	for i, p := range pairs[1:] {
		if err := b.Commit(p[1], int64(i+1), map[string]value.Value{"ibm": value.NewFloat(float64(p[0]))}); err != nil {
			panic(err)
		}
	}
	return b.History()
}

func ibmRegistry(t *testing.T) *query.Registry {
	t.Helper()
	reg := query.NewRegistry()
	err := reg.Register("price", 1, func(st history.SystemState, args []value.Value) (value.Value, error) {
		v, _ := st.GetItem("ibm")
		return v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestPaperIBMExample reproduces the worked example of Section 5: the
// trigger "the price of IBM stock doubled (from some past value) within 10
// time units" over the history (10,1) (15,2) (18,5) (25,8) fires exactly
// at the fourth state.
func TestPaperIBMExample(t *testing.T) {
	f := mustParse(t, `[t <- time] [x <- price("IBM")]
	    previously (price("IBM") <= 0.5 * x and time >= t - 10)`)
	reg := ibmRegistry(t)
	ev, err := Compile(f, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := ibmHistory([][2]int64{{10, 1}, {15, 2}, {18, 5}, {25, 8}})
	want := []bool{false, false, false, true}
	for i := 0; i < h.Len(); i++ {
		res, err := ev.Step(h.At(i))
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if res.Fired != want[i] {
			t.Errorf("state %d: fired = %t, want %t", i, res.Fired, want[i])
		}
	}
}

// TestPaperIBMOptimization reproduces the second worked history
// (10,1) (15,2) (18,5) (11,20): the time-bound optimization must fold all
// dead clauses, leaving only the clause from the last state.
func TestPaperIBMOptimization(t *testing.T) {
	f := mustParse(t, `[t <- time] [x <- price("IBM")]
	    previously (price("IBM") <= 0.5 * x and time >= t - 10)`)
	reg := ibmRegistry(t)
	opt, err := Compile(f, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	noopt, err := Compile(f, reg, nil, WithoutTimeBoundOptimization())
	if err != nil {
		t.Fatal(err)
	}
	h := ibmHistory([][2]int64{{10, 1}, {15, 2}, {18, 5}, {11, 20}})
	for i := 0; i < h.Len(); i++ {
		r1, err := opt.Step(h.At(i))
		if err != nil {
			t.Fatal(err)
		}
		r2, err := noopt.Step(h.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if r1.Fired != r2.Fired {
			t.Fatalf("state %d: optimized fired=%t, unoptimized fired=%t", i, r1.Fired, r2.Fired)
		}
		if r1.Fired {
			t.Errorf("state %d: trigger should not fire in this history", i)
		}
	}
	// After the jump to time 20, the clauses from times 1, 2 and 5 are dead
	// (their windows t <= 11, t <= 12, t <= 15 all precede now=20); the
	// optimized evaluator must retain strictly less state.
	so, sn := opt.StateSize(), noopt.StateSize()
	if so >= sn {
		t.Errorf("optimized state %d not smaller than unoptimized %d", so, sn)
	}
}

// TestLoginSessionCondition exercises the introduction's example: "the
// value of attribute A remains positive while user X is logged in",
// phrased as its violation trigger A <= 0 since login, with the login user
// as a rule parameter.
func TestLoginSessionCondition(t *testing.T) {
	f := mustParse(t, `(not @logout(U)) since (@login(U) and item("A") > 0)`)
	reg := query.NewRegistry()
	info, err := ptl.Check(f, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Free) != 1 || info.Free[0] != "U" {
		t.Fatalf("free vars = %v", info.Free)
	}
	ev, err := New(info, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	db := history.EmptyDB().With("A", value.NewInt(5))
	b := history.NewBuilder(db, 0)
	alice := value.NewString("alice")
	bob := value.NewString("bob")
	_ = b.Event(1, event.New("login", alice))
	_ = b.Event(2, event.New("login", bob))
	_ = b.Event(3, event.New("logout", bob))
	_ = b.Event(4, event.New("tick"))
	h := b.History()

	fired := make([]map[string]bool, h.Len())
	for i := 0; i < h.Len(); i++ {
		res, err := ev.Step(h.At(i))
		if err != nil {
			t.Fatal(err)
		}
		fired[i] = map[string]bool{}
		for _, bnd := range res.Bindings {
			fired[i][bnd["U"].AsString()] = true
		}
	}
	if !fired[1]["alice"] || fired[1]["bob"] {
		t.Errorf("state 1 bindings = %v", fired[1])
	}
	if !fired[2]["alice"] || !fired[2]["bob"] {
		t.Errorf("state 2 bindings = %v", fired[2])
	}
	// bob logged out at state 3: only alice's session is still open.
	if !fired[3]["alice"] || fired[3]["bob"] {
		t.Errorf("state 3 bindings = %v", fired[3])
	}
	if !fired[4]["alice"] || fired[4]["bob"] {
		t.Errorf("state 4 bindings = %v", fired[4])
	}
}

// TestTheorem1RandomEquivalence is the Theorem-1 property test: for random
// closed formulas and random histories, the incremental evaluator fires at
// state i iff the naive whole-history semantics satisfies the formula at
// state i.
func TestTheorem1RandomEquivalence(t *testing.T) {
	reg := ptlgen.Registry()
	iters := 400
	if testing.Short() {
		iters = 60
	}
	for it := 0; it < iters; it++ {
		rng := rand.New(rand.NewSource(int64(it)))
		f := ptlgen.Formula(rng, 1+rng.Intn(4))
		info, err := ptl.Check(f, reg)
		if err != nil {
			t.Fatalf("seed %d: check %s: %v", it, f, err)
		}
		h := ptlgen.History(rng, 12)
		inc, err := New(info, reg, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", it, err)
		}
		direct := naive.New(reg, h, nil)
		for i := 0; i < h.Len(); i++ {
			res, err := inc.Step(h.At(i))
			if err != nil {
				t.Fatalf("seed %d state %d: incremental: %v\nformula: %s", it, i, err, f)
			}
			want, err := direct.Sat(i, f, nil)
			if err != nil {
				t.Fatalf("seed %d state %d: naive: %v\nformula: %s", it, i, err, f)
			}
			if res.Fired != want {
				t.Fatalf("seed %d state %d: incremental=%t naive=%t\nformula: %s\nnormalized: %s",
					it, i, res.Fired, want, f, info.Normalized)
			}
		}
	}
}

// TestTheorem1WithAggregates extends the property test to formulas
// containing temporal aggregates.
func TestTheorem1WithAggregates(t *testing.T) {
	reg := ptlgen.Registry()
	iters := 150
	if testing.Short() {
		iters = 25
	}
	for it := 0; it < iters; it++ {
		rng := rand.New(rand.NewSource(int64(1000 + it)))
		f := ptlgen.FormulaWithAggregates(rng, 1+rng.Intn(3))
		info, err := ptl.Check(f, reg)
		if err != nil {
			t.Fatalf("seed %d: check %s: %v", it, f, err)
		}
		h := ptlgen.History(rng, 10)
		inc, err := New(info, reg, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", it, err)
		}
		direct := naive.New(reg, h, nil)
		for i := 0; i < h.Len(); i++ {
			res, err := inc.Step(h.At(i))
			if err != nil {
				t.Fatalf("seed %d state %d: incremental: %v\nformula: %s", it, i, err, f)
			}
			want, err := direct.Sat(i, f, nil)
			if err != nil {
				t.Fatalf("seed %d state %d: naive: %v\nformula: %s", it, i, err, f)
			}
			if res.Fired != want {
				t.Fatalf("seed %d state %d: incremental=%t naive=%t\nformula: %s", it, i, res.Fired, want, f)
			}
		}
	}
}

// TestOptimizationPreservesSemantics re-runs random formulas with the
// time-bound optimization disabled and checks both evaluators agree.
func TestOptimizationPreservesSemantics(t *testing.T) {
	reg := ptlgen.Registry()
	iters := 200
	if testing.Short() {
		iters = 40
	}
	for it := 0; it < iters; it++ {
		rng := rand.New(rand.NewSource(int64(5000 + it)))
		f := ptlgen.Formula(rng, 1+rng.Intn(4))
		h := ptlgen.History(rng, 12)
		a, err := Compile(f, reg, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", it, err)
		}
		b, err := Compile(f, reg, nil, WithoutTimeBoundOptimization())
		if err != nil {
			t.Fatalf("seed %d: %v", it, err)
		}
		for i := 0; i < h.Len(); i++ {
			ra, err := a.Step(h.At(i))
			if err != nil {
				t.Fatalf("seed %d: %v", it, err)
			}
			rb, err := b.Step(h.At(i))
			if err != nil {
				t.Fatalf("seed %d: %v", it, err)
			}
			if ra.Fired != rb.Fired {
				t.Fatalf("seed %d state %d: optimized=%t plain=%t\nformula: %s", it, i, ra.Fired, rb.Fired, f)
			}
		}
	}
}

// TestBoundedStateStaysBounded checks the paper's claim that bounded
// operators with the optimization keep only bounded information: state
// size must not grow linearly with history length.
func TestBoundedStateStaysBounded(t *testing.T) {
	f := mustParse(t, `[x <- price("IBM")] previously <= 10 (price("IBM") <= 0.5 * x)`)
	reg := ibmRegistry(t)
	ev, err := Compile(f, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	db := history.EmptyDB().With("ibm", value.NewFloat(100))
	b := history.NewBuilder(db, 0)
	rng := rand.New(rand.NewSource(7))
	maxState := 0
	for i := 1; i <= 500; i++ {
		price := 50 + rng.Float64()*100
		if err := b.Commit(int64(i), int64(i), map[string]value.Value{"ibm": value.NewFloat(price)}); err != nil {
			t.Fatal(err)
		}
		if _, err := ev.Step(b.History().At(b.History().Len() - 1)); err != nil {
			t.Fatal(err)
		}
		if s := ev.StateSize(); s > maxState {
			maxState = s
		}
	}
	// The window holds at most 10 states; each contributes a small constant
	// number of nodes. 200 is a generous cap that a linear-growth bug blows
	// through immediately (500 states would give thousands of nodes).
	if maxState > 200 {
		t.Errorf("bounded formula state grew to %d nodes; optimization not bounding state", maxState)
	}
}

// TestUnboundedStateGrowsWithoutOptimization is the negative control for
// the previous test: with the optimization off, the same formula's state
// grows with the history.
func TestUnboundedStateGrowsWithoutOptimization(t *testing.T) {
	f := mustParse(t, `[x <- price("IBM")] previously <= 10 (price("IBM") <= 0.5 * x)`)
	reg := ibmRegistry(t)
	ev, err := Compile(f, reg, nil, WithoutTimeBoundOptimization())
	if err != nil {
		t.Fatal(err)
	}
	db := history.EmptyDB().With("ibm", value.NewFloat(100))
	b := history.NewBuilder(db, 0)
	rng := rand.New(rand.NewSource(7))
	for i := 1; i <= 200; i++ {
		price := 50 + rng.Float64()*100
		_ = b.Commit(int64(i), int64(i), map[string]value.Value{"ibm": value.NewFloat(price)})
		if _, err := ev.Step(b.History().At(b.History().Len() - 1)); err != nil {
			t.Fatal(err)
		}
	}
	if s := ev.StateSize(); s < 200 {
		t.Errorf("unoptimized state = %d nodes; expected linear growth past 200", s)
	}
}

// TestExecutedPredicate drives the executed predicate through a small log.
func TestExecutedPredicate(t *testing.T) {
	f := mustParse(t, `executed(r1, X, T) and time = T + 10`)
	reg := query.NewRegistry()
	log := &fakeLog{}
	ev, err := Compile(f, reg, log)
	if err != nil {
		t.Fatal(err)
	}
	b := history.NewBuilder(history.EmptyDB(), 0)
	_ = b.Event(5, event.New("tick"))
	log.add(ptl.Execution{Rule: "r1", Params: []value.Value{value.NewInt(42)}, Time: 5})
	_ = b.Event(10, event.New("tick"))
	_ = b.Event(15, event.New("tick"))
	h := b.History()
	// state times: 0, 5, 10, 15. Execution at 5 with param 42; condition
	// holds when time = 15.
	wantFired := []bool{false, false, false, true}
	for i := 0; i < h.Len(); i++ {
		res, err := ev.Step(h.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Fired != wantFired[i] {
			t.Errorf("state %d fired=%t want %t", i, res.Fired, wantFired[i])
		}
		if res.Fired {
			if len(res.Bindings) != 1 || res.Bindings[0]["X"].AsInt() != 42 || res.Bindings[0]["T"].AsInt() != 5 {
				t.Errorf("bindings = %v", res.Bindings)
			}
		}
	}
}

type fakeLog struct {
	execs []ptl.Execution
}

func (l *fakeLog) add(e ptl.Execution) { l.execs = append(l.execs, e) }

func (l *fakeLog) Executions(rule string, before int64) []ptl.Execution {
	var out []ptl.Execution
	for _, e := range l.execs {
		if e.Rule == rule && e.Time < before {
			out = append(out, e)
		}
	}
	return out
}

// TestMembershipBinding exercises relation-valued bindings: a parameterized
// rule whose parameter ranges over a relation captured by an assignment
// under a temporal operator (the paper's auxiliary relation R_x).
func TestMembershipBinding(t *testing.T) {
	reg := query.NewRegistry()
	schema := [][]value.Value{
		{value.NewString("XYZ")},
		{value.NewString("OIL")},
	}
	_ = schema
	err := reg.Register("overpriced", 0, func(st history.SystemState, args []value.Value) (value.Value, error) {
		v, _ := st.GetItem("overpriced")
		return v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fires for stock S that was overpriced at some past instant.
	f := mustParse(t, `[r <- overpriced()] previously (S in r)`)
	// Careful: the assignment is outside previously, so r is the CURRENT
	// overpriced set; the membership is tested against it at past states —
	// it stays the current set (r is bound at evaluation time). For the
	// intended "was overpriced in the past" the assignment goes inside:
	f2 := mustParse(t, `previously ([r <- overpriced()] S in r)`)
	db := history.EmptyDB().With("overpriced", value.NewRelation([][]value.Value{{value.NewString("XYZ")}}))
	b := history.NewBuilder(db, 0)
	_ = b.Commit(1, 1, map[string]value.Value{"overpriced": value.NewRelation([][]value.Value{{value.NewString("OIL")}})})
	h := b.History()

	ev1, err := Compile(f, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := Compile(f2, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var last1, last2 Result
	for i := 0; i < h.Len(); i++ {
		last1, err = ev1.Step(h.At(i))
		if err != nil {
			t.Fatal(err)
		}
		last2, err = ev2.Step(h.At(i))
		if err != nil {
			t.Fatal(err)
		}
	}
	// f: r = current set {OIL}; membership at any past state is against
	// {OIL}: binding S=OIL only.
	if len(last1.Bindings) != 1 || last1.Bindings[0]["S"].AsString() != "OIL" {
		t.Errorf("f bindings = %v", last1.Bindings)
	}
	// f2: r bound per past state: S in {XYZ} at state 0 or S in {OIL} at
	// state 1: both bindings fire.
	got := map[string]bool{}
	for _, bnd := range last2.Bindings {
		got[bnd["S"].AsString()] = true
	}
	if !got["XYZ"] || !got["OIL"] || len(got) != 2 {
		t.Errorf("f2 bindings = %v", last2.Bindings)
	}
}

// TestWindowedAggregate checks the moving-average condition end to end:
// hourly (60-unit) moving average of the price sampled at update events.
func TestWindowedAggregate(t *testing.T) {
	f := mustParse(t, `avg(price("IBM"); window 60; @update_stocks) > 70`)
	reg := ibmRegistry(t)
	ev, err := Compile(f, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	db := history.EmptyDB().With("ibm", value.NewFloat(80))
	b := history.NewBuilder(db, 0)
	step := func(ts int64, price float64) Result {
		t.Helper()
		err := b.Commit(ts, ts, map[string]value.Value{"ibm": value.NewFloat(price)}, event.New("update_stocks"))
		if err != nil {
			t.Fatal(err)
		}
		res, err := ev.Step(b.History().At(b.History().Len() - 1))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if _, err := ev.Step(b.History().At(0)); err != nil {
		t.Fatal(err)
	}
	if r := step(10, 80); !r.Fired { // avg {80} = 80
		t.Error("avg 80 should fire")
	}
	if r := step(20, 50); r.Fired { // avg {80, 50} = 65
		t.Error("avg 65 should not fire")
	}
	if r := step(85, 72); !r.Fired { // window drops 80(t=10) and 50(t=20): avg {72}
		t.Error("avg 72 after eviction should fire")
	}
}

// TestClosedNonTemporalCondition: conditions without temporal operators
// reduce to the current state only.
func TestClosedNonTemporalCondition(t *testing.T) {
	f := mustParse(t, `item("a") > 3 and not @e0`)
	reg := query.NewRegistry()
	info, err := ptl.Check(f, reg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Temporal {
		t.Error("condition should be classified non-temporal")
	}
	ev, err := New(info, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	db := history.EmptyDB().With("a", value.NewInt(5))
	st := history.SystemState{DB: db, Events: event.NewSet(), TS: 1}
	res, err := ev.Step(st)
	if err != nil || !res.Fired {
		t.Fatalf("res=%v err=%v", res, err)
	}
	st2 := history.SystemState{DB: db, Events: event.NewSet(event.New("e0")), TS: 2}
	res, err = ev.Step(st2)
	if err != nil || res.Fired {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

// TestStepCountAndInfo covers small accessors.
func TestStepCountAndInfo(t *testing.T) {
	f := mustParse(t, `true since @e0`)
	reg := query.NewRegistry()
	ev, err := Compile(f, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Info() == nil || ev.Steps() != 0 {
		t.Fatal("accessors wrong before stepping")
	}
	st := history.SystemState{DB: history.EmptyDB(), Events: event.NewSet(), TS: 1}
	if _, err := ev.Step(st); err != nil {
		t.Fatal(err)
	}
	if ev.Steps() != 1 {
		t.Fatal("Steps should count")
	}
	if _, err := New(nil, reg, nil); err == nil {
		t.Error("New(nil) should error")
	}
}

// TestEnumerationLimit: parameter combinations beyond the cap surface an
// error instead of unbounded work.
func TestEnumerationLimit(t *testing.T) {
	f := mustParse(t, `@pair(X, Y)`)
	reg := query.NewRegistry()
	ev, err := Compile(f, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 350 x 350 candidate pairs = 122500 > enumerationLimit.
	evs := make([]event.Event, 0, 350)
	for i := 0; i < 350; i++ {
		evs = append(evs, event.New("pair", value.NewInt(int64(i)), value.NewInt(int64(i))))
	}
	st := history.SystemState{DB: history.EmptyDB(), Events: event.NewSet(evs...), TS: 1}
	if _, err := ev.Step(st); err == nil {
		t.Fatal("enumeration beyond the limit should error")
	}
	// A modest number of bindings still enumerates fine.
	ev2, _ := Compile(f, reg, nil)
	st2 := history.SystemState{DB: history.EmptyDB(),
		Events: event.NewSet(evs[:20]...), TS: 1}
	res, err := ev2.Step(st2)
	if err != nil {
		t.Fatal(err)
	}
	// Candidates form a 20x20 product but only the diagonal satisfies.
	if len(res.Bindings) != 20 {
		t.Fatalf("bindings = %d, want 20", len(res.Bindings))
	}
}

// TestStateSizeAndRegistersAccessors exercises the diagnostics used by the
// experiments.
func TestStateSizeAndRegistersAccessors(t *testing.T) {
	f := mustParse(t, `(@a since @b) and lasttime @c and sum(item("x"); @s; @m) > 0`)
	reg := query.NewRegistry()
	ev, err := Compile(f, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// since + lasttime at top, plus registers inside the aggregate's
	// start/sample sub-evaluators (none here: atoms only).
	if ev.Registers() != 2 {
		t.Fatalf("Registers = %d, want 2", ev.Registers())
	}
	if ev.StateSize() != 2 { // two nodeFalse slots, shared node counted per slot walk
		// StateSize counts distinct nodes; both slots hold the shared
		// nodeFalse constant, so the count is 1.
		if ev.StateSize() != 1 {
			t.Fatalf("StateSize = %d", ev.StateSize())
		}
	}
}
