package core

import (
	"fmt"

	"ptlactive/internal/history"
	"ptlactive/internal/ptl"
	"ptlactive/internal/query"
	"ptlactive/internal/value"
)

// FastEvaluator is a specialized incremental evaluator for the
// *decomposable* subclass of PTL — the subclass the paper's Sybase
// prototype implemented ([Deng 94]): closed conditions in which no
// variable crosses a temporal operator. For these, every F_{g,i} collapses
// to a truth value, so instead of constraint graphs the evaluator keeps
// exactly one boolean per temporal occurrence. It computes the same
// recurrences as Evaluator:
//
//	reg[g since h] = F_h(i) || (F_g(i) && reg[g since h])
//	reg[lasttime g] is read, then overwritten with F_g(i)
//
// The ablation experiment (bench_test.go, BenchmarkAblationDecomposable)
// measures what the general constraint-graph machinery costs on
// conditions that do not need it.
type FastEvaluator struct {
	info *ptl.Info
	reg  *query.Registry
	log  ptl.ExecLog

	sinceReg map[*ptl.Since]*bool
	lastReg  map[*ptl.Lasttime]*bool
	steps    int
	st       history.SystemState

	// Query cache, valid while the database is unchanged (qcache.go);
	// cacheable is immutable after NewFast and shared by clones.
	qcache    map[*ptl.Call]value.Value
	cacheable map[*ptl.Call]bool
}

// NewFast compiles a checked condition into a fast evaluator. It returns
// an error when the condition is outside the decomposable subclass
// (parameters, variables crossing temporal operators, or aggregates —
// evaluate those with New).
func NewFast(info *ptl.Info, reg *query.Registry, log ptl.ExecLog) (*FastEvaluator, error) {
	if info == nil {
		return nil, fmt.Errorf("core: nil condition info")
	}
	if log == nil {
		log = ptl.NoExecutions{}
	}
	if !ptl.Decomposable(info.Source) {
		return nil, fmt.Errorf("core: condition is not decomposable; use the general evaluator")
	}
	hasAgg := false
	ptl.WalkTerms(info.Normalized, func(t ptl.Term) {
		if _, ok := t.(*ptl.Agg); ok {
			hasAgg = true
		}
	})
	if hasAgg {
		return nil, fmt.Errorf("core: fast evaluator does not support aggregates; use the general evaluator")
	}
	e := &FastEvaluator{
		info:     info,
		reg:      reg,
		log:      log,
		sinceReg: map[*ptl.Since]*bool{},
		lastReg:  map[*ptl.Lasttime]*bool{},
	}
	ptl.Walk(info.Normalized, func(g ptl.Formula) {
		switch x := g.(type) {
		case *ptl.Since:
			e.sinceReg[x] = new(bool)
		case *ptl.Lasttime:
			e.lastReg[x] = new(bool)
		}
	})
	e.cacheable = cacheableCalls(info.Normalized, reg)
	return e, nil
}

// CompileFast checks a formula and builds a fast evaluator.
func CompileFast(f ptl.Formula, reg *query.Registry, log ptl.ExecLog) (*FastEvaluator, error) {
	info, err := ptl.Check(f, reg)
	if err != nil {
		return nil, err
	}
	return NewFast(info, reg, log)
}

// Registers returns the number of boolean temporal registers.
func (e *FastEvaluator) Registers() int { return len(e.sinceReg) + len(e.lastReg) }

// Steps returns the number of states processed.
func (e *FastEvaluator) Steps() int { return e.steps }

// Step feeds the next system state and reports whether the condition is
// satisfied at it.
func (e *FastEvaluator) Step(st history.SystemState) (bool, error) {
	return e.stepHinted(st, false)
}

func (e *FastEvaluator) stepHinted(st history.SystemState, dbUnchanged bool) (bool, error) {
	if !dbUnchanged {
		clear(e.qcache)
	}
	e.st = st
	fired, err := e.eval(e.info.Normalized, nil)
	if err != nil {
		return false, err
	}
	e.steps++
	return fired, nil
}

type fastEnv struct {
	name string
	v    value.Value
	next *fastEnv
}

func (env *fastEnv) lookup(name string) (value.Value, bool) {
	for e := env; e != nil; e = e.next {
		if e.name == name {
			return e.v, true
		}
	}
	return value.Value{}, false
}

func (e *FastEvaluator) eval(f ptl.Formula, env *fastEnv) (bool, error) {
	switch x := f.(type) {
	case *ptl.BoolConst:
		return x.V, nil
	case *ptl.Cmp:
		l, err := e.term(x.L, env)
		if err != nil {
			return false, err
		}
		r, err := e.term(x.R, env)
		if err != nil {
			return false, err
		}
		if l.IsNull() || r.IsNull() {
			return false, nil
		}
		return value.Cmp(x.Op, l, r)
	case *ptl.EventAtom:
		args := make([]value.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := e.term(a, env)
			if err != nil {
				return false, err
			}
			args[i] = v
		}
		for _, ev := range e.st.Events.ByName(x.Name) {
			if len(ev.Args) != len(args) {
				continue
			}
			match := true
			for i := range args {
				if !ev.Args[i].Equal(args[i]) {
					match = false
					break
				}
			}
			if match {
				return true, nil
			}
		}
		return false, nil
	case *ptl.Executed:
		args := make([]value.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := e.term(a, env)
			if err != nil {
				return false, err
			}
			args[i] = v
		}
		tv, err := e.term(x.TimeArg, env)
		if err != nil {
			return false, err
		}
		for _, ex := range e.log.Executions(x.Rule, e.st.TS) {
			if !value.NewInt(ex.Time).Equal(tv) || len(ex.Params) != len(args) {
				continue
			}
			match := true
			for i := range args {
				if !ex.Params[i].Equal(args[i]) {
					match = false
					break
				}
			}
			if match {
				return true, nil
			}
		}
		return false, nil
	case *ptl.Member:
		rel, err := e.term(x.Rel, env)
		if err != nil {
			return false, err
		}
		if rel.IsNull() {
			return false, nil
		}
		if rel.Kind() != value.Relation {
			return false, fmt.Errorf("core: membership in %s", rel.Kind())
		}
		elems := make([]value.Value, len(x.Elems))
		for i, el := range x.Elems {
			v, err := e.term(el, env)
			if err != nil {
				return false, err
			}
			elems[i] = v
		}
		want := value.NewTuple(elems...)
		for _, row := range rel.Rows() {
			if value.NewTuple(row...).Equal(want) {
				return true, nil
			}
		}
		return false, nil
	case *ptl.Not:
		b, err := e.eval(x.F, env)
		return !b, err
	case *ptl.And:
		l, err := e.eval(x.L, env)
		if err != nil {
			return false, err
		}
		r, err := e.eval(x.R, env)
		if err != nil {
			return false, err
		}
		return l && r, nil
	case *ptl.Or:
		l, err := e.eval(x.L, env)
		if err != nil {
			return false, err
		}
		r, err := e.eval(x.R, env)
		if err != nil {
			return false, err
		}
		return l || r, nil
	case *ptl.Since:
		fg, err := e.eval(x.L, env)
		if err != nil {
			return false, err
		}
		fh, err := e.eval(x.R, env)
		if err != nil {
			return false, err
		}
		reg := e.sinceReg[x]
		cur := fh || (fg && *reg)
		*reg = cur
		return cur, nil
	case *ptl.Lasttime:
		reg := e.lastReg[x]
		ret := *reg
		cur, err := e.eval(x.F, env)
		if err != nil {
			return false, err
		}
		*reg = cur
		return ret, nil
	case *ptl.Assign:
		v, err := e.term(x.Q, env)
		if err != nil {
			return false, err
		}
		return e.eval(x.Body, &fastEnv{name: x.Var, v: v, next: env})
	default:
		return false, fmt.Errorf("core: fast evaluator: unsupported %T", f)
	}
}

func (e *FastEvaluator) term(t ptl.Term, env *fastEnv) (value.Value, error) {
	switch x := t.(type) {
	case *ptl.Const:
		return x.V, nil
	case *ptl.Var:
		v, ok := env.lookup(x.Name)
		if !ok {
			return value.Value{}, fmt.Errorf("core: fast evaluator: unbound variable %s", x.Name)
		}
		return v, nil
	case *ptl.Call:
		if e.cacheable[x] {
			if v, hit := e.qcache[x]; hit {
				return v, nil
			}
		}
		args := make([]value.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := e.term(a, env)
			if err != nil {
				return value.Value{}, err
			}
			args[i] = v
		}
		v, err := e.reg.Eval(x.Fn, e.st, args)
		if err != nil {
			return value.Value{}, err
		}
		if e.cacheable[x] {
			if e.qcache == nil {
				e.qcache = make(map[*ptl.Call]value.Value)
			}
			e.qcache[x] = v
		}
		return v, nil
	case *ptl.Arith:
		l, err := e.term(x.L, env)
		if err != nil {
			return value.Value{}, err
		}
		r, err := e.term(x.R, env)
		if err != nil {
			return value.Value{}, err
		}
		if l.IsNull() || r.IsNull() || divByZero(x.Op, r) {
			return value.Value{}, nil
		}
		return value.Arith(x.Op, l, r)
	case *ptl.Neg:
		v, err := e.term(x.X, env)
		if err != nil || v.IsNull() {
			return value.Value{}, err
		}
		return value.Arith(value.Sub, value.NewInt(0), v)
	default:
		return value.Value{}, fmt.Errorf("core: fast evaluator: unsupported term %T", t)
	}
}

// Clone returns an independent copy of the fast evaluator (boolean
// registers copied).
func (e *FastEvaluator) Clone() *FastEvaluator {
	c := &FastEvaluator{
		info:      e.info,
		reg:       e.reg,
		log:       e.log,
		sinceReg:  make(map[*ptl.Since]*bool, len(e.sinceReg)),
		lastReg:   make(map[*ptl.Lasttime]*bool, len(e.lastReg)),
		steps:     e.steps,
		cacheable: e.cacheable,
	}
	for k, v := range e.sinceReg {
		b := *v
		c.sinceReg[k] = &b
	}
	for k, v := range e.lastReg {
		b := *v
		c.lastReg[k] = &b
	}
	return c
}

// StepResult adapts Step to the general evaluator's Result shape, so the
// engine can use either implementation behind one interface.
func (e *FastEvaluator) StepResult(st history.SystemState) (Result, error) {
	return e.StepResultHinted(st, false)
}

// StepResultHinted implements HintedEvaluator.
func (e *FastEvaluator) StepResultHinted(st history.SystemState, dbUnchanged bool) (Result, error) {
	ok, err := e.stepHinted(st, dbUnchanged)
	if err != nil {
		return Result{}, err
	}
	if ok {
		return Result{Fired: true, Bindings: []Binding{{}}}, nil
	}
	return Result{}, nil
}

// ConditionEvaluator is the common interface of the general and fast
// incremental evaluators; the engine selects the implementation per rule.
type ConditionEvaluator interface {
	StepResult(st history.SystemState) (Result, error)
	CloneEvaluator() ConditionEvaluator
}

// StepResult adapts the general evaluator to ConditionEvaluator.
func (e *Evaluator) StepResult(st history.SystemState) (Result, error) {
	return e.Step(st)
}

// StepResultHinted implements HintedEvaluator.
func (e *Evaluator) StepResultHinted(st history.SystemState, dbUnchanged bool) (Result, error) {
	return e.stepHinted(st, dbUnchanged)
}

// CloneEvaluator adapts Clone to ConditionEvaluator.
func (e *Evaluator) CloneEvaluator() ConditionEvaluator { return e.Clone() }

// CloneEvaluator adapts Clone to ConditionEvaluator.
func (e *FastEvaluator) CloneEvaluator() ConditionEvaluator { return e.Clone() }

// CompileAuto builds the best evaluator for the condition: the boolean
// fast path when the condition is in the decomposable subclass (and free
// of aggregates), the general constraint-graph evaluator otherwise.
func CompileAuto(info *ptl.Info, reg *query.Registry, log ptl.ExecLog) (ConditionEvaluator, error) {
	if fast, err := NewFast(info, reg, log); err == nil {
		return fast, nil
	}
	return New(info, reg, log)
}
