package core

import (
	"math/rand"
	"testing"

	"ptlactive/internal/ptl"
	"ptlactive/internal/ptlgen"
)

// TestFastMatchesGeneral: on random decomposable formulas the fast
// evaluator and the general constraint-graph evaluator agree at every
// state.
func TestFastMatchesGeneral(t *testing.T) {
	reg := ptlgen.Registry()
	checked := 0
	for seed := 0; checked < 150 && seed < 3000; seed++ {
		rng := rand.New(rand.NewSource(int64(20000 + seed)))
		f := ptlgen.Formula(rng, 1+rng.Intn(4))
		if !ptl.Decomposable(f) {
			continue
		}
		checked++
		info, err := ptl.Check(f, reg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		gen, err := New(info, reg, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fast, err := NewFast(info, reg, nil)
		if err != nil {
			t.Fatalf("seed %d: NewFast rejected decomposable formula: %v\n%s", seed, err, f)
		}
		h := ptlgen.History(rng, 12)
		for i := 0; i < h.Len(); i++ {
			rg, err := gen.Step(h.At(i))
			if err != nil {
				t.Fatalf("seed %d: general: %v", seed, err)
			}
			rf, err := fast.Step(h.At(i))
			if err != nil {
				t.Fatalf("seed %d: fast: %v", seed, err)
			}
			if rg.Fired != rf {
				t.Fatalf("seed %d state %d: general=%t fast=%t\nformula: %s",
					seed, i, rg.Fired, rf, f)
			}
		}
	}
	if checked < 50 {
		t.Fatalf("generator produced too few decomposable formulas: %d", checked)
	}
}

func TestFastRejectsNonDecomposable(t *testing.T) {
	reg := ptlgen.Registry()
	bad := []string{
		// Variable crossing a temporal operator.
		`[x <- item("a")] previously (item("a") = x)`,
		// Free variable.
		`previously @e1(X)`,
	}
	for _, src := range bad {
		f, err := ptl.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := CompileFast(f, reg, nil); err == nil {
			t.Errorf("CompileFast(%q) should fail", src)
		}
	}
	// Aggregates are rejected even though they are "decomposable".
	f, err := ptl.Parse(`sum(item("a"); time = 0; true) > 3`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CompileFast(f, reg, nil); err == nil {
		t.Error("aggregate condition should be rejected by the fast path")
	}
	if _, err := NewFast(nil, reg, nil); err == nil {
		t.Error("nil info should be rejected")
	}
}

func TestFastRegistersAndSteps(t *testing.T) {
	reg := ptlgen.Registry()
	f, err := ptl.Parse(`(@e0 since @e1(1)) and lasttime @e0`)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := CompileFast(f, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Registers() != 2 {
		t.Fatalf("Registers = %d, want 2", fast.Registers())
	}
	h := ptlgen.History(rand.New(rand.NewSource(1)), 5)
	for i := 0; i < h.Len(); i++ {
		if _, err := fast.Step(h.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	if fast.Steps() != h.Len() {
		t.Fatalf("Steps = %d", fast.Steps())
	}
}

func TestFastExecutedPredicate(t *testing.T) {
	reg := ptlgen.Registry()
	log := &fakeLog{}
	log.add(ptl.Execution{Rule: "r1", Params: nil, Time: 2})
	f, err := ptl.Parse(`executed(r1, 2)`)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := CompileFast(f, reg, log)
	if err != nil {
		t.Fatal(err)
	}
	h := ptlgen.History(rand.New(rand.NewSource(2)), 6)
	anyFired := false
	for i := 0; i < h.Len(); i++ {
		ok, err := fast.Step(h.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			anyFired = true
			if h.At(i).TS <= 2 {
				t.Fatalf("executed matched at time %d, not after 2", h.At(i).TS)
			}
		}
	}
	if !anyFired {
		t.Fatal("executed predicate never matched")
	}
}
