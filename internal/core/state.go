// Evaluator state (de)serialization for the durability subsystem. A
// snapshot must capture, per rule, exactly the Section-5 incremental
// state — the stored constraint formulas F_{g,i-1} (an and-or DAG of
// cnodes) and the aggregate machines — so a recovered engine resumes with
// the same bounded state instead of replaying the whole history
// (Theorem 1 is what makes this snapshot small).
//
// Registers are addressed positionally: the k-th pointer-distinct
// Since/Lasttime occurrence in the ptl.Walk preorder of the normalized
// formula maps to the k-th saved register, and aggregates map in aggOrder
// (WalkTerms order). Normalization is deterministic and never shares
// temporal subformula pointers, so recompiling the decoded source formula
// yields the same occurrence sequence.
//
// The cnode DAG is stored as a post-order arena (children precede
// parents) and decoded back through the real constructors; stored graphs
// are constructor fixpoints (ground atoms folded, and/or flattened and
// deduplicated), so reconstruction is exact, including node sharing and
// the nodeTrue/nodeFalse singletons.
package core

import (
	"encoding/json"
	"fmt"

	"ptlactive/internal/ptl"
	"ptlactive/internal/value"
)

// evalState is the wire form of one evaluator's mutable state.
type evalState struct {
	Kind  string `json:"kind"` // "general" | "fast"
	Steps int    `json:"steps"`

	// General evaluator: term/node arenas plus per-occurrence node ids.
	Terms []termRec `json:"terms,omitempty"`
	Nodes []nodeRec `json:"nodes,omitempty"`
	Since []int     `json:"since,omitempty"`
	Last  []int     `json:"last,omitempty"`
	Aggs  []*aggRec `json:"aggs,omitempty"`

	// Fast evaluator: one boolean per occurrence.
	SinceB []bool `json:"sinceb,omitempty"`
	LastB  []bool `json:"lastb,omitempty"`
}

// termRec is one constraint term; child ids always precede the record.
type termRec struct {
	Kind int             `json:"k"`
	V    json.RawMessage `json:"v,omitempty"`    // ctConst
	Name string          `json:"name,omitempty"` // ctVar
	Op   int             `json:"op,omitempty"`   // ctArith
	L    int             `json:"l,omitempty"`
	R    int             `json:"r,omitempty"`
}

// nodeRec is one constraint-formula node; child ids precede the record.
type nodeRec struct {
	Kind  int   `json:"k"`
	Op    int   `json:"op,omitempty"`    // nkAtom
	L     int   `json:"l,omitempty"`     // nkAtom term ids
	R     int   `json:"r,omitempty"`     // nkAtom
	Elems []int `json:"elems,omitempty"` // nkMember term ids
	Rel   int   `json:"rel,omitempty"`   // nkMember term id
	Kids  []int `json:"kids,omitempty"`  // nkAnd/nkOr node ids
	Sub   int   `json:"sub,omitempty"`   // nkNot node id
}

// aggRec is one aggregate machine's state. The transient cur/has fields
// (set by step, never read across steps) are deliberately not saved.
type aggRec struct {
	Started bool              `json:"started"`
	Samples []json.RawMessage `json:"samples,omitempty"`
	Times   []int64           `json:"times,omitempty"`
	Sum     json.RawMessage   `json:"sum"`
	Count   int64             `json:"count"`
	StartEv *evalState        `json:"startev,omitempty"`
	SampEv  *evalState        `json:"sampev"`
}

// EncodeEvaluatorState serializes the mutable state of a compiled
// evaluator (general or fast). The static parts — formula, registry,
// execution log — are not included; RestoreEvaluatorState overlays the
// saved state onto a freshly compiled evaluator for the same condition.
func EncodeEvaluatorState(ev ConditionEvaluator) ([]byte, error) {
	var st *evalState
	var err error
	switch x := ev.(type) {
	case *Evaluator:
		st, err = encodeGeneral(x)
	case *FastEvaluator:
		st, err = encodeFast(x)
	default:
		return nil, fmt.Errorf("core: cannot serialize evaluator %T", ev)
	}
	if err != nil {
		return nil, err
	}
	return json.Marshal(st)
}

// RestoreEvaluatorState overlays state written by EncodeEvaluatorState
// onto a freshly compiled evaluator of the same condition and the same
// implementation (general vs fast).
func RestoreEvaluatorState(ev ConditionEvaluator, data []byte) error {
	var st evalState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: evaluator state: %w", err)
	}
	switch x := ev.(type) {
	case *Evaluator:
		return restoreGeneral(x, &st)
	case *FastEvaluator:
		return restoreFast(x, &st)
	default:
		return fmt.Errorf("core: cannot restore evaluator %T", ev)
	}
}

// temporalOccurrences lists the pointer-distinct Since and Lasttime
// occurrences of f in ptl.Walk preorder — the canonical register order
// shared by the encoder and the decoder.
func temporalOccurrences(f ptl.Formula) ([]*ptl.Since, []*ptl.Lasttime) {
	var sinces []*ptl.Since
	var lasts []*ptl.Lasttime
	seenS := map[*ptl.Since]bool{}
	seenL := map[*ptl.Lasttime]bool{}
	ptl.Walk(f, func(g ptl.Formula) {
		switch x := g.(type) {
		case *ptl.Since:
			if !seenS[x] {
				seenS[x] = true
				sinces = append(sinces, x)
			}
		case *ptl.Lasttime:
			if !seenL[x] {
				seenL[x] = true
				lasts = append(lasts, x)
			}
		}
	})
	return sinces, lasts
}

// stateArena accumulates terms and nodes in post order with pointer
// deduplication, so the stored DAG keeps its sharing.
type stateArena struct {
	terms   []termRec
	termIDs map[*cterm]int
	nodes   []nodeRec
	nodeIDs map[*cnode]int
	err     error
}

func newStateArena() *stateArena {
	return &stateArena{termIDs: map[*cterm]int{}, nodeIDs: map[*cnode]int{}}
}

func (a *stateArena) term(t *cterm) int {
	if id, ok := a.termIDs[t]; ok {
		return id
	}
	rec := termRec{Kind: int(t.kind)}
	switch t.kind {
	case ctConst:
		raw, err := value.EncodeJSON(t.v)
		if err != nil && a.err == nil {
			a.err = err
		}
		rec.V = raw
	case ctVar:
		rec.Name = t.name
	case ctArith:
		rec.Op = int(t.op)
		rec.L = a.term(t.l)
		rec.R = a.term(t.r)
	default:
		if a.err == nil {
			a.err = fmt.Errorf("core: unknown cterm kind %d", t.kind)
		}
	}
	id := len(a.terms)
	a.terms = append(a.terms, rec)
	a.termIDs[t] = id
	return id
}

func (a *stateArena) node(n *cnode) int {
	if id, ok := a.nodeIDs[n]; ok {
		return id
	}
	rec := nodeRec{Kind: int(n.kind)}
	switch n.kind {
	case nkTrue, nkFalse:
	case nkAtom:
		rec.Op = int(n.op)
		rec.L = a.term(n.l)
		rec.R = a.term(n.r)
	case nkMember:
		rec.Elems = make([]int, len(n.elems))
		for i, e := range n.elems {
			rec.Elems[i] = a.term(e)
		}
		rec.Rel = a.term(n.rel)
	case nkAnd, nkOr:
		rec.Kids = make([]int, len(n.kids))
		for i, k := range n.kids {
			rec.Kids[i] = a.node(k)
		}
	case nkNot:
		rec.Sub = a.node(n.sub)
	default:
		if a.err == nil {
			a.err = fmt.Errorf("core: unknown cnode kind %d", n.kind)
		}
	}
	id := len(a.nodes)
	a.nodes = append(a.nodes, rec)
	a.nodeIDs[n] = id
	return id
}

// decodeArena rebuilds the term and node arenas through the real
// constructors. Post order guarantees every child id is below its parent,
// which is also the validity check against corrupted input.
func decodeArena(st *evalState) ([]*cterm, []*cnode, error) {
	terms := make([]*cterm, len(st.Terms))
	termAt := func(id, limit int) (*cterm, error) {
		if id < 0 || id >= limit {
			return nil, fmt.Errorf("core: evaluator state: term id %d out of range", id)
		}
		return terms[id], nil
	}
	for i, rec := range st.Terms {
		switch ctKind(rec.Kind) {
		case ctConst:
			v, err := value.DecodeJSON(rec.V)
			if err != nil {
				return nil, nil, fmt.Errorf("core: evaluator state: term %d: %w", i, err)
			}
			terms[i] = constTerm(v)
		case ctVar:
			terms[i] = varTerm(rec.Name)
		case ctArith:
			l, err := termAt(rec.L, i)
			if err != nil {
				return nil, nil, err
			}
			r, err := termAt(rec.R, i)
			if err != nil {
				return nil, nil, err
			}
			t, err := arithTerm(value.ArithOp(rec.Op), l, r)
			if err != nil {
				return nil, nil, fmt.Errorf("core: evaluator state: term %d: %w", i, err)
			}
			terms[i] = t
		default:
			return nil, nil, fmt.Errorf("core: evaluator state: unknown term kind %d", rec.Kind)
		}
	}
	nodes := make([]*cnode, len(st.Nodes))
	nodeAt := func(id, limit int) (*cnode, error) {
		if id < 0 || id >= limit {
			return nil, fmt.Errorf("core: evaluator state: node id %d out of range", id)
		}
		return nodes[id], nil
	}
	for i, rec := range st.Nodes {
		switch nodeKind(rec.Kind) {
		case nkTrue:
			nodes[i] = nodeTrue
		case nkFalse:
			nodes[i] = nodeFalse
		case nkAtom:
			l, err := termAt(rec.L, len(terms))
			if err != nil {
				return nil, nil, err
			}
			r, err := termAt(rec.R, len(terms))
			if err != nil {
				return nil, nil, err
			}
			n, err := mkAtom(value.CmpOp(rec.Op), l, r)
			if err != nil {
				return nil, nil, fmt.Errorf("core: evaluator state: node %d: %w", i, err)
			}
			nodes[i] = n
		case nkMember:
			elems := make([]*cterm, len(rec.Elems))
			for j, id := range rec.Elems {
				e, err := termAt(id, len(terms))
				if err != nil {
					return nil, nil, err
				}
				elems[j] = e
			}
			rel, err := termAt(rec.Rel, len(terms))
			if err != nil {
				return nil, nil, err
			}
			n, err := mkMember(elems, rel)
			if err != nil {
				return nil, nil, fmt.Errorf("core: evaluator state: node %d: %w", i, err)
			}
			nodes[i] = n
		case nkAnd, nkOr:
			kids := make([]*cnode, len(rec.Kids))
			for j, id := range rec.Kids {
				k, err := nodeAt(id, i)
				if err != nil {
					return nil, nil, err
				}
				kids[j] = k
			}
			if nodeKind(rec.Kind) == nkAnd {
				nodes[i] = mkAnd(kids...)
			} else {
				nodes[i] = mkOr(kids...)
			}
		case nkNot:
			s, err := nodeAt(rec.Sub, i)
			if err != nil {
				return nil, nil, err
			}
			nodes[i] = mkNot(s)
		default:
			return nil, nil, fmt.Errorf("core: evaluator state: unknown node kind %d", rec.Kind)
		}
	}
	return terms, nodes, nil
}

func encodeGeneral(e *Evaluator) (*evalState, error) {
	st := &evalState{Kind: "general", Steps: e.steps}
	ar := newStateArena()
	sinces, lasts := temporalOccurrences(e.info.Normalized)
	if len(sinces) != len(e.sincePrev) || len(lasts) != len(e.lastPrev) {
		return nil, fmt.Errorf("core: internal: occurrence walk found %d/%d registers, evaluator has %d/%d",
			len(sinces), len(lasts), len(e.sincePrev), len(e.lastPrev))
	}
	for _, s := range sinces {
		st.Since = append(st.Since, ar.node(e.sincePrev[s]))
	}
	for _, l := range lasts {
		st.Last = append(st.Last, ar.node(e.lastPrev[l]))
	}
	if ar.err != nil {
		return nil, ar.err
	}
	st.Terms, st.Nodes = ar.terms, ar.nodes
	for _, a := range e.aggOrder {
		rec, err := encodeAggState(e.aggs[a])
		if err != nil {
			return nil, err
		}
		st.Aggs = append(st.Aggs, rec)
	}
	return st, nil
}

func restoreGeneral(e *Evaluator, st *evalState) error {
	if st.Kind != "general" {
		return fmt.Errorf("core: evaluator state kind %q, want general", st.Kind)
	}
	_, nodes, err := decodeArena(st)
	if err != nil {
		return err
	}
	sinces, lasts := temporalOccurrences(e.info.Normalized)
	if len(st.Since) != len(sinces) || len(st.Last) != len(lasts) {
		return fmt.Errorf("core: evaluator state has %d/%d registers, condition needs %d/%d",
			len(st.Since), len(st.Last), len(sinces), len(lasts))
	}
	nodeAt := func(id int) (*cnode, error) {
		if id < 0 || id >= len(nodes) {
			return nil, fmt.Errorf("core: evaluator state: register node id %d out of range", id)
		}
		return nodes[id], nil
	}
	for i, s := range sinces {
		n, err := nodeAt(st.Since[i])
		if err != nil {
			return err
		}
		e.sincePrev[s] = n
	}
	for i, l := range lasts {
		n, err := nodeAt(st.Last[i])
		if err != nil {
			return err
		}
		e.lastPrev[l] = n
	}
	if len(st.Aggs) != len(e.aggOrder) {
		return fmt.Errorf("core: evaluator state has %d aggregates, condition has %d", len(st.Aggs), len(e.aggOrder))
	}
	for i, a := range e.aggOrder {
		if err := restoreAggState(e.aggs[a], st.Aggs[i]); err != nil {
			return err
		}
	}
	e.steps = st.Steps
	return nil
}

func encodeAggState(s *aggState) (*aggRec, error) {
	rec := &aggRec{
		Started: s.started,
		Times:   append([]int64(nil), s.times...),
		Count:   s.count,
	}
	var err error
	if rec.Sum, err = value.EncodeJSON(s.sum); err != nil {
		return nil, err
	}
	for _, v := range s.samples {
		raw, err := value.EncodeJSON(v)
		if err != nil {
			return nil, err
		}
		rec.Samples = append(rec.Samples, raw)
	}
	if s.startEv != nil {
		if rec.StartEv, err = encodeGeneral(s.startEv); err != nil {
			return nil, err
		}
	}
	if rec.SampEv, err = encodeGeneral(s.sampEv); err != nil {
		return nil, err
	}
	return rec, nil
}

func restoreAggState(s *aggState, rec *aggRec) error {
	if rec == nil {
		return fmt.Errorf("core: evaluator state: missing aggregate record")
	}
	if len(rec.Samples) != len(rec.Times) {
		return fmt.Errorf("core: evaluator state: aggregate has %d samples but %d times", len(rec.Samples), len(rec.Times))
	}
	sum, err := value.DecodeJSON(rec.Sum)
	if err != nil {
		return err
	}
	samples := make([]value.Value, 0, len(rec.Samples))
	for _, raw := range rec.Samples {
		v, err := value.DecodeJSON(raw)
		if err != nil {
			return err
		}
		samples = append(samples, v)
	}
	if (s.startEv == nil) != (rec.StartEv == nil) {
		return fmt.Errorf("core: evaluator state: aggregate start-evaluator presence mismatch")
	}
	if rec.StartEv != nil {
		if err := restoreGeneral(s.startEv, rec.StartEv); err != nil {
			return err
		}
	}
	if rec.SampEv == nil {
		return fmt.Errorf("core: evaluator state: aggregate missing sampling evaluator")
	}
	if err := restoreGeneral(s.sampEv, rec.SampEv); err != nil {
		return err
	}
	s.started = rec.Started
	s.samples = samples
	s.times = append([]int64(nil), rec.Times...)
	s.sum = sum
	s.count = rec.Count
	return nil
}

func encodeFast(e *FastEvaluator) (*evalState, error) {
	st := &evalState{Kind: "fast", Steps: e.steps}
	sinces, lasts := temporalOccurrences(e.info.Normalized)
	if len(sinces) != len(e.sinceReg) || len(lasts) != len(e.lastReg) {
		return nil, fmt.Errorf("core: internal: occurrence walk found %d/%d registers, evaluator has %d/%d",
			len(sinces), len(lasts), len(e.sinceReg), len(e.lastReg))
	}
	for _, s := range sinces {
		st.SinceB = append(st.SinceB, *e.sinceReg[s])
	}
	for _, l := range lasts {
		st.LastB = append(st.LastB, *e.lastReg[l])
	}
	return st, nil
}

func restoreFast(e *FastEvaluator, st *evalState) error {
	if st.Kind != "fast" {
		return fmt.Errorf("core: evaluator state kind %q, want fast", st.Kind)
	}
	sinces, lasts := temporalOccurrences(e.info.Normalized)
	if len(st.SinceB) != len(sinces) || len(st.LastB) != len(lasts) {
		return fmt.Errorf("core: evaluator state has %d/%d registers, condition needs %d/%d",
			len(st.SinceB), len(st.LastB), len(sinces), len(lasts))
	}
	for i, s := range sinces {
		*e.sinceReg[s] = st.SinceB[i]
	}
	for i, l := range lasts {
		*e.lastReg[l] = st.LastB[i]
	}
	e.steps = st.Steps
	return nil
}
