package core

import (
	"math/rand"
	"testing"

	"ptlactive/internal/ptl"
	"ptlactive/internal/ptlgen"
)

// TestCloneIndependence: after cloning mid-stream, feeding different
// suffixes to the original and the clone must not interfere; feeding the
// same suffix must produce identical firings.
func TestCloneIndependence(t *testing.T) {
	reg := ptlgen.Registry()
	for seed := 0; seed < 80; seed++ {
		rng := rand.New(rand.NewSource(int64(7000 + seed)))
		f := ptlgen.FormulaWithAggregates(rng, 1+rng.Intn(3))
		info, err := ptl.Check(f, reg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		h := ptlgen.History(rng, 14)
		a, err := New(info, reg, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cut := 1 + rng.Intn(h.Len()-2)
		var prefix []bool
		for i := 0; i < cut; i++ {
			res, err := a.Step(h.At(i))
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			prefix = append(prefix, res.Fired)
		}
		b := a.Clone()
		if b.Steps() != a.Steps() {
			t.Fatalf("seed %d: clone step count differs", seed)
		}
		// Same suffix on both: identical results.
		for i := cut; i < h.Len(); i++ {
			ra, err := a.Step(h.At(i))
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			rb, err := b.Step(h.At(i))
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if ra.Fired != rb.Fired {
				t.Fatalf("seed %d state %d: original=%t clone=%t\nformula: %s",
					seed, i, ra.Fired, rb.Fired, f)
			}
		}
		_ = prefix
	}
}

// TestCloneDoesNotLeakIntoOriginal: stepping the clone alone leaves the
// original's subsequent behavior identical to an evaluator that never was
// cloned.
func TestCloneDoesNotLeakIntoOriginal(t *testing.T) {
	reg := ptlgen.Registry()
	for seed := 0; seed < 60; seed++ {
		rng := rand.New(rand.NewSource(int64(8000 + seed)))
		f := ptlgen.Formula(rng, 1+rng.Intn(3))
		h := ptlgen.History(rng, 12)
		// Control evaluator: never cloned.
		control, err := Compile(f, reg, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		subject, err := Compile(f, reg, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := 0; i < h.Len(); i++ {
			rc, err := control.Step(h.At(i))
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			// Clone the subject every state and run the clone ahead on the
			// next state (like the engine's tentative constraint checks).
			if i+1 < h.Len() {
				cl := subject.Clone()
				if _, err := cl.Step(h.At(i + 1)); err != nil {
					t.Fatalf("seed %d: clone step: %v", seed, err)
				}
			}
			rs, err := subject.Step(h.At(i))
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if rc.Fired != rs.Fired {
				t.Fatalf("seed %d state %d: cloning polluted the original (control=%t subject=%t)\nformula: %s",
					seed, i, rc.Fired, rs.Fired, f)
			}
		}
	}
}
